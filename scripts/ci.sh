#!/usr/bin/env bash
# Offline-safe CI gate for the near-stream suite.
#
# Runs the same checks the project expects before every merge:
#   1. release build of the whole workspace,
#   2. the full test suite (unit, integration, doc tests),
#   3. clippy with warnings promoted to errors,
#   4. a chaos smoke: the fault-injection sweep at --tiny, which asserts
#      bit-identical results under injected faults across 4 fixed seeds.
#
# No network access is required: all dependencies are path dependencies
# inside this workspace, so everything runs with `--offline`.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace --offline

echo "== tests =="
cargo test -q --workspace --offline

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== chaos (fault-injection smoke, 4 fixed seeds) =="
cargo run -q --release -p nsc-bench --offline --bin fig_fault_sweep -- --tiny

echo "CI checks passed."
