#!/usr/bin/env bash
# Offline-safe CI gate for the near-stream suite.
#
# Runs the same checks the project expects before every merge:
#   1. release build of the whole workspace,
#   2. the full test suite (unit, integration, doc tests),
#   3. clippy with warnings promoted to errors,
#   4. a chaos smoke: the fault-injection sweep at --tiny, which asserts
#      bit-identical results under injected faults across 4 fixed seeds,
#   5. a perf smoke: NSC_JOBS=1 vs NSC_JOBS=8 must produce byte-identical
#      tables and JSON (modulo the host.* wall-clock object), and the
#      event-queue/substrate microbenches must run (criterion-bench
#      feature, hand-rolled harness, offline).
#
# No network access is required: all dependencies are path dependencies
# inside this workspace, so everything runs with `--offline`.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace --offline

echo "== tests =="
cargo test -q --workspace --offline

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== chaos (fault-injection smoke, 4 fixed seeds) =="
cargo run -q --release -p nsc-bench --offline --bin fig_fault_sweep -- --tiny

echo "== perf (parallel-vs-serial bit-identity) =="
PERF_TMP="$(mktemp -d)"
trap 'rm -rf "$PERF_TMP"' EXIT
mkdir -p "$PERF_TMP/j1" "$PERF_TMP/j8"
NSC_JOBS=1 NSC_RESULTS_DIR="$PERF_TMP/j1" \
  ./target/release/fig09_speedup --tiny > "$PERF_TMP/j1.txt"
NSC_JOBS=8 NSC_RESULTS_DIR="$PERF_TMP/j8" \
  ./target/release/fig09_speedup --tiny > "$PERF_TMP/j8.txt"
diff "$PERF_TMP/j1.txt" "$PERF_TMP/j8.txt"
# The host object ({jobs, sim_runs, wall_ms}) is the one legitimate delta.
diff <(sed 's/,"host":{[^}]*}//' "$PERF_TMP/j1/fig09_speedup.json") \
     <(sed 's/,"host":{[^}]*}//' "$PERF_TMP/j8/fig09_speedup.json")
echo "parallel output is bit-identical (jobs 1 vs 8)"

echo "== perf (substrate microbenches incl. event queue) =="
cargo bench -q -p nsc-bench --offline --features criterion-bench

echo "CI checks passed."
