#!/usr/bin/env bash
# Offline-safe CI gate for the near-stream suite.
#
# Runs the same checks the project expects before every merge:
#   1. release build of the whole workspace,
#   2. the full test suite (unit, integration, doc tests),
#   3. clippy with warnings promoted to errors,
#   4. a chaos smoke: the fault-injection sweep at --tiny, which asserts
#      bit-identical results under injected faults across 4 fixed seeds,
#   5. a perf smoke: NSC_JOBS=1 vs NSC_JOBS=8 must produce byte-identical
#      tables and JSON (modulo the host.* wall-clock object), and the
#      event-queue/substrate microbenches must run (criterion-bench
#      feature, hand-rolled harness, offline),
#   6. a cache smoke: the same harness twice under NSC_CACHE=1 — the
#      second run must be 100% cache hits (zero simulations) and emit a
#      byte-identical report once the host.* object is stripped,
#   7. a cache-tier smoke: the sweep under tiny NSC_CACHE_DISK_BYTES +
#      compression (forced cold evictions, still byte-identical), then a
#      live daemon with a 1-byte cold budget whose hot tier must serve a
#      disk-evicted key, checked via `nsc-client inspect` and the
#      nsc_cache_* Prometheus series,
#   8. an nscd smoke: daemon round trip over a Unix socket, including a
#      warm resubmission that must be served from the cache,
#   9. an overload soak: a saturating nsc_load burst against a one-worker
#      daemon with fault injection armed — every request must get exactly
#      one terminal response (typed sheds allowed, lost responses not)
#      and the shed counters must surface in the Prometheus exporter;
#      the soak also runs a --sweep to find the saturation knee and
#      emits an nsc-perf-v1 serving summary (aggregate + per-phase
#      steady/burst series + knee_rps) that is gated against
#      results/BENCH_serving_baseline.json (toleranced series),
#  10. a timeline smoke: a one-worker daemon with a fast sampler under a
#      short burst must accumulate >=3 monotone telemetry frames, answer
#      `health` with a parseable verdict, and emit a dashboard HTML with
#      zero external http(s) references,
#  11. a compile smoke: fig09 at --tiny with NSC_COMPILE=0 (tree walker)
#      vs NSC_COMPILE=1 (register bytecode) must be byte-identical
#      (stdout and host-stripped JSON), and the expr_storm microbench
#      must run — it asserts tree/bytecode checksum equality internally.
#
# No network access is required: all dependencies are path dependencies
# inside this workspace, so everything runs with `--offline`.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace --offline

echo "== tests =="
cargo test -q --workspace --offline

echo "== clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== chaos (fault-injection smoke, 4 fixed seeds) =="
cargo run -q --release -p nsc-bench --offline --bin fig_fault_sweep -- --tiny

echo "== perf (parallel-vs-serial bit-identity) =="
PERF_TMP="$(mktemp -d)"
trap 'rm -rf "$PERF_TMP"' EXIT
mkdir -p "$PERF_TMP/j1" "$PERF_TMP/j8"
NSC_JOBS=1 NSC_RESULTS_DIR="$PERF_TMP/j1" \
  ./target/release/fig09_speedup --tiny > "$PERF_TMP/j1.txt"
NSC_JOBS=8 NSC_RESULTS_DIR="$PERF_TMP/j8" \
  ./target/release/fig09_speedup --tiny > "$PERF_TMP/j8.txt"
diff "$PERF_TMP/j1.txt" "$PERF_TMP/j8.txt"
# The host object ({jobs, sim_runs, wall_ms, profile, ...}) is the one
# legitimate delta. It is the report's last key and carries nested
# braces (host.profile), so strip from its key to end of line.
diff <(sed 's/,"host":.*//' "$PERF_TMP/j1/fig09_speedup.json") \
     <(sed 's/,"host":.*//' "$PERF_TMP/j8/fig09_speedup.json")
echo "parallel output is bit-identical (jobs 1 vs 8)"

echo "== perf (substrate microbenches incl. event queue) =="
cargo bench -q -p nsc-bench --offline --features criterion-bench

echo "== cache (cold-vs-warm byte-identity, zero warm simulations) =="
CACHE_TMP="$PERF_TMP/cache"
mkdir -p "$CACHE_TMP/cold" "$CACHE_TMP/warm"
NSC_CACHE=1 NSC_CACHE_DIR="$CACHE_TMP/store" NSC_RESULTS_DIR="$CACHE_TMP/cold" \
  ./target/release/fig09_speedup --tiny > "$CACHE_TMP/cold.txt"
NSC_CACHE=1 NSC_CACHE_DIR="$CACHE_TMP/store" NSC_RESULTS_DIR="$CACHE_TMP/warm" \
  ./target/release/fig09_speedup --tiny > "$CACHE_TMP/warm.txt"
diff "$CACHE_TMP/cold.txt" "$CACHE_TMP/warm.txt"
diff <(sed 's/,"host":.*//' "$CACHE_TMP/cold/fig09_speedup.json") \
     <(sed 's/,"host":.*//' "$CACHE_TMP/warm/fig09_speedup.json")
grep -q '"cache_misses":0,' "$CACHE_TMP/warm/fig09_speedup.json" \
  || { echo "warm run simulated instead of replaying"; exit 1; }
grep -q '"cache_hits":0,' "$CACHE_TMP/cold/fig09_speedup.json" \
  || { echo "cold run hit a cache that should have been empty"; exit 1; }
echo "warm run replayed every point from the cache, byte-identical report"

echo "== cache-tier (tiny budgets: evictions, hot-tier hits, inspect) =="
# A cold-tier byte budget far below the sweep's footprint forces
# evictions mid-sweep, with record compression on to cover the framed
# file path. Evicted entries cost a re-simulation, never a changed
# byte: the second sweep must still match the first exactly.
TIER_TMP="$PERF_TMP/tier"
mkdir -p "$TIER_TMP/cold" "$TIER_TMP/warm"
NSC_CACHE=1 NSC_CACHE_DIR="$TIER_TMP/store" NSC_CACHE_DISK_BYTES=4k \
  NSC_CACHE_COMPRESS=1 NSC_RESULTS_DIR="$TIER_TMP/cold" \
  ./target/release/fig09_speedup --tiny > "$TIER_TMP/cold.txt"
NSC_CACHE=1 NSC_CACHE_DIR="$TIER_TMP/store" NSC_CACHE_DISK_BYTES=4k \
  NSC_CACHE_COMPRESS=1 NSC_RESULTS_DIR="$TIER_TMP/warm" \
  ./target/release/fig09_speedup --tiny > "$TIER_TMP/warm.txt"
diff "$TIER_TMP/cold.txt" "$TIER_TMP/warm.txt"
diff <(sed 's/,"host":.*//' "$TIER_TMP/cold/fig09_speedup.json") \
     <(sed 's/,"host":.*//' "$TIER_TMP/warm/fig09_speedup.json")
# Live daemon with a 1-byte cold budget: every store evicts its
# predecessors (the newest entry is spared), yet a resubmission is
# still served — from the in-memory hot tier.
TIER_SOCK="$PERF_TMP/nscd-tier.sock"
NSC_CACHE_DIR="$TIER_TMP/nscd-store" NSC_CACHE_DISK_BYTES=1 \
  ./target/release/nscd --socket "$TIER_SOCK" --jobs 1 &
TIER_PID=$!
for _ in $(seq 50); do [ -S "$TIER_SOCK" ] && break; sleep 0.1; done
[ -S "$TIER_SOCK" ] || { echo "nscd (tier) never bound its socket"; exit 1; }
./target/release/nsc-client submit --socket "$TIER_SOCK" --size tiny --mode NS histogram \
  > /dev/null
./target/release/nsc-client submit --socket "$TIER_SOCK" --size tiny --mode NS bin_tree \
  > /dev/null
# histogram's cold file was evicted by bin_tree's store, but the hot
# tier still holds it: the resubmission must come back cached.
./target/release/nsc-client submit --socket "$TIER_SOCK" --size tiny --mode NS histogram \
  > "$TIER_TMP/resubmit.txt"
grep -q 'cached=true' "$TIER_TMP/resubmit.txt" \
  || { echo "hot tier failed to serve an evicted-from-disk key"; cat "$TIER_TMP/resubmit.txt"; exit 1; }
./target/release/nsc-client inspect --socket "$TIER_SOCK" > "$TIER_TMP/inspect.txt" \
  2> "$TIER_TMP/inspect-summary.txt"
grep -q '"hot_hits":[1-9]' "$TIER_TMP/inspect.txt" \
  || { echo "inspect shows no hot-tier hits"; cat "$TIER_TMP/inspect.txt"; exit 1; }
grep -q '"cold_evictions":[1-9]' "$TIER_TMP/inspect.txt" \
  || { echo "inspect shows no cold evictions under a 1-byte budget"; cat "$TIER_TMP/inspect.txt"; exit 1; }
grep -q '"hottest":"[0-9a-f]' "$TIER_TMP/inspect.txt" \
  || { echo "inspect hottest-keys list empty"; cat "$TIER_TMP/inspect.txt"; exit 1; }
grep -q '^  hot ' "$TIER_TMP/inspect-summary.txt" \
  || { echo "inspect human summary missing tier table"; cat "$TIER_TMP/inspect-summary.txt"; exit 1; }
# The per-tier counters surface in the Prometheus exporter.
./target/release/nsc-client metrics --prom --socket "$TIER_SOCK" > "$TIER_TMP/prom.txt"
grep -q '# TYPE nsc_cache_hot_hits_total counter' "$TIER_TMP/prom.txt" \
  || { echo "cache.hot.hits missing from prometheus exporter"; cat "$TIER_TMP/prom.txt"; exit 1; }
grep -q '# TYPE nsc_cache_cold_evictions_total counter' "$TIER_TMP/prom.txt" \
  || { echo "cache.cold.evictions missing from prometheus exporter"; exit 1; }
./target/release/nsc-client shutdown --socket "$TIER_SOCK" > /dev/null
wait "$TIER_PID"
echo "tiered cache: evictions forced, hot tier served, inspect + prom observable"

echo "== nscd (daemon round trip + warm resubmission) =="
NSCD_SOCK="$PERF_TMP/nscd.sock"
NSC_CACHE_DIR="$PERF_TMP/nscd-cache" ./target/release/nscd --socket "$NSCD_SOCK" --jobs 2 &
NSCD_PID=$!
for _ in $(seq 50); do [ -S "$NSCD_SOCK" ] && break; sleep 0.1; done
[ -S "$NSCD_SOCK" ] || { echo "nscd never bound its socket"; exit 1; }
./target/release/nsc-client submit --socket "$NSCD_SOCK" --size tiny --mode NS histogram \
  > "$PERF_TMP/nscd-cold.txt"
./target/release/nsc-client submit --socket "$NSCD_SOCK" --size tiny --mode NS histogram \
  > "$PERF_TMP/nscd-warm.txt"
grep -q 'cached=false' "$PERF_TMP/nscd-cold.txt" \
  || { echo "first daemon run claimed to be cached"; cat "$PERF_TMP/nscd-cold.txt"; exit 1; }
grep -q 'cached=true' "$PERF_TMP/nscd-warm.txt" \
  || { echo "resubmission was not served from the cache"; cat "$PERF_TMP/nscd-warm.txt"; exit 1; }
diff <(sed 's/cached=.*//' "$PERF_TMP/nscd-cold.txt") \
     <(sed 's/cached=.*//' "$PERF_TMP/nscd-warm.txt")
./target/release/nsc-client status --socket "$NSCD_SOCK" | grep -q '"ok":true'
./target/release/nsc-client status --socket "$NSCD_SOCK" | grep -q '"uptime_ms":'
# Live metrics: the daemon's registry saw both runs (one cached), and
# the Prometheus rendering carries the counter with a TYPE line.
./target/release/nsc-client metrics --socket "$NSCD_SOCK" > "$PERF_TMP/nscd-metrics.txt"
grep -q 'serve.runs_cached[ =]*1' "$PERF_TMP/nscd-metrics.txt" \
  || { echo "daemon metrics missed the cached run"; cat "$PERF_TMP/nscd-metrics.txt"; exit 1; }
./target/release/nsc-client metrics --prom --socket "$NSCD_SOCK" > "$PERF_TMP/nscd-prom.txt"
grep -q '# TYPE nsc_serve_runs_total counter' "$PERF_TMP/nscd-prom.txt" \
  || { echo "prometheus rendering broken"; cat "$PERF_TMP/nscd-prom.txt"; exit 1; }
./target/release/nsc-client shutdown --socket "$NSCD_SOCK" > /dev/null
wait "$NSCD_PID"
echo "daemon served, cached, reported metrics, and shut down cleanly"

echo "== trace (request spans, flight recorder, log-on bit-identity) =="
TRACE_SOCK="$PERF_TMP/nscd-trace.sock"
NSC_LOG=debug NSC_TRACE=1 NSC_CACHE_DIR="$PERF_TMP/nscd-trace-cache" \
  ./target/release/nscd --socket "$TRACE_SOCK" --jobs 2 &
TRACE_PID=$!
for _ in $(seq 50); do [ -S "$TRACE_SOCK" ] && break; sleep 0.1; done
[ -S "$TRACE_SOCK" ] || { echo "nscd (trace) never bound its socket"; exit 1; }
./target/release/nsc-client submit --socket "$TRACE_SOCK" --size tiny --mode NS histogram \
  > "$PERF_TMP/trace-submit.txt"
RID="$(sed -n 's/.*rid=\([0-9a-f]*\).*/\1/p' "$PERF_TMP/trace-submit.txt")"
[ -n "$RID" ] || { echo "submit printed no request id"; cat "$PERF_TMP/trace-submit.txt"; exit 1; }
./target/release/nsc-client trace "$RID" --socket "$TRACE_SOCK" > "$PERF_TMP/trace-tree.txt"
# Span rows are indented "  <name> <start>µs <dur>µs"; the header line
# carries the wall time. The spans are sequential slices of one request,
# so their durations must sum to within the reported wall time.
WALL="$(sed -n 's/^request .*: wall \([0-9]*\)µs.*/\1/p' "$PERF_TMP/trace-tree.txt")"
awk -v wall="$WALL" '
  /^  / { n++; gsub(/µs/, "", $3); sum += $3 }
  END {
    if (n < 6)      { printf "only %d spans, want >=6\n", n; exit 1 }
    if (sum > wall) { printf "span durations (%dus) exceed wall (%dus)\n", sum, wall; exit 1 }
    printf "%d spans, %dus of %dus wall accounted\n", n, sum, wall
  }' "$PERF_TMP/trace-tree.txt" \
  || { cat "$PERF_TMP/trace-tree.txt"; exit 1; }
# The flight recorder saw the request: `logs` drains structured records.
./target/release/nsc-client logs --socket "$TRACE_SOCK" > "$PERF_TMP/trace-logs.txt"
grep -q '"level":"debug"' "$PERF_TMP/trace-logs.txt" \
  || { echo "flight recorder empty at NSC_LOG=debug"; cat "$PERF_TMP/trace-logs.txt"; exit 1; }
./target/release/nsc-client shutdown --socket "$TRACE_SOCK" > /dev/null
wait "$TRACE_PID"
# Logging must not perturb simulation: fig09 under NSC_LOG=debug is
# byte-identical to the plain NSC_JOBS=1 run from the perf stage.
mkdir -p "$PERF_TMP/logdbg"
NSC_LOG=debug NSC_JOBS=1 NSC_RESULTS_DIR="$PERF_TMP/logdbg" \
  ./target/release/fig09_speedup --tiny > "$PERF_TMP/logdbg.txt"
diff "$PERF_TMP/j1.txt" "$PERF_TMP/logdbg.txt"
diff <(sed 's/,"host":.*//' "$PERF_TMP/j1/fig09_speedup.json") \
     <(sed 's/,"host":.*//' "$PERF_TMP/logdbg/fig09_speedup.json")
echo "request traced end to end, logs drained, sim output unperturbed"

echo "== soak (nsc_load burst vs one-worker daemon, chaos armed) =="
# A saturating open-loop burst against a deliberately tiny daemon
# (one worker, queue_cap 8) with fault injection armed. The harness
# exits non-zero unless every accepted request got exactly one terminal
# response (lost=0, dup=0) and every completed run was bit-identical
# per key (mismatch=0); typed sheds must surface in the Prometheus
# exporter, and the daemon must drain and exit cleanly afterwards.
SOAK_SOCK="$PERF_TMP/nscd-soak.sock"
NSC_CACHE_DIR="$PERF_TMP/nscd-soak-cache" NSC_FAULT_RATE=1e-3 \
  NSC_QUEUE_CAP=8 NSC_MAX_CONNS=32 \
  ./target/release/nscd --socket "$SOAK_SOCK" --jobs 1 &
SOAK_PID=$!
for _ in $(seq 50); do [ -S "$SOAK_SOCK" ] && break; sleep 0.1; done
[ -S "$SOAK_SOCK" ] || { echo "nscd (soak) never bound its socket"; exit 1; }
./target/release/nsc_load --tiny --socket "$SOAK_SOCK" \
  --secs 10 --rate 300 --conns 4 --seed 7 --deadline-ms 2000 --burst 4 \
  --sweep 25,100,400 --sweep-secs 2 \
  --bench-out "$PERF_TMP/BENCH_serving.json" \
  | tee "$PERF_TMP/soak.txt"
grep -q ' lost=0 ' "$PERF_TMP/soak.txt" \
  || { echo "soak lost responses"; exit 1; }
# The sweep must have found a knee and put it in the bench-out series.
grep -q '^nsc_load: knee=' "$PERF_TMP/soak.txt" \
  || { echo "sweep printed no knee"; exit 1; }
grep -q '"knee_rps":' "$PERF_TMP/BENCH_serving.json" \
  || { echo "knee_rps missing from bench-out"; cat "$PERF_TMP/BENCH_serving.json"; exit 1; }
grep -q '"steady_p999_us":' "$PERF_TMP/BENCH_serving.json" \
  || { echo "per-phase series missing from bench-out"; cat "$PERF_TMP/BENCH_serving.json"; exit 1; }
# Serving perf rides the same regression gate as the simulator: the
# soak's throughput/p99/shed-rate series vs the committed baseline,
# with a generous factor band (CI hosts are noisy). Regenerate with:
#   scripts/ci.sh's soak recipe + nsc_load --bench-out (see README).
./target/release/nsc_perf --compare results/BENCH_serving_baseline.json \
  "$PERF_TMP/BENCH_serving.json" --serve-tol 5
./target/release/nsc-client metrics --prom --socket "$SOAK_SOCK" > "$PERF_TMP/soak-prom.txt"
grep -q '# TYPE nsc_serve_shed_total counter' "$PERF_TMP/soak-prom.txt" \
  || { echo "serve.shed missing from prometheus exporter"; cat "$PERF_TMP/soak-prom.txt"; exit 1; }
grep -q '# TYPE nsc_serve_deadline_exceeded_total counter' "$PERF_TMP/soak-prom.txt" \
  || { echo "serve.deadline_exceeded missing from prometheus exporter"; exit 1; }
./target/release/nsc-client shutdown --socket "$SOAK_SOCK" > /dev/null
wait "$SOAK_PID"
echo "soak survived: one terminal response per request, typed sheds observable"

echo "== timeline (sampler frames, health verdict, self-contained dashboard) =="
# A one-worker daemon with a fast sampler under a short nsc_load burst:
# the ring must accumulate frames with monotone timestamps, `health`
# must produce a parseable verdict, and the dashboard artifact must be
# fully self-contained (no external http(s) references).
TL_SOCK="$PERF_TMP/nscd-tl.sock"
NSC_CACHE_DIR="$PERF_TMP/nscd-tl-cache" NSC_SAMPLE_MS=100 NSC_QUEUE_CAP=16 \
  ./target/release/nscd --socket "$TL_SOCK" --jobs 1 &
TL_PID=$!
for _ in $(seq 50); do [ -S "$TL_SOCK" ] && break; sleep 0.1; done
[ -S "$TL_SOCK" ] || { echo "nscd (timeline) never bound its socket"; exit 1; }
./target/release/nsc_load --tiny --socket "$TL_SOCK" \
  --secs 2 --rate 100 --conns 2 --seed 3 > /dev/null
sleep 0.3
./target/release/nsc-client timeline --socket "$TL_SOCK" > "$PERF_TMP/tl-frames.txt"
awk -F'"t_ms":' '
  NF < 2            { print "frame missing t_ms: " $0; exit 1 }
  { split($2, a, ","); t = a[1] + 0
    if (t < prev) { printf "t_ms went backwards: %d after %d\n", t, prev; exit 1 }
    prev = t; n++ }
  END { if (n < 3) { printf "only %d frames, want >=3\n", n; exit 1 }
        printf "%d frames, timestamps monotone\n", n }' "$PERF_TMP/tl-frames.txt" \
  || { cat "$PERF_TMP/tl-frames.txt"; exit 1; }
grep -q '"schema":"nsc-timeline-v1"' "$PERF_TMP/tl-frames.txt" \
  || { echo "frames missing schema tag"; exit 1; }
./target/release/nsc-client health --socket "$TL_SOCK" \
  > "$PERF_TMP/tl-health.txt" 2> "$PERF_TMP/tl-verdict.txt"
grep -Eq '"verdict":"(ok|degraded|failing)"' "$PERF_TMP/tl-health.txt" \
  || { echo "health verdict unparseable"; cat "$PERF_TMP/tl-health.txt"; exit 1; }
./target/release/nsc-client dashboard --socket "$TL_SOCK" --out "$PERF_TMP/tl-dash.html"
grep -q '<html' "$PERF_TMP/tl-dash.html" \
  || { echo "dashboard is not HTML"; exit 1; }
if grep -Eq 'https?://' "$PERF_TMP/tl-dash.html"; then
  echo "dashboard references external assets"; grep -E 'https?://' "$PERF_TMP/tl-dash.html"
  exit 1
fi
./target/release/nsc-client shutdown --socket "$TL_SOCK" > /dev/null
wait "$TL_PID"
echo "timeline sampled live, health answered, dashboard self-contained"

echo "== compile (bytecode-vs-tree bit-identity + expr_storm microbench) =="
# The cost-guided plan pass lowers kernel expression trees to register
# bytecode; NSC_COMPILE=0 forces the tree walker everywhere. The two
# paths must be observationally identical: same stdout, same report
# bytes once the host-timing object is stripped.
mkdir -p "$PERF_TMP/nc0" "$PERF_TMP/nc1"
NSC_COMPILE=0 NSC_JOBS=1 NSC_RESULTS_DIR="$PERF_TMP/nc0" \
  ./target/release/fig09_speedup --tiny > "$PERF_TMP/nc0.txt"
NSC_COMPILE=1 NSC_JOBS=1 NSC_RESULTS_DIR="$PERF_TMP/nc1" \
  ./target/release/fig09_speedup --tiny > "$PERF_TMP/nc1.txt"
diff "$PERF_TMP/nc0.txt" "$PERF_TMP/nc1.txt"
diff <(sed 's/,"host":.*//' "$PERF_TMP/nc0/fig09_speedup.json") \
     <(sed 's/,"host":.*//' "$PERF_TMP/nc1/fig09_speedup.json")
# expr_storm asserts tree/bytecode checksum equality over deep random
# expression trees and reports the compiled path's speedup.
NSC_RESULTS_DIR="$PERF_TMP" \
  ./target/release/nsc_perf --tiny --only expr_storm --label expr_storm
echo "bytecode and tree walker are bit-identical (NSC_COMPILE 0 vs 1)"

echo "== perf baseline (nsc_perf vs committed BENCH_baseline.json) =="
# Sim counters must match the committed baseline exactly; wall time gets
# a 2x tolerance (CI hosts are noisy). Regenerate after an intentional
# change with:
#   NSC_RESULTS_DIR=results ./target/release/nsc_perf --tiny --label baseline
NSC_RESULTS_DIR="$PERF_TMP" ./target/release/nsc_perf --tiny --label current
./target/release/nsc_perf --compare results/BENCH_baseline.json "$PERF_TMP/BENCH_current.json"
echo "no perf regressions vs results/BENCH_baseline.json"

echo "CI checks passed."
