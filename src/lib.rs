pub use near_stream; pub use nsc_compiler; pub use nsc_energy; pub use nsc_ir; pub use nsc_mem; pub use nsc_noc; pub use nsc_sim; pub use nsc_workloads;
