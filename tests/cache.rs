//! Properties of the content-addressed result cache: the request digest
//! separates every field of a run request, and a cache hit replays a
//! record byte-identical to the one the miss stored.
//!
//! The report-level version of the replay property (a warm `NSC_CACHE=1`
//! sweep emitting a byte-identical JSON report with zero simulations)
//! is exercised end-to-end by `ci.sh`'s cache-smoke stage; these tests
//! pin down the library-level invariants it rests on.

use near_stream::request::{decode, encode};
use near_stream::{ExecMode, RunRequest, SystemConfig};
use nsc_compiler::compile;
use nsc_ir::build::KernelBuilder;
use nsc_ir::{ElemType, Expr, Memory, Program, Scalar};
use nsc_sim::fault::{self, FaultPlan, FaultStats};
use std::collections::HashSet;

/// A minimal one-kernel program; `imm` lands in an instruction
/// immediate, so two values give programs differing in exactly one
/// field.
fn probe_program(imm: i64) -> Program {
    let mut p = Program::new("cache_probe");
    let a = p.array("a", ElemType::I64, 64);
    let out = p.array("out", ElemType::I64, 64);
    let mut k = KernelBuilder::new("k", 64);
    let i = k.outer_var();
    let v = k.load(a, Expr::var(i));
    k.store(out, Expr::var(i), Expr::var(v) + Expr::imm(imm));
    p.push_kernel(k.finish());
    p
}

#[test]
fn every_request_field_reaches_the_key() {
    let p1 = probe_program(1);
    let p2 = probe_program(2);
    let c1 = compile(&p1);
    let c2 = compile(&p2);
    let cfg = SystemConfig::small();
    let mut cfg_l1 = cfg.clone();
    cfg_l1.mem.l1.size_bytes *= 2;
    let mut cfg_se = cfg.clone();
    cfg_se.se.runahead_elems += 1;
    let seed_init = |m: &mut Memory| {
        m.write_index(nsc_ir::program::ArrayId(0), 0, Scalar::I64(99));
    };

    let base = || RunRequest::new(&p1).compiled(&c1).mode(ExecMode::Ns).config(&cfg);
    // Each entry perturbs exactly one field of the canonical request.
    let keys = [
        base().key(),
        RunRequest::new(&p2).compiled(&c2).mode(ExecMode::Ns).config(&cfg).key(),
        base().params(&[Scalar::I64(7)]).key(),
        base().params(&[Scalar::F64(7.0)]).key(),
        base().mode(ExecMode::Base).key(),
        base().mode(ExecMode::NsDecouple).key(),
        base().config(&cfg_l1).key(),
        base().config(&cfg_se).key(),
        base().init(&seed_init).key(),
    ];
    let distinct: HashSet<String> = keys.iter().map(|k| k.hex()).collect();
    assert_eq!(
        distinct.len(),
        keys.len(),
        "a single-field perturbation failed to change the cache key: {keys:?}"
    );
}

#[test]
fn key_is_stable_and_fault_plan_is_part_of_it() {
    let p = probe_program(1);
    let c = compile(&p);
    let cfg = SystemConfig::small();
    let req = RunRequest::new(&p).compiled(&c).mode(ExecMode::Ns).config(&cfg);
    let clean = req.key();
    assert_eq!(clean, req.key(), "the digest must be deterministic");

    // An armed injector changes the schedule, so it must change the key
    // (both the seed and every rate are folded).
    fault::install(FaultPlan::uniform(42, 1e-3));
    let faulty_42 = req.key();
    fault::uninstall();
    fault::install(FaultPlan::uniform(43, 1e-3));
    let faulty_43 = req.key();
    fault::uninstall();
    assert_ne!(clean, faulty_42);
    assert_ne!(faulty_42, faulty_43);
    assert_eq!(clean, req.key(), "uninstalling the plan restores the clean key");
}

#[test]
fn record_codec_replays_byte_identically() {
    // A hit returns `decode(stored_blob)`; this is exact iff the codec
    // round-trips every field bit-for-bit, floats included.
    let p = probe_program(3);
    let c = compile(&p);
    let cfg = SystemConfig::small();
    let (result, _mem) =
        RunRequest::new(&p).compiled(&c).mode(ExecMode::Ns).config(&cfg).run();
    let faults = FaultStats::from_counts([1, 2, 3, 4, 5, 6, 7]);
    let blob = encode(&result, &faults);
    let replay = decode(&blob).expect("stored record decodes");
    assert_eq!(replay.faults, faults, "fault delta survives the round trip");
    assert_eq!(
        encode(&replay.result, &replay.faults),
        blob,
        "replayed record re-encodes byte-identically"
    );
}
