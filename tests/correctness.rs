//! Cross-crate correctness: every workload computes the same result under
//! every execution mode as the golden sequential interpreter — near-data
//! offloading must be functionally invisible (the paper's programmer
//! transparency claim).

use near_stream::{RunRequest, ExecMode, SystemConfig};
use nsc_compiler::compile;
use nsc_workloads::{Size, Workload};

fn check_all_modes(w: Workload) {
    let compiled = compile(&w.program);
    let cfg = SystemConfig::small();
    let golden = w.golden_digest();
    for mode in ExecMode::ALL {
        let (result, mem) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(mode).config(&cfg).init(&w.init).run();
        assert_eq!(
            w.digest(&mem),
            golden,
            "{} under {mode:?} diverged from golden",
            w.name
        );
        assert!(result.cycles > 0, "{} under {mode:?} took zero time", w.name);
        assert!(
            result.total_uops > 0.0,
            "{} under {mode:?} executed nothing",
            w.name
        );
    }
}

#[test]
fn rodinia_stencils_match_golden_in_all_modes() {
    check_all_modes(nsc_workloads::pathfinder(Size::Tiny));
    check_all_modes(nsc_workloads::srad(Size::Tiny));
    check_all_modes(nsc_workloads::hotspot(Size::Tiny));
    check_all_modes(nsc_workloads::hotspot3d(Size::Tiny));
}

#[test]
fn mining_kernels_match_golden_in_all_modes() {
    check_all_modes(nsc_workloads::histogram(Size::Tiny));
    check_all_modes(nsc_workloads::scluster(Size::Tiny));
    check_all_modes(nsc_workloads::svm(Size::Tiny));
}

#[test]
fn graph_push_kernels_match_golden_in_all_modes() {
    check_all_modes(nsc_workloads::bfs_push(Size::Tiny));
    check_all_modes(nsc_workloads::pr_push(Size::Tiny));
    check_all_modes(nsc_workloads::sssp(Size::Tiny));
}

#[test]
fn graph_pull_kernels_match_golden_in_all_modes() {
    check_all_modes(nsc_workloads::bfs_pull(Size::Tiny));
    check_all_modes(nsc_workloads::pr_pull(Size::Tiny));
}

#[test]
fn pointer_chase_kernels_match_golden_in_all_modes() {
    check_all_modes(nsc_workloads::bin_tree(Size::Tiny));
    check_all_modes(nsc_workloads::hash_join(Size::Tiny));
}

#[test]
fn results_are_independent_of_core_count() {
    // The same workload on 16 vs 64 cores (different interleavings and
    // chunkings) must still match golden.
    let w = nsc_workloads::pr_push(Size::Tiny);
    let compiled = compile(&w.program);
    let golden = w.golden_digest();
    for cfg in [SystemConfig::small(), SystemConfig::paper_ooo8()] {
        let (_, mem) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::Ns).config(&cfg).init(&w.init).run();
        assert_eq!(w.digest(&mem), golden);
    }
}

#[test]
fn results_are_independent_of_se_parameters() {
    let w = nsc_workloads::sssp(Size::Tiny);
    let compiled = compile(&w.program);
    let golden = w.golden_digest();
    for (lat, rob, pe, mrsw) in [(1u64, 8u32, false, false), (16, 64, true, true)] {
        let mut cfg = SystemConfig::small();
        cfg.se.scm_issue_latency = lat;
        cfg.se.scc_rob = rob;
        cfg.se.scalar_pe = pe;
        cfg.mem.mrsw_lock = mrsw;
        let (_, mem) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::NsDecouple).config(&cfg).init(&w.init).run();
        assert_eq!(w.digest(&mem), golden, "SE params changed the result");
    }
}
