//! Live-metrics determinism: a metered sweep produces a byte-identical
//! registry snapshot for any `NSC_JOBS`, with or without fault
//! injection and tracing riding along — the same contract
//! `tests/parallel.rs` proves for results, fault schedules, and traces,
//! extended to the metrics registry. Plus overflow regressions: every
//! registry counter saturates instead of wrapping near `u64::MAX`.

use near_stream::ExecMode;
use nsc_bench::{prepare, system_for, Prepared, Sweep, SweepTask};
use nsc_sim::fault::FaultPlan;
use nsc_sim::json::parse;
use nsc_sim::metrics::{self, Gauge, Hist, Metric, Prof, Registry};
use nsc_sim::trace::{self, RingRecorder};
use nsc_workloads::{bfs_push, hash_join, hotspot, Size};
use std::sync::Arc;

fn preps() -> Vec<Arc<Prepared>> {
    [bfs_push(Size::Tiny), hash_join(Size::Tiny), hotspot(Size::Tiny)]
        .into_iter()
        .map(|w| Arc::new(prepare(w)))
        .collect()
}

fn harness_tasks(preps: &[Arc<Prepared>]) -> Vec<SweepTask<u64>> {
    let cfg = system_for(Size::Tiny);
    let mut tasks: Vec<SweepTask<u64>> = Vec::new();
    for p in preps {
        for mode in [ExecMode::Base, ExecMode::Ns] {
            let p = Arc::clone(p);
            let cfg = cfg.clone();
            tasks.push(Box::new(move || p.run_unchecked(mode, &cfg).0.cycles));
        }
    }
    tasks
}

/// Runs one metered harness sweep and returns (results, snapshot JSON).
/// Worker shards are absorbed into this thread's registry in submission
/// order, so the rendered snapshot must not depend on `jobs`.
fn metered_run(
    jobs: usize,
    faults: Option<FaultPlan>,
    traced: bool,
) -> (Vec<u64>, String) {
    let preps = preps();
    let geom = traced.then_some((1usize << 14, 64u64));
    let sweep = Sweep::with_jobs(jobs, faults, geom);
    if traced {
        trace::install(RingRecorder::new(1 << 16), 64);
    }
    metrics::install(Registry::new());
    let results = sweep.run(harness_tasks(&preps));
    let reg = metrics::uninstall().expect("registry installed above");
    if traced {
        trace::uninstall().expect("tracer installed above");
    }
    (results, reg.to_json())
}

#[test]
fn snapshots_byte_identical_across_job_counts() {
    let (r1, s1) = metered_run(1, None, false);
    let (r8, s8) = metered_run(8, None, false);
    assert_eq!(r1, r8, "sweep results diverged");
    assert_eq!(s1, s8, "metrics snapshot depends on the worker count");
    // The snapshot is a real document, not an empty shell.
    let doc = parse(&s1).expect("snapshot is valid JSON");
    let count = |label: &str| {
        doc.get("counters")
            .and_then(|c| c.get(label))
            .and_then(nsc_sim::json::Json::as_f64)
            .unwrap_or(0.0)
    };
    assert!(count("engine.iterations") > 0.0, "engine never counted");
    assert!(count("mem.l1.hits") > 0.0, "memory system never counted");
    assert!(count("pool.jobs") >= 6.0, "pool accounting missing");
}

#[test]
fn snapshots_identical_across_job_counts_under_faults() {
    let plan = || Some(FaultPlan::uniform(0xC0FFEE, 1e-3));
    let (r1, s1) = metered_run(1, plan(), false);
    let (r8, s8) = metered_run(8, plan(), false);
    assert_eq!(r1, r8);
    assert_eq!(s1, s8, "fault injection broke snapshot determinism");
}

#[test]
fn snapshots_identical_across_job_counts_under_traces() {
    let (r1, s1) = metered_run(1, None, true);
    let (r8, s8) = metered_run(8, None, true);
    assert_eq!(r1, r8);
    assert_eq!(s1, s8, "tracing broke snapshot determinism");
}

#[test]
fn snapshots_identical_with_faults_and_traces_together() {
    let plan = || Some(FaultPlan::uniform(7, 1e-3));
    let (r1, s1) = metered_run(1, plan(), true);
    let (r8, s8) = metered_run(8, plan(), true);
    assert_eq!(r1, r8);
    assert_eq!(s1, s8);
}

#[test]
fn no_registry_installed_means_no_snapshot() {
    // A sweep without a registry must leave the thread clean: nothing
    // to uninstall afterwards, nothing recorded anywhere.
    let preps = preps();
    let sweep = Sweep::with_jobs(2, None, None);
    let results = sweep.run(harness_tasks(&preps));
    assert!(!results.is_empty());
    assert!(metrics::uninstall().is_none(), "phantom registry appeared");
}

// --- overflow regressions -------------------------------------------------

#[test]
fn counters_saturate_at_u64_max() {
    metrics::install(Registry::new());
    metrics::add(Metric::EngineIterations, u64::MAX - 1);
    metrics::add(Metric::EngineIterations, 5);
    metrics::count(Metric::EngineIterations);
    let reg = metrics::uninstall().expect("installed above");
    assert_eq!(
        reg.count(Metric::EngineIterations),
        u64::MAX,
        "counter wrapped instead of saturating"
    );
}

#[test]
fn merge_saturates_at_u64_max() {
    let shard = {
        metrics::install(Registry::new());
        metrics::add(Metric::MemDramReads, u64::MAX - 10);
        metrics::profile(Prof::EngineNearStream, u64::MAX - 10);
        metrics::uninstall().expect("installed")
    };
    metrics::install(Registry::new());
    metrics::add(Metric::MemDramReads, 100);
    metrics::profile(Prof::EngineNearStream, 100);
    metrics::absorb(&shard);
    metrics::absorb(&shard); // absorbing twice must still not wrap
    let reg = metrics::uninstall().expect("installed");
    assert_eq!(reg.count(Metric::MemDramReads), u64::MAX);
    let slot = reg.prof(Prof::EngineNearStream);
    assert_eq!(slot.cycles, u64::MAX, "profiled cycles wrapped");
    assert_eq!(slot.events, 3);
    let (_, total_cycles) = reg.prof_total();
    assert_eq!(total_cycles, u64::MAX, "profile total wrapped");
}

#[test]
fn saturated_registry_still_renders_and_parses() {
    metrics::install(Registry::new());
    metrics::add(Metric::NocMsgsData, u64::MAX);
    metrics::gauge_max(Gauge::PoolQueueDepth, 3.0);
    metrics::observe(Hist::NocLatencyCycles, 12.0);
    let reg = metrics::uninstall().expect("installed");
    let doc = parse(&reg.to_json()).expect("saturated snapshot is valid JSON");
    // u64::MAX exceeds f64's exact-integer range; the parse must still
    // succeed and land in the right neighbourhood.
    let v = doc
        .get("counters")
        .and_then(|c| c.get("noc.msgs.data"))
        .and_then(nsc_sim::json::Json::as_f64)
        .expect("saturated counter present");
    assert!(v > 1.8e19, "saturated counter rendered as {v}");
}
