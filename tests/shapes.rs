//! Performance-shape invariants: the qualitative orderings the paper's
//! evaluation establishes must hold in this reproduction (who wins, not by
//! exactly how much).

use near_stream::{RunRequest, ExecMode, SystemConfig};
use nsc_compiler::compile;
use nsc_workloads::Size;

/// A system whose caches are small relative to the Tiny inputs, so the
/// offload policy sees the pressure the paper's full-scale runs see.
fn pressured() -> SystemConfig {
    let mut cfg = SystemConfig::small();
    cfg.mem.l1.size_bytes /= 4;
    cfg.mem.l2.size_bytes /= 4;
    cfg
}

#[test]
fn stencil_offload_cuts_traffic_and_time() {
    // A 1D three-point stencil big enough for the offload policy to act.
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::{ElemType, Expr, Program};
    let n = 256 * 1024u64;
    let mut p = Program::new("stencil1d");
    let src = p.array("src", ElemType::F32, n);
    let dst = p.array("dst", ElemType::F32, n);
    let mut k = KernelBuilder::new("smooth", n - 2);
    let i = k.outer_var();
    let idx = Expr::var(i) + Expr::imm(1);
    let l = k.load(src, idx.clone() - Expr::imm(1));
    let m = k.load(src, idx.clone());
    let r = k.load(src, idx.clone() + Expr::imm(1));
    k.store(
        dst,
        idx,
        (Expr::var(l) + Expr::var(m) + Expr::var(r)) * Expr::immf(1.0 / 3.0),
    );
    k.sync_free();
    p.push_kernel(k.finish());
    let w_init = |_: &mut nsc_ir::Memory| {};
    let compiled = compile(&p);
    let cfg = pressured();
    let (base, _) = RunRequest::new(&p).compiled(&compiled).mode(ExecMode::Base).config(&cfg).init(&w_init).run();
    let (ns, _) = RunRequest::new(&p).compiled(&compiled).mode(ExecMode::Ns).config(&cfg).init(&w_init).run();
    let (dec, _) = RunRequest::new(&p).compiled(&compiled).mode(ExecMode::NsDecouple).config(&cfg).init(&w_init).run();
    assert!(ns.cycles < base.cycles, "NS {} vs Base {}", ns.cycles, base.cycles);
    assert!(
        (ns.traffic.total() as f64) < 0.7 * base.traffic.total() as f64,
        "NS traffic {} vs Base {}",
        ns.traffic.total(),
        base.traffic.total()
    );
    // With deep SE_L3 buffering the two modes converge; the
    // range-synchronized run's credit pacing can even smooth bursts, so
    // allow a modest inversion on this synthetic kernel.
    assert!(
        dec.cycles as f64 <= 1.2 * ns.cycles as f64,
        "sync-free must not slow down materially: {} vs {}",
        dec.cycles,
        ns.cycles
    );
    assert!(dec.traffic.total() <= ns.traffic.total());
}

#[test]
fn near_stream_dominates_inst_on_multiop_affine() {
    // The paper: INST's fine-grain offloading has 3-5x the traffic of NS
    // on affine workloads; NS matches or exceeds INST everywhere.
    let w = nsc_workloads::srad(Size::Tiny);
    let compiled = compile(&w.program);
    let cfg = pressured();
    let (inst, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::Inst).config(&cfg).init(&w.init).run();
    let (ns, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::Ns).config(&cfg).init(&w.init).run();
    assert!(ns.cycles <= inst.cycles, "NS {} vs INST {}", ns.cycles, inst.cycles);
    assert!(ns.traffic.offloaded < inst.traffic.offloaded);
}

#[test]
fn pointer_chase_offload_wins_at_scale() {
    // hash_join chains walk banks; near-stream removes the core round
    // trips from the chain.
    let w = nsc_workloads::hash_join(Size::Tiny);
    let compiled = compile(&w.program);
    let cfg = pressured();
    let (base, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::Base).config(&cfg).init(&w.init).run();
    let (dec, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::NsDecouple).config(&cfg).init(&w.init).run();
    assert!(
        (dec.traffic.total() as f64) < 0.8 * base.traffic.total() as f64,
        "decoupled traffic {} vs base {}",
        dec.traffic.total(),
        base.traffic.total()
    );
}

#[test]
fn reductions_return_only_final_values() {
    // An affine sum over a large array: only the final value should ever
    // travel to the core under NS.
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::{BinOp, ElemType, Expr, Program};
    let n = 512 * 1024u64;
    let mut p = Program::new("sum");
    let a = p.array("a", ElemType::I64, n);
    let out = p.array("out", ElemType::I64, 1);
    let mut k = KernelBuilder::new("sum", n);
    let i = k.outer_var();
    let v = k.load(a, Expr::var(i));
    let acc = k.var();
    k.assign(acc, Expr::var(acc) + Expr::var(v));
    k.reduce_outer(acc, BinOp::Add, out);
    k.sync_free();
    p.push_kernel(k.finish());
    let compiled = compile(&p);
    let cfg = pressured();
    let (base, _) = RunRequest::new(&p).compiled(&compiled).mode(ExecMode::Base).config(&cfg).run();
    let (ns, _) = RunRequest::new(&p).compiled(&compiled).mode(ExecMode::Ns).config(&cfg).run();
    assert!(
        (ns.traffic.total() as f64) < 0.7 * base.traffic.total() as f64, // compulsory DRAM traffic stays
        "NS {} vs Base {}",
        ns.traffic.total(),
        base.traffic.total()
    );
    assert!(ns.cycles <= base.cycles);
}

#[test]
fn mrsw_never_slower_than_exclusive() {
    for mk in [nsc_workloads::bfs_push, nsc_workloads::sssp] {
        let w = mk(Size::Tiny);
        let compiled = compile(&w.program);
        let mut cfg_x = pressured();
        cfg_x.mem.mrsw_lock = false;
        let (excl, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::Ns).config(&cfg_x).init(&w.init).run();
        let mut cfg_m = pressured();
        cfg_m.mem.mrsw_lock = true;
        let (mrsw, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::Ns).config(&cfg_m).init(&w.init).run();
        assert!(
            mrsw.cycles <= excl.cycles,
            "{}: MRSW {} vs exclusive {}",
            w.name,
            mrsw.cycles,
            excl.cycles
        );
        assert!(mrsw.lock_conflicts <= excl.lock_conflicts);
    }
}

#[test]
fn alias_detection_forces_streams_back_in_core() {
    // A kernel whose store stream genuinely aliases a core access pattern:
    // range-sync must detect it (conservatively) and flush, and the result
    // must still be correct.
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::{ElemType, Expr, Program};
    let n = 32 * 1024u64;
    let mut p = Program::new("alias");
    let a = p.array("a", ElemType::I64, n);
    let b = p.array("b", ElemType::I64, n);
    let mut k = KernelBuilder::new("k", n - 1);
    let i = k.outer_var();
    // Streamed store to b[i]; un-streamable core access b[i*i % n] aliases
    // the same array.
    let v = k.load(a, Expr::var(i));
    k.store(b, Expr::var(i), Expr::var(v) + Expr::imm(1));
    let idx = k.let_(Expr::bin(
        nsc_ir::BinOp::Rem,
        Expr::var(i) * Expr::var(i),
        Expr::imm(n as i64),
    ));
    let probe = k.load(b, Expr::var(idx)); // quadratic: not a stream
    k.store(a, Expr::var(i), Expr::var(probe));
    p.push_kernel(k.finish());
    let compiled = compile(&p);
    let cfg = pressured();
    let (r, _) = RunRequest::new(&p).compiled(&compiled).mode(ExecMode::Ns).config(&cfg).run();
    assert!(r.alias_flushes > 0, "conservative range check must fire");
}

#[test]
fn in_order_cores_gain_most_from_offloading() {
    // Paper Figure 10: all core types see similar NS speedups, with
    // in-order cores benefiting the most.
    use near_stream::CoreModel;
    let w = nsc_workloads::hotspot(Size::Tiny);
    let compiled = compile(&w.program);
    let mut io_cfg = pressured().with_core(CoreModel::io4());
    io_cfg.mem.l1_spatial_prefetch = false; // keep models comparable
    let ooo_cfg = pressured().with_core(CoreModel::ooo8());
    let (io_base, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::Base).config(&io_cfg).init(&w.init).run();
    let (io_ns, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::NsDecouple).config(&io_cfg).init(&w.init).run();
    let (ooo_base, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::Base).config(&ooo_cfg).init(&w.init).run();
    let (ooo_ns, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::NsDecouple).config(&ooo_cfg).init(&w.init).run();
    // The in-order baseline is slower than the OOO baseline...
    assert!(io_base.cycles > ooo_base.cycles, "IO4 {} vs OOO8 {}", io_base.cycles, ooo_base.cycles);
    // ...and near-stream computing narrows the gap (both end up
    // stream-throughput-bound).
    let io_speedup = io_base.cycles as f64 / io_ns.cycles.max(1) as f64;
    let ooo_speedup = ooo_base.cycles as f64 / ooo_ns.cycles.max(1) as f64;
    assert!(
        io_speedup >= 0.9 * ooo_speedup,
        "IO4 speedup {io_speedup:.2} vs OOO8 {ooo_speedup:.2}"
    );
}

#[test]
fn offloaded_fraction_matches_paper_generality() {
    // Paper Figure 11: on average 93% of stream-associated work offloads.
    let mut fracs = Vec::new();
    for w in nsc_workloads::all(Size::Tiny) {
        let compiled = compile(&w.program);
        let cfg = pressured();
        let (r, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::NsDecouple).config(&cfg).init(&w.init).run();
        fracs.push(r.offload_fraction());
    }
    let avg = fracs.iter().sum::<f64>() / fracs.len() as f64;
    assert!(avg > 0.5, "average offloaded fraction {avg:.2} too low");
}

#[test]
fn inst_traffic_exceeds_ns_on_fine_grain_offload() {
    // Paper: INST's per-iteration requests cost 3-5x NS's traffic on
    // affine workloads.
    let w = nsc_workloads::hotspot(Size::Tiny);
    let compiled = compile(&w.program);
    let cfg = pressured();
    let (inst, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::Inst).config(&cfg).init(&w.init).run();
    let (ns, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::NsDecouple).config(&cfg).init(&w.init).run();
    assert!(
        inst.traffic.offloaded > 2 * ns.traffic.offloaded.max(1),
        "INST offloaded {} vs NS {}",
        inst.traffic.offloaded,
        ns.traffic.offloaded
    );
}

#[test]
fn peb_flushes_on_store_aliasing_incore_stream() {
    // An in-core prefetched load stream whose array the core also stores
    // into: the PEB must detect the ordering hazard and flush
    // (paper §III-C "Memory Ordering").
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::{ElemType, Expr, Program};
    let n = 8 * 1024u64;
    let mut p = Program::new("peb");
    let a = p.array("a", ElemType::I64, n);
    let out = p.array("out", ElemType::I64, 1);
    let mut k = KernelBuilder::new("k", n - 64);
    let i = k.outer_var();
    // Streamed load runs ahead...
    let v = k.load(a, Expr::var(i) + Expr::imm(32));
    let acc = k.var();
    k.assign(acc, Expr::var(acc) + Expr::var(v));
    k.reduce_outer(acc, nsc_ir::BinOp::Add, out);
    // ...while an unstreamable store writes into the prefetched window.
    let idx = k.let_(Expr::bin(
        nsc_ir::BinOp::Rem,
        Expr::var(i) * Expr::var(i) + Expr::imm(40),
        Expr::imm(n as i64),
    ));
    k.store(a, Expr::var(idx), Expr::var(v));
    p.push_kernel(k.finish());
    let compiled = compile(&p);
    // NsCore keeps the stream in-core, exercising the PEB.
    let cfg = pressured();
    let (r, _) = RunRequest::new(&p).compiled(&compiled).mode(ExecMode::NsCore).config(&cfg).run();
    assert!(r.peb_flushes > 0, "PEB never fired");
}
