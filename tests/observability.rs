//! End-to-end observability checks: a traced simulation covers every
//! track family, the Chrome exporter produces valid Perfetto-loadable
//! JSON, and the machine-readable stats round-trip through the in-repo
//! JSON parser.

use near_stream::ExecMode;
use nsc_bench::{prepare, system_for};
use nsc_sim::json::{parse, Json};
use nsc_sim::trace::{self, chrome, RingRecorder, TraceEvent};
use nsc_sim::Histogram;
use nsc_workloads::{histogram, Size};

#[test]
fn traced_run_covers_stream_cache_noc_and_sync_tracks() {
    // `histogram` is the cheapest kernel that still exercises every track
    // family: offloaded RMW streams, line locks, migrations, range-sync.
    let p = prepare(histogram(Size::Tiny));
    let cfg = system_for(Size::Tiny);
    trace::install(RingRecorder::new(300_000), 16);
    let _ = p.run_unchecked(ExecMode::Ns, &cfg);
    let rec = trace::uninstall().expect("tracer was installed");

    let (mut config, mut step, mut end, mut cache, mut noc, mut sync, mut counter) =
        (0u64, 0u64, 0u64, 0u64, 0u64, 0u64, 0u64);
    for ev in rec.events() {
        match ev {
            TraceEvent::StreamConfig { .. } => config += 1,
            TraceEvent::StreamStep { .. } => step += 1,
            TraceEvent::StreamEnd { .. } => end += 1,
            TraceEvent::CacheAccess { .. } => cache += 1,
            TraceEvent::NocMsg { .. } => noc += 1,
            TraceEvent::RangeSync { .. } => sync += 1,
            TraceEvent::CounterSample { .. } => counter += 1,
            _ => {}
        }
    }
    assert!(config > 0, "no StreamConfig events");
    assert!(step > 0, "no StreamStep events");
    assert!(end > 0, "no StreamEnd events");
    assert!(cache > 0, "no CacheAccess events");
    assert!(noc > 0, "no NocMsg events");
    assert!(sync > 0, "no RangeSync events");
    assert!(counter > 0, "no CounterSample events");

    // The exported document is valid JSON with all Perfetto phases.
    let doc = parse(&chrome::render(rec.events())).expect("chrome trace is valid JSON");
    let list = doc.get("traceEvents").and_then(Json::as_arr).expect("traceEvents array");
    assert!(list.len() > rec.len(), "metadata events missing");
    for needed in ["X", "i", "C", "M"] {
        assert!(
            list.iter()
                .any(|e| e.get("ph").and_then(Json::as_str) == Some(needed)),
            "no {needed:?}-phase events in the trace"
        );
    }
}

#[test]
fn disabled_tracing_records_nothing_and_costs_no_allocation() {
    // No tracer installed on this thread: a full simulation runs through
    // all emit sites without a recorder to write to.
    let p = prepare(histogram(Size::Tiny));
    let cfg = system_for(Size::Tiny);
    let r = p.run_checked(ExecMode::Ns, &cfg);
    assert!(r.cycles > 0);
    assert!(trace::uninstall().is_none());
}

#[test]
fn run_result_stats_roundtrip_through_json() {
    let p = prepare(histogram(Size::Tiny));
    let cfg = system_for(Size::Tiny);
    let r = p.run_checked(ExecMode::Base, &cfg);
    let table = r.to_table();
    let doc = parse(&table.to_json()).expect("stats table is valid JSON");
    let obj = doc.as_obj().expect("flat object");
    assert_eq!(obj.len(), table.len());
    for (k, v) in table.iter() {
        assert_eq!(doc.get(k).and_then(Json::as_f64), Some(v), "stat {k} diverged");
    }
    // The conventional prefixes are all present.
    for prefix in ["traffic.", "uops.", "locks.", "aliases."] {
        assert!(
            table.iter().any(|(k, _)| k.starts_with(prefix)),
            "no {prefix}* stats"
        );
    }
}

#[test]
fn noc_latency_histogram_is_populated_with_ordered_percentiles() {
    let p = prepare(histogram(Size::Tiny));
    let cfg = system_for(Size::Tiny);
    let r = p.run_checked(ExecMode::Ns, &cfg);
    let h = &r.noc_latency;
    assert!(h.summary().count() > 0, "no NoC latencies recorded");
    let (p50, p90, p99) = (h.percentile(50.0), h.percentile(90.0), h.percentile(99.0));
    assert!(p50 > 0.0);
    assert!(p50 <= p90 && p90 <= p99, "percentiles out of order: {p50} {p90} {p99}");
    assert!(p99 <= h.summary().max().unwrap());
}

#[test]
fn histogram_clamps_negative_samples_into_bucket_zero() {
    // Regression: negative samples used to rely on `as usize` saturation;
    // the clamp is now explicit and documented.
    let mut h = Histogram::new(4.0, 8);
    h.record(-123.5);
    h.record(f64::NAN);
    h.record(2.0);
    assert_eq!(h.bucket_counts()[0], 3);
    assert_eq!(h.summary().count(), 3);
}

#[test]
fn empty_histogram_percentiles_are_null_in_results_json() {
    // Regression: empty histograms used to report p50/p90/p99 as 0, which
    // is indistinguishable from a real zero-latency measurement. They must
    // render as JSON null.
    use nsc_bench::Report;
    let dir = std::env::temp_dir().join(format!("nsc_obs_null_{}", std::process::id()));
    std::env::set_var("NSC_RESULTS_DIR", &dir);
    let mut rep = Report::new("empty_hist_regression", Size::Tiny);
    rep.hist("noc_latency_empty", &Histogram::new(8.0, 4));
    let path = rep.finish().expect("write results json");
    std::env::remove_var("NSC_RESULTS_DIR");
    let text = std::fs::read_to_string(&path).expect("results file exists");
    std::fs::remove_dir_all(&dir).ok();
    let doc = parse(&text).expect("results are valid JSON");
    let hists = doc.get("histograms").and_then(Json::as_obj).unwrap();
    let h = hists.get("noc_latency_empty").unwrap();
    assert_eq!(h.get("count").and_then(Json::as_f64), Some(0.0));
    for p in ["p50", "p90", "p99"] {
        assert_eq!(h.get(p), Some(&Json::Null), "{p} must be null when empty");
    }
    // Sanity: a populated histogram still reports numbers.
    let mut full = Histogram::new(8.0, 4);
    full.record(3.0);
    assert_eq!(full.percentile_opt(50.0), Some(full.percentile(50.0)));
}
