//! Tier behavior of the result cache under byte budgets: forced hot- and
//! cold-tier evictions between passes must never change replayed record
//! bytes, and a shared store must be worker-count invariant. These tests
//! arm the cache through `NSC_CACHE` and drive explicit tiny-budget
//! [`TieredCache`] instances (never the process-wide handle), so they
//! live alone in their own test binary: env mutation in a multi-threaded
//! harness would race other test binaries' latched cache state.

use near_stream::request::encode;
use near_stream::{ExecMode, RunRequest, SystemConfig};
use nsc_compiler::compile;
use nsc_ir::build::KernelBuilder;
use nsc_ir::{ElemType, Expr, Program};
use nsc_sim::cache::{CacheStore, Key, TieredCache};
use nsc_sim::fault::FaultStats;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Arms cache consultation before the first `enabled()` call latches.
/// Every test calls this first; re-setting the same value is idempotent.
fn arm() {
    std::env::set_var("NSC_CACHE", "1");
}

fn fresh_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("nsc-tiers-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

/// A minimal one-kernel program; `imm` lands in an instruction
/// immediate, so each value yields a distinct cache key.
fn probe_program(imm: i64) -> Program {
    let mut p = Program::new("tier_probe");
    let a = p.array("a", ElemType::I64, 64);
    let out = p.array("out", ElemType::I64, 64);
    let mut k = KernelBuilder::new("k", 64);
    let i = k.outer_var();
    let v = k.load(a, Expr::var(i));
    k.store(out, Expr::var(i), Expr::var(v) + Expr::imm(imm));
    p.push_kernel(k.finish());
    p
}

/// Runs one request per `imm` through the cached path against `store`
/// and returns each result re-encoded in the record codec, so passes
/// can be compared byte-for-byte.
fn sweep_bytes(store: &TieredCache, imms: &[i64]) -> Vec<String> {
    imms.iter()
        .map(|&imm| {
            let p = probe_program(imm);
            let c = compile(&p);
            let cfg = SystemConfig::small();
            let r = RunRequest::new(&p)
                .compiled(&c)
                .mode(ExecMode::Ns)
                .config(&cfg)
                .try_run_cached_in(store)
                .expect("cached run");
            encode(&r, &FaultStats::default())
        })
        .collect()
}

/// Incompressible filler (random-looking hex): defeats the record
/// compressor so each filler store carries its full weight against the
/// cold tier's byte budget.
fn noise(len: usize, mut seed: u64) -> String {
    let mut s = String::with_capacity(len + 16);
    while s.len() < len {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s.push_str(&format!("{seed:016x}"));
    }
    s.truncate(len);
    s
}

/// The core replay property: a warm pass over a budget-capped store must
/// reproduce the cold pass byte-for-byte even when filler stores evict
/// the sweep's records from both tiers in between. Evicted entries cost
/// a re-simulation, never a changed byte.
#[test]
fn budget_capped_tiers_replay_sweeps_byte_identically() {
    arm();
    let store = TieredCache::with_config(fresh_dir("replay"), 4096, 4096, true);
    let imms: Vec<i64> = (1..=6).collect();
    let cold = sweep_bytes(&store, &imms);

    for i in 0..4u64 {
        let key = Key::parse_hex(&format!("{i:032x}")).expect("filler key");
        store.store(&key, &noise(2048, i + 1)).expect("filler store");
    }
    let stats = store.stats();
    assert!(
        stats.cold.evictions > 0,
        "fillers must force cold-tier evictions: {stats:?}"
    );
    assert!(
        stats.hot.evictions > 0,
        "fillers must force hot-tier evictions: {stats:?}"
    );

    let warm = sweep_bytes(&store, &imms);
    assert_eq!(cold, warm, "eviction pressure changed a replayed record");
}

/// With room to spare, a doubly-warm sweep is answered entirely by the
/// in-memory hot tier: every lookup hits, nothing re-reads disk, and
/// the aggregate hit/miss split matches the legacy cold-only semantics.
#[test]
fn warm_sweep_is_served_from_the_hot_tier() {
    arm();
    let store = TieredCache::with_config(fresh_dir("hot"), 64 << 20, 0, false);
    let imms = [11, 12, 13];
    let cold = sweep_bytes(&store, &imms);
    store.reset_stats();
    let warm = sweep_bytes(&store, &imms);
    assert_eq!(cold, warm, "warm replay diverged from the cold run");
    let s = store.stats();
    assert_eq!(s.hot.hits, imms.len() as u64, "warm pass must hit hot: {s:?}");
    assert_eq!(s.hits(), imms.len() as u64);
    assert_eq!(s.misses(), 0, "a fully warm pass reports zero misses: {s:?}");
}

/// Runs the sweep with `jobs` workers racing over one shared store,
/// collecting results by submission index.
fn sweep_with_workers(dir: &Path, jobs: usize, imms: &[i64]) -> Vec<String> {
    let store = TieredCache::with_config(dir.to_path_buf(), 4096, 4096, true);
    let out: Vec<Mutex<Option<String>>> = imms.iter().map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..jobs {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= imms.len() {
                    break;
                }
                let p = probe_program(imms[i]);
                let c = compile(&p);
                let cfg = SystemConfig::small();
                let r = RunRequest::new(&p)
                    .compiled(&c)
                    .mode(ExecMode::Ns)
                    .config(&cfg)
                    .try_run_cached_in(&store)
                    .expect("cached run");
                *out[i].lock().unwrap() = Some(encode(&r, &FaultStats::default()));
            });
        }
    });
    out.into_iter()
        .map(|m| m.into_inner().unwrap().expect("every index ran"))
        .collect()
}

/// `NSC_JOBS`-style determinism: the same sweep through one worker and
/// through eight racing workers (each pass on a fresh tiny-budget store,
/// so admission/eviction interleaving differs wildly) yields identical
/// result bytes per request.
#[test]
fn shared_store_results_are_worker_count_invariant() {
    arm();
    let imms: Vec<i64> = (21..=28).collect();
    let serial = sweep_with_workers(&fresh_dir("jobs1"), 1, &imms);
    let racy = sweep_with_workers(&fresh_dir("jobs8"), 8, &imms);
    assert_eq!(serial, racy, "worker count leaked into replayed record bytes");
}
