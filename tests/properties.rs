//! Property-based invariants over the substrates (proptest).

use nsc_ir::encoding::{AffineConfig, ComputeConfig, IndirectConfig};
use nsc_mem::addr::AddrRange;
use nsc_mem::{Addr, Cache, CacheConfig, LockKind, MrswLockTable, ReplacePolicy};
use nsc_noc::topology::{xy_route, TileId};
use nsc_sim::resource::BandwidthLedger;
use nsc_sim::{Cycle, EventQueue};
use proptest::prelude::*;

proptest! {
    /// X-Y routing always delivers, with hop count equal to Manhattan
    /// distance and a properly chained path.
    #[test]
    fn routing_is_manhattan(sx in 0u16..8, sy in 0u16..8, dx in 0u16..8, dy in 0u16..8) {
        let s = TileId::from_xy(sx, sy, 8);
        let d = TileId::from_xy(dx, dy, 8);
        let route = xy_route(s, d, 8);
        prop_assert_eq!(route.len() as u64, s.hops_to(d, 8));
        if let Some(first) = route.first() {
            prop_assert_eq!(first.from, s);
            prop_assert_eq!(route.last().unwrap().to, d);
        }
        for pair in route.windows(2) {
            prop_assert_eq!(pair[0].to, pair[1].from);
            prop_assert_eq!(pair[0].to.hops_to(pair[1].to, 8), 1);
        }
    }

    /// The event queue is a stable priority queue: pops come out in
    /// nondecreasing time, ties in insertion order.
    #[test]
    fn event_queue_is_stable(times in proptest::collection::vec(0u64..1000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, t) in times.iter().enumerate() {
            q.push(Cycle(*t), i);
        }
        let mut last: Option<(Cycle, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated for equal times");
                }
            }
            last = Some((t, i));
        }
    }

    /// Bandwidth ledger: completion is never earlier than pure
    /// serialization, and total booked units are conserved.
    #[test]
    fn ledger_conserves_and_orders(
        bookings in proptest::collection::vec((0u64..10_000, 1u64..100), 1..100)
    ) {
        let mut l = BandwidthLedger::new(16, 16);
        let mut total = 0;
        for (t, units) in &bookings {
            let done = l.book(Cycle(*t), *units);
            total += units;
            // 16 units per 16 cycles = 1 unit/cycle minimum serialization.
            prop_assert!(done.raw() >= t + units);
        }
        prop_assert_eq!(l.total_booked(), total);
    }

    /// Address-range algebra: extend is monotone and overlap detection is
    /// conservative (never misses a genuine overlap).
    #[test]
    fn range_overlap_is_conservative(
        pts_a in proptest::collection::vec(0u64..10_000, 1..20),
        pts_b in proptest::collection::vec(0u64..10_000, 1..20),
    ) {
        let mut ra = AddrRange::empty();
        for &p in &pts_a { ra.extend(Addr(p), 4); }
        let mut rb = AddrRange::empty();
        for &p in &pts_b { rb.extend(Addr(p), 4); }
        // Genuine overlap: any pair of touched intervals intersecting.
        let genuine = pts_a.iter().any(|&a| pts_b.iter().any(|&b| a < b + 4 && b < a + 4));
        if genuine {
            prop_assert!(ra.overlaps(&rb), "missed a real overlap");
        }
        // Every touched point is inside its range.
        for &p in &pts_a {
            prop_assert!(ra.touches(Addr(p), 4));
        }
    }

    /// Cache: inserting never exceeds capacity, a just-inserted line is
    /// resident, and eviction victims were previously resident.
    #[test]
    fn cache_capacity_invariant(lines in proptest::collection::vec(0u64..1000, 1..300)) {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 4096,
            ways: 4,
            latency: Cycle(1),
            policy: ReplacePolicy::BimodalRrip { p_promote_permille: 30 },
            set_skip_bits: 0,
        });
        let capacity = 4096 / 64;
        let mut resident = std::collections::HashSet::new();
        for &l in &lines {
            let line = nsc_mem::LineAddr(l);
            if let Some(ev) = c.insert(line, false, Cycle::ZERO) {
                prop_assert!(resident.remove(&ev.line), "evicted a non-resident line");
            }
            resident.insert(line);
            resident.retain(|x| c.contains(*x));
            prop_assert!(c.contains(line));
            prop_assert!(c.resident_lines() <= capacity as usize);
        }
    }

    /// MRSW lock: exclusive holds on one line are throughput-exclusive —
    /// their total duration fits in the time span they were granted (the
    /// occupancy ledger is epoch-quantized, so pairwise exclusion holds at
    /// epoch granularity, one epoch of slack per line).
    #[test]
    fn mrsw_exclusion(ops in proptest::collection::vec((0u64..3, 0u64..500, any::<bool>()), 1..60)) {
        let mut t = MrswLockTable::new(true);
        let mut grants: Vec<(u64, u64, bool)> = Vec::new(); // line, start, excl
        for (line, now, excl) in &ops {
            let kind = if *excl { LockKind::Exclusive } else { LockKind::Shared };
            let start = t.acquire(Cycle(*now), nsc_mem::LineAddr(*line), kind, 10);
            prop_assert!(start >= Cycle(*now), "lock granted before it was requested");
            grants.push((*line, start.raw(), *excl));
        }
        for line in 0..3u64 {
            let ex: Vec<u64> = grants
                .iter()
                .filter(|(l, _, x)| *l == line && *x)
                .map(|(_, s, _)| *s)
                .collect();
            if ex.len() < 2 {
                continue;
            }
            let span = ex.iter().max().unwrap() + 10 - ex.iter().min().unwrap();
            let total = 10 * ex.len() as u64;
            prop_assert!(
                total <= span + 16,
                "line {line}: {total} lock-cycles granted within a {span}-cycle span"
            );
        }
    }

    /// Stream-configuration encodings round-trip at every field value.
    #[test]
    fn encodings_roundtrip(
        cid in 0u8..64, sid in 0u8..16, base in 0u64..(1 << 48),
        stride in 0u64..(1 << 48), iter in 0u64..(1 << 48), size in any::<u8>(),
        ctype in 0u8..16, fptr in 0u64..(1 << 48), data in any::<u64>(),
    ) {
        let a = AffineConfig {
            cid, sid, base,
            strides: [stride, stride / 2, 0],
            ptbl: base ^ 0xFFF,
            iter, size,
            lens: [iter / 2, 3, 1],
        };
        prop_assert_eq!(AffineConfig::decode(&a.encode()), a);
        let i = IndirectConfig { sid, base, size };
        prop_assert_eq!(IndirectConfig::decode(&i.encode()), i);
        let c = ComputeConfig {
            ctype,
            arg_sids: [sid; 8],
            ret_log2: (size % 8),
            fptr,
            arg_size_log2: [size % 8; 8],
            const_data: data,
        };
        prop_assert_eq!(ComputeConfig::decode(&c.encode()), c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Arbitrary small affine+indirect programs compute identically under
    /// Base and NS (a randomized functional-transparency check).
    #[test]
    fn random_gather_program_is_transparent(
        n in 64u64..256,
        scale in 1i64..4,
        offset in 0i64..8,
        seed in any::<u64>(),
    ) {
        use nsc_ir::build::KernelBuilder;
        use nsc_ir::{ElemType, Expr, Program, Scalar};
        let mut p = Program::new("rand_gather");
        let idx = p.array("idx", ElemType::I64, n);
        let src = p.array("src", ElemType::I64, n * 4 + 8);
        let dst = p.array("dst", ElemType::I64, n);
        let mut k = KernelBuilder::new("gather", n);
        let i = k.outer_var();
        let which = k.load(idx, Expr::var(i));
        let v = k.load(src, Expr::var(which) * Expr::imm(scale) + Expr::imm(offset));
        k.store(dst, Expr::var(i), Expr::var(v) + Expr::imm(seed as i64 % 100));
        p.push_kernel(k.finish());
        let compiled = nsc_compiler::compile(&p);
        let init = move |mem: &mut nsc_ir::Memory| {
            let mut x = seed | 1;
            for j in 0..n {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                mem.write_index(idx, j, Scalar::I64((x % n) as i64));
                mem.write_index(src, j, Scalar::I64((x >> 32) as i64));
            }
        };
        let cfg = near_stream::SystemConfig::small();
        let (_, base_mem) = near_stream::run(&p, &compiled, &[], near_stream::ExecMode::Base, &cfg, &init);
        let (_, ns_mem) = near_stream::run(&p, &compiled, &[], near_stream::ExecMode::Ns, &cfg, &init);
        for j in 0..n {
            prop_assert_eq!(base_mem.read_index(dst, j), ns_mem.read_index(dst, j));
        }
    }
}

proptest! {
    /// Multicast: tree traffic never exceeds the sum of unicast paths, and
    /// every destination is reached no earlier than its own hop latency.
    #[test]
    fn multicast_bounded_by_unicasts(
        src in 0u16..64,
        dsts in proptest::collection::vec(0u16..64, 1..8),
    ) {
        use nsc_noc::{Mesh, MeshConfig, MsgClass, TileId};
        let mut cfg = MeshConfig::paper_8x8();
        cfg.contention = false;
        let mut m_multi = Mesh::new(cfg.clone());
        let mut m_uni = Mesh::new(cfg);
        let tiles: Vec<TileId> = dsts.iter().map(|d| TileId(*d)).collect();
        m_multi.multicast(Cycle(0), TileId(src), &tiles, 8, MsgClass::Control);
        for d in &tiles {
            m_uni.send(Cycle(0), TileId(src), *d, 8, MsgClass::Control);
        }
        prop_assert!(
            m_multi.traffic().total_bytes_hops() <= m_uni.traffic().total_bytes_hops(),
            "multicast {} vs unicasts {}",
            m_multi.traffic().total_bytes_hops(),
            m_uni.traffic().total_bytes_hops()
        );
    }

    /// The TLB never reports a hit for a page it has not installed, and
    /// hits + misses account for every translation.
    #[test]
    fn tlb_accounting(pages in proptest::collection::vec(0u64..64, 1..200)) {
        use nsc_mem::tlb::{Tlb, HUGE_PAGE_BITS};
        let mut tlb = Tlb::new(16, 4, Cycle(8), Cycle(60));
        let mut installed = std::collections::HashSet::new();
        for (i, p) in pages.iter().enumerate() {
            let before = (tlb.hits(), tlb.misses());
            tlb.translate(p << HUGE_PAGE_BITS, Cycle(i as u64 * 100));
            let after = (tlb.hits(), tlb.misses());
            prop_assert_eq!(after.0 + after.1, before.0 + before.1 + 1);
            if after.1 > before.1 {
                installed.insert(*p);
            } else {
                // A hit requires a prior install (possibly since evicted
                // pages were re-walked, so membership is sufficient).
                prop_assert!(installed.contains(p), "hit on never-walked page {}", p);
            }
        }
        prop_assert_eq!(tlb.hits() + tlb.misses(), pages.len() as u64);
    }
}
