//! Randomized invariants over the substrates.
//!
//! These used to be proptest properties; they are now seeded randomized
//! loops driven by the in-repo `nsc_sim::rng` generator so the workspace
//! builds with zero external dependencies. Each test fixes its seed, so
//! failures reproduce deterministically; the case counts are sized to
//! cover the same space the proptest versions explored.

use nsc_ir::encoding::{AffineConfig, ComputeConfig, IndirectConfig};
use nsc_mem::addr::AddrRange;
use nsc_mem::{Addr, Cache, CacheConfig, LockKind, MrswLockTable, ReplacePolicy};
use nsc_noc::topology::{xy_route, TileId};
use nsc_sim::resource::BandwidthLedger;
use nsc_sim::rng::Rng;
use nsc_sim::{Cycle, EventQueue};

/// X-Y routing always delivers, with hop count equal to Manhattan
/// distance and a properly chained path.
#[test]
fn routing_is_manhattan() {
    for sx in 0u16..8 {
        for sy in 0u16..8 {
            for dx in 0u16..8 {
                for dy in 0u16..8 {
                    let s = TileId::from_xy(sx, sy, 8);
                    let d = TileId::from_xy(dx, dy, 8);
                    let route = xy_route(s, d, 8);
                    assert_eq!(route.len() as u64, s.hops_to(d, 8));
                    if let Some(first) = route.first() {
                        assert_eq!(first.from, s);
                        assert_eq!(route.last().unwrap().to, d);
                    }
                    for pair in route.windows(2) {
                        assert_eq!(pair[0].to, pair[1].from);
                        assert_eq!(pair[0].to.hops_to(pair[1].to, 8), 1);
                    }
                }
            }
        }
    }
}

/// The event queue is a stable priority queue: pops come out in
/// nondecreasing time, ties in insertion order.
#[test]
fn event_queue_is_stable() {
    let mut rng = Rng::seed_from_u64(0xE0E0);
    for _ in 0..100 {
        let n = 1 + rng.gen_range_usize(199);
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(Cycle(rng.gen_range_u64(1000)), i);
        }
        let mut last: Option<(Cycle, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt);
                if t == lt {
                    assert!(i > li, "FIFO violated for equal times");
                }
            }
            last = Some((t, i));
        }
    }
}

/// The calendar queue agrees with a plain `BinaryHeap` reference on random
/// interleaved push/pop schedules, across bucket geometries that force
/// heavy overflow use, ring wrap-around, and same-day pileups.
#[test]
fn calendar_queue_matches_heap_reference() {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let mut rng = Rng::seed_from_u64(0xCA1E_0DD5);
    for (shift, buckets) in [(0u32, 4usize), (2, 16), (4, 512), (6, 64)] {
        let mut q = EventQueue::with_geometry(shift, buckets);
        // Reference: (time, seq) min-heap — the exact FIFO-stable contract.
        let mut reference: BinaryHeap<Reverse<(Cycle, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let mut now = 0u64;
        for _ in 0..3000 {
            if rng.gen_range_u64(3) > 0 || q.is_empty() {
                // Schedule at, near, or far past `now` (exercises overflow).
                let horizon = match rng.gen_range_u64(3) {
                    0 => 1 + rng.gen_range_u64(8),
                    1 => 1 + rng.gen_range_u64(200),
                    _ => 1 + rng.gen_range_u64(100_000),
                };
                let t = Cycle(now + horizon);
                q.push(t, seq);
                reference.push(Reverse((t, seq)));
                seq += 1;
            } else {
                let got = q.pop();
                let want = reference.pop().map(|Reverse(pair)| pair);
                assert_eq!(got, want, "divergence at geometry ({shift}, {buckets})");
                if let Some((t, _)) = got {
                    now = t.raw();
                }
            }
            assert_eq!(q.len(), reference.len());
            assert_eq!(
                q.peek_time(),
                reference.peek().map(|Reverse((t, _))| *t),
                "peek divergence at geometry ({shift}, {buckets})"
            );
        }
        // Drain: full order must match.
        while let Some(want) = reference.pop().map(|Reverse(pair)| pair) {
            assert_eq!(q.pop(), Some(want));
        }
        assert!(q.pop().is_none());
    }
}

/// Bandwidth ledger: completion is never earlier than pure serialization,
/// and total booked units are conserved.
#[test]
fn ledger_conserves_and_orders() {
    let mut rng = Rng::seed_from_u64(0x1ED6E2);
    for _ in 0..100 {
        let n = 1 + rng.gen_range_usize(99);
        let mut l = BandwidthLedger::new(16, 16);
        let mut total = 0;
        for _ in 0..n {
            let t = rng.gen_range_u64(10_000);
            let units = 1 + rng.gen_range_u64(99);
            let done = l.book(Cycle(t), units);
            total += units;
            // 16 units per 16 cycles = 1 unit/cycle minimum serialization.
            assert!(done.raw() >= t + units);
        }
        assert_eq!(l.total_booked(), total);
    }
}

/// Address-range algebra: extend is monotone and overlap detection is
/// conservative (never misses a genuine overlap).
#[test]
fn range_overlap_is_conservative() {
    let mut rng = Rng::seed_from_u64(0x0A11A5);
    for _ in 0..300 {
        let na = 1 + rng.gen_range_usize(19);
        let nb = 1 + rng.gen_range_usize(19);
        let pts_a: Vec<u64> = (0..na).map(|_| rng.gen_range_u64(10_000)).collect();
        let pts_b: Vec<u64> = (0..nb).map(|_| rng.gen_range_u64(10_000)).collect();
        let mut ra = AddrRange::empty();
        for &p in &pts_a {
            ra.extend(Addr(p), 4);
        }
        let mut rb = AddrRange::empty();
        for &p in &pts_b {
            rb.extend(Addr(p), 4);
        }
        // Genuine overlap: any pair of touched intervals intersecting.
        let genuine = pts_a
            .iter()
            .any(|&a| pts_b.iter().any(|&b| a < b + 4 && b < a + 4));
        if genuine {
            assert!(ra.overlaps(&rb), "missed a real overlap");
        }
        // Every touched point is inside its range.
        for &p in &pts_a {
            assert!(ra.touches(Addr(p), 4));
        }
    }
}

/// Cache: inserting never exceeds capacity, a just-inserted line is
/// resident, and eviction victims were previously resident.
#[test]
fn cache_capacity_invariant() {
    let mut rng = Rng::seed_from_u64(0xCAC4E);
    for _ in 0..50 {
        let n = 1 + rng.gen_range_usize(299);
        let mut c = Cache::new(CacheConfig {
            size_bytes: 4096,
            ways: 4,
            latency: Cycle(1),
            policy: ReplacePolicy::BimodalRrip {
                p_promote_permille: 30,
            },
            set_skip_bits: 0,
        });
        let capacity = 4096 / 64;
        let mut resident = std::collections::HashSet::new();
        for _ in 0..n {
            let line = nsc_mem::LineAddr(rng.gen_range_u64(1000));
            if let Some(ev) = c.insert(line, false, Cycle::ZERO) {
                assert!(resident.remove(&ev.line), "evicted a non-resident line");
            }
            resident.insert(line);
            resident.retain(|x| c.contains(*x));
            assert!(c.contains(line));
            assert!(c.resident_lines() <= capacity as usize);
        }
    }
}

/// MRSW lock: exclusive holds on one line are throughput-exclusive —
/// their total duration fits in the time span they were granted (the
/// occupancy ledger is epoch-quantized, so pairwise exclusion holds at
/// epoch granularity, one epoch of slack per line).
#[test]
fn mrsw_exclusion() {
    let mut rng = Rng::seed_from_u64(0x3C1);
    for _ in 0..100 {
        let n = 1 + rng.gen_range_usize(59);
        let mut t = MrswLockTable::new(true);
        let mut grants: Vec<(u64, u64, bool)> = Vec::new(); // line, start, excl
        for _ in 0..n {
            let line = rng.gen_range_u64(3);
            let now = rng.gen_range_u64(500);
            let excl = rng.gen_bool();
            let kind = if excl {
                LockKind::Exclusive
            } else {
                LockKind::Shared
            };
            let start = t.acquire(Cycle(now), nsc_mem::LineAddr(line), kind, 10);
            assert!(start >= Cycle(now), "lock granted before it was requested");
            grants.push((line, start.raw(), excl));
        }
        for line in 0..3u64 {
            let ex: Vec<u64> = grants
                .iter()
                .filter(|(l, _, x)| *l == line && *x)
                .map(|(_, s, _)| *s)
                .collect();
            if ex.len() < 2 {
                continue;
            }
            let span = ex.iter().max().unwrap() + 10 - ex.iter().min().unwrap();
            let total = 10 * ex.len() as u64;
            assert!(
                total <= span + 16,
                "line {line}: {total} lock-cycles granted within a {span}-cycle span"
            );
        }
    }
}

/// Stream-configuration encodings round-trip at every field value.
#[test]
fn encodings_roundtrip() {
    let mut rng = Rng::seed_from_u64(0xE4C0DE);
    for _ in 0..500 {
        let cid = rng.gen_range_u64(64) as u8;
        let sid = rng.gen_range_u64(16) as u8;
        let base = rng.gen_range_u64(1 << 48);
        let stride = rng.gen_range_u64(1 << 48);
        let iter = rng.gen_range_u64(1 << 48);
        let size = rng.next_u64() as u8;
        let ctype = rng.gen_range_u64(16) as u8;
        let fptr = rng.gen_range_u64(1 << 48);
        let data = rng.next_u64();
        let a = AffineConfig {
            cid,
            sid,
            base,
            strides: [stride, stride / 2, 0],
            ptbl: base ^ 0xFFF,
            iter,
            size,
            lens: [iter / 2, 3, 1],
        };
        assert_eq!(AffineConfig::decode(&a.encode()), a);
        let i = IndirectConfig { sid, base, size };
        assert_eq!(IndirectConfig::decode(&i.encode()), i);
        let c = ComputeConfig {
            ctype,
            arg_sids: [sid; 8],
            ret_log2: (size % 8),
            fptr,
            arg_size_log2: [size % 8; 8],
            const_data: data,
        };
        assert_eq!(ComputeConfig::decode(&c.encode()), c);
    }
}

/// Arbitrary small affine+indirect programs compute identically under
/// Base and NS (a randomized functional-transparency check).
#[test]
fn random_gather_program_is_transparent() {
    let mut rng = Rng::seed_from_u64(0x6A74E2);
    for _ in 0..16 {
        let n = 64 + rng.gen_range_u64(192);
        let scale = 1 + rng.gen_range_u64(3) as i64;
        let offset = rng.gen_range_u64(8) as i64;
        let seed = rng.next_u64();
        use nsc_ir::build::KernelBuilder;
        use nsc_ir::{ElemType, Expr, Program, Scalar};
        let mut p = Program::new("rand_gather");
        let idx = p.array("idx", ElemType::I64, n);
        let src = p.array("src", ElemType::I64, n * 4 + 8);
        let dst = p.array("dst", ElemType::I64, n);
        let mut k = KernelBuilder::new("gather", n);
        let i = k.outer_var();
        let which = k.load(idx, Expr::var(i));
        let v = k.load(src, Expr::var(which) * Expr::imm(scale) + Expr::imm(offset));
        k.store(dst, Expr::var(i), Expr::var(v) + Expr::imm(seed as i64 % 100));
        p.push_kernel(k.finish());
        let compiled = nsc_compiler::compile(&p);
        let init = move |mem: &mut nsc_ir::Memory| {
            let mut x = seed | 1;
            for j in 0..n {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                mem.write_index(idx, j, Scalar::I64((x % n) as i64));
                mem.write_index(src, j, Scalar::I64((x >> 32) as i64));
            }
        };
        let cfg = near_stream::SystemConfig::small();
        let (_, base_mem) = near_stream::RunRequest::new(&p).compiled(&compiled).mode(near_stream::ExecMode::Base).config(&cfg).init(&init).run();
        let (_, ns_mem) =
            near_stream::RunRequest::new(&p).compiled(&compiled).mode(near_stream::ExecMode::Ns).config(&cfg).init(&init).run();
        for j in 0..n {
            assert_eq!(base_mem.read_index(dst, j), ns_mem.read_index(dst, j));
        }
    }
}

/// Multicast: tree traffic never exceeds the sum of unicast paths, and
/// every destination is reached no earlier than its own hop latency.
#[test]
fn multicast_bounded_by_unicasts() {
    let mut rng = Rng::seed_from_u64(0x3417);
    for _ in 0..200 {
        let src = rng.gen_range_u64(64) as u16;
        let nd = 1 + rng.gen_range_usize(7);
        let dsts: Vec<u16> = (0..nd).map(|_| rng.gen_range_u64(64) as u16).collect();
        use nsc_noc::{Mesh, MeshConfig, MsgClass, TileId};
        let mut cfg = MeshConfig::paper_8x8();
        cfg.contention = false;
        let mut m_multi = Mesh::new(cfg.clone());
        let mut m_uni = Mesh::new(cfg);
        let tiles: Vec<TileId> = dsts.iter().map(|d| TileId(*d)).collect();
        m_multi.multicast(Cycle(0), TileId(src), &tiles, 8, MsgClass::Control);
        for d in &tiles {
            m_uni.send(Cycle(0), TileId(src), *d, 8, MsgClass::Control);
        }
        assert!(
            m_multi.traffic().total_bytes_hops() <= m_uni.traffic().total_bytes_hops(),
            "multicast {} vs unicasts {}",
            m_multi.traffic().total_bytes_hops(),
            m_uni.traffic().total_bytes_hops()
        );
    }
}

/// The TLB never reports a hit for a page it has not installed, and
/// hits + misses account for every translation.
#[test]
fn tlb_accounting() {
    let mut rng = Rng::seed_from_u64(0x71B);
    for _ in 0..100 {
        let n = 1 + rng.gen_range_usize(199);
        let pages: Vec<u64> = (0..n).map(|_| rng.gen_range_u64(64)).collect();
        use nsc_mem::tlb::{Tlb, HUGE_PAGE_BITS};
        let mut tlb = Tlb::new(16, 4, Cycle(8), Cycle(60));
        let mut installed = std::collections::HashSet::new();
        for (i, p) in pages.iter().enumerate() {
            let before = (tlb.hits(), tlb.misses());
            tlb.translate(p << HUGE_PAGE_BITS, Cycle(i as u64 * 100));
            let after = (tlb.hits(), tlb.misses());
            assert_eq!(after.0 + after.1, before.0 + before.1 + 1);
            if after.1 > before.1 {
                installed.insert(*p);
            } else {
                // A hit requires a prior install (possibly since evicted
                // pages were re-walked, so membership is sufficient).
                assert!(installed.contains(p), "hit on never-walked page {}", p);
            }
        }
        assert_eq!(tlb.hits() + tlb.misses(), pages.len() as u64);
    }
}

/// Fault injection is transparent: for random fault plans and random
/// workload shapes, the faulty NS run computes results bit-identical to
/// the fault-free golden run, and the simulation terminates (the run-loop
/// watchdog would return [`SimError::Wedged`] otherwise).
#[test]
fn random_fault_plans_are_transparent() {
    use near_stream::{RunRequest, ExecMode, SystemConfig};
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::{ElemType, Expr, Program, Scalar};
    use nsc_sim::fault::{self, FaultPlan};

    let mut rng = Rng::seed_from_u64(0xFA_017);
    let mut total_faults = 0u64;
    for case in 0..12 {
        // Random workload shape: a gather-scatter with random size,
        // stride scale and index distribution.
        let n = 96 + rng.gen_range_u64(160);
        let scale = 1 + rng.gen_range_u64(3) as i64;
        let seed = rng.next_u64();
        let mut p = Program::new("rand_fault");
        let idx = p.array("idx", ElemType::I64, n);
        let src = p.array("src", ElemType::I64, n * 4 + 8);
        let dst = p.array("dst", ElemType::I64, n);
        let mut k = KernelBuilder::new("gather", n);
        let i = k.outer_var();
        let which = k.load(idx, Expr::var(i));
        let v = k.load(src, Expr::var(which) * Expr::imm(scale));
        k.store(dst, Expr::var(i), Expr::var(v) + Expr::imm(seed as i64 % 100));
        p.push_kernel(k.finish());
        let compiled = nsc_compiler::compile(&p);
        let init = move |mem: &mut nsc_ir::Memory| {
            let mut x = seed | 1;
            for j in 0..n {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                mem.write_index(idx, j, Scalar::I64((x % n) as i64));
                mem.write_index(src, j, Scalar::I64((x >> 32) as i64));
            }
        };
        let cfg = SystemConfig::small();
        let (_, clean_mem) =
            RunRequest::new(&p).compiled(&compiled).mode(ExecMode::Ns).config(&cfg).init(&init).try_run().expect("clean run terminates");

        // Random fault plan: every site gets an independent random rate,
        // occasionally a pathological one (always-fire NACKs).
        let mut plan = FaultPlan::none();
        plan.seed = rng.next_u64();
        plan.noc_drop = rng.gen_f64() * 0.02;
        plan.noc_duplicate = rng.gen_f64() * 0.02;
        plan.noc_delay = rng.gen_f64() * 0.05;
        plan.bank_stall = rng.gen_f64() * 0.02;
        plan.offload_nack = if case % 4 == 0 { 1.0 } else { rng.gen_f64() * 0.05 };
        plan.mem_error = rng.gen_f64() * 0.02;
        plan.alias_false_positive = rng.gen_f64() * 0.02;
        fault::install(plan);
        let outcome = RunRequest::new(&p).compiled(&compiled).mode(ExecMode::Ns).config(&cfg).init(&init).try_run();
        let stats = fault::uninstall().expect("injector was armed");
        total_faults += stats.total();
        let (faulty, faulty_mem) = outcome.expect("faulty run terminates");
        assert_eq!(faulty.faults_injected, stats.total());
        for j in 0..n {
            assert_eq!(
                clean_mem.read_index(dst, j),
                faulty_mem.read_index(dst, j),
                "case {case}: faulty run diverged at {j}"
            );
        }
    }
    assert!(total_faults > 0, "no faults fired across all cases");
}

/// The same fault plan replays the same schedule: two runs with one seed
/// are cycle-identical, a different seed perturbs timing independently of
/// correctness.
#[test]
fn fault_schedules_are_deterministic_per_seed() {
    use near_stream::{RunRequest, ExecMode, SystemConfig};
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::{ElemType, Expr, Program};
    use nsc_sim::fault::{self, FaultPlan};

    let n = 16 * 1024;
    let mut p = Program::new("det");
    let a = p.array("a", ElemType::I64, n);
    let mut k = KernelBuilder::new("set", n);
    let i = k.outer_var();
    k.store(a, Expr::var(i), Expr::var(i) * Expr::imm(5));
    k.sync_free();
    p.push_kernel(k.finish());
    let compiled = nsc_compiler::compile(&p);
    let cfg = SystemConfig::small();
    let mut cycles = Vec::new();
    for seed in [9u64, 9, 10] {
        fault::install(FaultPlan::uniform(seed, 0.005));
        let (r, _) = RunRequest::new(&p).compiled(&compiled).mode(ExecMode::Ns).config(&cfg).run();
        let stats = fault::uninstall().expect("armed");
        cycles.push((r.cycles, stats.total()));
    }
    assert_eq!(cycles[0], cycles[1], "same seed must replay identically");
    assert!(cycles[0].1 > 0, "seed 9 fired no faults");
}
