//! The disabled-registry fast path must be allocation-free: with no
//! registry installed anywhere in the process, every record call is one
//! relaxed atomic load and a branch. This file installs a counting
//! global allocator, so it must stay the **only** test in its binary —
//! a concurrent test allocating on another thread would poison the
//! count.

use nsc_sim::metrics::{self, Gauge, Hist, Metric, Prof};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn disabled_registry_records_without_allocating() {
    // Touch every record path once first so lazy thread-local
    // initialization (if any) happens outside the measured window.
    metrics::count(Metric::EngineIterations);
    metrics::gauge_max(Gauge::PoolQueueDepth, 1.0);
    metrics::observe(Hist::NocLatencyCycles, 1.0);
    metrics::profile(Prof::EngineNearStream, 1);

    // The counter is process-wide, so a stray allocation on a harness
    // background thread (timers, stderr) can poison one window. Retry a
    // few windows and require at least one clean one: a genuine
    // fast-path allocation would fire 500k times in *every* window, so
    // no amount of retrying can mask a real regression.
    let mut best = u64::MAX;
    for _attempt in 0..5 {
        let before = ALLOCS.load(Ordering::SeqCst);
        for i in 0..100_000u64 {
            metrics::count(Metric::MemL1Hits);
            metrics::add(Metric::NocBytes, i);
            metrics::gauge_max(Gauge::ServeInFlight, i as f64);
            metrics::observe(Hist::NocLatencyCycles, i as f64);
            metrics::profile(Prof::ScmCompute, i);
        }
        let after = ALLOCS.load(Ordering::SeqCst);
        best = best.min(after - before);
        if best == 0 {
            break;
        }
    }
    assert_eq!(
        best, 0,
        "disabled metrics allocated {best} times in 500k record calls (best of 5 windows)"
    );
    assert!(metrics::uninstall().is_none(), "no registry was ever installed");
}
