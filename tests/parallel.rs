//! Parallel-sweep determinism: the whole point of `nsc_bench::Sweep` is
//! that `NSC_JOBS` is unobservable — the same tasks produce bit-identical
//! results, fault schedules and traces whether they run on 1 worker or 8.
//!
//! These tests build [`Sweep`]s with explicit job counts (bypassing the
//! environment, so they are safe under the parallel test harness) and
//! compare full `Debug` renderings of every run result, which covers every
//! counter and histogram a harness could print.

use near_stream::ExecMode;
use nsc_bench::{prepare, system_for, Prepared, Sweep, SweepTask};
use nsc_sim::fault::FaultPlan;
use nsc_sim::trace::{self, RingRecorder};
use nsc_workloads::{bfs_push, hash_join, hotspot, Size};
use std::sync::Arc;

/// One representative harness worth of tasks: three workloads of different
/// shapes (irregular push, gather join, affine stencil) under two modes.
fn harness_tasks(preps: &[Arc<Prepared>]) -> Vec<SweepTask<String>> {
    let cfg = system_for(Size::Tiny);
    let mut tasks: Vec<SweepTask<String>> = Vec::new();
    for p in preps {
        for mode in [ExecMode::Base, ExecMode::Ns] {
            let p = Arc::clone(p);
            let cfg = cfg.clone();
            tasks.push(Box::new(move || {
                let (r, mem) = p.run_unchecked(mode, &cfg);
                format!("{:?} digest={}", r, p.workload.digest(&mem))
            }));
        }
    }
    tasks
}

fn preps() -> Vec<Arc<Prepared>> {
    [bfs_push(Size::Tiny), hash_join(Size::Tiny), hotspot(Size::Tiny)]
        .into_iter()
        .map(|w| Arc::new(prepare(w)))
        .collect()
}

#[test]
fn results_identical_across_job_counts() {
    let preps = preps();
    let serial = Sweep::with_jobs(1, None, None).run(harness_tasks(&preps));
    let wide = Sweep::with_jobs(8, None, None).run(harness_tasks(&preps));
    assert_eq!(serial, wide);
}

#[test]
fn results_identical_across_job_counts_under_faults() {
    // The equivalent of NSC_FAULT_RATE=1e-3: each run draws its injector
    // from (base seed, submission index), so the schedule cannot depend on
    // which worker executes it.
    let base = FaultPlan::uniform(0xC0FFEE, 1e-3);
    let preps = preps();
    let serial = Sweep::with_jobs(1, Some(base.clone()), None).run(harness_tasks(&preps));
    let wide = Sweep::with_jobs(8, Some(base), None).run(harness_tasks(&preps));
    assert_eq!(serial, wide);
    // Faults actually fired (otherwise this test proves nothing).
    assert!(
        serial.iter().any(|s| !s.contains("faults_injected: 0,")),
        "fault plan was armed but no run recorded an injection"
    );
}

/// Runs the harness under a main-thread tracer and returns (results,
/// absorbed trace rendered to text).
fn traced_run(jobs: usize) -> (Vec<String>, String) {
    let preps = preps();
    let sweep = Sweep::with_jobs(jobs, None, Some((1 << 14, 64)));
    trace::install(RingRecorder::new(1 << 16), 64);
    let results = sweep.run(harness_tasks(&preps));
    let rec = trace::uninstall().expect("tracer installed above");
    let rendered: Vec<String> = rec.events().map(|e| format!("{e:?}")).collect();
    (results, rendered.join("\n"))
}

#[test]
fn traces_identical_across_job_counts() {
    // The equivalent of NSC_TRACE=1: per-run recorders are absorbed into
    // the main-thread tracer in submission order, so the merged trace is
    // the serial trace.
    let (r1, t1) = traced_run(1);
    let (r8, t8) = traced_run(8);
    assert_eq!(r1, r8);
    assert!(!t1.is_empty(), "tracing was armed but recorded nothing");
    assert_eq!(t1, t8);
}

#[test]
fn faults_and_traces_together_identical() {
    let run = |jobs: usize| {
        let preps = preps();
        let sweep = Sweep::with_jobs(jobs, Some(FaultPlan::uniform(7, 1e-3)), Some((1 << 14, 64)));
        trace::install(RingRecorder::new(1 << 16), 64);
        let results = sweep.run(harness_tasks(&preps));
        let rec = trace::uninstall().expect("tracer installed above");
        let trace_text: Vec<String> = rec.events().map(|e| format!("{e:?}")).collect();
        (results, trace_text.join("\n"))
    };
    assert_eq!(run(1), run(8));
}
