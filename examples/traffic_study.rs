//! The Figure 1(b) motivation study on one workload: how much data traffic
//! would remain with no private caches, perfect private caches, and
//! perfect near-LLC offloading.
//!
//! Run with: `cargo run --release --example traffic_study`

use near_stream::ideal::{ideal_traffic, IdealModel};
use near_stream::SystemConfig;
use nsc_compiler::compile;
use nsc_workloads::{pr_pull, Size};

fn main() {
    let w = pr_pull(Size::Tiny);
    let compiled = compile(&w.program);
    let cfg = SystemConfig::small();
    println!("idealized data traffic for {} (bytes x hops):", w.name);
    let mut base = 0.0;
    for model in [
        IdealModel::NoPrivateCache,
        IdealModel::PerfectPrivate,
        IdealModel::PerfectNearLlc,
    ] {
        let t = ideal_traffic(&w.program, &compiled, &w.params, model, &cfg, &w.init);
        if base == 0.0 {
            base = t as f64;
        }
        println!("  {:14} {:>12} ({:5.1}% of No-Priv$)", model.label(), t, 100.0 * t as f64 / base);
    }
    println!();
    println!("even a perfect private cache leaves most traffic (large reuse distances);");
    println!("computing at the LLC banks removes it at the source.");
}
