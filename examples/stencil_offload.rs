//! Inside the compiler: how a thermal stencil becomes a multi-operand
//! near-store stream, and what that does to NoC traffic.
//!
//! Run with: `cargo run --release --example stencil_offload`

use near_stream::{RunRequest, ExecMode, SystemConfig};
use nsc_compiler::compile;
use nsc_ir::stream::ComputeClass;
use nsc_workloads::{hotspot, Size};

fn main() {
    let w = hotspot(Size::Small);
    let compiled = compile(&w.program);

    // Inspect the compiler's output for the first time step.
    let k = &compiled.kernels[0];
    println!("hotspot step kernel: {} streams, vector width {}", k.streams.len(), k.vector_width);
    for s in &k.streams {
        let deps = if s.value_deps.is_empty() {
            String::new()
        } else {
            format!(
                " <- operands {}",
                s.value_deps.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(",")
            )
        };
        println!("  {s}{deps}");
    }
    let store = k
        .streams
        .iter()
        .find(|s| s.role == ComputeClass::Store)
        .expect("the stencil writes through a store stream");
    println!();
    println!(
        "the store stream absorbs {} uops of stencil math and {} operand streams;",
        store.compute_uops,
        store.value_deps.len()
    );
    println!("operands are forwarded bank-to-bank, so no cell data ever visits a core.");

    // Measure it on the paper's 64-core system with caches scaled to the
    // 1/16 input (so relative pressure matches the full-size runs).
    let mut cfg = SystemConfig::paper_ooo8();
    cfg.mem.l1.size_bytes /= 16;
    cfg.mem.l2.size_bytes /= 16;
    cfg.mem.l3_bank.size_bytes /= 16;
    let (base, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::Base).config(&cfg).init(&w.init).run();
    let (ns, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::NsDecouple).config(&cfg).init(&w.init).run();
    println!();
    println!(
        "Base: {} cycles / {} BxH; NS-decouple: {} cycles / {} BxH ({:.2}x, {:.0}% less traffic)",
        base.cycles,
        base.traffic.total(),
        ns.cycles,
        ns.traffic.total(),
        ns.speedup_over(&base),
        100.0 * ns.traffic_reduction_vs(&base),
    );
}
