//! Trace a near-stream run and export a Chrome trace-event file that
//! opens directly in Perfetto (https://ui.perfetto.dev) or
//! `chrome://tracing`.
//!
//! Run with: `cargo run --release --example trace_demo`
//!
//! The exported timeline has one process per subsystem — streams, cache,
//! NoC, range-sync — plus counter tracks sampling stream-engine queue
//! depth, L3 bank occupancy, and NoC link utilisation. The bench
//! harnesses produce the same file automatically when `NSC_TRACE=1` is
//! set (see the Observability section in DESIGN.md).

use near_stream::ExecMode;
use nsc_bench::{prepare, system_for};
use nsc_sim::trace::{self, chrome, RingRecorder};
use nsc_workloads::{histogram, Size};

fn main() {
    let p = prepare(histogram(Size::Tiny));
    let cfg = system_for(Size::Tiny);

    // Install a bounded recorder on this thread: up to 1M events, with
    // counter tracks sampled at most once per 32 simulated cycles.
    trace::install(RingRecorder::new(1 << 20), 32);
    let r = p.run_checked(ExecMode::Ns, &cfg);
    let rec = trace::uninstall().expect("tracer was installed");

    let path = std::path::Path::new("results/trace_demo.trace.json");
    chrome::write_file(path, rec.events()).expect("write trace file");

    println!(
        "simulated {} in {} cycles; captured {} trace events ({} dropped)",
        p.workload.name,
        r.cycles,
        rec.len(),
        rec.dropped(),
    );
    println!("wrote {} -- open it in https://ui.perfetto.dev", path.display());
}
