//! Graph analytics on a Kronecker graph: run the paper's push-style
//! PageRank under every evaluated system and compare.
//!
//! Run with: `cargo run --release --example graph_analytics`

use near_stream::{RunRequest, ExecMode, SystemConfig};
use nsc_compiler::compile;
use nsc_workloads::{pr_push, Size};

fn main() {
    let w = pr_push(Size::Tiny);
    let compiled = compile(&w.program);
    let cfg = SystemConfig::small();
    let golden = w.golden_digest();

    println!("pr_push on a Kronecker graph (push-style PageRank, indirect atomics)");
    println!(
        "{:12} {:>12} {:>9} {:>14} {:>10}",
        "system", "cycles", "speedup", "bytes x hops", "offloaded"
    );
    let (base, _) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(ExecMode::Base).config(&cfg).init(&w.init).run();
    for mode in ExecMode::ALL {
        let (r, mem) = RunRequest::new(&w.program).compiled(&compiled).params(&w.params).mode(mode).config(&cfg).init(&w.init).run();
        assert_eq!(w.digest(&mem), golden, "{mode:?} computed a different PageRank");
        println!(
            "{:12} {:>12} {:>8.2}x {:>14} {:>9.0}%",
            mode.label(),
            r.cycles,
            r.speedup_over(&base),
            r.traffic.total(),
            100.0 * r.offload_fraction(),
        );
    }
    println!();
    println!("all systems computed bit-identical PageRank scores");
}
