//! Quickstart: express a kernel in the loop-nest IR, compile it to
//! streams, and simulate it on the baseline and near-stream systems.
//!
//! Run with: `cargo run --release --example quickstart`

use near_stream::{RunRequest, ExecMode, SystemConfig};
use nsc_compiler::compile;
use nsc_ir::build::KernelBuilder;
use nsc_ir::{ElemType, Expr, Program, Scalar};

fn main() {
    // 1. Write a kernel: c[i] = a[i] + b[i] over 256k elements.
    let n = 2 * 1024 * 1024; // large enough that streams leave the private caches
    let mut program = Program::new("vecadd");
    let a = program.array("a", ElemType::I64, n);
    let b = program.array("b", ElemType::I64, n);
    let c = program.array("c", ElemType::I64, n);
    let mut k = KernelBuilder::new("add", n);
    let i = k.outer_var();
    let va = k.load(a, Expr::var(i));
    let vb = k.load(b, Expr::var(i));
    k.store(c, Expr::var(i), Expr::var(va) + Expr::var(vb));
    k.sync_free(); // programmer pragma: these streams never alias
    program.push_kernel(k.finish());

    // 2. Compile: the stream recognizer finds two load streams and a store
    //    stream with two value dependences (the multi-operand pattern).
    let compiled = compile(&program);
    println!("recognized streams:");
    for s in &compiled.kernels[0].streams {
        println!("  {s}");
    }

    // 3. Simulate under different systems.
    let cfg = SystemConfig::paper_ooo8();
    let init = |mem: &mut nsc_ir::Memory| {
        for i in 0..n {
            mem.write_index(a, i, Scalar::I64(i as i64));
            mem.write_index(b, i, Scalar::I64(2 * i as i64));
        }
    };
    let (base, base_mem) = RunRequest::new(&program).compiled(&compiled).mode(ExecMode::Base).config(&cfg).init(&init).run();
    let (ns, ns_mem) = RunRequest::new(&program).compiled(&compiled).mode(ExecMode::Ns).config(&cfg).init(&init).run();
    let (dec, _) = RunRequest::new(&program).compiled(&compiled).mode(ExecMode::NsDecouple).config(&cfg).init(&init).run();

    // Every system computes the same values.
    assert_eq!(base_mem.read_index(c, 12345), Scalar::I64(3 * 12345));
    assert_eq!(ns_mem.read_index(c, 12345), Scalar::I64(3 * 12345));

    println!();
    println!("baseline (OOO8 + prefetchers): {:>10} cycles, {:>12} bytes x hops", base.cycles, base.traffic.total());
    println!("near-stream computing (NS):    {:>10} cycles, {:>12} bytes x hops", ns.cycles, ns.traffic.total());
    println!("fully decoupled (NS-decouple): {:>10} cycles, {:>12} bytes x hops", dec.cycles, dec.traffic.total());
    println!();
    println!(
        "NS: {:.2}x speedup, {:.0}% traffic reduction; NS-decouple: {:.2}x, {:.0}%",
        ns.speedup_over(&base),
        100.0 * ns.traffic_reduction_vs(&base),
        dec.speedup_over(&base),
        100.0 * dec.traffic_reduction_vs(&base),
    );
}
