//! The 14 evaluation workloads of the near-stream computing paper
//! (Table VI), written in the `nsc-ir` loop-nest IR with deterministic
//! input generators.
//!
//! | Workload | Pattern (Table VI) | Source suite |
//! |---|---|---|
//! | pathfinder, srad, hotspot, hotspot3D | multi-operand store | Rodinia |
//! | histogram | affine load | — |
//! | scluster, svm | indirect load | Rodinia / MineBench |
//! | bfs_push, pr_push, sssp | indirect atomic | GAP |
//! | bfs_pull, pr_pull | indirect reduce | GAP |
//! | bin_tree, hash_join | pointer-chase reduce | — |
//!
//! # Examples
//!
//! ```
//! use nsc_workloads::{histogram, Size};
//!
//! let w = histogram(Size::Tiny);
//! let mut mem = w.fresh_memory();
//! nsc_ir::interp::run_program(&w.program, &mut mem, &w.params);
//! assert_ne!(w.digest(&mem), 0, "histogram produced counts");
//! ```

pub mod data;
pub mod graph;
pub mod mine;
pub mod pointer;
pub mod rodinia;

use nsc_ir::program::ArrayId;
use nsc_ir::types::Scalar;
use nsc_ir::{Memory, Program};

pub use graph::{bfs_pull, bfs_push, pr_pull, pr_push, sssp};
pub use mine::{histogram, scluster, svm};
pub use pointer::{bin_tree, hash_join};
pub use rodinia::{hotspot, hotspot3d, pathfinder, srad};

/// Input scale selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Size {
    /// A few thousand elements: unit/integration tests.
    Tiny,
    /// Roughly 1/16 of the paper's Table VI inputs: default for harnesses.
    Small,
    /// The paper's Table VI parameters.
    Paper,
}

impl Size {
    /// Scales a paper-sized element count.
    pub fn scale(self, paper: u64) -> u64 {
        match self {
            Size::Tiny => (paper / 256).max(1024).min(paper),
            Size::Small => (paper / 16).max(4096).min(paper),
            Size::Paper => paper,
        }
    }

    /// Scales an iteration count (kept closer to the paper's).
    pub fn iters(self, paper: u64) -> u64 {
        match self {
            Size::Tiny => paper.min(2),
            Size::Small => paper.min(4),
            Size::Paper => paper,
        }
    }
}

/// The address/compute category of a workload (Table VI "Addr. Cmp").
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Category {
    /// Multi-operand affine store.
    MultiOpStore,
    /// Affine load (with key-extraction compute).
    AffineLoad,
    /// Indirect load.
    IndirectLoad,
    /// Indirect atomic.
    IndirectAtomic,
    /// Indirect reduction.
    IndirectReduce,
    /// Pointer-chasing reduction.
    PointerReduce,
}

impl Category {
    /// Table VI label.
    pub fn label(self) -> &'static str {
        match self {
            Category::MultiOpStore => "MO. Store",
            Category::AffineLoad => "Aff. Load",
            Category::IndirectLoad => "Ind. Load",
            Category::IndirectAtomic => "Ind. Atomic",
            Category::IndirectReduce => "Ind. Reduce",
            Category::PointerReduce => "Ptr. Reduce",
        }
    }
}

/// A ready-to-simulate workload: program, inputs and validation digest.
pub struct Workload {
    /// Table VI name.
    pub name: &'static str,
    /// Taxonomy category.
    pub category: Category,
    /// The IR program.
    pub program: Program,
    /// Runtime parameters.
    pub params: Vec<Scalar>,
    /// Populates input arrays (deterministic).
    pub init: Box<dyn Fn(&mut Memory) + Send + Sync>,
    /// Arrays whose final contents constitute the result (digested for
    /// cross-mode validation).
    pub output_arrays: Vec<ArrayId>,
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("category", &self.category)
            .finish()
    }
}

impl Workload {
    /// Allocates and initializes a fresh memory image.
    pub fn fresh_memory(&self) -> Memory {
        let mut mem = Memory::for_program(&self.program);
        (self.init)(&mut mem);
        mem
    }

    /// Order-insensitive digest of the output arrays (for comparing
    /// executions across modes; commutative over elements so that
    /// differently-interleaved but equivalent runs match).
    pub fn digest(&self, mem: &Memory) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &arr in &self.output_arrays {
            let len = mem.len_of(arr);
            let elem = mem.elem_of(arr);
            for i in 0..len {
                let bits = match elem {
                    nsc_ir::ElemType::Record(_) => continue,
                    t if t.is_float() => {
                        let v = mem.read_index(arr, i).as_f64();
                        // Quantize to tolerate last-ulp variation.
                        (v * 1e6).round() as i64 as u64
                    }
                    _ => mem.read_index(arr, i).as_i64() as u64,
                };
                let e = bits.wrapping_mul(0x100_0000_01b3).rotate_left((i % 61) as u32);
                h = h.wrapping_add(e ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            }
        }
        h
    }

    /// Golden (sequential functional) digest.
    pub fn golden_digest(&self) -> u64 {
        let mut mem = self.fresh_memory();
        nsc_ir::interp::run_program(&self.program, &mut mem, &self.params);
        self.digest(&mem)
    }
}

/// Builds all 14 workloads at the given size, in the paper's Table VI
/// order.
pub fn all(size: Size) -> Vec<Workload> {
    vec![
        pathfinder(size),
        srad(size),
        hotspot(size),
        hotspot3d(size),
        histogram(size),
        scluster(size),
        svm(size),
        bfs_push(size),
        pr_push(size),
        sssp(size),
        bfs_pull(size),
        pr_pull(size),
        bin_tree(size),
        hash_join(size),
    ]
}

/// Names of all workloads, in order.
pub fn names() -> [&'static str; 14] {
    [
        "pathfinder",
        "srad",
        "hotspot",
        "hotspot3D",
        "histogram",
        "scluster",
        "svm",
        "bfs_push",
        "pr_push",
        "sssp",
        "bfs_pull",
        "pr_pull",
        "bin_tree",
        "hash_join",
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_fourteen_build_and_validate() {
        let ws = all(Size::Tiny);
        assert_eq!(ws.len(), 14);
        for (w, name) in ws.iter().zip(names()) {
            assert_eq!(w.name, name);
            assert!(w.program.validate().is_ok(), "{name} invalid");
        }
    }

    #[test]
    fn golden_digests_are_stable() {
        for w in all(Size::Tiny) {
            let d1 = w.golden_digest();
            let d2 = w.golden_digest();
            assert_eq!(d1, d2, "{} digest unstable", w.name);
            assert_ne!(d1, 0, "{} produced no output", w.name);
        }
    }

    #[test]
    fn size_scaling() {
        assert_eq!(Size::Paper.scale(1 << 20), 1 << 20);
        assert_eq!(Size::Small.scale(1 << 20), 1 << 16);
        assert!(Size::Tiny.scale(1 << 20) <= 1 << 12);
        assert_eq!(Size::Tiny.iters(8), 2);
        assert_eq!(Size::Paper.iters(8), 8);
    }
}
