//! Rodinia-style affine multi-operand stencil workloads: pathfinder, srad,
//! hotspot and hotspot3D (paper Table VI rows 1-4).

use crate::{Category, Size, Workload};
use nsc_ir::build::KernelBuilder;
use nsc_ir::program::{ArrayId, Trip};
use nsc_ir::{ElemType, Expr, Program, Scalar};

/// Grid sides for the 2D stencils at each size, `(rows, cols)` scaled from
/// the paper's dimensions.
fn grid2d(size: Size, paper_rows: u64, paper_cols: u64) -> (u64, u64) {
    match size {
        Size::Tiny => (paper_rows / 32, paper_cols / 32),
        Size::Small => (paper_rows / 4, paper_cols / 4),
        Size::Paper => (paper_rows, paper_cols),
    }
}

/// `pathfinder`: dynamic programming over a grid — each step computes
/// `dst[i] = wall[t][i] + min(src[i-1], src[i], src[i+1])`
/// (multi-operand affine store; Table VI: 1.5M entries, 8 iterations).
pub fn pathfinder(size: Size) -> Workload {
    let n = size.scale(1_500_000);
    let iters = size.iters(8);
    let mut p = Program::new("pathfinder");
    let wall = p.array("wall", ElemType::I32, n * iters);
    let buf0 = p.array("buf0", ElemType::I32, n);
    let buf1 = p.array("buf1", ElemType::I32, n);
    for t in 0..iters {
        let (src, dst) = if t % 2 == 0 { (buf0, buf1) } else { (buf1, buf0) };
        let mut k = KernelBuilder::new(&format!("step{t}"), n - 2);
        let i = k.outer_var();
        let idx = Expr::var(i) + Expr::imm(1);
        let l = k.load(src, idx.clone() - Expr::imm(1));
        let m = k.load(src, idx.clone());
        let r = k.load(src, idx.clone() + Expr::imm(1));
        let w = k.load(wall, Expr::imm((t * n) as i64) + idx.clone());
        k.store(
            dst,
            idx,
            Expr::var(w) + Expr::min(Expr::var(l), Expr::min(Expr::var(m), Expr::var(r))),
        );
        k.sync_free();
        p.push_kernel(k.finish());
    }
    let out = if iters.is_multiple_of(2) { buf0 } else { buf1 };
    Workload {
        name: "pathfinder",
        category: Category::MultiOpStore,
        program: p,
        params: vec![],
        init: Box::new(move |mem| {
            for (i, v) in crate::data::uniform_u64(n * iters, 10, crate::data::SEED)
                .into_iter()
                .enumerate()
            {
                mem.write_index(wall, i as u64, Scalar::I64(v as i64));
            }
        }),
        output_arrays: vec![out],
    }
}

/// Shared shape of the 2D five-point stencils (srad / hotspot): a parallel
/// row loop with an inner column loop, alternating buffers per step.
#[allow(clippy::too_many_arguments)]
fn five_point_stencil(
    _p: &mut Program,
    name: &str,
    src: ArrayId,
    dst: ArrayId,
    aux: ArrayId,
    rows: u64,
    cols: u64,
    aux_coeff: f64,
) -> nsc_ir::program::Kernel {
    let mut k = KernelBuilder::new(name, rows - 2);
    let r = k.outer_var();
    let c = k.begin_loop(Trip::Const(cols - 2));
    let row = Expr::var(r) + Expr::imm(1);
    let col = Expr::var(c) + Expr::imm(1);
    let idx = row * Expr::imm(cols as i64) + col;
    let center = k.load(src, idx.clone());
    let north = k.load(src, idx.clone() - Expr::imm(cols as i64));
    let south = k.load(src, idx.clone() + Expr::imm(cols as i64));
    let west = k.load(src, idx.clone() - Expr::imm(1));
    let east = k.load(src, idx.clone() + Expr::imm(1));
    let pw = k.load(aux, idx.clone());
    let lap = Expr::var(north) + Expr::var(south) + Expr::var(west) + Expr::var(east)
        - Expr::var(center) * Expr::immf(4.0);
    k.store(
        dst,
        idx,
        Expr::var(center) + Expr::immf(aux_coeff) * (Expr::var(pw) + lap * Expr::immf(0.2)),
    );
    k.end_loop();
    k.sync_free();
    k.finish()
}

/// `srad`: speckle-reducing anisotropic diffusion over a 1k x 2k image
/// (Table VI). Modelled as its diffusion-update five-point stencil with a
/// coefficient image.
pub fn srad(size: Size) -> Workload {
    let (rows, cols) = grid2d(size, 1024, 2048);
    let iters = size.iters(8);
    let mut p = Program::new("srad");
    let img0 = p.array("img0", ElemType::F32, rows * cols);
    let img1 = p.array("img1", ElemType::F32, rows * cols);
    let coeff = p.array("coeff", ElemType::F32, rows * cols);
    for t in 0..iters {
        let (src, dst) = if t % 2 == 0 { (img0, img1) } else { (img1, img0) };
        let k = five_point_stencil(&mut p, &format!("diffuse{t}"), src, dst, coeff, rows, cols, 0.125);
        p.push_kernel(k);
    }
    let out = if iters.is_multiple_of(2) { img0 } else { img1 };
    Workload {
        name: "srad",
        category: Category::MultiOpStore,
        program: p,
        params: vec![],
        init: Box::new(move |mem| {
            let vals = crate::data::uniform_f64(rows * cols, crate::data::SEED ^ 1);
            for (i, v) in vals.iter().enumerate() {
                mem.write_index(img0, i as u64, Scalar::F64(*v * 255.0));
                mem.write_index(coeff, i as u64, Scalar::F64(vals[(i * 7 + 3) % vals.len()]));
            }
        }),
        output_arrays: vec![out],
    }
}

/// `hotspot`: thermal simulation over a 2k x 1k grid (Table VI) — a
/// five-point stencil with a power map.
pub fn hotspot(size: Size) -> Workload {
    let (rows, cols) = grid2d(size, 2048, 1024);
    let iters = size.iters(8);
    let mut p = Program::new("hotspot");
    let t0 = p.array("temp0", ElemType::F32, rows * cols);
    let t1 = p.array("temp1", ElemType::F32, rows * cols);
    let power = p.array("power", ElemType::F32, rows * cols);
    for t in 0..iters {
        let (src, dst) = if t % 2 == 0 { (t0, t1) } else { (t1, t0) };
        let k = five_point_stencil(&mut p, &format!("step{t}"), src, dst, power, rows, cols, 0.5);
        p.push_kernel(k);
    }
    let out = if iters.is_multiple_of(2) { t0 } else { t1 };
    Workload {
        name: "hotspot",
        category: Category::MultiOpStore,
        program: p,
        params: vec![],
        init: Box::new(move |mem| {
            let vals = crate::data::uniform_f64(rows * cols, crate::data::SEED ^ 2);
            for (i, v) in vals.iter().enumerate() {
                mem.write_index(t0, i as u64, Scalar::F64(320.0 + *v * 10.0));
                mem.write_index(power, i as u64, Scalar::F64(*v * 0.1));
            }
        }),
        output_arrays: vec![out],
    }
}

/// `hotspot3D`: the seven-point 3D thermal stencil over a
/// 256 x 1k x 8-layer grid (Table VI; this is the pattern that needs the
/// full 8 stream inputs of Table IV).
pub fn hotspot3d(size: Size) -> Workload {
    let (ny, nx) = grid2d(size, 256, 1024);
    let nz = 8u64;
    let iters = size.iters(8);
    let mut p = Program::new("hotspot3D");
    let n = nx * ny * nz;
    let t0 = p.array("temp0", ElemType::F32, n);
    let t1 = p.array("temp1", ElemType::F32, n);
    let power = p.array("power", ElemType::F32, n);
    for t in 0..iters {
        let (src, dst) = if t % 2 == 0 { (t0, t1) } else { (t1, t0) };
        let mut k = KernelBuilder::new(&format!("step{t}"), ny - 2);
        let y = k.outer_var();
        let x = k.begin_loop(Trip::Const(nx - 2));
        let z = k.begin_loop(Trip::Const(nz - 2));
        let idx = (Expr::var(z) + Expr::imm(1)) * Expr::imm((nx * ny) as i64)
            + (Expr::var(y) + Expr::imm(1)) * Expr::imm(nx as i64)
            + (Expr::var(x) + Expr::imm(1));
        let c = k.load(src, idx.clone());
        let n_ = k.load(src, idx.clone() - Expr::imm(nx as i64));
        let s = k.load(src, idx.clone() + Expr::imm(nx as i64));
        let w = k.load(src, idx.clone() - Expr::imm(1));
        let e = k.load(src, idx.clone() + Expr::imm(1));
        let b = k.load(src, idx.clone() - Expr::imm((nx * ny) as i64));
        let a = k.load(src, idx.clone() + Expr::imm((nx * ny) as i64));
        let pw = k.load(power, idx.clone());
        let sum = Expr::var(n_) + Expr::var(s) + Expr::var(w) + Expr::var(e) + Expr::var(b)
            + Expr::var(a)
            - Expr::var(c) * Expr::immf(6.0);
        k.store(
            dst,
            idx,
            Expr::var(c) + Expr::immf(0.1) * (Expr::var(pw) + sum * Expr::immf(0.16)),
        );
        k.end_loop();
        k.end_loop();
        k.sync_free();
        p.push_kernel(k.finish());
    }
    let out = if iters.is_multiple_of(2) { t0 } else { t1 };
    Workload {
        name: "hotspot3D",
        category: Category::MultiOpStore,
        program: p,
        params: vec![],
        init: Box::new(move |mem| {
            let vals = crate::data::uniform_f64(n, crate::data::SEED ^ 3);
            for (i, v) in vals.iter().enumerate() {
                mem.write_index(t0, i as u64, Scalar::F64(320.0 + *v * 5.0));
                mem.write_index(power, i as u64, Scalar::F64(*v * 0.05));
            }
        }),
        output_arrays: vec![out],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_compiler::compile;
    use nsc_ir::stream::{AddrPatternClass, ComputeClass};

    #[test]
    fn pathfinder_compiles_to_multiop_store() {
        let w = pathfinder(Size::Tiny);
        let c = compile(&w.program);
        let k0 = &c.kernels[0];
        assert_eq!(k0.streams.len(), 5);
        let store = k0.streams.iter().find(|s| s.role == ComputeClass::Store).unwrap();
        assert_eq!(store.value_deps.len(), 4);
        assert!(matches!(store.pattern, AddrPatternClass::Affine { .. }));
        assert!(k0.fully_decoupled);
    }

    #[test]
    fn stencils_are_affine_and_vectorized() {
        for w in [srad(Size::Tiny), hotspot(Size::Tiny), hotspot3d(Size::Tiny)] {
            let c = compile(&w.program);
            for k in &c.kernels {
                assert!(
                    k.streams.iter().all(|s| matches!(s.pattern, AddrPatternClass::Affine { .. })),
                    "{}: non-affine stream",
                    w.name
                );
                assert!(k.vector_width > 1, "{} not vectorized", w.name);
                let store = k.streams.iter().find(|s| s.role == ComputeClass::Store).unwrap();
                assert!(store.needs_scm, "{} stencil math should go to the SCM", w.name);
            }
        }
    }

    #[test]
    fn hotspot3d_uses_eight_inputs() {
        let w = hotspot3d(Size::Tiny);
        let c = compile(&w.program);
        let store = c.kernels[0]
            .streams
            .iter()
            .find(|s| s.role == ComputeClass::Store)
            .unwrap();
        assert_eq!(store.value_deps.len(), 8);
    }

    #[test]
    fn pathfinder_functional_sanity() {
        let w = pathfinder(Size::Tiny);
        let mut mem = w.fresh_memory();
        nsc_ir::interp::run_program(&w.program, &mut mem, &w.params);
        // Path costs are nonneg and bounded by iters * max wall.
        let out = w.output_arrays[0];
        let iters = Size::Tiny.iters(8) as i64;
        for i in (1..mem.len_of(out) - 1).step_by(199) {
            let v = mem.read_index(out, i).as_i64();
            assert!((0..=iters * 9).contains(&v), "cost {v} out of range");
        }
    }
}
