//! GAP graph-suite workloads over Kronecker graphs: bfs_push, pr_push and
//! sssp (indirect atomics), bfs_pull and pr_pull (indirect reductions).
//! Table VI: Kronecker, 256k nodes, 3.6M edges, A/B/C = 0.57/0.19/0.19,
//! weights in [1, 255].

use crate::data::{kronecker, Csr, SEED};
use crate::{Category, Size, Workload};
use nsc_ir::build::KernelBuilder;
use nsc_ir::program::{ArrayId, Field, Trip};
use nsc_ir::{AtomicOp, ElemType, Expr, Program, Scalar};

/// Vertex/edge counts per size.
fn graph_shape(size: Size) -> (u64, u64) {
    match size {
        Size::Tiny => (1 << 10, 14 << 10),
        Size::Small => (16 << 10, 225 << 10),
        Size::Paper => (256 << 10, 3_600 << 10),
    }
}

/// "Unreached" depth marker.
const UNREACHED: i64 = -1;

fn build_graph(size: Size) -> Csr {
    let (n, m) = graph_shape(size);
    kronecker(n, m, SEED ^ 0x6a61)
}

fn write_csr(mem: &mut nsc_ir::Memory, row: ArrayId, col: ArrayId, g: &Csr) {
    for (i, &r) in g.row.iter().enumerate() {
        mem.write_index(row, i as u64, Scalar::I64(r as i64));
    }
    for (i, &c) in g.col.iter().enumerate() {
        mem.write_index(col, i as u64, Scalar::I64(c as i64));
    }
}

/// The source vertex: the highest-degree vertex (GAP-style non-trivial
/// start).
fn source_of(g: &Csr) -> u64 {
    (0..g.n as usize)
        .max_by_key(|&u| g.row[u + 1] - g.row[u])
        .unwrap_or(0) as u64
}

/// `bfs_push`: level-synchronous top-down BFS; the frontier expands with
/// compare-and-swap on neighbour depths — the indirect-atomic pattern
/// whose failed CAS motivates the MRSW lock (paper §IV-C).
pub fn bfs_push(size: Size) -> Workload {
    let g = build_graph(size);
    let levels = match size {
        Size::Tiny => 3,
        Size::Small => 4,
        Size::Paper => 6,
    };
    let n = g.n;
    let mut p = Program::new("bfs_push");
    let row = p.array("row", ElemType::I64, n + 1);
    let col = p.array("col", ElemType::I64, g.edges().max(1));
    let depth = p.array("depth", ElemType::I64, n);
    for level in 0..levels {
        let mut k = KernelBuilder::new(&format!("level{level}"), n);
        let u = k.outer_var();
        let du = k.load(depth, Expr::var(u));
        k.begin_if(Expr::eq(Expr::var(du), Expr::imm(level)));
        let s = k.load(row, Expr::var(u));
        let e = k.load(row, Expr::var(u) + Expr::imm(1));
        let j = k.begin_loop(Trip::Expr(Expr::var(e) - Expr::var(s)));
        let v = k.load(col, Expr::var(s) + Expr::var(j));
        let _old = k.atomic_cas(depth, Expr::var(v), Expr::imm(UNREACHED), Expr::imm(level + 1));
        k.end_loop();
        k.end_if();
        k.sync_free();
        p.push_kernel(k.finish());
    }
    let src = source_of(&g);
    let g_init = g.clone();
    Workload {
        name: "bfs_push",
        category: Category::IndirectAtomic,
        program: p,
        params: vec![],
        init: Box::new(move |mem| {
            write_csr(mem, row, col, &g_init);
            for v in 0..n {
                mem.write_index(depth, v, Scalar::I64(UNREACHED));
            }
            mem.write_index(depth, src, Scalar::I64(0));
        }),
        output_arrays: vec![depth],
    }
}

/// `pr_push`: push-style PageRank — contributions scatter to out-neighbours
/// with atomic float adds (always-modifying atomics: no MRSW benefit,
/// Figure 16).
pub fn pr_push(size: Size) -> Workload {
    let g = build_graph(size);
    let iters = size.iters(4);
    let n = g.n;
    let mut p = Program::new("pr_push");
    let row = p.array("row", ElemType::I64, n + 1);
    let col = p.array("col", ElemType::I64, g.edges().max(1));
    let score = p.array("score", ElemType::F64, n);
    let incoming = p.array("incoming", ElemType::F64, n);
    for t in 0..iters {
        // contrib/scatter kernel.
        let mut k = KernelBuilder::new(&format!("scatter{t}"), n);
        let u = k.outer_var();
        let s = k.load(row, Expr::var(u));
        let e = k.load(row, Expr::var(u) + Expr::imm(1));
        let sc = k.load(score, Expr::var(u));
        let contrib = k.let_(
            Expr::var(sc) / Expr::max(Expr::var(e) - Expr::var(s), Expr::imm(1)),
        );
        let j = k.begin_loop(Trip::Expr(Expr::var(e) - Expr::var(s)));
        let v = k.load(col, Expr::var(s) + Expr::var(j));
        k.atomic(incoming, Expr::var(v), AtomicOp::Add, Expr::var(contrib));
        k.end_loop();
        k.sync_free();
        p.push_kernel(k.finish());
        // apply kernel: score = base + d * incoming; incoming reset.
        let mut k2 = KernelBuilder::new(&format!("apply{t}"), n);
        let v = k2.outer_var();
        let inc = k2.load(incoming, Expr::var(v));
        k2.store(
            score,
            Expr::var(v),
            Expr::immf(0.15 / n as f64) + Expr::immf(0.85) * Expr::var(inc),
        );
        k2.store(incoming, Expr::var(v), Expr::immf(0.0));
        k2.sync_free();
        p.push_kernel(k2.finish());
    }
    let g_init = g.clone();
    Workload {
        name: "pr_push",
        category: Category::IndirectAtomic,
        program: p,
        params: vec![],
        init: Box::new(move |mem| {
            write_csr(mem, row, col, &g_init);
            for v in 0..n {
                mem.write_index(score, v, Scalar::F64(1.0 / n as f64));
                mem.write_index(incoming, v, Scalar::F64(0.0));
            }
        }),
        output_arrays: vec![score],
    }
}

/// Edge-record fields for the weighted graph (GAP stores (dest, weight)
/// pairs — the co-located operand the eligibility rule allows).
fn edge_dest() -> Field {
    Field { offset: 0, ty: ElemType::I64 }
}
fn edge_weight() -> Field {
    Field { offset: 8, ty: ElemType::I32 }
}

/// `sssp`: Bellman-Ford rounds with atomic min on neighbour distances
/// (non-lowering mins are the MRSW shared-lock case, Figure 16).
pub fn sssp(size: Size) -> Workload {
    let g = build_graph(size);
    let rounds = match size {
        Size::Tiny => 3,
        Size::Small => 4,
        Size::Paper => 6,
    };
    let n = g.n;
    let inf = i64::MAX / 4;
    let mut p = Program::new("sssp");
    let row = p.array("row", ElemType::I64, n + 1);
    let edges = p.array("edges", ElemType::Record(16), g.edges().max(1));
    let dist = p.array("dist", ElemType::I64, n);
    let dist_next = p.array("dist_next", ElemType::I64, n);
    for r in 0..rounds {
        // Relax into the next-round buffer so the result is independent of
        // cross-core interleaving (Bellman-Ford round semantics).
        let mut k = KernelBuilder::new(&format!("round{r}"), n);
        let u = k.outer_var();
        let du = k.load(dist, Expr::var(u));
        k.begin_if(Expr::lt(Expr::var(du), Expr::imm(inf)));
        let s = k.load(row, Expr::var(u));
        let e = k.load(row, Expr::var(u) + Expr::imm(1));
        let j = k.begin_loop(Trip::Expr(Expr::var(e) - Expr::var(s)));
        let v = k.load_field(edges, Expr::var(s) + Expr::var(j), Some(edge_dest()));
        let w = k.load_field(edges, Expr::var(s) + Expr::var(j), Some(edge_weight()));
        k.atomic(dist_next, Expr::var(v), AtomicOp::Min, Expr::var(du) + Expr::var(w));
        k.end_loop();
        k.end_if();
        k.sync_free();
        p.push_kernel(k.finish());
        // Merge the round's relaxations back (affine RMW).
        let mut k2 = KernelBuilder::new(&format!("merge{r}"), n);
        let v = k2.outer_var();
        let dn = k2.load(dist_next, Expr::var(v));
        let dc = k2.load(dist, Expr::var(v));
        k2.store(dist, Expr::var(v), Expr::min(Expr::var(dc), Expr::var(dn)));
        k2.sync_free();
        p.push_kernel(k2.finish());
    }
    let src = source_of(&g);
    let g_init = g.clone();
    let weights = crate::data::uniform_u64(g.edges().max(1), 255, SEED ^ 0x77);
    Workload {
        name: "sssp",
        category: Category::IndirectAtomic,
        program: p,
        params: vec![],
        init: Box::new(move |mem| {
            for (i, &r) in g_init.row.iter().enumerate() {
                mem.write_index(row, i as u64, Scalar::I64(r as i64));
            }
            for (i, &c) in g_init.col.iter().enumerate() {
                mem.write(edges, i as u64, Some(edge_dest()), Scalar::I64(c as i64));
                mem.write(
                    edges,
                    i as u64,
                    Some(edge_weight()),
                    Scalar::I64(weights[i] as i64 + 1),
                );
            }
            for v in 0..n {
                mem.write_index(dist, v, Scalar::I64(inf));
                mem.write_index(dist_next, v, Scalar::I64(inf));
            }
            mem.write_index(dist, src, Scalar::I64(0));
        }),
        output_arrays: vec![dist],
    }
}

/// `bfs_pull`: bottom-up BFS — unreached vertices scan in-neighbours with
/// an indirect max-reduction over frontier membership.
pub fn bfs_pull(size: Size) -> Workload {
    let g = build_graph(size).transpose();
    let levels = match size {
        Size::Tiny => 3,
        Size::Small => 4,
        Size::Paper => 6,
    };
    let n = g.n;
    let mut p = Program::new("bfs_pull");
    let row = p.array("in_row", ElemType::I64, n + 1);
    let col = p.array("in_col", ElemType::I64, g.edges().max(1));
    let depth0 = p.array("depth0", ElemType::I64, n);
    let depth1 = p.array("depth1", ElemType::I64, n);
    for level in 0..levels {
        let (cur, next) = if level % 2 == 0 { (depth0, depth1) } else { (depth1, depth0) };
        let mut k = KernelBuilder::new(&format!("level{level}"), n);
        let v = k.outer_var();
        let dv = k.load(cur, Expr::var(v));
        let acc = k.let_(Expr::imm(0));
        k.begin_if(Expr::eq(Expr::var(dv), Expr::imm(UNREACHED)));
        let s = k.load(row, Expr::var(v));
        let e = k.load(row, Expr::var(v) + Expr::imm(1));
        let j = k.begin_loop(Trip::Expr(Expr::var(e) - Expr::var(s)));
        let u = k.load(col, Expr::var(s) + Expr::var(j));
        let du = k.load(cur, Expr::var(u));
        k.assign(
            acc,
            Expr::max(Expr::var(acc), Expr::eq(Expr::var(du), Expr::imm(level))),
        );
        k.end_loop();
        k.end_if();
        k.store(
            next,
            Expr::var(v),
            Expr::select(Expr::var(acc), Expr::imm(level + 1), Expr::var(dv)),
        );
        k.sync_free();
        p.push_kernel(k.finish());
    }
    let out = if levels % 2 == 0 { depth0 } else { depth1 };
    let src = source_of(&g);
    let g_init = g.clone();
    Workload {
        name: "bfs_pull",
        category: Category::IndirectReduce,
        program: p,
        params: vec![],
        init: Box::new(move |mem| {
            write_csr(mem, row, col, &g_init);
            for v in 0..n {
                mem.write_index(depth0, v, Scalar::I64(UNREACHED));
            }
            mem.write_index(depth0, src, Scalar::I64(0));
        }),
        output_arrays: vec![out],
    }
}

/// `pr_pull`: pull-style PageRank — each vertex sums in-neighbour
/// contributions with an indirect add-reduction.
pub fn pr_pull(size: Size) -> Workload {
    let g = build_graph(size);
    let gt = g.transpose();
    let iters = size.iters(4);
    let n = g.n;
    let mut p = Program::new("pr_pull");
    let out_row = p.array("out_row", ElemType::I64, n + 1);
    let in_row = p.array("in_row", ElemType::I64, n + 1);
    let in_col = p.array("in_col", ElemType::I64, gt.edges().max(1));
    let score = p.array("score", ElemType::F64, n);
    let contrib = p.array("contrib", ElemType::F64, n);
    for t in 0..iters {
        // Contribution kernel (affine).
        let mut k1 = KernelBuilder::new(&format!("contrib{t}"), n);
        let u = k1.outer_var();
        let sc = k1.load(score, Expr::var(u));
        let s = k1.load(out_row, Expr::var(u));
        let e = k1.load(out_row, Expr::var(u) + Expr::imm(1));
        k1.store(
            contrib,
            Expr::var(u),
            Expr::var(sc) / Expr::max(Expr::var(e) - Expr::var(s), Expr::imm(1)),
        );
        k1.sync_free();
        p.push_kernel(k1.finish());
        // Gather kernel (indirect reduce).
        let mut k2 = KernelBuilder::new(&format!("gather{t}"), n);
        let v = k2.outer_var();
        let acc = k2.let_(Expr::immf(0.0));
        let s = k2.load(in_row, Expr::var(v));
        let e = k2.load(in_row, Expr::var(v) + Expr::imm(1));
        let j = k2.begin_loop(Trip::Expr(Expr::var(e) - Expr::var(s)));
        let u = k2.load(in_col, Expr::var(s) + Expr::var(j));
        let c = k2.load(contrib, Expr::var(u));
        k2.assign(acc, Expr::var(acc) + Expr::var(c));
        k2.end_loop();
        k2.store(
            score,
            Expr::var(v),
            Expr::immf(0.15 / n as f64) + Expr::immf(0.85) * Expr::var(acc),
        );
        k2.sync_free();
        p.push_kernel(k2.finish());
    }
    let g_init = g.clone();
    let gt_init = gt.clone();
    Workload {
        name: "pr_pull",
        category: Category::IndirectReduce,
        program: p,
        params: vec![],
        init: Box::new(move |mem| {
            for (i, &r) in g_init.row.iter().enumerate() {
                mem.write_index(out_row, i as u64, Scalar::I64(r as i64));
            }
            for (i, &r) in gt_init.row.iter().enumerate() {
                mem.write_index(in_row, i as u64, Scalar::I64(r as i64));
            }
            for (i, &c) in gt_init.col.iter().enumerate() {
                mem.write_index(in_col, i as u64, Scalar::I64(c as i64));
            }
            for v in 0..n {
                mem.write_index(score, v, Scalar::F64(1.0 / n as f64));
            }
        }),
        output_arrays: vec![score],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_compiler::compile;
    use nsc_ir::stream::{AddrPatternClass, ComputeClass};

    #[test]
    fn bfs_push_has_offloadable_indirect_cas() {
        let w = bfs_push(Size::Tiny);
        let c = compile(&w.program);
        let k = &c.kernels[0];
        let atomic = k.streams.iter().find(|s| s.role == ComputeClass::Atomic).unwrap();
        assert!(matches!(atomic.pattern, AddrPatternClass::Indirect { .. }));
        assert!(k.is_offloadable(atomic.id), "CAS must be offloadable");
        assert!(atomic.conditional);
    }

    #[test]
    fn sssp_weight_rides_the_edge_stream() {
        let w = sssp(Size::Tiny);
        let c = compile(&w.program);
        let k = &c.kernels[0];
        let atomic = k.streams.iter().find(|s| s.role == ComputeClass::Atomic).unwrap();
        assert!(
            k.is_offloadable(atomic.id),
            "co-located (dest, weight) operand must be eligible"
        );
        assert!(!atomic.value_deps.is_empty());
    }

    #[test]
    fn pull_kernels_have_indirect_reductions() {
        for w in [bfs_pull(Size::Tiny), pr_pull(Size::Tiny)] {
            let c = compile(&w.program);
            let found = c.kernels.iter().any(|k| {
                k.streams.iter().any(|s| {
                    s.role == ComputeClass::Reduce
                        && matches!(s.pattern, AddrPatternClass::Indirect { .. })
                })
            });
            assert!(found, "{} lacks an indirect reduction stream", w.name);
        }
    }

    #[test]
    fn bfs_push_and_pull_agree() {
        // Same graph, same levels: both must produce the same reachability
        // up to the explored depth.
        let push = bfs_push(Size::Tiny);
        let mut m1 = push.fresh_memory();
        nsc_ir::interp::run_program(&push.program, &mut m1, &push.params);
        let pull = bfs_pull(Size::Tiny);
        let mut m2 = pull.fresh_memory();
        nsc_ir::interp::run_program(&pull.program, &mut m2, &pull.params);
        let (d1, d2) = (push.output_arrays[0], pull.output_arrays[0]);
        // bfs_pull scans the transpose graph, so compare on reachable
        // counts per level rather than per-vertex.
        let n = m1.len_of(d1);
        let count = |m: &nsc_ir::Memory, a, lvl: i64| {
            (0..n).filter(|&v| m.read_index(a, v).as_i64() == lvl).count()
        };
        // Level 0 = one source in both.
        assert_eq!(count(&m1, d1, 0), 1);
        assert_eq!(count(&m2, d2, 0), 1);
        assert!(count(&m1, d1, 1) > 0);
        assert!(count(&m2, d2, 1) > 0);
    }

    #[test]
    fn sssp_distances_shrink_monotonically() {
        let w = sssp(Size::Tiny);
        let mut mem = w.fresh_memory();
        nsc_ir::interp::run_program(&w.program, &mut mem, &w.params);
        let dist = w.output_arrays[0];
        let n = mem.len_of(dist);
        let reached = (0..n)
            .filter(|&v| mem.read_index(dist, v).as_i64() < i64::MAX / 4)
            .count();
        assert!(reached > 1, "sssp reached only the source");
        // Source stays zero.
        let min = (0..n).map(|v| mem.read_index(dist, v).as_i64()).min().unwrap();
        assert_eq!(min, 0);
    }

    #[test]
    fn pr_scores_stay_normalized() {
        let w = pr_pull(Size::Tiny);
        let mut mem = w.fresh_memory();
        nsc_ir::interp::run_program(&w.program, &mut mem, &w.params);
        let score = w.output_arrays[0];
        let n = mem.len_of(score);
        let total: f64 = (0..n).map(|v| mem.read_index(score, v).as_f64()).sum();
        // Dangling nodes leak mass, but the total stays in a sane band.
        assert!(total > 0.1 && total < 2.0, "total rank {total}");
    }
}
