//! Pointer-chasing reduction workloads: bin_tree (binary-search-tree
//! lookups) and hash_join (chained hash-table probes). Table VI: 128k-node
//! tree with 8 B keys; 512k uniform lookups against a 256k x 512k join
//! with 1/8 hit rate.

use crate::data::{binary_tree, hash_table, uniform_u64, SEED};
use crate::{Category, Size, Workload};
use nsc_ir::build::KernelBuilder;
use nsc_ir::program::Field;
use nsc_ir::{BinOp, ElemType, Expr, Program, Scalar};

fn node_key() -> Field {
    Field { offset: 0, ty: ElemType::I64 }
}
fn node_left() -> Field {
    Field { offset: 8, ty: ElemType::I64 }
}
fn node_right() -> Field {
    Field { offset: 16, ty: ElemType::I64 }
}

/// `bin_tree`: search a 128k-node binary search tree for a batch of keys,
/// counting hits. The chase hops LLC banks following child pointers; only
/// the final count returns to the core (pointer-chase reduce).
pub fn bin_tree(size: Size) -> Workload {
    let n_nodes = size.scale(128 * 1024);
    let n_queries = size.scale(256 * 1024);
    let (keys, left, right, root) = binary_tree(n_nodes, SEED ^ 0x10);
    let n_nodes = keys.len() as u64;
    let mut p = Program::new("bin_tree");
    let nodes = p.array("nodes", ElemType::Record(24), n_nodes);
    let queries = p.array("queries", ElemType::I64, n_queries);
    let found_out = p.array("found", ElemType::I64, 1);
    p.set_params(1);
    let mut k = KernelBuilder::new("search", n_queries);
    let i = k.outer_var();
    let q = k.load(queries, Expr::var(i));
    let cur = k.let_(Expr::param(0)); // root node id
    let found = k.let_(Expr::imm(0));
    k.begin_while(Expr::bin(
        BinOp::And,
        Expr::ne(Expr::var(cur), Expr::imm(-1)),
        Expr::eq(Expr::var(found), Expr::imm(0)),
    ));
    let nk = k.load_field(nodes, Expr::var(cur), Some(node_key()));
    let l = k.load_field(nodes, Expr::var(cur), Some(node_left()));
    let r = k.load_field(nodes, Expr::var(cur), Some(node_right()));
    k.assign(found, Expr::eq(Expr::var(q), Expr::var(nk)));
    k.assign(
        cur,
        Expr::select(Expr::lt(Expr::var(q), Expr::var(nk)), Expr::var(l), Expr::var(r)),
    );
    k.end_loop();
    let total = k.var();
    k.assign(total, Expr::var(total) + Expr::var(found));
    k.reduce_outer(total, BinOp::Add, found_out);
    k.sync_free();
    p.push_kernel(k.finish());

    // Half of the queries hit existing keys, half miss.
    let mut qs: Vec<i64> = Vec::with_capacity(n_queries as usize);
    let rnd = uniform_u64(n_queries, u64::MAX / 2, SEED ^ 0x11);
    for (idx, &r) in rnd.iter().enumerate() {
        if idx % 2 == 0 {
            qs.push(keys[(r % n_nodes) as usize]);
        } else {
            qs.push(r as i64 | 1); // odd values unlikely present
        }
    }
    Workload {
        name: "bin_tree",
        category: Category::PointerReduce,
        program: p,
        params: vec![Scalar::I64(root)],
        init: Box::new(move |mem| {
            for i in 0..n_nodes as usize {
                mem.write(nodes, i as u64, Some(node_key()), Scalar::I64(keys[i]));
                mem.write(nodes, i as u64, Some(node_left()), Scalar::I64(left[i]));
                mem.write(nodes, i as u64, Some(node_right()), Scalar::I64(right[i]));
            }
            for (i, &q) in qs.iter().enumerate() {
                mem.write_index(queries, i as u64, Scalar::I64(q));
            }
        }),
        output_arrays: vec![found_out],
    }
}

fn entry_key() -> Field {
    Field { offset: 0, ty: ElemType::I64 }
}
fn entry_val() -> Field {
    Field { offset: 8, ty: ElemType::I64 }
}
fn entry_next() -> Field {
    Field { offset: 16, ty: ElemType::I64 }
}

/// `hash_join`: probe a chained hash table (256k build x 512k probe,
/// 1/8 hit rate), accumulating matched values — bucket chains walk across
/// LLC banks (pointer-chase reduce).
pub fn hash_join(size: Size) -> Workload {
    let n_build = size.scale(256 * 1024);
    let n_probe = size.scale(512 * 1024);
    let n_buckets = (n_build / 4).next_power_of_two();
    let (heads_v, keys_v, vals_v, nexts_v) = hash_table(n_build, n_buckets, SEED ^ 0x20);
    let mut p = Program::new("hash_join");
    let heads = p.array("heads", ElemType::I64, n_buckets);
    let entries = p.array("entries", ElemType::Record(24), n_build);
    let probes = p.array("probes", ElemType::I64, n_probe);
    let out = p.array("matched", ElemType::I64, 1);
    let mut k = KernelBuilder::new("probe", n_probe);
    let i = k.outer_var();
    let key = k.load(probes, Expr::var(i));
    let b = k.let_(Expr::bin(
        BinOp::Rem,
        Expr::var(key),
        Expr::imm(n_buckets as i64),
    ));
    let cur = k.load(heads, Expr::var(b));
    let acc = k.let_(Expr::imm(0));
    let cur_m = k.var();
    k.assign(cur_m, Expr::var(cur));
    k.begin_while(Expr::ne(Expr::var(cur_m), Expr::imm(-1)));
    let hk = k.load_field(entries, Expr::var(cur_m), Some(entry_key()));
    let hv = k.load_field(entries, Expr::var(cur_m), Some(entry_val()));
    let nx = k.load_field(entries, Expr::var(cur_m), Some(entry_next()));
    k.assign(
        acc,
        Expr::var(acc)
            + Expr::select(Expr::eq(Expr::var(hk), Expr::var(key)), Expr::var(hv), Expr::imm(0)),
    );
    k.assign(cur_m, Expr::var(nx));
    k.end_loop();
    let total = k.var();
    k.assign(total, Expr::var(total) + Expr::var(acc));
    k.reduce_outer(total, BinOp::Add, out);
    k.sync_free();
    p.push_kernel(k.finish());

    // Probe keys: 1/8 hit the build side.
    let rnd = uniform_u64(n_probe, u64::MAX / 2, SEED ^ 0x21);
    let mut probe_keys = Vec::with_capacity(n_probe as usize);
    for (i, &r) in rnd.iter().enumerate() {
        if i % 8 == 0 {
            probe_keys.push(keys_v[(r % n_build) as usize]);
        } else {
            probe_keys.push(r as i64 | 1);
        }
    }
    Workload {
        name: "hash_join",
        category: Category::PointerReduce,
        program: p,
        params: vec![],
        init: Box::new(move |mem| {
            for (i, &h) in heads_v.iter().enumerate() {
                mem.write_index(heads, i as u64, Scalar::I64(h));
            }
            for i in 0..keys_v.len() {
                mem.write(entries, i as u64, Some(entry_key()), Scalar::I64(keys_v[i]));
                mem.write(entries, i as u64, Some(entry_val()), Scalar::I64(vals_v[i]));
                mem.write(entries, i as u64, Some(entry_next()), Scalar::I64(nexts_v[i]));
            }
            for (i, &q) in probe_keys.iter().enumerate() {
                mem.write_index(probes, i as u64, Scalar::I64(q));
            }
        }),
        output_arrays: vec![out],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_compiler::compile;
    use nsc_ir::stream::{AddrPatternClass, ComputeClass};

    #[test]
    fn bin_tree_is_pointer_chase_reduce() {
        let w = bin_tree(Size::Tiny);
        let c = compile(&w.program);
        let k = &c.kernels[0];
        let chase: Vec<_> = k
            .streams
            .iter()
            .filter(|s| s.pattern == AddrPatternClass::PointerChase)
            .collect();
        assert_eq!(chase.len(), 3, "key/left/right loads chase pointers");
        assert!(
            chase.iter().any(|s| s.role == ComputeClass::Reduce),
            "found-count reduction attaches to the chase: {:?}",
            chase
        );
        assert!(k.fully_decoupled);
    }

    #[test]
    fn hash_join_chain_is_pointer_chase() {
        let w = hash_join(Size::Tiny);
        let c = compile(&w.program);
        let k = &c.kernels[0];
        assert!(k
            .streams
            .iter()
            .any(|s| s.pattern == AddrPatternClass::PointerChase));
        // The bucket-head load is indirect through the probe key.
        assert!(k
            .streams
            .iter()
            .any(|s| matches!(s.pattern, AddrPatternClass::Indirect { .. })));
    }

    #[test]
    fn bin_tree_finds_about_half() {
        let w = bin_tree(Size::Tiny);
        let mut mem = w.fresh_memory();
        nsc_ir::interp::run_program(&w.program, &mut mem, &w.params);
        let found = mem.read_index(w.output_arrays[0], 0).as_i64();
        let n = Size::Tiny.scale(256 * 1024) as i64;
        assert!(found >= n * 2 / 5 && found <= n * 3 / 5, "found {found} of {n}");
    }

    #[test]
    fn hash_join_hit_rate_about_an_eighth() {
        let w = hash_join(Size::Tiny);
        let mut mem = w.fresh_memory();
        nsc_ir::interp::run_program(&w.program, &mut mem, &w.params);
        let matched = mem.read_index(w.output_arrays[0], 0).as_i64();
        assert!(matched > 0, "no matches at all");
    }
}
