//! Deterministic input generators: Kronecker graphs, uniform arrays,
//! binary trees and chained hash tables.

use nsc_sim::rng::Rng;

/// Fixed seed so every run sees identical inputs.
pub const SEED: u64 = 0x5eed_cafe_f00d_beef;

/// A graph in compressed-sparse-row form.
#[derive(Clone, Debug)]
pub struct Csr {
    /// Number of vertices.
    pub n: u64,
    /// Row offsets, length `n + 1`.
    pub row: Vec<u64>,
    /// Column indices (destinations), length = edge count.
    pub col: Vec<u64>,
}

impl Csr {
    /// Number of directed edges.
    pub fn edges(&self) -> u64 {
        self.col.len() as u64
    }

    /// The transpose graph (in-edges), for pull-style kernels.
    pub fn transpose(&self) -> Csr {
        let mut deg = vec![0u64; self.n as usize];
        for &d in &self.col {
            deg[d as usize] += 1;
        }
        let mut row = vec![0u64; self.n as usize + 1];
        for v in 0..self.n as usize {
            row[v + 1] = row[v] + deg[v];
        }
        let mut cursor = row.clone();
        let mut col = vec![0u64; self.col.len()];
        for u in 0..self.n as usize {
            for e in self.row[u]..self.row[u + 1] {
                let v = self.col[e as usize] as usize;
                col[cursor[v] as usize] = u as u64;
                cursor[v] += 1;
            }
        }
        Csr { n: self.n, row, col }
    }
}

/// Generates a Kronecker (R-MAT) graph with the GAP parameters used in
/// Table VI: A/B/C = 0.57/0.19/0.19.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn kronecker(n: u64, edges: u64, seed: u64) -> Csr {
    assert!(n.is_power_of_two(), "Kronecker needs a power-of-two vertex count");
    let levels = n.trailing_zeros();
    let mut rng = Rng::seed_from_u64(seed);
    // GAP permutes vertex labels so the R-MAT hub bias does not collapse
    // onto the low vertex ids (which would break static load balance).
    let relabel = permutation(n, seed ^ 0x9e37);
    let mut pairs: Vec<(u64, u64)> = Vec::with_capacity(edges as usize);
    for _ in 0..edges {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..levels {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen_f64();
            if r < 0.57 {
                // quadrant A: (0,0)
            } else if r < 0.76 {
                v |= 1; // B: (0,1)
            } else if r < 0.95 {
                u |= 1; // C: (1,0)
            } else {
                u |= 1;
                v |= 1; // D
            }
        }
        pairs.push((relabel[u as usize], relabel[v as usize]));
    }
    pairs.sort_unstable();
    let mut row = vec![0u64; n as usize + 1];
    for &(u, _) in &pairs {
        row[u as usize + 1] += 1;
    }
    for i in 0..n as usize {
        row[i + 1] += row[i];
    }
    let col = pairs.into_iter().map(|(_, v)| v).collect();
    Csr { n, row, col }
}

/// Uniform random `u64` values in `[0, bound)`.
pub fn uniform_u64(n: u64, bound: u64, seed: u64) -> Vec<u64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range_u64(bound)).collect()
}

/// Uniform random floats in `[0, 1)`.
pub fn uniform_f64(n: u64, seed: u64) -> Vec<f64> {
    let mut rng = Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_f64()).collect()
}

/// A random permutation of `0..n`.
pub fn permutation(n: u64, seed: u64) -> Vec<u64> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut v: Vec<u64> = (0..n).collect();
    for i in (1..n as usize).rev() {
        let j = rng.gen_range_usize(i + 1);
        v.swap(i, j);
    }
    v
}

/// A balanced binary search tree over `n` random keys, laid out in random
/// node order (so pointer chasing hops banks). Returns
/// `(keys_in_node_order, left, right, root_index)`; absent children are
/// `-1`.
pub fn binary_tree(n: u64, seed: u64) -> (Vec<i64>, Vec<i64>, Vec<i64>, i64) {
    let mut keys = uniform_u64(n, u64::MAX / 2, seed)
        .into_iter()
        .map(|k| k as i64)
        .collect::<Vec<_>>();
    keys.sort_unstable();
    keys.dedup();
    let n = keys.len();
    // Node ids are a random permutation so tree order != memory order.
    let ids = permutation(n as u64, seed ^ 0xABCD);
    let mut key_of = vec![0i64; n];
    let mut left = vec![-1i64; n];
    let mut right = vec![-1i64; n];
    // Build balanced recursively over the sorted keys.
    #[allow(clippy::too_many_arguments)]
    fn build(
        keys: &[i64],
        lo: usize,
        hi: usize,
        ids: &[u64],
        next: &mut usize,
        key_of: &mut [i64],
        left: &mut [i64],
        right: &mut [i64],
    ) -> i64 {
        if lo >= hi {
            return -1;
        }
        let mid = (lo + hi) / 2;
        let id = ids[*next] as usize;
        *next += 1;
        key_of[id] = keys[mid];
        let l = build(keys, lo, mid, ids, next, key_of, left, right);
        let r = build(keys, mid + 1, hi, ids, next, key_of, left, right);
        left[id] = l;
        right[id] = r;
        id as i64
    }
    let mut next = 0;
    let root = build(&keys, 0, n, &ids, &mut next, &mut key_of, &mut left, &mut right);
    (key_of, left, right, root)
}

/// A chained hash table: `buckets` heads plus entry arrays
/// `(key, value, next)`. Returns `(heads, keys, values, nexts)`.
pub fn hash_table(n_entries: u64, n_buckets: u64, seed: u64) -> (Vec<i64>, Vec<i64>, Vec<i64>, Vec<i64>) {
    let keys = uniform_u64(n_entries, u64::MAX / 2, seed);
    let mut heads = vec![-1i64; n_buckets as usize];
    let mut nexts = vec![-1i64; n_entries as usize];
    let mut values = vec![0i64; n_entries as usize];
    let mut out_keys = vec![0i64; n_entries as usize];
    for (i, &k) in keys.iter().enumerate() {
        out_keys[i] = k as i64;
        values[i] = (k % 1000) as i64 + 1;
        let b = (k % n_buckets) as usize;
        nexts[i] = heads[b];
        heads[b] = i as i64;
    }
    (heads, out_keys, values, nexts)
}

/// Hash function used by histogram/hash_join kernels, expressed the same
/// way the IR kernels compute it (so hosts and kernels agree).
pub fn bucket_hash(key: i64, n_buckets: u64) -> u64 {
    (key as u64) % n_buckets
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kronecker_shape() {
        let g = kronecker(1024, 8192, SEED);
        assert_eq!(g.n, 1024);
        assert_eq!(g.edges(), 8192);
        assert_eq!(g.row.len(), 1025);
        assert_eq!(*g.row.last().unwrap(), 8192);
        assert!(g.col.iter().all(|&c| c < 1024));
        // R-MAT graphs are skewed: max degree far above average.
        let max_deg = (0..1024).map(|u| g.row[u + 1] - g.row[u]).max().unwrap();
        assert!(max_deg > 32, "max degree {max_deg} not skewed");
    }

    #[test]
    fn kronecker_deterministic() {
        let a = kronecker(256, 1024, 7);
        let b = kronecker(256, 1024, 7);
        assert_eq!(a.col, b.col);
        let c = kronecker(256, 1024, 8);
        assert_ne!(a.col, c.col);
    }

    #[test]
    fn transpose_preserves_edges() {
        let g = kronecker(256, 2048, SEED);
        let t = g.transpose();
        assert_eq!(t.edges(), g.edges());
        // Edge (u,v) in g implies (v,u) in t.
        let u = 5usize;
        for e in g.row[u]..g.row[u + 1] {
            let v = g.col[e as usize] as usize;
            let found = (t.row[v]..t.row[v + 1]).any(|f| t.col[f as usize] == u as u64);
            assert!(found);
        }
    }

    #[test]
    fn permutation_is_bijective() {
        let p = permutation(1000, 3);
        let mut seen = vec![false; 1000];
        for &x in &p {
            assert!(!seen[x as usize]);
            seen[x as usize] = true;
        }
    }

    #[test]
    fn tree_is_searchable() {
        let (keys, left, right, root) = binary_tree(1000, SEED);
        // Search for every key; all must be found.
        for &k in keys.iter().step_by(37) {
            let mut cur = root;
            let mut found = false;
            while cur != -1 {
                let nk = keys[cur as usize];
                if k == nk {
                    found = true;
                    break;
                }
                cur = if k < nk { left[cur as usize] } else { right[cur as usize] };
            }
            assert!(found, "key {k} not found");
        }
    }

    #[test]
    fn tree_depth_is_logarithmic() {
        let (keys, left, right, root) = binary_tree(4096, SEED);
        fn depth(i: i64, left: &[i64], right: &[i64]) -> usize {
            if i < 0 {
                0
            } else {
                1 + depth(left[i as usize], left, right).max(depth(right[i as usize], left, right))
            }
        }
        let d = depth(root, &left, &right);
        assert!(d <= 16, "depth {d} too deep for {} nodes", keys.len());
    }

    #[test]
    fn hash_table_chains_consistent() {
        let (heads, keys, values, nexts) = hash_table(1000, 128, SEED);
        let mut count = 0;
        for (b, &h) in heads.iter().enumerate() {
            let mut cur = h;
            while cur != -1 {
                assert_eq!(bucket_hash(keys[cur as usize], 128), b as u64);
                assert!(values[cur as usize] > 0);
                cur = nexts[cur as usize];
                count += 1;
            }
        }
        assert_eq!(count, 1000);
    }
}
