//! Data-mining-style workloads: histogram (affine load with key
//! extraction), scluster and svm (indirect loads over large records).

use crate::{Category, Size, Workload};
use nsc_ir::build::KernelBuilder;
use nsc_ir::program::Field;
use nsc_ir::{AtomicOp, BinOp, ElemType, Expr, Program, Scalar};

/// `histogram`: extract an 8-bit key from each 32-bit value and count it
/// (Table VI: 12M 32-bit values, 8-bit key). The key extraction rides the
/// affine load stream; the 2 kB histogram itself is private-cache resident
/// and stays in the core.
pub fn histogram(size: Size) -> Workload {
    let n = size.scale(12_000_000);
    // OpenMP array reduction: each thread counts into a private copy
    // (merged afterwards), so histogram lines never ping-pong.
    let blocks = 64u64;
    let block = n.div_ceil(blocks);
    let mut p = Program::new("histogram");
    let vals = p.array("vals", ElemType::I32, n);
    let histo = p.array("histo", ElemType::I64, 256 * blocks);
    let mut k = KernelBuilder::new("count", n);
    let i = k.outer_var();
    let v = k.load(vals, Expr::var(i));
    let key = k.let_(Expr::bin(
        BinOp::And,
        Expr::bin(
            BinOp::Xor,
            Expr::var(v),
            Expr::bin(BinOp::Shr, Expr::var(v), Expr::imm(8)),
        ),
        Expr::imm(255),
    ));
    k.hint_width(key, 1);
    let base = k.let_(Expr::bin(BinOp::Div, Expr::var(i), Expr::imm(block as i64)) * Expr::imm(256));
    k.atomic(histo, Expr::var(base) + Expr::var(key), AtomicOp::Add, Expr::imm(1));
    k.sync_free();
    p.push_kernel(k.finish());
    Workload {
        name: "histogram",
        category: Category::AffineLoad,
        program: p,
        params: vec![],
        init: Box::new(move |mem| {
            for (i, v) in crate::data::uniform_u64(n, 1 << 31, crate::data::SEED ^ 5)
                .into_iter()
                .enumerate()
            {
                mem.write_index(vals, i as u64, Scalar::I64(v as i64));
            }
        }),
        output_arrays: vec![histo],
    }
}

/// Field 0 of a 64-byte point record.
fn point_field() -> Field {
    Field { offset: 0, ty: ElemType::F64 }
}

/// `scluster` (streamcluster): Euclidean-distance gain evaluation against a
/// candidate center over permuted points (Table VI: 768k x 64 B points,
/// 5 iterations). The distance computation is the paper's showcase for
/// near-load computing — only an 8-byte scalar returns instead of the
/// 64-byte point.
pub fn scluster(size: Size) -> Workload {
    let n = size.scale(768 * 1024);
    let iters = size.iters(5);
    let mut p = Program::new("scluster");
    let points = p.array("points", ElemType::Record(64), n);
    let perm = p.array("perm", ElemType::I64, n);
    let cost = p.array("cost", ElemType::F64, n);
    let assign = p.array("assign", ElemType::I64, n);
    p.set_params(iters as u32);
    for t in 0..iters {
        let mut k = KernelBuilder::new(&format!("gain{t}"), n);
        let i = k.outer_var();
        let which = k.load(perm, Expr::var(i));
        let x = k.load_field(points, Expr::var(which), Some(point_field()));
        // Distance against the candidate center (parameter t): the 8-dim
        // squared distance, with dimension d approximated as scaled copies
        // of the stored coordinate (deterministic and checkable).
        let c = Expr::param(t as u32);
        let mut dist = Expr::immf(0.0);
        for d in 0..4 {
            let coord = Expr::var(x) * Expr::immf(1.0 + d as f64 * 0.25);
            let diff = coord - c.clone();
            dist = dist + diff.clone() * diff;
        }
        let dist_v = k.let_(dist);
        k.hint_width(dist_v, 8);
        let cur = k.load(cost, Expr::var(i));
        k.begin_if(Expr::lt(Expr::var(dist_v), Expr::var(cur)));
        k.store(cost, Expr::var(i), Expr::var(dist_v));
        k.store(assign, Expr::var(i), Expr::imm(t as i64));
        k.end_if();
        k.sync_free();
        p.push_kernel(k.finish());
    }
    Workload {
        name: "scluster",
        category: Category::IndirectLoad,
        program: p,
        params: (0..iters).map(|t| Scalar::F64(0.2 + t as f64 * 0.15)).collect(),
        init: Box::new(move |mem| {
            let coords = crate::data::uniform_f64(n, crate::data::SEED ^ 6);
            let pm = crate::data::permutation(n, crate::data::SEED ^ 7);
            for i in 0..n {
                mem.write(points, i, Some(point_field()), Scalar::F64(coords[i as usize]));
                mem.write_index(perm, i, Scalar::I64(pm[i as usize] as i64));
                mem.write_index(cost, i, Scalar::F64(1e30));
            }
        }),
        output_arrays: vec![cost, assign],
    }
}

/// `svm`: margin evaluation of support vectors selected indirectly
/// (Table VI: 384k x 64 B rows, 2 iterations). Same indirect-load shape as
/// scluster with a dot-product near-load computation.
pub fn svm(size: Size) -> Workload {
    let n = size.scale(384 * 1024);
    let iters = size.iters(2);
    let mut p = Program::new("svm");
    let rows = p.array("rows", ElemType::Record(64), n);
    let sel = p.array("sel", ElemType::I64, n);
    let margin = p.array("margin", ElemType::F64, n);
    p.set_params(iters as u32);
    for t in 0..iters {
        let mut k = KernelBuilder::new(&format!("margin{t}"), n);
        let i = k.outer_var();
        let which = k.load(sel, Expr::var(i));
        let x = k.load_field(rows, Expr::var(which), Some(point_field()));
        let w = Expr::param(t as u32);
        // Polynomial-kernel-style margin: Σ_d w^d * x^d over 4 terms.
        let mut acc = Expr::immf(0.0);
        let mut term = Expr::var(x);
        for _ in 0..4 {
            acc = acc + term.clone() * w.clone();
            term = term * Expr::var(x);
        }
        let m = k.let_(acc);
        k.hint_width(m, 8);
        let old = k.load(margin, Expr::var(i));
        k.store(margin, Expr::var(i), Expr::var(old) + Expr::var(m));
        k.sync_free();
        p.push_kernel(k.finish());
    }
    Workload {
        name: "svm",
        category: Category::IndirectLoad,
        program: p,
        params: (0..iters).map(|t| Scalar::F64(0.5 - t as f64 * 0.1)).collect(),
        init: Box::new(move |mem| {
            let coords = crate::data::uniform_f64(n, crate::data::SEED ^ 8);
            let pm = crate::data::permutation(n, crate::data::SEED ^ 9);
            for i in 0..n {
                mem.write(rows, i, Some(point_field()), Scalar::F64(coords[i as usize] - 0.5));
                mem.write_index(sel, i, Scalar::I64(pm[i as usize] as i64));
            }
        }),
        output_arrays: vec![margin],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_compiler::compile;
    use nsc_ir::stream::{AddrPatternClass, ComputeClass};

    #[test]
    fn histogram_key_extraction_on_load_stream() {
        let w = histogram(Size::Tiny);
        let c = compile(&w.program);
        let load = c.kernels[0]
            .streams
            .iter()
            .find(|s| s.role == ComputeClass::Load)
            .expect("value load stream");
        assert_eq!(load.result_bytes, 1, "key narrows to one byte");
        assert!(load.compute_uops >= 3);
        assert!(!load.needs_scm, "integer hash fits the scalar PE");
        // The histogram atomic is recognized as indirect through the key.
        let atomic = c.kernels[0]
            .streams
            .iter()
            .find(|s| s.role == ComputeClass::Atomic)
            .expect("histogram atomic");
        assert!(matches!(atomic.pattern, AddrPatternClass::Indirect { .. }));
    }

    #[test]
    fn scluster_distance_attaches_to_indirect_load() {
        let w = scluster(Size::Tiny);
        let c = compile(&w.program);
        let point_stream = c.kernels[0]
            .streams
            .iter()
            .find(|s| matches!(s.pattern, AddrPatternClass::Indirect { .. }) && s.compute_uops > 4)
            .expect("point load with distance closure");
        assert_eq!(point_stream.role, ComputeClass::Load);
        assert_eq!(point_stream.result_bytes, 8, "scalar distance returns");
        assert!(point_stream.needs_scm, "FP distance needs the SCM");
    }

    #[test]
    fn svm_margin_is_near_load_compute() {
        let w = svm(Size::Tiny);
        let c = compile(&w.program);
        let row_stream = c.kernels[0]
            .streams
            .iter()
            .find(|s| matches!(s.pattern, AddrPatternClass::Indirect { .. }) && s.compute_uops > 4)
            .expect("row load with margin closure");
        assert_eq!(row_stream.result_bytes, 8);
    }

    #[test]
    fn histogram_counts_sum_to_n() {
        let w = histogram(Size::Tiny);
        let mut mem = w.fresh_memory();
        nsc_ir::interp::run_program(&w.program, &mut mem, &w.params);
        let total: i64 = (0..mem.len_of(w.output_arrays[0]))
            .map(|i| mem.read_index(w.output_arrays[0], i).as_i64())
            .sum();
        assert_eq!(total as u64, Size::Tiny.scale(12_000_000));
    }

    #[test]
    fn scluster_costs_monotone_nonincreasing() {
        let w = scluster(Size::Tiny);
        let mut mem = w.fresh_memory();
        nsc_ir::interp::run_program(&w.program, &mut mem, &w.params);
        let cost = w.output_arrays[0];
        for i in (0..mem.len_of(cost)).step_by(173) {
            let v = mem.read_index(cost, i).as_f64();
            assert!(v < 1e30, "cost never updated at {i}");
            assert!(v >= 0.0);
        }
    }
}
