//! Compiled stream execution: kernel `Expr` trees lowered to register
//! bytecode.
//!
//! The tree walker in [`interp`](crate::interp) re-dispatches through boxed
//! [`Expr`] nodes once per element per statement — the hottest path in every
//! sweep. This module flattens each kernel's expressions into a compact
//! three-address bytecode over a flat register file: no `Box` chasing, no
//! recursion, no per-element allocation.
//!
//! # Register file
//!
//! One `Vec<Scalar>` per (core, kernel), laid out as
//!
//! ```text
//! [ locals 0..n_locals | params | consts + hoisted + temps ... ]
//! ```
//!
//! * **Locals** occupy the low registers, so [`VarId`] `v` *is* register
//!   `v.0` and the tree-walker fallback can execute against
//!   `&mut regs[..n_locals]` unchanged.
//! * **Params** are pinned once per kernel by [`KernelCode::init_regs`].
//! * Everything above is allocated monotonically during lowering: deduped
//!   constants (written once at init), hoisted loop-invariant results, and
//!   statement temporaries. Registers are never reused, so invariants stay
//!   warm across iterations; only `regs[..n_locals]` is re-zeroed per outer
//!   iteration (mirroring the tree walker's cleared locals).
//!
//! # Lowering
//!
//! Lowering performs constant folding (via the same [`BinOp::eval`] /
//! [`UnOp::eval`] the tree walker uses, so folded values are bit-identical),
//! common-subexpression elimination within a statement, and loop-invariant
//! hoisting by *level*: an op whose operands depend only on params/consts
//! runs once per kernel (the preamble), one that additionally reads the
//! outer loop index runs once per outer iteration, and everything else runs
//! in its statement's span. Assignments to variables no statement ever reads
//! are pruned. `Trip::Expr` counts whose ops hoist completely are
//! pre-evaluated into a pinned register ([`BStmt::LoopReg`]).
//!
//! # Determinism
//!
//! Results, `MemClient` call sequences, counters and trace events are
//! bit-identical to the tree walker: expression evaluation is pure and
//! total (division by zero yields 0, shifts mask, arithmetic wraps), so
//! evaluating an op earlier (hoisting), later, once instead of twice (CSE)
//! or unconditionally (both `Select` arms) cannot be observed — the only
//! observable effects are `MemClient` calls, which are emitted in exactly
//! the tree walker's order with exactly the tree walker's operands.
//! Commutative operands are deliberately *not* canonicalized for CSE so
//! float results keep identical bit patterns (e.g. NaN payloads).
//!
//! Statements whose lowering would overflow the register file (or that a
//! plan-pass cost policy declines) fall back to the tree walker per
//! statement ([`BStmt::Tree`]); `NSC_COMPILE=0` (see [`enabled`]) disables
//! bytecode everywhere.

use crate::expr::Expr;
use crate::interp::{ExecError, MemClient, WHILE_LOOP_CAP};
use crate::program::{ArrayId, Field, Kernel, Loop, Stmt, StmtId, Trip, VarId};
use crate::types::{AtomicOp, BinOp, Scalar, UnOp};
use std::collections::HashMap;

/// A register index into the flat per-kernel register file.
pub type Reg = u16;

/// Registers stay below this; statements that would push past it fall back
/// to the tree walker.
const REG_LIMIT: u32 = u16::MAX as u32;

/// A three-address bytecode op. Sources and destination are registers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// `regs[dst] = op(regs[a], regs[b])`.
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `regs[dst] = op(regs[a])`.
    Un { op: UnOp, dst: Reg, a: Reg },
    /// `regs[dst] = regs[cond] ? regs[a] : regs[b]` (both arms evaluated;
    /// expression evaluation is pure so this is unobservable).
    Select { dst: Reg, cond: Reg, a: Reg, b: Reg },
}

/// A contiguous run of ops in the kernel's shared op pool.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Span {
    lo: u32,
    hi: u32,
}

impl Span {
    fn rng(self) -> std::ops::Range<usize> {
        self.lo as usize..self.hi as usize
    }

    /// Number of ops in the span.
    pub fn len(self) -> u32 {
        self.hi - self.lo
    }

    /// Whether the span is empty.
    pub fn is_empty(self) -> bool {
        self.lo == self.hi
    }
}

/// A lowered statement. Mirrors [`Stmt`], with expressions replaced by op
/// spans plus result registers.
#[derive(Clone, Debug, PartialEq)]
pub enum BStmt {
    /// `regs[dst] = regs[src]` after running `span`.
    Assign { span: Span, dst: Reg, src: Reg },
    /// Load into `regs[dst]` from `array[regs[index]]`.
    Load { id: StmtId, array: ArrayId, field: Option<Field>, span: Span, index: Reg, dst: Reg },
    /// Store `regs[value]` to `array[regs[index]]`.
    Store { id: StmtId, array: ArrayId, field: Option<Field>, span: Span, index: Reg, value: Reg },
    /// Atomic RMW; the old value lands in `regs[old]` if requested.
    Atomic {
        id: StmtId,
        array: ArrayId,
        field: Option<Field>,
        op: AtomicOp,
        span: Span,
        index: Reg,
        operand: Reg,
        expected: Option<Reg>,
        old: Option<Reg>,
    },
    /// Branch on `regs[cond]` after running `span`.
    If { span: Span, cond: Reg, then_body: Vec<BStmt>, else_body: Vec<BStmt> },
    /// Counted loop with a compile-time trip (includes folded `Trip::Expr`).
    LoopConst { var: Reg, n: u64, body: Vec<BStmt> },
    /// Counted loop whose trip was pre-evaluated into `regs[trip]` (a
    /// hoisted/pinned register or a plain local), read at loop entry.
    LoopReg { var: Reg, trip: Reg, body: Vec<BStmt> },
    /// Counted loop whose trip needs `span` evaluated at loop entry.
    LoopExpr { var: Reg, span: Span, trip: Reg, body: Vec<BStmt> },
    /// Data-dependent loop: run `span`, test `regs[cond]`, run body.
    LoopWhile { var: Reg, span: Span, cond: Reg, body: Vec<BStmt> },
    /// Fallback: execute the original statement with the tree walker
    /// against `regs[..n_locals]`.
    Tree(Stmt),
}

/// Lowering statistics, for the plan pass and for reporting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LowerStats {
    /// Operator nodes in the source expression trees.
    pub expr_nodes: u32,
    /// Bytecode ops emitted into statement spans.
    pub ops: u32,
    /// Ops hoisted to the once-per-kernel preamble.
    pub pre_ops: u32,
    /// Ops hoisted to the once-per-outer-iteration prologue.
    pub iter_ops: u32,
    /// Operator nodes removed by constant folding.
    pub folded: u32,
    /// Operator nodes removed by CSE.
    pub cse_hits: u32,
    /// Dead `Assign` statements pruned.
    pub pruned_assigns: u32,
    /// `Trip::Expr` counts pre-evaluated into a pinned register.
    pub hoisted_trips: u32,
    /// Statements left on the tree walker (policy or register pressure).
    pub tree_stmts: u32,
}

/// Per-statement lowering summary handed to a plan-pass policy.
#[derive(Clone, Copy, Debug)]
pub struct LoweredStmt {
    /// Operator nodes in the statement's expressions (subtree total for
    /// `If`/`Loop`).
    pub expr_nodes: u32,
    /// Bytecode ops the lowering emitted (after folding, CSE, hoisting).
    pub ops: u32,
    /// Loop depth below the parallel outer loop (0 = outer body).
    pub depth: u32,
}

/// Chooses, per lowered statement, whether to keep the bytecode (`true`) or
/// fall back to the tree walker (`false`).
pub type Policy<'a> = &'a mut dyn FnMut(&Stmt, &LoweredStmt) -> bool;

/// Returns `false` iff `NSC_COMPILE` requests the tree walker everywhere
/// (`0`, `false` or `off`). Read once per process.
pub fn enabled() -> bool {
    static ENABLED: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *ENABLED.get_or_init(|| parse_enabled(std::env::var("NSC_COMPILE").ok().as_deref()))
}

/// Pure parse of the `NSC_COMPILE` setting (default: enabled).
pub fn parse_enabled(v: Option<&str>) -> bool {
    !matches!(v, Some("0") | Some("false") | Some("off"))
}

/// Executes a run of ops against the register file.
#[inline]
fn run_ops(ops: &[Op], regs: &mut [Scalar]) {
    for op in ops {
        match *op {
            Op::Bin { op, dst, a, b } => {
                regs[dst as usize] = op.eval(regs[a as usize], regs[b as usize]);
            }
            Op::Un { op, dst, a } => regs[dst as usize] = op.eval(regs[a as usize]),
            Op::Select { dst, cond, a, b } => {
                regs[dst as usize] =
                    if regs[cond as usize].as_bool() { regs[a as usize] } else { regs[b as usize] }
            }
        }
    }
}

/// A whole kernel compiled to bytecode.
///
/// Built once per kernel (by the `nsc-compiler` plan pass or by the golden
/// interpreter); executed once per outer iteration via
/// [`exec_iteration`](KernelCode::exec_iteration) against a register file
/// prepared by [`init_regs`](KernelCode::init_regs).
#[derive(Clone, Debug)]
pub struct KernelCode {
    body: Vec<BStmt>,
    /// Shared statement-span op pool.
    ops: Vec<Op>,
    /// Once per kernel: hoisted param/const-only ops.
    pre_ops: Vec<Op>,
    /// Once per outer iteration: ops also reading the outer index.
    iter_ops: Vec<Op>,
    /// Deduped constants written into their registers at init.
    const_regs: Vec<(Reg, Scalar)>,
    n_locals: u16,
    n_params: u16,
    n_regs: u16,
    outer_var: Reg,
    reduction: Option<Reg>,
    /// Lowering statistics.
    pub stats: LowerStats,
}

impl KernelCode {
    /// Lowers a kernel, keeping bytecode for every statement that fits the
    /// register file.
    pub fn compile(kernel: &Kernel) -> KernelCode {
        Self::compile_with(kernel, &mut |_, _| true)
    }

    /// Lowers a kernel with a plan-pass policy deciding, per statement,
    /// whether the lowered bytecode is kept or the statement falls back to
    /// the tree walker. Register-file overflow forces the fallback
    /// regardless of the policy.
    pub fn compile_with(kernel: &Kernel, policy: Policy<'_>) -> KernelCode {
        let n_params = max_param(kernel);
        let outer_var = kernel.outer.var.0;
        // Degenerate register pressure (pathological local/param counts):
        // run the whole body on the tree walker.
        if kernel.n_locals as u32 + n_params + 64 > REG_LIMIT {
            return KernelCode {
                body: kernel.outer.body.iter().map(|s| BStmt::Tree(s.clone())).collect(),
                ops: Vec::new(),
                pre_ops: Vec::new(),
                iter_ops: Vec::new(),
                const_regs: Vec::new(),
                n_locals: kernel.n_locals,
                n_params: 0,
                n_regs: kernel.n_locals,
                outer_var,
                reduction: kernel.outer_reduction.as_ref().map(|r| r.var.0),
                stats: LowerStats {
                    tree_stmts: kernel.outer.body.len() as u32,
                    ..LowerStats::default()
                },
            };
        }
        let mut lw = Lowerer::for_kernel(kernel, n_params as u16);
        lw.stats.expr_nodes = kernel.outer.body.iter().map(stmt_uops).sum();
        let body = lw.lower_stmts(&kernel.outer.body, 0, policy);
        KernelCode {
            body,
            ops: lw.ops,
            pre_ops: lw.pre_ops,
            iter_ops: lw.iter_ops,
            const_regs: lw.const_regs,
            n_locals: kernel.n_locals,
            n_params: n_params as u16,
            n_regs: lw.next_reg,
            outer_var,
            reduction: kernel.outer_reduction.as_ref().map(|r| r.var.0),
            stats: lw.stats,
        }
    }

    /// Size of the register file this code executes against.
    pub fn n_regs(&self) -> u16 {
        self.n_regs
    }

    /// Prepares the register file: zeroes it, pins params and constants,
    /// and runs the once-per-kernel preamble.
    ///
    /// # Panics
    ///
    /// Panics if `params` is shorter than the highest `Param` index the
    /// kernel references (the tree walker panics on the same malformed
    /// input at first evaluation).
    pub fn init_regs(&self, regs: &mut Vec<Scalar>, params: &[Scalar]) {
        regs.clear();
        regs.resize(self.n_regs as usize, Scalar::I64(0));
        for i in 0..self.n_params as usize {
            regs[self.n_locals as usize + i] = params[i];
        }
        for &(r, v) in &self.const_regs {
            regs[r as usize] = v;
        }
        run_ops(&self.pre_ops, regs);
    }

    /// Executes one outer iteration, mirroring
    /// [`interp::exec_iteration`](crate::interp::exec_iteration): zeroes
    /// the locals, sets the outer index, runs the per-iteration prologue
    /// and the body, and returns the reduction contribution if the kernel
    /// declares one.
    pub fn exec_iteration(
        &self,
        iter: u64,
        params: &[Scalar],
        client: &mut impl MemClient,
        regs: &mut [Scalar],
    ) -> Result<Option<Scalar>, ExecError> {
        debug_assert_eq!(regs.len(), self.n_regs as usize);
        for r in regs[..self.n_locals as usize].iter_mut() {
            *r = Scalar::I64(0);
        }
        regs[self.outer_var as usize] = Scalar::I64(iter as i64);
        run_ops(&self.iter_ops, regs);
        self.exec_body(&self.body, regs, params, client)?;
        Ok(self.reduction.map(|r| regs[r as usize]))
    }

    fn exec_body(
        &self,
        stmts: &[BStmt],
        regs: &mut [Scalar],
        params: &[Scalar],
        client: &mut impl MemClient,
    ) -> Result<(), ExecError> {
        for s in stmts {
            match s {
                BStmt::Assign { span, dst, src } => {
                    run_ops(&self.ops[span.rng()], regs);
                    regs[*dst as usize] = regs[*src as usize];
                }
                BStmt::Load { id, array, field, span, index, dst } => {
                    run_ops(&self.ops[span.rng()], regs);
                    let idx = regs[*index as usize].as_index();
                    regs[*dst as usize] = client.load(*id, *array, idx, *field);
                }
                BStmt::Store { id, array, field, span, index, value } => {
                    run_ops(&self.ops[span.rng()], regs);
                    let idx = regs[*index as usize].as_index();
                    client.store(*id, *array, idx, *field, regs[*value as usize]);
                }
                BStmt::Atomic { id, array, field, op, span, index, operand, expected, old } => {
                    run_ops(&self.ops[span.rng()], regs);
                    let idx = regs[*index as usize].as_index();
                    let operand_v = regs[*operand as usize];
                    let expected_v = expected.map(|r| regs[r as usize]);
                    let old_v = client.atomic(*id, *array, idx, *field, *op, operand_v, expected_v);
                    if let Some(dst) = old {
                        regs[*dst as usize] = old_v;
                    }
                }
                BStmt::If { span, cond, then_body, else_body } => {
                    run_ops(&self.ops[span.rng()], regs);
                    if regs[*cond as usize].as_bool() {
                        self.exec_body(then_body, regs, params, client)?;
                    } else {
                        self.exec_body(else_body, regs, params, client)?;
                    }
                }
                BStmt::LoopConst { var, n, body } => {
                    for i in 0..*n {
                        regs[*var as usize] = Scalar::I64(i as i64);
                        self.exec_body(body, regs, params, client)?;
                    }
                }
                BStmt::LoopReg { var, trip, body } => {
                    let n = regs[*trip as usize].as_i64().max(0) as u64;
                    for i in 0..n {
                        regs[*var as usize] = Scalar::I64(i as i64);
                        self.exec_body(body, regs, params, client)?;
                    }
                }
                BStmt::LoopExpr { var, span, trip, body } => {
                    run_ops(&self.ops[span.rng()], regs);
                    let n = regs[*trip as usize].as_i64().max(0) as u64;
                    for i in 0..n {
                        regs[*var as usize] = Scalar::I64(i as i64);
                        self.exec_body(body, regs, params, client)?;
                    }
                }
                BStmt::LoopWhile { var, span, cond, body } => {
                    let mut i = 0u64;
                    loop {
                        regs[*var as usize] = Scalar::I64(i as i64);
                        run_ops(&self.ops[span.rng()], regs);
                        if !regs[*cond as usize].as_bool() {
                            break;
                        }
                        self.exec_body(body, regs, params, client)?;
                        i += 1;
                        if i >= WHILE_LOOP_CAP {
                            return Err(ExecError::LoopCap { cap: WHILE_LOOP_CAP });
                        }
                    }
                }
                BStmt::Tree(stmt) => {
                    crate::interp::exec_stmts(
                        std::slice::from_ref(stmt),
                        &mut regs[..self.n_locals as usize],
                        params,
                        client,
                    )?;
                }
            }
        }
        Ok(())
    }
}

/// A single expression compiled standalone (microbenches, tests).
///
/// Usage: [`bind`](ExprCode::bind) once per parameter set, then
/// [`eval`](ExprCode::eval) per locals vector against the same register
/// file.
#[derive(Clone, Debug)]
pub struct ExprCode {
    ops: Vec<Op>,
    pre_ops: Vec<Op>,
    const_regs: Vec<(Reg, Scalar)>,
    result: Reg,
    n_locals: u16,
    n_params: u16,
    n_regs: u16,
}

impl ExprCode {
    /// Lowers one expression over `n_locals` locals.
    ///
    /// # Panics
    ///
    /// Panics if the expression needs more than [`u16::MAX`] registers.
    pub fn compile(e: &Expr, n_locals: u16) -> ExprCode {
        let mut m = 0u32;
        max_param_expr(e, &mut m);
        let mut lw = Lowerer::new(n_locals, m as u16, None);
        lw.stats.expr_nodes = e.uops();
        let result = lw.lower_expr(e);
        assert!(!lw.overflow, "expression overflows the {REG_LIMIT}-register file");
        debug_assert!(lw.iter_ops.is_empty());
        ExprCode {
            ops: lw.ops,
            pre_ops: lw.pre_ops,
            const_regs: lw.const_regs,
            result,
            n_locals,
            n_params: m as u16,
            n_regs: lw.next_reg,
        }
    }

    /// Sizes the register file, pins params and constants, and runs the
    /// hoisted param-only ops.
    pub fn bind(&self, params: &[Scalar], regs: &mut Vec<Scalar>) {
        regs.clear();
        regs.resize(self.n_regs as usize, Scalar::I64(0));
        for i in 0..self.n_params as usize {
            regs[self.n_locals as usize + i] = params[i];
        }
        for &(r, v) in &self.const_regs {
            regs[r as usize] = v;
        }
        run_ops(&self.pre_ops, regs);
    }

    /// Evaluates against a register file prepared by [`bind`](ExprCode::bind).
    pub fn eval(&self, locals: &[Scalar], regs: &mut [Scalar]) -> Scalar {
        regs[..self.n_locals as usize].copy_from_slice(&locals[..self.n_locals as usize]);
        run_ops(&self.ops, regs);
        regs[self.result as usize]
    }

    /// Bytecode ops in the per-eval path (after folding/CSE/hoisting).
    pub fn op_count(&self) -> u32 {
        self.ops.len() as u32
    }
}

/// Hoisting level of a register: how often its value must be recomputed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Level {
    /// Params, consts, and ops over them: once per kernel.
    Pre = 0,
    /// The outer index (when nothing in the body writes it) and ops over
    /// it: once per outer iteration.
    Iter = 1,
    /// Everything else: per statement execution.
    Stmt = 2,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum CseKey {
    Bin(BinOp, Reg, Reg),
    Un(UnOp, Reg, Reg),
    Select(Reg, Reg, Reg),
}

struct Lowerer {
    ops: Vec<Op>,
    pre_ops: Vec<Op>,
    iter_ops: Vec<Op>,
    const_regs: Vec<(Reg, Scalar)>,
    const_map: HashMap<(u8, u64), Reg>,
    const_vals: HashMap<Reg, Scalar>,
    /// Per-register hoisting level, indexed by register.
    levels: Vec<Level>,
    /// Persistent CSE over hoisted (Pre/Iter) ops.
    inv_cse: HashMap<CseKey, Reg>,
    /// Per-statement CSE, cleared at each statement.
    cse: HashMap<CseKey, Reg>,
    /// Locals some expression reads (plus the reduction var); `Assign`s to
    /// other locals are dead.
    live: Vec<bool>,
    n_locals: u16,
    next_reg: u16,
    overflow: bool,
    stats: LowerStats,
}

impl Lowerer {
    fn new(n_locals: u16, n_params: u16, stable_outer: Option<Reg>) -> Lowerer {
        let mut levels = vec![Level::Stmt; n_locals as usize];
        if let Some(v) = stable_outer {
            levels[v as usize] = Level::Iter;
        }
        levels.extend(std::iter::repeat_n(Level::Pre, n_params as usize));
        Lowerer {
            ops: Vec::new(),
            pre_ops: Vec::new(),
            iter_ops: Vec::new(),
            const_regs: Vec::new(),
            const_map: HashMap::new(),
            const_vals: HashMap::new(),
            levels,
            inv_cse: HashMap::new(),
            cse: HashMap::new(),
            live: vec![true; n_locals as usize],
            n_locals,
            next_reg: n_locals + n_params,
            overflow: false,
            stats: LowerStats::default(),
        }
    }

    fn for_kernel(kernel: &Kernel, n_params: u16) -> Lowerer {
        // The outer index is iteration-invariant unless something in the
        // body writes it (assign/load/atomic-old dest or an inner loop var).
        let stable = !writes_var(&kernel.outer.body, kernel.outer.var);
        let mut lw =
            Lowerer::new(kernel.n_locals, n_params, stable.then_some(kernel.outer.var.0));
        lw.live = vec![false; kernel.n_locals as usize];
        collect_live(&kernel.outer.body, &mut lw.live);
        if let Some(r) = &kernel.outer_reduction {
            lw.live[r.var.0 as usize] = true;
        }
        lw
    }

    fn level(&self, r: Reg) -> Level {
        self.levels[r as usize]
    }

    fn alloc(&mut self, level: Level) -> Reg {
        if self.next_reg as u32 + 1 >= REG_LIMIT {
            self.overflow = true;
            return 0;
        }
        let r = self.next_reg;
        self.next_reg += 1;
        self.levels.push(level);
        r
    }

    fn const_reg(&mut self, v: Scalar) -> Reg {
        let key = match v {
            Scalar::I64(x) => (0u8, x as u64),
            Scalar::F64(x) => (1u8, x.to_bits()),
        };
        if let Some(&r) = self.const_map.get(&key) {
            return r;
        }
        let r = self.alloc(Level::Pre);
        if !self.overflow {
            self.const_map.insert(key, r);
            self.const_regs.push((r, v));
            self.const_vals.insert(r, v);
        }
        r
    }

    /// Emits an op at the level its operands dictate: hoisted ops go to the
    /// preamble / iteration prologue, the rest to the current statement
    /// span.
    fn emit(&mut self, key: CseKey, level: Level, build: impl FnOnce(Reg) -> Op) -> Reg {
        if let Some(&r) = self.inv_cse.get(&key) {
            self.stats.cse_hits += 1;
            return r;
        }
        if let Some(&r) = self.cse.get(&key) {
            self.stats.cse_hits += 1;
            return r;
        }
        let dst = self.alloc(level);
        if self.overflow {
            return 0;
        }
        let op = build(dst);
        match level {
            Level::Pre => {
                self.pre_ops.push(op);
                self.stats.pre_ops += 1;
                self.inv_cse.insert(key, dst);
            }
            Level::Iter => {
                self.iter_ops.push(op);
                self.stats.iter_ops += 1;
                self.inv_cse.insert(key, dst);
            }
            Level::Stmt => {
                self.ops.push(op);
                self.stats.ops += 1;
                self.cse.insert(key, dst);
            }
        }
        dst
    }

    fn lower_expr(&mut self, e: &Expr) -> Reg {
        if self.overflow {
            return 0;
        }
        if let Some(v) = fold_const(e) {
            self.stats.folded += e.uops();
            return self.const_reg(v);
        }
        match e {
            // fold_const covered Const; kept for completeness.
            Expr::Const(v) => self.const_reg(*v),
            Expr::Var(v) => {
                debug_assert!(v.0 < self.n_locals, "var {} out of {} locals", v.0, self.n_locals);
                v.0
            }
            Expr::Param(i) => self.n_locals + *i as u16,
            Expr::Binary(op, a, b) => {
                let ra = self.lower_expr(a);
                let rb = self.lower_expr(b);
                if self.overflow {
                    return 0;
                }
                let level = self.level(ra).max(self.level(rb));
                self.emit(CseKey::Bin(*op, ra, rb), level, |dst| Op::Bin {
                    op: *op,
                    dst,
                    a: ra,
                    b: rb,
                })
            }
            Expr::Unary(op, a) => {
                let ra = self.lower_expr(a);
                if self.overflow {
                    return 0;
                }
                let level = self.level(ra);
                self.emit(CseKey::Un(*op, ra, 0), level, |dst| Op::Un { op: *op, dst, a: ra })
            }
            Expr::Select(c, a, b) => {
                if let Some(cv) = fold_const(c) {
                    self.stats.folded += 1 + c.uops();
                    return self.lower_expr(if cv.as_bool() { a } else { b });
                }
                let rc = self.lower_expr(c);
                let ra = self.lower_expr(a);
                let rb = self.lower_expr(b);
                if self.overflow {
                    return 0;
                }
                if ra == rb {
                    // Both arms are the same register: the select is a no-op.
                    self.stats.folded += 1;
                    return ra;
                }
                let level = self.level(rc).max(self.level(ra)).max(self.level(rb));
                self.emit(CseKey::Select(rc, ra, rb), level, |dst| Op::Select {
                    dst,
                    cond: rc,
                    a: ra,
                    b: rb,
                })
            }
        }
    }

    fn lower_stmts(&mut self, stmts: &[Stmt], depth: u32, policy: Policy<'_>) -> Vec<BStmt> {
        let mut out = Vec::with_capacity(stmts.len());
        for s in stmts {
            if let Stmt::Assign { var, .. } = s {
                if !self.live[var.0 as usize] {
                    self.stats.pruned_assigns += 1;
                    continue;
                }
            }
            let lo = self.ops.len();
            let ops_before = self.stats.ops;
            self.cse.clear();
            let lowered = self.lower_stmt(s, depth, policy);
            let info = LoweredStmt {
                expr_nodes: stmt_uops(s),
                ops: (self.ops.len() - lo) as u32,
                depth,
            };
            if !self.overflow && policy(s, &info) {
                out.push(lowered);
            } else {
                // Roll the statement's span back and run it on the tree
                // walker. (Hoisted ops it contributed stay — they are pure
                // and self-contained.)
                self.ops.truncate(lo);
                self.overflow = false;
                self.cse.clear();
                self.stats.ops = ops_before;
                self.stats.tree_stmts += 1;
                out.push(BStmt::Tree(s.clone()));
            }
        }
        out
    }

    fn lower_stmt(&mut self, s: &Stmt, depth: u32, policy: Policy<'_>) -> BStmt {
        match s {
            Stmt::Assign { var, expr } => {
                let lo = self.ops.len() as u32;
                let src = self.lower_expr(expr);
                let span = Span { lo, hi: self.ops.len() as u32 };
                BStmt::Assign { span, dst: var.0, src }
            }
            Stmt::Load { id, var, array, index, field } => {
                let lo = self.ops.len() as u32;
                let idx = self.lower_expr(index);
                let span = Span { lo, hi: self.ops.len() as u32 };
                BStmt::Load { id: *id, array: *array, field: *field, span, index: idx, dst: var.0 }
            }
            Stmt::Store { id, array, index, field, value } => {
                let lo = self.ops.len() as u32;
                let idx = self.lower_expr(index);
                let val = self.lower_expr(value);
                let span = Span { lo, hi: self.ops.len() as u32 };
                BStmt::Store { id: *id, array: *array, field: *field, span, index: idx, value: val }
            }
            Stmt::Atomic { id, array, index, field, op, operand, expected, old } => {
                let lo = self.ops.len() as u32;
                let idx = self.lower_expr(index);
                let opnd = self.lower_expr(operand);
                let exp = expected.as_ref().map(|e| self.lower_expr(e));
                let span = Span { lo, hi: self.ops.len() as u32 };
                BStmt::Atomic {
                    id: *id,
                    array: *array,
                    field: *field,
                    op: *op,
                    span,
                    index: idx,
                    operand: opnd,
                    expected: exp,
                    old: old.map(|v| v.0),
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                let lo = self.ops.len() as u32;
                let rc = self.lower_expr(cond);
                let span = Span { lo, hi: self.ops.len() as u32 };
                let tb = self.lower_stmts(then_body, depth, policy);
                let eb = self.lower_stmts(else_body, depth, policy);
                BStmt::If { span, cond: rc, then_body: tb, else_body: eb }
            }
            Stmt::Loop(l) => self.lower_loop(l, depth, policy),
        }
    }

    fn lower_loop(&mut self, l: &Loop, depth: u32, policy: Policy<'_>) -> BStmt {
        let var = l.var.0;
        match &l.trip {
            Trip::Const(n) => {
                let body = self.lower_stmts(&l.body, depth + 1, policy);
                BStmt::LoopConst { var, n: *n, body }
            }
            Trip::Expr(e) => {
                let lo = self.ops.len() as u32;
                let trip = self.lower_expr(e);
                let span = Span { lo, hi: self.ops.len() as u32 };
                if let Some(c) = self.const_vals.get(&trip).copied() {
                    // Fully folded: a compile-time trip count.
                    let body = self.lower_stmts(&l.body, depth + 1, policy);
                    return BStmt::LoopConst { var, n: c.as_i64().max(0) as u64, body };
                }
                if span.is_empty() {
                    // The count is already in a register at loop entry: a
                    // hoisted (pre/iter) result or a plain local.
                    if self.level(trip) <= Level::Iter {
                        self.stats.hoisted_trips += 1;
                    }
                    let body = self.lower_stmts(&l.body, depth + 1, policy);
                    return BStmt::LoopReg { var, trip, body };
                }
                let body = self.lower_stmts(&l.body, depth + 1, policy);
                BStmt::LoopExpr { var, span, trip, body }
            }
            Trip::While(cond) => {
                let lo = self.ops.len() as u32;
                let rc = self.lower_expr(cond);
                let span = Span { lo, hi: self.ops.len() as u32 };
                let body = self.lower_stmts(&l.body, depth + 1, policy);
                BStmt::LoopWhile { var, span, cond: rc, body }
            }
        }
    }
}

/// Evaluates an all-constant subtree (no vars, no params), cascading
/// through the same scalar semantics the tree walker uses.
fn fold_const(e: &Expr) -> Option<Scalar> {
    match e {
        Expr::Const(v) => Some(*v),
        Expr::Var(_) | Expr::Param(_) => None,
        Expr::Binary(op, a, b) => Some(op.eval(fold_const(a)?, fold_const(b)?)),
        Expr::Unary(op, a) => Some(op.eval(fold_const(a)?)),
        Expr::Select(c, a, b) => {
            if fold_const(c)?.as_bool() {
                fold_const(a)
            } else {
                fold_const(b)
            }
        }
    }
}

fn stmt_uops(s: &Stmt) -> u32 {
    match s {
        Stmt::Assign { expr, .. } => expr.uops(),
        Stmt::Load { index, .. } => index.uops(),
        Stmt::Store { index, value, .. } => index.uops() + value.uops(),
        Stmt::Atomic { index, operand, expected, .. } => {
            index.uops() + operand.uops() + expected.as_ref().map_or(0, |e| e.uops())
        }
        Stmt::If { cond, then_body, else_body } => {
            cond.uops()
                + then_body.iter().map(stmt_uops).sum::<u32>()
                + else_body.iter().map(stmt_uops).sum::<u32>()
        }
        Stmt::Loop(l) => {
            let trip = match &l.trip {
                Trip::Const(_) => 0,
                Trip::Expr(e) | Trip::While(e) => e.uops(),
            };
            trip + l.body.iter().map(stmt_uops).sum::<u32>()
        }
    }
}

fn writes_var(stmts: &[Stmt], var: VarId) -> bool {
    stmts.iter().any(|s| match s {
        Stmt::Assign { var: v, .. } | Stmt::Load { var: v, .. } => *v == var,
        Stmt::Atomic { old, .. } => *old == Some(var),
        Stmt::Store { .. } => false,
        Stmt::If { then_body, else_body, .. } => {
            writes_var(then_body, var) || writes_var(else_body, var)
        }
        Stmt::Loop(l) => l.var == var || writes_var(&l.body, var),
    })
}

fn mark_live(e: &Expr, live: &mut [bool]) {
    let mut vars = Vec::new();
    e.collect_vars(&mut vars);
    for v in vars {
        live[v.0 as usize] = true;
    }
}

fn collect_live(stmts: &[Stmt], live: &mut [bool]) {
    for s in stmts {
        match s {
            Stmt::Assign { expr, .. } => mark_live(expr, live),
            Stmt::Load { index, .. } => mark_live(index, live),
            Stmt::Store { index, value, .. } => {
                mark_live(index, live);
                mark_live(value, live);
            }
            Stmt::Atomic { index, operand, expected, .. } => {
                mark_live(index, live);
                mark_live(operand, live);
                if let Some(e) = expected {
                    mark_live(e, live);
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                mark_live(cond, live);
                collect_live(then_body, live);
                collect_live(else_body, live);
            }
            Stmt::Loop(l) => {
                match &l.trip {
                    Trip::Const(_) => {}
                    Trip::Expr(e) | Trip::While(e) => mark_live(e, live),
                }
                collect_live(&l.body, live);
            }
        }
    }
}

fn max_param_expr(e: &Expr, m: &mut u32) {
    match e {
        Expr::Const(_) | Expr::Var(_) => {}
        Expr::Param(i) => *m = (*m).max(i + 1),
        Expr::Binary(_, a, b) => {
            max_param_expr(a, m);
            max_param_expr(b, m);
        }
        Expr::Unary(_, a) => max_param_expr(a, m),
        Expr::Select(c, a, b) => {
            max_param_expr(c, m);
            max_param_expr(a, m);
            max_param_expr(b, m);
        }
    }
}

fn max_param_stmts(stmts: &[Stmt], m: &mut u32) {
    for s in stmts {
        match s {
            Stmt::Assign { expr, .. } => max_param_expr(expr, m),
            Stmt::Load { index, .. } => max_param_expr(index, m),
            Stmt::Store { index, value, .. } => {
                max_param_expr(index, m);
                max_param_expr(value, m);
            }
            Stmt::Atomic { index, operand, expected, .. } => {
                max_param_expr(index, m);
                max_param_expr(operand, m);
                if let Some(e) = expected {
                    max_param_expr(e, m);
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                max_param_expr(cond, m);
                max_param_stmts(then_body, m);
                max_param_stmts(else_body, m);
            }
            Stmt::Loop(l) => {
                match &l.trip {
                    Trip::Const(_) => {}
                    Trip::Expr(e) | Trip::While(e) => max_param_expr(e, m),
                }
                max_param_stmts(&l.body, m);
            }
        }
    }
}

/// Highest `Param` index referenced by the kernel, plus one.
fn max_param(kernel: &Kernel) -> u32 {
    let mut m = 0;
    match &kernel.outer.trip {
        Trip::Const(_) => {}
        Trip::Expr(e) | Trip::While(e) => max_param_expr(e, &mut m),
    }
    max_param_stmts(&kernel.outer.body, &mut m);
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::{self, FunctionalClient};
    use crate::memory::Memory;
    use crate::program::{OuterReduction, Program};
    use crate::types::ElemType;

    fn v(i: u16) -> VarId {
        VarId(i)
    }

    #[test]
    fn nsc_compile_parse() {
        assert!(parse_enabled(None));
        assert!(parse_enabled(Some("1")));
        assert!(parse_enabled(Some("yes")));
        assert!(!parse_enabled(Some("0")));
        assert!(!parse_enabled(Some("false")));
        assert!(!parse_enabled(Some("off")));
    }

    #[test]
    fn expr_code_matches_tree_eval() {
        // (v0*3 + p0) * (v0*3 + p0) - repeated subtree exercises CSE.
        let sub = Expr::var(v(0)) * Expr::imm(3) + Expr::param(0);
        let e = sub.clone() * sub;
        let code = ExprCode::compile(&e, 1);
        let params = [Scalar::I64(7)];
        let mut regs = Vec::new();
        code.bind(&params, &mut regs);
        for x in [-4i64, 0, 1, 100] {
            let locals = [Scalar::I64(x)];
            assert_eq!(code.eval(&locals, &mut regs), e.eval(&locals, &params));
        }
        // CSE: the squared subtree lowers its two ops once, plus the
        // multiply; the param-only leaves pin for free.
        assert_eq!(code.op_count(), 3);
    }

    #[test]
    fn const_folding_emits_no_ops() {
        let e = (Expr::imm(2) + Expr::imm(3)) * Expr::imm(4) + Expr::var(v(0));
        let code = ExprCode::compile(&e, 1);
        // Only the final add survives: (2+3)*4 folds to 20.
        assert_eq!(code.op_count(), 1);
        let mut regs = Vec::new();
        code.bind(&[], &mut regs);
        assert_eq!(code.eval(&[Scalar::I64(1)], &mut regs), Scalar::I64(21));
    }

    #[test]
    fn param_only_ops_hoist_to_preamble() {
        // p0*p1 + v0: the multiply runs once at bind, not per eval.
        let e = Expr::param(0) * Expr::param(1) + Expr::var(v(0));
        let code = ExprCode::compile(&e, 1);
        assert_eq!(code.op_count(), 1);
        let mut regs = Vec::new();
        code.bind(&[Scalar::I64(6), Scalar::I64(7)], &mut regs);
        assert_eq!(code.eval(&[Scalar::I64(0)], &mut regs), Scalar::I64(42));
    }

    fn hist_kernel() -> (Program, Kernel) {
        let mut p = Program::new("hist");
        let a = p.array("a", ElemType::I32, 8);
        let b = p.array("b", ElemType::I64, 4);
        let i = v(0);
        let k = v(1);
        let kernel = Kernel {
            name: "hist".into(),
            outer: Loop {
                var: i,
                trip: Trip::Const(8),
                body: vec![
                    Stmt::Load { id: StmtId(0), var: k, array: a, index: Expr::var(i), field: None },
                    Stmt::Atomic {
                        id: StmtId(1),
                        array: b,
                        index: Expr::var(k),
                        field: None,
                        op: AtomicOp::Add,
                        operand: Expr::imm(1),
                        expected: None,
                        old: None,
                    },
                ],
            },
            n_locals: 2,
            n_stmts: 2,
            sync_free: false,
            outer_reduction: None,
            narrow_hints: Vec::new(),
        };
        (p, kernel)
    }

    #[test]
    fn kernel_code_matches_tree_walker() {
        let (p, kernel) = hist_kernel();
        let code = KernelCode::compile(&kernel);
        let mut mem_tree = Memory::for_program(&p);
        let mut mem_bc = Memory::for_program(&p);
        let a = crate::program::ArrayId(0);
        for (i, key) in [0i64, 1, 1, 2, 3, 3, 3, 0].iter().enumerate() {
            mem_tree.write_index(a, i as u64, Scalar::I64(*key));
            mem_bc.write_index(a, i as u64, Scalar::I64(*key));
        }
        let mut locals = Vec::new();
        let mut regs = Vec::new();
        code.init_regs(&mut regs, &[]);
        for i in 0..8 {
            let mut ct = FunctionalClient { mem: &mut mem_tree };
            interp::exec_iteration(&kernel, i, &[], &mut ct, &mut locals).unwrap();
            let mut cb = FunctionalClient { mem: &mut mem_bc };
            code.exec_iteration(i, &[], &mut cb, &mut regs).unwrap();
        }
        let b = crate::program::ArrayId(1);
        for i in 0..4 {
            assert_eq!(mem_tree.read_index(b, i), mem_bc.read_index(b, i));
        }
    }

    #[test]
    fn dead_assign_is_pruned() {
        let kernel = Kernel {
            name: "dead".into(),
            outer: Loop {
                var: v(0),
                trip: Trip::Const(4),
                body: vec![
                    // v1 is never read by anything: pruned.
                    Stmt::Assign { var: v(1), expr: Expr::var(v(0)) * Expr::imm(17) },
                    Stmt::Assign { var: v(2), expr: Expr::var(v(0)) + Expr::imm(1) },
                ],
            },
            n_locals: 3,
            n_stmts: 0,
            sync_free: false,
            outer_reduction: Some(OuterReduction {
                var: v(2),
                op: BinOp::Add,
                target: ArrayId(0),
            }),
            narrow_hints: Vec::new(),
        };
        let code = KernelCode::compile(&kernel);
        assert_eq!(code.stats.pruned_assigns, 1);
        assert_eq!(code.body.len(), 1);
        struct Nop;
        impl MemClient for Nop {
            fn load(&mut self, _: StmtId, _: ArrayId, _: u64, _: Option<Field>) -> Scalar {
                Scalar::I64(0)
            }
            fn store(&mut self, _: StmtId, _: ArrayId, _: u64, _: Option<Field>, _: Scalar) {}
            fn atomic(
                &mut self,
                _: StmtId,
                _: ArrayId,
                _: u64,
                _: Option<Field>,
                _: AtomicOp,
                _: Scalar,
                _: Option<Scalar>,
            ) -> Scalar {
                Scalar::I64(0)
            }
        }
        let mut regs = Vec::new();
        code.init_regs(&mut regs, &[]);
        let c = code.exec_iteration(3, &[], &mut Nop, &mut regs).unwrap();
        assert_eq!(c, Some(Scalar::I64(4)));
    }

    #[test]
    fn param_trip_hoists_to_pinned_register() {
        // Inner loop trip p0*2 has no vars: evaluated once in the preamble.
        let kernel = Kernel {
            name: "hoist".into(),
            outer: Loop {
                var: v(0),
                trip: Trip::Const(2),
                body: vec![Stmt::Loop(Loop {
                    var: v(1),
                    trip: Trip::Expr(Expr::param(0) * Expr::imm(2)),
                    body: vec![Stmt::Assign {
                        var: v(2),
                        expr: Expr::var(v(2)) + Expr::imm(1),
                    }],
                })],
            },
            n_locals: 3,
            n_stmts: 0,
            sync_free: false,
            outer_reduction: Some(OuterReduction {
                var: v(2),
                op: BinOp::Add,
                target: ArrayId(0),
            }),
            narrow_hints: Vec::new(),
        };
        let code = KernelCode::compile(&kernel);
        assert_eq!(code.stats.hoisted_trips, 1);
        assert_eq!(code.stats.pre_ops, 1);
        let mut regs = Vec::new();
        code.init_regs(&mut regs, &[Scalar::I64(5)]);
        let mut mem = Memory::for_program(&Program::new("t"));
        let mut client = FunctionalClient { mem: &mut mem };
        let c = code.exec_iteration(0, &[Scalar::I64(5)], &mut client, &mut regs).unwrap();
        assert_eq!(c, Some(Scalar::I64(10)));
    }

    #[test]
    fn policy_fallback_runs_tree_per_statement() {
        let (p, kernel) = hist_kernel();
        // Decline bytecode for every other statement: mixed execution.
        let mut flip = false;
        let code = KernelCode::compile_with(&kernel, &mut |_, _| {
            flip = !flip;
            flip
        });
        assert!(code.stats.tree_stmts > 0);
        let mut mem = Memory::for_program(&p);
        let a = crate::program::ArrayId(0);
        for (i, key) in [0i64, 1, 1, 2, 3, 3, 3, 0].iter().enumerate() {
            mem.write_index(a, i as u64, Scalar::I64(*key));
        }
        let mut regs = Vec::new();
        code.init_regs(&mut regs, &[]);
        for i in 0..8 {
            let mut c = FunctionalClient { mem: &mut mem };
            code.exec_iteration(i, &[], &mut c, &mut regs).unwrap();
        }
        let b = crate::program::ArrayId(1);
        let counts: Vec<i64> = (0..4).map(|i| mem.read_index(b, i).as_i64()).collect();
        assert_eq!(counts, vec![2, 2, 1, 3]);
    }

    #[test]
    fn while_loop_matches_tree_walker() {
        // count-down: v1 = 5; while v1 != 0 { v1 = v1 - 1; v2 += v1 }.
        let kernel = Kernel {
            name: "countdown".into(),
            outer: Loop {
                var: v(0),
                trip: Trip::Const(1),
                body: vec![
                    Stmt::Assign { var: v(1), expr: Expr::imm(5) },
                    Stmt::Loop(Loop {
                        var: v(3),
                        trip: Trip::While(Expr::ne(Expr::var(v(1)), Expr::imm(0))),
                        body: vec![
                            Stmt::Assign { var: v(1), expr: Expr::var(v(1)) - Expr::imm(1) },
                            Stmt::Assign {
                                var: v(2),
                                expr: Expr::var(v(2)) + Expr::var(v(1)),
                            },
                        ],
                    }),
                ],
            },
            n_locals: 4,
            n_stmts: 0,
            sync_free: false,
            outer_reduction: Some(OuterReduction {
                var: v(2),
                op: BinOp::Add,
                target: ArrayId(0),
            }),
            narrow_hints: Vec::new(),
        };
        let code = KernelCode::compile(&kernel);
        let mut regs = Vec::new();
        code.init_regs(&mut regs, &[]);
        let mut mem = Memory::for_program(&Program::new("t"));
        let mut client = FunctionalClient { mem: &mut mem };
        let c = code.exec_iteration(0, &[], &mut client, &mut regs).unwrap();
        assert_eq!(c, Some(Scalar::I64(10)));
        let mut locals = Vec::new();
        let mut ct = FunctionalClient { mem: &mut mem };
        let t = interp::exec_iteration(&kernel, 0, &[], &mut ct, &mut locals).unwrap();
        assert_eq!(t, c);
    }
}
