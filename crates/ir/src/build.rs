//! Ergonomic kernel construction.

use crate::expr::Expr;
use crate::program::{ArrayId, Field, Kernel, Loop, OuterReduction, Stmt, StmtId, Trip, VarId};
use crate::types::{AtomicOp, BinOp};

enum Frame {
    Loop { var: VarId, trip: Trip, body: Vec<Stmt> },
    IfThen { cond: Expr, body: Vec<Stmt> },
    IfElse { cond: Expr, then_body: Vec<Stmt>, body: Vec<Stmt> },
}

/// Builds a [`Kernel`] incrementally, managing variable slots, statement
/// ids and loop/if nesting.
///
/// # Examples
///
/// ```
/// use nsc_ir::build::KernelBuilder;
/// use nsc_ir::{ElemType, Expr, Program};
///
/// let mut p = Program::new("t");
/// let a = p.array("a", ElemType::I64, 64);
/// let mut k = KernelBuilder::new("touch", 64);
/// let i = k.outer_var();
/// k.store(a, Expr::var(i), Expr::var(i) * Expr::imm(2));
/// let kernel = k.finish();
/// assert_eq!(kernel.n_stmts, 1);
/// ```
pub struct KernelBuilder {
    name: String,
    outer_var: VarId,
    outer_trip: Trip,
    n_locals: u16,
    n_stmts: u32,
    body: Vec<Stmt>,
    frames: Vec<Frame>,
    sync_free: bool,
    outer_reduction: Option<OuterReduction>,
    narrow_hints: Vec<(VarId, u8)>,
}

impl KernelBuilder {
    /// Starts a kernel whose parallel outer loop runs `trip` iterations.
    pub fn new(name: &str, trip: u64) -> KernelBuilder {
        KernelBuilder::with_trip(name, Trip::Const(trip))
    }

    /// Starts a kernel with an explicit outer trip (e.g. parameter-driven).
    pub fn with_trip(name: &str, trip: Trip) -> KernelBuilder {
        KernelBuilder {
            name: name.to_owned(),
            outer_var: VarId(0),
            outer_trip: trip,
            n_locals: 1,
            n_stmts: 0,
            body: Vec::new(),
            frames: Vec::new(),
            sync_free: false,
            outer_reduction: None,
            narrow_hints: Vec::new(),
        }
    }

    /// The outer-loop induction variable.
    pub fn outer_var(&self) -> VarId {
        self.outer_var
    }

    /// Allocates a fresh local variable.
    pub fn var(&mut self) -> VarId {
        let v = VarId(self.n_locals);
        self.n_locals += 1;
        v
    }

    fn next_stmt(&mut self) -> StmtId {
        let id = StmtId(self.n_stmts);
        self.n_stmts += 1;
        id
    }

    fn emit(&mut self, s: Stmt) {
        match self.frames.last_mut() {
            Some(Frame::Loop { body, .. })
            | Some(Frame::IfThen { body, .. })
            | Some(Frame::IfElse { body, .. }) => body.push(s),
            None => self.body.push(s),
        }
    }

    /// Emits `var = expr`.
    pub fn assign(&mut self, var: VarId, expr: Expr) {
        self.emit(Stmt::Assign { var, expr });
    }

    /// Emits `let v = expr` into a fresh variable.
    pub fn let_(&mut self, expr: Expr) -> VarId {
        let v = self.var();
        self.assign(v, expr);
        v
    }

    /// Emits a load into a fresh variable.
    pub fn load(&mut self, array: ArrayId, index: Expr) -> VarId {
        self.load_field(array, index, None)
    }

    /// Emits a field load into a fresh variable.
    pub fn load_field(&mut self, array: ArrayId, index: Expr, field: Option<Field>) -> VarId {
        let var = self.var();
        let id = self.next_stmt();
        self.emit(Stmt::Load { id, var, array, index, field });
        var
    }

    /// Emits a store.
    pub fn store(&mut self, array: ArrayId, index: Expr, value: Expr) {
        self.store_field(array, index, None, value);
    }

    /// Emits a field store.
    pub fn store_field(&mut self, array: ArrayId, index: Expr, field: Option<Field>, value: Expr) {
        let id = self.next_stmt();
        self.emit(Stmt::Store { id, array, index, field, value });
    }

    /// Emits an atomic RMW with no used result.
    pub fn atomic(&mut self, array: ArrayId, index: Expr, op: AtomicOp, operand: Expr) {
        let id = self.next_stmt();
        self.emit(Stmt::Atomic {
            id,
            array,
            index,
            field: None,
            op,
            operand,
            expected: None,
            old: None,
        });
    }

    /// Emits an atomic compare-and-swap; returns the variable receiving the
    /// old value.
    pub fn atomic_cas(&mut self, array: ArrayId, index: Expr, expected: Expr, desired: Expr) -> VarId {
        let old = self.var();
        let id = self.next_stmt();
        self.emit(Stmt::Atomic {
            id,
            array,
            index,
            field: None,
            op: AtomicOp::Cas,
            operand: desired,
            expected: Some(expected),
            old: Some(old),
        });
        old
    }

    /// Emits an atomic RMW whose old value is captured.
    pub fn atomic_old(&mut self, array: ArrayId, index: Expr, op: AtomicOp, operand: Expr) -> VarId {
        let old = self.var();
        let id = self.next_stmt();
        self.emit(Stmt::Atomic {
            id,
            array,
            index,
            field: None,
            op,
            operand,
            expected: None,
            old: Some(old),
        });
        old
    }

    /// Opens a counted inner loop; returns its induction variable.
    pub fn begin_loop(&mut self, trip: Trip) -> VarId {
        let var = self.var();
        self.frames.push(Frame::Loop { var, trip, body: Vec::new() });
        var
    }

    /// Opens a while loop; returns its (iteration-counting) variable.
    pub fn begin_while(&mut self, cond: Expr) -> VarId {
        self.begin_loop(Trip::While(cond))
    }

    /// Closes the innermost loop.
    ///
    /// # Panics
    ///
    /// Panics if the innermost open frame is not a loop.
    pub fn end_loop(&mut self) {
        match self.frames.pop() {
            Some(Frame::Loop { var, trip, body }) => self.emit(Stmt::Loop(Loop { var, trip, body })),
            _ => panic!("end_loop without matching begin_loop"),
        }
    }

    /// Opens a conditional.
    pub fn begin_if(&mut self, cond: Expr) {
        self.frames.push(Frame::IfThen { cond, body: Vec::new() });
    }

    /// Switches to the else branch.
    ///
    /// # Panics
    ///
    /// Panics if not inside the then-branch of an `if`.
    pub fn begin_else(&mut self) {
        match self.frames.pop() {
            Some(Frame::IfThen { cond, body }) => {
                self.frames.push(Frame::IfElse { cond, then_body: body, body: Vec::new() });
            }
            _ => panic!("begin_else without matching begin_if"),
        }
    }

    /// Closes the innermost conditional.
    ///
    /// # Panics
    ///
    /// Panics if the innermost open frame is not an `if`.
    pub fn end_if(&mut self) {
        match self.frames.pop() {
            Some(Frame::IfThen { cond, body }) => self.emit(Stmt::If {
                cond,
                then_body: body,
                else_body: Vec::new(),
            }),
            Some(Frame::IfElse { cond, then_body, body }) => self.emit(Stmt::If {
                cond,
                then_body,
                else_body: body,
            }),
            _ => panic!("end_if without matching begin_if"),
        }
    }

    /// Declares an outer-loop reduction: each iteration's final value of
    /// `var` is combined with `op`; the result lands in `target[0]`.
    pub fn reduce_outer(&mut self, var: VarId, op: BinOp, target: ArrayId) {
        self.outer_reduction = Some(OuterReduction { var, op, target });
    }

    /// Applies the `s_sync_free` pragma (paper §V).
    pub fn sync_free(&mut self) {
        self.sync_free = true;
    }

    /// Records that `var` holds a value of only `bytes` bytes (type
    /// information for the compiler's narrowing-closure heuristic).
    pub fn hint_width(&mut self, var: VarId, bytes: u8) {
        self.narrow_hints.push((var, bytes));
    }

    /// Finalizes the kernel.
    ///
    /// # Panics
    ///
    /// Panics if loops or conditionals are left open.
    pub fn finish(self) -> Kernel {
        assert!(self.frames.is_empty(), "unclosed loop or if in kernel {}", self.name);
        Kernel {
            name: self.name,
            outer: Loop {
                var: self.outer_var,
                trip: self.outer_trip,
                body: self.body,
            },
            n_locals: self.n_locals,
            n_stmts: self.n_stmts,
            sync_free: self.sync_free,
            outer_reduction: self.outer_reduction,
            narrow_hints: self.narrow_hints,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::Memory;
    use crate::program::Program;
    use crate::types::{ElemType, Scalar};

    #[test]
    fn builds_nested_structure() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 8);
        let mut k = KernelBuilder::new("k", 8);
        let i = k.outer_var();
        let j = k.begin_loop(Trip::Const(2));
        k.begin_if(Expr::eq(Expr::var(j), Expr::imm(0)));
        k.store(a, Expr::var(i), Expr::imm(1));
        k.begin_else();
        k.atomic(a, Expr::var(i), AtomicOp::Add, Expr::imm(10));
        k.end_if();
        k.end_loop();
        let kernel = k.finish();
        p.push_kernel(kernel);
        assert!(p.validate().is_ok());
        let mut mem = Memory::for_program(&p);
        crate::interp::run_program(&p, &mut mem, &[]);
        assert_eq!(mem.read_index(a, 4), Scalar::I64(11));
    }

    #[test]
    fn cas_and_old_capture() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 2);
        let flag = p.array("flag", ElemType::I64, 2);
        let mut k = KernelBuilder::new("k", 2);
        let i = k.outer_var();
        let old = k.atomic_cas(a, Expr::var(i), Expr::imm(0), Expr::imm(7));
        k.store(flag, Expr::var(i), Expr::eq(Expr::var(old), Expr::imm(0)));
        p.push_kernel(k.finish());
        let mut mem = Memory::for_program(&p);
        mem.write_index(a, 1, Scalar::I64(5)); // CAS will fail on index 1
        crate::interp::run_program(&p, &mut mem, &[]);
        assert_eq!(mem.read_index(a, 0), Scalar::I64(7));
        assert_eq!(mem.read_index(a, 1), Scalar::I64(5));
        assert_eq!(mem.read_index(flag, 0), Scalar::I64(1));
        assert_eq!(mem.read_index(flag, 1), Scalar::I64(0));
    }

    #[test]
    #[should_panic(expected = "unclosed loop")]
    fn finish_rejects_open_frames() {
        let mut k = KernelBuilder::new("k", 1);
        k.begin_loop(Trip::Const(2));
        let _ = k.finish();
    }

    #[test]
    #[should_panic(expected = "end_loop without")]
    fn end_loop_requires_loop() {
        let mut k = KernelBuilder::new("k", 1);
        k.begin_if(Expr::imm(1));
        k.end_loop();
    }
}
