//! The control engine: executes kernels against a pluggable memory client.
//!
//! The same interpreter drives both the golden functional run (via
//! [`FunctionalClient`]) and the timing simulation in the `near-stream`
//! crate (whose client charges cache, NoC and stream-engine time for each
//! access). This guarantees the offloaded systems compute exactly the same
//! values as the baseline.

use crate::memory::Memory;
use crate::program::{ArrayId, Field, Kernel, Loop, Program, Stmt, StmtId, Trip};
use crate::types::{AtomicOp, Scalar};
use std::fmt;

/// Safety bound on data-dependent (`while`) loops: beyond this the kernel
/// is assumed non-terminating and execution fails with
/// [`ExecError::LoopCap`].
pub const WHILE_LOOP_CAP: u64 = 100_000_000;

/// A typed execution failure. Kernels are otherwise total (scalar ops never
/// trap), so the only runtime failure is a runaway data-dependent loop —
/// surfaced as an error so a server can shed the request instead of killing
/// the worker.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// A `while` loop exceeded [`WHILE_LOOP_CAP`] iterations.
    LoopCap {
        /// The configured iteration cap.
        cap: u64,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::LoopCap { cap } => {
                write!(f, "while loop exceeded {cap} iterations (assumed non-terminating)")
            }
        }
    }
}

impl std::error::Error for ExecError {}

/// Supplies memory semantics (and, for timing clients, charges time) for
/// each access the interpreter executes.
pub trait MemClient {
    /// Performs a load, returning the value.
    fn load(&mut self, stmt: StmtId, array: ArrayId, index: u64, field: Option<Field>) -> Scalar;

    /// Performs a store.
    fn store(&mut self, stmt: StmtId, array: ArrayId, index: u64, field: Option<Field>, value: Scalar);

    /// Performs an atomic read-modify-write, returning the old value.
    #[allow(clippy::too_many_arguments)]
    fn atomic(
        &mut self,
        stmt: StmtId,
        array: ArrayId,
        index: u64,
        field: Option<Field>,
        op: AtomicOp,
        operand: Scalar,
        expected: Option<Scalar>,
    ) -> Scalar;
}

/// The plain functional client: reads and writes [`Memory`] directly.
#[derive(Debug)]
pub struct FunctionalClient<'m> {
    /// The backing memory.
    pub mem: &'m mut Memory,
}

impl MemClient for FunctionalClient<'_> {
    fn load(&mut self, _stmt: StmtId, array: ArrayId, index: u64, field: Option<Field>) -> Scalar {
        self.mem.read(array, index, field)
    }

    fn store(&mut self, _stmt: StmtId, array: ArrayId, index: u64, field: Option<Field>, value: Scalar) {
        self.mem.write(array, index, field, value);
    }

    fn atomic(
        &mut self,
        _stmt: StmtId,
        array: ArrayId,
        index: u64,
        field: Option<Field>,
        op: AtomicOp,
        operand: Scalar,
        expected: Option<Scalar>,
    ) -> Scalar {
        let old = self.mem.read(array, index, field);
        let (new, _modified) = op.apply(old, operand, expected);
        self.mem.write(array, index, field, new);
        old
    }
}

fn index_of(e: &crate::expr::Expr, locals: &[Scalar], params: &[Scalar]) -> u64 {
    e.eval(locals, params).as_index()
}

pub(crate) fn exec_stmts(
    stmts: &[Stmt],
    locals: &mut [Scalar],
    params: &[Scalar],
    client: &mut impl MemClient,
) -> Result<(), ExecError> {
    for s in stmts {
        match s {
            Stmt::Assign { var, expr } => {
                locals[var.0 as usize] = expr.eval(locals, params);
            }
            Stmt::Load { id, var, array, index, field } => {
                let idx = index_of(index, locals, params);
                locals[var.0 as usize] = client.load(*id, *array, idx, *field);
            }
            Stmt::Store { id, array, index, field, value } => {
                let idx = index_of(index, locals, params);
                let v = value.eval(locals, params);
                client.store(*id, *array, idx, *field, v);
            }
            Stmt::Atomic { id, array, index, field, op, operand, expected, old } => {
                let idx = index_of(index, locals, params);
                let operand_v = operand.eval(locals, params);
                let expected_v = expected.as_ref().map(|e| e.eval(locals, params));
                let old_v = client.atomic(*id, *array, idx, *field, *op, operand_v, expected_v);
                if let Some(dst) = old {
                    locals[dst.0 as usize] = old_v;
                }
            }
            Stmt::If { cond, then_body, else_body } => {
                if cond.eval(locals, params).as_bool() {
                    exec_stmts(then_body, locals, params, client)?;
                } else {
                    exec_stmts(else_body, locals, params, client)?;
                }
            }
            Stmt::Loop(l) => exec_loop(l, locals, params, client)?,
        }
    }
    Ok(())
}

fn exec_loop(
    l: &Loop,
    locals: &mut [Scalar],
    params: &[Scalar],
    client: &mut impl MemClient,
) -> Result<(), ExecError> {
    match &l.trip {
        Trip::Const(n) => {
            for i in 0..*n {
                locals[l.var.0 as usize] = Scalar::I64(i as i64);
                exec_stmts(&l.body, locals, params, client)?;
            }
        }
        Trip::Expr(e) => {
            let n = e.eval(locals, params).as_i64().max(0) as u64;
            for i in 0..n {
                locals[l.var.0 as usize] = Scalar::I64(i as i64);
                exec_stmts(&l.body, locals, params, client)?;
            }
        }
        Trip::While(cond) => {
            let mut i = 0u64;
            loop {
                locals[l.var.0 as usize] = Scalar::I64(i as i64);
                if !cond.eval(locals, params).as_bool() {
                    break;
                }
                exec_stmts(&l.body, locals, params, client)?;
                i += 1;
                if i >= WHILE_LOOP_CAP {
                    return Err(ExecError::LoopCap { cap: WHILE_LOOP_CAP });
                }
            }
        }
    }
    Ok(())
}

/// Executes one iteration of a kernel's parallel outer loop, returning the
/// outer-reduction contribution if the kernel declares one.
///
/// `locals` is a scratch buffer reused across calls (resized and zeroed
/// here).
pub fn exec_iteration(
    kernel: &Kernel,
    iter: u64,
    params: &[Scalar],
    client: &mut impl MemClient,
    locals: &mut Vec<Scalar>,
) -> Result<Option<Scalar>, ExecError> {
    locals.clear();
    locals.resize(kernel.n_locals as usize, Scalar::I64(0));
    locals[kernel.outer.var.0 as usize] = Scalar::I64(iter as i64);
    exec_stmts(&kernel.outer.body, locals, params, client)?;
    Ok(kernel
        .outer_reduction
        .as_ref()
        .map(|r| locals[r.var.0 as usize]))
}

/// Outer-loop trip count for a kernel (must not depend on locals).
///
/// # Panics
///
/// Panics if the outer trip is a `While` (parallel loops must have
/// countable bounds).
pub fn outer_trip(kernel: &Kernel, params: &[Scalar]) -> u64 {
    match &kernel.outer.trip {
        Trip::Const(n) => *n,
        Trip::Expr(e) => e.eval(&[], params).as_i64().max(0) as u64,
        Trip::While(_) => panic!("parallel outer loop cannot be a while loop"),
    }
}

/// Runs a whole kernel sequentially (the golden semantics). Uses the
/// compiled bytecode path unless `NSC_COMPILE=0` (results are bit-identical
/// either way).
///
/// # Panics
///
/// Panics on [`ExecError`] (a runaway `while` loop), naming the kernel.
pub fn run_kernel(kernel: &Kernel, params: &[Scalar], mem: &mut Memory) {
    let trip = outer_trip(kernel, params);
    let code = crate::bytecode::enabled().then(|| crate::bytecode::KernelCode::compile(kernel));
    let mut locals = Vec::new();
    if let Some(c) = &code {
        c.init_regs(&mut locals, params);
    }
    let mut acc: Option<Scalar> = None;
    for i in 0..trip {
        let mut client = FunctionalClient { mem };
        let contrib = match &code {
            Some(c) => c.exec_iteration(i, params, &mut client, &mut locals),
            None => exec_iteration(kernel, i, params, &mut client, &mut locals),
        }
        .unwrap_or_else(|e| panic!("kernel {}: {e}", kernel.name));
        if let (Some(r), Some(c)) = (&kernel.outer_reduction, contrib) {
            acc = Some(match acc {
                None => c,
                Some(a) => r.op.eval(a, c),
            });
        }
    }
    if let (Some(r), Some(total)) = (&kernel.outer_reduction, acc) {
        mem.write_index(r.target, 0, total);
    }
}

/// Runs every kernel of a program in order against `mem` (the golden run).
///
/// # Panics
///
/// Panics if the program fails [`Program::validate`].
pub fn run_program(program: &Program, mem: &mut Memory, params: &[Scalar]) {
    if let Err(e) = program.validate() {
        panic!("invalid program {}: {e}", program.name);
    }
    for k in &program.kernels {
        run_kernel(k, params, mem);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::program::{OuterReduction, VarId};
    use crate::types::{BinOp, ElemType};

    /// sum = Σ a[i] via outer reduction.
    #[test]
    fn outer_reduction_sums() {
        let mut p = Program::new("sum");
        let a = p.array("a", ElemType::I64, 10);
        let out = p.array("out", ElemType::I64, 1);
        let i = VarId(0);
        let v = VarId(1);
        let acc = VarId(2);
        p.push_kernel(Kernel {
            name: "sum".into(),
            outer: Loop {
                var: i,
                trip: Trip::Const(10),
                body: vec![
                    Stmt::Load { id: StmtId(0), var: v, array: a, index: Expr::var(i), field: None },
                    Stmt::Assign { var: acc, expr: Expr::var(v) },
                ],
            },
            n_locals: 3,
            n_stmts: 1,
            sync_free: false,
            outer_reduction: Some(OuterReduction { var: acc, op: BinOp::Add, target: out }),
            narrow_hints: Vec::new(),
        });
        let mut mem = Memory::for_program(&p);
        for i in 0..10 {
            mem.write_index(a, i, Scalar::I64((i + 1) as i64));
        }
        run_program(&p, &mut mem, &[]);
        assert_eq!(mem.read_index(out, 0), Scalar::I64(55));
    }

    /// Indirect RMW: b[a[i]] += 1 (a histogram).
    #[test]
    fn indirect_atomic_histogram() {
        let mut p = Program::new("hist");
        let a = p.array("a", ElemType::I32, 8);
        let b = p.array("b", ElemType::I64, 4);
        let i = VarId(0);
        let k = VarId(1);
        p.push_kernel(Kernel {
            name: "hist".into(),
            outer: Loop {
                var: i,
                trip: Trip::Const(8),
                body: vec![
                    Stmt::Load { id: StmtId(0), var: k, array: a, index: Expr::var(i), field: None },
                    Stmt::Atomic {
                        id: StmtId(1),
                        array: b,
                        index: Expr::var(k),
                        field: None,
                        op: AtomicOp::Add,
                        operand: Expr::imm(1),
                        expected: None,
                        old: None,
                    },
                ],
            },
            n_locals: 2,
            n_stmts: 2,
            sync_free: false,
            outer_reduction: None,
            narrow_hints: Vec::new(),
        });
        let mut mem = Memory::for_program(&p);
        for (i, key) in [0, 1, 1, 2, 3, 3, 3, 0].iter().enumerate() {
            mem.write_index(a, i as u64, Scalar::I64(*key));
        }
        run_program(&p, &mut mem, &[]);
        let counts: Vec<i64> = (0..4).map(|i| mem.read_index(b, i).as_i64()).collect();
        assert_eq!(counts, vec![2, 2, 1, 3]);
    }

    /// Pointer chase through a linked list laid out as records.
    #[test]
    fn while_loop_pointer_chase() {
        let mut p = Program::new("list");
        let nodes = p.array("nodes", ElemType::Record(16), 5);
        let out = p.array("out", ElemType::I64, 1);
        let val = Field { offset: 0, ty: ElemType::I64 };
        let next = Field { offset: 8, ty: ElemType::I64 };
        let (cur, acc, v, n, it) = (VarId(0), VarId(1), VarId(2), VarId(3), VarId(4));
        p.push_kernel(Kernel {
            name: "walk".into(),
            outer: Loop {
                var: VarId(5),
                trip: Trip::Const(1),
                body: vec![
                    Stmt::Assign { var: cur, expr: Expr::imm(0) },
                    Stmt::Assign { var: acc, expr: Expr::imm(0) },
                    Stmt::Loop(Loop {
                        var: it,
                        trip: Trip::While(Expr::ne(Expr::var(cur), Expr::imm(-1))),
                        body: vec![
                            Stmt::Load { id: StmtId(0), var: v, array: nodes, index: Expr::var(cur), field: Some(val) },
                            Stmt::Load { id: StmtId(1), var: n, array: nodes, index: Expr::var(cur), field: Some(next) },
                            Stmt::Assign { var: acc, expr: Expr::var(acc) + Expr::var(v) },
                            Stmt::Assign { var: cur, expr: Expr::var(n) },
                        ],
                    }),
                    Stmt::Store { id: StmtId(2), array: out, index: Expr::imm(0), field: None, value: Expr::var(acc) },
                ],
            },
            n_locals: 6,
            n_stmts: 3,
            sync_free: false,
            outer_reduction: None,
            narrow_hints: Vec::new(),
        });
        let mut mem = Memory::for_program(&p);
        // List: 0 -> 3 -> 1 -> end, values 10, 30, 100.
        let chain = [(0u64, 10i64, 3i64), (3, 30, 1), (1, 100, -1)];
        for (idx, value, nxt) in chain {
            mem.write(nodes, idx, Some(val), Scalar::I64(value));
            mem.write(nodes, idx, Some(next), Scalar::I64(nxt));
        }
        run_program(&p, &mut mem, &[]);
        assert_eq!(mem.read_index(out, 0), Scalar::I64(140));
    }

    /// Inner loop with a dynamic (expression) trip count.
    #[test]
    fn dynamic_inner_trip() {
        let mut p = Program::new("csr");
        let bounds = p.array("bounds", ElemType::I64, 4); // [0, 2, 3, 6]
        let out = p.array("out", ElemType::I64, 3);
        let (i, s, e, j, acc) = (VarId(0), VarId(1), VarId(2), VarId(3), VarId(4));
        p.push_kernel(Kernel {
            name: "rows".into(),
            outer: Loop {
                var: i,
                trip: Trip::Const(3),
                body: vec![
                    Stmt::Load { id: StmtId(0), var: s, array: bounds, index: Expr::var(i), field: None },
                    Stmt::Load { id: StmtId(1), var: e, array: bounds, index: Expr::var(i) + Expr::imm(1), field: None },
                    Stmt::Assign { var: acc, expr: Expr::imm(0) },
                    Stmt::Loop(Loop {
                        var: j,
                        trip: Trip::Expr(Expr::var(e) - Expr::var(s)),
                        body: vec![Stmt::Assign { var: acc, expr: Expr::var(acc) + Expr::imm(1) }],
                    }),
                    Stmt::Store { id: StmtId(2), array: out, index: Expr::var(i), field: None, value: Expr::var(acc) },
                ],
            },
            n_locals: 5,
            n_stmts: 3,
            sync_free: false,
            outer_reduction: None,
            narrow_hints: Vec::new(),
        });
        let mut mem = Memory::for_program(&p);
        for (i, v) in [0i64, 2, 3, 6].iter().enumerate() {
            mem.write_index(bounds, i as u64, Scalar::I64(*v));
        }
        run_program(&p, &mut mem, &[]);
        let rows: Vec<i64> = (0..3).map(|i| mem.read_index(out, i).as_i64()).collect();
        assert_eq!(rows, vec![2, 1, 3]);
    }

    #[test]
    fn if_branches() {
        let mut p = Program::new("cond");
        let a = p.array("a", ElemType::I64, 4);
        let (i, v) = (VarId(0), VarId(1));
        p.push_kernel(Kernel {
            name: "k".into(),
            outer: Loop {
                var: i,
                trip: Trip::Const(4),
                body: vec![
                    Stmt::Assign { var: v, expr: Expr::bin(BinOp::Rem, Expr::var(i), Expr::imm(2)) },
                    Stmt::If {
                        cond: Expr::eq(Expr::var(v), Expr::imm(0)),
                        then_body: vec![Stmt::Store { id: StmtId(0), array: a, index: Expr::var(i), field: None, value: Expr::imm(1) }],
                        else_body: vec![Stmt::Store { id: StmtId(1), array: a, index: Expr::var(i), field: None, value: Expr::imm(2) }],
                    },
                ],
            },
            n_locals: 2,
            n_stmts: 2,
            sync_free: false,
            outer_reduction: None,
            narrow_hints: Vec::new(),
        });
        let mut mem = Memory::for_program(&p);
        run_program(&p, &mut mem, &[]);
        let vals: Vec<i64> = (0..4).map(|i| mem.read_index(a, i).as_i64()).collect();
        assert_eq!(vals, vec![1, 2, 1, 2]);
    }

    #[test]
    fn outer_trip_from_param() {
        let mut p = Program::new("t");
        p.set_params(1);
        let k = Kernel {
            name: "k".into(),
            outer: Loop { var: VarId(0), trip: Trip::Expr(Expr::param(0)), body: vec![] },
            n_locals: 1,
            n_stmts: 0,
            sync_free: false,
            outer_reduction: None,
            narrow_hints: Vec::new(),
        };
        assert_eq!(outer_trip(&k, &[Scalar::I64(17)]), 17);
    }
}
