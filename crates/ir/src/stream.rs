//! Stream-program representation: the compiler's output, the stream
//! engines' input.
//!
//! A *stream* decouples one memory-access statement's address pattern from
//! the surrounding loop (paper §II-A). Streams carry a classification of
//! their address pattern and compute type (the two dimensions of the
//! paper's taxonomy, Table II), the dependence edges of the stream graph
//! (Figure 3), and the near-stream computation attached by the compiler.

use crate::program::{ArrayId, StmtId};
use std::fmt;

/// Stream id within one kernel (the paper's 4-bit `sid`, Table IV).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StreamId(pub u8);

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The address-pattern dimension of the taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AddrPatternClass {
    /// Linear in the loop indices (up to 3 dimensions), e.g. `A[i]`,
    /// `A[i*n+j]`. `stride_bytes` is the innermost stride.
    Affine {
        /// Byte stride per innermost iteration.
        stride_bytes: i64,
    },
    /// Address formed from another stream's value, e.g. `B[A[i]]`.
    Indirect {
        /// The stream producing the index.
        base: StreamId,
    },
    /// Loop-carried: the loaded value feeds the next address, e.g.
    /// `p = p.next`.
    PointerChase,
}

impl AddrPatternClass {
    /// Short label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            AddrPatternClass::Affine { .. } => "affine",
            AddrPatternClass::Indirect { .. } => "indirect",
            AddrPatternClass::PointerChase => "ptr-chase",
        }
    }
}

/// The compute-type dimension of the taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ComputeClass {
    /// `x = f(*S)`: computation attached to a load stream, returning a
    /// (usually smaller) value to the core.
    Load,
    /// `*S = f(...)`: store stream, possibly consuming operand streams.
    Store,
    /// `*S = f(*S)`: non-atomic read-modify-write update in place.
    Rmw,
    /// Atomic read-modify-write (relaxed order).
    Atomic,
    /// `acc = reduce(S)`: only the final value returns to the core.
    Reduce,
}

impl ComputeClass {
    /// Short label matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            ComputeClass::Load => "load",
            ComputeClass::Store => "store",
            ComputeClass::Rmw => "rmw",
            ComputeClass::Atomic => "atomic",
            ComputeClass::Reduce => "reduce",
        }
    }

    /// Whether this compute type writes memory.
    pub fn writes(self) -> bool {
        matches!(self, ComputeClass::Store | ComputeClass::Rmw | ComputeClass::Atomic)
    }
}

/// One recognized stream.
#[derive(Clone, Debug, PartialEq)]
pub struct StreamInfo {
    /// Stream id within the kernel.
    pub id: StreamId,
    /// The memory-access statement this stream replaces.
    pub stmt: StmtId,
    /// The array accessed.
    pub array: ArrayId,
    /// Address-pattern classification.
    pub pattern: AddrPatternClass,
    /// Compute-type classification.
    pub role: ComputeClass,
    /// Operand streams whose values are forwarded to this stream
    /// (multi-operand patterns; paper Figure 2(b)).
    pub value_deps: Vec<StreamId>,
    /// Bytes accessed per element.
    pub elem_bytes: u8,
    /// µops of near-stream computation attached to this stream per element.
    pub compute_uops: u32,
    /// Whether the attached computation needs the SCM (vector/FP) rather
    /// than the stream engine's scalar PE.
    pub needs_scm: bool,
    /// Bytes returned to the core per element (0 for fully-offloaded
    /// store/reduce/atomic-without-result).
    pub result_bytes: u8,
    /// Loop depth of the access (1 = outer loop).
    pub loop_depth: usize,
    /// Whether the access sits under a condition (executed via `s_step`
    /// predication).
    pub conditional: bool,
}

impl StreamInfo {
    /// Whether this stream's element accesses are data-dependent
    /// (indirect or pointer-chasing), implying distributed banks.
    pub fn is_irregular(&self) -> bool {
        !matches!(self.pattern, AddrPatternClass::Affine { .. })
    }
}

impl fmt::Display for StreamInfo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}/{} on array{} ({}B, {} uops{})",
            self.id,
            self.pattern.label(),
            self.role.label(),
            self.array.0,
            self.elem_bytes,
            self.compute_uops,
            if self.conditional { ", cond" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> StreamInfo {
        StreamInfo {
            id: StreamId(2),
            stmt: StmtId(5),
            array: ArrayId(1),
            pattern: AddrPatternClass::Indirect { base: StreamId(0) },
            role: ComputeClass::Atomic,
            value_deps: vec![StreamId(0)],
            elem_bytes: 4,
            compute_uops: 1,
            needs_scm: false,
            result_bytes: 0,
            loop_depth: 2,
            conditional: false,
        }
    }

    #[test]
    fn labels_and_flags() {
        let s = info();
        assert_eq!(s.pattern.label(), "indirect");
        assert_eq!(s.role.label(), "atomic");
        assert!(s.is_irregular());
        assert!(s.role.writes());
        assert!(!ComputeClass::Load.writes());
        assert!(!ComputeClass::Reduce.writes());
    }

    #[test]
    fn display_is_informative() {
        let text = info().to_string();
        assert!(text.contains("S2"));
        assert!(text.contains("indirect"));
        assert!(text.contains("atomic"));
    }

    #[test]
    fn affine_is_regular() {
        let mut s = info();
        s.pattern = AddrPatternClass::Affine { stride_bytes: 8 };
        assert!(!s.is_irregular());
        assert_eq!(s.pattern.label(), "affine");
    }
}
