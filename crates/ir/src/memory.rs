//! Flat data memory backing a program's arrays.

use crate::program::{ArrayId, Field, Program};
use crate::types::{ElemType, Scalar};

/// Alignment of array base addresses: 2 MB huge pages (paper §IV-A assumes
/// large pages so per-data-structure ranges are physically contiguous).
pub const HUGE_PAGE: u64 = 2 * 1024 * 1024;

struct ArrayStorage {
    base: u64,
    elem: ElemType,
    len: u64,
    data: Vec<u8>,
}

/// The functional data memory: one buffer per array, each based at a
/// huge-page-aligned simulated physical address.
///
/// # Examples
///
/// ```
/// use nsc_ir::{ElemType, Memory, Program, Scalar};
///
/// let mut p = Program::new("t");
/// let a = p.array("a", ElemType::I32, 8);
/// let mut mem = Memory::for_program(&p);
/// mem.write_index(a, 3, Scalar::I64(-5));
/// assert_eq!(mem.read_index(a, 3), Scalar::I64(-5));
/// assert_eq!(mem.addr_of(a, 3) % 4, 0);
/// ```
pub struct Memory {
    arrays: Vec<ArrayStorage>,
}

impl std::fmt::Debug for Memory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Memory").field("arrays", &self.arrays.len()).finish()
    }
}

impl Memory {
    /// Allocates zero-initialized storage for every array in `program`.
    pub fn for_program(program: &Program) -> Memory {
        let mut base = HUGE_PAGE; // keep address 0 unused
        let mut arrays = Vec::with_capacity(program.arrays.len());
        for decl in &program.arrays {
            arrays.push(ArrayStorage {
                base,
                elem: decl.elem,
                len: decl.len,
                data: vec![0u8; decl.bytes() as usize],
            });
            let next = base + decl.bytes();
            base = next.div_ceil(HUGE_PAGE) * HUGE_PAGE;
        }
        Memory { arrays }
    }

    fn storage(&self, array: ArrayId) -> &ArrayStorage {
        &self.arrays[array.0 as usize]
    }

    /// Base simulated physical address of `array`.
    pub fn base_of(&self, array: ArrayId) -> u64 {
        self.storage(array).base
    }

    /// Element count of `array`.
    pub fn len_of(&self, array: ArrayId) -> u64 {
        self.storage(array).len
    }

    /// Element type of `array`.
    pub fn elem_of(&self, array: ArrayId) -> ElemType {
        self.storage(array).elem
    }

    /// Simulated physical byte address of element `index` (plus optional
    /// field offset).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn addr_of(&self, array: ArrayId, index: u64) -> u64 {
        let s = self.storage(array);
        assert!(index < s.len, "index {index} out of bounds for array of {}", s.len);
        s.base + index * s.elem.bytes() as u64
    }

    /// Like [`Memory::addr_of`] but including a field offset.
    pub fn addr_of_field(&self, array: ArrayId, index: u64, field: Option<Field>) -> u64 {
        self.addr_of(array, index) + field.map_or(0, |f| f.offset as u64)
    }

    /// Access width in bytes for an element or field access.
    pub fn access_bytes(&self, array: ArrayId, field: Option<Field>) -> u8 {
        field.map_or_else(|| self.elem_of(array).bytes(), |f| f.ty.bytes())
    }

    fn scalar_at(&self, array: ArrayId, byte: u64, ty: ElemType) -> Scalar {
        let s = self.storage(array);
        let off = (byte - s.base) as usize;
        let d = &s.data;
        match ty {
            ElemType::I8 => Scalar::I64(d[off] as i8 as i64),
            ElemType::I16 => Scalar::I64(i16::from_le_bytes([d[off], d[off + 1]]) as i64),
            ElemType::I32 => {
                Scalar::I64(i32::from_le_bytes(d[off..off + 4].try_into().expect("4 bytes")) as i64)
            }
            ElemType::I64 => Scalar::I64(i64::from_le_bytes(d[off..off + 8].try_into().expect("8 bytes"))),
            ElemType::F32 => {
                Scalar::F64(f32::from_le_bytes(d[off..off + 4].try_into().expect("4 bytes")) as f64)
            }
            ElemType::F64 => Scalar::F64(f64::from_le_bytes(d[off..off + 8].try_into().expect("8 bytes"))),
            ElemType::Record(_) => panic!("cannot read a whole record as a scalar; use a field"),
        }
    }

    fn write_scalar_at(&mut self, array: ArrayId, byte: u64, ty: ElemType, v: Scalar) {
        let s = &mut self.arrays[array.0 as usize];
        let off = (byte - s.base) as usize;
        let d = &mut s.data;
        match ty {
            ElemType::I8 => d[off] = v.as_i64() as u8,
            ElemType::I16 => d[off..off + 2].copy_from_slice(&(v.as_i64() as i16).to_le_bytes()),
            ElemType::I32 => d[off..off + 4].copy_from_slice(&(v.as_i64() as i32).to_le_bytes()),
            ElemType::I64 => d[off..off + 8].copy_from_slice(&v.as_i64().to_le_bytes()),
            ElemType::F32 => d[off..off + 4].copy_from_slice(&(v.as_f64() as f32).to_le_bytes()),
            ElemType::F64 => d[off..off + 8].copy_from_slice(&v.as_f64().to_le_bytes()),
            ElemType::Record(_) => panic!("cannot write a whole record as a scalar; use a field"),
        }
    }

    /// Reads element `index` (or a field of it).
    pub fn read(&self, array: ArrayId, index: u64, field: Option<Field>) -> Scalar {
        let ty = field.map_or_else(|| self.elem_of(array), |f| f.ty);
        let byte = self.addr_of_field(array, index, field);
        self.scalar_at(array, byte, ty)
    }

    /// Writes element `index` (or a field of it).
    pub fn write(&mut self, array: ArrayId, index: u64, field: Option<Field>, v: Scalar) {
        let ty = field.map_or_else(|| self.elem_of(array), |f| f.ty);
        let byte = self.addr_of_field(array, index, field);
        self.write_scalar_at(array, byte, ty, v);
    }

    /// Convenience scalar read of a non-record element.
    pub fn read_index(&self, array: ArrayId, index: u64) -> Scalar {
        self.read(array, index, None)
    }

    /// Convenience scalar write of a non-record element.
    pub fn write_index(&mut self, array: ArrayId, index: u64, v: Scalar) {
        self.write(array, index, None, v);
    }

    /// Number of arrays backed by this memory.
    pub fn n_arrays(&self) -> usize {
        self.arrays.len()
    }

    /// The raw backing bytes of `array`.
    ///
    /// Init closures cannot be hashed, so the result cache content-
    /// addresses their *effect* instead: the initialized image read
    /// through this accessor.
    pub fn raw(&self, array: ArrayId) -> &[u8] {
        &self.storage(array).data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Field;

    fn program() -> (Program, ArrayId, ArrayId) {
        let mut p = Program::new("t");
        let a = p.array("ints", ElemType::I32, 100);
        let b = p.array("nodes", ElemType::Record(24), 10);
        (p, a, b)
    }

    #[test]
    fn bases_are_hugepage_aligned_and_disjoint() {
        let (p, a, b) = program();
        let m = Memory::for_program(&p);
        assert_eq!(m.base_of(a) % HUGE_PAGE, 0);
        assert_eq!(m.base_of(b) % HUGE_PAGE, 0);
        assert!(m.base_of(b) >= m.base_of(a) + 400);
    }

    #[test]
    fn narrowing_roundtrip() {
        let (p, a, _) = program();
        let mut m = Memory::for_program(&p);
        m.write_index(a, 0, Scalar::I64(-7));
        assert_eq!(m.read_index(a, 0), Scalar::I64(-7));
        // i32 narrowing wraps.
        m.write_index(a, 1, Scalar::I64(1 << 33));
        assert_eq!(m.read_index(a, 1), Scalar::I64(0));
    }

    #[test]
    fn record_fields() {
        let (p, _, b) = program();
        let mut m = Memory::for_program(&p);
        let key = Field { offset: 0, ty: ElemType::I64 };
        let left = Field { offset: 8, ty: ElemType::I64 };
        m.write(b, 3, Some(key), Scalar::I64(42));
        m.write(b, 3, Some(left), Scalar::I64(-1));
        assert_eq!(m.read(b, 3, Some(key)), Scalar::I64(42));
        assert_eq!(m.read(b, 3, Some(left)), Scalar::I64(-1));
        assert_eq!(m.read(b, 2, Some(key)), Scalar::I64(0)); // untouched
        assert_eq!(m.addr_of_field(b, 3, Some(left)) - m.base_of(b), 3 * 24 + 8);
    }

    #[test]
    fn float_storage() {
        let mut p = Program::new("t");
        let f = p.array("f", ElemType::F32, 4);
        let mut m = Memory::for_program(&p);
        m.write_index(f, 2, Scalar::F64(1.5));
        assert_eq!(m.read_index(f, 2), Scalar::F64(1.5));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_panics() {
        let (p, a, _) = program();
        let m = Memory::for_program(&p);
        m.addr_of(a, 100);
    }

    #[test]
    fn access_bytes_for_fields() {
        let (p, a, b) = program();
        let m = Memory::for_program(&p);
        assert_eq!(m.access_bytes(a, None), 4);
        assert_eq!(m.access_bytes(b, None), 24);
        assert_eq!(
            m.access_bytes(b, Some(Field { offset: 8, ty: ElemType::I64 })),
            8
        );
    }
}
