//! Scalar values, element types and operators.

use std::fmt;

/// A runtime scalar value.
///
/// The IR is dynamically typed at the scalar level: integers are `i64`,
/// floats are `f64`. Element types narrow values on store and widen on load.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Scalar {
    /// A (possibly narrowed-on-store) integer.
    I64(i64),
    /// A (possibly narrowed-on-store) float.
    F64(f64),
}

impl Scalar {
    /// The value as an integer, truncating floats.
    pub fn as_i64(self) -> i64 {
        match self {
            Scalar::I64(v) => v,
            Scalar::F64(v) => v as i64,
        }
    }

    /// The value as a float.
    pub fn as_f64(self) -> f64 {
        match self {
            Scalar::I64(v) => v as f64,
            Scalar::F64(v) => v,
        }
    }

    /// The value as an unsigned index.
    ///
    /// # Panics
    ///
    /// Panics if the value is negative (an out-of-bounds address pattern).
    pub fn as_index(self) -> u64 {
        let v = self.as_i64();
        assert!(v >= 0, "negative index {v}");
        v as u64
    }

    /// Truth value: non-zero means true.
    pub fn as_bool(self) -> bool {
        match self {
            Scalar::I64(v) => v != 0,
            Scalar::F64(v) => v != 0.0,
        }
    }

    /// Returns `true` if the value is a float.
    pub fn is_float(self) -> bool {
        matches!(self, Scalar::F64(_))
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::I64(v) => write!(f, "{v}"),
            Scalar::F64(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Scalar {
        Scalar::I64(v)
    }
}

impl From<f64> for Scalar {
    fn from(v: f64) -> Scalar {
        Scalar::F64(v)
    }
}

/// Element type of an array.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ElemType {
    /// 8-bit signed integer.
    I8,
    /// 16-bit signed integer.
    I16,
    /// 32-bit signed integer.
    I32,
    /// 64-bit signed integer.
    I64,
    /// 32-bit float.
    F32,
    /// 64-bit float.
    F64,
    /// An opaque fixed-size record accessed via field offsets (e.g. a tree
    /// node or a multi-dimensional point). Size in bytes, at most 64.
    Record(u8),
}

impl ElemType {
    /// Size of one element in bytes.
    pub fn bytes(self) -> u8 {
        match self {
            ElemType::I8 => 1,
            ElemType::I16 => 2,
            ElemType::I32 => 4,
            ElemType::I64 => 8,
            ElemType::F32 => 4,
            ElemType::F64 => 8,
            ElemType::Record(n) => n,
        }
    }

    /// Whether values of this type are floats.
    pub fn is_float(self) -> bool {
        matches!(self, ElemType::F32 | ElemType::F64)
    }
}

/// Binary operators. Comparison operators yield `I64(0)` or `I64(1)`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division (float divide, or integer divide for two ints).
    Div,
    /// Remainder (integer).
    Rem,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift right.
    Shr,
    /// Shift left.
    Shl,
    /// Less-than comparison.
    Lt,
    /// Less-or-equal comparison.
    Le,
    /// Equality comparison.
    Eq,
    /// Inequality comparison.
    Ne,
}

impl BinOp {
    /// Evaluates the operator. Mixed int/float operands promote to float.
    pub fn eval(self, a: Scalar, b: Scalar) -> Scalar {
        use BinOp::*;
        let float = a.is_float() || b.is_float();
        match self {
            Add | Sub | Mul | Div | Min | Max if float => {
                let (x, y) = (a.as_f64(), b.as_f64());
                Scalar::F64(match self {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => x / y,
                    Min => x.min(y),
                    Max => x.max(y),
                    _ => unreachable!(),
                })
            }
            Add => Scalar::I64(a.as_i64().wrapping_add(b.as_i64())),
            Sub => Scalar::I64(a.as_i64().wrapping_sub(b.as_i64())),
            Mul => Scalar::I64(a.as_i64().wrapping_mul(b.as_i64())),
            Div => Scalar::I64(a.as_i64().checked_div(b.as_i64()).unwrap_or(0)),
            Rem => Scalar::I64(a.as_i64().checked_rem(b.as_i64()).unwrap_or(0)),
            Min => Scalar::I64(a.as_i64().min(b.as_i64())),
            Max => Scalar::I64(a.as_i64().max(b.as_i64())),
            And => Scalar::I64(a.as_i64() & b.as_i64()),
            Or => Scalar::I64(a.as_i64() | b.as_i64()),
            Xor => Scalar::I64(a.as_i64() ^ b.as_i64()),
            Shr => Scalar::I64(((a.as_i64() as u64) >> (b.as_i64() as u64 & 63)) as i64),
            Shl => Scalar::I64(((a.as_i64() as u64) << (b.as_i64() as u64 & 63)) as i64),
            Lt | Le | Eq | Ne => {
                let r = if float {
                    let (x, y) = (a.as_f64(), b.as_f64());
                    match self {
                        Lt => x < y,
                        Le => x <= y,
                        Eq => x == y,
                        Ne => x != y,
                        _ => unreachable!(),
                    }
                } else {
                    let (x, y) = (a.as_i64(), b.as_i64());
                    match self {
                        Lt => x < y,
                        Le => x <= y,
                        Eq => x == y,
                        Ne => x != y,
                        _ => unreachable!(),
                    }
                };
                Scalar::I64(r as i64)
            }
        }
    }

    /// Whether the operator is associative and commutative, making it legal
    /// for distributed reduction (paper §IV-C limits indirect reduction to
    /// associative ops).
    pub fn is_associative(self) -> bool {
        matches!(
            self,
            BinOp::Add | BinOp::Mul | BinOp::Min | BinOp::Max | BinOp::And | BinOp::Or | BinOp::Xor
        )
    }
}

/// Unary operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (0 -> 1, non-zero -> 0).
    Not,
    /// Absolute value.
    Abs,
    /// Square root (float).
    Sqrt,
    /// Exponential (float).
    Exp,
}

impl UnOp {
    /// Evaluates the operator.
    pub fn eval(self, a: Scalar) -> Scalar {
        match self {
            UnOp::Neg => match a {
                Scalar::I64(v) => Scalar::I64(v.wrapping_neg()),
                Scalar::F64(v) => Scalar::F64(-v),
            },
            UnOp::Not => Scalar::I64(!a.as_bool() as i64),
            UnOp::Abs => match a {
                Scalar::I64(v) => Scalar::I64(v.abs()),
                Scalar::F64(v) => Scalar::F64(v.abs()),
            },
            UnOp::Sqrt => Scalar::F64(a.as_f64().sqrt()),
            UnOp::Exp => Scalar::F64(a.as_f64().exp()),
        }
    }
}

/// Atomic read-modify-write operators (relaxed memory order, paper §III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AtomicOp {
    /// `*p += v`.
    Add,
    /// `*p = min(*p, v)`.
    Min,
    /// `*p = max(*p, v)`.
    Max,
    /// Compare-and-swap: `if *p == expected { *p = v }`.
    Cas,
    /// Unconditional exchange: `*p = v`.
    Xchg,
}

impl AtomicOp {
    /// Applies the atomic op; returns `(new_value, modified)`.
    ///
    /// `expected` is only meaningful for [`AtomicOp::Cas`]. The `modified`
    /// flag is what the MRSW lock (paper §IV-C) uses to pick the lock mode.
    pub fn apply(self, old: Scalar, operand: Scalar, expected: Option<Scalar>) -> (Scalar, bool) {
        match self {
            AtomicOp::Add => {
                let new = BinOp::Add.eval(old, operand);
                (new, operand.as_f64() != 0.0)
            }
            AtomicOp::Min => {
                let new = BinOp::Min.eval(old, operand);
                (new, new != old)
            }
            AtomicOp::Max => {
                let new = BinOp::Max.eval(old, operand);
                (new, new != old)
            }
            AtomicOp::Cas => {
                let exp = expected.expect("CAS needs an expected value");
                if old == exp {
                    (operand, operand != old)
                } else {
                    (old, false)
                }
            }
            AtomicOp::Xchg => (operand, operand != old),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_conversions() {
        assert_eq!(Scalar::I64(3).as_f64(), 3.0);
        assert_eq!(Scalar::F64(2.9).as_i64(), 2);
        assert_eq!(Scalar::I64(7).as_index(), 7);
        assert!(Scalar::I64(1).as_bool());
        assert!(!Scalar::F64(0.0).as_bool());
    }

    #[test]
    #[should_panic(expected = "negative index")]
    fn negative_index_panics() {
        Scalar::I64(-1).as_index();
    }

    #[test]
    fn binop_int_and_float() {
        assert_eq!(BinOp::Add.eval(Scalar::I64(2), Scalar::I64(3)), Scalar::I64(5));
        assert_eq!(BinOp::Add.eval(Scalar::I64(2), Scalar::F64(0.5)), Scalar::F64(2.5));
        assert_eq!(BinOp::Min.eval(Scalar::I64(2), Scalar::I64(-3)), Scalar::I64(-3));
        assert_eq!(BinOp::Lt.eval(Scalar::F64(1.0), Scalar::F64(2.0)), Scalar::I64(1));
        assert_eq!(BinOp::Div.eval(Scalar::I64(7), Scalar::I64(0)), Scalar::I64(0));
        assert_eq!(BinOp::Shl.eval(Scalar::I64(1), Scalar::I64(4)), Scalar::I64(16));
        assert_eq!(BinOp::Shr.eval(Scalar::I64(16), Scalar::I64(4)), Scalar::I64(1));
    }

    #[test]
    fn associativity_classification() {
        assert!(BinOp::Add.is_associative());
        assert!(BinOp::Min.is_associative());
        assert!(!BinOp::Sub.is_associative());
        assert!(!BinOp::Div.is_associative());
    }

    #[test]
    fn unops() {
        assert_eq!(UnOp::Neg.eval(Scalar::I64(4)), Scalar::I64(-4));
        assert_eq!(UnOp::Not.eval(Scalar::I64(0)), Scalar::I64(1));
        assert_eq!(UnOp::Abs.eval(Scalar::F64(-2.0)), Scalar::F64(2.0));
        assert_eq!(UnOp::Sqrt.eval(Scalar::F64(9.0)), Scalar::F64(3.0));
    }

    #[test]
    fn atomic_semantics() {
        // Add modifies unless the operand is zero.
        assert_eq!(
            AtomicOp::Add.apply(Scalar::I64(1), Scalar::I64(2), None),
            (Scalar::I64(3), true)
        );
        assert!(!AtomicOp::Add.apply(Scalar::I64(1), Scalar::I64(0), None).1);
        // Min modifies only when lowering (the sssp MRSW case).
        assert_eq!(
            AtomicOp::Min.apply(Scalar::I64(5), Scalar::I64(3), None),
            (Scalar::I64(3), true)
        );
        assert!(!AtomicOp::Min.apply(Scalar::I64(3), Scalar::I64(5), None).1);
        // Failed CAS does not modify (the bfs MRSW case).
        let (v, m) = AtomicOp::Cas.apply(Scalar::I64(7), Scalar::I64(9), Some(Scalar::I64(0)));
        assert_eq!(v, Scalar::I64(7));
        assert!(!m);
        let (v, m) = AtomicOp::Cas.apply(Scalar::I64(0), Scalar::I64(9), Some(Scalar::I64(0)));
        assert_eq!(v, Scalar::I64(9));
        assert!(m);
    }

    #[test]
    fn elem_type_sizes() {
        assert_eq!(ElemType::I8.bytes(), 1);
        assert_eq!(ElemType::F32.bytes(), 4);
        assert_eq!(ElemType::Record(24).bytes(), 24);
        assert!(ElemType::F64.is_float());
        assert!(!ElemType::I32.is_float());
    }
}
