//! Pure expression trees.

use crate::program::VarId;
use crate::types::{BinOp, Scalar, UnOp};
use std::ops;

/// A side-effect-free expression over kernel-local variables and runtime
/// parameters.
///
/// # Examples
///
/// ```
/// use nsc_ir::{Expr, Scalar};
/// use nsc_ir::program::VarId;
///
/// let v = VarId(0);
/// let e = Expr::var(v) * Expr::imm(3) + Expr::imm(1);
/// let locals = [Scalar::I64(5)];
/// assert_eq!(e.eval(&locals, &[]), Scalar::I64(16));
/// ```
#[derive(Clone, Debug, PartialEq)]
pub enum Expr {
    /// A compile-time constant.
    Const(Scalar),
    /// A kernel-local variable (loop index, loaded value, accumulator).
    Var(VarId),
    /// A runtime kernel parameter (loop-invariant).
    Param(u32),
    /// A binary operation.
    Binary(BinOp, Box<Expr>, Box<Expr>),
    /// A unary operation.
    Unary(UnOp, Box<Expr>),
    /// `Select(cond, a, b)`: `a` if `cond` is true else `b` (branch-free).
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// An integer immediate.
    pub fn imm(v: i64) -> Expr {
        Expr::Const(Scalar::I64(v))
    }

    /// A float immediate.
    pub fn immf(v: f64) -> Expr {
        Expr::Const(Scalar::F64(v))
    }

    /// A variable reference.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// A parameter reference.
    pub fn param(i: u32) -> Expr {
        Expr::Param(i)
    }

    /// Builds a binary op.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Binary(op, Box::new(a), Box::new(b))
    }

    /// Builds a unary op.
    pub fn un(op: UnOp, a: Expr) -> Expr {
        Expr::Unary(op, Box::new(a))
    }

    /// Builds a select.
    pub fn select(cond: Expr, a: Expr, b: Expr) -> Expr {
        Expr::Select(Box::new(cond), Box::new(a), Box::new(b))
    }

    /// `min(a, b)`.
    pub fn min(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Min, a, b)
    }

    /// `max(a, b)`.
    pub fn max(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Max, a, b)
    }

    /// `a < b`.
    pub fn lt(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Lt, a, b)
    }

    /// `a == b`.
    pub fn eq(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Eq, a, b)
    }

    /// `a != b`.
    pub fn ne(a: Expr, b: Expr) -> Expr {
        Expr::bin(BinOp::Ne, a, b)
    }

    /// Evaluates the expression against local variables and parameters.
    ///
    /// # Panics
    ///
    /// Panics if a variable or parameter index is out of bounds (a
    /// malformed kernel).
    pub fn eval(&self, locals: &[Scalar], params: &[Scalar]) -> Scalar {
        match self {
            Expr::Const(v) => *v,
            Expr::Var(v) => locals[v.0 as usize],
            Expr::Param(i) => params[*i as usize],
            Expr::Binary(op, a, b) => op.eval(a.eval(locals, params), b.eval(locals, params)),
            Expr::Unary(op, a) => op.eval(a.eval(locals, params)),
            Expr::Select(c, a, b) => {
                if c.eval(locals, params).as_bool() {
                    a.eval(locals, params)
                } else {
                    b.eval(locals, params)
                }
            }
        }
    }

    /// Number of µops this expression costs on a core or stream-engine ALU
    /// (one per operator node; leaves are free).
    pub fn uops(&self) -> u32 {
        match self {
            Expr::Const(_) | Expr::Var(_) | Expr::Param(_) => 0,
            Expr::Binary(_, a, b) => 1 + a.uops() + b.uops(),
            Expr::Unary(_, a) => 1 + a.uops(),
            Expr::Select(c, a, b) => 1 + c.uops() + a.uops() + b.uops(),
        }
    }

    /// Collects every variable the expression reads.
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) | Expr::Param(_) => {}
            Expr::Var(v) => out.push(*v),
            Expr::Binary(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Unary(_, a) => a.collect_vars(out),
            Expr::Select(c, a, b) => {
                c.collect_vars(out);
                a.collect_vars(out);
                b.collect_vars(out);
            }
        }
    }

    /// Returns `true` if the expression reads `var`.
    pub fn uses_var(&self, var: VarId) -> bool {
        let mut vars = Vec::new();
        self.collect_vars(&mut vars);
        vars.contains(&var)
    }

    /// Attempts to view the expression as an affine function of `var`:
    /// returns `(stride, offset_expr_without_var)` such that
    /// `expr = stride * var + offset`. The offset may reference other
    /// variables. Returns `None` for non-affine uses of `var`.
    pub fn as_affine_in(&self, var: VarId) -> Option<(i64, Expr)> {
        match self {
            Expr::Var(v) if *v == var => Some((1, Expr::imm(0))),
            Expr::Const(_) | Expr::Param(_) | Expr::Var(_) => Some((0, self.clone())),
            Expr::Binary(BinOp::Add, a, b) => {
                let (sa, oa) = a.as_affine_in(var)?;
                let (sb, ob) = b.as_affine_in(var)?;
                Some((sa + sb, Expr::bin(BinOp::Add, oa, ob)))
            }
            Expr::Binary(BinOp::Sub, a, b) => {
                let (sa, oa) = a.as_affine_in(var)?;
                let (sb, ob) = b.as_affine_in(var)?;
                Some((sa - sb, Expr::bin(BinOp::Sub, oa, ob)))
            }
            Expr::Binary(BinOp::Mul, a, b) => {
                let (sa, oa) = a.as_affine_in(var)?;
                let (sb, ob) = b.as_affine_in(var)?;
                // Only linear: one side must be constant in `var`.
                if sa == 0 {
                    if let Expr::Const(c) = &oa {
                        return Some((c.as_i64() * sb, Expr::bin(BinOp::Mul, oa.clone(), ob)));
                    }
                    if sb == 0 {
                        return Some((0, self.clone()));
                    }
                    None
                } else if sb == 0 {
                    if let Expr::Const(c) = &ob {
                        Some((c.as_i64() * sa, Expr::bin(BinOp::Mul, oa, ob.clone())))
                    } else {
                        None
                    }
                } else {
                    None
                }
            }
            _ => {
                if self.uses_var(var) {
                    None
                } else {
                    Some((0, self.clone()))
                }
            }
        }
    }
}

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Add, self, rhs)
    }
}

impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Sub, self, rhs)
    }
}

impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Mul, self, rhs)
    }
}

impl ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::bin(BinOp::Div, self, rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u16) -> VarId {
        VarId(i)
    }

    #[test]
    fn eval_nested() {
        let e = Expr::select(
            Expr::lt(Expr::var(v(0)), Expr::imm(10)),
            Expr::var(v(0)) * Expr::imm(2),
            Expr::imm(-1),
        );
        assert_eq!(e.eval(&[Scalar::I64(4)], &[]), Scalar::I64(8));
        assert_eq!(e.eval(&[Scalar::I64(40)], &[]), Scalar::I64(-1));
    }

    #[test]
    fn eval_params() {
        let e = Expr::param(0) + Expr::imm(1);
        assert_eq!(e.eval(&[], &[Scalar::I64(9)]), Scalar::I64(10));
    }

    #[test]
    fn uop_counting() {
        assert_eq!(Expr::imm(1).uops(), 0);
        assert_eq!((Expr::imm(1) + Expr::imm(2)).uops(), 1);
        let e = Expr::min(Expr::var(v(0)) + Expr::imm(1), Expr::var(v(1)));
        assert_eq!(e.uops(), 2);
    }

    #[test]
    fn var_collection() {
        let e = Expr::var(v(0)) + Expr::var(v(2)) * Expr::var(v(0));
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec![v(0), v(2), v(0)]);
        assert!(e.uses_var(v(0)));
        assert!(!e.uses_var(v(1)));
    }

    #[test]
    fn affine_recognition() {
        // 3*i + j + 7 is affine in i with stride 3.
        let e = Expr::imm(3) * Expr::var(v(0)) + Expr::var(v(1)) + Expr::imm(7);
        let (stride, off) = e.as_affine_in(v(0)).unwrap();
        assert_eq!(stride, 3);
        assert_eq!(off.eval(&[Scalar::I64(0), Scalar::I64(5)], &[]), Scalar::I64(12));
        // i*i is not affine.
        let sq = Expr::var(v(0)) * Expr::var(v(0));
        assert!(sq.as_affine_in(v(0)).is_none());
        // An expression not using i is affine with stride 0.
        let c = Expr::var(v(1)) * Expr::var(v(1));
        assert_eq!(c.as_affine_in(v(0)).unwrap().0, 0);
    }

    #[test]
    fn affine_subtraction() {
        // (i - 1) has stride 1, offset -1.
        let e = Expr::var(v(0)) - Expr::imm(1);
        let (s, off) = e.as_affine_in(v(0)).unwrap();
        assert_eq!(s, 1);
        assert_eq!(off.eval(&[Scalar::I64(0)], &[]), Scalar::I64(-1));
    }
}
