//! Bit-level stream-configuration encoding (paper Table IV).
//!
//! The paper encodes stream configurations in three record shapes: affine
//! patterns, indirect patterns, and attached computations. This module
//! packs and unpacks those records exactly at the published field widths,
//! so the suite can audit configuration sizes and message payloads.

/// Bit-granular writer.
#[derive(Clone, Debug, Default)]
pub struct BitWriter {
    bits: Vec<bool>,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> BitWriter {
        BitWriter::default()
    }

    /// Appends the low `width` bits of `value` (LSB first).
    ///
    /// # Panics
    ///
    /// Panics if `value` does not fit in `width` bits.
    pub fn put(&mut self, value: u64, width: u32) {
        assert!(width <= 64);
        if width < 64 {
            assert!(value < (1u64 << width), "value {value} exceeds {width} bits");
        }
        for i in 0..width {
            self.bits.push(value >> i & 1 == 1);
        }
    }

    /// Total bits written.
    pub fn len_bits(&self) -> usize {
        self.bits.len()
    }

    /// Packs into bytes (zero-padded).
    pub fn into_bytes(self) -> Vec<u8> {
        let mut out = vec![0u8; self.bits.len().div_ceil(8)];
        for (i, b) in self.bits.iter().enumerate() {
            if *b {
                out[i / 8] |= 1 << (i % 8);
            }
        }
        out
    }
}

/// Bit-granular reader.
#[derive(Clone, Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Creates a reader over packed bytes.
    pub fn new(bytes: &'a [u8]) -> BitReader<'a> {
        BitReader { bytes, pos: 0 }
    }

    /// Reads `width` bits (LSB first).
    ///
    /// # Panics
    ///
    /// Panics on reading past the end.
    pub fn get(&mut self, width: u32) -> u64 {
        let mut v = 0u64;
        for i in 0..width {
            let byte = self.bytes[self.pos / 8];
            if byte >> (self.pos % 8) & 1 == 1 {
                v |= 1 << i;
            }
            self.pos += 1;
        }
        v
    }
}

const ADDR_BITS: u32 = 48;

/// Affine stream configuration (Table IV, "Affine" rows).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AffineConfig {
    /// Core id (6 bits).
    pub cid: u8,
    /// Stream id (4 bits).
    pub sid: u8,
    /// Base virtual address (48 bits).
    pub base: u64,
    /// Memory strides, up to 3 dimensions (48 bits each).
    pub strides: [u64; 3],
    /// Page table address (48 bits).
    pub ptbl: u64,
    /// Current iteration (48 bits).
    pub iter: u64,
    /// Element size in bytes (8 bits).
    pub size: u8,
    /// Trip lengths, up to 3 dimensions (48 bits each).
    pub lens: [u64; 3],
}

impl AffineConfig {
    /// Encoded size in bits: 6+4+48+3*48+48+48+8+3*48 = 450.
    pub const BITS: u32 = 6 + 4 + ADDR_BITS + 3 * ADDR_BITS + ADDR_BITS + ADDR_BITS + 8 + 3 * ADDR_BITS;

    /// Packs the configuration.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.put(self.cid as u64, 6);
        w.put(self.sid as u64, 4);
        w.put(self.base, ADDR_BITS);
        for s in self.strides {
            w.put(s & ((1 << ADDR_BITS) - 1), ADDR_BITS);
        }
        w.put(self.ptbl, ADDR_BITS);
        w.put(self.iter, ADDR_BITS);
        w.put(self.size as u64, 8);
        for l in self.lens {
            w.put(l, ADDR_BITS);
        }
        debug_assert_eq!(w.len_bits() as u32, Self::BITS);
        w.into_bytes()
    }

    /// Unpacks a configuration.
    pub fn decode(bytes: &[u8]) -> AffineConfig {
        let mut r = BitReader::new(bytes);
        AffineConfig {
            cid: r.get(6) as u8,
            sid: r.get(4) as u8,
            base: r.get(ADDR_BITS),
            strides: [r.get(ADDR_BITS), r.get(ADDR_BITS), r.get(ADDR_BITS)],
            ptbl: r.get(ADDR_BITS),
            iter: r.get(ADDR_BITS),
            size: r.get(8) as u8,
            lens: [r.get(ADDR_BITS), r.get(ADDR_BITS), r.get(ADDR_BITS)],
        }
    }
}

/// Indirect stream configuration (Table IV, "Ind." rows).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IndirectConfig {
    /// Stream id (4 bits).
    pub sid: u8,
    /// Base virtual address (48 bits).
    pub base: u64,
    /// Element size in bytes (8 bits).
    pub size: u8,
}

impl IndirectConfig {
    /// Encoded size in bits: 4+48+8 = 60.
    pub const BITS: u32 = 4 + ADDR_BITS + 8;

    /// Packs the configuration.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.put(self.sid as u64, 4);
        w.put(self.base, ADDR_BITS);
        w.put(self.size as u64, 8);
        debug_assert_eq!(w.len_bits() as u32, Self::BITS);
        w.into_bytes()
    }

    /// Unpacks a configuration.
    pub fn decode(bytes: &[u8]) -> IndirectConfig {
        let mut r = BitReader::new(bytes);
        IndirectConfig {
            sid: r.get(4) as u8,
            base: r.get(ADDR_BITS),
            size: r.get(8) as u8,
        }
    }
}

/// Attached-computation configuration (Table IV, "Cmp." rows).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ComputeConfig {
    /// Compute type (4 bits): simple scalar ops are encoded directly
    /// (+, ×, RMW, ...) and executed by the SE ALU; type 15 means "call
    /// `fptr` on the SCM".
    pub ctype: u8,
    /// Argument stream ids, up to 8 (4 bits each; 0 means a constant).
    pub arg_sids: [u8; 8],
    /// Return size as a power of two (3 bits).
    pub ret_log2: u8,
    /// Near-stream function pointer (48 bits).
    pub fptr: u64,
    /// Argument sizes as powers of two (3 bits each).
    pub arg_size_log2: [u8; 8],
    /// Constant argument data (64 bits).
    pub const_data: u64,
}

impl ComputeConfig {
    /// Encoded size in bits: 4 + 8*4 + 3 + 48 + 8*3 + 64 = 175.
    pub const BITS: u32 = 4 + 8 * 4 + 3 + ADDR_BITS + 8 * 3 + 64;

    /// Packs the configuration.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = BitWriter::new();
        w.put(self.ctype as u64, 4);
        for s in self.arg_sids {
            w.put(s as u64, 4);
        }
        w.put(self.ret_log2 as u64, 3);
        w.put(self.fptr, ADDR_BITS);
        for s in self.arg_size_log2 {
            w.put(s as u64, 3);
        }
        w.put(self.const_data, 64);
        debug_assert_eq!(w.len_bits() as u32, Self::BITS);
        w.into_bytes()
    }

    /// Unpacks a configuration.
    pub fn decode(bytes: &[u8]) -> ComputeConfig {
        let mut r = BitReader::new(bytes);
        let ctype = r.get(4) as u8;
        let mut arg_sids = [0u8; 8];
        for s in &mut arg_sids {
            *s = r.get(4) as u8;
        }
        let ret_log2 = r.get(3) as u8;
        let fptr = r.get(ADDR_BITS);
        let mut arg_size_log2 = [0u8; 8];
        for s in &mut arg_size_log2 {
            *s = r.get(3) as u8;
        }
        let const_data = r.get(64);
        ComputeConfig {
            ctype,
            arg_sids,
            ret_log2,
            fptr,
            arg_size_log2,
            const_data,
        }
    }

    /// Bytes of the full configure message for a stream with attached
    /// compute: affine part + compute part, rounded up.
    pub fn config_message_bytes() -> u64 {
        ((AffineConfig::BITS + ComputeConfig::BITS) as u64).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affine_roundtrip() {
        let c = AffineConfig {
            cid: 63,
            sid: 15,
            base: 0x1234_5678_9ABC,
            strides: [8, 4096, 0],
            ptbl: 0xFFF0_0000_0000,
            iter: 12345,
            size: 64,
            lens: [1000, 2, 1],
        };
        let bytes = c.encode();
        assert_eq!(bytes.len(), (AffineConfig::BITS as usize).div_ceil(8));
        assert_eq!(AffineConfig::decode(&bytes), c);
    }

    #[test]
    fn indirect_roundtrip() {
        let c = IndirectConfig { sid: 7, base: 0xABCD, size: 4 };
        assert_eq!(IndirectConfig::decode(&c.encode()), c);
        assert_eq!(IndirectConfig::BITS, 60);
    }

    #[test]
    fn compute_roundtrip() {
        let c = ComputeConfig {
            ctype: 15,
            arg_sids: [1, 2, 3, 4, 5, 6, 7, 8],
            ret_log2: 3,
            fptr: 0x4000_1000,
            arg_size_log2: [3, 3, 2, 1, 0, 3, 3, 3],
            const_data: u64::MAX,
        };
        assert_eq!(ComputeConfig::decode(&c.encode()), c);
    }

    #[test]
    fn table_iv_field_budget() {
        // Audit against the published widths.
        assert_eq!(AffineConfig::BITS, 450);
        assert_eq!(ComputeConfig::BITS, 175);
        // A full affine+compute configure message fits in ~79 bytes.
        assert_eq!(ComputeConfig::config_message_bytes(), 79);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn writer_validates_width() {
        let mut w = BitWriter::new();
        w.put(16, 4);
    }

    #[test]
    fn bit_io_mixed_widths() {
        let mut w = BitWriter::new();
        w.put(0b101, 3);
        w.put(0xFFFF, 16);
        w.put(1, 1);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.get(3), 0b101);
        assert_eq!(r.get(16), 0xFFFF);
        assert_eq!(r.get(1), 1);
    }
}
