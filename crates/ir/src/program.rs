//! Programs, kernels, loops and statements.

use crate::expr::Expr;
use crate::types::{AtomicOp, BinOp, ElemType};
use std::fmt;

/// Index of a kernel-local variable slot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub u16);

/// Identifies an array in a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ArrayId(pub u32);

/// Identifies a memory-access statement within a kernel (unique per kernel).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StmtId(pub u32);

impl fmt::Display for StmtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A scalar field within a [`ElemType::Record`] element.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Field {
    /// Byte offset within the record.
    pub offset: u8,
    /// Scalar type of the field (must not itself be a record).
    pub ty: ElemType,
}

/// An array declaration.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayDecl {
    /// Human-readable name.
    pub name: String,
    /// Element type.
    pub elem: ElemType,
    /// Number of elements.
    pub len: u64,
}

impl ArrayDecl {
    /// Total size in bytes.
    pub fn bytes(&self) -> u64 {
        self.len * self.elem.bytes() as u64
    }
}

/// Loop trip-count specification.
#[derive(Clone, Debug, PartialEq)]
pub enum Trip {
    /// A static trip count.
    Const(u64),
    /// Trip count evaluated at loop entry (may read locals set by outer
    /// statements, e.g. CSR row bounds).
    Expr(Expr),
    /// A data-dependent while loop: iterate while the condition holds.
    While(Expr),
}

/// A loop: induction variable, trip specification and body.
#[derive(Clone, Debug, PartialEq)]
pub struct Loop {
    /// The induction variable, counting `0..trip` (unused for `While`).
    pub var: VarId,
    /// Trip count.
    pub trip: Trip,
    /// Body statements.
    pub body: Vec<Stmt>,
}

/// A statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Stmt {
    /// Pure computation into a local variable.
    Assign {
        /// Destination variable.
        var: VarId,
        /// Value expression.
        expr: Expr,
    },
    /// Memory load into a local variable.
    Load {
        /// Unique id.
        id: StmtId,
        /// Destination variable.
        var: VarId,
        /// Source array.
        array: ArrayId,
        /// Element index expression.
        index: Expr,
        /// Optional record field.
        field: Option<Field>,
    },
    /// Memory store.
    Store {
        /// Unique id.
        id: StmtId,
        /// Target array.
        array: ArrayId,
        /// Element index expression.
        index: Expr,
        /// Optional record field.
        field: Option<Field>,
        /// Stored value.
        value: Expr,
    },
    /// Relaxed-order atomic read-modify-write.
    Atomic {
        /// Unique id.
        id: StmtId,
        /// Target array.
        array: ArrayId,
        /// Element index expression.
        index: Expr,
        /// Optional record field.
        field: Option<Field>,
        /// The operation.
        op: AtomicOp,
        /// Operand value.
        operand: Expr,
        /// Expected value (CAS only).
        expected: Option<Expr>,
        /// Where to put the old value, if used.
        old: Option<VarId>,
    },
    /// Conditional execution.
    If {
        /// Condition.
        cond: Expr,
        /// Taken branch.
        then_body: Vec<Stmt>,
        /// Not-taken branch.
        else_body: Vec<Stmt>,
    },
    /// A nested (sequential) loop.
    Loop(Loop),
}

impl Stmt {
    /// The statement id for memory-access statements.
    pub fn mem_id(&self) -> Option<StmtId> {
        match self {
            Stmt::Load { id, .. } | Stmt::Store { id, .. } | Stmt::Atomic { id, .. } => Some(*id),
            _ => None,
        }
    }
}

/// An OpenMP-style reduction over the parallel outer loop: each iteration's
/// final value of `var` is combined with `op` and stored to `target[0]`.
#[derive(Clone, Debug, PartialEq)]
pub struct OuterReduction {
    /// The per-iteration contribution variable.
    pub var: VarId,
    /// Combining operator (must be associative).
    pub op: BinOp,
    /// Result array (element 0 receives the final value).
    pub target: ArrayId,
}

/// A parallel kernel: one outer `parallel for` plus nested sequential work.
#[derive(Clone, Debug, PartialEq)]
pub struct Kernel {
    /// Kernel name.
    pub name: String,
    /// The parallel outer loop (trip must be `Const` or parameter-only
    /// `Expr`, so it can be statically partitioned across cores).
    pub outer: Loop,
    /// Number of local variable slots.
    pub n_locals: u16,
    /// Number of memory-access statement ids allocated.
    pub n_stmts: u32,
    /// `s_sync_free` pragma (paper §V): streams in this kernel never alias.
    pub sync_free: bool,
    /// Optional outer-loop reduction.
    pub outer_reduction: Option<OuterReduction>,
    /// Value-width hints `(var, bytes)`: the byte width of a computed
    /// value, standing in for the LLVM type information the paper's
    /// compiler uses when slicing narrowing computations onto load streams
    /// (§III-B "the final instruction has a smaller data type").
    pub narrow_hints: Vec<(VarId, u8)>,
}

impl Kernel {
    /// Visits every statement in the kernel, depth-first.
    pub fn for_each_stmt<'a>(&'a self, f: &mut impl FnMut(&'a Stmt, usize)) {
        fn walk<'a>(stmts: &'a [Stmt], depth: usize, f: &mut impl FnMut(&'a Stmt, usize)) {
            for s in stmts {
                f(s, depth);
                match s {
                    Stmt::If { then_body, else_body, .. } => {
                        walk(then_body, depth, f);
                        walk(else_body, depth, f);
                    }
                    Stmt::Loop(l) => walk(&l.body, depth + 1, f),
                    _ => {}
                }
            }
        }
        walk(&self.outer.body, 1, f);
    }

    /// Maximum loop depth (1 = flat outer loop).
    pub fn max_depth(&self) -> usize {
        let mut d = 1;
        self.for_each_stmt(&mut |_, depth| d = d.max(depth));
        d
    }
}

/// A whole program: arrays plus kernels executed in sequence.
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Program name.
    pub name: String,
    /// Array declarations (ids are indices).
    pub arrays: Vec<ArrayDecl>,
    /// Kernels, executed in order.
    pub kernels: Vec<Kernel>,
    /// Number of runtime parameters the program expects.
    pub n_params: u32,
}

impl Program {
    /// Creates an empty program.
    pub fn new(name: &str) -> Program {
        Program {
            name: name.to_owned(),
            arrays: Vec::new(),
            kernels: Vec::new(),
            n_params: 0,
        }
    }

    /// Declares an array, returning its id.
    pub fn array(&mut self, name: &str, elem: ElemType, len: u64) -> ArrayId {
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl {
            name: name.to_owned(),
            elem,
            len,
        });
        id
    }

    /// Appends a kernel.
    pub fn push_kernel(&mut self, kernel: Kernel) {
        self.kernels.push(kernel);
    }

    /// Declares that the program takes at least `n` parameters.
    pub fn set_params(&mut self, n: u32) {
        self.n_params = self.n_params.max(n);
    }

    /// The declaration for `array`.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn decl(&self, array: ArrayId) -> &ArrayDecl {
        &self.arrays[array.0 as usize]
    }

    /// Validates structural well-formedness; returns a description of the
    /// first problem found.
    ///
    /// # Errors
    ///
    /// Returns `Err` when a statement references an out-of-range variable,
    /// array or parameter, when a record field is itself a record, when an
    /// outer-reduction operator is not associative, or when memory-access
    /// statement ids collide.
    pub fn validate(&self) -> Result<(), String> {
        for k in &self.kernels {
            let mut seen = std::collections::HashSet::new();
            let mut err = None;
            k.for_each_stmt(&mut |s, _| {
                if err.is_some() {
                    return;
                }
                if let Some(id) = s.mem_id() {
                    if id.0 >= k.n_stmts {
                        err = Some(format!("kernel {}: stmt id {id} out of range", k.name));
                    }
                    if !seen.insert(id) {
                        err = Some(format!("kernel {}: duplicate stmt id {id}", k.name));
                    }
                }
                let arr = match s {
                    Stmt::Load { array, .. } | Stmt::Store { array, .. } | Stmt::Atomic { array, .. } => {
                        Some(*array)
                    }
                    _ => None,
                };
                if let Some(a) = arr {
                    if a.0 as usize >= self.arrays.len() {
                        err = Some(format!("kernel {}: bad array id {:?}", k.name, a));
                    }
                }
                let field = match s {
                    Stmt::Load { field, .. } | Stmt::Store { field, .. } | Stmt::Atomic { field, .. } => *field,
                    _ => None,
                };
                if let Some(f) = field {
                    if matches!(f.ty, ElemType::Record(_)) {
                        err = Some(format!("kernel {}: record-typed field", k.name));
                    }
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
            if let Some(r) = &k.outer_reduction {
                if !r.op.is_associative() {
                    return Err(format!("kernel {}: non-associative outer reduction", k.name));
                }
                if r.var.0 >= k.n_locals {
                    return Err(format!("kernel {}: reduction var out of range", k.name));
                }
            }
        }
        Ok(())
    }

    /// Total bytes across all arrays (the program's memory footprint).
    pub fn footprint_bytes(&self) -> u64 {
        self.arrays.iter().map(|a| a.bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Scalar;

    fn tiny_kernel() -> Kernel {
        Kernel {
            name: "k".into(),
            outer: Loop {
                var: VarId(0),
                trip: Trip::Const(4),
                body: vec![
                    Stmt::Load {
                        id: StmtId(0),
                        var: VarId(1),
                        array: ArrayId(0),
                        index: Expr::var(VarId(0)),
                        field: None,
                    },
                    Stmt::Loop(Loop {
                        var: VarId(2),
                        trip: Trip::Const(2),
                        body: vec![Stmt::Assign {
                            var: VarId(1),
                            expr: Expr::var(VarId(1)) + Expr::imm(1),
                        }],
                    }),
                ],
            },
            n_locals: 3,
            n_stmts: 1,
            sync_free: false,
            outer_reduction: None,
            narrow_hints: Vec::new(),
        }
    }

    #[test]
    fn visitor_and_depth() {
        let k = tiny_kernel();
        let mut count = 0;
        k.for_each_stmt(&mut |_, _| count += 1);
        assert_eq!(count, 3); // load, loop, assign
        assert_eq!(k.max_depth(), 2);
    }

    #[test]
    fn validate_accepts_wellformed() {
        let mut p = Program::new("t");
        p.array("a", ElemType::I64, 16);
        p.push_kernel(tiny_kernel());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_array() {
        let mut p = Program::new("t");
        p.push_kernel(tiny_kernel()); // references ArrayId(0) which is absent
        assert!(p.validate().is_err());
    }

    #[test]
    fn validate_rejects_duplicate_stmt_ids() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 16);
        let mut k = tiny_kernel();
        k.outer.body.push(Stmt::Store {
            id: StmtId(0), // duplicate
            array: a,
            index: Expr::imm(0),
            field: None,
            value: Expr::imm(1),
        });
        p.push_kernel(k);
        assert!(p.validate().unwrap_err().contains("duplicate"));
    }

    #[test]
    fn validate_rejects_nonassociative_reduction() {
        let mut p = Program::new("t");
        p.array("a", ElemType::I64, 16);
        let mut k = tiny_kernel();
        k.outer_reduction = Some(OuterReduction {
            var: VarId(1),
            op: BinOp::Sub,
            target: ArrayId(0),
        });
        p.push_kernel(k);
        assert!(p.validate().unwrap_err().contains("non-associative"));
    }

    #[test]
    fn footprint_sums_arrays() {
        let mut p = Program::new("t");
        p.array("a", ElemType::I64, 10);
        p.array("b", ElemType::Record(24), 4);
        assert_eq!(p.footprint_bytes(), 80 + 96);
    }

    #[test]
    fn mem_id_selection() {
        let s = Stmt::Assign {
            var: VarId(0),
            expr: Expr::Const(Scalar::I64(0)),
        };
        assert!(s.mem_id().is_none());
    }
}
