//! Loop-nest intermediate representation for near-stream computing.
//!
//! The paper's compiler consumes LLVM IR of OpenMP kernels; this crate is
//! the equivalent substrate for the Rust reproduction. Workloads are written
//! as [`Program`]s — structured loop nests over typed arrays with explicit
//! loads, stores, relaxed atomics and pure compute — and:
//!
//! * the [`interp`] module executes them functionally (the golden results
//!   all simulated systems must match), via a pluggable [`MemClient`] so the
//!   timing simulator can reuse the same control engine;
//! * the `nsc-compiler` crate pattern-matches address expressions into
//!   streams (affine / indirect / pointer-chasing / multi-operand) and
//!   assigns computations to them (paper §III-B);
//! * the [`stream`] module defines the stream-program representation the
//!   compiler produces and the stream engines execute;
//! * the [`encoding`] module packs stream configurations into the bit-level
//!   format of the paper's Table IV.
//!
//! # Examples
//!
//! A two-array vector sum (`c[i] = a[i] + b[i]`):
//!
//! ```
//! use nsc_ir::build::KernelBuilder;
//! use nsc_ir::{ElemType, Expr, Program, Scalar};
//!
//! let mut p = Program::new("vecadd");
//! let a = p.array("a", ElemType::I64, 128);
//! let b = p.array("b", ElemType::I64, 128);
//! let c = p.array("c", ElemType::I64, 128);
//! let mut k = KernelBuilder::new("sum", 128);
//! let i = k.outer_var();
//! let va = k.load(a, Expr::var(i));
//! let vb = k.load(b, Expr::var(i));
//! k.store(c, Expr::var(i), Expr::var(va) + Expr::var(vb));
//! p.push_kernel(k.finish());
//!
//! let mut mem = nsc_ir::Memory::for_program(&p);
//! for i in 0..128u64 {
//!     mem.write_index(a, i, Scalar::I64(i as i64));
//!     mem.write_index(b, i, Scalar::I64(1));
//! }
//! nsc_ir::interp::run_program(&p, &mut mem, &[]);
//! assert_eq!(mem.read_index(c, 5), Scalar::I64(6));
//! ```

pub mod build;
pub mod bytecode;
pub mod encoding;
pub mod expr;
pub mod interp;
pub mod memory;
pub mod program;
pub mod stream;
pub mod types;

pub use bytecode::{ExprCode, KernelCode};
pub use expr::Expr;
pub use interp::{run_program, ExecError, MemClient};
pub use memory::Memory;
pub use program::{ArrayDecl, ArrayId, Kernel, Loop, Program, Stmt, StmtId, Trip, VarId};
pub use stream::{AddrPatternClass, ComputeClass, StreamId, StreamInfo};
pub use types::{AtomicOp, BinOp, ElemType, Scalar, UnOp};
