//! Property tests: the compiled register bytecode must be observationally
//! identical to the tree-walking interpreter on *random* programs.
//!
//! Two properties, each over hundreds of seeded-random cases:
//!
//! 1. **Expression equivalence** — a random `Expr` tree evaluated by
//!    [`ExprCode`] produces the same `Scalar` as `Expr::eval`, compared
//!    *bit for bit* (`f64::to_bits`), so NaN payloads and signed zeros
//!    count too.
//! 2. **Kernel equivalence** — a random kernel (nested ifs, counted and
//!    data-dependent loops, loads/stores/atomics with masked indices)
//!    executed by [`KernelCode`] drives the `MemClient` with the *exact
//!    same call sequence* (kind, statement, array, index, field,
//!    operands, in order) as the tree walker, leaves memory in the same
//!    state, and returns the same reduction contributions. This is the
//!    determinism contract that lets the plan pass swap evaluators
//!    without perturbing a single simulated counter.
//!
//! The RNG is a hand-rolled xorshift (this crate has no dependencies),
//! so every case is reproducible from its printed seed.

use nsc_ir::build::KernelBuilder;
use nsc_ir::interp::{self};
use nsc_ir::program::{ArrayId, Field, StmtId, VarId};
use nsc_ir::types::{AtomicOp, BinOp, Scalar, UnOp};
use nsc_ir::{ElemType, Expr, ExprCode, Kernel, KernelCode, MemClient, Memory, Program, Trip};

/// xorshift64* — tiny, deterministic, dependency-free.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const BINOPS: [BinOp; 16] = [
    BinOp::Add,
    BinOp::Sub,
    BinOp::Mul,
    BinOp::Div,
    BinOp::Rem,
    BinOp::Min,
    BinOp::Max,
    BinOp::And,
    BinOp::Or,
    BinOp::Xor,
    BinOp::Shr,
    BinOp::Shl,
    BinOp::Lt,
    BinOp::Le,
    BinOp::Eq,
    BinOp::Ne,
];
const UNOPS: [UnOp; 5] = [UnOp::Neg, UnOp::Not, UnOp::Abs, UnOp::Sqrt, UnOp::Exp];

const N_LOCALS: u64 = 5;
const N_PARAMS: u64 = 3;
const PARAMS: [Scalar; 3] = [Scalar::I64(7), Scalar::F64(0.375), Scalar::I64(-11)];

/// A random expression over `vars` (falling back to leaves at depth 0).
fn gen_expr(rng: &mut Rng, vars: &[VarId], depth: u32) -> Expr {
    if depth == 0 || rng.below(7) == 0 {
        return match rng.below(4) {
            0 => Expr::imm((rng.next() as i64) >> 40),
            1 => Expr::immf(((rng.next() >> 11) as f64 / (1u64 << 53) as f64) * 16.0 - 8.0),
            2 => Expr::param(rng.below(N_PARAMS) as u32),
            _ => Expr::var(vars[rng.below(vars.len() as u64) as usize]),
        };
    }
    match rng.below(10) {
        0 => Expr::un(UNOPS[rng.below(UNOPS.len() as u64) as usize], gen_expr(rng, vars, depth - 1)),
        1 => Expr::select(
            gen_expr(rng, vars, depth - 1),
            gen_expr(rng, vars, depth - 1),
            gen_expr(rng, vars, depth - 1),
        ),
        _ => Expr::bin(
            BINOPS[rng.below(BINOPS.len() as u64) as usize],
            gen_expr(rng, vars, depth - 1),
            gen_expr(rng, vars, depth - 1),
        ),
    }
}

fn bits(v: Scalar) -> (bool, u64) {
    match v {
        Scalar::I64(x) => (false, x as u64),
        Scalar::F64(x) => (true, x.to_bits()),
    }
}

/// Random expression trees: bytecode and tree walker agree bit for bit.
#[test]
fn random_exprs_eval_identically() {
    for seed in 0..400u64 {
        let mut rng = Rng::new(seed.wrapping_mul(0x9E3779B97F4A7C15) + 1);
        let vars: Vec<VarId> = (0..N_LOCALS).map(|i| VarId(i as u16)).collect();
        let e = gen_expr(&mut rng, &vars, 6);
        let code = ExprCode::compile(&e, N_LOCALS as u16);
        let mut regs = Vec::new();
        code.bind(&PARAMS, &mut regs);
        for case in 0..8u64 {
            let mut locals = [Scalar::I64(0); N_LOCALS as usize];
            for (j, l) in locals.iter_mut().enumerate() {
                let x = rng.next();
                *l = if (case + j as u64).is_multiple_of(2) {
                    Scalar::I64((x as i64) >> 16)
                } else {
                    Scalar::F64(((x >> 11) as f64 / (1u64 << 53) as f64) * 32.0 - 16.0)
                };
            }
            let want = e.eval(&locals, &PARAMS);
            let got = code.eval(&locals, &mut regs);
            assert_eq!(
                bits(want),
                bits(got),
                "seed {seed} case {case}: tree {want:?} != bytecode {got:?}\nexpr: {e:?}"
            );
        }
    }
}

/// One logged `MemClient` call: every operand that crosses the client
/// boundary, bit-exact.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Call {
    Load(StmtId, ArrayId, u64, Option<Field>),
    Store(StmtId, ArrayId, u64, Option<Field>, (bool, u64)),
    Atomic(StmtId, ArrayId, u64, Option<Field>, AtomicOp, (bool, u64), Option<(bool, u64)>),
}

/// Delegates to a real [`Memory`] while logging every call.
struct RecordingClient<'m> {
    mem: &'m mut Memory,
    log: Vec<Call>,
}

impl MemClient for RecordingClient<'_> {
    fn load(&mut self, stmt: StmtId, array: ArrayId, index: u64, field: Option<Field>) -> Scalar {
        self.log.push(Call::Load(stmt, array, index, field));
        self.mem.read(array, index, field)
    }

    fn store(&mut self, stmt: StmtId, array: ArrayId, index: u64, field: Option<Field>, value: Scalar) {
        self.log.push(Call::Store(stmt, array, index, field, bits(value)));
        self.mem.write(array, index, field, value);
    }

    fn atomic(
        &mut self,
        stmt: StmtId,
        array: ArrayId,
        index: u64,
        field: Option<Field>,
        op: AtomicOp,
        operand: Scalar,
        expected: Option<Scalar>,
    ) -> Scalar {
        self.log
            .push(Call::Atomic(stmt, array, index, field, op, bits(operand), expected.map(bits)));
        let old = self.mem.read(array, index, field);
        let (new, _) = op.apply(old, operand, expected);
        self.mem.write(array, index, field, new);
        old
    }
}

const ARRAY_LEN: u64 = 64;

/// Masks an index expression into `[0, ARRAY_LEN)`: `And` always yields
/// a non-negative `I64`, so any random sub-expression becomes a valid
/// index.
fn masked(e: Expr) -> Expr {
    Expr::bin(BinOp::And, e, Expr::imm(ARRAY_LEN as i64 - 1))
}

/// A random kernel over `arrays`: straight-line assigns, loads, stores,
/// atomics, plus nested ifs, counted loops, expression-trip loops and
/// terminating while loops.
fn gen_body(rng: &mut Rng, b: &mut KernelBuilder, vars: &mut Vec<VarId>, arrays: &[ArrayId], depth: u32) {
    let n = 2 + rng.below(4);
    for _ in 0..n {
        let arr = arrays[rng.below(arrays.len() as u64) as usize];
        match rng.below(if depth > 0 { 9 } else { 5 }) {
            0 | 1 => {
                let e = gen_expr(rng, vars, 3);
                let v = b.let_(e);
                vars.push(v);
            }
            2 => {
                let idx = masked(gen_expr(rng, vars, 2));
                let v = b.load(arr, idx);
                vars.push(v);
            }
            3 => {
                let idx = masked(gen_expr(rng, vars, 2));
                let val = gen_expr(rng, vars, 3);
                b.store(arr, idx, val);
            }
            4 => {
                let ops = [AtomicOp::Add, AtomicOp::Min, AtomicOp::Max, AtomicOp::Xchg];
                let op = ops[rng.below(ops.len() as u64) as usize];
                let idx = masked(gen_expr(rng, vars, 2));
                let operand = gen_expr(rng, vars, 2);
                let old = b.atomic_old(arr, idx, op, operand);
                vars.push(old);
            }
            5 => {
                let frame = vars.len();
                b.begin_if(gen_expr(rng, vars, 2));
                gen_body(rng, b, vars, arrays, depth - 1);
                vars.truncate(frame);
                b.begin_else();
                gen_body(rng, b, vars, arrays, depth - 1);
                vars.truncate(frame);
                b.end_if();
            }
            6 => {
                let frame = vars.len();
                let v = b.begin_loop(Trip::Const(1 + rng.below(3)));
                vars.push(v);
                gen_body(rng, b, vars, arrays, depth - 1);
                vars.truncate(frame);
                b.end_loop();
            }
            7 => {
                // Expression trip, masked small and non-negative.
                let frame = vars.len();
                let trip = Expr::bin(BinOp::And, gen_expr(rng, vars, 2), Expr::imm(3));
                let v = b.begin_loop(Trip::Expr(trip));
                vars.push(v);
                gen_body(rng, b, vars, arrays, depth - 1);
                vars.truncate(frame);
                b.end_loop();
            }
            _ => {
                // Guaranteed-terminating while: counts a fresh local down.
                let frame = vars.len();
                let c = b.var();
                b.assign(c, Expr::imm(1 + rng.below(3) as i64));
                let v = b.begin_while(Expr::ne(Expr::var(c), Expr::imm(0)));
                vars.push(v);
                b.assign(c, Expr::var(c) - Expr::imm(1));
                gen_body(rng, b, vars, arrays, depth - 1);
                vars.truncate(frame);
                b.end_loop();
            }
        }
    }
}

fn gen_program(seed: u64) -> (Program, Kernel) {
    let mut rng = Rng::new(seed.wrapping_mul(0xD1B54A32D192ED03) + 1);
    let mut p = Program::new("prop");
    let arrays: Vec<ArrayId> = (0..3)
        .map(|i| {
            let ty = if i == 1 { ElemType::F64 } else { ElemType::I64 };
            p.array(&format!("a{i}"), ty, ARRAY_LEN)
        })
        .collect();
    let out = p.array("out", ElemType::I64, 1);
    let mut b = KernelBuilder::new("k", 12);
    let mut vars = vec![b.outer_var()];
    gen_body(&mut rng, &mut b, &mut vars, &arrays, 2);
    if rng.below(2) == 0 {
        let acc = b.let_(gen_expr(&mut rng, &vars, 2));
        b.reduce_outer(acc, BinOp::Add, out);
    }
    let kernel = b.finish();
    (p, kernel)
}

fn init_mem(p: &Program) -> Memory {
    let mut mem = Memory::for_program(p);
    for a in 0..3u32 {
        for i in 0..ARRAY_LEN {
            let v = (i as i64).wrapping_mul(a as i64 + 3) - 17;
            let v = if a == 1 { Scalar::F64(v as f64 * 0.25) } else { Scalar::I64(v) };
            mem.write_index(ArrayId(a), i, v);
        }
    }
    mem
}

/// Runs `kernel` over every outer iteration with the given executor,
/// returning the client log, the final memory image, and the reduction
/// contributions.
/// (client call log, final memory image, per-iteration reduction bits).
type Observed = (Vec<Call>, Vec<(bool, u64)>, Vec<Option<(bool, u64)>>);

fn run_tree(p: &Program, kernel: &Kernel) -> Observed {
    let mut mem = init_mem(p);
    let mut log = Vec::new();
    let mut contribs = Vec::new();
    let mut locals = Vec::new();
    let trip = interp::outer_trip(kernel, &PARAMS);
    for i in 0..trip {
        let mut client = RecordingClient { mem: &mut mem, log: Vec::new() };
        let c = interp::exec_iteration(kernel, i, &PARAMS, &mut client, &mut locals)
            .unwrap_or_else(|e| panic!("tree walker: {e}"));
        log.extend(client.log);
        contribs.push(c.map(bits));
    }
    (log, dump(&mem), contribs)
}

fn run_bytecode(
    p: &Program,
    kernel: &Kernel,
    code: &KernelCode,
) -> Observed {
    let mut mem = init_mem(p);
    let mut log = Vec::new();
    let mut contribs = Vec::new();
    let mut regs = Vec::new();
    code.init_regs(&mut regs, &PARAMS);
    let trip = interp::outer_trip(kernel, &PARAMS);
    for i in 0..trip {
        let mut client = RecordingClient { mem: &mut mem, log: Vec::new() };
        let c = code
            .exec_iteration(i, &PARAMS, &mut client, &mut regs)
            .unwrap_or_else(|e| panic!("bytecode: {e}"));
        log.extend(client.log);
        contribs.push(c.map(bits));
    }
    (log, dump(&mem), contribs)
}

fn dump(mem: &Memory) -> Vec<(bool, u64)> {
    (0..3u32)
        .flat_map(|a| (0..ARRAY_LEN).map(move |i| (a, i)))
        .map(|(a, i)| bits(mem.read_index(ArrayId(a), i)))
        .collect()
}

/// Random kernels: identical client call sequences, memory images and
/// reduction contributions under full lowering.
#[test]
fn random_kernels_drive_identical_client_sequences() {
    for seed in 0..120u64 {
        let (p, kernel) = gen_program(seed);
        let (tl, tm, tc) = run_tree(&p, &kernel);
        let code = KernelCode::compile(&kernel);
        assert_eq!(code.stats.tree_stmts, 0, "seed {seed}: full lowering expected");
        let (bl, bm, bc) = run_bytecode(&p, &kernel, &code);
        assert_eq!(tl, bl, "seed {seed}: MemClient call sequences diverged");
        assert_eq!(tm, bm, "seed {seed}: final memory diverged");
        assert_eq!(tc, bc, "seed {seed}: reduction contributions diverged");
    }
}

/// Same property under an adversarial plan: every other statement is
/// rolled back to the tree walker, so the mixed path (bytecode spans
/// interleaved with `BStmt::Tree`) must still be bit-identical.
#[test]
fn mixed_policy_kernels_stay_identical() {
    let mut total_tree_stmts = 0u32;
    for seed in 0..60u64 {
        let (p, kernel) = gen_program(seed);
        let (tl, tm, tc) = run_tree(&p, &kernel);
        let mut flip = false;
        let code = KernelCode::compile_with(&kernel, &mut |_, _| {
            flip = !flip;
            flip
        });
        total_tree_stmts += code.stats.tree_stmts;
        let (bl, bm, bc) = run_bytecode(&p, &kernel, &code);
        assert_eq!(tl, bl, "seed {seed}: mixed-policy call sequences diverged");
        assert_eq!(tm, bm, "seed {seed}: mixed-policy memory diverged");
        assert_eq!(tc, bc, "seed {seed}: mixed-policy contributions diverged");
    }
    assert!(total_tree_stmts > 0, "the alternating policy never exercised a Tree fallback");
}
