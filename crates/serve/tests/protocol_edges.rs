//! Wire-protocol edge cases against a live daemon: every malformed or
//! hostile input must come back as a typed error *response* on the same
//! connection — never a dropped connection — and the request-tracing
//! surface (`latency` field, `trace` op, `logs` op) must hold its
//! contract end to end.

use near_stream::ExecMode;
use nsc_serve::client::roundtrip;
use nsc_serve::{server::MAX_LINE_BYTES, Request};
use nsc_sim::json::{parse, Json};
use nsc_workloads::Size;
use std::io::{BufRead, BufReader, Read, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_socket(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("nscd-edge-{tag}-{}.sock", std::process::id()));
    // A stale socket file (earlier panicked run + recycled pid) would
    // satisfy `wait_for` before the daemon binds; clear it first so the
    // path can only reappear as a live listener.
    let _ = std::fs::remove_file(&path);
    path
}

fn wait_for(socket: &Path) {
    // Wait for a live listener, not just the socket file: `exists()`
    // can win the race against the daemon thread between its `bind`
    // and the accept loop coming up, and a stale file would satisfy it
    // with no listener behind it at all. The probe connection is
    // dropped unused; the daemon sees it end at EOF.
    let mut last = None;
    for _ in 0..400 {
        match UnixStream::connect(socket) {
            Ok(_) => return,
            Err(e) => last = Some(e),
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("daemon never came up on {} (last error: {last:?})", socket.display());
}

fn start_daemon(tag: &str) -> (PathBuf, std::thread::JoinHandle<std::io::Result<()>>) {
    let socket = temp_socket(tag);
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || nsc_serve::server::serve(&socket, 2))
    };
    wait_for(&socket);
    (socket, server)
}

fn shutdown(socket: &Path, server: std::thread::JoinHandle<std::io::Result<()>>) {
    let resps = roundtrip(socket, &[Request::Shutdown { id: 99 }]).expect("shutdown");
    assert_eq!(resps[0].get_bool("ok"), Some(true));
    server.join().expect("server thread").expect("serve() result");
}

/// Writes raw bytes, half-closes, and reads back all response lines —
/// the lowest-level client possible, for inputs `Request::render` could
/// never produce.
fn raw_exchange(socket: &Path, bytes: &[u8]) -> Vec<String> {
    let mut stream = UnixStream::connect(socket).expect("connect");
    stream.write_all(bytes).expect("write");
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut lines = Vec::new();
    for line in BufReader::new(stream).lines() {
        lines.push(line.expect("read response line"));
    }
    lines
}

#[test]
fn oversized_line_gets_typed_error_and_connection_survives() {
    let (socket, server) = start_daemon("oversize");
    let mut payload = Vec::new();
    payload.extend_from_slice(b"{\"op\":\"status\",\"id\":1}\n");
    payload.extend_from_slice("x".repeat(MAX_LINE_BYTES + 100).as_bytes());
    payload.extend_from_slice(b"\n{\"op\":\"status\",\"id\":3}\n");
    let lines = raw_exchange(&socket, &payload);
    assert_eq!(lines.len(), 3, "one response per line, got: {lines:?}");
    assert!(lines[0].contains("\"ok\":true"), "got: {}", lines[0]);
    assert!(lines[1].contains("\"ok\":false"), "got: {}", lines[1]);
    assert!(lines[1].contains("exceeds"), "got: {}", lines[1]);
    // The line after the oversized one is served normally: the daemon
    // resynchronized at the newline instead of dropping the connection.
    assert!(lines[2].contains("\"ok\":true"), "got: {}", lines[2]);
    assert!(lines[2].contains("\"id\":3"), "got: {}", lines[2]);
    shutdown(&socket, server);
}

#[test]
fn truncated_json_at_eof_gets_typed_error() {
    let (socket, server) = start_daemon("truncated");
    // The connection dies mid-object: no newline after the fragment.
    let lines = raw_exchange(&socket, b"{\"op\":\"status\",\"id\":1}\n{\"op\":\"run\",\"id\":2,\"work");
    assert_eq!(lines.len(), 2, "got: {lines:?}");
    assert!(lines[0].contains("\"ok\":true"));
    assert!(lines[1].contains("\"ok\":false"), "got: {}", lines[1]);
    assert!(lines[1].contains("malformed"), "got: {}", lines[1]);
    shutdown(&socket, server);
}

#[test]
fn unknown_op_gets_typed_error_with_id() {
    let (socket, server) = start_daemon("unknown-op");
    let lines = raw_exchange(&socket, b"{\"op\":\"teleport\",\"id\":7}\n");
    assert_eq!(lines.len(), 1, "got: {lines:?}");
    assert!(lines[0].contains("\"id\":7"));
    assert!(lines[0].contains("\"ok\":false"));
    assert!(lines[0].contains("unknown op"), "got: {}", lines[0]);
    shutdown(&socket, server);
}

#[test]
fn duplicate_request_id_in_one_batch_is_rejected() {
    let (socket, server) = start_daemon("dup-rid");
    let run = |id, rid| Request::Run {
        id,
        request_id: rid,
        workload: "histogram".to_owned(),
        size: Size::Tiny,
        mode: ExecMode::Ns,
        deadline_ms: 0,
    };
    let resps = roundtrip(&socket, &[run(1, 0xDEAD), run(2, 0xDEAD), run(3, 0xBEEF)])
        .expect("round trip");
    assert_eq!(resps.len(), 3);
    assert_eq!(resps[0].get_bool("ok"), Some(true), "got {}", resps[0].render());
    assert_eq!(resps[1].get_bool("ok"), Some(false), "got {}", resps[1].render());
    assert!(
        resps[1].get_str("error").unwrap_or("").contains("duplicate request_id"),
        "got {}",
        resps[1].render()
    );
    assert_eq!(resps[1].get_num("request_id"), Some(0xDEAD));
    // The batch keeps flowing after the rejection.
    assert_eq!(resps[2].get_bool("ok"), Some(true), "got {}", resps[2].render());
    shutdown(&socket, server);
}

#[test]
fn submit_then_trace_reproduces_the_latency_tree() {
    let (socket, server) = start_daemon("trace");
    let rid = 0xAB_CDEF;
    let reqs = [
        Request::Run {
            id: 1,
            request_id: rid,
            workload: "histogram".to_owned(),
            size: Size::Tiny,
            mode: ExecMode::Ns,
            deadline_ms: 0,
        },
        // Same batch: ordered delivery guarantees the run's tree is
        // sealed and stored before this trace slot is evaluated.
        Request::Trace { id: 2, request_id: rid, perfetto: false },
        Request::Trace { id: 3, request_id: 0x1234_5678, perfetto: false },
    ];
    let resps = roundtrip(&socket, &reqs).expect("round trip");

    let run = &resps[0];
    assert_eq!(run.get_bool("ok"), Some(true), "got {}", run.render());
    assert_eq!(run.get_num("request_id"), Some(rid));
    let latency = run.get_str("latency").expect("run response embeds latency");
    let tree = parse(latency).expect("latency parses");
    assert_eq!(tree.get("schema").and_then(Json::as_str), Some("nsc-span-v1"));
    assert_eq!(
        tree.get("request_id").and_then(Json::as_str),
        Some(format!("{rid:016x}").as_str()),
    );
    let spans = tree.get("spans").and_then(Json::as_arr).expect("spans array");
    assert!(spans.len() >= 6, "want ≥6 spans, got {}: {latency}", spans.len());
    for name in
        ["accept", "parse", "queue_wait", "pool_dispatch", "cache_probe", "simulate", "deliver"]
    {
        assert!(
            spans.iter().any(|s| s.get("name").and_then(Json::as_str) == Some(name)),
            "span {name} missing: {latency}"
        );
    }
    // Phases are sequential slices of the request: durations must sum
    // to within the reported wall time.
    let wall = tree.get("wall_us").and_then(Json::as_f64).expect("wall_us");
    let sum: f64 =
        spans.iter().filter_map(|s| s.get("dur_us").and_then(Json::as_f64)).sum();
    assert!(sum <= wall, "span durations ({sum}µs) exceed wall ({wall}µs): {latency}");

    // `trace` returns the *same* tree, byte for byte.
    let trace = &resps[1];
    assert_eq!(trace.get_bool("ok"), Some(true), "got {}", trace.render());
    assert_eq!(trace.get_str("tree"), Some(latency), "trace tree != submit latency");
    assert_eq!(trace.get_num("spans"), Some(spans.len() as u64));

    // An unknown rid is a typed error.
    let missing = &resps[2];
    assert_eq!(missing.get_bool("ok"), Some(false));
    assert!(missing.get_str("error").unwrap_or("").contains("unknown request_id"));
    shutdown(&socket, server);
}

#[test]
fn logs_op_drains_the_flight_recorder() {
    // Level state is process-global; this is the only test in this
    // binary that turns it on.
    nsc_sim::log::set_level(Some(nsc_sim::log::Level::Debug));
    let (socket, server) = start_daemon("logs");
    let reqs = [
        Request::Run {
            id: 1,
            request_id: 0,
            workload: "histogram".to_owned(),
            size: Size::Tiny,
            mode: ExecMode::Ns,
            deadline_ms: 0,
        },
        Request::Logs { id: 2 },
    ];
    let resps = roundtrip(&socket, &reqs).expect("round trip");
    let logs = &resps[1];
    assert_eq!(logs.get_bool("ok"), Some(true), "got {}", logs.render());
    assert!(logs.get_num("count").unwrap_or(0) > 0, "flight recorder empty");
    let lines = logs.get_str("lines").expect("lines field");
    assert!(
        lines.lines().any(|l| l.contains("\"target\":\"serve\"")),
        "no serve records in: {lines}"
    );
    // Every drained line is itself valid JSON.
    for l in lines.lines() {
        parse(l).unwrap_or_else(|e| panic!("bad log line {l:?}: {e}"));
    }
    nsc_sim::log::set_level(None);
    shutdown(&socket, server);
}

#[test]
fn disconnect_mid_stream_reaps_pending_work() {
    // Regression: a client that submits a burst and vanishes must not
    // leave the daemon simulating for a dead socket. Jobs still queued
    // when the writer notices the dead peer are shed (serve.shed), the
    // queue drains, and the daemon stays healthy for other clients.
    let socket = temp_socket("reap");
    let server = {
        let socket = socket.clone();
        let cfg = nsc_serve::server::ServeConfig {
            jobs: 1,
            max_conns: 8,
            queue_cap: 64,
            deadline_ms: 0,
            sample_ms: 0,
            timeline_cap: 16,
        };
        std::thread::spawn(move || nsc_serve::server::serve_with(&socket, cfg))
    };
    wait_for(&socket);

    let shed_before = global_counter("serve.shed", &socket);
    // A shed is only observable if the writer hits the dead peer while
    // jobs are still queued; on one CPU the worker can race through an
    // entire tiny burst before the writer thread is ever scheduled.
    // Burst again until a shed lands — the guarded regression (the
    // daemon simulating for dead sockets without ever shedding) keeps
    // the counter flat through every round and still fails.
    let mut shed_after = shed_before;
    for _round in 0..10 {
        {
            // Submit a burst of distinct cold runs on one worker, then
            // drop the connection without reading a single response.
            // The writer hits EPIPE on the first delivery and flips the
            // `alive` flag.
            let mut stream = UnixStream::connect(&socket).expect("connect");
            let mut payload = String::new();
            for (i, w) in ["histogram", "bin_tree", "hash_join", "bfs_push", "pr_push", "sssp"]
                .iter()
                .enumerate()
            {
                payload.push_str(&format!(
                    "{{\"op\":\"run\",\"id\":{},\"workload\":\"{w}\",\"size\":\"tiny\",\"mode\":\"NS\"}}\n",
                    i + 1
                ));
            }
            stream.write_all(payload.as_bytes()).expect("write burst");
            // Dropping `stream` closes both halves.
        }

        // The queue must drain on its own: queued jobs observe the dead
        // connection at dequeue and skip their simulations.
        let mut drained = false;
        for _ in 0..400 {
            let resps = roundtrip(&socket, &[Request::Status { id: 1 }]).expect("status");
            let idle = resps[0].get_num("queue_depth") == Some(0)
                && resps[0].get_num("in_flight") == Some(0);
            if idle {
                drained = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(drained, "queue never drained after client disconnect");
        shed_after = global_counter("serve.shed", &socket);
        if shed_after > shed_before {
            break;
        }
    }
    assert!(
        shed_after > shed_before,
        "disconnect must shed queued work (serve.shed {shed_before} -> {shed_after})"
    );
    shutdown(&socket, server);
}

/// Reads one global counter through the daemon's `metrics` op.
fn global_counter(label: &str, socket: &Path) -> f64 {
    let resps = roundtrip(socket, &[Request::Metrics { id: 1 }]).expect("metrics");
    let snap = parse(resps[0].get_str("snapshot").expect("snapshot")).expect("snapshot json");
    snap.get("counters")
        .and_then(Json::as_obj)
        .and_then(|c| c.get(label))
        .and_then(Json::as_f64)
        .unwrap_or(0.0)
}

#[test]
fn request_id_above_2_pow_53_survives_the_wire_exactly() {
    // Request ids are u64; a JSON layer that detoured through f64 would
    // silently round anything above 2^53. The README's doc example rid
    // (0x0123456789abcdef = 81985529216486895) and u64::MAX must both
    // round-trip bit-exactly through render → daemon → response.
    let big: u64 = 81985529216486895;
    assert!(big > (1u64 << 53));

    // Library level: render/parse round trip at the extremes.
    for rid in [big, u64::MAX] {
        let req = Request::Run {
            id: 1,
            request_id: rid,
            workload: "histogram".to_owned(),
            size: Size::Tiny,
            mode: ExecMode::Ns,
            deadline_ms: 0,
        };
        let back = Request::parse(&req.render()).expect("round trip");
        assert_eq!(back, req, "request_id {rid} mangled by render/parse");
    }

    // Wire level: the daemon must echo the exact integer back, both in
    // the run response and in the duplicate-rid rejection path.
    let (socket, server) = start_daemon("big-rid");
    let raw = format!(
        "{{\"op\":\"run\",\"id\":1,\"request_id\":{big},\"workload\":\"histogram\",\
         \"size\":\"tiny\",\"mode\":\"NS\"}}\n"
    );
    let lines = raw_exchange(&socket, raw.as_bytes());
    assert_eq!(lines.len(), 1, "got: {lines:?}");
    assert!(lines[0].contains("\"ok\":true"), "got: {}", lines[0]);
    assert!(
        lines[0].contains(&format!("\"request_id\":{big}")),
        "rid lost precision on the wire: {}",
        lines[0]
    );
    shutdown(&socket, server);
}

#[test]
fn slow_trickled_request_still_parses() {
    // A request written byte-by-byte across many writes must be
    // reassembled: the bounded reader cannot assume one write per line.
    let (socket, server) = start_daemon("trickle");
    let mut stream = UnixStream::connect(&socket).expect("connect");
    for b in b"{\"op\":\"status\",\"id\":5}\n" {
        stream.write_all(&[*b]).expect("write byte");
        stream.flush().expect("flush");
    }
    stream.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read");
    assert!(body.contains("\"id\":5"), "got: {body}");
    assert!(body.contains("\"ok\":true"), "got: {body}");
    shutdown(&socket, server);
}
