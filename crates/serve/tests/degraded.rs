//! Degraded cache-only mode under saturation. This test arms the
//! result cache through the environment (`NSC_CACHE`/`NSC_CACHE_DIR`),
//! so it lives alone in its own test binary: env mutation in a
//! multi-threaded test harness would race every other daemon test.

use near_stream::ExecMode;
use nsc_serve::client::roundtrip;
use nsc_serve::server::ServeConfig;
use nsc_serve::Request;
use nsc_workloads::Size;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn wait_for(socket: &Path) {
    // Wait for a live listener, not just the socket file: `exists()`
    // can win the race against the daemon thread between its `bind`
    // and the accept loop coming up, and a stale file would satisfy it
    // with no listener behind it at all. The probe connection is
    // dropped unused; the daemon sees it end at EOF.
    let mut last = None;
    for _ in 0..400 {
        match UnixStream::connect(socket) {
            Ok(_) => return,
            Err(e) => last = Some(e),
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("daemon never came up on {} (last error: {last:?})", socket.display());
}

fn run(id: u64, workload: &str) -> Request {
    Request::Run {
        id,
        request_id: 0,
        workload: workload.to_owned(),
        size: Size::Tiny,
        mode: ExecMode::Ns,
        deadline_ms: 0,
    }
}

#[test]
fn saturated_queue_still_answers_cache_hits() {
    // Private cache directory: armed, but empty until this test fills it.
    let cache_dir =
        std::env::temp_dir().join(format!("nscd-degraded-cache-{}", std::process::id()));
    std::env::set_var("NSC_CACHE_DIR", &cache_dir);
    std::env::set_var("NSC_CACHE", "1");
    let socket: PathBuf =
        std::env::temp_dir().join(format!("nscd-degraded-{}.sock", std::process::id()));
    // A stale socket file (earlier panicked run + recycled pid) would
    // satisfy `wait_for` before the daemon binds; clear it first.
    let _ = std::fs::remove_file(&socket);
    let cfg = ServeConfig { jobs: 1, max_conns: 8, queue_cap: 1, deadline_ms: 0, sample_ms: 0, timeline_cap: 16 };
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || nsc_serve::server::serve_with(&socket, cfg))
    };
    wait_for(&socket);

    // Warm the cache: one uncontended run of the key we will replay.
    let warm = roundtrip(&socket, &[run(1, "histogram")]).expect("warm run");
    assert_eq!(warm[0].get_bool("ok"), Some(true), "got {}", warm[0].render());
    let warm_blob = warm[0].get_str("blob").expect("blob").to_owned();

    // Saturate: a cold run takes the only queue slot. Hold its
    // connection open and wait until the daemon reports the slot
    // occupied, so the probe batch below races nothing.
    let mut cold = UnixStream::connect(&socket).expect("cold conn");
    writeln!(cold, "{}", run(1, "bin_tree").render()).expect("submit cold run");
    cold.flush().expect("flush");
    let mut occupied = false;
    for _ in 0..400 {
        let st = roundtrip(&socket, &[Request::Status { id: 1 }]).expect("status");
        if st[0].get_num("queue_depth") == Some(1) {
            occupied = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    assert!(occupied, "cold run never occupied the queue slot");

    // While the slot is held, a cache-miss submit must shed and a
    // cache-hit submit must still be answered (degraded mode, inline).
    // Miss first: its probe is quick, so it runs while the slot is
    // still held; the hit's inline replay may outlast the cold run,
    // which is fine — a hit is served either way.
    let resps =
        roundtrip(&socket, &[run(3, "hash_join"), run(2, "histogram")]).expect("probe batch");
    assert_eq!(resps.len(), 2, "every submit gets a terminal response");
    let degraded = &resps[1];
    assert_eq!(
        degraded.get_bool("ok"),
        Some(true),
        "cache hit must be served at saturation: {}",
        degraded.render()
    );
    assert_eq!(degraded.get_bool("cached"), Some(true), "got {}", degraded.render());
    assert_eq!(
        degraded.get_str("blob"),
        Some(warm_blob.as_str()),
        "degraded replay must be bit-identical to the warm run"
    );
    let shed = &resps[0];
    assert_eq!(shed.get_bool("ok"), Some(false), "cache miss must shed: {}", shed.render());
    assert_eq!(shed.get_str("shed"), Some("overloaded"), "got {}", shed.render());

    // The cold run itself still completes and delivers on its own
    // connection.
    cold.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut lines = Vec::new();
    for line in BufReader::new(cold).lines() {
        lines.push(line.expect("read cold response"));
    }
    assert_eq!(lines.len(), 1, "got: {lines:?}");
    assert!(lines[0].contains("\"ok\":true"), "cold run must complete: {}", lines[0]);

    let resps = roundtrip(&socket, &[Request::Shutdown { id: 9 }]).expect("shutdown");
    assert_eq!(resps[0].get_bool("ok"), Some(true));
    server.join().expect("server thread").expect("serve() result");
    let _ = std::fs::remove_dir_all(&cache_dir);
}
