//! End-to-end daemon test: a real Unix socket, a real server thread,
//! and the acceptance-gate property — a run submitted through `nscd`
//! returns the same `RunResult` as an in-process `RunRequest::run()`.

use near_stream::request::encode;
use near_stream::ExecMode;
use nsc_serve::client::roundtrip;
use nsc_serve::Request;
use nsc_sim::fault::FaultStats;
use nsc_workloads::Size;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_socket(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("nscd-test-{tag}-{}.sock", std::process::id()));
    // A stale socket file (earlier panicked run + recycled pid) would
    // satisfy `wait_for` before the daemon binds; clear it first so the
    // path can only reappear as a live listener.
    let _ = std::fs::remove_file(&path);
    path
}

fn wait_for(socket: &Path) {
    // Wait for a live listener, not just the socket file: `exists()`
    // can win the race against the daemon thread between its `bind`
    // and the accept loop coming up, and a stale file would satisfy it
    // with no listener behind it at all. The probe connection is
    // dropped unused; the daemon sees it end at EOF.
    let mut last = None;
    for _ in 0..400 {
        match UnixStream::connect(socket) {
            Ok(_) => return,
            Err(e) => last = Some(e),
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("daemon never came up on {} (last error: {last:?})", socket.display());
}

#[test]
fn daemon_roundtrip_matches_in_process() {
    let socket = temp_socket("roundtrip");
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || nsc_serve::server::serve(&socket, 2))
    };
    wait_for(&socket);

    let run = |id, name: &str| Request::Run {
        id,
        request_id: 0, // daemon mints one
        workload: name.to_owned(),
        size: Size::Tiny,
        mode: ExecMode::Ns,
        deadline_ms: 0,
    };
    let reqs = [
        run(1, "histogram"),
        run(2, "bin_tree"),
        run(3, "nope-not-a-workload"),
        Request::Status { id: 4 },
        Request::Metrics { id: 5 },
        Request::Flush { id: 6 },
        Request::Shutdown { id: 7 },
    ];
    let resps = roundtrip(&socket, &reqs).expect("daemon round trip");
    assert_eq!(resps.len(), reqs.len(), "one response per request");
    // Submission order survives the pool: response i answers request i.
    for (req, resp) in reqs.iter().zip(&resps) {
        assert_eq!(resp.get_num("id"), Some(req.id()), "got {}", resp.render());
    }

    // The headline property: the daemon's result is the in-process
    // result, bit for bit (compared through the exact codec).
    for (resp, name) in [(&resps[0], "histogram"), (&resps[1], "bin_tree")] {
        assert_eq!(resp.get_bool("ok"), Some(true), "got {}", resp.render());
        let daemon = nsc_serve::decode_response_blob(resp).expect("blob decodes").result;
        let w = nsc_workloads::all(Size::Tiny)
            .into_iter()
            .find(|w| w.name == name)
            .unwrap();
        let p = nsc_bench::prepare(w);
        let cfg = nsc_bench::system_for(Size::Tiny);
        let (local, _mem) = p.request(ExecMode::Ns, &cfg).run();
        assert_eq!(
            encode(&daemon, &FaultStats::default()),
            encode(&local, &FaultStats::default()),
            "{name}: daemon result differs from in-process run"
        );
    }

    let bad = &resps[2];
    assert_eq!(bad.get_bool("ok"), Some(false));
    assert!(bad.get_str("error").unwrap_or("").contains("unknown workload"));

    let status = &resps[3];
    assert_eq!(status.get_bool("ok"), Some(true));
    assert!(status.get_num("served") >= Some(2), "got {}", status.render());
    assert!(status.get_num("jobs").is_some());
    assert!(status.get_num("uptime_ms").is_some(), "got {}", status.render());
    assert!(status.get_num("in_flight").is_some(), "got {}", status.render());

    // The metrics snapshot rides the same ordered stream, so by delivery
    // time both earlier runs have been absorbed into the global registry.
    let metrics = &resps[4];
    assert_eq!(metrics.get_bool("ok"), Some(true), "got {}", metrics.render());
    assert_eq!(metrics.get_str("schema"), Some("nsc-metrics-v1"));
    let snap = nsc_sim::json::parse(metrics.get_str("snapshot").expect("snapshot field"))
        .expect("snapshot is valid JSON");
    assert_eq!(
        snap.get("schema").and_then(nsc_sim::json::Json::as_str),
        Some("nsc-metrics-v1")
    );
    let counters = snap
        .get("counters")
        .and_then(nsc_sim::json::Json::as_obj)
        .expect("counters section");
    let count = |label: &str| {
        counters.get(label).and_then(nsc_sim::json::Json::as_f64).unwrap_or_else(|| {
            panic!("counter {label} missing from snapshot")
        })
    };
    assert!(count("serve.requests") >= 3.0, "all three runs counted");
    assert!(count("serve.runs") >= 2.0, "successful runs counted");
    assert!(count("serve.errors") >= 1.0, "the bad workload counted");
    assert!(count("engine.iterations") > 0.0, "simulations fed the registry");
    assert!(count("mem.l1.hits") > 0.0, "memory system fed the registry");

    assert_eq!(resps[5].get_bool("ok"), Some(true), "flush");
    assert_eq!(resps[6].get_bool("ok"), Some(true), "shutdown");

    // `shutdown` was honored: the serve loop returns and unlinks the
    // socket.
    server.join().expect("server thread").expect("serve() result");
    assert!(!socket.exists(), "socket removed on shutdown");
}

#[test]
fn daemon_survives_disconnect_without_shutdown() {
    let socket = temp_socket("disconnect");
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || nsc_serve::server::serve(&socket, 1))
    };
    wait_for(&socket);

    // A connection that never says shutdown must not stop the daemon.
    let resps = roundtrip(&socket, &[Request::Status { id: 1 }]).expect("first connection");
    assert_eq!(resps.len(), 1);
    // A second connection still works, and shuts the daemon down.
    let resps =
        roundtrip(&socket, &[Request::Shutdown { id: 2 }]).expect("second connection");
    assert_eq!(resps[0].get_bool("ok"), Some(true));
    server.join().expect("server thread").expect("serve() result");
}
