//! Overload behavior against live daemons: bounded admission with
//! typed sheds, deadline enforcement at dequeue, draining shutdown,
//! idempotent resubmission, and the client retry loop. Each test runs
//! its own daemon on its own socket with an explicit [`ServeConfig`]
//! (never env vars — tests in one binary run in parallel threads).

use near_stream::ExecMode;
use nsc_serve::client::{roundtrip, roundtrip_retry, RetryPolicy};
use nsc_serve::server::ServeConfig;
use nsc_serve::Request;
use nsc_sim::json::{parse, Json};
use nsc_workloads::Size;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_socket(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("nscd-load-{tag}-{}.sock", std::process::id()));
    // A stale socket file (earlier panicked run + recycled pid) would
    // satisfy `wait_for` before the daemon binds; clear it first so the
    // path can only reappear as a live listener.
    let _ = std::fs::remove_file(&path);
    path
}

fn wait_for(socket: &Path) {
    // Wait for a live listener, not just the socket file: `exists()`
    // can win the race against the daemon thread between its `bind`
    // and the accept loop coming up, and a stale file would satisfy it
    // with no listener behind it at all. The probe connection is
    // dropped unused; the daemon sees it end at EOF.
    let mut last = None;
    for _ in 0..400 {
        match UnixStream::connect(socket) {
            Ok(_) => return,
            Err(e) => last = Some(e),
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("daemon never came up on {} (last error: {last:?})", socket.display());
}

fn start_daemon(
    tag: &str,
    cfg: ServeConfig,
) -> (PathBuf, std::thread::JoinHandle<std::io::Result<()>>) {
    let socket = temp_socket(tag);
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || nsc_serve::server::serve_with(&socket, cfg))
    };
    wait_for(&socket);
    (socket, server)
}

fn shutdown(socket: &Path, server: std::thread::JoinHandle<std::io::Result<()>>) {
    let resps = roundtrip(socket, &[Request::Shutdown { id: 99 }]).expect("shutdown");
    assert_eq!(resps[0].get_bool("ok"), Some(true));
    server.join().expect("server thread").expect("serve() result");
}

fn run(id: u64, rid: u64, workload: &str, deadline_ms: u64) -> Request {
    Request::Run {
        id,
        request_id: rid,
        workload: workload.to_owned(),
        size: Size::Tiny,
        mode: ExecMode::Ns,
        deadline_ms,
    }
}

#[test]
fn full_admission_queue_sheds_with_retry_hint() {
    // One worker, one queue slot: the first run occupies both; every
    // further cold submit must shed immediately with a typed
    // `overloaded` response and a retry_after_ms hint — never queue.
    let cfg = ServeConfig { jobs: 1, max_conns: 8, queue_cap: 1, deadline_ms: 0, sample_ms: 0, timeline_cap: 16 };
    let (socket, server) = start_daemon("admission", cfg);
    let resps = roundtrip(
        &socket,
        &[run(1, 0, "histogram", 0), run(2, 0, "bin_tree", 0), run(3, 0, "hash_join", 0)],
    )
    .expect("round trip");
    assert_eq!(resps.len(), 3, "every request gets a terminal response");
    assert_eq!(resps[0].get_bool("ok"), Some(true), "got {}", resps[0].render());
    for shed in &resps[1..] {
        assert_eq!(shed.get_bool("ok"), Some(false), "got {}", shed.render());
        assert_eq!(shed.get_str("shed"), Some("overloaded"), "got {}", shed.render());
        assert!(
            shed.get_num("retry_after_ms").unwrap_or(0) >= 1,
            "shed must carry a backoff hint: {}",
            shed.render()
        );
        assert!(nsc_serve::is_retryable_shed(shed));
    }
    // The shed slots were returned: the daemon accepts work again.
    let resps = roundtrip(&socket, &[run(1, 0, "bin_tree", 0)]).expect("after sheds");
    assert_eq!(resps[0].get_bool("ok"), Some(true), "got {}", resps[0].render());
    shutdown(&socket, server);
}

#[test]
fn expired_deadline_sheds_at_dequeue_with_span() {
    // One worker: the second run waits behind the first, its 1ms budget
    // expires in the queue, and it is shed *before* simulating — with
    // the deadline stamped into its span tree.
    let cfg = ServeConfig { jobs: 1, max_conns: 8, queue_cap: 32, deadline_ms: 0, sample_ms: 0, timeline_cap: 16 };
    let (socket, server) = start_daemon("deadline", cfg);
    let resps = roundtrip(
        &socket,
        &[run(1, 0, "histogram", 0), run(2, 0, "bin_tree", 1), run(3, 0, "sssp", 0)],
    )
    .expect("round trip");
    assert_eq!(resps.len(), 3);
    assert_eq!(resps[0].get_bool("ok"), Some(true), "got {}", resps[0].render());
    let shed = &resps[1];
    assert_eq!(shed.get_bool("ok"), Some(false), "got {}", shed.render());
    assert_eq!(shed.get_str("shed"), Some("deadline_exceeded"), "got {}", shed.render());
    assert!(
        !nsc_serve::is_retryable_shed(shed),
        "an expired deadline is terminal, not retryable"
    );
    let latency = shed.get_str("latency").expect("deadline sheds carry their span tree");
    let tree = parse(latency).expect("latency parses");
    let spans = tree.get("spans").and_then(Json::as_arr).expect("spans");
    assert!(
        spans
            .iter()
            .any(|s| s.get("name").and_then(Json::as_str) == Some("deadline_exceeded")),
        "deadline_exceeded span missing: {latency}"
    );
    assert!(
        spans.iter().any(|s| s.get("name").and_then(Json::as_str) == Some("queue_wait")),
        "queue_wait span missing: {latency}"
    );
    // A run with no deadline behind the shed one still completes.
    assert_eq!(resps[2].get_bool("ok"), Some(true), "got {}", resps[2].render());
    shutdown(&socket, server);
}

#[test]
fn shutdown_rejects_new_submits_while_draining() {
    let cfg = ServeConfig { jobs: 1, max_conns: 8, queue_cap: 32, deadline_ms: 0, sample_ms: 0, timeline_cap: 16 };
    let (socket, server) = start_daemon("drain", cfg);
    // Connection A stays interactive: submit one run, leave the
    // connection open.
    let mut a = UnixStream::connect(&socket).expect("conn a");
    writeln!(a, "{}", run(1, 0, "histogram", 0).render()).expect("submit run 1");
    a.flush().expect("flush");
    // Connection B requests shutdown and sees it acknowledged.
    let resps = roundtrip(&socket, &[Request::Shutdown { id: 1 }]).expect("shutdown");
    assert_eq!(resps[0].get_bool("ok"), Some(true));
    // Back on A: a submit *after* the shutdown ack must be rejected
    // typed — the flag is global and immediate, not racing the drain.
    writeln!(a, "{}", run(2, 0, "bin_tree", 0).render()).expect("submit run 2");
    a.flush().expect("flush");
    a.shutdown(std::net::Shutdown::Write).expect("half-close");
    let mut lines = Vec::new();
    for line in BufReader::new(a).lines() {
        lines.push(line.expect("read"));
    }
    assert_eq!(lines.len(), 2, "both submits get terminal responses: {lines:?}");
    // The in-flight run drained and delivered...
    assert!(lines[0].contains("\"ok\":true"), "run 1 must complete: {}", lines[0]);
    // ...while the post-shutdown submit was refused, typed.
    assert!(lines[1].contains("\"ok\":false"), "got: {}", lines[1]);
    assert!(lines[1].contains("\"shed\":\"shutting_down\""), "got: {}", lines[1]);
    server.join().expect("server thread").expect("serve() result");
    assert!(!socket.exists(), "socket removed on shutdown");
}

#[test]
fn resubmitted_request_id_replays_without_resimulating() {
    let cfg = ServeConfig { jobs: 2, max_conns: 8, queue_cap: 32, deadline_ms: 0, sample_ms: 0, timeline_cap: 16 };
    let (socket, server) = start_daemon("dedup", cfg);
    let rid = 0xFACE;
    let first = roundtrip(&socket, &[run(7, rid, "histogram", 0)]).expect("first submit");
    assert_eq!(first[0].get_bool("ok"), Some(true), "got {}", first[0].render());
    assert_eq!(first[0].get_bool("deduped"), None);
    let blob = first[0].get_str("blob").expect("blob").to_owned();

    // Same rid on a NEW connection — the lost-response retry shape.
    let second = roundtrip(&socket, &[run(31, rid, "histogram", 0)]).expect("resubmit");
    let replay = &second[0];
    assert_eq!(replay.get_bool("ok"), Some(true), "got {}", replay.render());
    assert_eq!(replay.get_bool("deduped"), Some(true), "got {}", replay.render());
    assert_eq!(replay.get_num("id"), Some(31), "correlation id rewritten for the new batch");
    assert_eq!(replay.get_str("blob"), Some(blob.as_str()), "replayed result is bit-identical");

    // The dedup is observable in the global registry.
    let metrics = roundtrip(&socket, &[Request::Metrics { id: 1 }]).expect("metrics");
    let snap = parse(metrics[0].get_str("snapshot").expect("snapshot")).expect("snapshot json");
    let replays = snap
        .get("counters")
        .and_then(Json::as_obj)
        .and_then(|c| c.get("serve.dedup_replays"))
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    assert!(replays >= 1.0, "serve.dedup_replays must count the replay, got {replays}");

    // Within ONE connection the same rid is still a duplicate error
    // (same-batch duplicates are bugs, not retries).
    let batch =
        roundtrip(&socket, &[run(1, 0xB0B, "bin_tree", 0), run(2, 0xB0B, "bin_tree", 0)])
            .expect("dup batch");
    assert_eq!(batch[0].get_bool("ok"), Some(true));
    assert_eq!(batch[1].get_bool("ok"), Some(false));
    assert!(
        batch[1].get_str("error").unwrap_or("").contains("duplicate request_id"),
        "got {}",
        batch[1].render()
    );
    shutdown(&socket, server);
}

#[test]
fn client_retry_drains_through_an_overloaded_daemon() {
    // Saturate a one-worker, one-slot daemon, then let the retry loop
    // (deterministic seed, tight backoff) carry every request to a
    // terminal success.
    let cfg = ServeConfig { jobs: 1, max_conns: 8, queue_cap: 1, deadline_ms: 0, sample_ms: 0, timeline_cap: 16 };
    let (socket, server) = start_daemon("retry", cfg);
    let reqs =
        [run(1, 0xA1, "histogram", 0), run(2, 0xA2, "bin_tree", 0), run(3, 0xA3, "sssp", 0)];
    let policy = RetryPolicy {
        max_retries: 10,
        base_ms: 10,
        cap_ms: 200,
        jitter_pct: 20,
        seed: 7,
        read_timeout_ms: 30_000,
    };
    let outcome = roundtrip_retry(&socket, &reqs, &policy).expect("retry roundtrip");
    assert_eq!(outcome.resps.len(), 3);
    assert!(
        outcome.retries >= 1,
        "a saturated daemon must force at least one retry (retries={})",
        outcome.retries
    );
    for (req, resp) in reqs.iter().zip(&outcome.resps) {
        assert_eq!(
            resp.get_bool("ok"),
            Some(true),
            "request {} must converge to success, got {}",
            req.id(),
            resp.render()
        );
    }
    shutdown(&socket, server);
}
