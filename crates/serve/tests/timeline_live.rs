//! Timeline and health ops against a live daemon with a real sampler
//! thread: frames accumulate under traffic with monotone seq/t_ms, the
//! `since` cursor pages exactly the unseen frames, `health` returns a
//! parseable verdict, and `NSC_SAMPLE_MS=0` (as `sample_ms: 0`) leaves
//! the timeline empty forever.

use near_stream::ExecMode;
use nsc_serve::client::roundtrip;
use nsc_serve::server::ServeConfig;
use nsc_serve::Request;
use nsc_sim::json::{parse, Json};
use nsc_workloads::Size;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_socket(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("nscd-tl-{tag}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

fn wait_for(socket: &Path) {
    let mut last = None;
    for _ in 0..400 {
        match UnixStream::connect(socket) {
            Ok(_) => return,
            Err(e) => last = Some(e),
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("daemon never came up on {} (last error: {last:?})", socket.display());
}

fn start_daemon(
    tag: &str,
    cfg: ServeConfig,
) -> (PathBuf, std::thread::JoinHandle<std::io::Result<()>>) {
    let socket = temp_socket(tag);
    let server = {
        let socket = socket.clone();
        std::thread::spawn(move || nsc_serve::server::serve_with(&socket, cfg))
    };
    wait_for(&socket);
    (socket, server)
}

fn shutdown(socket: &Path, server: std::thread::JoinHandle<std::io::Result<()>>) {
    let resps = roundtrip(socket, &[Request::Shutdown { id: 99 }]).expect("shutdown");
    assert_eq!(resps[0].get_bool("ok"), Some(true));
    server.join().expect("server thread").expect("serve() result");
}

fn run(id: u64, workload: &str) -> Request {
    Request::Run {
        id,
        request_id: 0,
        workload: workload.to_owned(),
        size: Size::Tiny,
        mode: ExecMode::Ns,
        deadline_ms: 0,
    }
}

/// Field access on one parsed ndjson frame line.
fn field(doc: &Json, key: &str) -> Json {
    match doc {
        Json::Obj(map) => map
            .get(key)
            .cloned()
            .unwrap_or_else(|| panic!("frame missing {key}: {doc:?}")),
        other => panic!("expected object, got {other:?}"),
    }
}

fn num(doc: &Json, key: &str) -> f64 {
    match field(doc, key) {
        Json::Num(n) => n,
        other => panic!("{key} not a number: {other:?}"),
    }
}

#[test]
fn live_sampler_accumulates_frames_and_cursor_pages_them() {
    let cfg = ServeConfig {
        jobs: 1,
        max_conns: 8,
        queue_cap: 32,
        deadline_ms: 0,
        sample_ms: 20,
        timeline_cap: 512,
    };
    let (socket, server) = start_daemon("sampler", cfg);
    // A little traffic so at least one window carries deltas.
    let resps =
        roundtrip(&socket, &[run(1, "histogram"), run(2, "bin_tree")]).expect("runs");
    assert_eq!(resps.len(), 2);
    for r in &resps {
        assert_eq!(r.get_bool("ok"), Some(true), "got {}", r.render());
    }

    // Poll until the ring holds at least 3 frames AND both runs'
    // deltas have been sampled into a window (the sampler runs on real
    // time, and a delivery that lands just after a sample only shows up
    // in the *next* frame; bound the wait rather than asserting a fixed
    // schedule).
    let mut tl = None;
    for _ in 0..250 {
        let r = roundtrip(&socket, &[Request::Timeline { id: 7, since: 0 }])
            .expect("timeline op")
            .remove(0);
        assert_eq!(r.get_bool("ok"), Some(true), "got {}", r.render());
        let sampled_requests: f64 = r
            .get_str("frames")
            .unwrap_or("")
            .lines()
            .map(|l| num(&parse(l).expect("frame line"), "requests"))
            .sum();
        if r.get_num("count").unwrap_or(0) >= 3 && sampled_requests >= 2.0 {
            tl = Some(r);
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let tl = tl.expect("sampler never captured 3 frames covering both runs");
    assert_eq!(tl.get_num("sample_ms"), Some(20));
    assert_eq!(tl.get_num("cap"), Some(512));

    // Frames parse as ndjson with strictly monotone seq and
    // nondecreasing timestamps.
    let frames: Vec<Json> = tl
        .get_str("frames")
        .expect("frames field")
        .lines()
        .map(|l| parse(l).unwrap_or_else(|e| panic!("unparseable frame {l}: {e:?}")))
        .collect();
    assert_eq!(frames.len() as u64, tl.get_num("count").unwrap());
    let mut prev_seq = 0.0;
    let mut prev_t = -1.0;
    for f in &frames {
        assert_eq!(field(f, "schema"), Json::Str("nsc-timeline-v1".to_owned()));
        let seq = num(f, "seq");
        let t = num(f, "t_ms");
        assert!(seq > prev_seq, "seq must be strictly monotone");
        assert!(t >= prev_t, "t_ms must be nondecreasing");
        prev_seq = seq;
        prev_t = t;
    }
    assert_eq!(tl.get_num("latest_seq"), Some(prev_seq as u64));
    // The traffic we sent is visible in some window's request delta.
    let total_requests: f64 = frames.iter().map(|f| num(f, "requests")).sum();
    assert!(total_requests >= 2.0, "runs must show up in frame deltas: {}", tl.render());

    // Cursor: asking from seq 2 returns exactly the frames after it.
    let page = roundtrip(&socket, &[Request::Timeline { id: 8, since: 2 }])
        .expect("timeline since")
        .remove(0);
    let first = page.get_str("frames").unwrap().lines().next().map(|l| parse(l).unwrap());
    assert_eq!(num(first.as_ref().expect("nonempty page"), "seq"), 3.0);
    // Asking from the latest seq returns only frames sampled since.
    let latest = tl.get_num("latest_seq").unwrap();
    let tail = roundtrip(&socket, &[Request::Timeline { id: 9, since: latest }])
        .expect("timeline tail")
        .remove(0);
    for l in tail.get_str("frames").unwrap().lines() {
        assert!(num(&parse(l).unwrap(), "seq") > latest as f64);
    }

    // Health: a parseable verdict with per-rule evidence lines.
    let h = roundtrip(&socket, &[Request::Health { id: 10 }]).expect("health op").remove(0);
    assert_eq!(h.get_bool("ok"), Some(true), "got {}", h.render());
    let verdict = h.get_str("verdict").expect("verdict").to_owned();
    assert!(
        ["ok", "degraded", "failing"].contains(&verdict.as_str()),
        "unexpected verdict {verdict}"
    );
    assert!(h.get_num("frames_seen").unwrap_or(0) >= 3);
    let rules = h.get_str("rules").expect("rules ndjson").to_owned();
    let lines: Vec<Json> = rules.lines().map(|l| parse(l).expect("rule line")).collect();
    assert!(lines.len() >= 2, "expected rule lines + verdict line, got {rules}");
    let last = lines.last().unwrap();
    assert_eq!(field(last, "verdict"), Json::Str(verdict.clone()));
    assert_eq!(field(last, "schema"), Json::Str("nsc-timeline-v1".to_owned()));

    shutdown(&socket, server);
}

#[test]
fn sample_ms_zero_disables_the_sampler_entirely() {
    let cfg = ServeConfig {
        jobs: 1,
        max_conns: 8,
        queue_cap: 32,
        deadline_ms: 0,
        sample_ms: 0,
        timeline_cap: 16,
    };
    let (socket, server) = start_daemon("disabled", cfg);
    let resps = roundtrip(&socket, &[run(1, "histogram")]).expect("run");
    assert_eq!(resps[0].get_bool("ok"), Some(true));
    std::thread::sleep(Duration::from_millis(60));
    let tl = roundtrip(&socket, &[Request::Timeline { id: 2, since: 0 }])
        .expect("timeline op")
        .remove(0);
    assert_eq!(tl.get_num("count"), Some(0), "got {}", tl.render());
    assert_eq!(tl.get_num("latest_seq"), Some(0));
    assert_eq!(tl.get_num("sample_ms"), Some(0));
    assert_eq!(tl.get_str("frames"), Some(""), "got {}", tl.render());
    // Health still answers: ok with zero frames of evidence.
    let h = roundtrip(&socket, &[Request::Health { id: 3 }]).expect("health op").remove(0);
    assert_eq!(h.get_str("verdict"), Some("ok"), "got {}", h.render());
    assert_eq!(h.get_num("frames_seen"), Some(0));
    shutdown(&socket, server);
}
