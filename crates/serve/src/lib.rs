//! `nscd`: the near-stream simulation service.
//!
//! The evaluation harnesses call [`near_stream::RunRequest`] in
//! process; this crate puts the same engine behind a Unix socket so
//! simulations can be submitted from shell scripts, other languages, or
//! several processes at once — all sharing one worker pool and one
//! result cache. Two binaries:
//!
//! * `nscd` — the daemon ([`server::serve`]): accepts connections on a
//!   Unix socket, reads newline-delimited JSON requests, fans `run`
//!   requests across the shared [`nsc_sim::pool::ThreadPool`],
//!   consults the content-addressed result cache ([`nsc_sim::cache`])
//!   before simulating, and streams responses back **in submission
//!   order** per connection.
//! * `nsc-client` — a thin CLI ([`client`]): `submit`, `status`,
//!   `flush`, `shutdown` subcommands speaking the same protocol.
//!
//! # Wire protocol
//!
//! One JSON object per line (see [`json`] for the exact subset), client
//! to daemon:
//!
//! ```text
//! {"op":"run","id":1,"request_id":81985529216486895,"workload":"histogram","size":"tiny","mode":"NS"}
//! {"op":"status","id":2}
//! {"op":"metrics","id":3}
//! {"op":"logs","id":4}
//! {"op":"trace","id":5,"request_id":81985529216486895}
//! {"op":"inspect","id":6}
//! {"op":"inspect","id":7,"key":"00c5…32 hex digits…9e"}
//! {"op":"timeline","id":8,"since":41}
//! {"op":"health","id":9}
//! {"op":"flush","id":10}
//! {"op":"shutdown","id":11}
//! ```
//!
//! and back, in submission order:
//!
//! ```text
//! {"id":1,"ok":true,"request_id":81985529216486895,"cached":false,"workload":"histogram","mode":"NS","blob":"schema=nsc-run-v1\n...","latency":"{...}"}
//! {"id":2,"ok":true,"served":12,"cache_hits":8,"cache_misses":4,"jobs":8,...}
//! {"id":3,"ok":true,"schema":"nsc-metrics-v1","snapshot":"{...}"}
//! {"id":4,"ok":true,"count":17,"dropped":0,"lines":"{...}\n{...}\n"}
//! {"id":5,"ok":true,"request_id":81985529216486895,"wall_us":812,"spans":9,"tree":"{...}"}
//! {"id":6,"ok":true,"enabled":true,"hot_hits":8,"hot_bytes":41320,"cold_evictions":2,...,"hottest":"00c5…9e:5 77ab…01:2"}
//! {"id":8,"ok":true,"count":2,"latest_seq":43,"cap":900,"sample_ms":1000,"frames":"{...}\n{...}\n"}
//! {"id":9,"ok":true,"verdict":"ok","frames_seen":43,"rules":"{...}\n{...}\n"}
//! ```
//!
//! Both sides of the protocol have typed spellings: [`Request`] for the
//! client-to-daemon lines and [`Response`] for the daemon-to-client
//! lines; each `render`s to exactly the flat object above and `parse`s
//! back losslessly. The `inspect` op reports the tiered result cache
//! (per-tier hits/misses/bytes/evictions, budgets, hottest keys, and —
//! with an optional 32-hex-digit `"key"` — one entry's residency).
//!
//! The `snapshot` of a `metrics` response is a full
//! [`nsc_sim::metrics`] registry snapshot (schema `nsc-metrics-v1`)
//! rendered as single-line JSON and carried as an escaped string field:
//! the wire protocol itself stays flat (strings/integers/booleans
//! only), and the client re-parses the nested document with
//! [`nsc_sim::json::parse`]. The `latency` of a `run` response and the
//! `tree` of a `trace` response travel the same way: they carry one
//! request's span tree ([`nsc_sim::span`], schema `nsc-span-v1`), and
//! are the *same* tree — the daemon seals it once, at delivery time.
//! The `lines` of a `logs` response is a newline-joined drain of the
//! [`nsc_sim::log`] flight recorder.
//!
//! Every `run` carries a 64-bit `request_id`, minted by the client (the
//! daemon mints one when the field is absent or zero) and echoed in the
//! response; it keys the daemon's bounded per-request trace store that
//! the `trace` op reads. A `request_id` reused within one connection is
//! rejected with a typed error. `trace` accepts an optional
//! `"perfetto":true` flag asking for a combined Chrome trace-event
//! document (serve spans + that run's sim events on one timeline).
//!
//! # Overload behavior
//!
//! A `run` may carry `"deadline_ms":N`; if the run is still queued when
//! that budget (measured from line arrival) expires, it is shed before
//! simulating. When the daemon's bounded admission queue
//! (`NSC_QUEUE_CAP`) is full, cache hits are still answered inline
//! (degraded mode) and misses get an immediate typed shed. Shed
//! responses are `ok:false` plus a `"shed"` reason — `"overloaded"`
//! (with a `"retry_after_ms"` hint), `"deadline_exceeded"`, or
//! `"shutting_down"` — see [`shed_obj`]. A completed `request_id`
//! resubmitted on a later connection is answered by replaying the
//! stored response (`"deduped":true`) instead of re-simulating, which
//! is what makes client retries after a lost response idempotent.
//!
//! The `blob` of a `run` response is the result-cache record
//! ([`near_stream::request::encode`]): every `f64` travels by bit
//! pattern, so a client-side [`near_stream::request::decode`] recovers
//! the daemon's [`RunResult`] exactly. `status` and `flush` responses
//! ride the same ordered response stream, which makes `flush` a drain
//! barrier: by the time its response arrives, every earlier `run` on
//! that connection has completed and been delivered.

pub mod client;
pub mod json;
pub mod server;

use json::Obj;
use near_stream::request::{self, CachedRun};
use near_stream::{ExecMode, RunResult};
use nsc_bench::size_from_str;
use nsc_sim::cache::{self, CacheStore, TierStats, TieredCache};
use nsc_sim::span::SpanTrace;
use nsc_sim::fault::FaultStats;
use nsc_workloads::Size;

/// The spelling of a [`Size`] on the wire (inverse of
/// [`nsc_bench::size_from_str`]).
pub fn size_label(size: Size) -> &'static str {
    match size {
        Size::Tiny => "tiny",
        Size::Small => "small",
        Size::Paper => "paper",
    }
}

/// A parsed protocol request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Simulate `workload` at `size` under `mode` (cache-aware).
    Run {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// Request trace id (0 = unset; the daemon mints one). Unique
        /// per connection; keys the daemon's trace store.
        request_id: u64,
        /// Table VI workload name.
        workload: String,
        /// Input scale.
        size: Size,
        /// Execution mode.
        mode: ExecMode,
        /// Per-request deadline in milliseconds, measured from the
        /// moment the request line started arriving (0 = the daemon's
        /// `NSC_DEADLINE_MS` default, which itself defaults to none).
        /// An admitted run whose deadline has already passed at dequeue
        /// is shed with a typed `deadline_exceeded` response instead of
        /// simulating.
        deadline_ms: u64,
    },
    /// Report served/cache/pool counters.
    Status {
        /// Correlation id.
        id: u64,
    },
    /// Dump the daemon's full metrics-registry snapshot.
    Metrics {
        /// Correlation id.
        id: u64,
    },
    /// Drain the daemon's log flight recorder.
    Logs {
        /// Correlation id.
        id: u64,
    },
    /// Fetch one request's sealed span tree from the trace store.
    Trace {
        /// Correlation id.
        id: u64,
        /// The run to look up.
        request_id: u64,
        /// Also return a combined Perfetto document (serve spans + that
        /// run's simulator events).
        perfetto: bool,
    },
    /// Report tiered result-cache statistics (per-tier counters,
    /// budgets, hottest keys; optionally one key's residency).
    Inspect {
        /// Correlation id.
        id: u64,
        /// Optional 32-hex-digit cache key to probe individually.
        key: Option<String>,
    },
    /// Fetch sampled telemetry frames newer than a cursor
    /// (`nsc-timeline-v1`; see [`nsc_sim::timeline`]).
    Timeline {
        /// Correlation id.
        id: u64,
        /// Cursor: the highest frame `seq` the client has already
        /// seen (0 = everything the ring retains).
        since: u64,
    },
    /// Evaluate the daemon's SLO rules into a typed verdict.
    Health {
        /// Correlation id.
        id: u64,
    },
    /// Drain: respond once every earlier request has been answered.
    Flush {
        /// Correlation id.
        id: u64,
    },
    /// Graceful shutdown: drain in-flight runs, then stop accepting.
    Shutdown {
        /// Correlation id.
        id: u64,
    },
}

impl Request {
    /// Parses one request line. `Err((id, message))` carries the
    /// request's id when one could be extracted (0 otherwise) so the
    /// server can still correlate the error response.
    pub fn parse(line: &str) -> Result<Request, (u64, String)> {
        let obj = Obj::parse(line).ok_or((0, format!("malformed request line: {line:?}")))?;
        let id = obj.get_num("id").ok_or((0, "missing numeric \"id\"".to_owned()))?;
        let op = obj.get_str("op").ok_or((id, "missing \"op\"".to_owned()))?;
        match op {
            "run" => {
                let workload = obj
                    .get_str("workload")
                    .ok_or((id, "run needs \"workload\"".to_owned()))?
                    .to_owned();
                let size_s = obj.get_str("size").unwrap_or("small");
                let size = size_from_str(size_s)
                    .ok_or((id, format!("unknown size: {size_s:?} (want tiny|small|full)")))?;
                let mode_s = obj.get_str("mode").unwrap_or("NS");
                let mode = ExecMode::parse(mode_s)
                    .ok_or((id, format!("unknown mode: {mode_s:?}")))?;
                let request_id = obj.get_num("request_id").unwrap_or(0);
                let deadline_ms = obj.get_num("deadline_ms").unwrap_or(0);
                Ok(Request::Run { id, request_id, workload, size, mode, deadline_ms })
            }
            "status" => Ok(Request::Status { id }),
            "metrics" => Ok(Request::Metrics { id }),
            "logs" => Ok(Request::Logs { id }),
            "trace" => {
                let request_id = obj
                    .get_num("request_id")
                    .ok_or((id, "trace needs numeric \"request_id\"".to_owned()))?;
                let perfetto = obj.get_bool("perfetto").unwrap_or(false);
                Ok(Request::Trace { id, request_id, perfetto })
            }
            "inspect" => {
                let key = obj.get_str("key").map(str::to_owned);
                Ok(Request::Inspect { id, key })
            }
            "timeline" => {
                let since = obj.get_num("since").unwrap_or(0);
                Ok(Request::Timeline { id, since })
            }
            "health" => Ok(Request::Health { id }),
            "flush" => Ok(Request::Flush { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err((id, format!("unknown op: {other:?}"))),
        }
    }

    /// Renders the request as one protocol line (client side).
    pub fn render(&self) -> String {
        match self {
            Request::Run { id, request_id, workload, size, mode, deadline_ms } => {
                let mut o = Obj::new()
                    .str("op", "run")
                    .num("id", *id)
                    .str("workload", workload)
                    .str("size", size_label(*size))
                    .str("mode", mode.label());
                if *request_id != 0 {
                    o = o.num("request_id", *request_id);
                }
                if *deadline_ms != 0 {
                    o = o.num("deadline_ms", *deadline_ms);
                }
                o.render()
            }
            Request::Status { id } => Obj::new().str("op", "status").num("id", *id).render(),
            Request::Metrics { id } => Obj::new().str("op", "metrics").num("id", *id).render(),
            Request::Logs { id } => Obj::new().str("op", "logs").num("id", *id).render(),
            Request::Trace { id, request_id, perfetto } => {
                let mut o = Obj::new()
                    .str("op", "trace")
                    .num("id", *id)
                    .num("request_id", *request_id);
                if *perfetto {
                    o = o.bool("perfetto", true);
                }
                o.render()
            }
            Request::Inspect { id, key } => {
                let mut o = Obj::new().str("op", "inspect").num("id", *id);
                if let Some(k) = key {
                    o = o.str("key", k);
                }
                o.render()
            }
            Request::Timeline { id, since } => {
                let mut o = Obj::new().str("op", "timeline").num("id", *id);
                if *since != 0 {
                    o = o.num("since", *since);
                }
                o.render()
            }
            Request::Health { id } => Obj::new().str("op", "health").num("id", *id).render(),
            Request::Flush { id } => Obj::new().str("op", "flush").num("id", *id).render(),
            Request::Shutdown { id } => Obj::new().str("op", "shutdown").num("id", *id).render(),
        }
    }

    /// The request's correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Run { id, .. }
            | Request::Status { id }
            | Request::Metrics { id }
            | Request::Logs { id }
            | Request::Trace { id, .. }
            | Request::Inspect { id, .. }
            | Request::Timeline { id, .. }
            | Request::Health { id }
            | Request::Flush { id }
            | Request::Shutdown { id } => *id,
        }
    }
}

/// One key's residency in the tiered cache, as reported by `inspect`
/// with a `"key"` argument.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct KeyReport {
    /// The probed key (32 hex digits).
    pub key: String,
    /// Resident in the in-memory hot tier.
    pub in_hot: bool,
    /// Present in the on-disk cold tier.
    pub in_cold: bool,
    /// Stored size in bytes (cold file size if on disk).
    pub bytes: u64,
    /// Hot-tier hits since the key was (re)admitted.
    pub hits: u64,
}

/// The payload of an `inspect` response: the daemon's tiered
/// result-cache state, flattened onto the wire as `hot_*` / `cold_*`
/// fields plus budgets and a space-joined `"hex:hits"` hottest list.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct InspectBody {
    /// Whether cache consultation is armed in the daemon process.
    pub enabled: bool,
    /// Hot-tier (in-memory LRU) counters and occupancy.
    pub hot: TierStats,
    /// Cold-tier (on-disk) counters and occupancy.
    pub cold: TierStats,
    /// Hot-tier byte budget (`0` = tier disabled).
    pub mem_budget: u64,
    /// Cold-tier byte budget (`0` = unbounded).
    pub disk_budget: u64,
    /// Whether cold-tier records are stored compressed.
    pub compress: bool,
    /// Hottest hot-tier keys, `"<hex>:<hits>"` space-joined, hottest
    /// first (empty when the hot tier is cold or disabled).
    pub hottest: String,
    /// Residency of the individually probed key, when one was given.
    pub key: Option<KeyReport>,
}

/// A parsed protocol response — the daemon-to-client mirror of
/// [`Request`]. The daemon renders each handler's outcome through this
/// type (one flat object per line, same shapes as documented in the
/// module docs) and clients parse lines back into it losslessly.
#[derive(Clone, Debug, PartialEq)]
pub enum Response {
    /// A completed `run`: the result blob plus its provenance.
    Run {
        /// Correlation id, echoed from the request.
        id: u64,
        /// The run's trace id (client-minted or daemon-minted).
        request_id: u64,
        /// Whether the result was replayed from the result cache.
        cached: bool,
        /// Whether an idempotent resubmission replayed a stored
        /// response instead of re-simulating.
        deduped: bool,
        /// Workload name, echoed.
        workload: String,
        /// Execution mode, echoed.
        mode: ExecMode,
        /// The run's simulated cycle count.
        cycles: u64,
        /// The result-cache record ([`near_stream::request::encode`]).
        blob: String,
        /// The sealed span tree (`nsc-span-v1` JSON), appended by the
        /// daemon at delivery time; absent until then.
        latency: Option<String>,
    },
    /// Daemon counters (`status`).
    Status {
        /// Correlation id.
        id: u64,
        /// Runs completed since startup.
        served: u64,
        /// Result-cache hits (both tiers).
        cache_hits: u64,
        /// Result-cache misses (no tier could answer).
        cache_misses: u64,
        /// Worker-pool width.
        jobs: u64,
        /// Whether the result cache is armed.
        cache_enabled: bool,
        /// Milliseconds since the daemon started.
        uptime_ms: u64,
        /// Runs currently simulating.
        in_flight: u64,
        /// Runs admitted but not yet completed.
        queue_depth: u64,
        /// Admission-queue capacity.
        queue_cap: u64,
        /// Live connections.
        conns: u64,
        /// Connection cap.
        max_conns: u64,
    },
    /// A full metrics-registry snapshot (`metrics`).
    Metrics {
        /// Correlation id.
        id: u64,
        /// Snapshot schema (`nsc-metrics-v1`).
        schema: String,
        /// The registry snapshot as escaped single-line JSON.
        snapshot: String,
    },
    /// A drain of the log flight recorder (`logs`).
    Logs {
        /// Correlation id.
        id: u64,
        /// Records drained.
        count: u64,
        /// Records lost to ring overflow since the last drain.
        dropped: u64,
        /// Newline-joined rendered records.
        lines: String,
    },
    /// One request's sealed span tree (`trace`).
    Trace {
        /// Correlation id.
        id: u64,
        /// The traced run.
        request_id: u64,
        /// End-to-end wall time in microseconds.
        wall_us: u64,
        /// Span count.
        spans: u64,
        /// Simulator trace events captured for the run.
        sim_events: u64,
        /// The span tree (`nsc-span-v1` JSON).
        tree: String,
        /// Combined Chrome trace-event document, when requested.
        perfetto: Option<String>,
    },
    /// Tiered result-cache statistics (`inspect`).
    Inspect {
        /// Correlation id.
        id: u64,
        /// The cache report.
        body: InspectBody,
    },
    /// Sampled telemetry frames (`timeline`).
    Timeline {
        /// Correlation id.
        id: u64,
        /// Frames returned (those with `seq > since`).
        count: u64,
        /// Highest frame `seq` the daemon has recorded (the client's
        /// next cursor), 0 when the sampler has not fired yet.
        latest_seq: u64,
        /// Ring capacity (`NSC_TIMELINE_CAP`).
        cap: u64,
        /// Sampler interval in ms (0 = sampling disabled).
        sample_ms: u64,
        /// The frames as `nsc-timeline-v1` ndjson (one frame per
        /// line), carried as an escaped string field like `metrics`'
        /// `snapshot`.
        frames: String,
    },
    /// An SLO evaluation (`health`).
    Health {
        /// Correlation id.
        id: u64,
        /// Typed verdict: `ok`, `degraded` or `failing`.
        verdict: String,
        /// Number of frames the evaluation could see.
        frames_seen: u64,
        /// Per-rule evidence plus the verdict line, as ndjson (same
        /// document [`nsc_sim::timeline::HealthReport::to_ndjson`]
        /// renders).
        rules: String,
    },
    /// The drain barrier answered (`flush`).
    Flush {
        /// Correlation id.
        id: u64,
        /// This response's sequence number on the connection (= how
        /// many requests preceded it).
        flushed: u64,
    },
    /// Graceful-shutdown acknowledgement (`shutdown`).
    Shutdown {
        /// Correlation id.
        id: u64,
    },
    /// A typed overload shed: `ok:false` plus a machine-readable
    /// reason clients use to decide whether to retry.
    Shed {
        /// Correlation id.
        id: u64,
        /// The shed run's trace id (0 = none extracted).
        request_id: u64,
        /// `"overloaded"`, `"deadline_exceeded"`, or `"shutting_down"`.
        reason: String,
        /// Human-readable explanation.
        error: String,
        /// Backoff hint in milliseconds (0 = none).
        retry_after_ms: u64,
    },
    /// A genuine request error.
    Error {
        /// Correlation id (0 when none could be extracted).
        id: u64,
        /// The failing run's trace id (0 = not a run / none known).
        request_id: u64,
        /// What went wrong.
        error: String,
    },
}

impl Response {
    /// Builds the wire object (unrendered so the daemon can append
    /// delivery-time fields such as a `run`'s `latency`).
    pub fn to_obj(&self) -> Obj {
        match self {
            Response::Run {
                id,
                request_id,
                cached,
                deduped,
                workload,
                mode,
                cycles,
                blob,
                latency,
            } => {
                let mut o = Obj::new()
                    .num("id", *id)
                    .bool("ok", true)
                    .num("request_id", *request_id)
                    .bool("cached", *cached)
                    .str("workload", workload)
                    .str("mode", mode.label())
                    .num("cycles", *cycles)
                    .str("blob", blob);
                if let Some(l) = latency {
                    o = o.str("latency", l);
                }
                if *deduped {
                    o = o.bool("deduped", true);
                }
                o
            }
            Response::Status {
                id,
                served,
                cache_hits,
                cache_misses,
                jobs,
                cache_enabled,
                uptime_ms,
                in_flight,
                queue_depth,
                queue_cap,
                conns,
                max_conns,
            } => Obj::new()
                .num("id", *id)
                .bool("ok", true)
                .num("served", *served)
                .num("cache_hits", *cache_hits)
                .num("cache_misses", *cache_misses)
                .num("jobs", *jobs)
                .bool("cache_enabled", *cache_enabled)
                .num("uptime_ms", *uptime_ms)
                .num("in_flight", *in_flight)
                .num("queue_depth", *queue_depth)
                .num("queue_cap", *queue_cap)
                .num("conns", *conns)
                .num("max_conns", *max_conns),
            Response::Metrics { id, schema, snapshot } => Obj::new()
                .num("id", *id)
                .bool("ok", true)
                .str("schema", schema)
                .str("snapshot", snapshot),
            Response::Logs { id, count, dropped, lines } => Obj::new()
                .num("id", *id)
                .bool("ok", true)
                .num("count", *count)
                .num("dropped", *dropped)
                .str("lines", lines),
            Response::Trace {
                id,
                request_id,
                wall_us,
                spans,
                sim_events,
                tree,
                perfetto,
            } => {
                let mut o = Obj::new()
                    .num("id", *id)
                    .bool("ok", true)
                    .num("request_id", *request_id)
                    .num("wall_us", *wall_us)
                    .num("spans", *spans)
                    .num("sim_events", *sim_events)
                    .str("tree", tree);
                if let Some(p) = perfetto {
                    o = o.str("perfetto", p);
                }
                o
            }
            Response::Inspect { id, body } => {
                let mut o = Obj::new()
                    .num("id", *id)
                    .bool("ok", true)
                    .bool("enabled", body.enabled)
                    .num("hot_hits", body.hot.hits)
                    .num("hot_misses", body.hot.misses)
                    .num("hot_stores", body.hot.stores)
                    .num("hot_evictions", body.hot.evictions)
                    .num("hot_bytes", body.hot.bytes)
                    .num("hot_entries", body.hot.entries)
                    .num("mem_budget", body.mem_budget)
                    .num("cold_hits", body.cold.hits)
                    .num("cold_misses", body.cold.misses)
                    .num("cold_stores", body.cold.stores)
                    .num("cold_evictions", body.cold.evictions)
                    .num("cold_bytes", body.cold.bytes)
                    .num("cold_entries", body.cold.entries)
                    .num("disk_budget", body.disk_budget)
                    .bool("compress", body.compress)
                    .str("hottest", &body.hottest);
                if let Some(k) = &body.key {
                    o = o
                        .str("key", &k.key)
                        .bool("key_in_hot", k.in_hot)
                        .bool("key_in_cold", k.in_cold)
                        .num("key_bytes", k.bytes)
                        .num("key_hits", k.hits);
                }
                o
            }
            Response::Timeline { id, count, latest_seq, cap, sample_ms, frames } => Obj::new()
                .num("id", *id)
                .bool("ok", true)
                .num("count", *count)
                .num("latest_seq", *latest_seq)
                .num("cap", *cap)
                .num("sample_ms", *sample_ms)
                .str("frames", frames),
            Response::Health { id, verdict, frames_seen, rules } => Obj::new()
                .num("id", *id)
                .bool("ok", true)
                .str("verdict", verdict)
                .num("frames_seen", *frames_seen)
                .str("rules", rules),
            Response::Flush { id, flushed } => {
                Obj::new().num("id", *id).bool("ok", true).num("flushed", *flushed)
            }
            Response::Shutdown { id } => Obj::new().num("id", *id).bool("ok", true),
            Response::Shed { id, request_id, reason, error, retry_after_ms } => {
                let mut o = Obj::new()
                    .num("id", *id)
                    .bool("ok", false)
                    .str("error", error)
                    .str("shed", reason);
                if *request_id != 0 {
                    o = o.num("request_id", *request_id);
                }
                if *retry_after_ms != 0 {
                    o = o.num("retry_after_ms", *retry_after_ms);
                }
                o
            }
            Response::Error { id, request_id, error } => {
                let mut o = Obj::new().num("id", *id).bool("ok", false).str("error", error);
                if *request_id != 0 {
                    o = o.num("request_id", *request_id);
                }
                o
            }
        }
    }

    /// Renders the response as one protocol line (daemon side).
    pub fn render(&self) -> String {
        self.to_obj().render()
    }

    /// Classifies and parses one already-parsed wire object. The
    /// discriminant is structural (which fields are present), because
    /// the wire format predates this type and carries no `op` tag.
    pub fn from_obj(obj: &Obj) -> Option<Response> {
        let id = obj.get_num("id")?;
        let ok = obj.get_bool("ok")?;
        if !ok {
            let error = obj.get_str("error").unwrap_or_default().to_owned();
            let request_id = obj.get_num("request_id").unwrap_or(0);
            return Some(match obj.get_str("shed") {
                Some(reason) => Response::Shed {
                    id,
                    request_id,
                    reason: reason.to_owned(),
                    error,
                    retry_after_ms: obj.get_num("retry_after_ms").unwrap_or(0),
                },
                None => Response::Error { id, request_id, error },
            });
        }
        if let Some(blob) = obj.get_str("blob") {
            return Some(Response::Run {
                id,
                request_id: obj.get_num("request_id")?,
                cached: obj.get_bool("cached")?,
                deduped: obj.get_bool("deduped").unwrap_or(false),
                workload: obj.get_str("workload")?.to_owned(),
                mode: ExecMode::parse(obj.get_str("mode")?)?,
                cycles: obj.get_num("cycles")?,
                blob: blob.to_owned(),
                latency: obj.get_str("latency").map(str::to_owned),
            });
        }
        if let Some(snapshot) = obj.get_str("snapshot") {
            return Some(Response::Metrics {
                id,
                schema: obj.get_str("schema")?.to_owned(),
                snapshot: snapshot.to_owned(),
            });
        }
        if let Some(lines) = obj.get_str("lines") {
            return Some(Response::Logs {
                id,
                count: obj.get_num("count")?,
                dropped: obj.get_num("dropped")?,
                lines: lines.to_owned(),
            });
        }
        if let Some(tree) = obj.get_str("tree") {
            return Some(Response::Trace {
                id,
                request_id: obj.get_num("request_id")?,
                wall_us: obj.get_num("wall_us")?,
                spans: obj.get_num("spans")?,
                sim_events: obj.get_num("sim_events")?,
                tree: tree.to_owned(),
                perfetto: obj.get_str("perfetto").map(str::to_owned),
            });
        }
        if obj.get_num("hot_hits").is_some() {
            let tier = |prefix: &str| -> Option<TierStats> {
                Some(TierStats {
                    hits: obj.get_num(&format!("{prefix}_hits"))?,
                    misses: obj.get_num(&format!("{prefix}_misses"))?,
                    stores: obj.get_num(&format!("{prefix}_stores"))?,
                    evictions: obj.get_num(&format!("{prefix}_evictions"))?,
                    bytes: obj.get_num(&format!("{prefix}_bytes"))?,
                    entries: obj.get_num(&format!("{prefix}_entries"))?,
                })
            };
            let key = obj.get_str("key").map(|k| KeyReport {
                key: k.to_owned(),
                in_hot: obj.get_bool("key_in_hot").unwrap_or(false),
                in_cold: obj.get_bool("key_in_cold").unwrap_or(false),
                bytes: obj.get_num("key_bytes").unwrap_or(0),
                hits: obj.get_num("key_hits").unwrap_or(0),
            });
            return Some(Response::Inspect {
                id,
                body: InspectBody {
                    enabled: obj.get_bool("enabled")?,
                    hot: tier("hot")?,
                    cold: tier("cold")?,
                    mem_budget: obj.get_num("mem_budget")?,
                    disk_budget: obj.get_num("disk_budget")?,
                    compress: obj.get_bool("compress")?,
                    hottest: obj.get_str("hottest").unwrap_or_default().to_owned(),
                    key,
                },
            });
        }
        if let Some(frames) = obj.get_str("frames") {
            return Some(Response::Timeline {
                id,
                count: obj.get_num("count")?,
                latest_seq: obj.get_num("latest_seq")?,
                cap: obj.get_num("cap")?,
                sample_ms: obj.get_num("sample_ms")?,
                frames: frames.to_owned(),
            });
        }
        if let Some(verdict) = obj.get_str("verdict") {
            return Some(Response::Health {
                id,
                verdict: verdict.to_owned(),
                frames_seen: obj.get_num("frames_seen")?,
                rules: obj.get_str("rules").unwrap_or_default().to_owned(),
            });
        }
        if let Some(flushed) = obj.get_num("flushed") {
            return Some(Response::Flush { id, flushed });
        }
        if obj.get_num("served").is_some() {
            return Some(Response::Status {
                id,
                served: obj.get_num("served")?,
                cache_hits: obj.get_num("cache_hits")?,
                cache_misses: obj.get_num("cache_misses")?,
                jobs: obj.get_num("jobs")?,
                cache_enabled: obj.get_bool("cache_enabled")?,
                uptime_ms: obj.get_num("uptime_ms")?,
                in_flight: obj.get_num("in_flight")?,
                queue_depth: obj.get_num("queue_depth")?,
                queue_cap: obj.get_num("queue_cap")?,
                conns: obj.get_num("conns")?,
                max_conns: obj.get_num("max_conns")?,
            });
        }
        Some(Response::Shutdown { id })
    }

    /// Parses one response line ([`Response::from_obj`] on the parsed
    /// object).
    pub fn parse(line: &str) -> Option<Response> {
        Response::from_obj(&Obj::parse(line)?)
    }

    /// The response's correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Response::Run { id, .. }
            | Response::Status { id, .. }
            | Response::Metrics { id, .. }
            | Response::Logs { id, .. }
            | Response::Trace { id, .. }
            | Response::Inspect { id, .. }
            | Response::Timeline { id, .. }
            | Response::Health { id, .. }
            | Response::Flush { id, .. }
            | Response::Shutdown { id }
            | Response::Shed { id, .. }
            | Response::Error { id, .. } => *id,
        }
    }
}

/// Builds the `inspect` report from a live [`TieredCache`] handle (the
/// daemon calls this at delivery time; `nsc-client inspect --local`
/// reads the same report in process).
pub fn inspect_body(store: &TieredCache, key: Option<&str>) -> Result<InspectBody, String> {
    let key = match key {
        None => None,
        Some(hex) => {
            let k = cache::Key::parse_hex(hex)
                .ok_or_else(|| format!("bad cache key (want 32 hex digits): {hex:?}"))?;
            let p = store.probe(&k);
            Some(KeyReport {
                key: k.hex(),
                in_hot: p.in_hot,
                in_cold: p.in_cold,
                bytes: p.bytes,
                hits: p.hits,
            })
        }
    };
    let stats = store.stats();
    let hottest = store
        .hottest(5)
        .into_iter()
        .map(|(k, hits)| format!("{}:{hits}", k.hex()))
        .collect::<Vec<_>>()
        .join(" ");
    Ok(InspectBody {
        enabled: cache::enabled(),
        hot: stats.hot,
        cold: stats.cold,
        mem_budget: store.mem_budget(),
        disk_budget: store.disk_budget(),
        compress: store.compression(),
        hottest,
        key,
    })
}

/// The outcome of one `run` request, before serialization.
#[derive(Debug)]
pub struct RunOutcome {
    /// The run's metrics.
    pub result: RunResult,
    /// Whether the result was replayed from the cache.
    pub cached: bool,
}

/// Executes one run request in this process: looks the workload up,
/// compiles it, and runs it cache-aware (a stored result is replayed
/// without simulating). This is the daemon's backend, and also what
/// `nsc-client submit --local` calls.
pub fn execute(workload: &str, size: Size, mode: ExecMode) -> Result<RunOutcome, String> {
    execute_spanned(workload, size, mode, &mut SpanTrace::begin(0))
}

/// [`execute`] with per-phase attribution: records `pool_dispatch`
/// (workload lookup + kernel compilation), `cache_probe` (result-cache
/// digest + lookup) and `simulate` (the run itself, cache-aware) spans
/// into `spans`. The simulation is untouched — only wall-clock fences
/// are added around it — so results stay byte-identical with or without
/// a live trace.
pub fn execute_spanned(
    workload: &str,
    size: Size,
    mode: ExecMode,
    spans: &mut SpanTrace,
) -> Result<RunOutcome, String> {
    let t0 = nsc_sim::span::now_us();
    let found = nsc_workloads::all(size).into_iter().find(|w| w.name == workload);
    let Some(w) = found else {
        spans.push("pool_dispatch", t0, nsc_sim::span::now_us());
        let known: Vec<_> = nsc_workloads::all(size).iter().map(|w| w.name).collect();
        return Err(format!(
            "unknown workload: {workload:?} (known: {})",
            known.join(", ")
        ));
    };
    let p = nsc_bench::prepare(w);
    let cfg = nsc_bench::system_for(size);
    let req = p.request(mode, &cfg);
    spans.push("pool_dispatch", t0, nsc_sim::span::now_us());
    let cached =
        spans.time("cache_probe", || cache::enabled() && cache::shared().contains(&req.key()));
    let result = spans
        .time("simulate", || req.try_run_cached())
        .map_err(|e| e.to_string())?;
    Ok(RunOutcome { result, cached })
}

/// Builds a successful `run` response (unrendered: the daemon appends
/// the `latency` field at delivery time, once the span tree is sealed).
pub fn run_response(id: u64, request_id: u64, workload: &str, mode: ExecMode, out: &RunOutcome) -> Obj {
    Response::Run {
        id,
        request_id,
        cached: out.cached,
        deduped: false,
        workload: workload.to_owned(),
        mode,
        cycles: out.result.cycles,
        blob: request::encode(&out.result, &FaultStats::default()),
        latency: None,
    }
    .to_obj()
}

/// Builds an error response (unrendered, for callers that append fields).
pub fn error_obj(id: u64, msg: &str) -> Obj {
    Response::Error { id, request_id: 0, error: msg.to_owned() }.to_obj()
}

/// Builds a typed shed response: `ok:false` with a machine-readable
/// `shed` reason (`"overloaded"`, `"deadline_exceeded"`,
/// `"shutting_down"`) so clients can distinguish "back off and retry"
/// from a genuine request error. A non-zero `retry_after_ms` carries
/// the daemon's backoff hint (its current queue backlog times the
/// smoothed per-run wall time).
pub fn shed_obj(id: u64, request_id: u64, reason: &str, msg: &str, retry_after_ms: u64) -> Obj {
    Response::Shed {
        id,
        request_id,
        reason: reason.to_owned(),
        error: msg.to_owned(),
        retry_after_ms,
    }
    .to_obj()
}

/// Whether `response` is a shed a client may retry after backing off
/// (`overloaded` / `shutting_down`). A `deadline_exceeded` shed is
/// deliberately *not* retryable: the caller's time budget is spent.
pub fn is_retryable_shed(response: &Obj) -> bool {
    response.get_bool("ok") == Some(false)
        && matches!(response.get_str("shed"), Some("overloaded" | "shutting_down"))
}

/// Whether a run request would be answered from the result cache
/// without simulating — the saturation-time probe behind the daemon's
/// degraded mode (cache hits keep flowing while misses are shed). Any
/// fault plan installed on the calling thread participates in the key,
/// exactly as it would on the run path.
pub fn cache_would_hit(workload: &str, size: Size, mode: ExecMode) -> bool {
    if !cache::enabled() {
        return false;
    }
    let Some(w) = nsc_workloads::all(size).into_iter().find(|w| w.name == workload) else {
        return false;
    };
    let p = nsc_bench::prepare(w);
    let cfg = nsc_bench::system_for(size);
    // The shared handle answers warm probes from the hot tier without
    // touching disk, which is what keeps degraded mode cheap.
    cache::shared().contains(&p.request(mode, &cfg).key())
}

/// Renders an error response line.
pub fn error_response(id: u64, msg: &str) -> String {
    error_obj(id, msg).render()
}

/// Decodes the `blob` of a `run` response back into the daemon's exact
/// [`RunResult`].
pub fn decode_response_blob(resp: &Obj) -> Option<CachedRun> {
    request::decode(resp.get_str("blob")?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_roundtrip() {
        let reqs = [
            Request::Run {
                id: 3,
                request_id: 0,
                workload: "histogram".into(),
                size: Size::Tiny,
                mode: ExecMode::Ns,
                deadline_ms: 0,
            },
            Request::Run {
                id: 8,
                request_id: 0x0123_4567_89AB_CDEF,
                workload: "bin_tree".into(),
                size: Size::Small,
                mode: ExecMode::Base,
                deadline_ms: 0,
            },
            Request::Run {
                id: 12,
                request_id: 7,
                workload: "sssp".into(),
                size: Size::Tiny,
                mode: ExecMode::Ns,
                deadline_ms: 1500,
            },
            Request::Status { id: 4 },
            Request::Metrics { id: 5 },
            Request::Logs { id: 9 },
            Request::Trace { id: 10, request_id: 77, perfetto: false },
            Request::Trace { id: 11, request_id: 78, perfetto: true },
            Request::Inspect { id: 13, key: None },
            Request::Inspect { id: 14, key: Some("00112233445566778899aabbccddeeff".into()) },
            Request::Timeline { id: 15, since: 0 },
            Request::Timeline { id: 16, since: 42 },
            Request::Health { id: 17 },
            Request::Flush { id: 6 },
            Request::Shutdown { id: 7 },
        ];
        for r in reqs {
            let line = r.render();
            assert_eq!(Request::parse(&line), Ok(r), "line: {line}");
        }
    }

    #[test]
    fn response_lines_roundtrip() {
        let tier = |seed: u64| TierStats {
            hits: seed,
            misses: seed + 1,
            stores: seed + 2,
            evictions: seed + 3,
            bytes: seed * 100,
            entries: seed + 4,
        };
        let resps = [
            Response::Run {
                id: 1,
                request_id: 0x0123_4567_89AB_CDEF,
                cached: true,
                deduped: false,
                workload: "histogram".into(),
                mode: ExecMode::Ns,
                cycles: 123_456,
                blob: "schema=nsc-run-v1\ncycles=123456\n".into(),
                latency: None,
            },
            Response::Run {
                id: 2,
                request_id: 7,
                cached: false,
                deduped: true,
                workload: "sssp".into(),
                mode: ExecMode::Base,
                cycles: 9,
                blob: "schema=nsc-run-v1\n".into(),
                latency: Some("{\"schema\":\"nsc-span-v1\"}".into()),
            },
            Response::Status {
                id: 3,
                served: 12,
                cache_hits: 8,
                cache_misses: 4,
                jobs: 8,
                cache_enabled: true,
                uptime_ms: 5000,
                in_flight: 1,
                queue_depth: 2,
                queue_cap: 64,
                conns: 3,
                max_conns: 32,
            },
            Response::Metrics {
                id: 4,
                schema: "nsc-metrics-v1".into(),
                snapshot: "{\"counters\":{}}".into(),
            },
            Response::Logs { id: 5, count: 17, dropped: 0, lines: "a\nb\n".into() },
            Response::Trace {
                id: 6,
                request_id: 77,
                wall_us: 812,
                spans: 9,
                sim_events: 40,
                tree: "{\"schema\":\"nsc-span-v1\"}".into(),
                perfetto: None,
            },
            Response::Inspect {
                id: 7,
                body: InspectBody {
                    enabled: true,
                    hot: tier(10),
                    cold: tier(20),
                    mem_budget: 64 << 20,
                    disk_budget: 0,
                    compress: true,
                    hottest: "00112233445566778899aabbccddeeff:5".into(),
                    key: None,
                },
            },
            Response::Inspect {
                id: 8,
                body: InspectBody {
                    enabled: false,
                    hot: TierStats::default(),
                    cold: TierStats::default(),
                    mem_budget: 0,
                    disk_budget: 4096,
                    compress: false,
                    hottest: String::new(),
                    key: Some(KeyReport {
                        key: "00112233445566778899aabbccddeeff".into(),
                        in_hot: true,
                        in_cold: false,
                        bytes: 812,
                        hits: 3,
                    }),
                },
            },
            Response::Timeline {
                id: 15,
                count: 2,
                latest_seq: 9,
                cap: 900,
                sample_ms: 1000,
                frames: "{\"schema\":\"nsc-timeline-v1\",\"seq\":8}\n{\"schema\":\"nsc-timeline-v1\",\"seq\":9}\n".into(),
            },
            Response::Timeline {
                id: 16,
                count: 0,
                latest_seq: 0,
                cap: 900,
                sample_ms: 0,
                frames: String::new(),
            },
            Response::Health {
                id: 17,
                verdict: "degraded".into(),
                frames_seen: 5,
                rules: "{\"rule\":\"p99_us\",\"breached\":true}\n".into(),
            },
            Response::Flush { id: 9, flushed: 4 },
            Response::Shutdown { id: 10 },
            Response::Shed {
                id: 11,
                request_id: 0xBEEF,
                reason: "overloaded".into(),
                error: "admission queue full".into(),
                retry_after_ms: 120,
            },
            Response::Error { id: 12, request_id: 0, error: "unknown op".into() },
            Response::Error { id: 13, request_id: 55, error: "unknown request_id".into() },
        ];
        for r in resps {
            let line = r.render();
            assert_eq!(Response::parse(&line), Some(r), "line: {line}");
        }
    }

    #[test]
    fn response_id_covers_every_variant() {
        assert_eq!(Response::Shutdown { id: 42 }.id(), 42);
        assert_eq!(Response::Flush { id: 7, flushed: 1 }.id(), 7);
        assert_eq!(
            Response::Error { id: 9, request_id: 0, error: "x".into() }.id(),
            9
        );
    }

    #[test]
    fn inspect_body_rejects_bad_keys() {
        let dir = std::env::temp_dir().join(format!("nsc-inspect-{}", std::process::id()));
        let store = TieredCache::with_config(dir.clone(), 1 << 20, 0, false);
        assert!(inspect_body(&store, Some("not-hex")).is_err());
        assert!(inspect_body(&store, Some("abcd")).is_err());
        let body = inspect_body(&store, Some(&"ab".repeat(16))).expect("well-formed key");
        let k = body.key.expect("key report present");
        assert!(!k.in_hot && !k.in_cold, "unknown key is resident nowhere");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shed_responses_are_typed_and_classified() {
        let o = shed_obj(4, 0xBEEF, "overloaded", "admission queue full", 120);
        let line = o.render();
        let back = Obj::parse(&line).unwrap();
        assert_eq!(back.get_bool("ok"), Some(false));
        assert_eq!(back.get_str("shed"), Some("overloaded"));
        assert_eq!(back.get_num("retry_after_ms"), Some(120));
        assert_eq!(back.get_num("request_id"), Some(0xBEEF));
        assert!(is_retryable_shed(&back));

        let deadline = shed_obj(5, 1, "deadline_exceeded", "expired in queue", 0);
        assert!(!is_retryable_shed(&deadline), "deadline sheds must not auto-retry");
        assert!(deadline.get_num("retry_after_ms").is_none());

        let draining = shed_obj(6, 2, "shutting_down", "daemon draining", 0);
        assert!(is_retryable_shed(&draining));

        let genuine = error_obj(7, "unknown workload");
        assert!(!is_retryable_shed(&genuine), "plain errors are not sheds");
    }

    #[test]
    fn cache_probe_is_safe_for_unknown_workloads() {
        // Regardless of cache state, probing a nonexistent workload must
        // report a miss (the run path will answer with a typed error).
        assert!(!cache_would_hit("not-a-workload", Size::Tiny, ExecMode::Ns));
    }

    #[test]
    fn trace_without_request_id_is_rejected() {
        let (id, msg) = Request::parse("{\"id\":4,\"op\":\"trace\"}").unwrap_err();
        assert_eq!(id, 4);
        assert!(msg.contains("request_id"), "got: {msg}");
    }

    #[test]
    fn bad_requests_keep_their_id() {
        assert_eq!(Request::parse("not json").unwrap_err().0, 0);
        assert_eq!(Request::parse("{\"op\":\"run\"}").unwrap_err().0, 0);
        let (id, msg) = Request::parse("{\"id\":9,\"op\":\"warp\"}").unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("unknown op"));
        let (id, _) = Request::parse("{\"id\":9,\"op\":\"run\",\"workload\":\"x\",\"size\":\"huge\"}")
            .unwrap_err();
        assert_eq!(id, 9);
    }

    #[test]
    fn run_response_blob_is_exact() {
        let out = execute("histogram", Size::Tiny, ExecMode::Ns).expect("run");
        let line = run_response(1, 0xABCD, "histogram", ExecMode::Ns, &out).render();
        let resp = Obj::parse(&line).expect("response parses");
        assert_eq!(resp.get_bool("ok"), Some(true));
        assert_eq!(resp.get_num("request_id"), Some(0xABCD));
        let back = decode_response_blob(&resp).expect("blob decodes");
        // Bit-exact round trip: the re-encoded record matches byte for
        // byte (RunResult has no PartialEq; the codec is the equality).
        assert_eq!(
            request::encode(&back.result, &FaultStats::default()),
            request::encode(&out.result, &FaultStats::default()),
        );
    }

    #[test]
    fn execute_rejects_unknown_workload() {
        let err = execute("nope", Size::Tiny, ExecMode::Base).unwrap_err();
        assert!(err.contains("unknown workload"), "got: {err}");
    }

    #[test]
    fn execute_spanned_records_backend_phases() {
        let mut spans = SpanTrace::begin(42);
        execute_spanned("histogram", Size::Tiny, ExecMode::Ns, &mut spans).expect("run");
        let tree = spans.finish();
        for name in ["pool_dispatch", "cache_probe", "simulate"] {
            assert!(tree.span(name).is_some(), "missing span {name}");
        }
        assert!(tree.spans_total_us() <= tree.wall_us);
    }
}
