//! `nscd`: the near-stream simulation service.
//!
//! The evaluation harnesses call [`near_stream::RunRequest`] in
//! process; this crate puts the same engine behind a Unix socket so
//! simulations can be submitted from shell scripts, other languages, or
//! several processes at once — all sharing one worker pool and one
//! result cache. Two binaries:
//!
//! * `nscd` — the daemon ([`server::serve`]): accepts connections on a
//!   Unix socket, reads newline-delimited JSON requests, fans `run`
//!   requests across the shared [`nsc_sim::pool::ThreadPool`],
//!   consults the content-addressed result cache ([`nsc_sim::cache`])
//!   before simulating, and streams responses back **in submission
//!   order** per connection.
//! * `nsc-client` — a thin CLI ([`client`]): `submit`, `status`,
//!   `flush`, `shutdown` subcommands speaking the same protocol.
//!
//! # Wire protocol
//!
//! One JSON object per line (see [`json`] for the exact subset), client
//! to daemon:
//!
//! ```text
//! {"op":"run","id":1,"request_id":81985529216486895,"workload":"histogram","size":"tiny","mode":"NS"}
//! {"op":"status","id":2}
//! {"op":"metrics","id":3}
//! {"op":"logs","id":4}
//! {"op":"trace","id":5,"request_id":81985529216486895}
//! {"op":"flush","id":6}
//! {"op":"shutdown","id":7}
//! ```
//!
//! and back, in submission order:
//!
//! ```text
//! {"id":1,"ok":true,"request_id":81985529216486895,"cached":false,"workload":"histogram","mode":"NS","blob":"schema=nsc-run-v1\n...","latency":"{...}"}
//! {"id":2,"ok":true,"served":12,"cache_hits":8,"cache_misses":4,"jobs":8,...}
//! {"id":3,"ok":true,"schema":"nsc-metrics-v1","snapshot":"{...}"}
//! {"id":4,"ok":true,"count":17,"dropped":0,"lines":"{...}\n{...}\n"}
//! {"id":5,"ok":true,"request_id":81985529216486895,"wall_us":812,"spans":9,"tree":"{...}"}
//! ```
//!
//! The `snapshot` of a `metrics` response is a full
//! [`nsc_sim::metrics`] registry snapshot (schema `nsc-metrics-v1`)
//! rendered as single-line JSON and carried as an escaped string field:
//! the wire protocol itself stays flat (strings/integers/booleans
//! only), and the client re-parses the nested document with
//! [`nsc_sim::json::parse`]. The `latency` of a `run` response and the
//! `tree` of a `trace` response travel the same way: they carry one
//! request's span tree ([`nsc_sim::span`], schema `nsc-span-v1`), and
//! are the *same* tree — the daemon seals it once, at delivery time.
//! The `lines` of a `logs` response is a newline-joined drain of the
//! [`nsc_sim::log`] flight recorder.
//!
//! Every `run` carries a 64-bit `request_id`, minted by the client (the
//! daemon mints one when the field is absent or zero) and echoed in the
//! response; it keys the daemon's bounded per-request trace store that
//! the `trace` op reads. A `request_id` reused within one connection is
//! rejected with a typed error. `trace` accepts an optional
//! `"perfetto":true` flag asking for a combined Chrome trace-event
//! document (serve spans + that run's sim events on one timeline).
//!
//! # Overload behavior
//!
//! A `run` may carry `"deadline_ms":N`; if the run is still queued when
//! that budget (measured from line arrival) expires, it is shed before
//! simulating. When the daemon's bounded admission queue
//! (`NSC_QUEUE_CAP`) is full, cache hits are still answered inline
//! (degraded mode) and misses get an immediate typed shed. Shed
//! responses are `ok:false` plus a `"shed"` reason — `"overloaded"`
//! (with a `"retry_after_ms"` hint), `"deadline_exceeded"`, or
//! `"shutting_down"` — see [`shed_obj`]. A completed `request_id`
//! resubmitted on a later connection is answered by replaying the
//! stored response (`"deduped":true`) instead of re-simulating, which
//! is what makes client retries after a lost response idempotent.
//!
//! The `blob` of a `run` response is the result-cache record
//! ([`near_stream::request::encode`]): every `f64` travels by bit
//! pattern, so a client-side [`near_stream::request::decode`] recovers
//! the daemon's [`RunResult`] exactly. `status` and `flush` responses
//! ride the same ordered response stream, which makes `flush` a drain
//! barrier: by the time its response arrives, every earlier `run` on
//! that connection has completed and been delivered.

pub mod client;
pub mod json;
pub mod server;

use json::Obj;
use near_stream::request::{self, CachedRun};
use near_stream::{ExecMode, RunResult};
use nsc_bench::size_from_str;
use nsc_sim::span::SpanTrace;
use nsc_sim::{cache, fault::FaultStats};
use nsc_workloads::Size;

/// The spelling of a [`Size`] on the wire (inverse of
/// [`nsc_bench::size_from_str`]).
pub fn size_label(size: Size) -> &'static str {
    match size {
        Size::Tiny => "tiny",
        Size::Small => "small",
        Size::Paper => "paper",
    }
}

/// A parsed protocol request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Simulate `workload` at `size` under `mode` (cache-aware).
    Run {
        /// Client-chosen correlation id, echoed in the response.
        id: u64,
        /// Request trace id (0 = unset; the daemon mints one). Unique
        /// per connection; keys the daemon's trace store.
        request_id: u64,
        /// Table VI workload name.
        workload: String,
        /// Input scale.
        size: Size,
        /// Execution mode.
        mode: ExecMode,
        /// Per-request deadline in milliseconds, measured from the
        /// moment the request line started arriving (0 = the daemon's
        /// `NSC_DEADLINE_MS` default, which itself defaults to none).
        /// An admitted run whose deadline has already passed at dequeue
        /// is shed with a typed `deadline_exceeded` response instead of
        /// simulating.
        deadline_ms: u64,
    },
    /// Report served/cache/pool counters.
    Status {
        /// Correlation id.
        id: u64,
    },
    /// Dump the daemon's full metrics-registry snapshot.
    Metrics {
        /// Correlation id.
        id: u64,
    },
    /// Drain the daemon's log flight recorder.
    Logs {
        /// Correlation id.
        id: u64,
    },
    /// Fetch one request's sealed span tree from the trace store.
    Trace {
        /// Correlation id.
        id: u64,
        /// The run to look up.
        request_id: u64,
        /// Also return a combined Perfetto document (serve spans + that
        /// run's simulator events).
        perfetto: bool,
    },
    /// Drain: respond once every earlier request has been answered.
    Flush {
        /// Correlation id.
        id: u64,
    },
    /// Graceful shutdown: drain in-flight runs, then stop accepting.
    Shutdown {
        /// Correlation id.
        id: u64,
    },
}

impl Request {
    /// Parses one request line. `Err((id, message))` carries the
    /// request's id when one could be extracted (0 otherwise) so the
    /// server can still correlate the error response.
    pub fn parse(line: &str) -> Result<Request, (u64, String)> {
        let obj = Obj::parse(line).ok_or((0, format!("malformed request line: {line:?}")))?;
        let id = obj.get_num("id").ok_or((0, "missing numeric \"id\"".to_owned()))?;
        let op = obj.get_str("op").ok_or((id, "missing \"op\"".to_owned()))?;
        match op {
            "run" => {
                let workload = obj
                    .get_str("workload")
                    .ok_or((id, "run needs \"workload\"".to_owned()))?
                    .to_owned();
                let size_s = obj.get_str("size").unwrap_or("small");
                let size = size_from_str(size_s)
                    .ok_or((id, format!("unknown size: {size_s:?} (want tiny|small|full)")))?;
                let mode_s = obj.get_str("mode").unwrap_or("NS");
                let mode = ExecMode::parse(mode_s)
                    .ok_or((id, format!("unknown mode: {mode_s:?}")))?;
                let request_id = obj.get_num("request_id").unwrap_or(0);
                let deadline_ms = obj.get_num("deadline_ms").unwrap_or(0);
                Ok(Request::Run { id, request_id, workload, size, mode, deadline_ms })
            }
            "status" => Ok(Request::Status { id }),
            "metrics" => Ok(Request::Metrics { id }),
            "logs" => Ok(Request::Logs { id }),
            "trace" => {
                let request_id = obj
                    .get_num("request_id")
                    .ok_or((id, "trace needs numeric \"request_id\"".to_owned()))?;
                let perfetto = obj.get_bool("perfetto").unwrap_or(false);
                Ok(Request::Trace { id, request_id, perfetto })
            }
            "flush" => Ok(Request::Flush { id }),
            "shutdown" => Ok(Request::Shutdown { id }),
            other => Err((id, format!("unknown op: {other:?}"))),
        }
    }

    /// Renders the request as one protocol line (client side).
    pub fn render(&self) -> String {
        match self {
            Request::Run { id, request_id, workload, size, mode, deadline_ms } => {
                let mut o = Obj::new()
                    .str("op", "run")
                    .num("id", *id)
                    .str("workload", workload)
                    .str("size", size_label(*size))
                    .str("mode", mode.label());
                if *request_id != 0 {
                    o = o.num("request_id", *request_id);
                }
                if *deadline_ms != 0 {
                    o = o.num("deadline_ms", *deadline_ms);
                }
                o.render()
            }
            Request::Status { id } => Obj::new().str("op", "status").num("id", *id).render(),
            Request::Metrics { id } => Obj::new().str("op", "metrics").num("id", *id).render(),
            Request::Logs { id } => Obj::new().str("op", "logs").num("id", *id).render(),
            Request::Trace { id, request_id, perfetto } => {
                let mut o = Obj::new()
                    .str("op", "trace")
                    .num("id", *id)
                    .num("request_id", *request_id);
                if *perfetto {
                    o = o.bool("perfetto", true);
                }
                o.render()
            }
            Request::Flush { id } => Obj::new().str("op", "flush").num("id", *id).render(),
            Request::Shutdown { id } => Obj::new().str("op", "shutdown").num("id", *id).render(),
        }
    }

    /// The request's correlation id.
    pub fn id(&self) -> u64 {
        match self {
            Request::Run { id, .. }
            | Request::Status { id }
            | Request::Metrics { id }
            | Request::Logs { id }
            | Request::Trace { id, .. }
            | Request::Flush { id }
            | Request::Shutdown { id } => *id,
        }
    }
}

/// The outcome of one `run` request, before serialization.
#[derive(Debug)]
pub struct RunOutcome {
    /// The run's metrics.
    pub result: RunResult,
    /// Whether the result was replayed from the cache.
    pub cached: bool,
}

/// Executes one run request in this process: looks the workload up,
/// compiles it, and runs it cache-aware (a stored result is replayed
/// without simulating). This is the daemon's backend, and also what
/// `nsc-client submit --local` calls.
pub fn execute(workload: &str, size: Size, mode: ExecMode) -> Result<RunOutcome, String> {
    execute_spanned(workload, size, mode, &mut SpanTrace::begin(0))
}

/// [`execute`] with per-phase attribution: records `pool_dispatch`
/// (workload lookup + kernel compilation), `cache_probe` (result-cache
/// digest + lookup) and `simulate` (the run itself, cache-aware) spans
/// into `spans`. The simulation is untouched — only wall-clock fences
/// are added around it — so results stay byte-identical with or without
/// a live trace.
pub fn execute_spanned(
    workload: &str,
    size: Size,
    mode: ExecMode,
    spans: &mut SpanTrace,
) -> Result<RunOutcome, String> {
    let t0 = nsc_sim::span::now_us();
    let found = nsc_workloads::all(size).into_iter().find(|w| w.name == workload);
    let Some(w) = found else {
        spans.push("pool_dispatch", t0, nsc_sim::span::now_us());
        let known: Vec<_> = nsc_workloads::all(size).iter().map(|w| w.name).collect();
        return Err(format!(
            "unknown workload: {workload:?} (known: {})",
            known.join(", ")
        ));
    };
    let p = nsc_bench::prepare(w);
    let cfg = nsc_bench::system_for(size);
    let req = p.request(mode, &cfg);
    spans.push("pool_dispatch", t0, nsc_sim::span::now_us());
    let cached = spans.time("cache_probe", || cache::enabled() && cache::contains(&req.key()));
    let result = spans
        .time("simulate", || req.try_run_cached())
        .map_err(|e| e.to_string())?;
    Ok(RunOutcome { result, cached })
}

/// Builds a successful `run` response (unrendered: the daemon appends
/// the `latency` field at delivery time, once the span tree is sealed).
pub fn run_response(id: u64, request_id: u64, workload: &str, mode: ExecMode, out: &RunOutcome) -> Obj {
    Obj::new()
        .num("id", id)
        .bool("ok", true)
        .num("request_id", request_id)
        .bool("cached", out.cached)
        .str("workload", workload)
        .str("mode", mode.label())
        .num("cycles", out.result.cycles)
        .str("blob", &request::encode(&out.result, &FaultStats::default()))
}

/// Builds an error response (unrendered, for callers that append fields).
pub fn error_obj(id: u64, msg: &str) -> Obj {
    Obj::new().num("id", id).bool("ok", false).str("error", msg)
}

/// Builds a typed shed response: `ok:false` with a machine-readable
/// `shed` reason (`"overloaded"`, `"deadline_exceeded"`,
/// `"shutting_down"`) so clients can distinguish "back off and retry"
/// from a genuine request error. A non-zero `retry_after_ms` carries
/// the daemon's backoff hint (its current queue backlog times the
/// smoothed per-run wall time).
pub fn shed_obj(id: u64, request_id: u64, reason: &str, msg: &str, retry_after_ms: u64) -> Obj {
    let mut o = error_obj(id, msg).str("shed", reason);
    if request_id != 0 {
        o = o.num("request_id", request_id);
    }
    if retry_after_ms != 0 {
        o = o.num("retry_after_ms", retry_after_ms);
    }
    o
}

/// Whether `response` is a shed a client may retry after backing off
/// (`overloaded` / `shutting_down`). A `deadline_exceeded` shed is
/// deliberately *not* retryable: the caller's time budget is spent.
pub fn is_retryable_shed(response: &Obj) -> bool {
    response.get_bool("ok") == Some(false)
        && matches!(response.get_str("shed"), Some("overloaded" | "shutting_down"))
}

/// Whether a run request would be answered from the result cache
/// without simulating — the saturation-time probe behind the daemon's
/// degraded mode (cache hits keep flowing while misses are shed). Any
/// fault plan installed on the calling thread participates in the key,
/// exactly as it would on the run path.
pub fn cache_would_hit(workload: &str, size: Size, mode: ExecMode) -> bool {
    if !cache::enabled() {
        return false;
    }
    let Some(w) = nsc_workloads::all(size).into_iter().find(|w| w.name == workload) else {
        return false;
    };
    let p = nsc_bench::prepare(w);
    let cfg = nsc_bench::system_for(size);
    cache::contains(&p.request(mode, &cfg).key())
}

/// Renders an error response line.
pub fn error_response(id: u64, msg: &str) -> String {
    error_obj(id, msg).render()
}

/// Decodes the `blob` of a `run` response back into the daemon's exact
/// [`RunResult`].
pub fn decode_response_blob(resp: &Obj) -> Option<CachedRun> {
    request::decode(resp.get_str("blob")?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_lines_roundtrip() {
        let reqs = [
            Request::Run {
                id: 3,
                request_id: 0,
                workload: "histogram".into(),
                size: Size::Tiny,
                mode: ExecMode::Ns,
                deadline_ms: 0,
            },
            Request::Run {
                id: 8,
                request_id: 0x0123_4567_89AB_CDEF,
                workload: "bin_tree".into(),
                size: Size::Small,
                mode: ExecMode::Base,
                deadline_ms: 0,
            },
            Request::Run {
                id: 12,
                request_id: 7,
                workload: "sssp".into(),
                size: Size::Tiny,
                mode: ExecMode::Ns,
                deadline_ms: 1500,
            },
            Request::Status { id: 4 },
            Request::Metrics { id: 5 },
            Request::Logs { id: 9 },
            Request::Trace { id: 10, request_id: 77, perfetto: false },
            Request::Trace { id: 11, request_id: 78, perfetto: true },
            Request::Flush { id: 6 },
            Request::Shutdown { id: 7 },
        ];
        for r in reqs {
            let line = r.render();
            assert_eq!(Request::parse(&line), Ok(r), "line: {line}");
        }
    }

    #[test]
    fn shed_responses_are_typed_and_classified() {
        let o = shed_obj(4, 0xBEEF, "overloaded", "admission queue full", 120);
        let line = o.render();
        let back = Obj::parse(&line).unwrap();
        assert_eq!(back.get_bool("ok"), Some(false));
        assert_eq!(back.get_str("shed"), Some("overloaded"));
        assert_eq!(back.get_num("retry_after_ms"), Some(120));
        assert_eq!(back.get_num("request_id"), Some(0xBEEF));
        assert!(is_retryable_shed(&back));

        let deadline = shed_obj(5, 1, "deadline_exceeded", "expired in queue", 0);
        assert!(!is_retryable_shed(&deadline), "deadline sheds must not auto-retry");
        assert!(deadline.get_num("retry_after_ms").is_none());

        let draining = shed_obj(6, 2, "shutting_down", "daemon draining", 0);
        assert!(is_retryable_shed(&draining));

        let genuine = error_obj(7, "unknown workload");
        assert!(!is_retryable_shed(&genuine), "plain errors are not sheds");
    }

    #[test]
    fn cache_probe_is_safe_for_unknown_workloads() {
        // Regardless of cache state, probing a nonexistent workload must
        // report a miss (the run path will answer with a typed error).
        assert!(!cache_would_hit("not-a-workload", Size::Tiny, ExecMode::Ns));
    }

    #[test]
    fn trace_without_request_id_is_rejected() {
        let (id, msg) = Request::parse("{\"id\":4,\"op\":\"trace\"}").unwrap_err();
        assert_eq!(id, 4);
        assert!(msg.contains("request_id"), "got: {msg}");
    }

    #[test]
    fn bad_requests_keep_their_id() {
        assert_eq!(Request::parse("not json").unwrap_err().0, 0);
        assert_eq!(Request::parse("{\"op\":\"run\"}").unwrap_err().0, 0);
        let (id, msg) = Request::parse("{\"id\":9,\"op\":\"warp\"}").unwrap_err();
        assert_eq!(id, 9);
        assert!(msg.contains("unknown op"));
        let (id, _) = Request::parse("{\"id\":9,\"op\":\"run\",\"workload\":\"x\",\"size\":\"huge\"}")
            .unwrap_err();
        assert_eq!(id, 9);
    }

    #[test]
    fn run_response_blob_is_exact() {
        let out = execute("histogram", Size::Tiny, ExecMode::Ns).expect("run");
        let line = run_response(1, 0xABCD, "histogram", ExecMode::Ns, &out).render();
        let resp = Obj::parse(&line).expect("response parses");
        assert_eq!(resp.get_bool("ok"), Some(true));
        assert_eq!(resp.get_num("request_id"), Some(0xABCD));
        let back = decode_response_blob(&resp).expect("blob decodes");
        // Bit-exact round trip: the re-encoded record matches byte for
        // byte (RunResult has no PartialEq; the codec is the equality).
        assert_eq!(
            request::encode(&back.result, &FaultStats::default()),
            request::encode(&out.result, &FaultStats::default()),
        );
    }

    #[test]
    fn execute_rejects_unknown_workload() {
        let err = execute("nope", Size::Tiny, ExecMode::Base).unwrap_err();
        assert!(err.contains("unknown workload"), "got: {err}");
    }

    #[test]
    fn execute_spanned_records_backend_phases() {
        let mut spans = SpanTrace::begin(42);
        execute_spanned("histogram", Size::Tiny, ExecMode::Ns, &mut spans).expect("run");
        let tree = spans.finish();
        for name in ["pool_dispatch", "cache_probe", "simulate"] {
            assert!(tree.span(name).is_some(), "missing span {name}");
        }
        assert!(tree.spans_total_us() <= tree.wall_us);
    }
}
