//! Client-side protocol helpers shared by `nsc-client` and the tests.

use crate::json::Obj;
use crate::Request;
use std::io::{self, BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};

/// The daemon socket path: `$NSCD_SOCKET` if set, else `/tmp/nscd.sock`.
pub fn default_socket() -> PathBuf {
    std::env::var_os("NSCD_SOCKET")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("/tmp/nscd.sock"))
}

/// Sends `reqs` over one connection and collects every response line.
///
/// The write half is shut down after the batch so the daemon sees EOF
/// and the response stream terminates; responses come back in
/// submission order, so `out[i]` answers `reqs[i]`.
pub fn roundtrip(socket: &Path, reqs: &[Request]) -> io::Result<Vec<Obj>> {
    let mut stream = UnixStream::connect(socket)?;
    let mut payload = String::with_capacity(reqs.len() * 64);
    for r in reqs {
        payload.push_str(&r.render());
        payload.push('\n');
    }
    stream.write_all(payload.as_bytes())?;
    stream.shutdown(Shutdown::Write)?;
    let reader = BufReader::new(stream);
    let mut out = Vec::with_capacity(reqs.len());
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let obj = Obj::parse(&line).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response line: {line:?}"))
        })?;
        out.push(obj);
    }
    Ok(out)
}
