//! Client-side protocol helpers shared by `nsc-client` and the tests:
//! one-shot roundtrips, read timeouts, and a bounded retry loop with
//! seeded exponential backoff that honors the daemon's
//! `retry_after_ms` hints.
//!
//! Retries are safe because run submissions are idempotent: the daemon
//! keeps completed responses keyed by `request_id`, so resubmitting
//! the *same* request (same rid) after a lost response replays the
//! stored result instead of re-simulating. The backoff schedule is a
//! pure function of [`RetryPolicy`] (including its seed), which is
//! what makes the retry path unit-testable.

use crate::json::Obj;
use crate::{is_retryable_shed, Request};
use nsc_sim::rng::Rng;
use std::io::{self, BufRead, BufReader, Write};
use std::net::Shutdown;
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// The daemon socket path: `$NSCD_SOCKET` if set, else `/tmp/nscd.sock`.
pub fn default_socket() -> PathBuf {
    std::env::var_os("NSCD_SOCKET")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("/tmp/nscd.sock"))
}

/// Sends `reqs` over one connection and collects every response line.
///
/// The write half is shut down after the batch so the daemon sees EOF
/// and the response stream terminates; responses come back in
/// submission order, so `out[i]` answers `reqs[i]`.
pub fn roundtrip(socket: &Path, reqs: &[Request]) -> io::Result<Vec<Obj>> {
    roundtrip_timeout(socket, reqs, 0)
}

/// [`roundtrip`] with a per-read timeout in milliseconds (0 = block
/// forever). A daemon that wedges mid-stream surfaces as a
/// `WouldBlock`/`TimedOut` error instead of hanging the client.
pub fn roundtrip_timeout(socket: &Path, reqs: &[Request], read_timeout_ms: u64) -> io::Result<Vec<Obj>> {
    let mut stream = UnixStream::connect(socket)?;
    if read_timeout_ms > 0 {
        stream.set_read_timeout(Some(Duration::from_millis(read_timeout_ms)))?;
        stream.set_write_timeout(Some(Duration::from_millis(read_timeout_ms)))?;
    }
    let mut payload = String::with_capacity(reqs.len() * 64);
    for r in reqs {
        payload.push_str(&r.render());
        payload.push('\n');
    }
    stream.write_all(payload.as_bytes())?;
    stream.shutdown(Shutdown::Write)?;
    let reader = BufReader::new(stream);
    let mut out = Vec::with_capacity(reqs.len());
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let obj = Obj::parse(&line).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidData, format!("bad response line: {line:?}"))
        })?;
        out.push(obj);
    }
    Ok(out)
}

/// Bounded-retry knobs. The whole schedule — which attempt sleeps how
/// long — is a deterministic function of this struct, seed included.
#[derive(Clone, Copy, Debug)]
pub struct RetryPolicy {
    /// Retry attempts after the first try (`NSC_RETRIES`, default 3).
    pub max_retries: u32,
    /// First backoff step in ms; doubles per attempt
    /// (`NSC_RETRY_BASE_MS`, default 100).
    pub base_ms: u64,
    /// Backoff ceiling in ms (default 5000).
    pub cap_ms: u64,
    /// Jitter added on top of each step, as a percentage of the step
    /// (default 20).
    pub jitter_pct: u64,
    /// Seed for the jitter stream (`NSC_RETRY_SEED`, default 1) —
    /// fixed seed, deterministic schedule.
    pub seed: u64,
    /// Per-read timeout in ms, 0 = block forever
    /// (`NSC_READ_TIMEOUT_MS`, default 30000).
    pub read_timeout_ms: u64,
}

impl Default for RetryPolicy {
    fn default() -> RetryPolicy {
        RetryPolicy {
            max_retries: 3,
            base_ms: 100,
            cap_ms: 5_000,
            jitter_pct: 20,
            seed: 1,
            read_timeout_ms: 30_000,
        }
    }
}

impl RetryPolicy {
    /// Reads the retry knobs from the environment, falling back to the
    /// defaults above.
    pub fn from_env() -> RetryPolicy {
        let num = |key: &str, default: u64| {
            std::env::var(key).ok().and_then(|v| v.trim().parse::<u64>().ok()).unwrap_or(default)
        };
        let d = RetryPolicy::default();
        RetryPolicy {
            max_retries: num("NSC_RETRIES", d.max_retries as u64) as u32,
            base_ms: num("NSC_RETRY_BASE_MS", d.base_ms),
            cap_ms: num("NSC_RETRY_CAP_MS", d.cap_ms),
            jitter_pct: d.jitter_pct,
            seed: num("NSC_RETRY_SEED", d.seed),
            read_timeout_ms: num("NSC_READ_TIMEOUT_MS", d.read_timeout_ms),
        }
    }

    /// The sleep before retry number `attempt` (0-based): exponential
    /// `base_ms << attempt` capped at `cap_ms`, floored by the daemon's
    /// `retry_after_ms` hint, plus seeded jitter. Pure given `rng`'s
    /// state, so a fixed seed yields a fixed schedule.
    pub fn backoff_ms(&self, rng: &mut Rng, attempt: u32, retry_after_ms: u64) -> u64 {
        let exp = self.base_ms.saturating_mul(1u64 << attempt.min(20));
        let step = exp.min(self.cap_ms).max(retry_after_ms.min(self.cap_ms));
        let jitter_span = step.saturating_mul(self.jitter_pct) / 100;
        // `gen_range_u64` requires a non-zero bound.
        let jitter = if jitter_span == 0 { 0 } else { rng.gen_range_u64(jitter_span + 1) };
        step + jitter
    }
}

/// What [`roundtrip_retry`] produced: the terminal response for every
/// request, plus how many resubmissions it took to get there.
pub struct RetryOutcome {
    /// `resps[i]` answers `reqs[i]`; each is terminal (a result, a
    /// typed error, or — if retries ran out — the last typed shed).
    pub resps: Vec<Obj>,
    /// Total resubmitted requests across all attempts.
    pub retries: u64,
}

/// Sends `reqs`, retrying typed retryable sheds (`overloaded`,
/// `shutting_down`), connection errors, and lost responses with
/// exponential backoff until every request has a terminal response or
/// the retry budget is spent.
///
/// Lost responses are safe to resubmit because the daemon dedups on
/// `request_id`; a request whose first submission actually completed
/// gets the stored response back (marked `"deduped":true`) instead of
/// running twice. If retries run out while a request still holds only
/// a retryable shed, that shed is returned as its terminal response; a
/// request with *no* response at all turns the whole call into an
/// error.
pub fn roundtrip_retry(
    socket: &Path,
    reqs: &[Request],
    policy: &RetryPolicy,
) -> io::Result<RetryOutcome> {
    let mut rng = Rng::seed_from_u64(policy.seed);
    let mut slots: Vec<Option<Obj>> = vec![None; reqs.len()];
    let mut pending: Vec<usize> = (0..reqs.len()).collect();
    let mut retries = 0u64;
    for attempt in 0..=policy.max_retries {
        let batch: Vec<Request> = pending.iter().map(|&i| reqs[i].clone()).collect();
        let mut hint = 0u64;
        let mut next_pending: Vec<usize> = Vec::new();
        match roundtrip_timeout(socket, &batch, policy.read_timeout_ms) {
            Ok(resps) => {
                for (pos, &req_idx) in pending.iter().enumerate() {
                    match resps.get(pos) {
                        Some(r) if is_retryable_shed(r) => {
                            hint = hint.max(r.get_num("retry_after_ms").unwrap_or(0));
                            slots[req_idx] = Some(r.clone());
                            next_pending.push(req_idx);
                        }
                        Some(r) => slots[req_idx] = Some(r.clone()),
                        // The stream ended early (daemon died or the
                        // connection was rejected with fewer lines than
                        // requests): resubmit, rid-dedup makes it safe.
                        None => next_pending.push(req_idx),
                    }
                }
            }
            Err(e) => {
                if attempt == policy.max_retries {
                    return Err(e);
                }
                next_pending = pending.clone();
            }
        }
        pending = next_pending;
        if pending.is_empty() || attempt == policy.max_retries {
            break;
        }
        retries += pending.len() as u64;
        let sleep_ms = policy.backoff_ms(&mut rng, attempt, hint);
        std::thread::sleep(Duration::from_millis(sleep_ms));
    }
    let missing = slots.iter().filter(|s| s.is_none()).count();
    if missing > 0 {
        return Err(io::Error::new(
            io::ErrorKind::TimedOut,
            format!("{missing} request(s) got no terminal response after {retries} retries"),
        ));
    }
    Ok(RetryOutcome { resps: slots.into_iter().flatten().collect(), retries })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_schedule_is_deterministic_and_exponential() {
        let p = RetryPolicy { seed: 42, ..RetryPolicy::default() };
        let schedule = |seed: u64| {
            let mut rng = Rng::seed_from_u64(seed);
            (0..4).map(|a| p.backoff_ms(&mut rng, a, 0)).collect::<Vec<_>>()
        };
        let a = schedule(42);
        let b = schedule(42);
        assert_eq!(a, b, "same seed, same schedule");
        // Each step sits in [base<<n, (base<<n) * (1 + jitter_pct/100)].
        for (n, &ms) in a.iter().enumerate() {
            let step = p.base_ms << n;
            assert!(ms >= step && ms <= step + step * p.jitter_pct / 100, "step {n}: {ms}");
        }
        assert_ne!(a, schedule(7), "different seed, different jitter");
    }

    #[test]
    fn backoff_honors_retry_after_hint_and_cap() {
        let p = RetryPolicy { jitter_pct: 0, ..RetryPolicy::default() };
        let mut rng = Rng::seed_from_u64(1);
        // The daemon's hint floors the step.
        assert_eq!(p.backoff_ms(&mut rng, 0, 1_700), 1_700);
        // But never past the cap, and the exponential curve saturates
        // there too.
        assert_eq!(p.backoff_ms(&mut rng, 0, 99_999), p.cap_ms);
        assert_eq!(p.backoff_ms(&mut rng, 30, 0), p.cap_ms);
    }

    #[test]
    fn backoff_zero_jitter_span_is_safe() {
        // jitter_span of 0 must not feed gen_range_u64 a zero bound.
        let p = RetryPolicy { base_ms: 1, jitter_pct: 0, ..RetryPolicy::default() };
        let mut rng = Rng::seed_from_u64(1);
        assert_eq!(p.backoff_ms(&mut rng, 0, 0), 1);
    }
}
