//! A minimal flat-JSON codec for the `nscd` wire protocol.
//!
//! The protocol is newline-delimited JSON, one object per line, with
//! only string / unsigned-integer / boolean values at the top level —
//! no nesting, no arrays, no floats. This module hand-rolls exactly
//! that subset (the build is offline, so serde is not an option) with
//! full string escaping, so result blobs containing newlines travel
//! safely inside one line.

use std::fmt::Write as _;

/// A top-level value in a protocol object.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Val {
    /// A string (stored unescaped).
    Str(String),
    /// An unsigned integer.
    Num(u64),
    /// A boolean.
    Bool(bool),
}

/// An ordered set of `key: value` fields — one protocol line.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Obj {
    fields: Vec<(String, Val)>,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Obj {
        Obj::default()
    }

    /// Appends a string field.
    pub fn str(mut self, key: &str, val: &str) -> Obj {
        self.fields.push((key.to_owned(), Val::Str(val.to_owned())));
        self
    }

    /// Appends an unsigned-integer field.
    pub fn num(mut self, key: &str, val: u64) -> Obj {
        self.fields.push((key.to_owned(), Val::Num(val)));
        self
    }

    /// Appends a boolean field.
    pub fn bool(mut self, key: &str, val: bool) -> Obj {
        self.fields.push((key.to_owned(), Val::Bool(val)));
        self
    }

    /// Replaces the integer field named `key` in place (or appends it),
    /// keeping field order stable — used to rewrite the correlation id
    /// when a stored response is replayed for a resubmitted request.
    pub fn set_num(mut self, key: &str, val: u64) -> Obj {
        match self.fields.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = Val::Num(val),
            None => self.fields.push((key.to_owned(), Val::Num(val))),
        }
        self
    }

    /// The field named `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Val> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// The string field named `key`, if present and a string.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.get(key) {
            Some(Val::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The integer field named `key`, if present and a number.
    pub fn get_num(&self, key: &str) -> Option<u64> {
        match self.get(key) {
            Some(Val::Num(n)) => Some(*n),
            _ => None,
        }
    }

    /// The boolean field named `key`, if present and a boolean.
    pub fn get_bool(&self, key: &str) -> Option<bool> {
        match self.get(key) {
            Some(Val::Bool(b)) => Some(*b),
            _ => None,
        }
    }

    /// Renders the object as one JSON line (no trailing newline).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push('{');
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            escape_into(&mut out, k);
            out.push_str("\":");
            match v {
                Val::Str(s) => {
                    out.push('"');
                    escape_into(&mut out, s);
                    out.push('"');
                }
                Val::Num(n) => {
                    let _ = write!(out, "{n}");
                }
                Val::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            }
        }
        out.push('}');
        out
    }

    /// Parses one JSON object line; `None` on anything outside the
    /// protocol subset (nesting, arrays, floats, trailing garbage).
    pub fn parse(line: &str) -> Option<Obj> {
        let mut p = Parser { s: line.as_bytes(), i: 0 };
        p.skip_ws();
        p.expect(b'{')?;
        let mut obj = Obj::new();
        p.skip_ws();
        if p.peek() == Some(b'}') {
            p.i += 1;
        } else {
            loop {
                p.skip_ws();
                let key = p.string()?;
                p.skip_ws();
                p.expect(b':')?;
                p.skip_ws();
                let val = p.value()?;
                obj.fields.push((key, val));
                p.skip_ws();
                match p.next() {
                    Some(b',') => continue,
                    Some(b'}') => break,
                    _ => return None,
                }
            }
        }
        p.skip_ws();
        if p.i == p.s.len() {
            Some(obj)
        } else {
            None
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

struct Parser<'a> {
    s: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.s.get(self.i).copied()
    }

    fn next(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.i += 1;
        Some(b)
    }

    fn expect(&mut self, b: u8) -> Option<()> {
        if self.next()? == b {
            Some(())
        } else {
            None
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.i += 1;
        }
    }

    fn string(&mut self) -> Option<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.next()? {
                b'"' => return Some(out),
                b'\\' => match self.next()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = (self.next()? as char).to_digit(16)?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code)?);
                    }
                    _ => return None,
                },
                b => {
                    // Re-decode multi-byte UTF-8 from the raw input.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.i - 1;
                        let len = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return None,
                        };
                        let end = start + len;
                        let chunk = self.s.get(start..end)?;
                        out.push_str(std::str::from_utf8(chunk).ok()?);
                        self.i = end;
                    }
                }
            }
        }
    }

    fn value(&mut self) -> Option<Val> {
        match self.peek()? {
            b'"' => Some(Val::Str(self.string()?)),
            b't' => {
                self.literal(b"true")?;
                Some(Val::Bool(true))
            }
            b'f' => {
                self.literal(b"false")?;
                Some(Val::Bool(false))
            }
            b'0'..=b'9' => {
                let start = self.i;
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.i += 1;
                }
                // Floats are outside the protocol subset.
                if matches!(self.peek(), Some(b'.' | b'e' | b'E')) {
                    return None;
                }
                std::str::from_utf8(&self.s[start..self.i]).ok()?.parse().ok().map(Val::Num)
            }
            _ => None,
        }
    }

    fn literal(&mut self, lit: &[u8]) -> Option<()> {
        for &b in lit {
            self.expect(b)?;
        }
        Some(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_roundtrip() {
        let obj = Obj::new()
            .num("id", 7)
            .str("op", "run")
            .str("blob", "line1\nline2=3,4\n\"quoted\\slash\"")
            .bool("cached", true);
        let line = obj.render();
        assert!(!line.contains('\n'), "rendered line must be newline-free: {line}");
        let back = Obj::parse(&line).expect("parse back");
        assert_eq!(back, obj);
        assert_eq!(back.get_num("id"), Some(7));
        assert_eq!(back.get_str("op"), Some("run"));
        assert_eq!(back.get_bool("cached"), Some(true));
    }

    #[test]
    fn parse_rejects_out_of_subset() {
        assert!(Obj::parse("{\"a\":[1]}").is_none(), "arrays");
        assert!(Obj::parse("{\"a\":{\"b\":1}}").is_none(), "nesting");
        assert!(Obj::parse("{\"a\":1.5}").is_none(), "floats");
        assert!(Obj::parse("{\"a\":1} trailing").is_none(), "trailing");
        assert!(Obj::parse("{\"a\":1").is_none(), "truncated");
        assert!(Obj::parse("").is_none(), "empty");
        assert!(Obj::parse("{}").is_some(), "empty object is fine");
    }

    #[test]
    fn set_num_replaces_in_place() {
        let obj = Obj::new().num("id", 1).bool("ok", true).num("request_id", 9);
        let patched = obj.set_num("id", 42).set_num("fresh", 7);
        assert_eq!(patched.get_num("id"), Some(42));
        assert_eq!(patched.get_num("request_id"), Some(9));
        assert_eq!(patched.get_num("fresh"), Some(7));
        // Replacement keeps field order: "id" still renders first.
        assert!(patched.render().starts_with("{\"id\":42,"));
    }

    #[test]
    fn control_chars_escape() {
        let obj = Obj::new().str("s", "\u{1}\t\u{7f}ü日");
        let back = Obj::parse(&obj.render()).unwrap();
        assert_eq!(back.get_str("s"), Some("\u{1}\t\u{7f}ü日"));
    }
}
