//! The `nscd` daemon: accept loop, per-connection protocol handling,
//! and the submission-order response stream.
//!
//! Every connection gets a reader (the connection thread itself) and a
//! writer thread joined by an `mpsc` channel of `(sequence, line)`
//! pairs. `run` requests are fanned out on the **shared** pool — one
//! pool for the whole daemon, so ten clients submitting at once batch
//! across the same `NSC_JOBS` workers instead of oversubscribing the
//! machine. The writer holds responses in a reorder buffer and emits
//! them strictly in submission order, which is what makes `flush` a
//! drain barrier and keeps client-side correlation trivial.
//!
//! Shutdown is graceful by construction: the `shutdown` response rides
//! the ordered stream (so it is written only after every earlier
//! response), the accept loop is woken and breaks, connection threads
//! are joined, and dropping the pool runs every job that was already
//! queued before the daemon exits.

use crate::json::Obj;
use crate::{error_response, execute, run_response, Request};
use nsc_sim::metrics::{self, Gauge, Hist, Metric, Registry};
use nsc_sim::{cache, pool::ThreadPool};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Daemon-wide shared state.
struct State {
    pool: ThreadPool,
    served: AtomicU64,
    in_flight: AtomicU64,
    started: Instant,
    shutdown: AtomicBool,
    socket: PathBuf,
}

/// Binds `socket` and serves until a client sends `shutdown`.
///
/// An existing socket file is removed first (a daemon that died without
/// cleanup would otherwise block the bind forever); it is removed again
/// on the way out.
pub fn serve(socket: &Path, jobs: usize) -> io::Result<()> {
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    let state = Arc::new(State {
        pool: ThreadPool::new(jobs),
        served: AtomicU64::new(0),
        in_flight: AtomicU64::new(0),
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
        socket: socket.to_owned(),
    });
    let mut conns = Vec::new();
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        let st = Arc::clone(&state);
        conns.push(std::thread::spawn(move || handle_conn(&st, stream)));
    }
    for c in conns {
        let _ = c.join();
    }
    let _ = std::fs::remove_file(socket);
    Ok(())
    // `state`'s last Arc drops here; the pool's Drop drains any jobs
    // still queued before the workers exit.
}

/// A response slot: either a line computed on a worker, or a thunk the
/// writer evaluates at delivery time — *after* every earlier response —
/// so `status` counters and `flush` acknowledgements observe all
/// preceding runs on the connection.
type Slot = Box<dyn FnOnce() -> String + Send>;

/// One connection: read requests, dispatch, keep responses ordered.
fn handle_conn(st: &Arc<State>, stream: UnixStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let reader = BufReader::new(read_half);
    let (tx, rx) = mpsc::channel::<(u64, Slot)>();
    let writer = std::thread::spawn(move || write_ordered(stream, &rx));
    let mut seq = 0u64;
    let mut want_shutdown = false;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        match Request::parse(&line) {
            Ok(Request::Run { id, workload, size, mode }) => {
                // Simulate on the shared pool; the response re-enters
                // the ordered stream at this request's sequence slot.
                let tx = tx.clone();
                let stc = Arc::clone(st);
                st.pool.spawn(move || {
                    let live = stc.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    metrics::gauge_global_max(Gauge::ServeInFlight, live as f64);
                    // The run records into a thread-local shard; the shard
                    // is merged into the daemon-global registry only at
                    // delivery time, inside the per-connection reorder
                    // buffer, so merges land in submission order.
                    metrics::install(Registry::new());
                    let t0 = Instant::now();
                    let outcome = execute(&workload, size, mode);
                    let run_ms = t0.elapsed().as_secs_f64() * 1e3;
                    metrics::count(Metric::ServeRequests);
                    metrics::observe(Hist::ServeRunMs, run_ms);
                    let resp = match outcome {
                        Ok(out) => {
                            metrics::count(Metric::ServeRuns);
                            if out.cached {
                                metrics::count(Metric::ServeRunsCached);
                            }
                            stc.served.fetch_add(1, Ordering::SeqCst);
                            run_response(id, &workload, mode, &out)
                        }
                        Err(e) => {
                            metrics::count(Metric::ServeErrors);
                            error_response(id, &e)
                        }
                    };
                    let shard = metrics::uninstall();
                    stc.in_flight.fetch_sub(1, Ordering::SeqCst);
                    let slot = Box::new(move || {
                        if let Some(shard) = &shard {
                            metrics::absorb_global(shard);
                        }
                        resp
                    }) as Slot;
                    let _ = tx.send((seq, slot));
                });
            }
            Ok(Request::Status { id }) => {
                let stc = Arc::clone(st);
                let slot = Box::new(move || {
                    let (hits, misses) = cache::counters();
                    Obj::new()
                        .num("id", id)
                        .bool("ok", true)
                        .num("served", stc.served.load(Ordering::SeqCst))
                        .num("cache_hits", hits)
                        .num("cache_misses", misses)
                        .num("jobs", stc.pool.workers() as u64)
                        .bool("cache_enabled", cache::enabled())
                        .num("uptime_ms", stc.started.elapsed().as_millis() as u64)
                        .num("in_flight", stc.in_flight.load(Ordering::SeqCst))
                        .render()
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Metrics { id }) => {
                // Evaluated at delivery time, after every earlier run on
                // this connection has been absorbed into the global
                // registry — so a submit-then-metrics batch always sees
                // its own runs.
                let slot = Box::new(move || {
                    Obj::new()
                        .num("id", id)
                        .bool("ok", true)
                        .str("schema", metrics::SCHEMA)
                        .str("snapshot", &metrics::global_snapshot().to_json())
                        .render()
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Flush { id }) => {
                // Ordered delivery IS the barrier: this slot leaves the
                // reorder buffer only after every earlier response.
                let slot = Box::new(move || {
                    Obj::new().num("id", id).bool("ok", true).num("flushed", seq).render()
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Shutdown { id }) => {
                let slot =
                    Box::new(move || Obj::new().num("id", id).bool("ok", true).render()) as Slot;
                let _ = tx.send((seq, slot));
                want_shutdown = true;
                break;
            }
            Err((id, msg)) => {
                let resp = error_response(id, &msg);
                let _ = tx.send((seq, Box::new(move || resp) as Slot));
            }
        }
        seq += 1;
    }
    // In-flight pool jobs hold `tx` clones; the writer exits once they
    // have all reported and this original handle drops.
    drop(tx);
    let _ = writer.join();
    if want_shutdown {
        st.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = UnixStream::connect(&st.socket);
    }
}

/// Drains `(sequence, slot)` pairs, evaluating and writing each slot in
/// sequence order.
fn write_ordered(mut out: UnixStream, rx: &mpsc::Receiver<(u64, Slot)>) {
    let mut next = 0u64;
    let mut pending: BTreeMap<u64, Slot> = BTreeMap::new();
    for (seq, slot) in rx {
        pending.insert(seq, slot);
        while let Some(slot) = pending.remove(&next) {
            let line = slot();
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                return; // client went away; drain silently
            }
            next += 1;
        }
    }
}
