//! The `nscd` daemon: accept loop, per-connection protocol handling,
//! and the submission-order response stream.
//!
//! Every connection gets a reader (the connection thread itself) and a
//! writer thread joined by an `mpsc` channel of `(sequence, slot)`
//! pairs. `run` requests are fanned out on the **shared** pool — one
//! pool for the whole daemon, so ten clients submitting at once batch
//! across the same `NSC_JOBS` workers instead of oversubscribing the
//! machine. The writer holds responses in a reorder buffer and emits
//! them strictly in submission order, which is what makes `flush` a
//! drain barrier and keeps client-side correlation trivial.
//!
//! # Request tracing
//!
//! Each `run` carries a [`nsc_sim::span::SpanTrace`] from the moment
//! its line started arriving: `accept` and `parse` close on the
//! connection thread, `queue_wait`/`pool_dispatch`/`cache_probe`/
//! `simulate`/`encode` on the pool worker, and `reorder_hold`/`deliver`
//! inside the response slot, which the writer evaluates at delivery
//! time. That evaluation point is where the tree is sealed — so the
//! `latency` field embedded in the response and the copy kept in the
//! bounded per-daemon trace store (read by the `trace` op) are the
//! *same* tree, not two measurements. When the daemon runs with
//! `NSC_TRACE` armed, each run also records its simulator events into a
//! private ring that lands in the store next to the tree, which is what
//! lets `trace` with `"perfetto":true` render one combined timeline.
//!
//! Request lines are read through a bounded reader: a line longer than
//! [`MAX_LINE_BYTES`] is discarded up to its newline and answered with
//! a typed error, keeping the connection (and its ordering) alive.
//!
//! Shutdown is graceful by construction: the `shutdown` response rides
//! the ordered stream (so it is written only after every earlier
//! response), the accept loop is woken and breaks, connection threads
//! are joined, and dropping the pool runs every job that was already
//! queued before the daemon exits.

use crate::json::Obj;
use crate::{error_obj, error_response, execute_spanned, run_response, Request};
use nsc_sim::log;
use nsc_sim::metrics::{self, Gauge, Hist, Metric, Registry};
use nsc_sim::span::{self, SpanTrace, SpanTree};
use nsc_sim::trace::{self, RingRecorder, TraceEvent};
use nsc_sim::{cache, pool::ThreadPool};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Longest accepted request line. Anything longer is discarded up to
/// its newline and answered with a typed error.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// How many sealed request traces the daemon retains for the `trace`
/// op (oldest evicted first).
const TRACE_STORE_CAP: usize = 128;

/// One request's sealed observability record.
struct StoredTrace {
    tree: SpanTree,
    events: Vec<TraceEvent>,
}

/// Bounded map of recent request traces, keyed by `request_id`.
struct TraceStore {
    order: VecDeque<u64>,
    map: HashMap<u64, StoredTrace>,
}

impl TraceStore {
    fn new() -> TraceStore {
        TraceStore { order: VecDeque::new(), map: HashMap::new() }
    }

    fn insert(&mut self, t: StoredTrace) {
        let rid = t.tree.request_id;
        if self.map.insert(rid, t).is_none() {
            self.order.push_back(rid);
        }
        while self.order.len() > TRACE_STORE_CAP {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
    }
}

/// Daemon-wide shared state.
struct State {
    pool: ThreadPool,
    served: AtomicU64,
    in_flight: AtomicU64,
    started: Instant,
    shutdown: AtomicBool,
    socket: PathBuf,
    traces: Mutex<TraceStore>,
    /// `(capacity, sample_every)` when `NSC_TRACE` arms per-run
    /// simulator event capture; `None` leaves the sim trace layer cold.
    sim_trace: Option<(usize, u64)>,
    rid_seed: u64,
    rid_counter: AtomicU64,
}

impl State {
    /// Mints a daemon-side request id for runs submitted without one.
    /// SplitMix64 over a per-daemon seed: unique within the daemon,
    /// never 0 (0 means "unset" on the wire).
    fn mint_rid(&self) -> u64 {
        let n = self.rid_counter.fetch_add(1, Ordering::Relaxed);
        let mut z = self.rid_seed.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z.max(1)
    }
}

fn sim_trace_from_env() -> Option<(usize, u64)> {
    let armed = std::env::var("NSC_TRACE").map(|v| v != "0" && !v.is_empty()).unwrap_or(false);
    if !armed {
        return None;
    }
    let cap = std::env::var("NSC_TRACE_CAP")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(4096);
    let every = std::env::var("NSC_TRACE_SAMPLE")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(64);
    Some((cap.max(1), every.max(1)))
}

/// Binds `socket` and serves until a client sends `shutdown`.
///
/// An existing socket file is removed first (a daemon that died without
/// cleanup would otherwise block the bind forever); it is removed again
/// on the way out.
pub fn serve(socket: &Path, jobs: usize) -> io::Result<()> {
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    let sim_trace = sim_trace_from_env();
    let rid_seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
        ^ (std::process::id() as u64) << 32;
    let state = Arc::new(State {
        pool: ThreadPool::new(jobs),
        served: AtomicU64::new(0),
        in_flight: AtomicU64::new(0),
        started: Instant::now(),
        shutdown: AtomicBool::new(false),
        socket: socket.to_owned(),
        traces: Mutex::new(TraceStore::new()),
        sim_trace,
        rid_seed,
        rid_counter: AtomicU64::new(0),
    });
    log::info("nscd", || {
        format!(
            "serving on {} jobs={jobs} cache={} sim_trace={}",
            socket.display(),
            cache::enabled(),
            sim_trace.is_some()
        )
    });
    let mut conns = Vec::new();
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        let st = Arc::clone(&state);
        conns.push(std::thread::spawn(move || handle_conn(&st, stream)));
    }
    for c in conns {
        let _ = c.join();
    }
    let _ = std::fs::remove_file(socket);
    log::info("nscd", || {
        format!("shut down after {} served", state.served.load(Ordering::SeqCst))
    });
    Ok(())
    // `state`'s last Arc drops here; the pool's Drop drains any jobs
    // still queued before the workers exit.
}

/// A response slot: either a line computed on a worker, or a thunk the
/// writer evaluates at delivery time — *after* every earlier response —
/// so `status` counters and `flush` acknowledgements observe all
/// preceding runs on the connection.
type Slot = Box<dyn FnOnce() -> String + Send>;

/// One bounded line read.
enum ReadLine {
    /// A complete line (without its newline).
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`]; input was discarded up to
    /// (and including) the next newline.
    TooLong,
    /// Clean end of stream.
    Eof,
}

/// Reads one newline-terminated line with a hard size cap, so a
/// misbehaving client cannot buffer unbounded memory in the daemon. A
/// final unterminated chunk at EOF is returned as a line (it will fail
/// request parsing and get a typed error like any other bad line).
fn read_bounded_line(r: &mut impl BufRead) -> io::Result<ReadLine> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                ReadLine::Eof
            } else {
                ReadLine::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..pos]);
            r.consume(pos + 1);
            if buf.len() > MAX_LINE_BYTES {
                return Ok(ReadLine::TooLong);
            }
            return Ok(ReadLine::Line(String::from_utf8_lossy(&buf).into_owned()));
        }
        buf.extend_from_slice(chunk);
        let n = chunk.len();
        r.consume(n);
        if buf.len() > MAX_LINE_BYTES {
            buf.clear();
            skip_to_newline(r)?;
            return Ok(ReadLine::TooLong);
        }
    }
}

/// Discards input up to and including the next newline (or EOF).
fn skip_to_newline(r: &mut impl BufRead) -> io::Result<()> {
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(());
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                r.consume(pos + 1);
                return Ok(());
            }
            None => {
                let n = chunk.len();
                r.consume(n);
            }
        }
    }
}

/// One connection: read requests, dispatch, keep responses ordered.
fn handle_conn(st: &Arc<State>, stream: UnixStream) {
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let (tx, rx) = mpsc::channel::<(u64, Slot)>();
    let writer = std::thread::spawn(move || write_ordered(stream, &rx));
    let mut seq = 0u64;
    let mut want_shutdown = false;
    // request_ids already seen on this connection: a duplicate would
    // silently overwrite its predecessor in the trace store, so it is
    // rejected with a typed error instead.
    let mut seen_rids: HashSet<u64> = HashSet::new();
    log::debug("serve", || "connection opened".to_owned());
    loop {
        let t_read0 = span::now_us();
        let line = match read_bounded_line(&mut reader) {
            Ok(ReadLine::Line(line)) => line,
            Ok(ReadLine::TooLong) => {
                log::warn("serve", || {
                    format!("request line over {MAX_LINE_BYTES} bytes discarded")
                });
                metrics::count_global(Metric::ServeErrors, 1);
                let resp =
                    error_response(0, &format!("request line exceeds {MAX_LINE_BYTES} bytes"));
                let _ = tx.send((seq, Box::new(move || resp) as Slot));
                seq += 1;
                continue;
            }
            Ok(ReadLine::Eof) | Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let t_read1 = span::now_us();
        match Request::parse(&line) {
            Ok(Request::Run { id, request_id, workload, size, mode }) => {
                let rid = if request_id == 0 { st.mint_rid() } else { request_id };
                if !seen_rids.insert(rid) {
                    log::warn("serve", || {
                        format!("duplicate request_id {rid:016x} rejected (id={id})")
                    });
                    metrics::count_global(Metric::ServeErrors, 1);
                    let resp = error_obj(id, &format!("duplicate request_id: {rid:016x}"))
                        .num("request_id", rid)
                        .render();
                    let _ = tx.send((seq, Box::new(move || resp) as Slot));
                    seq += 1;
                    continue;
                }
                let mut spans = SpanTrace::begin_at(rid, t_read0);
                spans.push("accept", t_read0, t_read1);
                spans.push("parse", t_read1, span::now_us());
                log::debug("serve", || {
                    format!("run rid={rid:016x} workload={workload} mode={} (id={id})", mode.label())
                });
                // Simulate on the shared pool; the response re-enters
                // the ordered stream at this request's sequence slot.
                let tx = tx.clone();
                let stc = Arc::clone(st);
                let t_enq = span::now_us();
                st.pool.spawn(move || {
                    spans.push("queue_wait", t_enq, span::now_us());
                    let live = stc.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                    metrics::gauge_global_max(Gauge::ServeInFlight, live as f64);
                    // The run records into a thread-local shard; the shard
                    // is merged into the daemon-global registry only at
                    // delivery time, inside the per-connection reorder
                    // buffer, so merges land in submission order.
                    metrics::install(Registry::new());
                    if let Some((cap, every)) = stc.sim_trace {
                        trace::install(RingRecorder::new(cap), every);
                    }
                    let t0 = Instant::now();
                    let outcome = execute_spanned(&workload, size, mode, &mut spans);
                    let run_ms = t0.elapsed().as_secs_f64() * 1e3;
                    metrics::count(Metric::ServeRequests);
                    metrics::observe(Hist::ServeRunMs, run_ms);
                    let resp = match outcome {
                        Ok(out) => {
                            metrics::count(Metric::ServeRuns);
                            if out.cached {
                                metrics::count(Metric::ServeRunsCached);
                            }
                            stc.served.fetch_add(1, Ordering::SeqCst);
                            spans.time("encode", || run_response(id, rid, &workload, mode, &out))
                        }
                        Err(e) => {
                            metrics::count(Metric::ServeErrors);
                            log::warn("serve", || format!("run rid={rid:016x} failed: {e}"));
                            error_obj(id, &e).num("request_id", rid)
                        }
                    };
                    let events = if stc.sim_trace.is_some() {
                        trace::uninstall().map(|r| r.into_events().0).unwrap_or_default()
                    } else {
                        Vec::new()
                    };
                    let shard = metrics::uninstall();
                    stc.in_flight.fetch_sub(1, Ordering::SeqCst);
                    let t_sent = span::now_us();
                    let slot = Box::new(move || {
                        let t_eval = span::now_us();
                        spans.push("reorder_hold", t_sent, t_eval);
                        if let Some(shard) = &shard {
                            metrics::absorb_global(shard);
                        }
                        spans.push("deliver", t_eval, span::now_us());
                        let tree = spans.finish();
                        metrics::observe_global(
                            Hist::ServeQueueUs,
                            tree.span("queue_wait").map_or(0.0, |s| s.dur_us as f64),
                        );
                        metrics::observe_global(Hist::ServeTotalUs, tree.wall_us as f64);
                        log::info("serve", || {
                            format!(
                                "served rid={:016x} wall={}µs sim={}µs (id={id})",
                                tree.request_id,
                                tree.wall_us,
                                tree.span("simulate").map_or(0, |s| s.dur_us),
                            )
                        });
                        let latency = tree.to_json();
                        stc.traces
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .insert(StoredTrace { tree, events });
                        resp.str("latency", &latency).render()
                    }) as Slot;
                    let _ = tx.send((seq, slot));
                });
            }
            Ok(Request::Status { id }) => {
                let stc = Arc::clone(st);
                let slot = Box::new(move || {
                    let (hits, misses) = cache::counters();
                    Obj::new()
                        .num("id", id)
                        .bool("ok", true)
                        .num("served", stc.served.load(Ordering::SeqCst))
                        .num("cache_hits", hits)
                        .num("cache_misses", misses)
                        .num("jobs", stc.pool.workers() as u64)
                        .bool("cache_enabled", cache::enabled())
                        .num("uptime_ms", stc.started.elapsed().as_millis() as u64)
                        .num("in_flight", stc.in_flight.load(Ordering::SeqCst))
                        .render()
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Metrics { id }) => {
                // Evaluated at delivery time, after every earlier run on
                // this connection has been absorbed into the global
                // registry — so a submit-then-metrics batch always sees
                // its own runs.
                let slot = Box::new(move || {
                    Obj::new()
                        .num("id", id)
                        .bool("ok", true)
                        .str("schema", metrics::SCHEMA)
                        .str("snapshot", &metrics::global_snapshot().to_json())
                        .render()
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Logs { id }) => {
                // Delivery-time drain: records logged by earlier runs on
                // this connection are already in the flight recorder.
                let slot = Box::new(move || {
                    let (recs, dropped) = log::drain();
                    let mut lines = String::new();
                    for r in &recs {
                        lines.push_str(&r.render());
                        lines.push('\n');
                    }
                    Obj::new()
                        .num("id", id)
                        .bool("ok", true)
                        .num("count", recs.len() as u64)
                        .num("dropped", dropped)
                        .str("lines", &lines)
                        .render()
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Trace { id, request_id, perfetto }) => {
                let stc = Arc::clone(st);
                // Delivery-time lookup: a submit earlier in this batch
                // has sealed and stored its tree by the time this slot
                // is evaluated, so submit-then-trace always works.
                let slot = Box::new(move || {
                    let store = stc.traces.lock().unwrap_or_else(|e| e.into_inner());
                    match store.map.get(&request_id) {
                        Some(t) => {
                            let mut o = Obj::new()
                                .num("id", id)
                                .bool("ok", true)
                                .num("request_id", request_id)
                                .num("wall_us", t.tree.wall_us)
                                .num("spans", t.tree.spans.len() as u64)
                                .num("sim_events", t.events.len() as u64)
                                .str("tree", &t.tree.to_json());
                            if perfetto {
                                o = o.str(
                                    "perfetto",
                                    &trace::chrome::render_with_spans(t.events.iter(), &t.tree),
                                );
                            }
                            o.render()
                        }
                        None => error_obj(id, &format!("unknown request_id: {request_id:016x}"))
                            .num("request_id", request_id)
                            .render(),
                    }
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Flush { id }) => {
                // Ordered delivery IS the barrier: this slot leaves the
                // reorder buffer only after every earlier response.
                let slot = Box::new(move || {
                    Obj::new().num("id", id).bool("ok", true).num("flushed", seq).render()
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Shutdown { id }) => {
                log::info("serve", || format!("shutdown requested (id={id})"));
                let slot =
                    Box::new(move || Obj::new().num("id", id).bool("ok", true).render()) as Slot;
                let _ = tx.send((seq, slot));
                want_shutdown = true;
                break;
            }
            Err((id, msg)) => {
                log::warn("serve", || format!("bad request line (id={id}): {msg}"));
                metrics::count_global(Metric::ServeErrors, 1);
                let resp = error_response(id, &msg);
                let _ = tx.send((seq, Box::new(move || resp) as Slot));
            }
        }
        seq += 1;
    }
    // In-flight pool jobs hold `tx` clones; the writer exits once they
    // have all reported and this original handle drops.
    drop(tx);
    let _ = writer.join();
    log::debug("serve", || format!("connection closed after {seq} requests"));
    if want_shutdown {
        st.shutdown.store(true, Ordering::SeqCst);
        // Wake the accept loop so it observes the flag.
        let _ = UnixStream::connect(&st.socket);
    }
}

/// Drains `(sequence, slot)` pairs, evaluating and writing each slot in
/// sequence order.
fn write_ordered(mut out: UnixStream, rx: &mpsc::Receiver<(u64, Slot)>) {
    let mut next = 0u64;
    let mut pending: BTreeMap<u64, Slot> = BTreeMap::new();
    for (seq, slot) in rx {
        pending.insert(seq, slot);
        while let Some(slot) = pending.remove(&next) {
            let line = slot();
            if writeln!(out, "{line}").and_then(|()| out.flush()).is_err() {
                return; // client went away; drain silently
            }
            next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bounded_reader_caps_and_recovers() {
        let long = "x".repeat(MAX_LINE_BYTES + 10);
        let input = format!("short\n{long}\nafter\ntail-no-newline");
        let mut r = BufReader::new(input.as_bytes());
        assert!(matches!(read_bounded_line(&mut r), Ok(ReadLine::Line(l)) if l == "short"));
        assert!(matches!(read_bounded_line(&mut r), Ok(ReadLine::TooLong)));
        assert!(matches!(read_bounded_line(&mut r), Ok(ReadLine::Line(l)) if l == "after"));
        assert!(
            matches!(read_bounded_line(&mut r), Ok(ReadLine::Line(l)) if l == "tail-no-newline")
        );
        assert!(matches!(read_bounded_line(&mut r), Ok(ReadLine::Eof)));
    }

    #[test]
    fn trace_store_evicts_oldest() {
        let mut s = TraceStore::new();
        for rid in 1..=(TRACE_STORE_CAP as u64 + 5) {
            let tree = SpanTrace::begin_at(rid, 0).finish();
            s.insert(StoredTrace { tree, events: Vec::new() });
        }
        assert_eq!(s.map.len(), TRACE_STORE_CAP);
        assert!(!s.map.contains_key(&1), "oldest entries must be evicted");
        assert!(s.map.contains_key(&(TRACE_STORE_CAP as u64 + 5)));
        // Re-inserting an existing rid must not grow the order queue.
        let tree = SpanTrace::begin_at(9, 0).finish();
        s.insert(StoredTrace { tree, events: Vec::new() });
        assert_eq!(s.order.len(), s.map.len());
    }

    #[test]
    fn minted_rids_are_unique_and_nonzero() {
        let st = State {
            pool: ThreadPool::new(1),
            served: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            socket: PathBuf::new(),
            traces: Mutex::new(TraceStore::new()),
            sim_trace: None,
            rid_seed: 42,
            rid_counter: AtomicU64::new(0),
        };
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let rid = st.mint_rid();
            assert_ne!(rid, 0);
            assert!(seen.insert(rid), "minted rid repeated");
        }
    }
}
