//! The `nscd` daemon: accept loop, per-connection protocol handling,
//! and the submission-order response stream.
//!
//! Every connection gets a reader (the connection thread itself) and a
//! writer thread joined by an `mpsc` channel of `(sequence, slot)`
//! pairs. `run` requests are fanned out on the **shared** pool — one
//! pool for the whole daemon, so ten clients submitting at once batch
//! across the same `NSC_JOBS` workers instead of oversubscribing the
//! machine. The writer holds responses in a reorder buffer and emits
//! them strictly in submission order, which is what makes `flush` a
//! drain barrier and keeps client-side correlation trivial.
//!
//! # Overload protection
//!
//! The daemon is explicitly overload-safe ([`ServeConfig`]):
//!
//! * **Connection semaphore** — at most `NSC_MAX_CONNS` live
//!   connections; the one-over connection gets a single typed
//!   `overloaded` line and is closed.
//! * **Bounded admission queue** — at most `NSC_QUEUE_CAP` admitted
//!   runs (queued + executing). The claim is a `fetch_add` followed by
//!   a check-and-undo, never a load-then-add, so two racing submits
//!   cannot both sneak past a full queue (the classic TOCTOU admission
//!   bug). Queue credit is returned by a drop guard, so every exit path
//!   from a job — completion, deadline shed, disconnect reap, panic
//!   unwind — gives the slot back.
//! * **Degraded mode** — when the queue is full, a run whose result is
//!   already in the result cache is still answered, inline on the
//!   connection thread; only cache *misses* (real simulations) are
//!   shed, with a `retry_after_ms` hint derived from the backlog and an
//!   EWMA of recent run wall times.
//! * **Deadlines** — `deadline_ms` on the wire (or the
//!   `NSC_DEADLINE_MS` default) is enforced at dequeue: a run whose
//!   budget expired while it waited is shed before simulating, and the
//!   shed is stamped into its span tree as a `deadline_exceeded` span.
//! * **Disconnect reaping** — the writer flips the connection's shared
//!   `alive` flag on the first failed write but keeps draining the
//!   reorder buffer, evaluating every slot (so worker metric shards are
//!   still absorbed in submission order) while discarding the bytes.
//!   Jobs that dequeue after the flag drops skip the simulation
//!   entirely and return their queue credit; dead connections also stop
//!   inserting into the bounded trace store.
//! * **Draining shutdown** — `shutdown` raises the daemon-wide flag
//!   *immediately* (not after the requesting connection unwinds), so
//!   new submits on any connection get a typed `shutting_down` response
//!   while already-admitted runs drain and deliver.
//!
//! `serve.shed`, `serve.deadline_exceeded`, `serve.conns_rejected`,
//! `serve.dedup_replays` and the `serve.queue_depth_hwm` gauge make all
//! of this observable through the `metrics` op.
//!
//! # Idempotent resubmission
//!
//! Completed run responses are kept in a bounded store keyed by
//! `request_id`. A client that lost a response (its connection died
//! after the run was admitted) can resubmit the same `request_id` on a
//! new connection and get the stored response back — marked
//! `"deduped":true`, with the correlation id rewritten — instead of
//! paying for a second simulation. Within one connection a duplicate is
//! still a typed error (it would corrupt trace-store keying).
//!
//! # Chaos under load
//!
//! When `NSC_FAULT_RATE` is set, every run executes under a
//! [`nsc_sim::fault::FaultPlan`] derived from the *request content*
//! (workload/size/mode), not from arrival order — so a resubmitted
//! request replays the identical fault schedule, the plan folds into
//! the result-cache key consistently, and completed results stay
//! bit-identical across retries. This is what the `nsc_load` soak
//! harness leans on.
//!
//! # Request tracing
//!
//! Each `run` carries a [`nsc_sim::span::SpanTrace`] from the moment
//! its line started arriving: `accept` and `parse` close on the
//! connection thread, `queue_wait`/`pool_dispatch`/`cache_probe`/
//! `simulate`/`encode` on the pool worker, and `reorder_hold`/`deliver`
//! inside the response slot, which the writer evaluates at delivery
//! time. That evaluation point is where the tree is sealed — so the
//! `latency` field embedded in the response and the copy kept in the
//! bounded per-daemon trace store (read by the `trace` op) are the
//! *same* tree, not two measurements. When the daemon runs with
//! `NSC_TRACE` armed, each run also records its simulator events into a
//! private ring that lands in the store next to the tree, which is what
//! lets `trace` with `"perfetto":true` render one combined timeline.
//!
//! Request lines are read through a bounded reader: a line longer than
//! [`MAX_LINE_BYTES`] is discarded up to its newline and answered with
//! a typed error, keeping the connection (and its ordering) alive.

use crate::json::Obj;
use crate::{
    error_obj, error_response, execute_spanned, inspect_body, run_response, shed_obj, Request,
    Response,
};
use near_stream::ExecMode;
use nsc_sim::cache::{self, CacheStore};
use nsc_sim::fault::{self, FaultPlan};
use nsc_sim::log;
use nsc_sim::metrics::{self, Gauge, Hist, Metric, Registry};
use nsc_sim::span::{self, SpanTrace, SpanTree};
use nsc_sim::timeline::{self, SloConfig, Timeline};
use nsc_sim::trace::{self, RingRecorder, TraceEvent};
use nsc_sim::pool::ThreadPool;
use nsc_workloads::Size;
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;

/// Longest accepted request line. Anything longer is discarded up to
/// its newline and answered with a typed error.
pub const MAX_LINE_BYTES: usize = 1 << 20;

/// How many sealed request traces the daemon retains for the `trace`
/// op (oldest evicted first).
const TRACE_STORE_CAP: usize = 128;

/// How many completed run responses the daemon retains for idempotent
/// resubmission (oldest evicted first).
const COMPLETED_STORE_CAP: usize = 128;

/// Overload-protection knobs for [`serve_with`]. [`serve`] builds one
/// from the environment; tests construct their own so parallel tests in
/// one process never race on env vars.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Worker threads on the shared simulation pool.
    pub jobs: usize,
    /// Connection semaphore: live connections beyond this get one typed
    /// `overloaded` line and are closed (`NSC_MAX_CONNS`, default 64).
    pub max_conns: usize,
    /// Bounded admission queue: admitted-but-undelivered runs beyond
    /// this are shed (cache hits excepted) (`NSC_QUEUE_CAP`, default
    /// 128).
    pub queue_cap: usize,
    /// Default per-run deadline in ms applied when a request carries no
    /// `deadline_ms` of its own; 0 disables (`NSC_DEADLINE_MS`,
    /// default 0).
    pub deadline_ms: u64,
    /// Telemetry sampler interval in ms; 0 disables the sampler thread
    /// entirely — no thread is spawned and the timeline stays empty
    /// (`NSC_SAMPLE_MS`, default 1000).
    pub sample_ms: u64,
    /// Timeline ring capacity in frames; oldest frames are evicted
    /// beyond this (`NSC_TIMELINE_CAP`, default 900 — 15 minutes at the
    /// default interval).
    pub timeline_cap: usize,
}

impl ServeConfig {
    /// Reads the overload knobs from the environment.
    pub fn from_env(jobs: usize) -> ServeConfig {
        let num = |key: &str, default: u64| {
            std::env::var(key).ok().and_then(|v| v.trim().parse::<u64>().ok()).unwrap_or(default)
        };
        ServeConfig {
            jobs,
            max_conns: (num("NSC_MAX_CONNS", 64) as usize).max(1),
            queue_cap: (num("NSC_QUEUE_CAP", 128) as usize).max(1),
            deadline_ms: num("NSC_DEADLINE_MS", 0),
            sample_ms: num("NSC_SAMPLE_MS", timeline::DEFAULT_SAMPLE_MS),
            timeline_cap: (num("NSC_TIMELINE_CAP", timeline::DEFAULT_CAP as u64) as usize).max(1),
        }
    }
}

/// One request's sealed observability record.
struct StoredTrace {
    tree: SpanTree,
    events: Vec<TraceEvent>,
}

/// Bounded map of recent request traces, keyed by `request_id`.
struct TraceStore {
    order: VecDeque<u64>,
    map: HashMap<u64, StoredTrace>,
}

impl TraceStore {
    fn new() -> TraceStore {
        TraceStore { order: VecDeque::new(), map: HashMap::new() }
    }

    fn insert(&mut self, t: StoredTrace) {
        let rid = t.tree.request_id;
        if self.map.insert(rid, t).is_none() {
            self.order.push_back(rid);
        }
        while self.order.len() > TRACE_STORE_CAP {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
    }
}

/// Bounded map of completed run responses, keyed by `request_id`, for
/// idempotent resubmission after a lost response.
struct CompletedStore {
    order: VecDeque<u64>,
    map: HashMap<u64, Obj>,
}

impl CompletedStore {
    fn new() -> CompletedStore {
        CompletedStore { order: VecDeque::new(), map: HashMap::new() }
    }

    fn insert(&mut self, rid: u64, resp: Obj) {
        if self.map.insert(rid, resp).is_none() {
            self.order.push_back(rid);
        }
        while self.order.len() > COMPLETED_STORE_CAP {
            if let Some(old) = self.order.pop_front() {
                self.map.remove(&old);
            }
        }
    }

    fn get(&self, rid: u64) -> Option<&Obj> {
        self.map.get(&rid)
    }
}

/// Daemon-wide shared state.
struct State {
    cfg: ServeConfig,
    pool: ThreadPool,
    served: AtomicU64,
    in_flight: AtomicU64,
    /// Live connections (the accept semaphore's counter).
    conns: AtomicU64,
    /// Admitted runs not yet delivered (the bounded queue's counter).
    queued: AtomicU64,
    /// EWMA of recent run wall times in µs; feeds `retry_after_ms`.
    run_ewma_us: AtomicU64,
    started: Instant,
    shutdown: AtomicBool,
    socket: PathBuf,
    traces: Mutex<TraceStore>,
    completed: Mutex<CompletedStore>,
    /// `(capacity, sample_every)` when `NSC_TRACE` arms per-run
    /// simulator event capture; `None` leaves the sim trace layer cold.
    sim_trace: Option<(usize, u64)>,
    /// Base chaos plan (`NSC_FAULT_RATE`); each run derives its own
    /// plan from the request content so replays are bit-identical.
    fault: Option<FaultPlan>,
    rid_seed: u64,
    rid_counter: AtomicU64,
    /// Periodic registry samples appended by the sampler thread; empty
    /// forever when `cfg.sample_ms == 0`.
    timeline: Mutex<Timeline>,
    /// SLO thresholds the `health` op evaluates against the timeline.
    slo: SloConfig,
}

impl State {
    fn new(cfg: ServeConfig, socket: PathBuf, rid_seed: u64) -> State {
        State {
            pool: ThreadPool::new(cfg.jobs),
            cfg,
            served: AtomicU64::new(0),
            in_flight: AtomicU64::new(0),
            conns: AtomicU64::new(0),
            queued: AtomicU64::new(0),
            run_ewma_us: AtomicU64::new(0),
            started: Instant::now(),
            shutdown: AtomicBool::new(false),
            socket,
            traces: Mutex::new(TraceStore::new()),
            completed: Mutex::new(CompletedStore::new()),
            sim_trace: sim_trace_from_env(),
            fault: FaultPlan::from_env(),
            rid_seed,
            rid_counter: AtomicU64::new(0),
            timeline: Mutex::new(Timeline::new(cfg.timeline_cap)),
            slo: SloConfig::from_env(),
        }
    }

    /// Mints a daemon-side request id for runs submitted without one.
    /// SplitMix64 over a per-daemon seed: unique within the daemon,
    /// never 0 (0 means "unset" on the wire).
    fn mint_rid(&self) -> u64 {
        let n = self.rid_counter.fetch_add(1, Ordering::Relaxed);
        let mut z = self.rid_seed.wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        z.max(1)
    }

    /// How long a shed client should wait before retrying: the current
    /// backlog per worker times the smoothed run wall time, clamped to
    /// [1ms, 10s].
    fn retry_after_hint(&self) -> u64 {
        let ewma_us = self.run_ewma_us.load(Ordering::Relaxed).max(1_000);
        let workers = (self.pool.workers() as u64).max(1);
        let backlog = self.queued.load(Ordering::Relaxed) / workers + 1;
        (backlog.saturating_mul(ewma_us) / 1_000).clamp(1, 10_000)
    }

    /// Folds a new run wall time into the EWMA (α = 1/8). Racy
    /// read-modify-write is fine: this feeds a backoff *hint*, not an
    /// accounting invariant.
    fn note_run_us(&self, us: u64) {
        let old = self.run_ewma_us.load(Ordering::Relaxed);
        let new = if old == 0 { us } else { (old.saturating_mul(7).saturating_add(us)) / 8 };
        self.run_ewma_us.store(new, Ordering::Relaxed);
    }

    /// The fault plan for one run, derived from the request content so
    /// the same request always replays the same schedule (and hashes to
    /// the same result-cache key) no matter when or how often it is
    /// submitted.
    fn plan_for(&self, workload: &str, size: Size, mode: ExecMode) -> Option<FaultPlan> {
        self.fault.as_ref().map(|base| base.for_run(request_digest(workload, size, mode)))
    }
}

/// FNV-1a over the run's identity tuple; seeds the per-run fault plan.
fn request_digest(workload: &str, size: Size, mode: ExecMode) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in workload
        .bytes()
        .chain(crate::size_label(size).bytes())
        .chain(mode.label().bytes())
    {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn sim_trace_from_env() -> Option<(usize, u64)> {
    let armed = std::env::var("NSC_TRACE").map(|v| v != "0" && !v.is_empty()).unwrap_or(false);
    if !armed {
        return None;
    }
    let cap = std::env::var("NSC_TRACE_CAP")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(4096);
    let every = std::env::var("NSC_TRACE_SAMPLE")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or(64);
    Some((cap.max(1), every.max(1)))
}

/// Binds `socket` and serves until a client sends `shutdown`, with
/// overload knobs read from the environment (see [`ServeConfig`]).
pub fn serve(socket: &Path, jobs: usize) -> io::Result<()> {
    serve_with(socket, ServeConfig::from_env(jobs))
}

/// Binds `socket` and serves until a client sends `shutdown`.
///
/// An existing socket file is removed first (a daemon that died without
/// cleanup would otherwise block the bind forever); it is removed again
/// on the way out.
pub fn serve_with(socket: &Path, cfg: ServeConfig) -> io::Result<()> {
    let _ = std::fs::remove_file(socket);
    let listener = UnixListener::bind(socket)?;
    let rid_seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
        ^ (std::process::id() as u64) << 32;
    let state = Arc::new(State::new(cfg, socket.to_owned(), rid_seed));
    log::info("nscd", || {
        format!(
            "serving on {} jobs={} cache={} sim_trace={} max_conns={} queue_cap={} deadline_ms={} chaos={} sample_ms={}",
            socket.display(),
            cfg.jobs,
            cache::enabled(),
            state.sim_trace.is_some(),
            cfg.max_conns,
            cfg.queue_cap,
            cfg.deadline_ms,
            state.fault.is_some(),
            cfg.sample_ms,
        )
    });
    // Telemetry sampler: one detached-by-join thread appending a frame
    // to the timeline ring every `sample_ms`. At 0 nothing is spawned —
    // the feature is fully off, not merely idle.
    let sampler = (cfg.sample_ms > 0).then(|| {
        let st = Arc::clone(&state);
        std::thread::spawn(move || {
            let t0 = Instant::now();
            let interval = st.cfg.sample_ms;
            // Sleep in short chunks so shutdown is observed promptly
            // even with a long sampling interval.
            let chunk = std::time::Duration::from_millis(interval.clamp(1, 100));
            let mut next = interval;
            while !st.shutdown.load(Ordering::SeqCst) {
                let now = t0.elapsed().as_millis() as u64;
                if now >= next {
                    let reg = metrics::global_snapshot();
                    st.timeline.lock().unwrap_or_else(|e| e.into_inner()).sample(now, &reg);
                    // Re-anchor instead of catching up: a stall produces
                    // one wide window, not a burst of zero-width frames.
                    next = now + interval;
                }
                std::thread::sleep(chunk);
            }
        })
    });
    let mut conns: Vec<std::thread::JoinHandle<()>> = Vec::new();
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = stream?;
        // Reap finished connection threads so a long-lived daemon does
        // not accumulate join handles without bound.
        conns.retain(|c| !c.is_finished());
        let st = Arc::clone(&state);
        conns.push(std::thread::spawn(move || handle_conn(&st, stream)));
    }
    for c in conns {
        let _ = c.join();
    }
    if let Some(s) = sampler {
        let _ = s.join();
    }
    let _ = std::fs::remove_file(socket);
    log::info("nscd", || {
        format!("shut down after {} served", state.served.load(Ordering::SeqCst))
    });
    Ok(())
    // `state`'s last Arc drops here; the pool's Drop drains any jobs
    // still queued before the workers exit (dead-connection jobs skip
    // their simulations via the `alive` check).
}

/// A response slot: either a line computed on a worker, or a thunk the
/// writer evaluates at delivery time — *after* every earlier response —
/// so `status` counters and `flush` acknowledgements observe all
/// preceding runs on the connection. A slot that returns an empty
/// string delivers nothing (used by reaped jobs whose client is gone).
type Slot = Box<dyn FnOnce() -> String + Send>;

/// Returns one admission-queue credit when dropped, whatever path the
/// job exits through.
struct QueueCredit(Arc<State>);

impl Drop for QueueCredit {
    fn drop(&mut self) {
        self.0.queued.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Decrements the live-connection count when the connection thread
/// exits (including the over-limit reject path).
struct ConnCredit(Arc<State>);

impl Drop for ConnCredit {
    fn drop(&mut self) {
        self.0.conns.fetch_sub(1, Ordering::SeqCst);
    }
}

/// One bounded line read.
enum ReadLine {
    /// A complete line (without its newline).
    Line(String),
    /// The line exceeded [`MAX_LINE_BYTES`]; input was discarded up to
    /// (and including) the next newline.
    TooLong,
    /// Clean end of stream.
    Eof,
}

/// Reads one newline-terminated line with a hard size cap, so a
/// misbehaving client cannot buffer unbounded memory in the daemon. A
/// final unterminated chunk at EOF is returned as a line (it will fail
/// request parsing and get a typed error like any other bad line).
fn read_bounded_line(r: &mut impl BufRead) -> io::Result<ReadLine> {
    let mut buf: Vec<u8> = Vec::new();
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(if buf.is_empty() {
                ReadLine::Eof
            } else {
                ReadLine::Line(String::from_utf8_lossy(&buf).into_owned())
            });
        }
        if let Some(pos) = chunk.iter().position(|&b| b == b'\n') {
            buf.extend_from_slice(&chunk[..pos]);
            r.consume(pos + 1);
            if buf.len() > MAX_LINE_BYTES {
                return Ok(ReadLine::TooLong);
            }
            return Ok(ReadLine::Line(String::from_utf8_lossy(&buf).into_owned()));
        }
        buf.extend_from_slice(chunk);
        let n = chunk.len();
        r.consume(n);
        if buf.len() > MAX_LINE_BYTES {
            buf.clear();
            skip_to_newline(r)?;
            return Ok(ReadLine::TooLong);
        }
    }
}

/// Discards input up to and including the next newline (or EOF).
fn skip_to_newline(r: &mut impl BufRead) -> io::Result<()> {
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            return Ok(());
        }
        match chunk.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                r.consume(pos + 1);
                return Ok(());
            }
            None => {
                let n = chunk.len();
                r.consume(n);
            }
        }
    }
}

/// Everything one admitted run needs to execute and report, whichever
/// thread it lands on (pool worker, or the connection thread in
/// degraded mode).
struct RunJob {
    id: u64,
    rid: u64,
    workload: String,
    size: Size,
    mode: ExecMode,
    /// Effective deadline (request's own, else the config default); 0
    /// disables.
    deadline_ms: u64,
    /// When the request line started arriving (span-epoch µs) — the
    /// deadline's anchor.
    t0: u64,
    /// When the job was enqueued (span-epoch µs).
    t_enq: u64,
    spans: SpanTrace,
    seq: u64,
    /// Admission-queue credit, returned on drop. `None` on the degraded
    /// inline path (which never claimed a slot).
    credit: Option<QueueCredit>,
}

/// Executes one admitted run and sends its response slot: deadline
/// check, disconnect reap, fault-plan install, the simulation itself,
/// and the delivery-time sealing closure.
fn run_job(
    stc: &Arc<State>,
    alive: &Arc<AtomicBool>,
    tx: &mpsc::Sender<(u64, Slot)>,
    job: RunJob,
) {
    let RunJob { id, rid, workload, size, mode, deadline_ms, t0, t_enq, mut spans, seq, credit } =
        job;
    spans.push("queue_wait", t_enq, span::now_us());

    // Disconnect reap: the writer saw the client die, so simulating
    // would be pure waste. Return the queue credit (via `credit`'s
    // drop) and deliver nothing.
    if !alive.load(Ordering::SeqCst) {
        metrics::count_global(Metric::ServeShed, 1);
        log::debug("serve", || {
            format!("run rid={rid:016x} reaped: client disconnected before dequeue (id={id})")
        });
        drop(credit);
        let _ = tx.send((seq, Box::new(String::new) as Slot));
        return;
    }

    // Deadline check at dequeue: shed before paying for a simulation
    // whose answer nobody is waiting for.
    let waited_ms = span::now_us().saturating_sub(t0) / 1_000;
    if deadline_ms > 0 && waited_ms >= deadline_ms {
        metrics::count_global(Metric::ServeDeadlineExceeded, 1);
        log::warn("serve", || {
            format!(
                "run rid={rid:016x} shed: deadline {deadline_ms}ms expired after {waited_ms}ms queued (id={id})"
            )
        });
        let t = span::now_us();
        spans.push("deadline_exceeded", t, t);
        let resp = shed_obj(
            id,
            rid,
            "deadline_exceeded",
            &format!("deadline {deadline_ms}ms expired after {waited_ms}ms in queue"),
            0,
        );
        drop(credit);
        let stc = Arc::clone(stc);
        let alive = Arc::clone(alive);
        let t_sent = span::now_us();
        let slot = Box::new(move || {
            spans.push("reorder_hold", t_sent, span::now_us());
            let tree = spans.finish();
            let latency = tree.to_json();
            if alive.load(Ordering::SeqCst) {
                stc.traces
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .insert(StoredTrace { tree, events: Vec::new() });
            }
            resp.str("latency", &latency).render()
        }) as Slot;
        let _ = tx.send((seq, slot));
        return;
    }

    let live = stc.in_flight.fetch_add(1, Ordering::SeqCst) + 1;
    metrics::gauge_global_max(Gauge::ServeInFlight, live as f64);
    // The run records into a thread-local shard; the shard is merged
    // into the daemon-global registry only at delivery time, inside the
    // per-connection reorder buffer, so merges land in submission
    // order.
    metrics::install(Registry::new());
    if let Some((cap, every)) = stc.sim_trace {
        trace::install(RingRecorder::new(cap), every);
    }
    // Chaos: the per-run plan is a pure function of the request
    // content, so replays (and the result-cache key it folds into) are
    // deterministic.
    let plan = stc.plan_for(&workload, size, mode);
    if let Some(p) = plan.clone() {
        fault::install(p);
    }
    let t_run = Instant::now();
    let outcome = execute_spanned(&workload, size, mode, &mut spans);
    let run_ms = t_run.elapsed().as_secs_f64() * 1e3;
    stc.note_run_us(t_run.elapsed().as_micros() as u64);
    if plan.is_some() {
        let _ = fault::uninstall();
    }
    metrics::count(Metric::ServeRequests);
    metrics::observe(Hist::ServeRunMs, run_ms);
    let mut store_resp = None;
    let resp = match outcome {
        Ok(out) => {
            metrics::count(Metric::ServeRuns);
            if out.cached {
                metrics::count(Metric::ServeRunsCached);
            }
            stc.served.fetch_add(1, Ordering::SeqCst);
            let r = spans.time("encode", || run_response(id, rid, &workload, mode, &out));
            store_resp = Some(());
            r
        }
        Err(e) => {
            metrics::count(Metric::ServeErrors);
            log::warn("serve", || format!("run rid={rid:016x} failed: {e}"));
            error_obj(id, &e).num("request_id", rid)
        }
    };
    let events = if stc.sim_trace.is_some() {
        trace::uninstall().map(|r| r.into_events().0).unwrap_or_default()
    } else {
        Vec::new()
    };
    let shard = metrics::uninstall();
    stc.in_flight.fetch_sub(1, Ordering::SeqCst);
    let t_sent = span::now_us();
    let stc = Arc::clone(stc);
    let alive = Arc::clone(alive);
    let slot = Box::new(move || {
        let t_eval = span::now_us();
        spans.push("reorder_hold", t_sent, t_eval);
        if let Some(shard) = &shard {
            metrics::absorb_global(shard);
        }
        spans.push("deliver", t_eval, span::now_us());
        let tree = spans.finish();
        metrics::observe_global(
            Hist::ServeQueueUs,
            tree.span("queue_wait").map_or(0.0, |s| s.dur_us as f64),
        );
        metrics::observe_global(Hist::ServeTotalUs, tree.wall_us as f64);
        log::info("serve", || {
            format!(
                "served rid={:016x} wall={}µs sim={}µs (id={id})",
                tree.request_id,
                tree.wall_us,
                tree.span("simulate").map_or(0, |s| s.dur_us),
            )
        });
        let latency = tree.to_json();
        let full = resp.str("latency", &latency);
        // Successful responses are kept for idempotent resubmission —
        // even (especially) when the client is already gone: that is
        // exactly the lost-response case a retry needs to dedup
        // against.
        if store_resp.is_some() {
            stc.completed
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(rid, full.clone());
        }
        // Dead connections stop feeding the trace store (reap).
        if alive.load(Ordering::SeqCst) {
            stc.traces
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .insert(StoredTrace { tree, events });
        }
        full.render()
    }) as Slot;
    let _ = tx.send((seq, slot));
    drop(credit);
}

/// One connection: read requests, dispatch, keep responses ordered.
fn handle_conn(st: &Arc<State>, mut stream: UnixStream) {
    let live_conns = st.conns.fetch_add(1, Ordering::SeqCst) + 1;
    let _conn_credit = ConnCredit(Arc::clone(st));
    // Connection semaphore: over-limit connections get one typed line
    // and are closed before a reader/writer pair is even set up.
    if live_conns as usize > st.cfg.max_conns {
        metrics::count_global(Metric::ServeConnsRejected, 1);
        log::warn("serve", || {
            format!("connection rejected: {live_conns} live > max_conns {}", st.cfg.max_conns)
        });
        let line = shed_obj(
            0,
            0,
            "overloaded",
            &format!("connection limit {} reached", st.cfg.max_conns),
            st.retry_after_hint(),
        )
        .render();
        let _ = writeln!(stream, "{line}").and_then(|()| stream.flush());
        return;
    }
    let Ok(read_half) = stream.try_clone() else { return };
    let mut reader = BufReader::new(read_half);
    let (tx, rx) = mpsc::channel::<(u64, Slot)>();
    let alive = Arc::new(AtomicBool::new(true));
    let writer = {
        let alive = Arc::clone(&alive);
        std::thread::spawn(move || write_ordered(stream, &rx, &alive))
    };
    let mut seq = 0u64;
    let mut want_shutdown = false;
    // request_ids already seen on this connection: a duplicate would
    // silently overwrite its predecessor in the trace store, so it is
    // rejected with a typed error instead. (Resubmission of a rid
    // *completed on an earlier connection* is the idempotent-retry
    // path and is answered from the completed store below.)
    let mut seen_rids: HashSet<u64> = HashSet::new();
    log::debug("serve", || "connection opened".to_owned());
    loop {
        let t_read0 = span::now_us();
        let line = match read_bounded_line(&mut reader) {
            Ok(ReadLine::Line(line)) => line,
            Ok(ReadLine::TooLong) => {
                log::warn("serve", || {
                    format!("request line over {MAX_LINE_BYTES} bytes discarded")
                });
                metrics::count_global(Metric::ServeErrors, 1);
                let resp =
                    error_response(0, &format!("request line exceeds {MAX_LINE_BYTES} bytes"));
                let _ = tx.send((seq, Box::new(move || resp) as Slot));
                seq += 1;
                continue;
            }
            Ok(ReadLine::Eof) | Err(_) => break,
        };
        if line.trim().is_empty() {
            continue;
        }
        let t_read1 = span::now_us();
        match Request::parse(&line) {
            Ok(Request::Run { id, request_id, workload, size, mode, deadline_ms }) => {
                let rid = if request_id == 0 { st.mint_rid() } else { request_id };
                if !seen_rids.insert(rid) {
                    log::warn("serve", || {
                        format!("duplicate request_id {rid:016x} rejected (id={id})")
                    });
                    metrics::count_global(Metric::ServeErrors, 1);
                    let resp = Response::Error {
                        id,
                        request_id: rid,
                        error: format!("duplicate request_id: {rid:016x}"),
                    }
                    .render();
                    let _ = tx.send((seq, Box::new(move || resp) as Slot));
                    seq += 1;
                    continue;
                }
                // Draining: reject new work immediately and typed, so
                // clients fail over instead of racing the accept loop.
                if st.shutdown.load(Ordering::SeqCst) {
                    metrics::count_global(Metric::ServeShed, 1);
                    log::info("serve", || {
                        format!("run rid={rid:016x} rejected: shutting down (id={id})")
                    });
                    let resp =
                        shed_obj(id, rid, "shutting_down", "daemon is draining for shutdown", 0)
                            .render();
                    let _ = tx.send((seq, Box::new(move || resp) as Slot));
                    seq += 1;
                    continue;
                }
                // Idempotent resubmission: a rid completed earlier (on
                // any connection) replays its stored response instead
                // of re-simulating.
                let replay = st
                    .completed
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .get(rid)
                    .cloned();
                if let Some(prev) = replay {
                    metrics::count_global(Metric::ServeDedupReplays, 1);
                    log::info("serve", || {
                        format!("run rid={rid:016x} deduped: replaying stored response (id={id})")
                    });
                    let resp = prev.set_num("id", id).bool("deduped", true).render();
                    let _ = tx.send((seq, Box::new(move || resp) as Slot));
                    seq += 1;
                    continue;
                }
                let mut spans = SpanTrace::begin_at(rid, t_read0);
                spans.push("accept", t_read0, t_read1);
                spans.push("parse", t_read1, span::now_us());
                let effective_deadline =
                    if deadline_ms > 0 { deadline_ms } else { st.cfg.deadline_ms };
                // Bounded admission: claim first (fetch_add), check,
                // undo on failure — a load-then-add would let two racing
                // submits both pass a nearly-full queue.
                let q = st.queued.fetch_add(1, Ordering::SeqCst) + 1;
                if q as usize > st.cfg.queue_cap {
                    st.queued.fetch_sub(1, Ordering::SeqCst);
                    // Degraded mode: saturation only sheds *misses*;
                    // a result already in the cache is replayed inline
                    // on this connection thread, off the admission
                    // queue and off the pool.
                    let plan = st.plan_for(&workload, size, mode);
                    let hit = {
                        if let Some(p) = plan.clone() {
                            fault::install(p);
                        }
                        let hit = crate::cache_would_hit(&workload, size, mode);
                        if plan.is_some() {
                            let _ = fault::uninstall();
                        }
                        hit
                    };
                    if hit {
                        log::info("serve", || {
                            format!(
                                "run rid={rid:016x} degraded: queue full, serving from cache (id={id})"
                            )
                        });
                        let job = RunJob {
                            id,
                            rid,
                            workload,
                            size,
                            mode,
                            deadline_ms: effective_deadline,
                            t0: t_read0,
                            t_enq: span::now_us(),
                            spans,
                            seq,
                            credit: None,
                        };
                        run_job(st, &alive, &tx, job);
                    } else {
                        metrics::count_global(Metric::ServeShed, 1);
                        let hint = st.retry_after_hint();
                        log::warn("serve", || {
                            format!(
                                "run rid={rid:016x} shed: queue full ({q} > {}), retry_after={hint}ms (id={id})",
                                st.cfg.queue_cap
                            )
                        });
                        let resp = shed_obj(
                            id,
                            rid,
                            "overloaded",
                            &format!("admission queue full ({} runs)", st.cfg.queue_cap),
                            hint,
                        )
                        .render();
                        let _ = tx.send((seq, Box::new(move || resp) as Slot));
                    }
                    seq += 1;
                    continue;
                }
                metrics::gauge_global_max(Gauge::ServeQueueDepth, q as f64);
                log::debug("serve", || {
                    format!(
                        "run rid={rid:016x} workload={workload} mode={} queued={q} (id={id})",
                        mode.label()
                    )
                });
                // Simulate on the shared pool; the response re-enters
                // the ordered stream at this request's sequence slot.
                let tx = tx.clone();
                let stc = Arc::clone(st);
                let alive = Arc::clone(&alive);
                let job = RunJob {
                    id,
                    rid,
                    workload,
                    size,
                    mode,
                    deadline_ms: effective_deadline,
                    t0: t_read0,
                    t_enq: span::now_us(),
                    spans,
                    seq,
                    credit: Some(QueueCredit(Arc::clone(st))),
                };
                st.pool.spawn(move || run_job(&stc, &alive, &tx, job));
            }
            Ok(Request::Status { id }) => {
                let stc = Arc::clone(st);
                let slot = Box::new(move || {
                    // Only an armed cache pays for a stats snapshot (the
                    // first one walks the cold tier's shard directories).
                    let (hits, misses) = if cache::enabled() {
                        let s = cache::shared().stats();
                        (s.hits(), s.misses())
                    } else {
                        (0, 0)
                    };
                    Response::Status {
                        id,
                        served: stc.served.load(Ordering::SeqCst),
                        cache_hits: hits,
                        cache_misses: misses,
                        jobs: stc.pool.workers() as u64,
                        cache_enabled: cache::enabled(),
                        uptime_ms: stc.started.elapsed().as_millis() as u64,
                        in_flight: stc.in_flight.load(Ordering::SeqCst),
                        queue_depth: stc.queued.load(Ordering::SeqCst),
                        queue_cap: stc.cfg.queue_cap as u64,
                        conns: stc.conns.load(Ordering::SeqCst),
                        max_conns: stc.cfg.max_conns as u64,
                    }
                    .render()
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Metrics { id }) => {
                // Evaluated at delivery time, after every earlier run on
                // this connection has been absorbed into the global
                // registry — so a submit-then-metrics batch always sees
                // its own runs.
                let slot = Box::new(move || {
                    Response::Metrics {
                        id,
                        schema: metrics::SCHEMA.to_owned(),
                        snapshot: metrics::global_snapshot().to_json(),
                    }
                    .render()
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Timeline { id, since }) => {
                let stc = Arc::clone(st);
                // Delivery-time read: the cursor answer reflects every
                // frame sampled up to the moment the response leaves the
                // reorder buffer.
                let slot = Box::new(move || {
                    let tl = stc.timeline.lock().unwrap_or_else(|e| e.into_inner());
                    Response::Timeline {
                        id,
                        count: tl.since(since).count() as u64,
                        latest_seq: tl.latest().map_or(0, |f| f.seq),
                        cap: tl.cap() as u64,
                        sample_ms: stc.cfg.sample_ms,
                        frames: tl.render_since(since),
                    }
                    .render()
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Health { id }) => {
                let stc = Arc::clone(st);
                let slot = Box::new(move || {
                    let tl = stc.timeline.lock().unwrap_or_else(|e| e.into_inner());
                    let report = timeline::evaluate(&stc.slo, &tl);
                    Response::Health {
                        id,
                        verdict: report.verdict.label().to_owned(),
                        frames_seen: report.frames_seen,
                        rules: report.to_ndjson(),
                    }
                    .render()
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Logs { id }) => {
                // Delivery-time drain: records logged by earlier runs on
                // this connection are already in the flight recorder.
                let slot = Box::new(move || {
                    let (recs, dropped) = log::drain();
                    let mut lines = String::new();
                    for r in &recs {
                        lines.push_str(&r.render());
                        lines.push('\n');
                    }
                    Response::Logs { id, count: recs.len() as u64, dropped, lines }.render()
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Trace { id, request_id, perfetto }) => {
                let stc = Arc::clone(st);
                // Delivery-time lookup: a submit earlier in this batch
                // has sealed and stored its tree by the time this slot
                // is evaluated, so submit-then-trace always works.
                let slot = Box::new(move || {
                    let store = stc.traces.lock().unwrap_or_else(|e| e.into_inner());
                    match store.map.get(&request_id) {
                        Some(t) => Response::Trace {
                            id,
                            request_id,
                            wall_us: t.tree.wall_us,
                            spans: t.tree.spans.len() as u64,
                            sim_events: t.events.len() as u64,
                            tree: t.tree.to_json(),
                            perfetto: perfetto.then(|| {
                                trace::chrome::render_with_spans(t.events.iter(), &t.tree)
                            }),
                        }
                        .render(),
                        None => Response::Error {
                            id,
                            request_id,
                            error: format!("unknown request_id: {request_id:016x}"),
                        }
                        .render(),
                    }
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Inspect { id, key }) => {
                // Delivery-time snapshot: earlier runs on this connection
                // have already stored/promoted their records, so a
                // submit-then-inspect batch sees its own tier movement.
                let slot = Box::new(move || {
                    match inspect_body(cache::shared(), key.as_deref()) {
                        Ok(body) => Response::Inspect { id, body }.render(),
                        Err(msg) => {
                            metrics::count_global(Metric::ServeErrors, 1);
                            Response::Error { id, request_id: 0, error: msg }.render()
                        }
                    }
                }) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Flush { id }) => {
                // Ordered delivery IS the barrier: this slot leaves the
                // reorder buffer only after every earlier response.
                let slot =
                    Box::new(move || Response::Flush { id, flushed: seq }.render()) as Slot;
                let _ = tx.send((seq, slot));
            }
            Ok(Request::Shutdown { id }) => {
                log::info("serve", || format!("shutdown requested (id={id})"));
                // Raise the flag NOW: every connection's next submit is
                // rejected with `shutting_down` while admitted runs
                // drain through the ordered streams. (Racing accepts
                // against the drain was the old, buggy behavior.)
                st.shutdown.store(true, Ordering::SeqCst);
                let slot = Box::new(move || Response::Shutdown { id }.render()) as Slot;
                let _ = tx.send((seq, slot));
                want_shutdown = true;
                break;
            }
            Err((id, msg)) => {
                log::warn("serve", || format!("bad request line (id={id}): {msg}"));
                metrics::count_global(Metric::ServeErrors, 1);
                let resp = error_response(id, &msg);
                let _ = tx.send((seq, Box::new(move || resp) as Slot));
            }
        }
        seq += 1;
    }
    // In-flight pool jobs hold `tx` clones; the writer exits once they
    // have all reported and this original handle drops.
    drop(tx);
    let _ = writer.join();
    log::debug("serve", || format!("connection closed after {seq} requests"));
    if want_shutdown {
        // Wake the accept loop so it observes the (already-set) flag.
        let _ = UnixStream::connect(&st.socket);
    }
}

/// Drains `(sequence, slot)` pairs, evaluating and writing each slot in
/// sequence order.
///
/// On the first failed write the connection's `alive` flag drops —
/// that is the daemon's disconnect signal — but the drain continues:
/// every remaining slot is still *evaluated* in order (worker metric
/// shards must be absorbed exactly once, in submission order) and its
/// bytes discarded. Queued jobs observe the dropped flag at dequeue and
/// skip their simulations.
fn write_ordered(mut out: UnixStream, rx: &mpsc::Receiver<(u64, Slot)>, alive: &AtomicBool) {
    let mut next = 0u64;
    let mut pending: BTreeMap<u64, Slot> = BTreeMap::new();
    for (seq, slot) in rx {
        pending.insert(seq, slot);
        while let Some(slot) = pending.remove(&next) {
            let line = slot();
            if alive.load(Ordering::SeqCst)
                && !line.is_empty()
                && writeln!(out, "{line}").and_then(|()| out.flush()).is_err()
            {
                alive.store(false, Ordering::SeqCst);
            }
            next += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_state() -> State {
        let cfg = ServeConfig {
            jobs: 1,
            max_conns: 4,
            queue_cap: 4,
            deadline_ms: 0,
            sample_ms: 0,
            timeline_cap: 16,
        };
        State::new(cfg, PathBuf::new(), 42)
    }

    #[test]
    fn bounded_reader_caps_and_recovers() {
        let long = "x".repeat(MAX_LINE_BYTES + 10);
        let input = format!("short\n{long}\nafter\ntail-no-newline");
        let mut r = BufReader::new(input.as_bytes());
        assert!(matches!(read_bounded_line(&mut r), Ok(ReadLine::Line(l)) if l == "short"));
        assert!(matches!(read_bounded_line(&mut r), Ok(ReadLine::TooLong)));
        assert!(matches!(read_bounded_line(&mut r), Ok(ReadLine::Line(l)) if l == "after"));
        assert!(
            matches!(read_bounded_line(&mut r), Ok(ReadLine::Line(l)) if l == "tail-no-newline")
        );
        assert!(matches!(read_bounded_line(&mut r), Ok(ReadLine::Eof)));
    }

    #[test]
    fn trace_store_evicts_oldest() {
        let mut s = TraceStore::new();
        for rid in 1..=(TRACE_STORE_CAP as u64 + 5) {
            let tree = SpanTrace::begin_at(rid, 0).finish();
            s.insert(StoredTrace { tree, events: Vec::new() });
        }
        assert_eq!(s.map.len(), TRACE_STORE_CAP);
        assert!(!s.map.contains_key(&1), "oldest entries must be evicted");
        assert!(s.map.contains_key(&(TRACE_STORE_CAP as u64 + 5)));
        // Re-inserting an existing rid must not grow the order queue.
        let tree = SpanTrace::begin_at(9, 0).finish();
        s.insert(StoredTrace { tree, events: Vec::new() });
        assert_eq!(s.order.len(), s.map.len());
    }

    #[test]
    fn completed_store_evicts_oldest() {
        let mut s = CompletedStore::new();
        for rid in 1..=(COMPLETED_STORE_CAP as u64 + 7) {
            s.insert(rid, Obj::new().num("request_id", rid));
        }
        assert_eq!(s.map.len(), COMPLETED_STORE_CAP);
        assert!(s.get(1).is_none(), "oldest entries must be evicted");
        assert!(s.get(COMPLETED_STORE_CAP as u64 + 7).is_some());
        // Re-inserting an existing rid must not grow the order queue.
        s.insert(20, Obj::new().num("request_id", 20));
        assert_eq!(s.order.len(), s.map.len());
    }

    #[test]
    fn minted_rids_are_unique_and_nonzero() {
        let st = test_state();
        let mut seen = HashSet::new();
        for _ in 0..1000 {
            let rid = st.mint_rid();
            assert_ne!(rid, 0);
            assert!(seen.insert(rid), "minted rid repeated");
        }
    }

    #[test]
    fn retry_hint_tracks_backlog_and_run_time() {
        let st = test_state();
        // Fresh daemon: minimal but non-zero hint.
        assert!(st.retry_after_hint() >= 1);
        st.note_run_us(8_000); // 8ms runs
        let quiet = st.retry_after_hint();
        st.queued.store(10, Ordering::SeqCst);
        let backed_up = st.retry_after_hint();
        assert!(
            backed_up > quiet,
            "a deeper backlog must raise the hint ({backed_up} vs {quiet})"
        );
        assert!(st.retry_after_hint() <= 10_000, "hint is clamped");
    }

    #[test]
    fn ewma_smooths_run_times() {
        let st = test_state();
        st.note_run_us(1_000);
        assert_eq!(st.run_ewma_us.load(Ordering::Relaxed), 1_000);
        st.note_run_us(9_000);
        let ewma = st.run_ewma_us.load(Ordering::Relaxed);
        assert!(ewma > 1_000 && ewma < 9_000, "ewma must sit between samples, got {ewma}");
    }

    #[test]
    fn request_digest_is_content_addressed() {
        let a = request_digest("histogram", Size::Tiny, ExecMode::Ns);
        let b = request_digest("histogram", Size::Tiny, ExecMode::Ns);
        assert_eq!(a, b, "same request content, same digest");
        assert_ne!(a, request_digest("bin_tree", Size::Tiny, ExecMode::Ns));
        assert_ne!(a, request_digest("histogram", Size::Small, ExecMode::Ns));
        assert_ne!(a, request_digest("histogram", Size::Tiny, ExecMode::Base));
    }

    #[test]
    fn config_from_env_defaults_are_sane() {
        // Only assert defaults when the env is clean (CI may arm them).
        if std::env::var_os("NSC_MAX_CONNS").is_none()
            && std::env::var_os("NSC_QUEUE_CAP").is_none()
            && std::env::var_os("NSC_DEADLINE_MS").is_none()
        {
            let cfg = ServeConfig::from_env(3);
            assert_eq!(cfg.jobs, 3);
            assert_eq!(cfg.max_conns, 64);
            assert_eq!(cfg.queue_cap, 128);
            assert_eq!(cfg.deadline_ms, 0);
        }
    }
}
