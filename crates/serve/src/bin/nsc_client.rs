//! `nsc-client` — CLI for the `nscd` simulation daemon.
//!
//! ```text
//! nsc-client submit [--socket PATH] [--size S] [--mode M] [--local] WORKLOAD...
//! nsc-client status [--socket PATH]
//! nsc-client flush  [--socket PATH]
//! nsc-client shutdown [--socket PATH]
//! ```

use near_stream::ExecMode;
use nsc_serve::client::{default_socket, roundtrip};
use nsc_serve::{decode_response_blob, execute, Request};
use nsc_workloads::Size;
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "nsc-client — talk to the nscd simulation daemon

Usage:
  nsc-client submit [OPTIONS] WORKLOAD...   run workloads (one request each)
  nsc-client status [--socket PATH]         daemon + cache counters
  nsc-client flush  [--socket PATH]         wait for in-flight runs to finish
  nsc-client shutdown [--socket PATH]       graceful daemon shutdown

Options:
  --socket PATH  daemon socket (default $NSCD_SOCKET or /tmp/nscd.sock)
  --size S       tiny | small | full   (default small)
  --mode M       execution mode label, e.g. Base, NS, NS-decouple (default NS)
  --local        run in-process instead of contacting the daemon
  -h, --help     print this help";

struct Opts {
    socket: PathBuf,
    size: Size,
    mode: ExecMode,
    local: bool,
    words: Vec<String>,
}

fn parse_opts(mut argv: impl Iterator<Item = String>) -> Opts {
    let mut o = Opts {
        socket: default_socket(),
        size: Size::Small,
        mode: ExecMode::Ns,
        local: false,
        words: Vec::new(),
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                exit(0);
            }
            "--socket" => o.socket = PathBuf::from(req_val(&mut argv, "--socket")),
            "--size" => {
                let v = req_val(&mut argv, "--size");
                o.size = nsc_bench::size_from_str(&v)
                    .unwrap_or_else(|| die(&format!("unknown size: {v}")));
            }
            "--mode" => {
                let v = req_val(&mut argv, "--mode");
                o.mode = ExecMode::parse(&v)
                    .unwrap_or_else(|| die(&format!("unknown mode: {v}")));
            }
            "--local" => o.local = true,
            w if w.starts_with('-') => die(&format!("unknown flag: {w}")),
            _ => o.words.push(a),
        }
    }
    o
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { die("missing subcommand") };
    match cmd.as_str() {
        "-h" | "--help" => println!("{USAGE}"),
        "submit" => submit(parse_opts(argv)),
        "status" | "flush" | "shutdown" => {
            let o = parse_opts(argv);
            if !o.words.is_empty() {
                die(&format!("{cmd} takes no positional arguments"));
            }
            let req = match cmd.as_str() {
                "status" => Request::Status { id: 0 },
                "flush" => Request::Flush { id: 0 },
                _ => Request::Shutdown { id: 0 },
            };
            match roundtrip(&o.socket, &[req]) {
                Ok(resps) => {
                    for r in &resps {
                        println!("{}", r.render());
                    }
                }
                Err(e) => die(&format!("{}: {e}", o.socket.display())),
            }
        }
        other => die(&format!("unknown subcommand: {other}")),
    }
}

fn submit(o: Opts) {
    if o.words.is_empty() {
        die("submit needs at least one workload name");
    }
    if o.local {
        for w in &o.words {
            match execute(w, o.size, o.mode) {
                Ok(out) => println!(
                    "{w:12} {:12} cycles={} cached={}",
                    o.mode.label(),
                    out.result.cycles,
                    out.cached
                ),
                Err(e) => die(&e),
            }
        }
        return;
    }
    let reqs: Vec<Request> = o
        .words
        .iter()
        .enumerate()
        .map(|(i, w)| Request::Run {
            id: i as u64 + 1,
            workload: w.clone(),
            size: o.size,
            mode: o.mode,
        })
        .collect();
    let resps = match roundtrip(&o.socket, &reqs) {
        Ok(r) => r,
        Err(e) => die(&format!("{}: {e}", o.socket.display())),
    };
    let mut failed = false;
    for resp in &resps {
        if resp.get_bool("ok") == Some(true) {
            let cycles = decode_response_blob(resp)
                .map(|c| c.result.cycles)
                .or_else(|| resp.get_num("cycles"))
                .unwrap_or(0);
            println!(
                "{:12} {:12} cycles={cycles} cached={}",
                resp.get_str("workload").unwrap_or("?"),
                resp.get_str("mode").unwrap_or("?"),
                resp.get_bool("cached").unwrap_or(false),
            );
        } else {
            failed = true;
            eprintln!(
                "request {} failed: {}",
                resp.get_num("id").unwrap_or(0),
                resp.get_str("error").unwrap_or("unknown error"),
            );
        }
    }
    if failed {
        exit(1);
    }
}

fn req_val(argv: &mut impl Iterator<Item = String>, flag: &str) -> String {
    argv.next().unwrap_or_else(|| die(&format!("{flag} requires a value")))
}

fn die(msg: &str) -> ! {
    eprintln!("nsc-client: {msg}\n\n{USAGE}");
    exit(2);
}
