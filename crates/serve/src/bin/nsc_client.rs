//! `nsc-client` — CLI for the `nscd` simulation daemon.
//!
//! ```text
//! nsc-client submit [--socket PATH] [--size S] [--mode M] [--local] [--latency] WORKLOAD...
//! nsc-client status [--socket PATH]
//! nsc-client metrics [--socket PATH] [--prom] [--watch N]
//! nsc-client logs   [--socket PATH]
//! nsc-client trace  [--socket PATH] [--perfetto FILE] REQUEST_ID
//! nsc-client inspect [--socket PATH] [--key HEX] [--local]
//! nsc-client flush  [--socket PATH]
//! nsc-client shutdown [--socket PATH]
//! ```
//!
//! `submit` mints a 64-bit request id per workload (printed as
//! `rid=<hex>`); `trace` takes that hex id back and prints the request's
//! span tree, optionally writing a combined Perfetto document (serve
//! spans + that run's simulator events) with `--perfetto`.

use near_stream::ExecMode;
use nsc_serve::client::{default_socket, roundtrip, roundtrip_retry, RetryPolicy};
use nsc_serve::{decode_response_blob, execute, inspect_body, InspectBody, Request, Response};
use nsc_sim::json::{parse, Json};
use nsc_workloads::Size;
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "nsc-client — talk to the nscd simulation daemon

Usage:
  nsc-client submit [OPTIONS] WORKLOAD...   run workloads (one request each)
  nsc-client status [--socket PATH]         daemon + cache counters
  nsc-client metrics [--socket PATH]        live metrics-registry snapshot
  nsc-client logs   [--socket PATH]         drain the daemon's log flight recorder
  nsc-client trace  [OPTIONS] REQUEST_ID    one request's span tree (hex id from submit)
  nsc-client inspect [OPTIONS]              tiered result-cache report (hot/cold stats)
  nsc-client flush  [--socket PATH]         wait for in-flight runs to finish
  nsc-client shutdown [--socket PATH]       graceful daemon shutdown

Options:
  --socket PATH    daemon socket (default $NSCD_SOCKET or /tmp/nscd.sock)
  --size S         tiny | small | full   (default small)
  --mode M         execution mode label, e.g. Base, NS, NS-decouple (default NS)
  --local          run in-process instead of contacting the daemon
  --latency        print each submit's per-span latency breakdown
  --deadline-ms N  per-request deadline; expired runs come back as typed sheds
  --retries N      retry budget for overloaded/shutting_down sheds
                   (default $NSC_RETRIES or 3; 0 disables)
  --retry-base-ms N  first backoff step, doubling per attempt (default 100)
  --retry-seed N   jitter seed — fixed seed, deterministic schedule
  --timeout-ms N   per-read socket timeout, 0 blocks forever (default 30000)
  --prom           render metrics in Prometheus text exposition format
  --watch N        clear + re-render metrics every N seconds, with counter deltas
  --perfetto FILE  (trace) also write a combined Perfetto trace document
  --key HEX        (inspect) probe one 32-hex-digit cache key's residency
  -h, --help       print this help

Retried submissions reuse their request id, so a run whose response was
lost is deduplicated by the daemon instead of simulated twice.";

struct Opts {
    socket: PathBuf,
    size: Size,
    mode: ExecMode,
    local: bool,
    latency: bool,
    deadline_ms: u64,
    retry: RetryPolicy,
    prom: bool,
    watch: Option<u64>,
    perfetto: Option<PathBuf>,
    key: Option<String>,
    words: Vec<String>,
}

fn parse_opts(mut argv: impl Iterator<Item = String>) -> Opts {
    let mut o = Opts {
        socket: default_socket(),
        size: Size::Small,
        mode: ExecMode::Ns,
        local: false,
        latency: false,
        deadline_ms: 0,
        retry: RetryPolicy::from_env(),
        prom: false,
        watch: None,
        perfetto: None,
        key: None,
        words: Vec::new(),
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                exit(0);
            }
            "--socket" => o.socket = PathBuf::from(req_val(&mut argv, "--socket")),
            "--size" => {
                let v = req_val(&mut argv, "--size");
                o.size = nsc_bench::size_from_str(&v)
                    .unwrap_or_else(|| die(&format!("unknown size: {v}")));
            }
            "--mode" => {
                let v = req_val(&mut argv, "--mode");
                o.mode = ExecMode::parse(&v)
                    .unwrap_or_else(|| die(&format!("unknown mode: {v}")));
            }
            "--local" => o.local = true,
            "--latency" => o.latency = true,
            "--deadline-ms" => o.deadline_ms = req_num(&mut argv, "--deadline-ms"),
            "--retries" => o.retry.max_retries = req_num(&mut argv, "--retries") as u32,
            "--retry-base-ms" => o.retry.base_ms = req_num(&mut argv, "--retry-base-ms"),
            "--retry-seed" => o.retry.seed = req_num(&mut argv, "--retry-seed"),
            "--timeout-ms" => o.retry.read_timeout_ms = req_num(&mut argv, "--timeout-ms"),
            "--prom" => o.prom = true,
            "--watch" => {
                let v = req_val(&mut argv, "--watch");
                let n = v.parse::<u64>().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    die(&format!("--watch wants a positive integer, got {v:?}"))
                });
                o.watch = Some(n);
            }
            "--perfetto" => o.perfetto = Some(PathBuf::from(req_val(&mut argv, "--perfetto"))),
            "--key" => o.key = Some(req_val(&mut argv, "--key")),
            w if w.starts_with('-') => die(&format!("unknown flag: {w}")),
            _ => o.words.push(a),
        }
    }
    o
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { die("missing subcommand") };
    match cmd.as_str() {
        "-h" | "--help" => println!("{USAGE}"),
        "submit" => submit(parse_opts(argv)),
        "metrics" => metrics_cmd(parse_opts(argv)),
        "logs" => logs_cmd(parse_opts(argv)),
        "trace" => trace_cmd(parse_opts(argv)),
        "inspect" => inspect_cmd(parse_opts(argv)),
        "status" | "flush" | "shutdown" => {
            let o = parse_opts(argv);
            if !o.words.is_empty() {
                die(&format!("{cmd} takes no positional arguments"));
            }
            let req = match cmd.as_str() {
                "status" => Request::Status { id: 0 },
                "flush" => Request::Flush { id: 0 },
                _ => Request::Shutdown { id: 0 },
            };
            match roundtrip(&o.socket, &[req]) {
                Ok(resps) => {
                    for r in &resps {
                        // The raw protocol line first (scripts grep it),
                        // then a human-oriented summary for `status`.
                        println!("{}", r.render());
                        if cmd == "status" && r.get_bool("ok") == Some(true) {
                            print_status_summary(r);
                        }
                    }
                }
                Err(e) => die(&format!("{}: {e}", o.socket.display())),
            }
        }
        other => die(&format!("unknown subcommand: {other}")),
    }
}

fn print_status_summary(r: &nsc_serve::json::Obj) {
    let uptime_s = r.get_num("uptime_ms").unwrap_or(0) as f64 / 1e3;
    eprintln!(
        "  uptime {uptime_s:.1}s, {} completed, {} in flight, cache {}/{} hit/miss ({}), {} workers",
        r.get_num("served").unwrap_or(0),
        r.get_num("in_flight").unwrap_or(0),
        r.get_num("cache_hits").unwrap_or(0),
        r.get_num("cache_misses").unwrap_or(0),
        if r.get_bool("cache_enabled") == Some(true) { "enabled" } else { "disabled" },
        r.get_num("jobs").unwrap_or(0),
    );
    eprintln!(
        "  queue {}/{}, connections {}/{}",
        r.get_num("queue_depth").unwrap_or(0),
        r.get_num("queue_cap").unwrap_or(0),
        r.get_num("conns").unwrap_or(0),
        r.get_num("max_conns").unwrap_or(0),
    );
}

/// `nsc-client metrics`: one status + one metrics request per poll; the
/// nested `nsc-metrics-v1` snapshot travels as an escaped string and is
/// re-parsed here with the full JSON parser.
fn metrics_cmd(o: Opts) {
    if !o.words.is_empty() {
        die("metrics takes no positional arguments");
    }
    // Previous tick's counter values, so watch mode can show deltas.
    let mut prev: Option<std::collections::BTreeMap<String, f64>> = None;
    let mut tick = 0u64;
    loop {
        let reqs = [Request::Status { id: 1 }, Request::Metrics { id: 2 }];
        let resps = match roundtrip(&o.socket, &reqs) {
            Ok(r) => r,
            Err(e) => die(&format!("{}: {e}", o.socket.display())),
        };
        let status = resps.first().filter(|r| r.get_bool("ok") == Some(true));
        let snap_line = resps
            .get(1)
            .filter(|r| r.get_bool("ok") == Some(true))
            .and_then(|r| r.get_str("snapshot"))
            .unwrap_or_else(|| die("daemon did not answer the metrics request"));
        let snap = parse(snap_line)
            .unwrap_or_else(|e| die(&format!("bad metrics snapshot from daemon: {e}")));
        let text = if o.prom {
            render_prom(status, &snap)
        } else {
            render_human(status, &snap, prev.as_ref())
        };
        match o.watch {
            Some(secs) => {
                // Clear + home, then redraw in place: under load the eye
                // stays on one position and the delta column shows what
                // moved this tick.
                tick += 1;
                print!("\x1b[2J\x1b[H");
                println!("nsc-client metrics --watch {secs}  (tick {tick}, ctrl-c to stop)");
                print!("{text}");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                prev = Some(counter_values(&snap));
                std::thread::sleep(std::time::Duration::from_secs(secs));
            }
            None => {
                print!("{text}");
                break;
            }
        }
    }
}

/// Flattens the snapshot's counters object into name → value.
fn counter_values(snap: &Json) -> std::collections::BTreeMap<String, f64> {
    obj(snap, "counters")
        .into_iter()
        .flatten()
        .map(|(label, v)| (label.clone(), v.as_f64().unwrap_or(0.0)))
        .collect()
}

/// `noc.byte_hops` -> `nsc_noc_byte_hops` (Prometheus metric names allow
/// `[a-zA-Z0-9_:]` only).
fn prom_name(label: &str) -> String {
    let mut out = String::with_capacity(label.len() + 4);
    out.push_str("nsc_");
    for c in label.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn obj<'a>(doc: &'a Json, key: &str) -> Option<&'a std::collections::BTreeMap<String, Json>> {
    doc.get(key).and_then(Json::as_obj)
}

fn render_prom(status: Option<&nsc_serve::json::Obj>, snap: &Json) -> String {
    let mut out = String::new();
    if let Some(st) = status {
        for key in [
            "uptime_ms",
            "served",
            "in_flight",
            "queue_depth",
            "queue_cap",
            "conns",
            "max_conns",
            "cache_hits",
            "cache_misses",
            "jobs",
        ] {
            if let Some(v) = st.get_num(key) {
                let name = prom_name(&format!("daemon.{key}"));
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
        }
    }
    for (label, v) in obj(snap, "counters").into_iter().flatten() {
        let name = prom_name(label) + "_total";
        let v = v.as_f64().unwrap_or(0.0);
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (label, v) in obj(snap, "gauges").into_iter().flatten() {
        let name = prom_name(label);
        let v = v.as_f64().unwrap_or(0.0);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (label, h) in obj(snap, "histograms").into_iter().flatten() {
        let name = prom_name(label);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, key) in [("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")] {
            if let Some(v) = h.get(key).and_then(Json::as_f64) {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
            }
        }
        out.push_str(&format!(
            "{name}_count {}\n",
            h.get("count").and_then(Json::as_f64).unwrap_or(0.0)
        ));
    }
    for (label, p) in obj(snap, "profile").into_iter().flatten() {
        let component = p.get("component").and_then(Json::as_str).unwrap_or("?");
        let sel = format!("{{kind=\"{label}\",component=\"{component}\"}}");
        out.push_str(&format!(
            "nsc_profile_events_total{sel} {}\n",
            p.get("events").and_then(Json::as_f64).unwrap_or(0.0)
        ));
        out.push_str(&format!(
            "nsc_profile_cycles_total{sel} {}\n",
            p.get("cycles").and_then(Json::as_f64).unwrap_or(0.0)
        ));
    }
    out
}

fn render_human(
    status: Option<&nsc_serve::json::Obj>,
    snap: &Json,
    prev: Option<&std::collections::BTreeMap<String, f64>>,
) -> String {
    let mut out = String::new();
    if let Some(st) = status {
        let uptime_s = st.get_num("uptime_ms").unwrap_or(0) as f64 / 1e3;
        out.push_str(&format!(
            "daemon: up {uptime_s:.1}s, {} completed, {} in flight, queue {}/{}, conns {}/{}, cache {}/{} hit/miss, {} workers\n",
            st.get_num("served").unwrap_or(0),
            st.get_num("in_flight").unwrap_or(0),
            st.get_num("queue_depth").unwrap_or(0),
            st.get_num("queue_cap").unwrap_or(0),
            st.get_num("conns").unwrap_or(0),
            st.get_num("max_conns").unwrap_or(0),
            st.get_num("cache_hits").unwrap_or(0),
            st.get_num("cache_misses").unwrap_or(0),
            st.get_num("jobs").unwrap_or(0),
        ));
    }
    out.push_str("counters:\n");
    for (label, v) in obj(snap, "counters").into_iter().flatten() {
        let v = v.as_f64().unwrap_or(0.0);
        if v != 0.0 {
            match prev {
                Some(p) => {
                    let delta = v - p.get(label).copied().unwrap_or(0.0);
                    out.push_str(&format!("  {label:40} {v:>12} {:>10}\n", format!("+{delta}")));
                }
                None => out.push_str(&format!("  {label:40} {v}\n")),
            }
        }
    }
    out.push_str("gauges:\n");
    for (label, v) in obj(snap, "gauges").into_iter().flatten() {
        out.push_str(&format!("  {label:40} {}\n", v.as_f64().unwrap_or(0.0)));
    }
    out.push_str("histograms:\n");
    for (label, h) in obj(snap, "histograms").into_iter().flatten() {
        let count = h.get("count").and_then(Json::as_f64).unwrap_or(0.0);
        if count == 0.0 {
            continue;
        }
        out.push_str(&format!(
            "  {label:40} n={count} mean={:.2} p50={} p90={} p99={}\n",
            h.get("mean").and_then(Json::as_f64).unwrap_or(0.0),
            fmt_q(h.get("p50")),
            fmt_q(h.get("p90")),
            fmt_q(h.get("p99")),
        ));
    }
    out.push_str("profile:\n");
    for (label, p) in obj(snap, "profile").into_iter().flatten() {
        let events = p.get("events").and_then(Json::as_f64).unwrap_or(0.0);
        if events == 0.0 {
            continue;
        }
        out.push_str(&format!(
            "  {label:40} events={events} cycles={}\n",
            p.get("cycles").and_then(Json::as_f64).unwrap_or(0.0),
        ));
    }
    out
}

fn fmt_q(v: Option<&Json>) -> String {
    match v.and_then(Json::as_f64) {
        Some(x) => format!("{x:.1}"),
        None => "-".to_owned(),
    }
}

/// Mints client-side request ids: time- and pid-seeded so concurrent
/// clients against one daemon do not collide, never 0 (0 = "unset").
fn rid_minter() -> impl FnMut() -> u64 {
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
        ^ (std::process::id() as u64).rotate_left(32);
    let mut rng = nsc_sim::rng::Rng::seed_from_u64(seed);
    move || loop {
        let rid = rng.next_u64();
        if rid != 0 {
            return rid;
        }
    }
}

fn submit(o: Opts) {
    if o.words.is_empty() {
        die("submit needs at least one workload name");
    }
    if o.local {
        for w in &o.words {
            match execute(w, o.size, o.mode) {
                Ok(out) => println!(
                    "{w:12} {:12} cycles={} cached={}",
                    o.mode.label(),
                    out.result.cycles,
                    out.cached
                ),
                Err(e) => die(&e),
            }
        }
        return;
    }
    let mut mint = rid_minter();
    let reqs: Vec<Request> = o
        .words
        .iter()
        .enumerate()
        .map(|(i, w)| Request::Run {
            id: i as u64 + 1,
            request_id: mint(),
            workload: w.clone(),
            size: o.size,
            mode: o.mode,
            deadline_ms: o.deadline_ms,
        })
        .collect();
    let outcome = match roundtrip_retry(&o.socket, &reqs, &o.retry) {
        Ok(r) => r,
        Err(e) => die(&format!("{}: {e}", o.socket.display())),
    };
    if outcome.retries > 0 {
        eprintln!("  {} request(s) resubmitted after typed sheds", outcome.retries);
    }
    let mut failed = false;
    for resp in &outcome.resps {
        if resp.get_bool("ok") == Some(true) {
            let cycles = decode_response_blob(resp)
                .map(|c| c.result.cycles)
                .or_else(|| resp.get_num("cycles"))
                .unwrap_or(0);
            println!(
                "{:12} {:12} cycles={cycles} cached={} rid={:016x}",
                resp.get_str("workload").unwrap_or("?"),
                resp.get_str("mode").unwrap_or("?"),
                resp.get_bool("cached").unwrap_or(false),
                resp.get_num("request_id").unwrap_or(0),
            );
            if o.latency {
                match resp.get_str("latency").map(parse) {
                    Some(Ok(tree)) => print!("{}", render_span_rows(&tree)),
                    _ => eprintln!("  (no latency breakdown in response)"),
                }
            }
        } else {
            failed = true;
            match resp.get_str("shed") {
                Some(reason) => eprintln!(
                    "request {} shed ({reason}): {}",
                    resp.get_num("id").unwrap_or(0),
                    resp.get_str("error").unwrap_or("unknown error"),
                ),
                None => eprintln!(
                    "request {} failed: {}",
                    resp.get_num("id").unwrap_or(0),
                    resp.get_str("error").unwrap_or("unknown error"),
                ),
            }
        }
    }
    if failed {
        exit(1);
    }
}

/// `nsc-client logs`: drain the daemon's flight recorder. Record lines
/// (one JSON object each) go to stdout; the drain summary to stderr.
fn logs_cmd(o: Opts) {
    if !o.words.is_empty() {
        die("logs takes no positional arguments");
    }
    let resps = match roundtrip(&o.socket, &[Request::Logs { id: 1 }]) {
        Ok(r) => r,
        Err(e) => die(&format!("{}: {e}", o.socket.display())),
    };
    let resp = resps
        .first()
        .filter(|r| r.get_bool("ok") == Some(true))
        .unwrap_or_else(|| die("daemon did not answer the logs request"));
    print!("{}", resp.get_str("lines").unwrap_or(""));
    eprintln!(
        "  {} records drained, {} dropped since last drain",
        resp.get_num("count").unwrap_or(0),
        resp.get_num("dropped").unwrap_or(0),
    );
}

/// `nsc-client inspect`: report the tiered result cache. The raw protocol
/// line goes to stdout (scripts grep the flat `hot_*`/`cold_*` fields); a
/// per-tier table plus the hottest keys goes to stderr. `--key HEX` probes
/// one key's residency; `--local` reads this process's cache instead of a
/// daemon's.
fn inspect_cmd(o: Opts) {
    if !o.words.is_empty() {
        die("inspect takes no positional arguments (use --key HEX to probe a key)");
    }
    let body = if o.local {
        let body = inspect_body(nsc_sim::cache::shared(), o.key.as_deref())
            .unwrap_or_else(|e| die(&e));
        println!("{}", Response::Inspect { id: 0, body: body.clone() }.render());
        body
    } else {
        let req = Request::Inspect { id: 1, key: o.key.clone() };
        let resps = match roundtrip(&o.socket, &[req]) {
            Ok(r) => r,
            Err(e) => die(&format!("{}: {e}", o.socket.display())),
        };
        let Some(resp) = resps.first() else { die("daemon did not answer the inspect request") };
        println!("{}", resp.render());
        match Response::from_obj(resp) {
            Some(Response::Inspect { body, .. }) => body,
            Some(Response::Error { error, .. }) => die(&error),
            _ => die("unexpected response to inspect"),
        }
    };
    print_inspect_summary(&body);
}

fn print_inspect_summary(b: &InspectBody) {
    let budget = |v: u64, unbounded: &str| {
        if v == 0 { unbounded.to_string() } else { v.to_string() }
    };
    eprintln!(
        "  cache {}, compression {}",
        if b.enabled { "enabled" } else { "disabled" },
        if b.compress { "on" } else { "off" },
    );
    eprintln!(
        "  {:<5} {:>9} {:>9} {:>9} {:>10} {:>8} {:>11} {:>11}",
        "tier", "hits", "misses", "stores", "evictions", "entries", "bytes", "budget",
    );
    for (name, t, budget_str) in [
        ("hot", &b.hot, budget(b.mem_budget, "off")),
        ("cold", &b.cold, budget(b.disk_budget, "unbounded")),
    ] {
        eprintln!(
            "  {:<5} {:>9} {:>9} {:>9} {:>10} {:>8} {:>11} {:>11}",
            name, t.hits, t.misses, t.stores, t.evictions, t.entries, t.bytes, budget_str,
        );
    }
    if !b.hottest.is_empty() {
        eprintln!("  hottest (key:hits): {}", b.hottest);
    }
    if let Some(k) = &b.key {
        eprintln!(
            "  key {}: hot={} cold={} bytes={} hot_hits={}",
            k.key,
            if k.in_hot { "yes" } else { "no" },
            if k.in_cold { "yes" } else { "no" },
            k.bytes,
            k.hits,
        );
    }
}

/// `nsc-client trace REQUEST_ID`: print one request's span tree as
/// awk-friendly rows; `--perfetto FILE` additionally writes a combined
/// serve-spans + sim-events Chrome trace document.
fn trace_cmd(o: Opts) {
    let [rid_word] = o.words.as_slice() else {
        die("trace takes exactly one REQUEST_ID (the hex rid printed by submit)")
    };
    let rid = u64::from_str_radix(rid_word.trim_start_matches("0x"), 16)
        .unwrap_or_else(|_| die(&format!("bad REQUEST_ID (want hex): {rid_word:?}")));
    let req = Request::Trace { id: 1, request_id: rid, perfetto: o.perfetto.is_some() };
    let resps = match roundtrip(&o.socket, &[req]) {
        Ok(r) => r,
        Err(e) => die(&format!("{}: {e}", o.socket.display())),
    };
    let Some(resp) = resps.first() else { die("daemon did not answer the trace request") };
    if resp.get_bool("ok") != Some(true) {
        die(resp.get_str("error").unwrap_or("trace request failed"));
    }
    let tree = resp
        .get_str("tree")
        .map(parse)
        .unwrap_or_else(|| die("trace response carried no tree"))
        .unwrap_or_else(|e| die(&format!("bad span tree from daemon: {e}")));
    println!(
        "request {rid:016x}: wall {}µs, {} spans, {} sim events",
        resp.get_num("wall_us").unwrap_or(0),
        resp.get_num("spans").unwrap_or(0),
        resp.get_num("sim_events").unwrap_or(0),
    );
    print!("{}", render_span_rows(&tree));
    if let Some(path) = &o.perfetto {
        let doc = resp
            .get_str("perfetto")
            .unwrap_or_else(|| die("daemon sent no perfetto document"));
        if let Err(e) = std::fs::write(path, doc) {
            die(&format!("writing {}: {e}", path.display()));
        }
        eprintln!("  wrote combined Perfetto trace to {}", path.display());
    }
}

/// One indented `name start dur` row per span of a parsed
/// `nsc-span-v1` tree.
fn render_span_rows(tree: &Json) -> String {
    let mut out = String::new();
    for s in tree.get("spans").and_then(Json::as_arr).into_iter().flatten() {
        out.push_str(&format!(
            "  {:<14} {:>8}µs {:>8}µs\n",
            s.get("name").and_then(Json::as_str).unwrap_or("?"),
            s.get("start_us").and_then(Json::as_f64).unwrap_or(0.0),
            s.get("dur_us").and_then(Json::as_f64).unwrap_or(0.0),
        ));
    }
    out
}

fn req_val(argv: &mut impl Iterator<Item = String>, flag: &str) -> String {
    argv.next().unwrap_or_else(|| die(&format!("{flag} requires a value")))
}

fn req_num(argv: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    let v = req_val(argv, flag);
    v.parse().unwrap_or_else(|_| die(&format!("{flag} wants an integer, got {v:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("nsc-client: {msg}\n\n{USAGE}");
    exit(2);
}
