//! `nsc-client` — CLI for the `nscd` simulation daemon.
//!
//! ```text
//! nsc-client submit [--socket PATH] [--size S] [--mode M] [--local] [--latency] WORKLOAD...
//! nsc-client status [--socket PATH]
//! nsc-client metrics [--socket PATH] [--prom] [--watch N]
//! nsc-client logs   [--socket PATH]
//! nsc-client trace  [--socket PATH] [--perfetto FILE] REQUEST_ID
//! nsc-client inspect [--socket PATH] [--key HEX] [--local]
//! nsc-client timeline [--socket PATH] [--since N] [--follow]
//! nsc-client health [--socket PATH]
//! nsc-client dashboard [--socket PATH] --out FILE
//! nsc-client flush  [--socket PATH]
//! nsc-client shutdown [--socket PATH]
//! ```
//!
//! `submit` mints a 64-bit request id per workload (printed as
//! `rid=<hex>`); `trace` takes that hex id back and prints the request's
//! span tree, optionally writing a combined Perfetto document (serve
//! spans + that run's simulator events) with `--perfetto`.

use near_stream::ExecMode;
use nsc_serve::client::{default_socket, roundtrip, roundtrip_retry, RetryPolicy};
use nsc_serve::{decode_response_blob, execute, inspect_body, InspectBody, Request, Response};
use nsc_sim::json::{parse, Json};
use nsc_workloads::Size;
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "nsc-client — talk to the nscd simulation daemon

Usage:
  nsc-client submit [OPTIONS] WORKLOAD...   run workloads (one request each)
  nsc-client status [--socket PATH]         daemon + cache counters
  nsc-client metrics [--socket PATH]        live metrics-registry snapshot
  nsc-client logs   [--socket PATH]         drain the daemon's log flight recorder
  nsc-client trace  [OPTIONS] REQUEST_ID    one request's span tree (hex id from submit)
  nsc-client inspect [OPTIONS]              tiered result-cache report (hot/cold stats)
  nsc-client timeline [OPTIONS]             sampled telemetry frames as ndjson
  nsc-client health [--socket PATH]         SLO verdict (ok | degraded | failing)
  nsc-client dashboard --out FILE           self-contained HTML dashboard
  nsc-client flush  [--socket PATH]         wait for in-flight runs to finish
  nsc-client shutdown [--socket PATH]       graceful daemon shutdown

Options:
  --socket PATH    daemon socket (default $NSCD_SOCKET or /tmp/nscd.sock)
  --size S         tiny | small | full   (default small)
  --mode M         execution mode label, e.g. Base, NS, NS-decouple (default NS)
  --local          run in-process instead of contacting the daemon
  --latency        print each submit's per-span latency breakdown
  --deadline-ms N  per-request deadline; expired runs come back as typed sheds
  --retries N      retry budget for overloaded/shutting_down sheds
                   (default $NSC_RETRIES or 3; 0 disables)
  --retry-base-ms N  first backoff step, doubling per attempt (default 100)
  --retry-seed N   jitter seed — fixed seed, deterministic schedule
  --timeout-ms N   per-read socket timeout, 0 blocks forever (default 30000)
  --prom           render metrics in Prometheus text exposition format
  --watch N        clear + re-render metrics every N seconds, with counter deltas
  --perfetto FILE  (trace) also write a combined Perfetto trace document
  --key HEX        (inspect) probe one 32-hex-digit cache key's residency
  --since N        (timeline) only frames with seq > N (cursor pagination)
  --follow         (timeline) keep polling and stream new frames as they land
  --out FILE       (dashboard) where to write the HTML document
  -h, --help       print this help

Retried submissions reuse their request id, so a run whose response was
lost is deduplicated by the daemon instead of simulated twice.";

struct Opts {
    socket: PathBuf,
    size: Size,
    mode: ExecMode,
    local: bool,
    latency: bool,
    deadline_ms: u64,
    retry: RetryPolicy,
    prom: bool,
    watch: Option<u64>,
    perfetto: Option<PathBuf>,
    key: Option<String>,
    since: u64,
    follow: bool,
    out: Option<PathBuf>,
    words: Vec<String>,
}

fn parse_opts(mut argv: impl Iterator<Item = String>) -> Opts {
    let mut o = Opts {
        socket: default_socket(),
        size: Size::Small,
        mode: ExecMode::Ns,
        local: false,
        latency: false,
        deadline_ms: 0,
        retry: RetryPolicy::from_env(),
        prom: false,
        watch: None,
        perfetto: None,
        key: None,
        since: 0,
        follow: false,
        out: None,
        words: Vec::new(),
    };
    while let Some(a) = argv.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                exit(0);
            }
            "--socket" => o.socket = PathBuf::from(req_val(&mut argv, "--socket")),
            "--size" => {
                let v = req_val(&mut argv, "--size");
                o.size = nsc_bench::size_from_str(&v)
                    .unwrap_or_else(|| die(&format!("unknown size: {v}")));
            }
            "--mode" => {
                let v = req_val(&mut argv, "--mode");
                o.mode = ExecMode::parse(&v)
                    .unwrap_or_else(|| die(&format!("unknown mode: {v}")));
            }
            "--local" => o.local = true,
            "--latency" => o.latency = true,
            "--deadline-ms" => o.deadline_ms = req_num(&mut argv, "--deadline-ms"),
            "--retries" => o.retry.max_retries = req_num(&mut argv, "--retries") as u32,
            "--retry-base-ms" => o.retry.base_ms = req_num(&mut argv, "--retry-base-ms"),
            "--retry-seed" => o.retry.seed = req_num(&mut argv, "--retry-seed"),
            "--timeout-ms" => o.retry.read_timeout_ms = req_num(&mut argv, "--timeout-ms"),
            "--prom" => o.prom = true,
            "--watch" => {
                let v = req_val(&mut argv, "--watch");
                let n = v.parse::<u64>().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    die(&format!("--watch wants a positive integer, got {v:?}"))
                });
                o.watch = Some(n);
            }
            "--perfetto" => o.perfetto = Some(PathBuf::from(req_val(&mut argv, "--perfetto"))),
            "--key" => o.key = Some(req_val(&mut argv, "--key")),
            "--since" => o.since = req_num(&mut argv, "--since"),
            "--follow" => o.follow = true,
            "--out" => o.out = Some(PathBuf::from(req_val(&mut argv, "--out"))),
            w if w.starts_with('-') => die(&format!("unknown flag: {w}")),
            _ => o.words.push(a),
        }
    }
    o
}

fn main() {
    let mut argv = std::env::args().skip(1);
    let Some(cmd) = argv.next() else { die("missing subcommand") };
    match cmd.as_str() {
        "-h" | "--help" => println!("{USAGE}"),
        "submit" => submit(parse_opts(argv)),
        "metrics" => metrics_cmd(parse_opts(argv)),
        "logs" => logs_cmd(parse_opts(argv)),
        "trace" => trace_cmd(parse_opts(argv)),
        "inspect" => inspect_cmd(parse_opts(argv)),
        "timeline" => timeline_cmd(parse_opts(argv)),
        "health" => health_cmd(parse_opts(argv)),
        "dashboard" => dashboard_cmd(parse_opts(argv)),
        "status" | "flush" | "shutdown" => {
            let o = parse_opts(argv);
            if !o.words.is_empty() {
                die(&format!("{cmd} takes no positional arguments"));
            }
            let req = match cmd.as_str() {
                "status" => Request::Status { id: 0 },
                "flush" => Request::Flush { id: 0 },
                _ => Request::Shutdown { id: 0 },
            };
            match roundtrip(&o.socket, &[req]) {
                Ok(resps) => {
                    for r in &resps {
                        // The raw protocol line first (scripts grep it),
                        // then a human-oriented summary for `status`.
                        println!("{}", r.render());
                        if cmd == "status" && r.get_bool("ok") == Some(true) {
                            print_status_summary(r);
                        }
                    }
                }
                Err(e) => die(&format!("{}: {e}", o.socket.display())),
            }
        }
        other => die(&format!("unknown subcommand: {other}")),
    }
}

fn print_status_summary(r: &nsc_serve::json::Obj) {
    let uptime_s = r.get_num("uptime_ms").unwrap_or(0) as f64 / 1e3;
    eprintln!(
        "  uptime {uptime_s:.1}s, {} completed, {} in flight, cache {}/{} hit/miss ({}), {} workers",
        r.get_num("served").unwrap_or(0),
        r.get_num("in_flight").unwrap_or(0),
        r.get_num("cache_hits").unwrap_or(0),
        r.get_num("cache_misses").unwrap_or(0),
        if r.get_bool("cache_enabled") == Some(true) { "enabled" } else { "disabled" },
        r.get_num("jobs").unwrap_or(0),
    );
    eprintln!(
        "  queue {}/{}, connections {}/{}",
        r.get_num("queue_depth").unwrap_or(0),
        r.get_num("queue_cap").unwrap_or(0),
        r.get_num("conns").unwrap_or(0),
        r.get_num("max_conns").unwrap_or(0),
    );
}

/// `nsc-client metrics`: one status + one metrics request per poll; the
/// nested `nsc-metrics-v1` snapshot travels as an escaped string and is
/// re-parsed here with the full JSON parser.
///
/// Watch mode also fetches the daemon's latest timeline frame, so the
/// headline rates (req/s, shed/s, windowed p50/p99) are daemon-side
/// deltas — consistent for every watcher — instead of client-side
/// subtraction. The per-counter delta column is still client-side, but
/// a counter that goes *backwards* (daemon restarted mid-watch) renders
/// a `reset` marker instead of a bogus huge delta.
fn metrics_cmd(o: Opts) {
    if !o.words.is_empty() {
        die("metrics takes no positional arguments");
    }
    // Previous tick's counter values, so watch mode can show deltas.
    let mut prev: Option<std::collections::BTreeMap<String, f64>> = None;
    let mut tick = 0u64;
    loop {
        let reqs = [Request::Status { id: 1 }, Request::Metrics { id: 2 }];
        let resps = match roundtrip(&o.socket, &reqs) {
            Ok(r) => r,
            Err(e) => die(&format!("{}: {e}", o.socket.display())),
        };
        let status = resps.first().filter(|r| r.get_bool("ok") == Some(true));
        let snap_line = resps
            .get(1)
            .filter(|r| r.get_bool("ok") == Some(true))
            .and_then(|r| r.get_str("snapshot"))
            .unwrap_or_else(|| die("daemon did not answer the metrics request"));
        let snap = parse(snap_line)
            .unwrap_or_else(|e| die(&format!("bad metrics snapshot from daemon: {e}")));
        let text = if o.prom {
            render_prom(status, &snap)
        } else {
            render_human(status, &snap, prev.as_ref())
        };
        match o.watch {
            Some(secs) => {
                // Clear + home, then redraw in place: under load the eye
                // stays on one position and the delta column shows what
                // moved this tick.
                tick += 1;
                print!("\x1b[2J\x1b[H");
                println!("nsc-client metrics --watch {secs}  (tick {tick}, ctrl-c to stop)");
                println!("{}", window_headline(&o));
                print!("{text}");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
                prev = Some(counter_values(&snap));
                std::thread::sleep(std::time::Duration::from_secs(secs));
            }
            None => {
                print!("{text}");
                break;
            }
        }
    }
}

/// The daemon-side per-window rates headline for watch mode, from the
/// newest timeline frame (empty-signal fields render as `-`).
fn window_headline(o: &Opts) -> String {
    let resps = match roundtrip(&o.socket, &[Request::Timeline { id: 3, since: 0 }]) {
        Ok(r) => r,
        Err(_) => return "window: (timeline unavailable)".to_owned(),
    };
    let Some(resp) = resps.into_iter().next().filter(|r| r.get_bool("ok") == Some(true)) else {
        return "window: (timeline unavailable)".to_owned();
    };
    if resp.get_num("sample_ms") == Some(0) {
        return "window: (sampler disabled: NSC_SAMPLE_MS=0)".to_owned();
    }
    let Some(last) = resp.get_str("frames").unwrap_or("").lines().last().map(str::to_owned)
    else {
        return "window: (no frames yet)".to_owned();
    };
    let Ok(f) = parse(&last) else { return "window: (bad frame)".to_owned() };
    let num = |k: &str| f.get(k).and_then(Json::as_f64);
    let opt = |k: &str| num(k).map(fmt_stat).unwrap_or_else(|| "-".to_owned());
    format!(
        "window: {}ms  req/s {}  shed/s {}  p50 {}µs  p99 {}µs  hit {}",
        num("window_ms").unwrap_or(0.0),
        opt("req_s"),
        opt("shed_s"),
        opt("p50_us"),
        opt("p99_us"),
        opt("hit_rate"),
    )
}

/// Flattens the snapshot's counters object into name → value.
fn counter_values(snap: &Json) -> std::collections::BTreeMap<String, f64> {
    obj(snap, "counters")
        .into_iter()
        .flatten()
        .map(|(label, v)| (label.clone(), v.as_f64().unwrap_or(0.0)))
        .collect()
}

/// `noc.byte_hops` -> `nsc_noc_byte_hops` (Prometheus metric names allow
/// `[a-zA-Z0-9_:]` only).
fn prom_name(label: &str) -> String {
    let mut out = String::with_capacity(label.len() + 4);
    out.push_str("nsc_");
    for c in label.chars() {
        out.push(if c.is_ascii_alphanumeric() { c } else { '_' });
    }
    out
}

fn obj<'a>(doc: &'a Json, key: &str) -> Option<&'a std::collections::BTreeMap<String, Json>> {
    doc.get(key).and_then(Json::as_obj)
}

fn render_prom(status: Option<&nsc_serve::json::Obj>, snap: &Json) -> String {
    let mut out = String::new();
    if let Some(st) = status {
        for key in [
            "uptime_ms",
            "served",
            "in_flight",
            "queue_depth",
            "queue_cap",
            "conns",
            "max_conns",
            "cache_hits",
            "cache_misses",
            "jobs",
        ] {
            if let Some(v) = st.get_num(key) {
                let name = prom_name(&format!("daemon.{key}"));
                out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
            }
        }
    }
    for (label, v) in obj(snap, "counters").into_iter().flatten() {
        let name = prom_name(label) + "_total";
        let v = v.as_f64().unwrap_or(0.0);
        out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
    }
    for (label, v) in obj(snap, "gauges").into_iter().flatten() {
        let name = prom_name(label);
        let v = v.as_f64().unwrap_or(0.0);
        out.push_str(&format!("# TYPE {name} gauge\n{name} {v}\n"));
    }
    for (label, h) in obj(snap, "histograms").into_iter().flatten() {
        let name = prom_name(label);
        out.push_str(&format!("# TYPE {name} summary\n"));
        for (q, key) in [("0.5", "p50"), ("0.9", "p90"), ("0.99", "p99")] {
            if let Some(v) = h.get(key).and_then(Json::as_f64) {
                out.push_str(&format!("{name}{{quantile=\"{q}\"}} {v}\n"));
            }
        }
        out.push_str(&format!(
            "{name}_count {}\n",
            h.get("count").and_then(Json::as_f64).unwrap_or(0.0)
        ));
    }
    for (label, p) in obj(snap, "profile").into_iter().flatten() {
        let component = p.get("component").and_then(Json::as_str).unwrap_or("?");
        let sel = format!("{{kind=\"{label}\",component=\"{component}\"}}");
        out.push_str(&format!(
            "nsc_profile_events_total{sel} {}\n",
            p.get("events").and_then(Json::as_f64).unwrap_or(0.0)
        ));
        out.push_str(&format!(
            "nsc_profile_cycles_total{sel} {}\n",
            p.get("cycles").and_then(Json::as_f64).unwrap_or(0.0)
        ));
    }
    out
}

fn render_human(
    status: Option<&nsc_serve::json::Obj>,
    snap: &Json,
    prev: Option<&std::collections::BTreeMap<String, f64>>,
) -> String {
    let mut out = String::new();
    if let Some(st) = status {
        let uptime_s = st.get_num("uptime_ms").unwrap_or(0) as f64 / 1e3;
        out.push_str(&format!(
            "daemon: up {uptime_s:.1}s, {} completed, {} in flight, queue {}/{}, conns {}/{}, cache {}/{} hit/miss, {} workers\n",
            st.get_num("served").unwrap_or(0),
            st.get_num("in_flight").unwrap_or(0),
            st.get_num("queue_depth").unwrap_or(0),
            st.get_num("queue_cap").unwrap_or(0),
            st.get_num("conns").unwrap_or(0),
            st.get_num("max_conns").unwrap_or(0),
            st.get_num("cache_hits").unwrap_or(0),
            st.get_num("cache_misses").unwrap_or(0),
            st.get_num("jobs").unwrap_or(0),
        ));
    }
    out.push_str("counters:\n");
    for (label, v) in obj(snap, "counters").into_iter().flatten() {
        let v = v.as_f64().unwrap_or(0.0);
        if v != 0.0 {
            match prev {
                Some(p) => {
                    // A counter that went backwards means the daemon
                    // restarted (fresh registry) under our watch: mark
                    // the reset instead of printing a bogus negative
                    // (or, with `+`, nonsensical) delta.
                    let delta = v - p.get(label).copied().unwrap_or(0.0);
                    let cell = if delta < 0.0 { "reset".to_owned() } else { format!("+{delta}") };
                    out.push_str(&format!("  {label:40} {v:>12} {cell:>10}\n"));
                }
                None => out.push_str(&format!("  {label:40} {v}\n")),
            }
        }
    }
    out.push_str("gauges:\n");
    for (label, v) in obj(snap, "gauges").into_iter().flatten() {
        out.push_str(&format!("  {label:40} {}\n", v.as_f64().unwrap_or(0.0)));
    }
    out.push_str("histograms:\n");
    for (label, h) in obj(snap, "histograms").into_iter().flatten() {
        let count = h.get("count").and_then(Json::as_f64).unwrap_or(0.0);
        if count == 0.0 {
            continue;
        }
        out.push_str(&format!(
            "  {label:40} n={count} mean={:.2} p50={} p90={} p99={}\n",
            h.get("mean").and_then(Json::as_f64).unwrap_or(0.0),
            fmt_q(h.get("p50")),
            fmt_q(h.get("p90")),
            fmt_q(h.get("p99")),
        ));
    }
    out.push_str("profile:\n");
    for (label, p) in obj(snap, "profile").into_iter().flatten() {
        let events = p.get("events").and_then(Json::as_f64).unwrap_or(0.0);
        if events == 0.0 {
            continue;
        }
        out.push_str(&format!(
            "  {label:40} events={events} cycles={}\n",
            p.get("cycles").and_then(Json::as_f64).unwrap_or(0.0),
        ));
    }
    out
}

fn fmt_q(v: Option<&Json>) -> String {
    match v.and_then(Json::as_f64) {
        Some(x) => format!("{x:.1}"),
        None => "-".to_owned(),
    }
}

/// Mints client-side request ids: time- and pid-seeded so concurrent
/// clients against one daemon do not collide, never 0 (0 = "unset").
fn rid_minter() -> impl FnMut() -> u64 {
    let seed = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
        ^ (std::process::id() as u64).rotate_left(32);
    let mut rng = nsc_sim::rng::Rng::seed_from_u64(seed);
    move || loop {
        let rid = rng.next_u64();
        if rid != 0 {
            return rid;
        }
    }
}

fn submit(o: Opts) {
    if o.words.is_empty() {
        die("submit needs at least one workload name");
    }
    if o.local {
        for w in &o.words {
            match execute(w, o.size, o.mode) {
                Ok(out) => println!(
                    "{w:12} {:12} cycles={} cached={}",
                    o.mode.label(),
                    out.result.cycles,
                    out.cached
                ),
                Err(e) => die(&e),
            }
        }
        return;
    }
    let mut mint = rid_minter();
    let reqs: Vec<Request> = o
        .words
        .iter()
        .enumerate()
        .map(|(i, w)| Request::Run {
            id: i as u64 + 1,
            request_id: mint(),
            workload: w.clone(),
            size: o.size,
            mode: o.mode,
            deadline_ms: o.deadline_ms,
        })
        .collect();
    let outcome = match roundtrip_retry(&o.socket, &reqs, &o.retry) {
        Ok(r) => r,
        Err(e) => die(&format!("{}: {e}", o.socket.display())),
    };
    if outcome.retries > 0 {
        eprintln!("  {} request(s) resubmitted after typed sheds", outcome.retries);
    }
    let mut failed = false;
    for resp in &outcome.resps {
        if resp.get_bool("ok") == Some(true) {
            let cycles = decode_response_blob(resp)
                .map(|c| c.result.cycles)
                .or_else(|| resp.get_num("cycles"))
                .unwrap_or(0);
            println!(
                "{:12} {:12} cycles={cycles} cached={} rid={:016x}",
                resp.get_str("workload").unwrap_or("?"),
                resp.get_str("mode").unwrap_or("?"),
                resp.get_bool("cached").unwrap_or(false),
                resp.get_num("request_id").unwrap_or(0),
            );
            if o.latency {
                match resp.get_str("latency").map(parse) {
                    Some(Ok(tree)) => print!("{}", render_span_rows(&tree)),
                    _ => eprintln!("  (no latency breakdown in response)"),
                }
            }
        } else {
            failed = true;
            match resp.get_str("shed") {
                Some(reason) => eprintln!(
                    "request {} shed ({reason}): {}",
                    resp.get_num("id").unwrap_or(0),
                    resp.get_str("error").unwrap_or("unknown error"),
                ),
                None => eprintln!(
                    "request {} failed: {}",
                    resp.get_num("id").unwrap_or(0),
                    resp.get_str("error").unwrap_or("unknown error"),
                ),
            }
        }
    }
    if failed {
        exit(1);
    }
}

/// `nsc-client logs`: drain the daemon's flight recorder. Record lines
/// (one JSON object each) go to stdout; the drain summary to stderr.
fn logs_cmd(o: Opts) {
    if !o.words.is_empty() {
        die("logs takes no positional arguments");
    }
    let resps = match roundtrip(&o.socket, &[Request::Logs { id: 1 }]) {
        Ok(r) => r,
        Err(e) => die(&format!("{}: {e}", o.socket.display())),
    };
    let resp = resps
        .first()
        .filter(|r| r.get_bool("ok") == Some(true))
        .unwrap_or_else(|| die("daemon did not answer the logs request"));
    print!("{}", resp.get_str("lines").unwrap_or(""));
    eprintln!(
        "  {} records drained, {} dropped since last drain",
        resp.get_num("count").unwrap_or(0),
        resp.get_num("dropped").unwrap_or(0),
    );
}

/// `nsc-client inspect`: report the tiered result cache. The raw protocol
/// line goes to stdout (scripts grep the flat `hot_*`/`cold_*` fields); a
/// per-tier table plus the hottest keys goes to stderr. `--key HEX` probes
/// one key's residency; `--local` reads this process's cache instead of a
/// daemon's.
fn inspect_cmd(o: Opts) {
    if !o.words.is_empty() {
        die("inspect takes no positional arguments (use --key HEX to probe a key)");
    }
    let body = if o.local {
        let body = inspect_body(nsc_sim::cache::shared(), o.key.as_deref())
            .unwrap_or_else(|e| die(&e));
        println!("{}", Response::Inspect { id: 0, body: body.clone() }.render());
        body
    } else {
        let req = Request::Inspect { id: 1, key: o.key.clone() };
        let resps = match roundtrip(&o.socket, &[req]) {
            Ok(r) => r,
            Err(e) => die(&format!("{}: {e}", o.socket.display())),
        };
        let Some(resp) = resps.first() else { die("daemon did not answer the inspect request") };
        println!("{}", resp.render());
        match Response::from_obj(resp) {
            Some(Response::Inspect { body, .. }) => body,
            Some(Response::Error { error, .. }) => die(&error),
            _ => die("unexpected response to inspect"),
        }
    };
    print_inspect_summary(&body);
}

fn print_inspect_summary(b: &InspectBody) {
    let budget = |v: u64, unbounded: &str| {
        if v == 0 { unbounded.to_string() } else { v.to_string() }
    };
    eprintln!(
        "  cache {}, compression {}",
        if b.enabled { "enabled" } else { "disabled" },
        if b.compress { "on" } else { "off" },
    );
    eprintln!(
        "  {:<5} {:>9} {:>9} {:>9} {:>10} {:>8} {:>11} {:>11}",
        "tier", "hits", "misses", "stores", "evictions", "entries", "bytes", "budget",
    );
    for (name, t, budget_str) in [
        ("hot", &b.hot, budget(b.mem_budget, "off")),
        ("cold", &b.cold, budget(b.disk_budget, "unbounded")),
    ] {
        eprintln!(
            "  {:<5} {:>9} {:>9} {:>9} {:>10} {:>8} {:>11} {:>11}",
            name, t.hits, t.misses, t.stores, t.evictions, t.entries, t.bytes, budget_str,
        );
    }
    if !b.hottest.is_empty() {
        eprintln!("  hottest (key:hits): {}", b.hottest);
    }
    if let Some(k) = &b.key {
        eprintln!(
            "  key {}: hot={} cold={} bytes={} hot_hits={}",
            k.key,
            if k.in_hot { "yes" } else { "no" },
            if k.in_cold { "yes" } else { "no" },
            k.bytes,
            k.hits,
        );
    }
}

/// One `timeline` roundtrip: each frame as its raw wire line (printed
/// verbatim so byte order survives) plus its parsed document, oldest
/// first, with the response's cursor metadata `(latest_seq, sample_ms)`.
fn fetch_frames(o: &Opts, since: u64) -> (Vec<(String, Json)>, u64, u64) {
    let resps = match roundtrip(&o.socket, &[Request::Timeline { id: 1, since }]) {
        Ok(r) => r,
        Err(e) => die(&format!("{}: {e}", o.socket.display())),
    };
    let resp = resps
        .first()
        .filter(|r| r.get_bool("ok") == Some(true))
        .unwrap_or_else(|| die("daemon did not answer the timeline request"));
    let frames = resp
        .get_str("frames")
        .unwrap_or("")
        .lines()
        .map(|l| {
            let doc = parse(l).unwrap_or_else(|e| die(&format!("bad frame from daemon: {e}")));
            (l.to_owned(), doc)
        })
        .collect();
    (frames, resp.get_num("latest_seq").unwrap_or(0), resp.get_num("sample_ms").unwrap_or(0))
}

/// `nsc-client timeline`: dump the daemon's sampled telemetry ring as
/// ndjson (one `nsc-timeline-v1` frame per line). `--since N` pages
/// from a cursor; `--follow` keeps polling at the daemon's sampling
/// interval and streams frames as they land.
fn timeline_cmd(o: Opts) {
    if !o.words.is_empty() {
        die("timeline takes no positional arguments");
    }
    let mut cursor = o.since;
    loop {
        let (frames, latest, sample_ms) = fetch_frames(&o, cursor);
        // write!, not println!: this output exists to be piped (`| head`,
        // `| jq`), and the reader closing early is a normal exit, not a
        // broken-pipe panic.
        use std::io::Write as _;
        let mut stdout = std::io::stdout().lock();
        for (line, _) in &frames {
            if writeln!(stdout, "{line}").is_err() {
                return;
            }
        }
        let _ = stdout.flush();
        drop(stdout);
        if !o.follow {
            if frames.is_empty() {
                eprintln!(
                    "  no frames{}",
                    if sample_ms == 0 { " (sampler disabled: NSC_SAMPLE_MS=0)" } else { "" }
                );
            }
            break;
        }
        cursor = cursor.max(latest);
        if sample_ms == 0 {
            die("cannot --follow: the daemon's sampler is disabled (NSC_SAMPLE_MS=0)");
        }
        std::thread::sleep(std::time::Duration::from_millis(sample_ms.max(100)));
    }
}

/// `nsc-client health`: the daemon's SLO verdict. Rule-evidence ndjson
/// goes to stdout (scripts parse it); a human summary to stderr. Exits
/// 0 whenever a verdict was obtained — the verdict itself is data, not
/// an error (watchdogs can grep for `failing`).
fn health_cmd(o: Opts) {
    if !o.words.is_empty() {
        die("health takes no positional arguments");
    }
    let resps = match roundtrip(&o.socket, &[Request::Health { id: 1 }]) {
        Ok(r) => r,
        Err(e) => die(&format!("{}: {e}", o.socket.display())),
    };
    let resp = resps
        .first()
        .filter(|r| r.get_bool("ok") == Some(true))
        .unwrap_or_else(|| die("daemon did not answer the health request"));
    print!("{}", resp.get_str("rules").unwrap_or(""));
    eprintln!(
        "  verdict: {} ({} frames of evidence)",
        resp.get_str("verdict").unwrap_or("?"),
        resp.get_num("frames_seen").unwrap_or(0),
    );
}

/// `nsc-client dashboard --out FILE`: render the daemon's timeline into
/// one self-contained HTML file — inline CSS, hand-rolled inline SVG
/// sparklines, zero external assets, works from file:// offline.
fn dashboard_cmd(o: Opts) {
    if !o.words.is_empty() {
        die("dashboard takes no positional arguments");
    }
    let Some(out_path) = o.out.clone() else { die("dashboard requires --out FILE") };
    let reqs = [Request::Status { id: 1 }, Request::Health { id: 2 }];
    let resps = match roundtrip(&o.socket, &reqs) {
        Ok(r) => r,
        Err(e) => die(&format!("{}: {e}", o.socket.display())),
    };
    let status = resps.first().filter(|r| r.get_bool("ok") == Some(true)).cloned();
    let health = resps.get(1).filter(|r| r.get_bool("ok") == Some(true)).cloned();
    let (frames, latest, sample_ms) = fetch_frames(&o, 0);
    let html = render_dashboard(status.as_ref(), health.as_ref(), &frames, latest, sample_ms);
    if let Err(e) = std::fs::write(&out_path, html) {
        die(&format!("writing {}: {e}", out_path.display()));
    }
    eprintln!("  wrote dashboard ({} frames) to {}", frames.len(), out_path.display());
}

/// Pulls one numeric series out of the parsed frames; `None` entries
/// are windows without signal (rendered as gaps).
fn series(frames: &[(String, Json)], key: &str) -> Vec<Option<f64>> {
    frames.iter().map(|(_, f)| f.get(key).and_then(Json::as_f64)).collect()
}

/// A hand-rolled inline SVG sparkline: one polyline per contiguous run
/// of present values, min/max labels, no external anything.
fn sparkline_svg(vals: &[Option<f64>], w: f64, h: f64) -> String {
    let present: Vec<f64> = vals.iter().filter_map(|v| *v).collect();
    if present.is_empty() {
        return format!(
            "<svg viewBox=\"0 0 {w} {h}\" class=\"spark\"><text x=\"{}\" y=\"{}\" \
             class=\"nodata\">no data</text></svg>",
            w / 2.0,
            h / 2.0,
        );
    }
    let (lo, hi) = present
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| (lo.min(v), hi.max(v)));
    let span = if (hi - lo).abs() < 1e-12 { 1.0 } else { hi - lo };
    let n = vals.len().max(2);
    let x = |i: usize| (i as f64 / (n - 1) as f64) * (w - 4.0) + 2.0;
    let y = |v: f64| h - 14.0 - ((v - lo) / span) * (h - 22.0);
    let mut polylines = String::new();
    let mut run: Vec<String> = Vec::new();
    let mut flush = |run: &mut Vec<String>| {
        match run.len() {
            0 => {}
            // An isolated point has no line to draw; mark it visibly.
            1 => polylines.push_str(&format!(
                "<circle cx=\"{}\" r=\"1.5\" class=\"pt\"/>",
                run[0].replace(',', "\" cy=\"")
            )),
            _ => polylines
                .push_str(&format!("<polyline points=\"{}\" class=\"line\"/>", run.join(" "))),
        }
        run.clear();
    };
    for (i, v) in vals.iter().enumerate() {
        match v {
            Some(v) => run.push(format!("{:.1},{:.1}", x(i), y(*v))),
            None => flush(&mut run),
        }
    }
    flush(&mut run);
    format!(
        "<svg viewBox=\"0 0 {w} {h}\" class=\"spark\">{polylines}\
         <text x=\"2\" y=\"{}\" class=\"lo\">{}</text>\
         <text x=\"2\" y=\"10\" class=\"hi\">{}</text></svg>",
        h - 2.0,
        fmt_stat(lo),
        fmt_stat(hi),
    )
}

/// Compact human number for tiles and sparkline min/max labels.
fn fmt_stat(v: f64) -> String {
    if v.abs() >= 1e6 {
        format!("{:.1}M", v / 1e6)
    } else if v.abs() >= 1e3 {
        format!("{:.1}k", v / 1e3)
    } else if v.fract() == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

fn render_dashboard(
    status: Option<&nsc_serve::json::Obj>,
    health: Option<&nsc_serve::json::Obj>,
    frames: &[(String, Json)],
    latest_seq: u64,
    sample_ms: u64,
) -> String {
    let verdict = health.and_then(|h| h.get_str("verdict")).unwrap_or("unknown").to_owned();
    let mut tiles = String::new();
    let mut tile = |label: &str, value: String, class: &str| {
        tiles.push_str(&format!(
            "<div class=\"tile {class}\"><div class=\"v\">{value}</div>\
             <div class=\"l\">{label}</div></div>"
        ));
    };
    tile("health", verdict.clone(), &format!("verdict-{verdict}"));
    if let Some(st) = status {
        let uptime_s = st.get_num("uptime_ms").unwrap_or(0) as f64 / 1e3;
        tile("uptime", format!("{uptime_s:.0}s"), "");
        tile("completed", fmt_stat(st.get_num("served").unwrap_or(0) as f64), "");
        tile(
            "queue",
            format!(
                "{}/{}",
                st.get_num("queue_depth").unwrap_or(0),
                st.get_num("queue_cap").unwrap_or(0)
            ),
            "",
        );
        tile(
            "conns",
            format!(
                "{}/{}",
                st.get_num("conns").unwrap_or(0),
                st.get_num("max_conns").unwrap_or(0)
            ),
            "",
        );
        tile(
            "cache h/m",
            format!(
                "{}/{}",
                st.get_num("cache_hits").unwrap_or(0),
                st.get_num("cache_misses").unwrap_or(0)
            ),
            "",
        );
        tile("workers", st.get_num("jobs").unwrap_or(0).to_string(), "");
    }
    let mut charts = String::new();
    for (label, key) in [
        ("requests / s", "req_s"),
        ("p50 µs", "p50_us"),
        ("p99 µs", "p99_us"),
        ("p999 µs", "p999_us"),
        ("sheds / s", "shed_s"),
        ("cache hit rate", "hit_rate"),
        ("queue high-water", "queue_hwm"),
    ] {
        charts.push_str(&format!(
            "<div class=\"chart\"><h2>{label}</h2>{}</div>",
            sparkline_svg(&series(frames, key), 280.0, 64.0)
        ));
    }
    let rules = health.and_then(|h| h.get_str("rules")).unwrap_or("").to_owned();
    let mut rule_rows = String::new();
    for line in rules.lines() {
        let Ok(doc) = parse(line) else { continue };
        let Some(rule) = doc.get("rule").and_then(Json::as_str) else { continue };
        let breached = matches!(doc.get("breached"), Some(Json::Bool(true)));
        rule_rows.push_str(&format!(
            "<tr class=\"{}\"><td>{rule}</td><td>{}</td><td>{}</td><td>{}</td><td>{}</td></tr>",
            if breached { "breach" } else { "pass" },
            doc.get("threshold").and_then(Json::as_f64).map(fmt_stat).unwrap_or_default(),
            doc.get("value").and_then(Json::as_f64).map(fmt_stat).unwrap_or_else(|| "–".into()),
            if breached { "breached" } else { "ok" },
            doc.get("streak").and_then(Json::as_f64).unwrap_or(0.0),
        ));
    }
    format!(
        "<!doctype html>\n<html lang=\"en\"><head><meta charset=\"utf-8\">\
<title>nscd dashboard</title>\n<style>\n\
body{{background:#14161a;color:#d8dce2;font:14px/1.4 ui-monospace,monospace;margin:24px}}\n\
h1{{font-size:18px;margin:0 0 4px}} h2{{font-size:12px;font-weight:normal;color:#8a93a0;margin:0 0 4px}}\n\
.sub{{color:#8a93a0;font-size:12px;margin-bottom:16px}}\n\
.tiles{{display:flex;flex-wrap:wrap;gap:12px;margin-bottom:20px}}\n\
.tile{{background:#1d2026;border:1px solid #2a2e36;border-radius:6px;padding:10px 16px;min-width:90px}}\n\
.tile .v{{font-size:20px}} .tile .l{{font-size:11px;color:#8a93a0}}\n\
.verdict-ok .v{{color:#5fd38a}} .verdict-degraded .v{{color:#e8c268}} .verdict-failing .v{{color:#e86868}}\n\
.charts{{display:flex;flex-wrap:wrap;gap:16px}}\n\
.chart{{background:#1d2026;border:1px solid #2a2e36;border-radius:6px;padding:10px}}\n\
.spark{{width:280px;height:64px}} .line{{fill:none;stroke:#6aa7e8;stroke-width:1.5}}\n\
.pt{{fill:#6aa7e8}} .lo,.hi,.nodata{{fill:#5c6470;font-size:9px}}\n\
table{{border-collapse:collapse;margin-top:20px}} td,th{{border:1px solid #2a2e36;padding:4px 12px;font-size:12px}}\n\
th{{color:#8a93a0;font-weight:normal;text-align:left}}\n\
.breach td{{color:#e86868}} .pass td:nth-child(4){{color:#5fd38a}}\n\
</style></head><body>\n\
<h1>nscd telemetry</h1>\n\
<div class=\"sub\">{n} frames · latest seq {latest_seq} · sampled every {sample_ms}ms · schema nsc-timeline-v1</div>\n\
<div class=\"tiles\">{tiles}</div>\n\
<div class=\"charts\">{charts}</div>\n\
<table><tr><th>SLO rule</th><th>threshold</th><th>value</th><th>state</th><th>streak</th></tr>{rule_rows}</table>\n\
</body></html>\n",
        n = frames.len(),
    )
}

/// `nsc-client trace REQUEST_ID`: print one request's span tree as
/// awk-friendly rows; `--perfetto FILE` additionally writes a combined
/// serve-spans + sim-events Chrome trace document.
fn trace_cmd(o: Opts) {
    let [rid_word] = o.words.as_slice() else {
        die("trace takes exactly one REQUEST_ID (the hex rid printed by submit)")
    };
    let rid = u64::from_str_radix(rid_word.trim_start_matches("0x"), 16)
        .unwrap_or_else(|_| die(&format!("bad REQUEST_ID (want hex): {rid_word:?}")));
    let req = Request::Trace { id: 1, request_id: rid, perfetto: o.perfetto.is_some() };
    let resps = match roundtrip(&o.socket, &[req]) {
        Ok(r) => r,
        Err(e) => die(&format!("{}: {e}", o.socket.display())),
    };
    let Some(resp) = resps.first() else { die("daemon did not answer the trace request") };
    if resp.get_bool("ok") != Some(true) {
        die(resp.get_str("error").unwrap_or("trace request failed"));
    }
    let tree = resp
        .get_str("tree")
        .map(parse)
        .unwrap_or_else(|| die("trace response carried no tree"))
        .unwrap_or_else(|e| die(&format!("bad span tree from daemon: {e}")));
    println!(
        "request {rid:016x}: wall {}µs, {} spans, {} sim events",
        resp.get_num("wall_us").unwrap_or(0),
        resp.get_num("spans").unwrap_or(0),
        resp.get_num("sim_events").unwrap_or(0),
    );
    print!("{}", render_span_rows(&tree));
    if let Some(path) = &o.perfetto {
        let doc = resp
            .get_str("perfetto")
            .unwrap_or_else(|| die("daemon sent no perfetto document"));
        if let Err(e) = std::fs::write(path, doc) {
            die(&format!("writing {}: {e}", path.display()));
        }
        eprintln!("  wrote combined Perfetto trace to {}", path.display());
    }
}

/// One indented `name start dur` row per span of a parsed
/// `nsc-span-v1` tree.
fn render_span_rows(tree: &Json) -> String {
    let mut out = String::new();
    for s in tree.get("spans").and_then(Json::as_arr).into_iter().flatten() {
        out.push_str(&format!(
            "  {:<14} {:>8}µs {:>8}µs\n",
            s.get("name").and_then(Json::as_str).unwrap_or("?"),
            s.get("start_us").and_then(Json::as_f64).unwrap_or(0.0),
            s.get("dur_us").and_then(Json::as_f64).unwrap_or(0.0),
        ));
    }
    out
}

fn req_val(argv: &mut impl Iterator<Item = String>, flag: &str) -> String {
    argv.next().unwrap_or_else(|| die(&format!("{flag} requires a value")))
}

fn req_num(argv: &mut impl Iterator<Item = String>, flag: &str) -> u64 {
    let v = req_val(argv, flag);
    v.parse().unwrap_or_else(|_| die(&format!("{flag} wants an integer, got {v:?}")))
}

fn die(msg: &str) -> ! {
    eprintln!("nsc-client: {msg}\n\n{USAGE}");
    exit(2);
}
