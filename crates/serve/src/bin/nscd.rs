//! `nscd` — the near-stream simulation daemon.
//!
//! ```text
//! nscd [--socket PATH] [--jobs N]
//! ```
//!
//! Listens on a Unix socket for newline-delimited JSON run requests
//! (see the `nsc_serve` crate docs for the protocol), batches them
//! across a shared worker pool, and consults the content-addressed
//! result cache before simulating. The cache is armed by default —
//! serving repeated requests from disk is the daemon's reason to exist
//! — set `NSC_CACHE=0` to force every request to simulate.
//!
//! Observability: the daemon logs at `info` unless `NSC_LOG` says
//! otherwise (the flight recorder is drained by `nsc-client logs`),
//! and `NSC_TRACE=1` arms per-request simulator event capture for
//! `nsc-client trace --perfetto`.
//!
//! Overload protection (see `nsc_serve::server`): `NSC_MAX_CONNS`
//! bounds live connections, `NSC_QUEUE_CAP` bounds admitted runs
//! (excess submits get typed `overloaded` sheds with a
//! `retry_after_ms` hint; cache hits are still answered in degraded
//! mode), and `NSC_DEADLINE_MS` sets a default per-run deadline
//! enforced at dequeue.
//!
//! Telemetry timeline (see `nsc_sim::timeline`): a sampler thread
//! snapshots the metrics registry every `NSC_SAMPLE_MS` (default
//! 1000 ms; 0 spawns no thread at all) into a `NSC_TIMELINE_CAP`-frame
//! ring served by the `timeline` op, and the `health` op evaluates it
//! against the `NSC_SLO_*` thresholds into an `ok`/`degraded`/
//! `failing` verdict.

use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "nscd — near-stream simulation daemon

Usage: nscd [--socket PATH] [--jobs N]

Options:
  --socket PATH  Unix socket to listen on (default $NSCD_SOCKET or /tmp/nscd.sock)
  --jobs N       worker threads (default $NSC_JOBS or all cores)
  -h, --help     print this help

Environment:
  NSC_MAX_CONNS    live-connection limit; excess connections get one
                   typed `overloaded` line and are closed (default 64)
  NSC_QUEUE_CAP    admitted-run limit; at saturation cache hits are
                   still served, cache misses are shed with a
                   retry_after_ms hint (default 128)
  NSC_DEADLINE_MS  default per-run deadline, enforced at dequeue;
                   0 disables (default 0)
  NSC_FAULT_RATE   arm deterministic chaos for every run (content-
                   derived plans: replays are bit-identical)
  NSC_SAMPLE_MS    telemetry sampling cadence for the `timeline` op;
                   0 disables the sampler thread entirely (default 1000)
  NSC_TIMELINE_CAP frames kept in the telemetry ring (default 900 —
                   15 minutes at the default cadence)
  NSC_SLO_P99_US   `health` threshold: windowed p99 above this breaches
                   (µs; 0 disables the rule; default 50000)
  NSC_SLO_SHED_RATE `health` threshold: window shed ratio above this
                   breaches (0 disables; default 0.05)
  NSC_SLO_HIT_RATE `health` threshold: window cache hit rate *below*
                   this breaches (default 0 = disabled)

Stop it with `nsc-client shutdown` (graceful: new submits are rejected
with typed `shutting_down` sheds while admitted runs drain).";

fn main() {
    let mut socket: Option<PathBuf> = None;
    let mut jobs: Option<usize> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "-h" | "--help" => {
                println!("{USAGE}");
                return;
            }
            "--socket" => socket = Some(PathBuf::from(req_val(&mut argv, "--socket"))),
            "--jobs" => match req_val(&mut argv, "--jobs").parse() {
                Ok(n) if n > 0 => jobs = Some(n),
                _ => die("--jobs wants a positive integer"),
            },
            other => die(&format!("unknown argument: {other}")),
        }
    }
    // The daemon arms the result cache unless the environment already
    // decided (NSC_CACHE=0 keeps it off).
    if std::env::var_os("NSC_CACHE").is_none() {
        std::env::set_var("NSC_CACHE", "1");
    }
    // A daemon without logs is a black box: default the flight recorder
    // to info when NSC_LOG is unset (libraries default to off).
    nsc_sim::log::init(Some(nsc_sim::log::Level::Info));
    let socket = socket.unwrap_or_else(nsc_serve::client::default_socket);
    let jobs = jobs.unwrap_or_else(nsc_sim::pool::jobs_from_env);
    let cfg = nsc_serve::server::ServeConfig::from_env(jobs);
    let cache = if nsc_sim::cache::enabled() {
        // Latches the tier config from the environment now, so the
        // banner reflects exactly what the serving path will use.
        let store = nsc_sim::cache::shared();
        let budget = |b: u64, zero: &str| {
            if b == 0 { zero.to_owned() } else { format!("{b}B") }
        };
        format!(
            "on (hot {}, cold {}, compress {})",
            budget(store.mem_budget(), "off"),
            budget(store.disk_budget(), "unbounded"),
            if store.compression() { "on" } else { "off" },
        )
    } else {
        "off".to_owned()
    };
    eprintln!(
        "nscd: listening on {} ({jobs} worker{}, cache {cache}, max_conns {}, queue_cap {})",
        socket.display(),
        if jobs == 1 { "" } else { "s" },
        cfg.max_conns,
        cfg.queue_cap,
    );
    if let Err(e) = nsc_serve::server::serve_with(&socket, cfg) {
        eprintln!("nscd: {e}");
        exit(1);
    }
    eprintln!("nscd: shut down");
}

fn req_val(argv: &mut impl Iterator<Item = String>, flag: &str) -> String {
    argv.next().unwrap_or_else(|| {
        die(&format!("{flag} requires a value"));
    })
}

fn die(msg: &str) -> ! {
    eprintln!("nscd: {msg}\n\n{USAGE}");
    exit(2);
}
