//! Per-access core-cost attribution.
//!
//! The timing models charge core work per executed memory access. This
//! pass distributes each loop body's pure-compute µops over the memory
//! accesses in that body, in two variants: the full cost (baseline, where
//! the core executes everything) and the residual cost (near-stream, where
//! compute absorbed onto streams leaves the core).

use crate::analysis::KernelAnalysis;
use crate::assign::StreamAssignment;
use nsc_ir::bytecode::LoweredStmt;
use nsc_ir::program::StmtId;
use std::collections::HashMap;

/// Host-dispatch cost of one tree-walker `Expr` node: a recursive call, a
/// boxed-pointer chase and an enum match per operator node, plus the leaf
/// evaluations around it.
pub const TREE_NODE_COST: f32 = 4.0;
/// Host-dispatch cost of entering a statement on the tree walker (statement
/// match plus leaf `Expr` evaluations bytecode gets for free as register
/// reads).
pub const TREE_STMT_COST: f32 = 3.0;
/// Host-dispatch cost of one bytecode op: a flat match and three register
/// indexes.
pub const BC_OP_COST: f32 = 1.0;
/// Host-dispatch cost of entering a lowered statement (span dispatch).
pub const BC_STMT_COST: f32 = 1.0;

/// Estimated per-execution host-dispatch saving of running a lowered
/// statement as bytecode instead of walking its expression trees. Positive
/// means bytecode wins.
pub fn lowering_gain(lowered: &LoweredStmt) -> f32 {
    let tree = TREE_STMT_COST + lowered.expr_nodes as f32 * TREE_NODE_COST;
    let bc = BC_STMT_COST + lowered.ops as f32 * BC_OP_COST;
    tree - bc
}

/// The plan-pass policy: keep the bytecode when the dispatch model says it
/// is at least as cheap as the tree walker. Folding, CSE and hoisting only
/// ever shrink the op count below the node count, so in practice bytecode
/// wins for every statement shape — the tree fallback exists for register
/// overflow, `NSC_COMPILE=0`, and future cost-model tuning.
pub fn prefer_bytecode(lowered: &LoweredStmt) -> bool {
    lowering_gain(lowered) >= 0.0
}

/// Core µops attributed to one memory-access statement, per execution.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SiteCost {
    /// Share of the enclosing body's pure compute (baseline systems).
    pub core_uops_base: f32,
    /// Residual share after stream-absorbed compute leaves the core.
    pub core_uops_resid: f32,
    /// Address-generation µops (the index expression; performed by the SE
    /// when the access is streamed).
    pub addr_uops: u32,
}

/// Computes per-site costs for a kernel.
pub fn site_costs(analysis: &KernelAnalysis, assignment: &StreamAssignment) -> HashMap<StmtId, SiteCost> {
    let mut out = HashMap::new();
    for site in &analysis.sites {
        let body = &analysis.bodies[site.body];
        let n = body.n_accesses.max(1) as f32;
        let absorbed = assignment
            .absorbed_uops_per_body
            .get(&site.body)
            .copied()
            .unwrap_or(0)
            .min(body.compute_uops);
        let base = body.compute_uops as f32 / n;
        let resid = (body.compute_uops - absorbed) as f32 / n;
        out.insert(
            site.stmt,
            SiteCost {
                core_uops_base: base,
                core_uops_resid: resid,
                addr_uops: site.index.uops(),
            },
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use crate::assign::assign_streams;
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::{ElemType, Expr, Program};

    #[test]
    fn residual_drops_when_compute_absorbed() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 64);
        let b = p.array("b", ElemType::I64, 64);
        let c = p.array("c", ElemType::I64, 64);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        let va = k.load(a, Expr::var(i));
        let vb = k.load(b, Expr::var(i));
        let sum = k.let_(Expr::var(va) + Expr::var(vb));
        k.store(c, Expr::var(i), Expr::var(sum));
        let kernel = k.finish();
        let an = analyze(&kernel);
        let asg = assign_streams(&p, &kernel, &an);
        let costs = site_costs(&an, &asg);
        let any = costs.values().next().unwrap();
        assert!(any.core_uops_base > 0.0);
        // All compute was absorbed by the store stream.
        assert_eq!(any.core_uops_resid, 0.0);
    }

    #[test]
    fn addr_uops_reflect_index_complexity() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 4096);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        k.load(a, Expr::var(i) * Expr::imm(8) + Expr::imm(3));
        let kernel = k.finish();
        let an = analyze(&kernel);
        let asg = assign_streams(&p, &kernel, &an);
        let costs = site_costs(&an, &asg);
        assert_eq!(costs.values().next().unwrap().addr_uops, 2);
    }
}
