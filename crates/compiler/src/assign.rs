//! Computation assignment: attaching near-stream instructions to streams
//! (paper §III-B heuristics for Load / Store / Reduce / RMW).

use crate::analysis::{AccessSite, DefKind, KernelAnalysis, SiteKind};
use crate::classify::{classify_site, RawPattern};
use nsc_ir::program::{Kernel, Program, StmtId, VarId};
use nsc_ir::stream::{AddrPatternClass, ComputeClass, StreamId, StreamInfo};
use nsc_ir::{ElemType, Expr};
use std::collections::{HashMap, HashSet};

/// Maximum streams the SE supports per kernel (Table V: 12 per core).
pub const MAX_STREAMS: usize = 12;

/// Result of stream construction and computation assignment for one kernel.
#[derive(Clone, Debug, Default)]
pub struct StreamAssignment {
    /// All streams, id-ordered.
    pub streams: Vec<StreamInfo>,
    /// Memory statement → serving stream.
    pub stmt_stream: HashMap<StmtId, StreamId>,
    /// Whether each stream is legal to offload near data
    /// (indexed by stream id).
    pub offloadable: Vec<bool>,
    /// Assignment-site orders whose compute moved onto a stream
    /// (used by the cost pass to discount residual core work).
    pub absorbed_assign_orders: HashSet<usize>,
    /// µops absorbed from each loop body onto streams.
    pub absorbed_uops_per_body: HashMap<usize, u32>,
}

impl StreamAssignment {
    /// The stream serving `stmt`, if any.
    pub fn stream_of(&self, stmt: StmtId) -> Option<&StreamInfo> {
        self.stmt_stream
            .get(&stmt)
            .map(|id| &self.streams[id.0 as usize])
    }
}

fn width_of(kernel: &Kernel, var: VarId, default: u8) -> u8 {
    kernel
        .narrow_hints
        .iter()
        .find(|(v, _)| *v == var)
        .map(|(_, w)| *w)
        .unwrap_or(default)
}

fn access_bytes(program: &Program, site: &AccessSite) -> u8 {
    site.field
        .map(|f| f.ty.bytes())
        .unwrap_or_else(|| program.decl(site.array).elem.bytes())
}

/// Builds streams for a kernel and assigns computations to them.
pub fn assign_streams(program: &Program, kernel: &Kernel, analysis: &KernelAnalysis) -> StreamAssignment {
    let mut out = StreamAssignment::default();

    // ---- Classification ------------------------------------------------
    let raw: Vec<Option<RawPattern>> = analysis
        .sites
        .iter()
        .map(|s| classify_site(s, analysis))
        .collect();

    // ---- RMW merge: a load and a following store to the same address ---
    // (paper §III-B: "A load and the following store to the same address
    // are merged into a single update stream.")
    let mut merged_load_of_store: HashMap<usize, usize> = HashMap::new(); // store site -> load site
    let mut merged_loads: HashSet<usize> = HashSet::new();
    for (si, s) in analysis.sites.iter().enumerate() {
        if !matches!(s.kind, SiteKind::Store { .. }) || raw[si].is_none() {
            continue;
        }
        for (li, l) in analysis.sites.iter().enumerate() {
            if merged_loads.contains(&li) {
                continue;
            }
            let is_load = matches!(l.kind, SiteKind::Load { .. });
            if is_load
                && l.order < s.order
                && l.array == s.array
                && l.field == s.field
                && l.body == s.body
                && l.index == s.index
                && raw[li] == raw[si]
            {
                merged_load_of_store.insert(si, li);
                merged_loads.insert(li);
                break;
            }
        }
    }

    // ---- Stream creation (program order so indirect bases resolve) -----
    let mut stream_of_stmt: HashMap<StmtId, StreamId> = HashMap::new();
    for (si, site) in analysis.sites.iter().enumerate() {
        if merged_loads.contains(&si) {
            continue; // will map to the RMW stream below
        }
        let Some(rp) = &raw[si] else { continue };
        if out.streams.len() >= MAX_STREAMS {
            break;
        }
        let bytes = access_bytes(program, site);
        let Some(pattern) = rp.to_class(bytes, &stream_of_stmt) else {
            continue; // base not streamed (e.g. id budget): stay a core access
        };
        let role = match &site.kind {
            SiteKind::Load { .. } => ComputeClass::Load,
            SiteKind::Store { .. } => {
                if merged_load_of_store.contains_key(&si) {
                    ComputeClass::Rmw
                } else {
                    ComputeClass::Store
                }
            }
            SiteKind::Atomic { .. } => ComputeClass::Atomic,
        };
        let id = StreamId(out.streams.len() as u8);
        stream_of_stmt.insert(site.stmt, id);
        if let Some(&li) = merged_load_of_store.get(&si) {
            stream_of_stmt.insert(analysis.sites[li].stmt, id);
        }
        out.streams.push(StreamInfo {
            id,
            stmt: site.stmt,
            array: site.array,
            pattern,
            role,
            value_deps: Vec::new(),
            elem_bytes: bytes,
            compute_uops: 0,
            needs_scm: false,
            result_bytes: match &site.kind {
                SiteKind::Load { .. } => bytes,
                SiteKind::Atomic { old: Some(_), .. } => 8,
                _ => 0,
            },
            loop_depth: site.depth,
            conditional: site.conditional,
        });
        out.offloadable.push(true);
    }
    out.stmt_stream = stream_of_stmt;

    // Snapshot of the stmt -> stream map for dependence resolution (stream
    // creation is complete; later passes only mutate stream metadata).
    let stmt_stream_snapshot = out.stmt_stream.clone();
    let site_stream = move |stmt: StmtId| -> Option<StreamId> { stmt_stream_snapshot.get(&stmt).copied() };

    // ---- Reduction recognition -----------------------------------------
    // acc = op(acc, rest) with associative op and loop-carried acc.
    for a in &analysis.assigns {
        let Expr::Binary(op, lhs, rhs) = &a.expr else { continue };
        if !op.is_associative() {
            continue;
        }
        let rest = if **lhs == Expr::Var(a.var) {
            rhs
        } else if **rhs == Expr::Var(a.var) {
            lhs
        } else {
            continue;
        };
        // Loop-carried accumulator, or the kernel's outer-reduction
        // variable (carried across the parallel loop by OpenMP reduction
        // semantics).
        let is_outer_red = kernel
            .outer_reduction
            .as_ref()
            .is_some_and(|r| r.var == a.var);
        if !analysis.reassigned.contains(&a.var) && !is_outer_red {
            continue;
        }
        // Resolve feeding load streams.
        let mut feeders: Vec<StreamId> = Vec::new();
        let mut vars = Vec::new();
        rest.collect_vars(&mut vars);
        for v in vars {
            for root in analysis.load_roots(v) {
                if let Some(sid) = site_stream(root) {
                    if !feeders.contains(&sid) {
                        feeders.push(sid);
                    }
                }
            }
        }
        // Primary feeder: the deepest load-role stream.
        let Some(&primary) = feeders
            .iter()
            .filter(|sid| out.streams[sid.0 as usize].role == ComputeClass::Load)
            .max_by_key(|sid| out.streams[sid.0 as usize].loop_depth)
        else {
            continue;
        };
        let uops = analysis.chain_uops(rest) + 1; // + the accumulate op
        let has_float = analysis.chain_has_float(rest)
            || program.decl(out.streams[primary.0 as usize].array).elem.is_float();
        {
            let s = &mut out.streams[primary.0 as usize];
            if s.role != ComputeClass::Load {
                continue;
            }
            s.role = ComputeClass::Reduce;
            s.compute_uops += uops;
            s.needs_scm |= has_float || uops > 3;
            s.result_bytes = 0; // only the final value returns
            for f in feeders {
                if f != primary && !s.value_deps.contains(&f) {
                    s.value_deps.push(f);
                }
            }
        }
        out.absorbed_assign_orders.insert(a.order);
        *out.absorbed_uops_per_body.entry(a.body).or_insert(0) += a.expr.uops().max(1);
        // Intermediates in the chain are absorbed too.
        absorb_chain(analysis, rest, &mut out);
    }

    // ---- Load narrowing closures (paper §III-B "Load") ------------------
    // Collect external uses of every variable once.
    let external_uses = collect_uses(kernel);
    for idx in 0..out.streams.len() {
        if out.streams[idx].role != ComputeClass::Load {
            continue;
        }
        let elem_bytes = out.streams[idx].elem_bytes;
        // The variable the load defines.
        let Some(site) = analysis.sites.iter().find(|s| s.stmt == out.streams[idx].stmt) else {
            continue;
        };
        let SiteKind::Load { var } = site.kind else { continue };
        // Grow the closure: assigns depending only on closure vars/params.
        let mut closure: HashSet<VarId> = HashSet::new();
        closure.insert(var);
        let mut closure_assigns: Vec<usize> = Vec::new();
        let mut grew = true;
        while grew {
            grew = false;
            for (ai, a) in analysis.assigns.iter().enumerate() {
                if closure.contains(&a.var)
                    || out.absorbed_assign_orders.contains(&a.order)
                    || closure_assigns.contains(&ai)
                {
                    continue;
                }
                let mut vars = Vec::new();
                a.expr.collect_vars(&mut vars);
                if vars.is_empty() {
                    continue; // constants are free anywhere
                }
                if vars.iter().all(|v| {
                    closure.contains(v)
                        || matches!(analysis.defs.get(v), Some(DefKind::Pure { .. }))
                            && analysis.chain_pure_vars(&Expr::var(*v)).is_empty()
                }) && vars.iter().any(|v| closure.contains(v))
                {
                    closure.insert(a.var);
                    closure_assigns.push(ai);
                    grew = true;
                }
            }
        }
        if closure_assigns.is_empty() {
            continue;
        }
        // Frontier: closure vars used outside the closure.
        let mut frontier: Vec<VarId> = Vec::new();
        for &v in &closure {
            if v == var && closure.len() > 1 {
                // The raw loaded value itself: only a frontier member if
                // used outside the closure assigns.
                if used_outside(v, &external_uses, &closure_assigns, analysis) {
                    frontier.push(v);
                }
                continue;
            }
            if used_outside(v, &external_uses, &closure_assigns, analysis) {
                frontier.push(v);
            }
        }
        if frontier.is_empty() || frontier.contains(&var) {
            continue; // raw value still needed: no narrowing win
        }
        let result_bytes: u32 = frontier
            .iter()
            .map(|v| width_of(kernel, *v, 8) as u32)
            .sum();
        // Compare against the full element the memory system would move
        // (a field access still drags the whole record/line to the core).
        let moved_bytes = program.decl(out.streams[idx].array).elem.bytes().max(elem_bytes) as u32;
        if result_bytes >= moved_bytes {
            continue; // not a data-size reduction: keep in core
        }
        let uops: u32 = closure_assigns
            .iter()
            .map(|&ai| analysis.assigns[ai].expr.uops().max(1))
            .sum();
        let has_float = closure_assigns
            .iter()
            .any(|&ai| analysis.chain_has_float(&analysis.assigns[ai].expr))
            || program.decl(out.streams[idx].array).elem.is_float()
            || site.field.map(|f| f.ty.is_float()).unwrap_or(false)
            || matches!(program.decl(out.streams[idx].array).elem, ElemType::Record(_));
        {
            let s = &mut out.streams[idx];
            s.compute_uops += uops;
            s.result_bytes = result_bytes.min(255) as u8;
            s.needs_scm |= has_float || uops > 3;
        }
        for &ai in &closure_assigns {
            let a = &analysis.assigns[ai];
            out.absorbed_assign_orders.insert(a.order);
            *out.absorbed_uops_per_body.entry(a.body).or_insert(0) += a.expr.uops().max(1);
        }
    }
    // ---- Store / atomic operand assignment ------------------------------
    for (si, site) in analysis.sites.iter().enumerate() {
        let Some(sid) = site_stream(site.stmt) else { continue };
        // Skip if this stmt's stream belongs to another site (merged load).
        if out.streams[sid.0 as usize].stmt != site.stmt {
            continue;
        }
        let value_expr: Option<&Expr> = match &site.kind {
            SiteKind::Store { value } => Some(value),
            SiteKind::Atomic { operand, .. } => Some(operand),
            SiteKind::Load { .. } => None,
        };
        let Some(value_expr) = value_expr else { continue };
        let mut deps: Vec<StreamId> = Vec::new();
        let mut vars = Vec::new();
        value_expr.collect_vars(&mut vars);
        if let SiteKind::Atomic { expected: Some(e), .. } = &site.kind {
            e.collect_vars(&mut vars);
        }
        for v in &vars {
            for root in analysis.load_roots(*v) {
                if let Some(d) = site_stream(root) {
                    if d != sid && !deps.contains(&d) {
                        deps.push(d);
                    }
                }
            }
        }
        let uops = analysis.chain_uops(value_expr).max(1);
        let has_float = analysis.chain_has_float(value_expr)
            || program.decl(site.array).elem.is_float();
        {
            let s = &mut out.streams[sid.0 as usize];
            s.value_deps = deps.clone();
            s.compute_uops += uops;
            s.needs_scm |= has_float && uops > 1 || uops > 3;
        }
        // Legality: indirect streams cannot take arbitrary operand streams
        // (paper §II-B: C[B[i]] += A[i] is ineligible; C[A[i]] += A[i] is
        // fine because the value-producing stream *is* the base stream).
        if let AddrPatternClass::Indirect { base } = out.streams[sid.0 as usize].pattern {
            let depth = out.streams[sid.0 as usize].loop_depth;
            let base_array = out.streams[base.0 as usize].array;
            // Outer-loop value streams are loop-invariant for the nested
            // indirect stream and arrive at configuration time (Fig 4d),
            // and values co-located with the base stream (fields of the
            // same record array, e.g. GAP's (dest, weight) edge pairs) ride
            // along in the indirect request ("A[i] is included in such an
            // indirect request"). A same-depth stream over a *different*
            // array is the paper's ineligible C[B[i]] += A[i] case: it
            // would have to compute the indirect bank itself.
            if deps.iter().any(|d| {
                *d != base
                    && out.streams[d.0 as usize].loop_depth >= depth
                    && out.streams[d.0 as usize].array != base_array
            }) {
                out.offloadable[sid.0 as usize] = false;
            }
        }
        absorb_chain(analysis, value_expr, &mut out);
        let _ = si;
    }


    out
}

/// Marks the pure chain feeding `expr` as absorbed onto a stream.
fn absorb_chain(analysis: &KernelAnalysis, expr: &Expr, out: &mut StreamAssignment) {
    for v in analysis.chain_pure_vars(expr) {
        for a in &analysis.assigns {
            if a.var == v && !out.absorbed_assign_orders.contains(&a.order) {
                out.absorbed_assign_orders.insert(a.order);
                *out.absorbed_uops_per_body.entry(a.body).or_insert(0) += a.expr.uops().max(1);
            }
        }
    }
}

/// All uses of each variable outside pure assignments: `(var) -> use count
/// in index/value/cond/trip expressions and assign rhs`, with the assign
/// order recorded so closure members can be excluded.
struct Uses {
    /// (var, assign_order_or_none) pairs.
    entries: Vec<(VarId, Option<usize>)>,
}

fn collect_uses(kernel: &Kernel) -> Uses {
    use nsc_ir::program::{Stmt, Trip};
    let mut entries = Vec::new();
    let mut order = 0usize;
    fn add_expr(e: &Expr, slot: Option<usize>, entries: &mut Vec<(VarId, Option<usize>)>) {
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        for v in vars {
            entries.push((v, slot));
        }
    }
    fn walk(stmts: &[Stmt], order: &mut usize, entries: &mut Vec<(VarId, Option<usize>)>) {
        for s in stmts {
            let this = *order;
            *order += 1;
            match s {
                Stmt::Assign { expr, .. } => add_expr(expr, Some(this), entries),
                Stmt::Load { index, .. } => add_expr(index, None, entries),
                Stmt::Store { index, value, .. } => {
                    add_expr(index, None, entries);
                    add_expr(value, None, entries);
                }
                Stmt::Atomic { index, operand, expected, .. } => {
                    add_expr(index, None, entries);
                    add_expr(operand, None, entries);
                    if let Some(e) = expected {
                        add_expr(e, None, entries);
                    }
                }
                Stmt::If { cond, then_body, else_body } => {
                    add_expr(cond, None, entries);
                    walk(then_body, order, entries);
                    walk(else_body, order, entries);
                }
                Stmt::Loop(l) => {
                    match &l.trip {
                        Trip::Expr(e) | Trip::While(e) => add_expr(e, None, entries),
                        Trip::Const(_) => {}
                    }
                    walk(&l.body, order, entries);
                }
            }
        }
    }
    walk(&kernel.outer.body, &mut order, &mut entries);
    Uses { entries }
}

fn used_outside(
    var: VarId,
    uses: &Uses,
    closure_assigns: &[usize],
    analysis: &KernelAnalysis,
) -> bool {
    let closure_orders: Vec<usize> = closure_assigns
        .iter()
        .map(|&ai| analysis.assigns[ai].order)
        .collect();
    uses.entries.iter().any(|(v, slot)| {
        *v == var
            && match slot {
                None => true, // used by a memory/control expression
                Some(o) => !closure_orders.contains(o),
            }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::program::Trip;
    use nsc_ir::{AtomicOp, BinOp, Program};

    #[test]
    fn vecadd_store_gets_value_deps() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 64);
        let b = p.array("b", ElemType::I64, 64);
        let c = p.array("c", ElemType::I64, 64);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        let va = k.load(a, Expr::var(i));
        let vb = k.load(b, Expr::var(i));
        k.store(c, Expr::var(i), Expr::var(va) + Expr::var(vb));
        let kernel = k.finish();
        let an = analyze(&kernel);
        let asg = assign_streams(&p, &kernel, &an);
        assert_eq!(asg.streams.len(), 3);
        let store = asg.streams.iter().find(|s| s.role == ComputeClass::Store).unwrap();
        assert_eq!(store.value_deps.len(), 2);
        assert_eq!(store.compute_uops, 1);
        assert!(!store.needs_scm);
    }

    #[test]
    fn reduction_promotes_load_stream() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::F64, 64);
        let out = p.array("out", ElemType::F64, 1);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        let acc = k.let_(Expr::immf(0.0));
        let j = k.begin_loop(Trip::Const(4));
        let v = k.load(a, Expr::var(i) * Expr::imm(4) + Expr::var(j));
        k.assign(acc, Expr::var(acc) + Expr::var(v));
        k.end_loop();
        k.store(out, Expr::imm(0), Expr::var(acc));
        let kernel = k.finish();
        let an = analyze(&kernel);
        let asg = assign_streams(&p, &kernel, &an);
        let red = asg.streams.iter().find(|s| s.role == ComputeClass::Reduce);
        assert!(red.is_some(), "streams: {:?}", asg.streams);
        let red = red.unwrap();
        assert_eq!(red.result_bytes, 0);
        assert!(red.compute_uops >= 1);
        assert!(red.needs_scm); // float accumulate
    }

    #[test]
    fn rmw_merge() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 64);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        let v = k.load(a, Expr::var(i));
        k.store(a, Expr::var(i), Expr::var(v) + Expr::imm(3));
        let kernel = k.finish();
        let an = analyze(&kernel);
        let asg = assign_streams(&p, &kernel, &an);
        assert_eq!(asg.streams.len(), 1);
        assert_eq!(asg.streams[0].role, ComputeClass::Rmw);
        assert_eq!(asg.stmt_stream.len(), 2); // both stmts map to it
    }

    #[test]
    fn indirect_atomic_with_foreign_operand_is_illegal() {
        // C[B[i]] += A[i]: the operand stream is not the base stream.
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 64);
        let b = p.array("b", ElemType::I64, 64);
        let c = p.array("c", ElemType::I64, 64);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        let va = k.load(a, Expr::var(i));
        let vb = k.load(b, Expr::var(i));
        k.atomic(c, Expr::var(vb), AtomicOp::Add, Expr::var(va));
        let kernel = k.finish();
        let an = analyze(&kernel);
        let asg = assign_streams(&p, &kernel, &an);
        let atomic_idx = asg
            .streams
            .iter()
            .position(|s| s.role == ComputeClass::Atomic)
            .unwrap();
        assert!(!asg.offloadable[atomic_idx]);
    }

    #[test]
    fn indirect_atomic_with_base_operand_is_legal() {
        // C[A[i]] += A[i].
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 64);
        let c = p.array("c", ElemType::I64, 64);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        let va = k.load(a, Expr::var(i));
        k.atomic(c, Expr::var(va), AtomicOp::Add, Expr::var(va));
        let kernel = k.finish();
        let an = analyze(&kernel);
        let asg = assign_streams(&p, &kernel, &an);
        let atomic_idx = asg
            .streams
            .iter()
            .position(|s| s.role == ComputeClass::Atomic)
            .unwrap();
        assert!(asg.offloadable[atomic_idx]);
    }

    #[test]
    fn narrowing_closure_attaches_to_load() {
        // A 64-byte record reduced to an 8-byte distance.
        let mut p = Program::new("t");
        let pts = p.array("pts", ElemType::Record(64), 32);
        let idx = p.array("idx", ElemType::I64, 64);
        let out = p.array("out", ElemType::F64, 64);
        let f0 = nsc_ir::program::Field { offset: 0, ty: ElemType::F64 };
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        let which = k.load(idx, Expr::var(i));
        let x = k.load_field(pts, Expr::var(which), Some(f0));
        let d = k.let_(Expr::var(x) * Expr::var(x));
        k.store(out, Expr::var(i), Expr::var(d));
        let kernel = k.finish();
        let an = analyze(&kernel);
        let asg = assign_streams(&p, &kernel, &an);
        let pt_stream = asg
            .streams
            .iter()
            .find(|s| s.array == pts)
            .expect("point load stream");
        // The store's value dep absorbs the chain first; the closure test
        // exercises the store-dep path here: the point stream feeds the
        // store.
        let store = asg.streams.iter().find(|s| s.role == ComputeClass::Store).unwrap();
        assert!(store.value_deps.contains(&pt_stream.id));
    }

    #[test]
    fn narrowing_closure_via_hint() {
        // hash-key extraction: 4-byte value -> 1-byte key used as an index.
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I32, 64);
        let h = p.array("h", ElemType::I64, 256);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        let v = k.load(a, Expr::var(i));
        let key = k.let_(Expr::bin(
            BinOp::And,
            Expr::bin(BinOp::Xor, Expr::var(v), Expr::bin(BinOp::Shr, Expr::var(v), Expr::imm(8))),
            Expr::imm(255),
        ));
        k.hint_width(key, 1);
        k.atomic(h, Expr::var(key), AtomicOp::Add, Expr::imm(1));
        let kernel = k.finish();
        let an = analyze(&kernel);
        let asg = assign_streams(&p, &kernel, &an);
        let load = asg
            .streams
            .iter()
            .find(|s| s.array == a && s.role == ComputeClass::Load)
            .expect("load stream");
        assert_eq!(load.result_bytes, 1);
        assert!(load.compute_uops >= 3);
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::analysis::analyze;
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::{ElemType, Expr, Program};

    #[test]
    fn stream_budget_is_capped() {
        // More loads than the SE's 12 stream contexts: the excess stay
        // plain core accesses.
        let mut p = Program::new("t");
        let arrays: Vec<_> = (0..16)
            .map(|i| p.array(&format!("a{i}"), ElemType::I64, 64))
            .collect();
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        for &a in &arrays {
            k.load(a, Expr::var(i));
        }
        let kernel = k.finish();
        let an = analyze(&kernel);
        let asg = assign_streams(&p, &kernel, &an);
        assert_eq!(asg.streams.len(), MAX_STREAMS);
        assert_eq!(asg.stmt_stream.len(), MAX_STREAMS);
    }

    #[test]
    fn unclassifiable_sites_get_no_stream() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 4096);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        k.load(a, Expr::var(i) * Expr::var(i)); // quadratic
        let kernel = k.finish();
        let an = analyze(&kernel);
        let asg = assign_streams(&p, &kernel, &an);
        assert!(asg.streams.is_empty());
    }

    #[test]
    fn min_reduction_recognized() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 64);
        let out = p.array("out", ElemType::I64, 1);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        let v = k.load(a, Expr::var(i));
        let m = k.var();
        k.assign(m, Expr::min(Expr::var(m), Expr::var(v)));
        k.reduce_outer(m, nsc_ir::BinOp::Min, out);
        let kernel = k.finish();
        let an = analyze(&kernel);
        let asg = assign_streams(&p, &kernel, &an);
        assert_eq!(asg.streams[0].role, ComputeClass::Reduce);
        assert!(!asg.streams[0].needs_scm, "integer min fits the scalar PE");
    }
}
