//! The plan pass: per-kernel execution planning at `CompiledKernel`
//! construction.
//!
//! Classification and stream assignment decide *where* work runs (core vs
//! stream engine); this pass decides *how* the control engine executes the
//! residual per-element work: each kernel's expression trees are lowered to
//! register bytecode ([`nsc_ir::bytecode`]) with dead-assign pruning,
//! constant folding, CSE and loop-invariant hoisting, and the dispatch cost
//! model in [`cost`](crate::cost) keeps or declines the bytecode per
//! statement (declined statements run on the tree walker, sharing the same
//! locals).
//!
//! `NSC_COMPILE=0` disables planning entirely: every kernel carries no plan
//! and the interpreter's tree walker runs everywhere. Results are
//! bit-identical either way (the `RunRequest` digest deliberately excludes
//! the plan).

use crate::cost;
use nsc_ir::bytecode::{self, KernelCode};
use nsc_ir::program::Kernel;
use std::sync::Arc;

/// Builds the execution plan for one kernel: lowered bytecode with the
/// cost-model policy applied per statement, or `None` when `NSC_COMPILE=0`.
pub fn plan_kernel(kernel: &Kernel) -> Option<Arc<KernelCode>> {
    if !bytecode::enabled() {
        return None;
    }
    let code =
        KernelCode::compile_with(kernel, &mut |_, lowered| cost::prefer_bytecode(lowered));
    Some(Arc::new(code))
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::{ElemType, Expr, Program};

    #[test]
    fn plan_is_built_and_lowers_whole_kernel() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 64);
        let b = p.array("b", ElemType::I64, 64);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        let v = k.load(a, Expr::var(i));
        k.store(b, Expr::var(i), Expr::var(v) * Expr::imm(3) + Expr::imm(1));
        let kernel = k.finish();
        // NSC_COMPILE is unset in tests, so planning is on.
        let plan = plan_kernel(&kernel).unwrap();
        assert_eq!(plan.stats.tree_stmts, 0);
        assert!(plan.stats.ops > 0);
    }
}
