//! Kernel analysis: definition sites, access sites, loop bodies.
//!
//! This is the groundwork for stream classification: a single walk over the
//! kernel collects every memory-access site with its loop context, every
//! pure assignment (for closure slicing), and where each variable is
//! defined.

use nsc_ir::program::{ArrayId, Field, Kernel, Stmt, StmtId, Trip, VarId};
use nsc_ir::types::AtomicOp;
use nsc_ir::Expr;
use std::collections::{HashMap, HashSet};

/// How a variable gets its value.
#[derive(Clone, Debug, PartialEq)]
pub enum DefKind {
    /// A loop induction variable at the given depth (1 = outer).
    LoopVar {
        /// Loop depth.
        depth: usize,
        /// Whether the loop is a data-dependent while loop.
        is_while: bool,
    },
    /// Loaded from memory by the given statement.
    FromLoad {
        /// The load statement.
        stmt: StmtId,
    },
    /// Old value captured by an atomic.
    FromAtomic {
        /// The atomic statement.
        stmt: StmtId,
    },
    /// Computed by a pure assignment.
    Pure {
        /// The assigned expression.
        expr: Expr,
    },
}

/// What kind of memory access a site performs.
#[derive(Clone, Debug, PartialEq)]
pub enum SiteKind {
    /// A load into `var`.
    Load {
        /// Destination variable.
        var: VarId,
    },
    /// A store of `value`.
    Store {
        /// Stored value expression.
        value: Expr,
    },
    /// An atomic RMW.
    Atomic {
        /// The operation.
        op: AtomicOp,
        /// Operand expression.
        operand: Expr,
        /// CAS expected value.
        expected: Option<Expr>,
        /// Captured old value.
        old: Option<VarId>,
    },
}

/// One memory-access site with its full loop context.
#[derive(Clone, Debug)]
pub struct AccessSite {
    /// The statement id.
    pub stmt: StmtId,
    /// Access kind.
    pub kind: SiteKind,
    /// Accessed array.
    pub array: ArrayId,
    /// Index expression.
    pub index: Expr,
    /// Record field, if any.
    pub field: Option<Field>,
    /// Loop depth (1 = directly in the outer loop).
    pub depth: usize,
    /// Enclosing loop variables, outermost first: `(var, depth, is_while)`.
    pub loops: Vec<(VarId, usize, bool)>,
    /// Whether the site is under a conditional.
    pub conditional: bool,
    /// Index of the enclosing loop body in [`KernelAnalysis::bodies`].
    pub body: usize,
    /// Program order.
    pub order: usize,
}

/// One pure assignment with its context.
#[derive(Clone, Debug)]
pub struct AssignSite {
    /// Target variable.
    pub var: VarId,
    /// Assigned expression.
    pub expr: Expr,
    /// Enclosing body index.
    pub body: usize,
    /// Program order.
    pub order: usize,
}

/// Aggregate information about one loop body.
#[derive(Clone, Debug, Default)]
pub struct BodyInfo {
    /// Loop depth (1 = outer loop body).
    pub depth: usize,
    /// µops of pure compute (assignments + branch conditions) directly in
    /// this body.
    pub compute_uops: u32,
    /// Memory-access sites directly in this body.
    pub n_accesses: u32,
    /// Whether the body belongs to a while loop.
    pub is_while: bool,
    /// Whether the loop's trip count is data-dependent (`Expr`/`While`).
    pub dynamic_trip: bool,
}

/// Everything the classifier needs about one kernel.
#[derive(Clone, Debug, Default)]
pub struct KernelAnalysis {
    /// All memory-access sites, in program order.
    pub sites: Vec<AccessSite>,
    /// All pure assignments, in program order.
    pub assigns: Vec<AssignSite>,
    /// Final definition for each variable.
    pub defs: HashMap<VarId, DefKind>,
    /// Depth at which each variable is (last) defined.
    pub def_depth: HashMap<VarId, usize>,
    /// Variables assigned more than once (loop-carried candidates).
    pub reassigned: HashSet<VarId>,
    /// Variables assigned inside each while-loop body, keyed by body index.
    pub while_assigned: HashMap<usize, HashSet<VarId>>,
    /// Loop bodies (index 0 = outer body).
    pub bodies: Vec<BodyInfo>,
}

impl KernelAnalysis {
    /// Resolves `var` through pure assignment chains to the set of root
    /// load statements it (transitively) depends on. Loop variables and
    /// parameters contribute nothing.
    pub fn load_roots(&self, var: VarId) -> Vec<StmtId> {
        let mut out = Vec::new();
        let mut seen = HashSet::new();
        self.load_roots_inner(var, &mut out, &mut seen);
        out
    }

    fn load_roots_inner(&self, var: VarId, out: &mut Vec<StmtId>, seen: &mut HashSet<VarId>) {
        if !seen.insert(var) {
            return;
        }
        match self.defs.get(&var) {
            Some(DefKind::FromLoad { stmt }) | Some(DefKind::FromAtomic { stmt })
                if !out.contains(stmt) => {
                    out.push(*stmt);
                }
            Some(DefKind::Pure { expr }) => {
                let mut vars = Vec::new();
                expr.collect_vars(&mut vars);
                for v in vars {
                    self.load_roots_inner(v, out, seen);
                }
            }
            _ => {}
        }
    }

    /// Total µops of the pure-assignment chain from load roots to `var`
    /// (counting each intermediate assignment once).
    pub fn chain_uops(&self, expr: &Expr) -> u32 {
        let mut seen = HashSet::new();
        let mut total = expr.uops();
        let mut vars = Vec::new();
        expr.collect_vars(&mut vars);
        let mut stack = vars;
        while let Some(v) = stack.pop() {
            if !seen.insert(v) {
                continue;
            }
            if let Some(DefKind::Pure { expr }) = self.defs.get(&v) {
                total += expr.uops();
                let mut inner = Vec::new();
                expr.collect_vars(&mut inner);
                stack.extend(inner);
            }
        }
        total
    }

    /// Variables defined by pure assignments in the chain from `expr` back
    /// to its roots (the intermediates a computation slice would absorb).
    pub fn chain_pure_vars(&self, expr: &Expr) -> Vec<VarId> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        let mut vars = Vec::new();
        expr.collect_vars(&mut vars);
        while let Some(v) = vars.pop() {
            if !seen.insert(v) {
                continue;
            }
            if let Some(DefKind::Pure { expr }) = self.defs.get(&v) {
                out.push(v);
                expr.collect_vars(&mut vars);
            }
        }
        out
    }

    /// Whether any expression in the chain from `expr` through pure defs
    /// touches floating point (a float constant or float-only operator).
    pub fn chain_has_float(&self, expr: &Expr) -> bool {
        fn expr_float(e: &Expr) -> bool {
            match e {
                Expr::Const(s) => s.is_float(),
                Expr::Var(_) | Expr::Param(_) => false,
                Expr::Binary(_, a, b) => expr_float(a) || expr_float(b),
                Expr::Unary(op, a) => {
                    matches!(op, nsc_ir::UnOp::Sqrt | nsc_ir::UnOp::Exp) || expr_float(a)
                }
                Expr::Select(c, a, b) => expr_float(c) || expr_float(a) || expr_float(b),
            }
        }
        if expr_float(expr) {
            return true;
        }
        let mut vars = Vec::new();
        expr.collect_vars(&mut vars);
        let mut seen = HashSet::new();
        while let Some(v) = vars.pop() {
            if !seen.insert(v) {
                continue;
            }
            if let Some(DefKind::Pure { expr }) = self.defs.get(&v) {
                if expr_float(expr) {
                    return true;
                }
                expr.collect_vars(&mut vars);
            }
        }
        false
    }
}

struct Walker<'k> {
    kernel: &'k Kernel,
    analysis: KernelAnalysis,
    order: usize,
}

/// Analyzes a kernel in one walk.
pub fn analyze(kernel: &Kernel) -> KernelAnalysis {
    let mut w = Walker {
        kernel,
        analysis: KernelAnalysis::default(),
        order: 0,
    };
    w.analysis.bodies.push(BodyInfo {
        depth: 1,
        is_while: false,
        dynamic_trip: !matches!(kernel.outer.trip, Trip::Const(_)),
        ..BodyInfo::default()
    });
    let mut defs_seen: HashSet<VarId> = HashSet::new();
    w.analysis.defs.insert(
        kernel.outer.var,
        DefKind::LoopVar { depth: 1, is_while: false },
    );
    w.analysis.def_depth.insert(kernel.outer.var, 0);
    defs_seen.insert(kernel.outer.var);
    let mut loops = vec![(kernel.outer.var, 1usize, false)];
    walk(&mut w, &kernel.outer.body, 0, 1, false, &mut loops, &mut defs_seen);
    w.analysis
}

#[allow(clippy::too_many_arguments)]
fn walk(
    w: &mut Walker<'_>,
    stmts: &[Stmt],
    body: usize,
    depth: usize,
    conditional: bool,
    loops: &mut Vec<(VarId, usize, bool)>,
    defs_seen: &mut HashSet<VarId>,
) {
    for s in stmts {
        let order = w.order;
        w.order += 1;
        match s {
            Stmt::Assign { var, expr } => {
                record_def(w, *var, DefKind::Pure { expr: expr.clone() }, depth, defs_seen);
                w.analysis.assigns.push(AssignSite {
                    var: *var,
                    expr: expr.clone(),
                    body,
                    order,
                });
                w.analysis.bodies[body].compute_uops += expr.uops().max(1);
                if w.analysis.bodies[body].is_while {
                    w.analysis
                        .while_assigned
                        .entry(body)
                        .or_default()
                        .insert(*var);
                }
            }
            Stmt::Load { id, var, array, index, field } => {
                record_def(w, *var, DefKind::FromLoad { stmt: *id }, depth, defs_seen);
                if w.analysis.bodies[body].is_while {
                    w.analysis
                        .while_assigned
                        .entry(body)
                        .or_default()
                        .insert(*var);
                }
                push_site(
                    w,
                    AccessSite {
                        stmt: *id,
                        kind: SiteKind::Load { var: *var },
                        array: *array,
                        index: index.clone(),
                        field: *field,
                        depth,
                        loops: loops.clone(),
                        conditional,
                        body,
                        order,
                    },
                );
            }
            Stmt::Store { id, array, index, field, value } => {
                push_site(
                    w,
                    AccessSite {
                        stmt: *id,
                        kind: SiteKind::Store { value: value.clone() },
                        array: *array,
                        index: index.clone(),
                        field: *field,
                        depth,
                        loops: loops.clone(),
                        conditional,
                        body,
                        order,
                    },
                );
            }
            Stmt::Atomic { id, array, index, field, op, operand, expected, old } => {
                if let Some(o) = old {
                    record_def(w, *o, DefKind::FromAtomic { stmt: *id }, depth, defs_seen);
                }
                push_site(
                    w,
                    AccessSite {
                        stmt: *id,
                        kind: SiteKind::Atomic {
                            op: *op,
                            operand: operand.clone(),
                            expected: expected.clone(),
                            old: *old,
                        },
                        array: *array,
                        index: index.clone(),
                        field: *field,
                        depth,
                        loops: loops.clone(),
                        conditional,
                        body,
                        order,
                    },
                );
            }
            Stmt::If { cond, then_body, else_body } => {
                w.analysis.bodies[body].compute_uops += cond.uops().max(1);
                walk(w, then_body, body, depth, true, loops, defs_seen);
                walk(w, else_body, body, depth, true, loops, defs_seen);
            }
            Stmt::Loop(l) => {
                let is_while = matches!(l.trip, Trip::While(_));
                let new_body = w.analysis.bodies.len();
                w.analysis.bodies.push(BodyInfo {
                    depth: depth + 1,
                    is_while,
                    dynamic_trip: !matches!(l.trip, Trip::Const(_)),
                    ..BodyInfo::default()
                });
                record_def(
                    w,
                    l.var,
                    DefKind::LoopVar { depth: depth + 1, is_while },
                    depth,
                    defs_seen,
                );
                if is_while {
                    if let Trip::While(cond) = &l.trip {
                        w.analysis.bodies[new_body].compute_uops += cond.uops().max(1);
                    }
                }
                loops.push((l.var, depth + 1, is_while));
                walk(w, &l.body, new_body, depth + 1, conditional, loops, defs_seen);
                loops.pop();
            }
        }
    }
    let _ = w.kernel;
}

fn record_def(w: &mut Walker<'_>, var: VarId, kind: DefKind, depth: usize, seen: &mut HashSet<VarId>) {
    if !seen.insert(var) {
        w.analysis.reassigned.insert(var);
    }
    w.analysis.defs.insert(var, kind);
    w.analysis.def_depth.insert(var, depth);
}

fn push_site(w: &mut Walker<'_>, site: AccessSite) {
    w.analysis.bodies[site.body].n_accesses += 1;
    w.analysis.sites.push(site);
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::program::Trip;
    use nsc_ir::{ElemType, Program};

    fn csr_kernel() -> (Program, Kernel) {
        let mut p = Program::new("t");
        let row = p.array("row", ElemType::I64, 17);
        let col = p.array("col", ElemType::I64, 64);
        let val = p.array("val", ElemType::F64, 64);
        let out = p.array("out", ElemType::F64, 16);
        let mut k = KernelBuilder::new("spmv", 16);
        let i = k.outer_var();
        let s = k.load(row, Expr::var(i));
        let e = k.load(row, Expr::var(i) + Expr::imm(1));
        let acc = k.let_(Expr::immf(0.0));
        let j = k.begin_loop(Trip::Expr(Expr::var(e) - Expr::var(s)));
        let idx = k.let_(Expr::var(s) + Expr::var(j));
        let c = k.load(col, Expr::var(idx));
        let v = k.load(val, Expr::var(idx));
        let _ = c;
        k.assign(acc, Expr::var(acc) + Expr::var(v));
        k.end_loop();
        k.store(out, Expr::var(i), Expr::var(acc));
        (p, k.finish())
    }

    #[test]
    fn collects_sites_and_bodies() {
        let (_, k) = csr_kernel();
        let a = analyze(&k);
        assert_eq!(a.sites.len(), 5); // 2 row loads, col, val, store
        assert_eq!(a.bodies.len(), 2);
        assert_eq!(a.bodies[0].n_accesses, 3);
        assert_eq!(a.bodies[1].n_accesses, 2);
        assert!(a.bodies[1].dynamic_trip);
        assert!(!a.bodies[1].is_while);
        // The inner sites carry both loop vars in scope.
        let inner = a.sites.iter().find(|s| s.depth == 2).unwrap();
        assert_eq!(inner.loops.len(), 2);
    }

    #[test]
    fn defs_and_roots() {
        let (_, k) = csr_kernel();
        let a = analyze(&k);
        // `idx = s + j` resolves to the row-load root.
        let idx_var = a
            .assigns
            .iter()
            .find(|s| matches!(&s.expr, Expr::Binary(nsc_ir::BinOp::Add, _, _)) && s.body == 1)
            .unwrap()
            .var;
        let roots = a.load_roots(idx_var);
        assert_eq!(roots.len(), 1);
    }

    #[test]
    fn while_carried_detection() {
        let mut p = Program::new("t");
        let nodes = p.array("n", ElemType::Record(16), 8);
        let next = nsc_ir::program::Field { offset: 8, ty: ElemType::I64 };
        let mut k = KernelBuilder::new("walk", 4);
        let cur = k.let_(Expr::imm(0));
        let _it = k.begin_while(Expr::ne(Expr::var(cur), Expr::imm(-1)));
        let n = k.load_field(nodes, Expr::var(cur), Some(next));
        k.assign(cur, Expr::var(n));
        k.end_loop();
        let kernel = k.finish();
        let a = analyze(&kernel);
        assert!(a.reassigned.contains(&cur));
        let while_body = a.sites[0].body;
        assert!(a.while_assigned[&while_body].contains(&cur));
        assert!(a.bodies[while_body].is_while);
    }

    #[test]
    fn chain_uops_counts_intermediates() {
        let (_, k) = csr_kernel();
        let a = analyze(&k);
        // store value is `acc`, whose chain includes the reduction add.
        let store = a
            .sites
            .iter()
            .find(|s| matches!(s.kind, SiteKind::Store { .. }))
            .unwrap();
        if let SiteKind::Store { value } = &store.kind {
            assert!(a.chain_uops(value) >= 1);
            // Float-ness through reassigned accumulators is detected from
            // element types at assignment time, not the (overwritten)
            // initializer — so only the direct chain is inspected here.
            assert!(a.chain_has_float(&Expr::immf(1.0)));
            assert!(!a.chain_has_float(&Expr::imm(1)));
        }
    }

    #[test]
    fn conditional_flag_set() {
        let mut p = Program::new("t");
        let arr = p.array("a", ElemType::I64, 8);
        let mut k = KernelBuilder::new("k", 8);
        let i = k.outer_var();
        k.begin_if(Expr::lt(Expr::var(i), Expr::imm(4)));
        k.store(arr, Expr::var(i), Expr::imm(1));
        k.end_if();
        let kernel = k.finish();
        let a = analyze(&kernel);
        assert!(a.sites[0].conditional);
    }
}
