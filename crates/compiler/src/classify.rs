//! Address-pattern classification (the paper's taxonomy, §II-A).

use crate::analysis::{AccessSite, KernelAnalysis};
use nsc_ir::program::StmtId;
use nsc_ir::stream::AddrPatternClass;
use std::collections::HashMap;

/// Raw classification of one site, before stream ids are allocated.
#[derive(Clone, Debug, PartialEq)]
pub enum RawPattern {
    /// Affine in the enclosing counted loops; `stride_elems` is the
    /// innermost-loop coefficient (in elements).
    Affine {
        /// Innermost stride in elements.
        stride_elems: i64,
    },
    /// Indirect through the value loaded by `base`.
    Indirect {
        /// The root load statement producing the index.
        base: StmtId,
    },
    /// Pointer-chasing (loop-carried address in a while loop).
    PointerChase,
}

impl RawPattern {
    /// Converts to the public classification given a stream-id mapping and
    /// the access width in bytes.
    pub fn to_class(
        &self,
        bytes: u8,
        stream_of: &HashMap<StmtId, nsc_ir::StreamId>,
    ) -> Option<AddrPatternClass> {
        Some(match self {
            RawPattern::Affine { stride_elems } => AddrPatternClass::Affine {
                stride_bytes: stride_elems * bytes as i64,
            },
            RawPattern::Indirect { base } => AddrPatternClass::Indirect {
                base: stream_of.get(base).copied()?,
            },
            RawPattern::PointerChase => AddrPatternClass::PointerChase,
        })
    }
}

/// Classifies one access site's address pattern.
///
/// Returns `None` when the pattern is not recognizable as a stream (the
/// access stays a plain core access).
pub fn classify_site(site: &AccessSite, analysis: &KernelAnalysis) -> Option<RawPattern> {
    // Pointer chasing: the index references a variable that is reassigned
    // inside the enclosing while-loop body (loop-carried address).
    if let Some(carried) = analysis.while_assigned.get(&site.body) {
        let mut vars = Vec::new();
        site.index.collect_vars(&mut vars);
        if vars.iter().any(|v| carried.contains(v) && analysis.reassigned.contains(v)) {
            return Some(RawPattern::PointerChase);
        }
    }

    // Affine: linear in every enclosing counted loop variable, with a
    // loop-invariant (possibly outer-stream-provided, Fig 4d) residual.
    if let Some(stride) = try_affine(site, analysis) {
        return Some(RawPattern::Affine { stride_elems: stride });
    }

    // Indirect: the index resolves through pure chains to exactly one
    // earlier load.
    let mut vars = Vec::new();
    site.index.collect_vars(&mut vars);
    let mut roots = Vec::new();
    for v in vars {
        // Loop variables contribute affine structure, not indirection.
        if matches!(
            analysis.defs.get(&v),
            Some(crate::analysis::DefKind::LoopVar { .. })
        ) {
            continue;
        }
        for r in analysis.load_roots(v) {
            if !roots.contains(&r) {
                roots.push(r);
            }
        }
    }
    if roots.len() == 1 && roots[0] != site.stmt {
        return Some(RawPattern::Indirect { base: roots[0] });
    }
    None
}

/// Attempts to view the site's index as affine over its enclosing counted
/// loops; returns the innermost stride in elements.
fn try_affine(site: &AccessSite, analysis: &KernelAnalysis) -> Option<i64> {
    let mut residual = site.index.clone();
    let mut innermost_stride = 0i64;
    let mut innermost_depth = 0usize;
    for &(var, depth, is_while) in &site.loops {
        if is_while {
            // A while loop's iteration counter is not a configurable
            // pattern; the index must simply not use it.
            if residual.uses_var(var) {
                return None;
            }
            continue;
        }
        let (stride, rest) = residual.as_affine_in(var)?;
        residual = rest;
        if depth >= innermost_depth && stride != 0 {
            innermost_stride = stride;
            innermost_depth = depth;
        }
    }
    // Residual must be invariant w.r.t. the innermost loop: every variable
    // it references must be defined strictly outside (shallower than) the
    // site's loop depth — this is exactly the nested-stream condition of
    // Figure 4(d) ("inner loop streams' configuration ... must only depend
    // on outer stream or loop-invariant data").
    let mut vars = Vec::new();
    residual.collect_vars(&mut vars);
    for v in vars {
        match analysis.defs.get(&v) {
            Some(crate::analysis::DefKind::LoopVar { .. }) => return None, // leftover loop var
            None => return None,
            _ => {
                let d = analysis.def_depth.get(&v).copied().unwrap_or(usize::MAX);
                if d >= site.depth && site.depth > 1 {
                    return None; // defined inside the same (inner) loop
                }
                if site.depth == 1 && d >= 1 {
                    // Outer-body sites: residual must be parameters or
                    // pre-loop constants only; anything defined in the
                    // outer body itself makes the address data-dependent.
                    return None;
                }
            }
        }
    }
    Some(innermost_stride)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::program::Trip;
    use nsc_ir::{ElemType, Expr, Program};

    #[test]
    fn simple_affine() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I32, 64);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        k.load(a, Expr::var(i) * Expr::imm(2) + Expr::imm(1));
        let kernel = k.finish();
        let an = analyze(&kernel);
        assert_eq!(
            classify_site(&an.sites[0], &an),
            Some(RawPattern::Affine { stride_elems: 2 })
        );
    }

    #[test]
    fn nested_affine_with_outer_loaded_base() {
        let mut p = Program::new("t");
        let row = p.array("row", ElemType::I64, 17);
        let col = p.array("col", ElemType::I64, 64);
        let mut k = KernelBuilder::new("k", 16);
        let i = k.outer_var();
        let s = k.load(row, Expr::var(i));
        let e = k.load(row, Expr::var(i) + Expr::imm(1));
        let j = k.begin_loop(Trip::Expr(Expr::var(e) - Expr::var(s)));
        k.load(col, Expr::var(s) + Expr::var(j));
        k.end_loop();
        let kernel = k.finish();
        let an = analyze(&kernel);
        let col_site = an.sites.iter().find(|s| s.depth == 2).unwrap();
        assert_eq!(
            classify_site(col_site, &an),
            Some(RawPattern::Affine { stride_elems: 1 })
        );
    }

    #[test]
    fn indirect_through_load() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 64);
        let b = p.array("b", ElemType::I64, 64);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        let v = k.load(a, Expr::var(i));
        k.load(b, Expr::var(v));
        let kernel = k.finish();
        let an = analyze(&kernel);
        let base_stmt = an.sites[0].stmt;
        assert_eq!(
            classify_site(&an.sites[1], &an),
            Some(RawPattern::Indirect { base: base_stmt })
        );
    }

    #[test]
    fn indirect_through_pure_chain() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I32, 64);
        let h = p.array("h", ElemType::I64, 256);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        let v = k.load(a, Expr::var(i));
        let key = k.let_(Expr::bin(nsc_ir::BinOp::And, Expr::var(v), Expr::imm(255)));
        k.atomic(h, Expr::var(key), nsc_ir::AtomicOp::Add, Expr::imm(1));
        let kernel = k.finish();
        let an = analyze(&kernel);
        let base_stmt = an.sites[0].stmt;
        assert_eq!(
            classify_site(&an.sites[1], &an),
            Some(RawPattern::Indirect { base: base_stmt })
        );
    }

    #[test]
    fn pointer_chase_in_while() {
        let mut p = Program::new("t");
        let nodes = p.array("n", ElemType::Record(16), 8);
        let next = nsc_ir::program::Field { offset: 8, ty: ElemType::I64 };
        let mut k = KernelBuilder::new("k", 4);
        let cur = k.let_(Expr::imm(0));
        k.begin_while(Expr::ne(Expr::var(cur), Expr::imm(-1)));
        let n = k.load_field(nodes, Expr::var(cur), Some(next));
        k.assign(cur, Expr::var(n));
        k.end_loop();
        let kernel = k.finish();
        let an = analyze(&kernel);
        assert_eq!(classify_site(&an.sites[0], &an), Some(RawPattern::PointerChase));
    }

    #[test]
    fn two_roots_is_unclassified() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 64);
        let b = p.array("b", ElemType::I64, 64);
        let c = p.array("c", ElemType::I64, 128);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        let va = k.load(a, Expr::var(i));
        let vb = k.load(b, Expr::var(i));
        k.load(c, Expr::var(va) + Expr::var(vb));
        let kernel = k.finish();
        let an = analyze(&kernel);
        assert_eq!(classify_site(&an.sites[2], &an), None);
    }

    #[test]
    fn quadratic_index_is_unclassified() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 4096);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        k.load(a, Expr::var(i) * Expr::var(i));
        let kernel = k.finish();
        let an = analyze(&kernel);
        assert_eq!(classify_site(&an.sites[0], &an), None);
    }

    #[test]
    fn raw_to_class_scales_stride() {
        let mut map = HashMap::new();
        map.insert(StmtId(0), nsc_ir::StreamId(3));
        assert_eq!(
            RawPattern::Affine { stride_elems: 2 }.to_class(4, &map),
            Some(AddrPatternClass::Affine { stride_bytes: 8 })
        );
        assert_eq!(
            RawPattern::Indirect { base: StmtId(0) }.to_class(4, &map),
            Some(AddrPatternClass::Indirect { base: nsc_ir::StreamId(3) })
        );
        assert_eq!(
            RawPattern::Indirect { base: StmtId(9) }.to_class(4, &map),
            None
        );
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;
    use crate::analysis::analyze;
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::program::Trip;
    use nsc_ir::{ElemType, Expr, Program};

    #[test]
    fn three_dimensional_affine() {
        // A[z*NY*NX + y*NX + x] over three nested loops.
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::F32, 8 * 16 * 32);
        let mut k = KernelBuilder::new("k", 8);
        let z = k.outer_var();
        let y = k.begin_loop(Trip::Const(16));
        let x = k.begin_loop(Trip::Const(32));
        k.load(
            a,
            Expr::var(z) * Expr::imm(16 * 32) + Expr::var(y) * Expr::imm(32) + Expr::var(x),
        );
        k.end_loop();
        k.end_loop();
        let kernel = k.finish();
        let an = analyze(&kernel);
        let site = an.sites.iter().find(|s| s.depth == 3).unwrap();
        assert_eq!(
            classify_site(site, &an),
            Some(RawPattern::Affine { stride_elems: 1 })
        );
    }

    #[test]
    fn conditional_inner_loop_still_classifies() {
        // Paper Fig 4(d): "A conditional inner loop can also be nested, as
        // long as the condition purely depends on outer streams."
        let mut p = Program::new("t");
        let flag = p.array("flag", ElemType::I64, 16);
        let data = p.array("data", ElemType::I64, 256);
        let mut k = KernelBuilder::new("k", 16);
        let i = k.outer_var();
        let f = k.load(flag, Expr::var(i));
        k.begin_if(Expr::ne(Expr::var(f), Expr::imm(0)));
        let j = k.begin_loop(Trip::Const(16));
        k.load(data, Expr::var(i) * Expr::imm(16) + Expr::var(j));
        k.end_loop();
        k.end_if();
        let kernel = k.finish();
        let an = analyze(&kernel);
        let site = an.sites.iter().find(|s| s.array == data).unwrap();
        assert!(site.conditional);
        assert!(matches!(
            classify_site(site, &an),
            Some(RawPattern::Affine { stride_elems: 1 })
        ));
    }

    #[test]
    fn while_counter_cannot_be_affine() {
        // An index using the while loop's own counter is not configurable.
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 64);
        let mut k = KernelBuilder::new("k", 4);
        let stop = k.let_(Expr::imm(5));
        let it = k.begin_while(Expr::lt(Expr::imm(0), Expr::var(stop)));
        k.load(a, Expr::var(it));
        k.assign(stop, Expr::var(stop) - Expr::imm(1));
        k.end_loop();
        let kernel = k.finish();
        let an = analyze(&kernel);
        assert_eq!(classify_site(&an.sites[0], &an), None);
    }
}
