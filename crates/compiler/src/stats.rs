//! Dynamic µop accounting for Figure 1(a) and Figure 11.

use crate::CompiledKernel;
use nsc_ir::interp::{self, FunctionalClient, MemClient};
use nsc_ir::program::{ArrayId, Field, Program, StmtId};
use nsc_ir::stream::ComputeClass;
use nsc_ir::types::{AtomicOp, Scalar};
use nsc_ir::Memory;
use std::collections::{BTreeMap, HashMap};

/// A client that counts per-statement executions while delegating
/// semantics.
#[derive(Debug)]
pub struct CountingClient<'m> {
    inner: FunctionalClient<'m>,
    /// Executions per memory statement.
    pub counts: HashMap<StmtId, u64>,
}

impl<'m> CountingClient<'m> {
    /// Wraps a memory.
    pub fn new(mem: &'m mut Memory) -> CountingClient<'m> {
        CountingClient {
            inner: FunctionalClient { mem },
            counts: HashMap::new(),
        }
    }
}

impl MemClient for CountingClient<'_> {
    fn load(&mut self, stmt: StmtId, array: ArrayId, index: u64, field: Option<Field>) -> Scalar {
        *self.counts.entry(stmt).or_insert(0) += 1;
        self.inner.load(stmt, array, index, field)
    }

    fn store(&mut self, stmt: StmtId, array: ArrayId, index: u64, field: Option<Field>, value: Scalar) {
        *self.counts.entry(stmt).or_insert(0) += 1;
        self.inner.store(stmt, array, index, field, value);
    }

    fn atomic(
        &mut self,
        stmt: StmtId,
        array: ArrayId,
        index: u64,
        field: Option<Field>,
        op: AtomicOp,
        operand: Scalar,
        expected: Option<Scalar>,
    ) -> Scalar {
        *self.counts.entry(stmt).or_insert(0) += 1;
        self.inner.atomic(stmt, array, index, field, op, operand, expected)
    }
}

/// Runs the whole program once, returning per-kernel execution counts.
pub fn run_with_counts(program: &Program, mem: &mut Memory, params: &[Scalar]) -> Vec<HashMap<StmtId, u64>> {
    let mut all = Vec::with_capacity(program.kernels.len());
    for k in &program.kernels {
        let trip = interp::outer_trip(k, params);
        let mut client = CountingClient::new(mem);
        let mut locals = Vec::new();
        let mut acc: Option<Scalar> = None;
        for i in 0..trip {
            let contrib = interp::exec_iteration(k, i, params, &mut client, &mut locals)
                .unwrap_or_else(|e| panic!("kernel {}: {e}", k.name));
            if let (Some(r), Some(c)) = (&k.outer_reduction, contrib) {
                acc = Some(match acc {
                    None => c,
                    Some(a) => r.op.eval(a, c),
                });
            }
        }
        let counts = client.counts;
        if let (Some(r), Some(total)) = (&k.outer_reduction, acc) {
            mem.write_index(r.target, 0, total);
        }
        all.push(counts);
    }
    all
}

/// Dynamic µop breakdown of one kernel (Figure 1(a) categories).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpBreakdown {
    /// Stream-associated µops by compute class.
    pub by_role: BTreeMap<ComputeClass, f64>,
    /// µops that stay plain core work.
    pub core_only: f64,
    /// Total dynamic µops.
    pub total: f64,
}

impl OpBreakdown {
    /// Fraction of total µops associated with streams of `role`.
    pub fn fraction(&self, role: ComputeClass) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.by_role.get(&role).copied().unwrap_or(0.0) / self.total
        }
    }

    /// Fraction of total µops associated with any stream.
    pub fn stream_fraction(&self) -> f64 {
        if self.total == 0.0 {
            0.0
        } else {
            self.by_role.values().sum::<f64>() / self.total
        }
    }

    /// Merges another kernel's breakdown into this one.
    pub fn merge(&mut self, other: &OpBreakdown) {
        for (k, v) in &other.by_role {
            *self.by_role.entry(*k).or_insert(0.0) += v;
        }
        self.core_only += other.core_only;
        self.total += other.total;
    }
}

/// Computes the dynamic µop breakdown for one compiled kernel given its
/// execution counts.
pub fn op_breakdown(compiled: &CompiledKernel, counts: &HashMap<StmtId, u64>) -> OpBreakdown {
    let mut out = OpBreakdown::default();
    for (stmt, &n) in counts {
        let n = n as f64;
        let cost = compiled.site_costs.get(stmt).copied().unwrap_or_default();
        let site_total = n * (1.0 + cost.addr_uops as f64 + cost.core_uops_base as f64);
        out.total += site_total;
        match compiled.stmt_stream.get(stmt) {
            Some(sid) => {
                let stream = &compiled.streams[sid.0 as usize];
                // Stream-associated: the access µop, address generation and
                // the compute absorbed onto the stream.
                let absorbed = (cost.core_uops_base - cost.core_uops_resid).max(0.0) as f64;
                let assoc = n * (1.0 + cost.addr_uops as f64 + absorbed);
                *out.by_role.entry(stream.role).or_insert(0.0) += assoc;
                out.core_only += n * cost.core_uops_resid as f64;
            }
            None => out.core_only += site_total,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile;
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::{ElemType, Expr, Program};

    fn vecadd() -> Program {
        let mut p = Program::new("vecadd");
        let a = p.array("a", ElemType::I64, 32);
        let b = p.array("b", ElemType::I64, 32);
        let c = p.array("c", ElemType::I64, 32);
        let mut k = KernelBuilder::new("k", 32);
        let i = k.outer_var();
        let va = k.load(a, Expr::var(i));
        let vb = k.load(b, Expr::var(i));
        k.store(c, Expr::var(i), Expr::var(va) + Expr::var(vb));
        p.push_kernel(k.finish());
        p
    }

    #[test]
    fn counts_track_dynamic_executions() {
        let p = vecadd();
        let mut mem = Memory::for_program(&p);
        let counts = run_with_counts(&p, &mut mem, &[]);
        assert_eq!(counts.len(), 1);
        assert_eq!(counts[0].values().sum::<u64>(), 96); // 3 accesses x 32
    }

    #[test]
    fn vecadd_is_fully_stream_associated() {
        let p = vecadd();
        let compiled = compile(&p);
        let mut mem = Memory::for_program(&p);
        let counts = run_with_counts(&p, &mut mem, &[]);
        let bd = op_breakdown(&compiled.kernels[0], &counts[0]);
        assert!(bd.stream_fraction() > 0.99, "fraction = {}", bd.stream_fraction());
        assert!(bd.fraction(ComputeClass::Store) > 0.0);
        assert!(bd.fraction(ComputeClass::Load) > 0.0);
    }

    #[test]
    fn breakdown_merge_accumulates() {
        let mut a = OpBreakdown {
            total: 10.0,
            core_only: 5.0,
            ..Default::default()
        };
        a.by_role.insert(ComputeClass::Load, 5.0);
        let mut b = OpBreakdown {
            total: 10.0,
            ..Default::default()
        };
        b.by_role.insert(ComputeClass::Load, 10.0);
        a.merge(&b);
        assert_eq!(a.total, 20.0);
        assert_eq!(a.fraction(ComputeClass::Load), 0.75);
    }
}
