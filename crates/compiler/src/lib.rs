//! The near-stream compiler: stream recognition and computation assignment
//! over the `nsc-ir` loop-nest IR (paper §III-B).
//!
//! The compiler runs four passes per kernel:
//!
//! 1. **Analysis** ([`analysis`]): one walk collecting definition sites,
//!    memory-access sites with loop context, and per-body compute µops.
//! 2. **Classification** ([`classify`]): each access's index expression is
//!    matched as affine (including the nested-stream form of Fig 4d),
//!    indirect, or pointer-chasing.
//! 3. **Assignment** ([`assign`]): computations move onto streams —
//!    reductions (loop-carried associative accumulators), store/atomic
//!    operand slices with multi-operand value dependences, RMW merges, and
//!    narrowing load closures.
//! 4. **Cost attribution** ([`cost`]): residual core work is distributed
//!    over accesses so the timing models can charge it per event.
//!
//! # Examples
//!
//! ```
//! use nsc_compiler::compile;
//! use nsc_ir::build::KernelBuilder;
//! use nsc_ir::{ElemType, Expr, Program};
//! use nsc_ir::stream::ComputeClass;
//!
//! let mut p = Program::new("memset");
//! let a = p.array("a", ElemType::I64, 1024);
//! let mut k = KernelBuilder::new("set", 1024);
//! let i = k.outer_var();
//! k.store(a, Expr::var(i), Expr::imm(0));
//! p.push_kernel(k.finish());
//!
//! let compiled = compile(&p);
//! assert_eq!(compiled.kernels[0].streams.len(), 1);
//! assert_eq!(compiled.kernels[0].streams[0].role, ComputeClass::Store);
//! ```

pub mod analysis;
pub mod assign;
pub mod classify;
pub mod cost;
pub mod plan;
pub mod stats;

use nsc_ir::program::{Program, StmtId};
use nsc_ir::stream::{AddrPatternClass, StreamId, StreamInfo};
use nsc_ir::ElemType;
use std::collections::HashMap;

pub use assign::MAX_STREAMS;
pub use cost::SiteCost;
pub use stats::{op_breakdown, run_with_counts, OpBreakdown};

/// Compiler output for one kernel.
#[derive(Clone, Debug)]
pub struct CompiledKernel {
    /// Kernel name (copied for reporting).
    pub name: String,
    /// Recognized streams, id-ordered.
    pub streams: Vec<StreamInfo>,
    /// Memory statement → serving stream.
    pub stmt_stream: HashMap<StmtId, StreamId>,
    /// Per-stream offload legality (paper §II-B eligibility rules).
    pub offloadable: Vec<bool>,
    /// Per-access core-cost attribution.
    pub site_costs: HashMap<StmtId, SiteCost>,
    /// Dense per-statement cost table (indexed by `StmtId`), for hot-path
    /// lookups in the timing engines.
    pub site_cost_vec: Vec<SiteCost>,
    /// Dense per-statement stream table (indexed by `StmtId`).
    pub stream_vec: Vec<Option<StreamId>>,
    /// `s_sync_free` pragma present.
    pub sync_free: bool,
    /// The kernel's inner work is fully captured by streams, enabling the
    /// fully-decoupled-loop optimization (paper §V, Figure 8).
    pub fully_decoupled: bool,
    /// AVX-512-style vectorization factor for the core's execution of this
    /// kernel (1 = scalar).
    pub vector_width: u32,
    /// Execution plan: the kernel's expression trees lowered to register
    /// bytecode (see [`plan`]). `None` when `NSC_COMPILE=0` — the
    /// interpreter then walks the trees. Excluded from the `RunRequest`
    /// digest because results are bit-identical either way.
    pub plan: Option<std::sync::Arc<nsc_ir::bytecode::KernelCode>>,
}

impl CompiledKernel {
    /// The stream serving `stmt`, if any.
    pub fn stream_of(&self, stmt: StmtId) -> Option<&StreamInfo> {
        self.stmt_stream.get(&stmt).map(|id| &self.streams[id.0 as usize])
    }

    /// Whether the stream with `id` may be offloaded.
    pub fn is_offloadable(&self, id: StreamId) -> bool {
        self.offloadable.get(id.0 as usize).copied().unwrap_or(false)
    }
}

/// Compiler output for a whole program.
#[derive(Clone, Debug)]
pub struct CompiledProgram {
    /// One entry per kernel, in program order.
    pub kernels: Vec<CompiledKernel>,
}

/// Compiles every kernel of a program.
///
/// # Panics
///
/// Panics if the program fails validation.
pub fn compile(program: &Program) -> CompiledProgram {
    if let Err(e) = program.validate() {
        panic!("invalid program {}: {e}", program.name);
    }
    let kernels = program
        .kernels
        .iter()
        .map(|k| {
            let an = analysis::analyze(k);
            let asg = assign::assign_streams(program, k, &an);
            let site_costs = cost::site_costs(&an, &asg);

            // Fully-decoupled-loop legality (paper §V): sync-free pragma
            // plus every memory access captured by a stream.
            let all_streamed = an.sites.iter().all(|s| asg.stmt_stream.contains_key(&s.stmt));
            let fully_decoupled = k.sync_free && all_streamed && !asg.streams.is_empty();

            // Vectorization: flat affine kernels over scalar elements.
            let vectorizable = !an.sites.is_empty()
                && an.sites.iter().all(|s| {
                    matches!(
                        asg.stream_of(s.stmt).map(|st| st.pattern),
                        Some(AddrPatternClass::Affine { .. })
                    ) && !s.conditional
                })
                && an.bodies.iter().all(|b| !b.is_while);
            let vector_width = if vectorizable {
                let max_bytes = an
                    .sites
                    .iter()
                    .map(|s| {
                        s.field
                            .map(|f| f.ty.bytes())
                            .unwrap_or_else(|| program.decl(s.array).elem.bytes())
                    })
                    .max()
                    .unwrap_or(8);
                if matches!(program.decl(an.sites[0].array).elem, ElemType::Record(_)) {
                    1
                } else {
                    (64 / max_bytes as u32).clamp(1, 16)
                }
            } else {
                1
            };

            let mut site_cost_vec = vec![SiteCost::default(); k.n_stmts as usize];
            for (id, c) in &site_costs {
                site_cost_vec[id.0 as usize] = *c;
            }
            let mut stream_vec = vec![None; k.n_stmts as usize];
            for (id, s) in &asg.stmt_stream {
                stream_vec[id.0 as usize] = Some(*s);
            }
            CompiledKernel {
                name: k.name.clone(),
                streams: asg.streams,
                stmt_stream: asg.stmt_stream,
                offloadable: asg.offloadable,
                site_costs,
                site_cost_vec,
                stream_vec,
                sync_free: k.sync_free,
                fully_decoupled,
                vector_width,
                plan: plan::plan_kernel(k),
            }
        })
        .collect();
    CompiledProgram { kernels }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::program::Trip;
    use nsc_ir::stream::ComputeClass;
    use nsc_ir::{AtomicOp, Expr};

    #[test]
    fn stencil_kernel_compiles_to_multiop_store() {
        let mut p = Program::new("stencil");
        let src = p.array("src", ElemType::F32, 1024);
        let dst = p.array("dst", ElemType::F32, 1024);
        let mut k = KernelBuilder::new("k", 1022);
        let i = k.outer_var();
        let l = k.load(src, Expr::var(i));
        let m = k.load(src, Expr::var(i) + Expr::imm(1));
        let r = k.load(src, Expr::var(i) + Expr::imm(2));
        k.store(
            dst,
            Expr::var(i) + Expr::imm(1),
            Expr::min(Expr::var(l), Expr::min(Expr::var(m), Expr::var(r))),
        );
        p.push_kernel(k.finish());
        let c = compile(&p);
        let ck = &c.kernels[0];
        assert_eq!(ck.streams.len(), 4);
        let store = ck.streams.iter().find(|s| s.role == ComputeClass::Store).unwrap();
        assert_eq!(store.value_deps.len(), 3);
        assert_eq!(ck.vector_width, 16); // f32 with AVX-512
    }

    #[test]
    fn graph_push_kernel_compiles_to_indirect_atomic() {
        let mut p = Program::new("push");
        let row = p.array("row", ElemType::I64, 17);
        let col = p.array("col", ElemType::I64, 64);
        let score = p.array("score", ElemType::I64, 16);
        let mut k = KernelBuilder::new("k", 16);
        let i = k.outer_var();
        let s = k.load(row, Expr::var(i));
        let e = k.load(row, Expr::var(i) + Expr::imm(1));
        let j = k.begin_loop(Trip::Expr(Expr::var(e) - Expr::var(s)));
        let v = k.load(col, Expr::var(s) + Expr::var(j));
        k.atomic(score, Expr::var(v), AtomicOp::Add, Expr::imm(1));
        k.end_loop();
        p.push_kernel(k.finish());
        let c = compile(&p);
        let ck = &c.kernels[0];
        let atomic = ck.streams.iter().find(|s| s.role == ComputeClass::Atomic).unwrap();
        assert!(matches!(atomic.pattern, AddrPatternClass::Indirect { .. }));
        assert!(ck.is_offloadable(atomic.id));
        assert_eq!(ck.vector_width, 1);
        // col is a nested affine stream.
        let col_stream = ck.streams.iter().find(|s| s.array == col).unwrap();
        assert!(matches!(col_stream.pattern, AddrPatternClass::Affine { .. }));
        assert_eq!(col_stream.loop_depth, 2);
    }

    #[test]
    fn sync_free_all_streamed_is_fully_decoupled() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 64);
        let b = p.array("b", ElemType::I64, 64);
        let mut k = KernelBuilder::new("copy", 64);
        let i = k.outer_var();
        let v = k.load(a, Expr::var(i));
        k.store(b, Expr::var(i), Expr::var(v));
        k.sync_free();
        p.push_kernel(k.finish());
        let c = compile(&p);
        assert!(c.kernels[0].fully_decoupled);
        assert!(c.kernels[0].sync_free);
    }

    #[test]
    fn without_pragma_not_decoupled() {
        let mut p = Program::new("t");
        let a = p.array("a", ElemType::I64, 64);
        let mut k = KernelBuilder::new("k", 64);
        let i = k.outer_var();
        k.store(a, Expr::var(i), Expr::imm(0));
        p.push_kernel(k.finish());
        let c = compile(&p);
        assert!(!c.kernels[0].fully_decoupled);
    }
}
