//! Event-based energy and area model in the spirit of McPAT/CACTI at 22 nm
//! (paper §VI "Energy consumption is estimated using McPAT at 22nm,
//! extended to model the stream engines").
//!
//! Energy is per-event dynamic energy plus static power x time; the
//! constants are McPAT-class 22 nm literature values, so *relative*
//! comparisons (Figure 10's energy-performance trade-off) are meaningful
//! even though absolute joules are approximate.
//!
//! # Examples
//!
//! ```
//! use nsc_energy::{EnergyModel, area};
//! use near_stream::CoreModel;
//!
//! let model = EnergyModel::mcpat_22nm();
//! assert!(model.core_uop_nj(&CoreModel::ooo8()) > model.core_uop_nj(&CoreModel::io4()));
//! let a = area::AreaModel::paper_22nm();
//! let overhead = a.overhead_fraction(&CoreModel::io4());
//! assert!(overhead > 0.015 && overhead < 0.035);
//! ```

pub mod area;

use near_stream::{CoreModel, RunResult};

/// Per-event energies (nanojoules) and static powers (watts).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EnergyModel {
    /// Dynamic energy per µop on a 4-wide in-order core.
    pub uop_io_nj: f64,
    /// Dynamic energy per µop on a 4-wide OOO core.
    pub uop_ooo4_nj: f64,
    /// Dynamic energy per µop on an 8-wide OOO core.
    pub uop_ooo8_nj: f64,
    /// Dynamic energy per µop on a stream engine (address gen / scalar PE).
    pub uop_se_nj: f64,
    /// Dynamic energy per µop on an SCM context (shares the core pipeline
    /// but with minimal ROB/RF resources).
    pub uop_scm_nj: f64,
    /// L1 access energy.
    pub l1_nj: f64,
    /// L2 access energy.
    pub l2_nj: f64,
    /// L3 bank access energy.
    pub l3_nj: f64,
    /// DRAM energy per 64 B line.
    pub dram_line_nj: f64,
    /// NoC energy per byte x hop (router + link).
    pub noc_byte_hop_nj: f64,
    /// Static power per IO4 core+L1+L2 tile slice.
    pub static_io_w: f64,
    /// Static power per OOO4 tile slice.
    pub static_ooo4_w: f64,
    /// Static power per OOO8 tile slice.
    pub static_ooo8_w: f64,
    /// Static power of uncore per tile (L3 bank + router + SEs).
    pub static_uncore_w: f64,
}

impl EnergyModel {
    /// McPAT-class 22 nm constants.
    pub fn mcpat_22nm() -> EnergyModel {
        EnergyModel {
            uop_io_nj: 0.04,
            uop_ooo4_nj: 0.10,
            uop_ooo8_nj: 0.16,
            uop_se_nj: 0.01,
            uop_scm_nj: 0.05,
            l1_nj: 0.015,
            l2_nj: 0.06,
            l3_nj: 0.18,
            dram_line_nj: 10.0,
            noc_byte_hop_nj: 0.003,
            static_io_w: 0.12,
            static_ooo4_w: 0.35,
            static_ooo8_w: 0.85,
            static_uncore_w: 0.25,
        }
    }

    /// Dynamic per-µop energy for a core model.
    pub fn core_uop_nj(&self, core: &CoreModel) -> f64 {
        match (core.out_of_order, core.width) {
            (false, _) => self.uop_io_nj,
            (true, w) if w <= 4 => self.uop_ooo4_nj,
            _ => self.uop_ooo8_nj,
        }
    }

    /// Static power per tile (core slice + uncore) for a core model.
    pub fn tile_static_w(&self, core: &CoreModel) -> f64 {
        let c = match (core.out_of_order, core.width) {
            (false, _) => self.static_io_w,
            (true, w) if w <= 4 => self.static_ooo4_w,
            _ => self.static_ooo8_w,
        };
        c + self.static_uncore_w
    }

    /// Evaluates a run's energy.
    pub fn evaluate(&self, result: &RunResult, core: &CoreModel, n_tiles: u32) -> EnergyBreakdown {
        let m = &result.mem;
        let cache_nj = (m.l1_hits + m.l1_misses) as f64 * self.l1_nj
            + (m.l2_hits + m.l2_misses + m.prefetch_fills) as f64 * self.l2_nj
            + (m.l3_hits + m.l3_misses + m.l3_atomics) as f64 * self.l3_nj;
        let dram_nj = (m.dram_reads + m.dram_writebacks) as f64 * self.dram_line_nj;
        let total_bh = (result.traffic.data + result.traffic.control + result.traffic.offloaded) as f64;
        let noc_nj = total_bh * self.noc_byte_hop_nj;
        let core_nj = result.uops_core * self.core_uop_nj(core);
        let se_nj = result.uops_se * self.uop_se_nj + result.uops_scm * self.uop_scm_nj;
        let seconds = result.cycles as f64 / 2.0e9;
        let static_nj = self.tile_static_w(core) * n_tiles as f64 * seconds * 1e9;
        EnergyBreakdown {
            core_dynamic_mj: core_nj * 1e-6,
            se_dynamic_mj: se_nj * 1e-6,
            cache_mj: cache_nj * 1e-6,
            dram_mj: dram_nj * 1e-6,
            noc_mj: noc_nj * 1e-6,
            static_mj: static_nj * 1e-6,
        }
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel::mcpat_22nm()
    }
}

/// Energy of one run, by component, in millijoules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// Core pipeline dynamic energy.
    pub core_dynamic_mj: f64,
    /// Stream engine + SCM dynamic energy.
    pub se_dynamic_mj: f64,
    /// Cache access energy.
    pub cache_mj: f64,
    /// DRAM access energy.
    pub dram_mj: f64,
    /// NoC traversal energy.
    pub noc_mj: f64,
    /// Leakage + clock over the run's duration.
    pub static_mj: f64,
}

impl EnergyBreakdown {
    /// Total energy in millijoules.
    pub fn total_mj(&self) -> f64 {
        self.core_dynamic_mj
            + self.se_dynamic_mj
            + self.cache_mj
            + self.dram_mj
            + self.noc_mj
            + self.static_mj
    }

    /// Energy-efficiency gain of this run relative to `other`
    /// (other/self, >1 means this run is more efficient).
    pub fn efficiency_gain_over(&self, other: &EnergyBreakdown) -> f64 {
        other.total_mj() / self.total_mj().max(1e-12)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use near_stream::{ExecMode, RoleCounters, TrafficSnapshot};

    fn fake_result(cycles: u64, bh: u64, uops: f64) -> RunResult {
        RunResult {
            mode: ExecMode::Base,
            cycles,
            traffic: TrafficSnapshot {
                data: bh,
                control: 0,
                offloaded: 0,
                messages: 0,
            },
            mem: nsc_mem::MemStats::default(),
            uops_core: uops,
            uops_se: 0.0,
            uops_scm: 0.0,
            total_uops: uops,
            roles: RoleCounters::default(),
            lock_acquisitions: 0,
            lock_conflicts: 0,
            alias_flushes: 0,
            peb_flushes: 0,
            offloaded_elems: 0,
            stream_elems: 0,
            dram_accesses: 0,
            noc_latency: nsc_sim::Histogram::new(8.0, 64),
            faults_injected: 0,
            offload_retries: 0,
            offload_fallbacks: 0,
            rangesync_replays: 0,
        }
    }

    #[test]
    fn static_energy_scales_with_time() {
        let m = EnergyModel::mcpat_22nm();
        let fast = m.evaluate(&fake_result(1_000_000, 0, 0.0), &CoreModel::ooo8(), 64);
        let slow = m.evaluate(&fake_result(2_000_000, 0, 0.0), &CoreModel::ooo8(), 64);
        assert!((slow.static_mj / fast.static_mj - 2.0).abs() < 1e-9);
    }

    #[test]
    fn noc_energy_scales_with_traffic() {
        let m = EnergyModel::mcpat_22nm();
        let lo = m.evaluate(&fake_result(1000, 1_000_000, 0.0), &CoreModel::io4(), 64);
        let hi = m.evaluate(&fake_result(1000, 4_000_000, 0.0), &CoreModel::io4(), 64);
        assert!((hi.noc_mj / lo.noc_mj - 4.0).abs() < 1e-9);
    }

    #[test]
    fn bigger_cores_burn_more_per_uop() {
        let m = EnergyModel::mcpat_22nm();
        assert!(m.core_uop_nj(&CoreModel::io4()) < m.core_uop_nj(&CoreModel::ooo4()));
        assert!(m.core_uop_nj(&CoreModel::ooo4()) < m.core_uop_nj(&CoreModel::ooo8()));
        assert!(m.tile_static_w(&CoreModel::io4()) < m.tile_static_w(&CoreModel::ooo8()));
    }

    #[test]
    fn efficiency_gain_direction() {
        let m = EnergyModel::mcpat_22nm();
        let base = m.evaluate(&fake_result(2_000_000, 8_000_000, 1e7), &CoreModel::ooo8(), 64);
        let ns = m.evaluate(&fake_result(700_000, 2_000_000, 4e6), &CoreModel::ooo8(), 64);
        assert!(ns.efficiency_gain_over(&base) > 1.5);
    }
}
