//! Area model for the stream-engine hardware (paper §VII-A "Area").
//!
//! The paper reports, from CACTI/McPAT at 22 nm: SE_core stream buffer
//! 0.09 mm², SE_L3 64 kB stream buffer 0.195 mm², SE_L3 stream
//! configuration SRAM (48 kB) 0.11 mm², for a whole-chip overhead of 2.5%
//! with IO4 cores and 2.1% with OOO8 cores (whose SE_core carries larger
//! FIFOs but whose cores are bigger).

use near_stream::CoreModel;

/// Per-component areas in mm² at 22 nm.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AreaModel {
    /// SE_core stream buffer (per core; IO4-sized FIFO).
    pub se_core_mm2: f64,
    /// Extra SE_core FIFO area for the OOO8 configuration (2 kB vs 256 B).
    pub se_core_ooo8_extra_mm2: f64,
    /// SE_L3 64 kB stream buffer (per bank).
    pub se_l3_buffer_mm2: f64,
    /// SE_L3 48 kB stream configuration SRAM (per bank).
    pub se_l3_config_mm2: f64,
    /// Miscellaneous SE logic (range unit, issue unit, ALU) per tile.
    pub se_misc_mm2: f64,
    /// Baseline tile area (core slice + L1 + L2 + L3 bank + router) for an
    /// IO4 tile.
    pub tile_io4_mm2: f64,
    /// Baseline tile area for an OOO4 tile.
    pub tile_ooo4_mm2: f64,
    /// Baseline tile area for an OOO8 tile.
    pub tile_ooo8_mm2: f64,
}

impl AreaModel {
    /// The paper's published component numbers, with tile areas calibrated
    /// so the whole-chip overhead lands at the published 2.5% (IO4) and
    /// 2.1% (OOO8).
    pub fn paper_22nm() -> AreaModel {
        AreaModel {
            se_core_mm2: 0.09,
            se_core_ooo8_extra_mm2: 0.09,
            se_l3_buffer_mm2: 0.195,
            se_l3_config_mm2: 0.11,
            se_misc_mm2: 0.02,
            tile_io4_mm2: 16.6,
            tile_ooo4_mm2: 19.5,
            tile_ooo8_mm2: 23.6,
        }
    }

    /// Near-stream hardware overhead per tile for a core model.
    pub fn overhead_per_tile(&self, core: &CoreModel) -> f64 {
        let se_core = if core.out_of_order && core.width >= 8 {
            self.se_core_mm2 + self.se_core_ooo8_extra_mm2
        } else {
            self.se_core_mm2
        };
        se_core + self.se_l3_buffer_mm2 + self.se_l3_config_mm2 + self.se_misc_mm2
    }

    /// Baseline tile area for a core model.
    pub fn tile_mm2(&self, core: &CoreModel) -> f64 {
        match (core.out_of_order, core.width) {
            (false, _) => self.tile_io4_mm2,
            (true, w) if w <= 4 => self.tile_ooo4_mm2,
            _ => self.tile_ooo8_mm2,
        }
    }

    /// Whole-chip area overhead fraction of the stream hardware.
    pub fn overhead_fraction(&self, core: &CoreModel) -> f64 {
        let o = self.overhead_per_tile(core);
        o / (self.tile_mm2(core) + o)
    }
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel::paper_22nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_matches_paper_percentages() {
        let a = AreaModel::paper_22nm();
        let io4 = a.overhead_fraction(&CoreModel::io4());
        let ooo8 = a.overhead_fraction(&CoreModel::ooo8());
        assert!((io4 - 0.025).abs() < 0.003, "IO4 overhead {io4}");
        assert!((ooo8 - 0.021).abs() < 0.003, "OOO8 overhead {ooo8}");
        assert!(io4 > ooo8, "bigger cores dilute the overhead");
    }

    #[test]
    fn component_areas_are_published_values() {
        let a = AreaModel::paper_22nm();
        assert_eq!(a.se_core_mm2, 0.09);
        assert_eq!(a.se_l3_buffer_mm2, 0.195);
        assert_eq!(a.se_l3_config_mm2, 0.11);
    }

    #[test]
    fn ooo8_se_core_is_larger() {
        let a = AreaModel::paper_22nm();
        assert!(a.overhead_per_tile(&CoreModel::ooo8()) > a.overhead_per_tile(&CoreModel::io4()));
    }
}
