//! Offload decisions: mode capability matrix plus the footprint/reuse
//! heuristic of paper §IV-B ("Stream Configure").

use crate::config::{ExecMode, SeConfig};
use nsc_ir::stream::{AddrPatternClass, ComputeClass, StreamInfo};

/// How a stream executes under a given mode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OffloadStyle {
    /// Plain core access (no stream hardware involved).
    CoreAccess,
    /// In-core stream prefetching: the SE_core generates addresses and
    /// prefetches ahead, data still flows to the core (SSP-like).
    CorePrefetch,
    /// Stream floated to L3 banks without computation: data forwarded
    /// directly bank → core (Stream-Floating-like).
    FloatLoad,
    /// Full near-stream offload: the access and its attached computation
    /// execute at the L3 bank.
    NearStream,
    /// Iteration-granularity offload with per-element request/ack round
    /// trips (Omni-Compute-like INST baseline).
    PerIteration,
    /// Chained single-cache-line function offload (Livia-like SINGLE
    /// baseline; autonomous but one line at a time).
    ChainedLine,
}

impl OffloadStyle {
    /// Whether the element's data stays near the cache (no per-element
    /// data message to the core).
    pub fn is_near_data(self) -> bool {
        matches!(
            self,
            OffloadStyle::NearStream | OffloadStyle::PerIteration | OffloadStyle::ChainedLine
        )
    }

    /// Short stable label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            OffloadStyle::CoreAccess => "core-access",
            OffloadStyle::CorePrefetch => "core-prefetch",
            OffloadStyle::FloatLoad => "float-load",
            OffloadStyle::NearStream => "near-stream",
            OffloadStyle::PerIteration => "per-iteration",
            OffloadStyle::ChainedLine => "chained-line",
        }
    }
}

/// Inputs to the offload decision that depend on the running system.
#[derive(Clone, Copy, Debug)]
pub struct PolicyContext {
    /// Private L2 capacity in bytes.
    pub l2_bytes: u64,
    /// Total array bytes the stream touches (whole array for irregular
    /// patterns, per-core partition for affine).
    pub footprint_bytes: u64,
    /// Expected stream length in elements (per core).
    pub stream_len: u64,
    /// Number of L3 banks.
    pub n_banks: u64,
    /// The stream aliased with core accesses in an earlier invocation.
    pub aliased_before: bool,
    /// Legality from the compiler (paper §II-B eligibility).
    pub offloadable: bool,
}

/// Decides how `stream` executes under `mode`.
///
/// This encodes both the capability matrix of the evaluated systems
/// (paper Tables I/II) and the dynamic footprint heuristic of §IV-B.
pub fn offload_style(
    mode: ExecMode,
    stream: &StreamInfo,
    ctx: &PolicyContext,
    se: &SeConfig,
) -> OffloadStyle {
    use ComputeClass::*;
    use ExecMode::*;
    match mode {
        Base => OffloadStyle::CoreAccess,
        NsCore => match stream.role {
            Load | Reduce => OffloadStyle::CorePrefetch,
            // Stores/RMW/atomics use SE address generation but execute in
            // the core.
            _ => OffloadStyle::CoreAccess,
        },
        NsNoComp => match stream.role {
            // Only memory read streams float, with no computation
            // (paper §III-C "Relation to Stream-prefetching/floating").
            Load | Reduce if near_beneficial(ctx) => OffloadStyle::FloatLoad,
            Load | Reduce => OffloadStyle::CorePrefetch,
            _ => OffloadStyle::CoreAccess,
        },
        Ns | NsNoSync | NsDecouple => {
            if !ctx.offloadable || ctx.aliased_before {
                return fallback(stream);
            }
            // Indirect reductions only offload when long enough to beat
            // the multicast-collect overhead (paper §IV-C).
            if stream.role == Reduce
                && matches!(stream.pattern, AddrPatternClass::Indirect { .. })
                && ctx.stream_len < se.indirect_reduce_min_banks_factor * ctx.n_banks
            {
                return fallback(stream);
            }
            if near_beneficial(ctx) {
                OffloadStyle::NearStream
            } else {
                fallback(stream)
            }
        }
        Inst => match stream.role {
            // Iteration-level offload supports store/RMW/atomic chains and
            // multi-operand "meet" computation, but not reductions
            // (paper §VI: "Reduction cannot be supported due to
            // fine-grained offloading").
            Store | Rmw | Atomic if ctx.offloadable && near_beneficial(ctx) => {
                OffloadStyle::PerIteration
            }
            Load if stream.compute_uops > 0 && near_beneficial(ctx) => OffloadStyle::PerIteration,
            _ => fallback(stream),
        },
        Single => {
            if !near_beneficial(ctx) {
                return fallback(stream);
            }
            match (stream.role, stream.pattern) {
                // Multi-operand functions are unsupported (Table I).
                (Store, _) | (Rmw, _) if !stream.value_deps.is_empty() => fallback(stream),
                (Store, _) | (Rmw, _) => OffloadStyle::ChainedLine,
                // The "load" pattern is unsupported: Livia can only modify
                // data or send back a final value.
                (Load, _) => fallback(stream),
                // Reductions chain for affine and pointer-chasing, but not
                // for indirect patterns or multi-operand functions
                // (Table II / Table I).
                (Reduce, AddrPatternClass::Indirect { .. }) => fallback(stream),
                (Reduce, _) if !stream.value_deps.is_empty() => fallback(stream),
                (Reduce, _) => OffloadStyle::ChainedLine,
                // Indirect atomics fall back to iteration-level offload
                // (paper §VII-B "SINGLE cannot achieve autonomy on
                // indirect atomics").
                (Atomic, AddrPatternClass::Indirect { .. }) => OffloadStyle::PerIteration,
                (Atomic, _) => OffloadStyle::ChainedLine,
            }
        }
    }
}

/// The in-core fallback when near-data offload is rejected: streams still
/// prefetch (the paper's baselines "benefit from stream-based prefetching
/// even when the compute pattern is not supported").
///
/// Public because recovery uses it at runtime too: a stream whose
/// configure handshake is exhausted (injected NACKs, chaos mode) falls
/// back to exactly this style.
pub fn fallback(stream: &StreamInfo) -> OffloadStyle {
    match stream.role {
        ComputeClass::Load | ComputeClass::Reduce => OffloadStyle::CorePrefetch,
        _ => OffloadStyle::CoreAccess,
    }
}

/// The §IV-B heuristic: offload when the footprint cannot fit in the
/// private cache (high expected miss rate, no reuse) and the stream did
/// not alias before.
fn near_beneficial(ctx: &PolicyContext) -> bool {
    ctx.footprint_bytes > ctx.l2_bytes && !ctx.aliased_before
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_ir::program::{ArrayId, StmtId};
    use nsc_ir::stream::StreamId;

    fn stream(role: ComputeClass, pattern: AddrPatternClass, deps: usize, uops: u32) -> StreamInfo {
        StreamInfo {
            id: StreamId(0),
            stmt: StmtId(0),
            array: ArrayId(0),
            pattern,
            role,
            value_deps: (0..deps).map(|i| StreamId(i as u8 + 1)).collect(),
            elem_bytes: 8,
            compute_uops: uops,
            needs_scm: false,
            result_bytes: 0,
            loop_depth: 1,
            conditional: false,
        }
    }

    fn big_ctx() -> PolicyContext {
        PolicyContext {
            l2_bytes: 256 * 1024,
            footprint_bytes: 64 * 1024 * 1024,
            stream_len: 1 << 20,
            n_banks: 64,
            aliased_before: false,
            offloadable: true,
        }
    }

    #[test]
    fn ns_offloads_everything_big() {
        let se = SeConfig::paper_default();
        let ctx = big_ctx();
        for role in [
            ComputeClass::Load,
            ComputeClass::Store,
            ComputeClass::Rmw,
            ComputeClass::Atomic,
            ComputeClass::Reduce,
        ] {
            let s = stream(role, AddrPatternClass::Affine { stride_bytes: 8 }, 0, 1);
            assert_eq!(offload_style(ExecMode::Ns, &s, &ctx, &se), OffloadStyle::NearStream);
        }
    }

    #[test]
    fn small_footprint_stays_in_core() {
        let se = SeConfig::paper_default();
        let ctx = PolicyContext {
            footprint_bytes: 2 * 1024, // a small histogram
            ..big_ctx()
        };
        let s = stream(
            ComputeClass::Atomic,
            AddrPatternClass::Indirect { base: StreamId(1) },
            0,
            1,
        );
        assert_eq!(offload_style(ExecMode::Ns, &s, &ctx, &se), OffloadStyle::CoreAccess);
    }

    #[test]
    fn inst_cannot_reduce() {
        let se = SeConfig::paper_default();
        let ctx = big_ctx();
        let s = stream(ComputeClass::Reduce, AddrPatternClass::Affine { stride_bytes: 8 }, 0, 2);
        assert_eq!(
            offload_style(ExecMode::Inst, &s, &ctx, &se),
            OffloadStyle::CorePrefetch
        );
        let a = stream(ComputeClass::Atomic, AddrPatternClass::Indirect { base: StreamId(1) }, 0, 1);
        assert_eq!(
            offload_style(ExecMode::Inst, &a, &ctx, &se),
            OffloadStyle::PerIteration
        );
    }

    #[test]
    fn single_rejects_multiop_and_load() {
        let se = SeConfig::paper_default();
        let ctx = big_ctx();
        let multi = stream(ComputeClass::Store, AddrPatternClass::Affine { stride_bytes: 8 }, 2, 1);
        assert_eq!(
            offload_style(ExecMode::Single, &multi, &ctx, &se),
            OffloadStyle::CoreAccess
        );
        let memset = stream(ComputeClass::Store, AddrPatternClass::Affine { stride_bytes: 8 }, 0, 1);
        assert_eq!(
            offload_style(ExecMode::Single, &memset, &ctx, &se),
            OffloadStyle::ChainedLine
        );
        let load = stream(ComputeClass::Load, AddrPatternClass::Indirect { base: StreamId(1) }, 0, 4);
        assert_eq!(
            offload_style(ExecMode::Single, &load, &ctx, &se),
            OffloadStyle::CorePrefetch
        );
        let ptr_red = stream(ComputeClass::Reduce, AddrPatternClass::PointerChase, 0, 2);
        assert_eq!(
            offload_style(ExecMode::Single, &ptr_red, &ctx, &se),
            OffloadStyle::ChainedLine
        );
        let ind_atomic = stream(ComputeClass::Atomic, AddrPatternClass::Indirect { base: StreamId(1) }, 0, 1);
        assert_eq!(
            offload_style(ExecMode::Single, &ind_atomic, &ctx, &se),
            OffloadStyle::PerIteration
        );
    }

    #[test]
    fn short_indirect_reduce_stays_in_core() {
        let se = SeConfig::paper_default();
        let ctx = PolicyContext {
            stream_len: 100, // < 4 x 64 banks
            ..big_ctx()
        };
        let s = stream(ComputeClass::Reduce, AddrPatternClass::Indirect { base: StreamId(1) }, 0, 2);
        assert_eq!(
            offload_style(ExecMode::Ns, &s, &ctx, &se),
            OffloadStyle::CorePrefetch
        );
    }

    #[test]
    fn aliased_streams_not_offloaded() {
        let se = SeConfig::paper_default();
        let ctx = PolicyContext {
            aliased_before: true,
            ..big_ctx()
        };
        let s = stream(ComputeClass::Store, AddrPatternClass::Affine { stride_bytes: 8 }, 0, 1);
        assert_eq!(offload_style(ExecMode::Ns, &s, &ctx, &se), OffloadStyle::CoreAccess);
    }

    #[test]
    fn nocomp_floats_loads_only() {
        let se = SeConfig::paper_default();
        let ctx = big_ctx();
        let l = stream(ComputeClass::Load, AddrPatternClass::Affine { stride_bytes: 8 }, 0, 0);
        assert_eq!(
            offload_style(ExecMode::NsNoComp, &l, &ctx, &se),
            OffloadStyle::FloatLoad
        );
        let st = stream(ComputeClass::Store, AddrPatternClass::Affine { stride_bytes: 8 }, 0, 0);
        assert_eq!(
            offload_style(ExecMode::NsNoComp, &st, &ctx, &se),
            OffloadStyle::CoreAccess
        );
    }

    #[test]
    fn base_never_streams() {
        let se = SeConfig::paper_default();
        let ctx = big_ctx();
        let s = stream(ComputeClass::Load, AddrPatternClass::Affine { stride_bytes: 8 }, 0, 0);
        assert_eq!(offload_style(ExecMode::Base, &s, &ctx, &se), OffloadStyle::CoreAccess);
    }
}
