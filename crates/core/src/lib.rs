//! Near-stream computing: general and transparent near-cache acceleration.
//!
//! This crate is the paper's primary contribution, reproduced in Rust: a
//! full-system model in which *streams* — coarse-grain memory access
//! patterns extracted by the `nsc-compiler` — are offloaded, together with
//! their attached computation, to the stream engines of shared L3 cache
//! banks. Sequential semantics are preserved by range-based
//! synchronization (§IV-B); sync-free pragmas unlock the fully-decoupled
//! loop optimization (§V).
//!
//! The same machinery also implements the paper's comparison systems: the
//! baseline prefetching core, INST (Omni-Compute-style iteration-level
//! offload), SINGLE (Livia-style chained single-line functions), NS-core
//! (SSP-style in-core streams) and NS-nocomp (Stream-Floating).
//!
//! # Examples
//!
//! ```
//! use near_stream::{ExecMode, RunRequest, SystemConfig};
//! use nsc_compiler::compile;
//! use nsc_ir::build::KernelBuilder;
//! use nsc_ir::{ElemType, Expr, Program};
//!
//! // c[i] = a[i] + b[i]
//! let mut p = Program::new("vecadd");
//! let n = 1 << 17; // big enough that the footprint heuristic offloads
//! let a = p.array("a", ElemType::I64, n);
//! let b = p.array("b", ElemType::I64, n);
//! let c = p.array("c", ElemType::I64, n);
//! let mut k = KernelBuilder::new("add", n);
//! let i = k.outer_var();
//! let va = k.load(a, Expr::var(i));
//! let vb = k.load(b, Expr::var(i));
//! k.store(c, Expr::var(i), Expr::var(va) + Expr::var(vb));
//! p.push_kernel(k.finish());
//!
//! let compiled = compile(&p);
//! let cfg = SystemConfig::small();
//! let (base, _) = RunRequest::new(&p).compiled(&compiled).mode(ExecMode::Base).config(&cfg).run();
//! let (ns, _) = RunRequest::new(&p).compiled(&compiled).mode(ExecMode::Ns).config(&cfg).run();
//! assert!(ns.traffic.total() < base.traffic.total());
//! ```

pub mod config;
pub mod engine;
pub mod ideal;
pub mod policy;
pub mod range_sync;
pub mod request;
pub mod system;

pub use config::{CoreModel, ExecMode, SeConfig, SystemConfig};
pub use engine::{CoreState, RoleCounters};
pub use policy::{fallback, offload_style, OffloadStyle, PolicyContext};
pub use request::RunRequest;
pub use system::{RunResult, TrafficSnapshot};
