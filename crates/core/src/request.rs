//! Canonical run requests: one builder type that names a simulation
//! point completely, and is therefore hashable (for the content-addressed
//! result cache) and serializable (for the `nscd` batch service).
//!
//! [`RunRequest`] is the one front door to the simulator (the historical
//! 6-positional-argument `run(...)` free functions are gone):
//!
//! ```
//! use near_stream::{ExecMode, RunRequest, SystemConfig};
//! use nsc_ir::build::KernelBuilder;
//! use nsc_ir::{ElemType, Expr, Program};
//!
//! let mut p = Program::new("memset");
//! let a = p.array("a", ElemType::I64, 4096);
//! let mut k = KernelBuilder::new("set", 4096);
//! let i = k.outer_var();
//! k.store(a, Expr::var(i), Expr::var(i) * Expr::imm(3));
//! p.push_kernel(k.finish());
//!
//! let cfg = SystemConfig::small();
//! let (result, mem) = RunRequest::new(&p).mode(ExecMode::Ns).config(&cfg).run();
//! assert!(result.cycles > 0);
//! assert_eq!(mem.read_index(a, 5), nsc_ir::Scalar::I64(15));
//! ```
//!
//! # Content addressing
//!
//! [`RunRequest::key`] digests everything the simulation depends on: the
//! program and its compilation, the parameter vector, the execution mode,
//! the full [`SystemConfig`], any armed fault plan, and the *initialized
//! memory image* (init closures cannot be hashed, so the cache addresses
//! their effect instead). A schema-version string is folded in first, so
//! bumping [`SCHEMA`] invalidates every previously stored entry at once.
//!
//! [`RunRequest::run_cached`] consults [`nsc_sim::cache`] under that key:
//! hits decode the stored record into a [`RunResult`] whose stats table
//! is byte-identical to the one the original miss produced (the record
//! stores every `f64` by bit pattern, because a decimal round-trip through
//! the report JSON cannot guarantee ULP-exactness); misses simulate and
//! store. Each consultation emits a
//! [`TraceEvent::ResultCache`](nsc_sim::trace::TraceEvent::ResultCache)
//! on the observability tracks and bumps the shared store's per-tier
//! [`cache::CacheStats`](nsc_sim::cache::CacheStats).
//!
//! A cached record also carries the per-run fault-injection delta; a hit
//! replays it into the live injector accounting via `fault::absorb`, so a
//! warm sweep reports the same fault totals as the cold one. Caveat: a
//! *shared* injector's RNG stream does not advance on a hit, so mixing
//! hits and misses under one installed plan shifts which later runs see
//! faults — per-run plans (`FaultPlan::for_run`, what `nsc_bench::Sweep`
//! installs) are immune, since their schedule is a pure function of the
//! submission index.

use crate::config::{ExecMode, SystemConfig};
use crate::engine::RoleCounters;
use crate::system::{simulate, RunResult, TrafficSnapshot};
use nsc_compiler::{compile, CompiledProgram};
use nsc_ir::types::Scalar;
use nsc_ir::{ArrayId, Memory, Program};
use nsc_mem::MemStats;
use nsc_sim::cache::{self, CacheStore, Key};
use nsc_sim::error::SimError;
use nsc_sim::fault::{self, FaultStats};
use nsc_sim::trace::{self, TraceEvent};
use nsc_sim::{Cycle, Histogram, Summary};
use std::collections::HashMap;

/// Cache-record schema version, folded into every digest. Bump this when
/// the digest contents, the record encoding, or the simulator's observable
/// behavior changes in a way that should invalidate stored results.
pub const SCHEMA: &str = "nsc-run-v1";

/// A complete, canonical description of one simulation point.
///
/// Construct with [`RunRequest::new`], refine with the builder methods
/// (each defaults sensibly: no parameters, [`ExecMode::Base`], the
/// paper's default [`SystemConfig`], zero-initialized memory, compile on
/// demand), then execute with [`run`](RunRequest::run) /
/// [`try_run`](RunRequest::try_run) (returns the final memory too) or
/// [`run_cached`](RunRequest::run_cached) /
/// [`try_run_cached`](RunRequest::try_run_cached) (metrics only, served
/// from the result cache when armed).
///
/// `Clone` is cheap (the borrows are copied, only `params` and the
/// config are duplicated), so one partially-built request can fan out
/// into several modes.
#[derive(Clone)]
pub struct RunRequest<'a> {
    program: &'a Program,
    compiled: Option<&'a CompiledProgram>,
    params: Vec<Scalar>,
    mode: ExecMode,
    cfg: SystemConfig,
    init: Option<&'a dyn Fn(&mut Memory)>,
}

impl<'a> RunRequest<'a> {
    /// Starts a request for `program` with default settings.
    pub fn new(program: &'a Program) -> RunRequest<'a> {
        RunRequest {
            program,
            compiled: None,
            params: Vec::new(),
            mode: ExecMode::Base,
            cfg: SystemConfig::default(),
            init: None,
        }
    }

    /// Uses an existing compilation instead of compiling on demand
    /// (sweeps compile once and run many modes).
    pub fn compiled(mut self, compiled: &'a CompiledProgram) -> Self {
        self.compiled = Some(compiled);
        self
    }

    /// Sets the kernel parameter vector.
    pub fn params(mut self, params: &[Scalar]) -> Self {
        self.params = params.to_vec();
        self
    }

    /// Sets the execution mode (default [`ExecMode::Base`]).
    pub fn mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the system configuration (default [`SystemConfig::default`]).
    pub fn config(mut self, cfg: &SystemConfig) -> Self {
        self.cfg = cfg.clone();
        self
    }

    /// Sets the input initializer, run on zeroed memory before simulation.
    pub fn init(mut self, init: &'a dyn Fn(&mut Memory)) -> Self {
        self.init = init_some(init);
        self
    }

    /// The execution mode this request will run under.
    pub fn mode_of(&self) -> ExecMode {
        self.mode
    }

    fn with_compiled<R>(&self, f: impl FnOnce(&CompiledProgram) -> R) -> R {
        match self.compiled {
            Some(c) => f(c),
            None => f(&compile(self.program)),
        }
    }

    fn init_memory(&self) -> Memory {
        let mut m = Memory::for_program(self.program);
        if let Some(init) = self.init {
            init(&mut m);
        }
        m
    }

    /// The content-address of this request (see the module docs for what
    /// it covers).
    pub fn key(&self) -> Key {
        let data = self.init_memory();
        self.with_compiled(|ck| self.digest(ck, &data))
    }

    /// Folds a [`CompiledProgram`] into `d` field by field, skipping its
    /// `HashMap`s (`stmt_stream`, `site_costs`): their `Debug` iteration
    /// order is per-process random, and their content is mirrored exactly
    /// by the dense `stream_vec` / `site_cost_vec` tables folded here.
    fn fold_compiled(d: &mut cache::Digest, compiled: &CompiledProgram) {
        d.u64(compiled.kernels.len() as u64);
        for k in &compiled.kernels {
            d.str(&k.name);
            d.str(&format!("{:?}", k.streams));
            d.str(&format!("{:?}", k.offloadable));
            d.str(&format!("{:?}", k.site_cost_vec));
            d.str(&format!("{:?}", k.stream_vec));
            d.u64(k.sync_free as u64);
            d.u64(k.fully_decoupled as u64);
            d.u64(k.vector_width as u64);
            // `k.plan` is deliberately NOT folded: bytecode vs tree-walker
            // execution is bit-identical, so NSC_COMPILE=0/1 must hit the
            // same cache records.
        }
    }

    fn digest(&self, compiled: &CompiledProgram, data: &Memory) -> Key {
        let mut d = cache::Digest::new(SCHEMA);
        // The `Debug` renderings of the program, its compilation and the
        // configuration are exact (f64 prints shortest-round-trip) and
        // change whenever a field is added, which is precisely the
        // invalidation we want; SCHEMA guards deliberate format changes.
        d.str("program");
        d.str(&format!("{:?}", self.program));
        d.str("compiled");
        Self::fold_compiled(&mut d, compiled);
        d.str("params");
        d.u64(self.params.len() as u64);
        for p in &self.params {
            match *p {
                Scalar::I64(v) => {
                    d.u64(0);
                    d.u64(v as u64);
                }
                Scalar::F64(v) => {
                    d.u64(1);
                    d.f64(v);
                }
            }
        }
        d.str("mode");
        d.str(self.mode.label());
        d.str("config");
        d.str(&format!("{:?}", self.cfg));
        d.str("fault");
        match fault::current_plan() {
            None => d.u64(0),
            Some(p) => {
                d.u64(1);
                d.u64(p.seed);
                d.f64(p.noc_drop);
                d.f64(p.noc_duplicate);
                d.f64(p.noc_delay);
                d.u64(p.noc_delay_cycles);
                d.f64(p.bank_stall);
                d.u64(p.bank_stall_cycles);
                d.f64(p.offload_nack);
                d.f64(p.mem_error);
                d.u64(p.mem_retry_cycles);
                d.f64(p.alias_false_positive);
            }
        }
        d.str("init");
        d.u64(data.n_arrays() as u64);
        for i in 0..data.n_arrays() {
            let raw = data.raw(ArrayId(i as u32));
            d.u64(raw.len() as u64);
            d.bytes(raw);
        }
        d.finish()
    }

    /// Runs the simulation, returning the result and final data memory.
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or wedged simulation; use
    /// [`try_run`](RunRequest::try_run) for a typed [`SimError`].
    pub fn run(&self) -> (RunResult, Memory) {
        match self.try_run() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`run`](RunRequest::run).
    pub fn try_run(&self) -> Result<(RunResult, Memory), SimError> {
        let data = self.init_memory();
        self.with_compiled(|ck| {
            simulate(self.program, ck, &self.params, self.mode, &self.cfg, data)
        })
    }

    /// Like [`run`](RunRequest::run) but consults the result cache and
    /// returns metrics only (a cached record does not include the final
    /// memory image; callers that need memory for correctness checks use
    /// the uncached path).
    ///
    /// # Panics
    ///
    /// Panics on an invalid configuration or wedged simulation.
    pub fn run_cached(&self) -> RunResult {
        match self.try_run_cached() {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`run_cached`](RunRequest::run_cached).
    ///
    /// With the cache disarmed this is exactly
    /// [`try_run`](RunRequest::try_run) minus the memory; armed, a hit
    /// replays the stored record (byte-identical stats table, fault delta
    /// absorbed) and a miss simulates and stores.
    pub fn try_run_cached(&self) -> Result<RunResult, SimError> {
        self.try_run_cached_in(cache::shared())
    }

    /// [`try_run_cached`](RunRequest::try_run_cached) against an explicit
    /// [`CacheStore`] instead of the process-wide [`cache::shared`]
    /// handle. Tests inject tiny-budget [`nsc_sim::cache::TieredCache`]
    /// instances to force tier evictions mid-sweep.
    pub fn try_run_cached_in(&self, store: &dyn CacheStore) -> Result<RunResult, SimError> {
        if !cache::enabled() {
            return self.try_run().map(|(r, _)| r);
        }
        let data = self.init_memory();
        let key = self.with_compiled(|ck| self.digest(ck, &data));
        if let Some(rec) = store.lookup(&key).and_then(|blob| decode(&blob)) {
            fault::absorb(rec.faults);
            trace::emit(|| TraceEvent::ResultCache {
                at: Cycle::ZERO,
                key: key.hi(),
                hit: true,
            });
            return Ok(rec.result);
        }
        trace::emit(|| TraceEvent::ResultCache {
            at: Cycle::ZERO,
            key: key.hi(),
            hit: false,
        });
        let fault_mark = fault::snapshot();
        let (result, _mem) = self.with_compiled(|ck| {
            simulate(self.program, ck, &self.params, self.mode, &self.cfg, data)
        })?;
        let faults = fault::snapshot().since(&fault_mark);
        // A failed store degrades to an ordinary miss next time; the run
        // itself already succeeded.
        let _ = store.store(&key, &encode(&result, &faults));
        Ok(result)
    }
}

// Free fn (not a method) so the builder's `init` setter can coerce the
// reference to the trait-object lifetime without naming it twice.
fn init_some(f: &dyn Fn(&mut Memory)) -> Option<&dyn Fn(&mut Memory)> {
    Some(f)
}

/// A decoded cache record: the run's metrics plus its fault-injection
/// delta (replayed into the live accounting on a hit).
///
/// Public because the `nscd` wire protocol ships run results as cache
/// records: the daemon [`encode`]s, the client [`decode`]s, and the
/// bit-pattern codec guarantees the round trip is exact.
pub struct CachedRun {
    /// The run's metrics, bit-exact.
    pub result: RunResult,
    /// Faults injected during the recorded run.
    pub faults: FaultStats,
}

fn push_u64s(out: &mut String, key: &str, vals: impl IntoIterator<Item = u64>) {
    out.push_str(key);
    out.push('=');
    let mut first = true;
    for v in vals {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&v.to_string());
    }
    out.push('\n');
}

fn bits(v: f64) -> u64 {
    v.to_bits()
}

/// Encodes a run record as line-oriented `key=comma-separated-u64s`.
///
/// Every `f64` is stored by bit pattern: the record must replay a stats
/// table *byte-identical* to the miss that produced it, and a decimal
/// round-trip cannot promise that.
pub fn encode(r: &RunResult, faults: &FaultStats) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("schema=");
    out.push_str(SCHEMA);
    out.push('\n');
    out.push_str("mode=");
    out.push_str(r.mode.label());
    out.push('\n');
    push_u64s(&mut out, "cycles", [r.cycles]);
    push_u64s(
        &mut out,
        "traffic",
        [r.traffic.data, r.traffic.control, r.traffic.offloaded, r.traffic.messages],
    );
    let m = &r.mem;
    push_u64s(
        &mut out,
        "mem",
        [
            m.l1_hits,
            m.l1_misses,
            m.l2_hits,
            m.l2_misses,
            m.l3_hits,
            m.l3_misses,
            m.dram_reads,
            m.dram_writebacks,
            m.invalidations,
            m.private_writebacks,
            m.prefetch_fills,
            m.prefetch_hits,
            m.l3_atomics,
            m.read_retries,
        ],
    );
    push_u64s(
        &mut out,
        "uops",
        [bits(r.uops_core), bits(r.uops_se), bits(r.uops_scm), bits(r.total_uops)],
    );
    push_u64s(&mut out, "roles.assoc", r.roles.assoc.iter().map(|&v| bits(v)));
    push_u64s(&mut out, "roles.offloaded", r.roles.offloaded.iter().map(|&v| bits(v)));
    push_u64s(
        &mut out,
        "elems",
        [
            r.lock_acquisitions,
            r.lock_conflicts,
            r.alias_flushes,
            r.peb_flushes,
            r.offloaded_elems,
            r.stream_elems,
            r.dram_accesses,
        ],
    );
    push_u64s(&mut out, "noc.width", [bits(r.noc_latency.bucket_width())]);
    push_u64s(&mut out, "noc.counts", r.noc_latency.bucket_counts().iter().copied());
    let s = r.noc_latency.summary();
    push_u64s(
        &mut out,
        "noc.summary",
        [
            s.count(),
            bits(s.sum()),
            bits(s.min().unwrap_or(f64::INFINITY)),
            bits(s.max().unwrap_or(f64::NEG_INFINITY)),
        ],
    );
    push_u64s(
        &mut out,
        "recovery",
        [r.faults_injected, r.offload_retries, r.offload_fallbacks, r.rangesync_replays],
    );
    push_u64s(&mut out, "faults", faults.counts());
    out
}

/// Decodes a record produced by [`encode`]; `None` on any mismatch
/// (truncated file, wrong schema, stray field), which the caller treats
/// as a miss and overwrites.
pub fn decode(blob: &str) -> Option<CachedRun> {
    let mut fields: HashMap<&str, &str> = HashMap::new();
    for line in blob.lines() {
        let (k, v) = line.split_once('=')?;
        fields.insert(k, v);
    }
    if fields.get("schema") != Some(&SCHEMA) {
        return None;
    }
    let mode = ExecMode::parse(fields.get("mode")?)?;
    let u64s = |key: &str| -> Option<Vec<u64>> {
        fields
            .get(key)?
            .split(',')
            .map(|t| t.parse::<u64>().ok())
            .collect()
    };
    let fixed = |key: &str, n: usize| -> Option<Vec<u64>> {
        let v = u64s(key)?;
        (v.len() == n).then_some(v)
    };

    let cycles = fixed("cycles", 1)?[0];
    let t = fixed("traffic", 4)?;
    let m = fixed("mem", 14)?;
    let u = fixed("uops", 4)?;
    let ra = fixed("roles.assoc", 5)?;
    let ro = fixed("roles.offloaded", 5)?;
    let e = fixed("elems", 7)?;
    let width = f64::from_bits(fixed("noc.width", 1)?[0]);
    let counts = u64s("noc.counts")?;
    let ns = fixed("noc.summary", 4)?;
    let rec = fixed("recovery", 4)?;
    let fc = fixed("faults", 7)?;
    if width.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) || counts.is_empty() {
        return None;
    }

    let summary = Summary::from_parts(
        ns[0],
        f64::from_bits(ns[1]),
        f64::from_bits(ns[2]),
        f64::from_bits(ns[3]),
    );
    let mut roles = RoleCounters::default();
    for i in 0..5 {
        roles.assoc[i] = f64::from_bits(ra[i]);
        roles.offloaded[i] = f64::from_bits(ro[i]);
    }
    let result = RunResult {
        mode,
        cycles,
        traffic: TrafficSnapshot {
            data: t[0],
            control: t[1],
            offloaded: t[2],
            messages: t[3],
        },
        mem: MemStats {
            l1_hits: m[0],
            l1_misses: m[1],
            l2_hits: m[2],
            l2_misses: m[3],
            l3_hits: m[4],
            l3_misses: m[5],
            dram_reads: m[6],
            dram_writebacks: m[7],
            invalidations: m[8],
            private_writebacks: m[9],
            prefetch_fills: m[10],
            prefetch_hits: m[11],
            l3_atomics: m[12],
            read_retries: m[13],
        },
        uops_core: f64::from_bits(u[0]),
        uops_se: f64::from_bits(u[1]),
        uops_scm: f64::from_bits(u[2]),
        total_uops: f64::from_bits(u[3]),
        roles,
        lock_acquisitions: e[0],
        lock_conflicts: e[1],
        alias_flushes: e[2],
        peb_flushes: e[3],
        offloaded_elems: e[4],
        stream_elems: e[5],
        dram_accesses: e[6],
        noc_latency: Histogram::from_parts(width, counts, summary),
        faults_injected: rec[0],
        offload_retries: rec[1],
        offload_fallbacks: rec[2],
        rangesync_replays: rec[3],
    };
    let mut counts7 = [0u64; 7];
    counts7.copy_from_slice(&fc);
    Some(CachedRun {
        result,
        faults: FaultStats::from_counts(counts7),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::{ElemType, Expr};

    fn memset_program(n: u64) -> Program {
        let mut p = Program::new("memset");
        let a = p.array("a", ElemType::I64, n);
        let mut k = KernelBuilder::new("set", n);
        let i = k.outer_var();
        k.store(a, Expr::var(i), Expr::var(i) * Expr::imm(3));
        k.sync_free();
        p.push_kernel(k.finish());
        p
    }

    #[test]
    fn precompiled_matches_compile_on_demand() {
        let p = memset_program(4096);
        let compiled = compile(&p);
        let cfg = SystemConfig::small();
        let (pre, _) = RunRequest::new(&p).compiled(&compiled).mode(ExecMode::Ns).config(&cfg).run();
        let (lazy, _) = RunRequest::new(&p).mode(ExecMode::Ns).config(&cfg).run();
        assert_eq!(pre.to_table().to_json(), lazy.to_table().to_json());
    }

    #[test]
    fn key_is_stable_and_perturbation_sensitive() {
        let p = memset_program(1024);
        let cfg = SystemConfig::small();
        let base = RunRequest::new(&p).mode(ExecMode::Ns).config(&cfg).key();
        assert_eq!(base, RunRequest::new(&p).mode(ExecMode::Ns).config(&cfg).key());
        // Mode.
        assert_ne!(base, RunRequest::new(&p).mode(ExecMode::Base).config(&cfg).key());
        // Config knob.
        let mut cfg2 = cfg.clone();
        cfg2.se.runahead_elems += 1;
        assert_ne!(base, RunRequest::new(&p).mode(ExecMode::Ns).config(&cfg2).key());
        // Params.
        assert_ne!(
            base,
            RunRequest::new(&p).mode(ExecMode::Ns).config(&cfg).params(&[Scalar::I64(1)]).key()
        );
        // Init image.
        let init = |m: &mut Memory| m.write_index(ArrayId(0), 0, Scalar::I64(9));
        assert_ne!(base, RunRequest::new(&p).mode(ExecMode::Ns).config(&cfg).init(&init).key());
    }

    #[test]
    fn key_covers_fault_plan() {
        let p = memset_program(1024);
        let cfg = SystemConfig::small();
        let clean = RunRequest::new(&p).mode(ExecMode::Ns).config(&cfg).key();
        fault::install(fault::FaultPlan::uniform(7, 0.01));
        let faulty7 = RunRequest::new(&p).mode(ExecMode::Ns).config(&cfg).key();
        fault::uninstall();
        fault::install(fault::FaultPlan::uniform(8, 0.01));
        let faulty8 = RunRequest::new(&p).mode(ExecMode::Ns).config(&cfg).key();
        fault::uninstall();
        assert_ne!(clean, faulty7);
        assert_ne!(faulty7, faulty8);
    }

    #[test]
    fn record_roundtrip_is_byte_identical() {
        let p = memset_program(8192);
        let cfg = SystemConfig::small();
        let (res, _) = RunRequest::new(&p).mode(ExecMode::Ns).config(&cfg).run();
        let faults = FaultStats::from_counts([1, 0, 2, 0, 0, 3, 0]);
        let blob = encode(&res, &faults);
        let rec = decode(&blob).expect("well-formed record decodes");
        assert_eq!(rec.result.to_table().to_json(), res.to_table().to_json());
        assert_eq!(rec.faults.counts(), [1, 0, 2, 0, 0, 3, 0]);
        // Re-encoding the decoded record reproduces the blob exactly.
        assert_eq!(encode(&rec.result, &rec.faults), blob);
    }

    #[test]
    fn decode_rejects_malformed_records() {
        assert!(decode("").is_none());
        assert!(decode("schema=other\n").is_none());
        let p = memset_program(64);
        let (res, _) = RunRequest::new(&p).config(&SystemConfig::small()).run();
        let blob = encode(&res, &FaultStats::default());
        // Truncation and field corruption are both rejected.
        let half = &blob[..blob.len() / 2];
        assert!(decode(half).is_none());
        assert!(decode(&blob.replace("mode=Base", "mode=Nope")).is_none());
    }
}
