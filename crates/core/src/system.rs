//! Full-system simulation: cores + stream engines + caches + NoC running a
//! compiled program under one execution mode.

use crate::config::{ExecMode, SystemConfig};
use crate::engine::{offload_config_handshake, CoreState, Engine, EngineRefs, RoleCounters};
use crate::policy::{fallback, offload_style, OffloadStyle, PolicyContext};
use nsc_compiler::{CompiledKernel, CompiledProgram};
use nsc_ir::interp::{exec_iteration, outer_trip, ExecError};
use nsc_ir::stream::{AddrPatternClass, ComputeClass};
use nsc_ir::types::Scalar;
use nsc_ir::{Memory, Program};
use nsc_mem::addr::LineAddr;
use nsc_mem::{MemStats, MemorySystem};
use nsc_noc::{Mesh, MsgClass, TileId};
use nsc_sim::error::SimError;
use nsc_sim::metrics::{self, Metric};
use nsc_sim::trace::{self, SyncPhase, TraceEvent};
use nsc_sim::{fault, resource::BandwidthLedger, Cycle, Histogram, StatsTable};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

/// Traffic totals captured at the end of a run.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrafficSnapshot {
    /// Non-offloaded data bytes × hops.
    pub data: u64,
    /// Coherence/prefetch control bytes × hops.
    pub control: u64,
    /// Near-data coordination and data bytes × hops.
    pub offloaded: u64,
    /// Total messages.
    pub messages: u64,
}

impl TrafficSnapshot {
    /// Total bytes × hops.
    pub fn total(&self) -> u64 {
        self.data + self.control + self.offloaded
    }

    fn capture(mesh: &Mesh) -> TrafficSnapshot {
        let t = mesh.traffic();
        TrafficSnapshot {
            data: t.bytes_hops(MsgClass::Data),
            control: t.bytes_hops(MsgClass::Control),
            offloaded: t.bytes_hops(MsgClass::Offloaded),
            messages: t.total_messages(),
        }
    }
}

/// Everything measured in one simulation run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Execution mode label.
    pub mode: ExecMode,
    /// Total simulated cycles.
    pub cycles: u64,
    /// NoC traffic.
    pub traffic: TrafficSnapshot,
    /// Memory-hierarchy counters.
    pub mem: MemStats,
    /// µops executed on core pipelines.
    pub uops_core: f64,
    /// µops executed on stream engines (address generation + scalar PEs).
    pub uops_se: f64,
    /// µops executed on SCM contexts.
    pub uops_scm: f64,
    /// Total dynamic µops (Figure 1(a)/11 denominator).
    pub total_uops: f64,
    /// Role-wise stream/offload µop counters.
    pub roles: RoleCounters,
    /// Lock acquisitions at L3 banks.
    pub lock_acquisitions: u64,
    /// Lock conflicts at L3 banks.
    pub lock_conflicts: u64,
    /// Range-sync alias flushes taken.
    pub alias_flushes: u64,
    /// PEB flushes (core stores aliasing in-core prefetched stream data).
    pub peb_flushes: u64,
    /// Elements served by near-data offload.
    pub offloaded_elems: u64,
    /// Elements associated with streams.
    pub stream_elems: u64,
    /// DRAM line accesses.
    pub dram_accesses: u64,
    /// Distribution of per-message NoC latencies (cycles).
    pub noc_latency: Histogram,
    /// Faults injected during the run (zero unless a fault plan is armed).
    pub faults_injected: u64,
    /// Configure-handshake retries taken after injected NACKs.
    pub offload_retries: u64,
    /// Streams forced back in-core after the handshake was exhausted.
    pub offload_fallbacks: u64,
    /// Stream windows drained and replayed after forced alias-filter
    /// mis-speculations.
    pub rangesync_replays: u64,
}

impl RunResult {
    /// Speedup of this run relative to `baseline` (cycles ratio).
    pub fn speedup_over(&self, baseline: &RunResult) -> f64 {
        baseline.cycles as f64 / self.cycles.max(1) as f64
    }

    /// Traffic reduction vs `baseline` in `[0, 1]` (negative if worse).
    pub fn traffic_reduction_vs(&self, baseline: &RunResult) -> f64 {
        let b = baseline.traffic.total() as f64;
        if b == 0.0 {
            0.0
        } else {
            1.0 - self.traffic.total() as f64 / b
        }
    }

    /// Fraction of stream-associated work actually offloaded (Figure 11).
    pub fn offload_fraction(&self) -> f64 {
        let assoc: f64 = self.roles.assoc.iter().sum();
        if assoc == 0.0 {
            0.0
        } else {
            self.roles.offloaded.iter().sum::<f64>() / assoc
        }
    }

    /// Renders key metrics into a [`StatsTable`].
    pub fn to_table(&self) -> StatsTable {
        let mut t = self.mem.to_table();
        t.set("cycles", self.cycles as f64);
        t.set("traffic.data", self.traffic.data as f64);
        t.set("traffic.control", self.traffic.control as f64);
        t.set("traffic.offloaded", self.traffic.offloaded as f64);
        t.set("traffic.total", self.traffic.total() as f64);
        t.set("uops.core", self.uops_core);
        t.set("uops.se", self.uops_se);
        t.set("uops.scm", self.uops_scm);
        t.set("locks.acquisitions", self.lock_acquisitions as f64);
        t.set("locks.conflicts", self.lock_conflicts as f64);
        t.set("aliases.flushes", self.alias_flushes as f64);
        t.set("fault.injected", self.faults_injected as f64);
        t.set("offload.retries", self.offload_retries as f64);
        t.set("offload.fallbacks", self.offload_fallbacks as f64);
        t.set("rangesync.replays", self.rangesync_replays as f64);
        t
    }
}

/// The simulation proper, on an already-initialized data memory. Callers
/// go through [`crate::request::RunRequest`], which owns memory
/// initialization (and content-addresses the initialized image for the
/// result cache).
pub(crate) fn simulate(
    program: &Program,
    compiled: &CompiledProgram,
    params: &[Scalar],
    mode: ExecMode,
    cfg: &SystemConfig,
    mut data: Memory,
) -> Result<(RunResult, Memory), SimError> {
    cfg.validate()?;
    let fault_mark = fault::snapshot();

    // The paper turns hardware prefetchers off in every design except the
    // baseline (§VI: "All other designs have hardware prefetchers turned
    // off"); streams subsume them.
    let mut mem_cfg = cfg.mem;
    if mode != ExecMode::Base {
        mem_cfg.l1_spatial_prefetch = false;
        mem_cfg.l2_stride_prefetch = false;
    }
    let mut mem = MemorySystem::try_new(mem_cfg)?;
    let mut mesh = Mesh::try_new(cfg.mesh.clone())?;
    // Each tile's SCM offers n_scc concurrent contexts.
    let scm_capacity = 16 * cfg.se.n_scc.max(1);
    let mut scm = vec![BandwidthLedger::new(16, scm_capacity); cfg.mesh.tiles() as usize];
    let n_cores = cfg.n_cores;
    let mut cores: Vec<CoreState> = (0..n_cores).map(CoreState::new).collect();
    let mut alias_history: HashSet<(usize, u8)> = HashSet::new();
    // Probe outcomes survive kernel re-invocations (the SE_core's
    // miss/reuse history, paper §IV-B). Keyed by the *static* kernel
    // identity — iterative programs re-instantiate the same streams per
    // step (scatter0, scatter1, ... share one configuration).
    let mut probe_history: std::collections::HashMap<(String, u8), OffloadStyle> =
        std::collections::HashMap::new();
    let mut time = Cycle::ZERO;

    for (kidx, kernel) in program.kernels.iter().enumerate() {
        let ck = &compiled.kernels[kidx];
        let trip = outer_trip(kernel, params);
        if trip == 0 {
            continue;
        }
        let chunk = trip.div_ceil(n_cores as u64);
        let decoupled = mode == ExecMode::NsDecouple && ck.fully_decoupled;
        // Honor the sync-free pragma: NsNoSync/NsDecouple require it.
        let effective_mode = match mode {
            ExecMode::NsNoSync | ExecMode::NsDecouple if !ck.sync_free => ExecMode::Ns,
            m => m,
        };

        // ---- Kernel setup per core -------------------------------------
        for c in 0..n_cores {
            let state = &mut cores[c as usize];
            state.begin_kernel_with(time, ck.streams.len(), cfg.se.alias_filter);
            configure_streams(
                state, ck, program, effective_mode, cfg, chunk, kidx, &alias_history,
                &probe_history, &data, &mut mesh, time,
            );
        }

        // ---- Interleaved execution -------------------------------------
        let mut heap: BinaryHeap<Reverse<(Cycle, u16)>> = BinaryHeap::new();
        let mut next_iter: Vec<u64> = Vec::with_capacity(n_cores as usize);
        let mut end_iter: Vec<u64> = Vec::with_capacity(n_cores as usize);
        let mut partials: Vec<Option<Scalar>> = vec![None; n_cores as usize];
        let mut locals_buf: Vec<Vec<Scalar>> = vec![Vec::new(); n_cores as usize];
        // Compiled execution: pin params/consts and run the plan preamble
        // once per core's register file.
        if let Some(code) = ck.plan.as_deref() {
            for lb in &mut locals_buf {
                code.init_regs(lb, params);
            }
        }
        for c in 0..n_cores {
            let lo = (c as u64 * chunk).min(trip);
            let hi = ((c as u64 + 1) * chunk).min(trip);
            next_iter.push(lo);
            end_iter.push(hi);
            if lo < hi {
                heap.push(Reverse((time, c)));
            }
        }
        let ptr_streams: Vec<usize> = ck
            .streams
            .iter()
            .enumerate()
            .filter(|(_, s)| s.pattern == AddrPatternClass::PointerChase)
            .map(|(i, _)| i)
            .collect();
        while let Some(Reverse((_, c))) = heap.pop() {
            metrics::count(Metric::EngineIterations);
            let ci = c as usize;
            let iter = next_iter[ci];
            cores[ci].begin_iteration(cfg.core.rob, decoupled);
            // Each outer iteration starts fresh pointer chains (nested
            // stream instances are independent; paper §V notes multiple
            // can run simultaneously).
            for &s in &ptr_streams {
                cores[ci].streams[s].last_completion = Cycle::ZERO;
            }
            let mut refs = EngineRefs {
                data: &mut data,
                mem: &mut mem,
                mesh: &mut mesh,
                scm: &mut scm,
            };
            let mut engine = Engine {
                state: &mut cores[ci],
                refs: &mut refs,
                compiled: ck,
                mode: effective_mode,
                cfg,
                decoupled,
            };
            let contrib = match ck.plan.as_deref() {
                Some(code) => code.exec_iteration(iter, params, &mut engine, &mut locals_buf[ci]),
                None => exec_iteration(kernel, iter, params, &mut engine, &mut locals_buf[ci]),
            }
            .map_err(|e| match e {
                ExecError::LoopCap { cap } => {
                    SimError::LoopCap { kernel: kernel.name.clone(), cap }
                }
            })?;
            cores[ci].end_iteration();
            if let (Some(r), Some(v)) = (&kernel.outer_reduction, contrib) {
                partials[ci] = Some(match partials[ci] {
                    None => v,
                    Some(a) => r.op.eval(a, v),
                });
            }
            next_iter[ci] += 1;
            if next_iter[ci] < end_iter[ci] {
                heap.push(Reverse((cores[ci].now, c)));
            }
        }

        // Watchdog: the event queue drained, so every core must have
        // finished its iteration range — anything less is a lost wakeup,
        // not forward progress.
        let pending: Vec<String> = (0..n_cores as usize)
            .filter(|&c| next_iter[c] < end_iter[c])
            .map(|c| {
                format!(
                    "{} core {c}: iteration {}/{}",
                    kernel.name, next_iter[c], end_iter[c]
                )
            })
            .collect();
        if !pending.is_empty() {
            return Err(SimError::Wedged { pending });
        }

        // ---- Kernel teardown --------------------------------------------
        let mut kernel_end = time;
        for c in 0..n_cores {
            let end = finish_kernel(&mut cores[c as usize], ck, &mut mesh, effective_mode);
            kernel_end = kernel_end.max(end);
            for (s, rt) in cores[c as usize].streams.iter().enumerate() {
                if rt.aliased {
                    alias_history.insert((kidx, s as u8));
                }
                // Record core 0's completed probe verdicts for the next
                // invocation of this kernel configuration.
                if c == 0 && rt.deferred.is_none() && rt.probe_accesses > 0 {
                    if std::env::var_os("NSC_DEBUG_KERNELS").is_some() {
                        eprintln!("verdict {}:{} -> {:?} (probed {} lines, {} misses, total {})",
                            ck.name, s, rt.style, rt.probe_accesses, rt.probe_misses, rt.probe_total);
                    }
                    probe_history.insert((static_kernel_key(&ck.name), s as u8), rt.style);
                }
            }
        }

        // Cross-core combine of the outer reduction, in core (= iteration)
        // order so floating-point results match the golden sequential run.
        if let Some(r) = &kernel.outer_reduction {
            let mut acc: Option<Scalar> = None;
            for p in partials.iter().flatten() {
                acc = Some(match acc {
                    None => *p,
                    Some(a) => r.op.eval(a, *p),
                });
            }
            if let Some(total) = acc {
                data.write_index(r.target, 0, total);
            }
            // Log-tree combine messages.
            let mut t = kernel_end;
            let mut stride = 1u16;
            while stride < n_cores {
                let arrive = mesh.send(t, TileId(stride), TileId(0), 8, MsgClass::Data);
                t = t.max(arrive);
                stride *= 2;
            }
            kernel_end = kernel_end.max(t);
        }

        if std::env::var_os("NSC_DEBUG_KERNELS").is_some() {
            eprintln!("kernel {} end={} (was {})", kernel.name, kernel_end.raw(), time.raw());
        }
        time = kernel_end;
        for c in 0..n_cores {
            cores[c as usize].now = time;
        }
    }

    // ---- Aggregate ------------------------------------------------------
    let mut roles = RoleCounters::default();
    let mut uops_core = 0.0;
    let mut uops_se = 0.0;
    let mut uops_scm = 0.0;
    let mut total_uops = 0.0;
    let mut alias_flushes = 0u64;
    let mut peb_flushes = 0u64;
    let mut offloaded_elems = 0u64;
    let mut stream_elems = 0u64;
    let mut offload_retries = 0u64;
    let mut offload_fallbacks = 0u64;
    let mut rangesync_replays = 0u64;
    for c in &cores {
        roles.merge(&c.roles);
        uops_core += c.uops_core;
        uops_se += c.uops_se;
        uops_scm += c.uops_scm;
        total_uops += c.total_uops;
        alias_flushes = alias_flushes.saturating_add(c.alias_flushes);
        peb_flushes = peb_flushes.saturating_add(c.peb_flushes);
        offloaded_elems = offloaded_elems.saturating_add(c.offloaded_elems);
        stream_elems = stream_elems.saturating_add(c.stream_elems);
        offload_retries = offload_retries.saturating_add(c.offload_retries);
        offload_fallbacks = offload_fallbacks.saturating_add(c.offload_fallbacks);
        rangesync_replays = rangesync_replays.saturating_add(c.rangesync_replays);
    }
    // Engine-level counters feed the live metrics registry once, at this
    // aggregation point: the underlying increments are split between the
    // per-core engine and `configure_streams`, and counting the summed
    // totals here keeps the registry in lock-step with `RunResult`.
    metrics::add(Metric::AliasFlushes, alias_flushes);
    metrics::add(Metric::PebFlushes, peb_flushes);
    metrics::add(Metric::RangeSyncReplays, rangesync_replays);
    metrics::add(Metric::OffloadRetries, offload_retries);
    metrics::add(Metric::OffloadFallbacks, offload_fallbacks);
    let result = RunResult {
        mode,
        cycles: time.raw(),
        traffic: TrafficSnapshot::capture(&mesh),
        mem: *mem.stats(),
        uops_core,
        uops_se,
        uops_scm,
        total_uops,
        roles,
        lock_acquisitions: mem.locks().acquisitions(),
        lock_conflicts: mem.locks().conflicts(),
        alias_flushes,
        peb_flushes,
        offloaded_elems,
        stream_elems,
        dram_accesses: mem.dram().accesses(),
        noc_latency: mesh.traffic().latency_hist().clone(),
        faults_injected: fault::snapshot().since(&fault_mark).total(),
        offload_retries,
        offload_fallbacks,
        rangesync_replays,
    };
    Ok((result, data))
}

/// The static identity of a kernel: its name with any trailing step/round
/// digits stripped (iterative programs emit `step0`, `step1`, ... for the
/// same stream configuration).
fn static_kernel_key(name: &str) -> String {
    name.trim_end_matches(|c: char| c.is_ascii_digit()).to_owned()
}

/// Applies the offload policy and charges stream-configure messages.
#[allow(clippy::too_many_arguments)]
fn configure_streams(
    state: &mut CoreState,
    ck: &CompiledKernel,
    program: &Program,
    mode: ExecMode,
    cfg: &SystemConfig,
    chunk: u64,
    kidx: usize,
    alias_history: &HashSet<(usize, u8)>,
    probe_history: &std::collections::HashMap<(String, u8), OffloadStyle>,
    data: &Memory,
    mesh: &mut Mesh,
    time: Cycle,
) {
    let n_banks = cfg.mem.n_banks() as u64;
    let core_tile = TileId(state.core);
    // Combined per-core working set of the kernel: streams compete for the
    // private cache, so the decision considers them together.
    let mut seen_arrays = std::collections::HashSet::new();
    let mut kernel_footprint = 0u64;
    for info in &ck.streams {
        if seen_arrays.insert(info.array) {
            let b = program.decl(info.array).bytes();
            kernel_footprint += match info.pattern {
                AddrPatternClass::Affine { .. } => b / cfg.n_cores as u64,
                _ => b,
            };
        }
    }
    for (s, info) in ck.streams.iter().enumerate() {
        let arr_bytes = program.decl(info.array).bytes();
        let footprint = match info.pattern {
            AddrPatternClass::Affine { .. } if info.loop_depth == 1 => {
                arr_bytes / cfg.n_cores as u64
            }
            _ => arr_bytes,
        };
        let stream_len = chunk * if info.loop_depth > 1 { 8 } else { 1 };
        let ctx = PolicyContext {
            l2_bytes: cfg.mem.l2.size_bytes,
            footprint_bytes: footprint.max(kernel_footprint / 2),
            stream_len,
            n_banks,
            aliased_before: alias_history.contains(&(kidx, s as u8)),
            offloadable: ck.offloadable.get(s).copied().unwrap_or(false),
        };
        let style = offload_style(mode, info, &ctx, &cfg.se);
        // Borderline footprints start in-core with runtime monitoring
        // (paper §IV-B): clearly-oversized streams offload immediately.
        // Indirect-target footprints are data-dependent, so irregular
        // write streams always probe on first sight.
        let borderline = ctx.footprint_bytes <= 4 * cfg.mem.l2.size_bytes
            || (info.is_irregular() && info.role.writes());
        let deferred = style.is_near_data() && borderline && mode != ExecMode::Inst;
        if let Some(&remembered) = probe_history.get(&(static_kernel_key(&ck.name), s as u8)) {
            state.streams[s].style = remembered;
        } else if deferred {
            state.streams[s].style = OffloadStyle::CoreAccess;
            state.streams[s].deferred = Some(style);
            // Probe ~1/8 of the stream's expected distinct lines, so the
            // verdict lands with most of the stream still ahead.
            let lines = stream_len * info.elem_bytes as u64 / 64;
            state.streams[s].probe_window = (lines / 8).clamp(4, 64) as u32;
        } else {
            state.streams[s].style = style;
        }
        // Co-located group leadership: the first stream over each
        // (array, depth, irregularity) combination leads; followers (other
        // fields of the same record, other taps of the same array) share
        // its configuration, migration and synchronization messages.
        let leader = !ck.streams[..s].iter().any(|prev| {
            prev.array == info.array
                && prev.loop_depth == info.loop_depth
                && prev.is_irregular() == info.is_irregular()
                && state.streams[prev.id.0 as usize].style == style
        });
        state.streams[s].sync_leader = leader;
        // Configuration: remote styles send the Table IV configure message
        // to the bank of the array base; in-core styles configure locally.
        state.streams[s].config_time = match style {
            OffloadStyle::NearStream | OffloadStyle::FloatLoad | OffloadStyle::ChainedLine => {
                let base_line = LineAddr(data.base_of(info.array) / nsc_mem::LINE_BYTES);
                let bank = base_line.bank(n_banks) as u16;
                state.streams[s].current_bank = bank;
                if leader {
                    let (outcome, retries) = offload_config_handshake(
                        mesh,
                        time,
                        core_tile,
                        bank,
                        cfg.mem.n_banks(),
                        &cfg.se,
                        s as u16,
                    );
                    state.offload_retries = state.offload_retries.saturating_add(retries);
                    match outcome {
                        Some((final_bank, t)) => {
                            state.streams[s].current_bank = final_bank;
                            t
                        }
                        None => {
                            // Handshake exhausted (injected NACKs even
                            // after migrating): transparently fall back to
                            // the in-core style the policy would have
                            // picked had offload been rejected.
                            state.offload_fallbacks = state.offload_fallbacks.saturating_add(1);
                            state.streams[s].style = fallback(info);
                            state.streams[s].deferred = None;
                            time
                        }
                    }
                } else {
                    time + 4
                }
            }
            OffloadStyle::CorePrefetch | OffloadStyle::PerIteration => time + 4,
            OffloadStyle::CoreAccess => time,
        };
        let (at, bank) = (state.streams[s].config_time, state.streams[s].current_bank);
        let (core, style_label) = (state.core, state.streams[s].style.label());
        trace::emit(|| TraceEvent::StreamConfig {
            at,
            core,
            stream: s as u16,
            bank,
            style: style_label,
        });
    }
    // Forward-only analysis: a load stream whose value feeds offloaded
    // consumers (operand forwarding or indirect address generation) sends
    // no per-element response to the core.
    for (s, info) in ck.streams.iter().enumerate() {
        if info.role != ComputeClass::Load {
            continue;
        }
        let consumed_near = ck.streams.iter().enumerate().any(|(t, other)| {
            if t == s || !state.streams[t].style.is_near_data() {
                return false;
            }
            let is_base = matches!(other.pattern, AddrPatternClass::Indirect { base } if base == info.id);
            let is_dep = other.value_deps.contains(&info.id);
            is_base || is_dep
        });
        state.streams[s].forward_only = consumed_near;
    }
}

/// End-of-kernel stream teardown: reduction collection, end messages.
fn finish_kernel(state: &mut CoreState, ck: &CompiledKernel, mesh: &mut Mesh, mode: ExecMode) -> Cycle {
    let core_tile = TileId(state.core);
    let mut end = state.now;
    for c in state.pending_completions() {
        end = end.max(c);
    }
    for (s, info) in ck.streams.iter().enumerate() {
        let rt = &state.streams[s];
        end = end.max(rt.last_completion);
        if rt.consumed > 0 {
            let (at, core, consumed) = (rt.last_completion.max(state.now), state.core, rt.consumed);
            trace::emit(|| TraceEvent::StreamEnd {
                at,
                core,
                stream: s as u16,
                consumed,
            });
        }
        if !matches!(
            rt.effective_style(),
            OffloadStyle::NearStream | OffloadStyle::FloatLoad | OffloadStyle::ChainedLine
        ) || rt.consumed == 0
        {
            continue;
        }
        match info.role {
            ComputeClass::Reduce => {
                match info.pattern {
                    AddrPatternClass::Indirect { .. } => {
                        // Partial results collected by multicast from every
                        // visited bank (paper §IV-C "Indirect Reduction").
                        let banks: Vec<TileId> =
                            rt.visited_banks.iter().map(|b| TileId(*b)).collect();
                        let t_mc = mesh.multicast(
                            rt.last_completion,
                            core_tile,
                            &banks,
                            8,
                            MsgClass::Offloaded,
                        );
                        let mut t_all = t_mc;
                        for b in &banks {
                            let t = mesh.send(t_mc, *b, core_tile, 8, MsgClass::Offloaded);
                            t_all = t_all.max(t);
                        }
                        end = end.max(t_all);
                    }
                    _ => {
                        // Final value returns from the last bank.
                        let t = mesh.send(
                            rt.last_completion,
                            TileId(rt.current_bank),
                            core_tile,
                            8,
                            MsgClass::Offloaded,
                        );
                        end = end.max(t);
                    }
                }
            }
            _ => {
                // Data-dependent-length streams are terminated with an end
                // message (known-length streams release silently).
                if info.pattern == AddrPatternClass::PointerChase {
                    let t = mesh.send(
                        state.now,
                        core_tile,
                        TileId(rt.current_bank),
                        8,
                        MsgClass::Offloaded,
                    );
                    end = end.max(t);
                }
            }
        }
        // Under range-sync, writes must collect their final done message.
        if mode.range_sync() && info.role.writes() {
            let t1 = mesh.send(state.now, core_tile, TileId(rt.current_bank), 8, MsgClass::Offloaded);
            let t2 = mesh.send(
                t1.max(rt.last_completion),
                TileId(rt.current_bank),
                core_tile,
                8,
                MsgClass::Offloaded,
            );
            end = end.max(t2);
            let core = state.core;
            trace::emit(|| TraceEvent::RangeSync {
                at: t2,
                core,
                stream: s as u16,
                phase: SyncPhase::Release,
            });
        }
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use nsc_compiler::compile;
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::{ElemType, Expr};

    fn memset_program(n: u64) -> Program {
        let mut p = Program::new("memset");
        let a = p.array("a", ElemType::I64, n);
        let mut k = KernelBuilder::new("set", n);
        let i = k.outer_var();
        k.store(a, Expr::var(i), Expr::var(i) * Expr::imm(3));
        k.sync_free();
        p.push_kernel(k.finish());
        p
    }

    fn run_mode(p: &Program, mode: ExecMode) -> (RunResult, Memory) {
        let compiled = compile(p);
        let cfg = SystemConfig::small();
        crate::request::RunRequest::new(p).compiled(&compiled).mode(mode).config(&cfg).run()
    }

    #[test]
    fn memset_all_modes_compute_same_result() {
        let p = memset_program(4096);
        let mut golden = Memory::for_program(&p);
        nsc_ir::interp::run_program(&p, &mut golden, &[]);
        for mode in ExecMode::ALL {
            let (_, mem) = run_mode(&p, mode);
            for i in (0..4096).step_by(97) {
                assert_eq!(
                    mem.read_index(nsc_ir::ArrayId(0), i),
                    golden.read_index(nsc_ir::ArrayId(0), i),
                    "mode {mode:?} diverged at {i}"
                );
            }
        }
    }

    #[test]
    fn ns_beats_base_on_memset() {
        let p = memset_program(64 * 1024);
        let (base, _) = run_mode(&p, ExecMode::Base);
        let (ns, _) = run_mode(&p, ExecMode::Ns);
        assert!(
            ns.cycles < base.cycles,
            "NS {} vs Base {}",
            ns.cycles,
            base.cycles
        );
        assert!(ns.traffic.total() < base.traffic.total());
        // The runtime probe window keeps the first few hundred elements
        // in-core before offloading.
        assert!(ns.offload_fraction() > 0.8, "offload fraction {}", ns.offload_fraction());
    }

    #[test]
    fn decouple_at_least_as_fast_as_ns() {
        let p = memset_program(64 * 1024);
        let (ns, _) = run_mode(&p, ExecMode::Ns);
        let (dec, _) = run_mode(&p, ExecMode::NsDecouple);
        assert!(dec.cycles <= ns.cycles);
        assert!(dec.traffic.total() <= ns.traffic.total());
    }

    #[test]
    fn try_run_rejects_invalid_config() {
        let p = memset_program(64);
        let compiled = compile(&p);
        let mut cfg = SystemConfig::small();
        cfg.n_cores = 0;
        let err = crate::request::RunRequest::new(&p)
            .compiled(&compiled)
            .mode(ExecMode::Ns)
            .config(&cfg)
            .try_run()
            .unwrap_err();
        assert!(err.to_string().contains("n_cores"), "got: {err}");
    }

    #[test]
    fn faults_are_transparent_and_counted() {
        let n = 32 * 1024;
        let p = memset_program(n);
        let compiled = compile(&p);
        let cfg = SystemConfig::small();
        let req = || {
            crate::request::RunRequest::new(&p).compiled(&compiled).mode(ExecMode::Ns).config(&cfg)
        };
        let (clean, clean_mem) = req().run();
        assert_eq!(clean.faults_injected, 0);

        nsc_sim::fault::install(nsc_sim::fault::FaultPlan::uniform(7, 0.01));
        let (faulty, faulty_mem) = req().run();
        let stats = nsc_sim::fault::uninstall().expect("injector was armed");
        assert!(stats.total() > 0, "no faults fired at rate 0.01");
        assert_eq!(faulty.faults_injected, stats.total());
        // The invariant: faults perturb timing and traffic, never data.
        for i in (0..n).step_by(61) {
            assert_eq!(
                faulty_mem.read_index(nsc_ir::ArrayId(0), i),
                clean_mem.read_index(nsc_ir::ArrayId(0), i),
                "faulty run diverged at {i}"
            );
        }
    }

    #[test]
    fn exhausted_handshake_falls_back_in_core() {
        let n = 64 * 1024;
        let p = memset_program(n);
        let compiled = compile(&p);
        let cfg = SystemConfig::small();
        let mut plan = nsc_sim::fault::FaultPlan::none();
        plan.offload_nack = 1.0; // every configure attempt is refused
        nsc_sim::fault::install(plan);
        let (res, mem) = crate::request::RunRequest::new(&p)
            .compiled(&compiled)
            .mode(ExecMode::Ns)
            .config(&cfg)
            .run();
        nsc_sim::fault::uninstall();
        assert!(res.offload_retries > 0, "no retries despite permanent NACKs");
        assert!(res.offload_fallbacks > 0, "no stream fell back");
        // Recovery is transparent: the kernel still computes the result.
        let mut golden = Memory::for_program(&p);
        nsc_ir::interp::run_program(&p, &mut golden, &[]);
        for i in (0..n).step_by(97) {
            assert_eq!(
                mem.read_index(nsc_ir::ArrayId(0), i),
                golden.read_index(nsc_ir::ArrayId(0), i)
            );
        }
        // The report surfaces the recovery counters.
        let t = res.to_table();
        assert!(t.get("offload.fallbacks").unwrap_or(0.0) > 0.0);
        assert_eq!(t.get("rangesync.replays"), Some(res.rangesync_replays as f64));
    }
}
