//! Idealized traffic models for the paper's Figure 1(b) motivation study.
//!
//! Three abstract 64-core systems are compared on pure data traffic
//! (bytes × NoC hops), with all latencies and control messages idealized
//! away:
//!
//! * **No-Priv$** — no private caches: every access moves its bytes
//!   between the core and the line's LLC bank.
//! * **Perf-Priv$** — a perfect private cache (fully-associative,
//!   byte-granularity transfers, LRU, 256 kB, zero-cost update protocol).
//! * **Perf-Near-LLC** — computation offloaded to LLC banks: stream data
//!   never travels to the core; only operand forwarding between banks and
//!   reduced results move.

use crate::config::SystemConfig;
use nsc_compiler::CompiledProgram;
use nsc_ir::interp::{exec_iteration, outer_trip};
use nsc_ir::program::{ArrayId, Field, StmtId};
use nsc_ir::stream::{AddrPatternClass, ComputeClass};
use nsc_ir::types::{AtomicOp, Scalar};
use nsc_ir::{MemClient, Memory, Program};
use nsc_mem::{Addr, Cache, CacheConfig, ReplacePolicy};
use nsc_noc::{Mesh, MsgClass, TileId};
use nsc_sim::Cycle;

/// The abstract system to model.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IdealModel {
    /// Baseline with no private caches.
    NoPrivateCache,
    /// Perfect 256 kB private cache per core.
    PerfectPrivate,
    /// Perfect near-LLC offloading.
    PerfectNearLlc,
}

impl IdealModel {
    /// Label used in Figure 1(b) output.
    pub fn label(self) -> &'static str {
        match self {
            IdealModel::NoPrivateCache => "No-Priv$",
            IdealModel::PerfectPrivate => "Perf-Priv$",
            IdealModel::PerfectNearLlc => "Perf-Near-LLC",
        }
    }
}

struct IdealClient<'a> {
    data: &'a mut Memory,
    mesh: &'a mut Mesh,
    compiled: &'a nsc_compiler::CompiledKernel,
    model: IdealModel,
    core: u16,
    cache: Option<&'a mut Cache>,
    n_banks: u64,
    /// Load statements whose values feed offloaded consumers: their data
    /// never travels (charged as operand forwarding at the consumer).
    forward_only: &'a std::collections::HashSet<nsc_ir::program::StmtId>,
}

impl IdealClient<'_> {
    fn bank_tile(&self, addr: Addr) -> TileId {
        TileId(addr.line().bank(self.n_banks) as u16)
    }

    fn charge(&mut self, stmt: StmtId, addr: Addr, bytes: u8, is_store: bool) {
        let core_tile = TileId(self.core);
        let bank = self.bank_tile(addr);
        match self.model {
            IdealModel::NoPrivateCache => {
                self.mesh.account_only(core_tile, bank, bytes as u64, MsgClass::Data);
            }
            IdealModel::PerfectPrivate => {
                let cache = self.cache.as_mut().expect("private model has a cache");
                let hit = cache.lookup(addr.line(), Cycle::ZERO).is_some();
                if !hit {
                    cache.insert(addr.line(), false, Cycle::ZERO);
                }
                // Byte-granularity fills on miss; updates always propagate
                // (zero-cost protocol means no *control*, data still moves).
                if !hit || is_store {
                    self.mesh.account_only(core_tile, bank, bytes as u64, MsgClass::Data);
                }
            }
            IdealModel::PerfectNearLlc => {
                let Some(stream) = self.compiled.stream_of(stmt) else {
                    // Not streamed: behaves like the perfect private cache.
                    let cache = self.cache.as_mut().expect("cache");
                    let hit = cache.lookup(addr.line(), Cycle::ZERO).is_some();
                    if !hit {
                        cache.insert(addr.line(), false, Cycle::ZERO);
                        self.mesh.account_only(core_tile, bank, bytes as u64, MsgClass::Data);
                    } else if is_store {
                        self.mesh.account_only(core_tile, bank, bytes as u64, MsgClass::Data);
                    }
                    return;
                };
                match stream.role {
                    // Fully near-data: reductions, stores and RMW move no
                    // data to the core; multi-operand inputs hop between
                    // banks.
                    ComputeClass::Reduce | ComputeClass::Store | ComputeClass::Rmw => {
                        for dep in &stream.value_deps {
                            let dep_bytes = self.compiled.streams[dep.0 as usize].elem_bytes;
                            // Operands travel roughly one bank apart under
                            // 64 B interleave.
                            self.mesh.account_only(
                                TileId((bank.raw() + 1) % self.n_banks as u16),
                                bank,
                                dep_bytes as u64,
                                MsgClass::Offloaded,
                            );
                        }
                    }
                    ComputeClass::Atomic => {
                        if let AddrPatternClass::Indirect { base } = stream.pattern {
                            let op_bytes = self.compiled.streams[base.0 as usize].elem_bytes;
                            self.mesh.account_only(
                                TileId((bank.raw() + 1) % self.n_banks as u16),
                                bank,
                                op_bytes as u64,
                                MsgClass::Offloaded,
                            );
                        }
                    }
                    ComputeClass::Load => {
                        if self.forward_only.contains(&stmt) {
                            // Consumed near data: charged at the consumer.
                        } else if stream.result_bytes > 0 && stream.compute_uops > 0 {
                            self.mesh.account_only(
                                bank,
                                core_tile,
                                stream.result_bytes as u64,
                                MsgClass::Offloaded,
                            );
                        } else {
                            // Plain load stream: value still goes to core.
                            self.mesh.account_only(bank, core_tile, bytes as u64, MsgClass::Data);
                        }
                    }
                }
            }
        }
    }
}

impl MemClient for IdealClient<'_> {
    fn load(&mut self, stmt: StmtId, array: ArrayId, index: u64, field: Option<Field>) -> Scalar {
        let v = self.data.read(array, index, field);
        let addr = Addr(self.data.addr_of_field(array, index, field));
        let bytes = self.data.access_bytes(array, field);
        self.charge(stmt, addr, bytes, false);
        v
    }

    fn store(&mut self, stmt: StmtId, array: ArrayId, index: u64, field: Option<Field>, value: Scalar) {
        self.data.write(array, index, field, value);
        let addr = Addr(self.data.addr_of_field(array, index, field));
        let bytes = self.data.access_bytes(array, field);
        self.charge(stmt, addr, bytes, true);
    }

    fn atomic(
        &mut self,
        stmt: StmtId,
        array: ArrayId,
        index: u64,
        field: Option<Field>,
        op: AtomicOp,
        operand: Scalar,
        expected: Option<Scalar>,
    ) -> Scalar {
        let old = self.data.read(array, index, field);
        let (new, _) = op.apply(old, operand, expected);
        self.data.write(array, index, field, new);
        let addr = Addr(self.data.addr_of_field(array, index, field));
        let bytes = self.data.access_bytes(array, field);
        self.charge(stmt, addr, bytes, true);
        old
    }
}

/// Computes total bytes × hops for `program` under one ideal model.
pub fn ideal_traffic(
    program: &Program,
    compiled: &CompiledProgram,
    params: &[Scalar],
    model: IdealModel,
    cfg: &SystemConfig,
    init: &dyn Fn(&mut Memory),
) -> u64 {
    let mut data = Memory::for_program(program);
    init(&mut data);
    let mut mesh = Mesh::new(cfg.mesh.clone());
    let n_cores = cfg.n_cores;
    let mut caches: Vec<Cache> = (0..n_cores)
        .map(|_| {
            Cache::new(CacheConfig {
                size_bytes: 256 * 1024,
                ways: 64, // near-fully-associative
                latency: Cycle(1),
                policy: ReplacePolicy::Lru,
            set_skip_bits: 0,
            })
        })
        .collect();
    let mut locals = Vec::new();
    for (kidx, kernel) in program.kernels.iter().enumerate() {
        let ck = &compiled.kernels[kidx];
        let trip = outer_trip(kernel, params);
        let chunk = trip.div_ceil(n_cores as u64).max(1);
        // Loads consumed by offloaded writers (operands, indirect bases)
        // never travel to the core under near-LLC computing.
        let mut forward_only = std::collections::HashSet::new();
        for w in &ck.streams {
            if w.role.writes() || w.role == ComputeClass::Reduce {
                for d in &w.value_deps {
                    forward_only.insert(ck.streams[d.0 as usize].stmt);
                }
                if let AddrPatternClass::Indirect { base } = w.pattern {
                    forward_only.insert(ck.streams[base.0 as usize].stmt);
                }
            }
        }
        let mut acc: Option<Scalar> = None;
        for i in 0..trip {
            let core = (i / chunk).min(n_cores as u64 - 1) as u16;
            let mut client = IdealClient {
                data: &mut data,
                mesh: &mut mesh,
                compiled: ck,
                model,
                core,
                cache: Some(&mut caches[core as usize]),
                n_banks: cfg.mem.n_banks() as u64,
                forward_only: &forward_only,
            };
            let contrib = exec_iteration(kernel, i, params, &mut client, &mut locals)
                .unwrap_or_else(|e| panic!("kernel {}: {e}", kernel.name));
            if let (Some(r), Some(c)) = (&kernel.outer_reduction, contrib) {
                acc = Some(match acc {
                    None => c,
                    Some(a) => r.op.eval(a, c),
                });
            }
        }
        if let (Some(r), Some(total)) = (&kernel.outer_reduction, acc) {
            data.write_index(r.target, 0, total);
        }
    }
    mesh.traffic().total_bytes_hops()
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_compiler::compile;
    use nsc_ir::build::KernelBuilder;
    use nsc_ir::{ElemType, Expr};

    /// Σ a[i]: perfect near-LLC should eliminate essentially all traffic.
    #[test]
    fn reduction_traffic_ordering() {
        let mut p = Program::new("sum");
        let a = p.array("a", ElemType::I64, 1 << 16);
        let out = p.array("out", ElemType::I64, 1);
        let mut k = KernelBuilder::new("sum", 1 << 16);
        let i = k.outer_var();
        let v = k.load(a, Expr::var(i));
        let acc = k.var();
        k.assign(acc, Expr::var(acc) + Expr::var(v));
        k.reduce_outer(acc, nsc_ir::BinOp::Add, out);
        p.push_kernel(k.finish());
        let compiled = compile(&p);
        let cfg = SystemConfig::small();
        let no_priv = ideal_traffic(&p, &compiled, &[], IdealModel::NoPrivateCache, &cfg, &|_| {});
        let perf = ideal_traffic(&p, &compiled, &[], IdealModel::PerfectPrivate, &cfg, &|_| {});
        let near = ideal_traffic(&p, &compiled, &[], IdealModel::PerfectNearLlc, &cfg, &|_| {});
        // Streaming data with no reuse: a perfect private cache barely
        // helps, near-LLC eliminates the traffic.
        assert!(perf <= no_priv);
        assert!(near < perf / 100, "near = {near}, perf = {perf}");
    }

    /// Repeatedly touching a small array: a perfect private cache wins big.
    #[test]
    fn private_cache_captures_reuse() {
        let mut p = Program::new("reuse");
        let a = p.array("a", ElemType::I64, 64);
        let b = p.array("b", ElemType::I64, 1 << 14);
        let mut k = KernelBuilder::new("k", 1 << 14);
        let i = k.outer_var();
        let v = k.load(a, Expr::bin(nsc_ir::BinOp::Rem, Expr::var(i), Expr::imm(64)));
        k.store(b, Expr::var(i), Expr::var(v));
        p.push_kernel(k.finish());
        let compiled = compile(&p);
        let cfg = SystemConfig::small();
        let no_priv = ideal_traffic(&p, &compiled, &[], IdealModel::NoPrivateCache, &cfg, &|_| {});
        let perf = ideal_traffic(&p, &compiled, &[], IdealModel::PerfectPrivate, &cfg, &|_| {});
        assert!(perf < no_priv);
    }
}
