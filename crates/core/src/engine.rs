//! The per-core timing engine.
//!
//! An [`Engine`] implements [`nsc_ir::MemClient`]: the IR interpreter drives
//! it through one outer-loop iteration at a time, and every memory access
//! is charged to the cache hierarchy, NoC and stream engines according to
//! the execution mode and the compiler's stream assignment. Functional
//! semantics (the actual data values) are applied to the shared
//! [`nsc_ir::Memory`], so every mode computes bit-identical results.

use crate::config::{ExecMode, SystemConfig};
use crate::policy::OffloadStyle;
use crate::range_sync::{AliasFilter, AliasFilterKind};
use nsc_compiler::CompiledKernel;
use nsc_ir::program::{ArrayId, Field, StmtId};
use nsc_ir::stream::{AddrPatternClass, ComputeClass, StreamId};
use nsc_ir::types::{AtomicOp, Scalar};
use nsc_ir::{MemClient, Memory};
use nsc_mem::addr::LineAddr;
use nsc_mem::{AccessKind, Addr, MemorySystem};
use nsc_noc::{Mesh, MsgClass, TileId};
use nsc_sim::fault::{self, FaultSite};
use nsc_sim::metrics::{self, Metric, Prof};
use nsc_sim::trace::{self, SyncPhase, TraceEvent};
use nsc_sim::{resource::BandwidthLedger, Cycle};
use std::collections::{BTreeSet, VecDeque};

/// Penalty cycles to flush and restore precise state when an offloaded
/// stream aliases with a core access (paper Figure 7(b)).
pub const ALIAS_FLUSH_PENALTY: u64 = 200;

fn role_index(role: ComputeClass) -> usize {
    match role {
        ComputeClass::Load => 0,
        ComputeClass::Store => 1,
        ComputeClass::Rmw => 2,
        ComputeClass::Atomic => 3,
        ComputeClass::Reduce => 4,
    }
}

/// Dynamic µop counters by compute class (Figures 1(a) and 11).
#[derive(Clone, Copy, Debug, Default)]
pub struct RoleCounters {
    /// µops associated with streams, by role.
    pub assoc: [f64; 5],
    /// Of those, µops whose work actually executed near data.
    pub offloaded: [f64; 5],
}

impl RoleCounters {
    /// Stream-associated µops for a role.
    pub fn assoc_of(&self, role: ComputeClass) -> f64 {
        self.assoc[role_index(role)]
    }

    /// Offloaded µops for a role.
    pub fn offloaded_of(&self, role: ComputeClass) -> f64 {
        self.offloaded[role_index(role)]
    }

    /// Merges counters.
    pub fn merge(&mut self, other: &RoleCounters) {
        for i in 0..5 {
            self.assoc[i] += other.assoc[i];
            self.offloaded[i] += other.offloaded[i];
        }
    }
}

/// Per-stream runtime state within one kernel execution on one core.
#[derive(Clone, Debug)]
pub struct StreamRt {
    /// How this stream executes (from the offload policy).
    pub style: OffloadStyle,
    /// Elements consumed so far.
    pub consumed: u64,
    /// Consumption-time history for the run-ahead window.
    recent: VecDeque<Cycle>,
    /// Completion time of the most recent element at its serving location.
    pub last_completion: Cycle,
    /// Last line touched (for per-line batching of messages).
    last_line: Option<LineAddr>,
    /// Line currently held in the SE_L3 stream buffer, and when it was
    /// ready: consecutive elements of the same line are served from the
    /// buffer without re-touching the bank.
    se_line: Option<LineAddr>,
    /// Page of the SE's cached translation (one TLB access per page,
    /// paper §IV-B).
    se_page: Option<u64>,
    /// Conservative range of elements currently sitting prefetched in the
    /// PEB (in-core streams only; paper §III-C "Memory Ordering").
    peb_range: nsc_mem::addr::AddrRange,
    /// Elements recorded in the current PEB window.
    peb_count: u32,
    /// Completion time of the buffered line.
    se_line_done: Cycle,
    /// Cached per-line forwarding latency for operand streams.
    dep_lat: u64,
    /// Outer iteration of the last synchronization boundary.
    last_sync_iter: u64,
    /// Stream may not issue further work before this time (credit pacing /
    /// commit gating under range-sync).
    resume_after: Cycle,
    /// L3 banks this stream has visited.
    pub visited_banks: BTreeSet<u16>,
    /// Bank currently hosting the stream.
    pub current_bank: u16,
    /// When the stream's configuration reached the remote SE.
    pub config_time: Cycle,
    /// The stream aliased with a core access and was flushed back in-core.
    pub aliased: bool,
    /// Rolling estimate of the commit round-trip (for atomic lock windows).
    commit_rtt: u64,
    /// Commit arrival of the previous batch (commits pipeline one batch
    /// deep: the stream stalls only when two batches are uncommitted).
    pending_commit: Cycle,
    /// Fractional SCM occupancy accumulator.
    scm_frac: f64,
    /// The stream's values feed offloaded consumers only; no per-element
    /// response to the core.
    pub forward_only: bool,
    /// Sum of outer-dep consumed counts at the last element (detects when
    /// a loop-invariant operand changed and must be re-forwarded).
    outer_dep_marker: u64,
    /// Elements since the last batched result-response message.
    resp_pending: u32,
    /// Cached per-batch response latency.
    resp_lat: u64,
    /// Leader of its co-located group (streams over the same array at the
    /// same depth, e.g. the key/left/right fields of one tree node): only
    /// the leader pays configuration, migration and synchronization
    /// messages; followers ride along.
    pub sync_leader: bool,
    /// Deferred offload decision (paper §IV-B): the stream starts in-core
    /// while SE_core records its miss and reuse rate; after the probe
    /// window it switches to this style if the miss rate is high.
    pub deferred: Option<OffloadStyle>,
    /// Probe window length in distinct lines (scaled to the stream's
    /// expected length at configuration).
    pub probe_window: u32,
    /// Probe window: accesses observed so far.
    pub probe_accesses: u32,
    /// Probe window: accesses that missed the private caches.
    pub probe_misses: u32,
    /// Distinct lines seen during the probe window.
    probe_lines: std::collections::HashSet<u64>,
    /// Total accesses (incl. repeats) during the probe window.
    pub probe_total: u32,
}

impl StreamRt {
    fn new() -> StreamRt {
        StreamRt {
            style: OffloadStyle::CoreAccess,
            consumed: 0,
            recent: VecDeque::new(),
            last_completion: Cycle::ZERO,
            last_line: None,
            se_line: None,
            se_page: None,
            peb_range: nsc_mem::addr::AddrRange::empty(),
            peb_count: 0,
            se_line_done: Cycle::ZERO,
            dep_lat: 0,
            last_sync_iter: 0,
            resume_after: Cycle::ZERO,
            visited_banks: BTreeSet::new(),
            current_bank: 0,
            config_time: Cycle::ZERO,
            aliased: false,
            commit_rtt: 60,
            pending_commit: Cycle::ZERO,
            scm_frac: 0.0,
            forward_only: false,
            outer_dep_marker: u64::MAX,
            resp_pending: 0,
            resp_lat: 30,
            sync_leader: true,
            deferred: None,
            probe_window: 64,
            probe_accesses: 0,
            probe_misses: 0,
            probe_lines: std::collections::HashSet::new(),
            probe_total: 0,
        }
    }

    /// The effective style (aliased streams fall back in-core).
    pub fn effective_style(&self) -> OffloadStyle {
        if self.aliased {
            OffloadStyle::CoreAccess
        } else {
            self.style
        }
    }
}

/// Timing state of one core, persisted across iterations of a kernel.
#[derive(Clone, Debug)]
pub struct CoreState {
    /// Core id.
    pub core: u16,
    /// Issue cursor.
    pub now: Cycle,
    uop_credit: f64,
    /// Completion times of recent iterations (ROB window).
    iter_ring: VecDeque<Cycle>,
    /// Completion times of outstanding loads (LQ window).
    load_ring: VecDeque<Cycle>,
    /// Per-stream runtime state.
    pub streams: Vec<StreamRt>,
    /// Offloaded-range alias filter (range-sync).
    pub ranges: AliasFilter,
    iter_max_completion: Cycle,
    /// Outer-iteration counter within the current kernel (range-sync fires
    /// every R iterations, paper §IV-B).
    pub cur_iter: u64,
    iter_uops: f64,
    total_iter_uops: f64,
    iters_done: u64,
    /// Kernel start time (streams cannot run ahead of it).
    pub kernel_start: Cycle,
    /// µops executed by the core pipeline.
    pub uops_core: f64,
    /// µops executed by stream engines (address generation, scalar PE).
    pub uops_se: f64,
    /// µops executed by SCM thread contexts.
    pub uops_scm: f64,
    /// Total dynamic µops (denominator for fractions).
    pub total_uops: f64,
    /// Role-wise counters.
    pub roles: RoleCounters,
    /// Number of alias flushes taken.
    pub alias_flushes: u64,
    /// PEB flushes: an in-core store aliased prefetched stream data
    /// (paper §III-C: "all prefetched elements are flushed and reissued").
    pub peb_flushes: u64,
    /// Offloaded elements (for reporting).
    pub offloaded_elems: u64,
    /// Stream-associated elements.
    pub stream_elems: u64,
    /// Configure-handshake retries taken after injected NACKs.
    pub offload_retries: u64,
    /// Streams forced back in-core after the handshake was exhausted.
    pub offload_fallbacks: u64,
    /// Stream windows drained and replayed after a forced alias-filter
    /// mis-speculation.
    pub rangesync_replays: u64,
}

impl CoreState {
    /// Creates an idle core at time zero.
    pub fn new(core: u16) -> CoreState {
        CoreState {
            core,
            now: Cycle::ZERO,
            uop_credit: 0.0,
            iter_ring: VecDeque::new(),
            load_ring: VecDeque::new(),
            streams: Vec::new(),
            ranges: AliasFilter::default(),
            iter_max_completion: Cycle::ZERO,
            cur_iter: 0,
            iter_uops: 0.0,
            total_iter_uops: 0.0,
            iters_done: 0,
            kernel_start: Cycle::ZERO,
            uops_core: 0.0,
            uops_se: 0.0,
            uops_scm: 0.0,
            total_uops: 0.0,
            roles: RoleCounters::default(),
            alias_flushes: 0,
            peb_flushes: 0,
            offloaded_elems: 0,
            stream_elems: 0,
            offload_retries: 0,
            offload_fallbacks: 0,
            rangesync_replays: 0,
        }
    }

    /// Resets per-kernel state (streams, rings, ranges) at a kernel
    /// barrier; accumulated counters are kept.
    pub fn begin_kernel_with(&mut self, start: Cycle, n_streams: usize, filter: AliasFilterKind) {
        self.ranges = AliasFilter::new(filter);
        self.begin_kernel(start, n_streams);
    }

    /// Like [`CoreState::begin_kernel_with`] keeping the current filter
    /// kind.
    pub fn begin_kernel(&mut self, start: Cycle, n_streams: usize) {
        self.now = start;
        self.kernel_start = start;
        self.uop_credit = 0.0;
        self.iter_ring.clear();
        self.load_ring.clear();
        self.streams = (0..n_streams).map(|_| StreamRt::new()).collect();
        self.ranges.clear();
        self.iter_max_completion = start;
        self.cur_iter = 0;
        self.iter_uops = 0.0;
        self.total_iter_uops = 0.0;
        self.iters_done = 0;
    }

    fn charge_core_uops(&mut self, uops: f64, width: u32) {
        self.uops_core += uops;
        self.iter_uops += uops;
        self.uop_credit += uops / width as f64;
        let whole = self.uop_credit.floor();
        if whole >= 1.0 {
            self.now += whole as u64;
            self.uop_credit -= whole;
        }
    }

    /// Marks the start of an outer iteration, applying the ROB window
    /// constraint against older iterations.
    pub fn begin_iteration(&mut self, rob: u32, decoupled: bool) {
        let window = if decoupled {
            256
        } else if self.iters_done > 0 {
            let avg = self.total_iter_uops / self.iters_done as f64;
            ((rob as f64 / avg.max(1.0)) as usize).clamp(1, 64)
        } else {
            4
        };
        while self.iter_ring.len() >= window {
            let oldest = self.iter_ring.pop_front().expect("non-empty ring");
            self.now = self.now.max(oldest);
        }
        self.iter_max_completion = self.now;
        self.iter_uops = 0.0;
    }

    /// Completion times of iterations still in flight (for kernel-end
    /// accounting).
    pub fn pending_completions(&self) -> impl Iterator<Item = Cycle> + '_ {
        self.iter_ring.iter().copied()
    }

    /// Marks the end of an outer iteration (in-order commit point).
    pub fn end_iteration(&mut self) {
        let done = self.iter_max_completion.max(self.now);
        self.iter_ring.push_back(done);
        self.total_iter_uops += self.iter_uops;
        self.iters_done += 1;
        self.cur_iter += 1;
    }

    fn note_completion(&mut self, c: Cycle) {
        self.iter_max_completion = self.iter_max_completion.max(c);
    }

    fn load_slot(&mut self, lq: u32, completion: Cycle) {
        while self.load_ring.len() >= lq as usize {
            let oldest = self.load_ring.pop_front().expect("non-empty ring");
            self.now = self.now.max(oldest);
        }
        self.load_ring.push_back(completion);
    }
}

/// Shared mutable system references handed to the engine per iteration.
pub struct EngineRefs<'a> {
    /// Functional data memory.
    pub data: &'a mut Memory,
    /// The coherent cache hierarchy.
    pub mem: &'a mut MemorySystem,
    /// The NoC.
    pub mesh: &'a mut Mesh,
    /// Per-tile SCM occupancy (shared compute contexts).
    pub scm: &'a mut [BandwidthLedger],
}

/// The per-iteration execution engine: interpreter memory client plus
/// timing model.
pub struct Engine<'a, 'r> {
    /// Core timing state.
    pub state: &'a mut CoreState,
    /// Shared system references.
    pub refs: &'a mut EngineRefs<'r>,
    /// Compiler output for the running kernel.
    pub compiled: &'a CompiledKernel,
    /// Execution mode.
    pub mode: ExecMode,
    /// System configuration.
    pub cfg: &'a SystemConfig,
    /// The kernel runs fully decoupled (NSDecouple only).
    pub decoupled: bool,
}

/// Sends a stream-configure message and models the SE_L3's ack,
/// recovering from injected NACKs (chaos mode): bounded retries with
/// linear backoff, then one transparent migration to the neighbouring
/// bank, then giving up so the caller falls back to in-core execution.
///
/// Returns `(Some((bank, ack_time)), retries)` on success — `bank` is the
/// bank that finally accepted, which differs from the requested one after
/// a migration — and `(None, retries)` when the handshake was exhausted.
/// With no fault injector armed the first send always succeeds, so this
/// is timing-identical to a plain `mesh.send`.
pub(crate) fn offload_config_handshake(
    mesh: &mut Mesh,
    time: Cycle,
    core_tile: TileId,
    bank: u16,
    n_banks: u16,
    se: &crate::config::SeConfig,
    stream: u16,
) -> (Option<(u16, Cycle)>, u64) {
    let bytes = nsc_ir::encoding::ComputeConfig::config_message_bytes();
    let core = core_tile.raw();
    let mut t = time;
    let mut try_bank = bank;
    let mut migrated = false;
    let mut attempt = 0u64;
    let mut retries = 0u64;
    loop {
        let t_ack = mesh.send(t, core_tile, TileId(try_bank), bytes, MsgClass::Offloaded);
        if !fault::inject(FaultSite::OffloadNack) {
            return (Some((try_bank, t_ack)), retries);
        }
        trace::emit(|| TraceEvent::Fault {
            at: t_ack,
            core,
            site: FaultSite::OffloadNack.label(),
        });
        if attempt < se.offload_max_retries as u64 {
            attempt += 1;
            retries += 1;
            trace::emit(|| TraceEvent::Recovery { at: t_ack, core, stream, action: "retry" });
            t = t_ack + se.offload_retry_backoff * attempt;
        } else if !migrated && n_banks > 1 {
            // The bank keeps refusing: move the stream next door and start
            // the retry budget over.
            migrated = true;
            attempt = 0;
            try_bank = (try_bank + 1) % n_banks;
            trace::emit(|| TraceEvent::Recovery { at: t_ack, core, stream, action: "migrate" });
            t = t_ack + se.offload_retry_backoff;
        } else {
            trace::emit(|| TraceEvent::Recovery { at: t_ack, core, stream, action: "fallback" });
            return (None, retries);
        }
    }
}

impl Engine<'_, '_> {
    fn core_tile(&self) -> TileId {
        TileId(self.state.core)
    }

    fn vw(&self) -> f64 {
        self.compiled.vector_width as f64
    }

    /// Run-ahead issue time for the next element of a stream. In-core
    /// streams are bounded by the SE_core FIFO; offloaded streams by the
    /// SE_L3 stream buffer.
    fn runahead_issue(&mut self, sid: StreamId) -> Cycle {
        let d = match self.state.streams[sid.0 as usize].effective_style() {
            OffloadStyle::NearStream | OffloadStyle::FloatLoad | OffloadStyle::ChainedLine => {
                self.cfg.se.l3_buffer_elems as usize
            }
            _ => self.cfg.se.runahead_elems as usize,
        };
        let now = self.state.now;
        let rt = &mut self.state.streams[sid.0 as usize];
        let t = if rt.recent.len() >= d {
            rt.recent.pop_front().expect("non-empty window")
        } else {
            rt.config_time
        };
        rt.recent.push_back(now);
        let issue = t.max(rt.config_time).max(rt.resume_after);
        let depth = rt.recent.len();
        trace::sample("se.queue", self.state.core, now, || depth as f64);
        issue
    }

    /// Whether a stream's stores fully overwrite their lines (unit-stride
    /// affine store): the bank may install lines without fetching.
    fn full_line_store(&self, sid: StreamId) -> bool {
        let info = &self.compiled.streams[sid.0 as usize];
        info.role == ComputeClass::Store
            && matches!(info.pattern,
                AddrPatternClass::Affine { stride_bytes } if stride_bytes.unsigned_abs() == info.elem_bytes as u64)
    }

    /// Executes one element access at the stream's L3 bank, handling
    /// migration bookkeeping; returns completion time at the bank.
    ///
    /// Consecutive elements of one line are served from the SE_L3 stream
    /// buffer: the bank is touched once per line (the stream buffer holds
    /// operands and results until written back, paper Figure 6).
    fn l3_elem(&mut self, sid: StreamId, addr: Addr, kind: AccessKind, issue: Cycle) -> Cycle {
        let line = addr.line();
        {
            let rt = &self.state.streams[sid.0 as usize];
            if rt.se_line == Some(line) {
                return rt.se_line_done.max(issue);
            }
        }
        let bank = self.refs.mem.bank_of(line);
        let mut issue = issue;
        // Injected SE_L3 bank stall window (chaos mode): the bank is busy
        // or briefly offline, so the element waits it out.
        if fault::inject(FaultSite::BankStall) {
            let (at, core) = (issue, self.state.core);
            trace::emit(|| TraceEvent::Fault { at, core, site: FaultSite::BankStall.label() });
            issue += fault::penalty(FaultSite::BankStall);
        }
        // One TLB access per page transition; the SE caches the current
        // translation (paper §IV-B).
        let page = addr.raw() >> nsc_mem::tlb::HUGE_PAGE_BITS;
        if self.state.streams[sid.0 as usize].se_page != Some(page) {
            self.state.streams[sid.0 as usize].se_page = Some(page);
            issue = issue.max(self.refs.mem.se_translate(issue, addr));
        }
        {
            let prev = self.state.streams[sid.0 as usize].current_bank;
            let first = self.state.streams[sid.0 as usize].visited_banks.is_empty();
            if first {
                self.state.streams[sid.0 as usize].current_bank = bank;
            } else if prev != bank {
                // Stream migration: state moves to the next bank
                // (paper §IV-B "Stream Migrate & End"). Co-located group
                // followers migrate with their leader for free, and
                // indirect streams don't migrate at all — each element's
                // request (charged by the caller) carries the state.
                let is_indirect = matches!(
                    self.compiled.streams[sid.0 as usize].pattern,
                    AddrPatternClass::Indirect { .. }
                );
                if self.state.streams[sid.0 as usize].sync_leader && !is_indirect {
                    // Compact migration (paper §IV-D): banks that have seen
                    // this stream keep its configuration; only the
                    // changing fields travel.
                    let revisit = self.state.streams[sid.0 as usize].visited_banks.contains(&bank);
                    let bytes = if self.cfg.se.compact_migration && revisit { 4 } else { 16 };
                    let t = self
                        .refs
                        .mesh
                        .send(issue, TileId(prev), TileId(bank), bytes, MsgClass::Offloaded);
                    issue = issue.max(t);
                    let core = self.state.core;
                    trace::emit(|| TraceEvent::StreamMigrate {
                        at: issue,
                        core,
                        stream: sid.0 as u16,
                        from_bank: prev,
                        to_bank: bank,
                    });
                }
                self.state.streams[sid.0 as usize].current_bank = bank;
            }
            self.state.streams[sid.0 as usize].visited_banks.insert(bank);
        }
        let full_line = self.full_line_store(sid);
        let done = self
            .refs
            .mem
            .l3_stream_access_opts(issue, addr, kind, full_line, self.refs.mesh);
        let rt = &mut self.state.streams[sid.0 as usize];
        rt.se_line = Some(line);
        rt.se_line_done = done;
        done
    }

    /// Near-stream computation at the serving tile: scalar PE for simple
    /// ops, SCM contexts otherwise (paper §III-C / §IV-B "Compute in
    /// SE_L3").
    fn near_compute(&mut self, tile: u16, ready: Cycle, uops: u32, needs_scm: bool, sid: StreamId) -> Cycle {
        if uops == 0 {
            return ready;
        }
        let se = &self.cfg.se;
        if !needs_scm && se.scalar_pe {
            self.state.uops_se += uops as f64;
            let done = ready + se.scalar_pe_latency + uops as u64;
            metrics::profile(Prof::ScmCompute, done.raw().saturating_sub(ready.raw()));
            return done;
        }
        // SCM path: issue latency plus throughput bounded by the SCC ROB.
        self.state.uops_scm += uops as f64;
        let throughput = (se.scc_rob as f64 / 16.0).clamp(0.5, 4.0) * se.n_scc as f64 / 2.0;
        let occ_f = uops as f64 / throughput / self.vw();
        let rt = &mut self.state.streams[sid.0 as usize];
        rt.scm_frac += occ_f;
        let occ = rt.scm_frac.floor() as u64;
        rt.scm_frac -= occ as f64;
        let done = self.refs.scm[tile as usize].book(ready + se.scm_issue_latency, occ.max(1));
        trace::sample("se.scm_busy", tile, done, || {
            self.refs.scm[tile as usize].total_booked() as f64
        });
        metrics::profile(Prof::ScmCompute, (done + 1).raw().saturating_sub(ready.raw()));
        done + 1
    }

    /// Synchronization boundary processing every R elements
    /// (paper Figure 7(a)).
    fn sync_boundary(&mut self, sid: StreamId, role: ComputeClass, irregular: bool, elem_done: Cycle) {
        if !self.state.streams[sid.0 as usize].sync_leader {
            return;
        }
        // Boundaries every R outer iterations (paper §IV-B: "after
        // collecting ranges for a few iterations (currently 8)"); a
        // vectorized hardware iteration covers vector_width elements.
        let r = (self.cfg.se.range_granularity * self.compiled.vector_width) as u64;
        let cur = self.state.cur_iter;
        let core_tile = self.core_tile();
        let (bank, fire) = {
            let rt = &mut self.state.streams[sid.0 as usize];
            if cur.saturating_sub(rt.last_sync_iter) < r {
                (0, false)
            } else {
                rt.last_sync_iter = cur;
                (rt.current_bank, true)
            }
        };
        if !fire {
            return;
        }
        let bank_tile = TileId(bank);
        let now = self.state.now;
        let core = self.state.core;
        trace::emit(|| TraceEvent::RangeSync {
            at: now,
            core,
            stream: sid.0 as u16,
            phase: SyncPhase::Acquire,
        });
        match self.mode {
            ExecMode::Ns => {
                // Credits core -> SE_L3.
                let t_credit =
                    self.refs.mesh.send(now, core_tile, bank_tile, 8, MsgClass::Offloaded);
                metrics::profile(Prof::SyncBoundary, t_credit.raw().saturating_sub(now.raw()));
                // Range report SE_L3 -> core (affine ranges are built at
                // SE_core by default, Figure 15).
                if irregular || !self.cfg.se.affine_ranges_at_core {
                    self.refs
                        .mesh
                        .send(elem_done, bank_tile, core_tile, 16, MsgClass::Offloaded);
                }
                if role.writes() {
                    // Commit message, then a "done" reply releasing credits.
                    let t_commit = self.refs.mesh.send(
                        now.max(elem_done),
                        core_tile,
                        bank_tile,
                        8,
                        MsgClass::Offloaded,
                    );
                    let t_done =
                        self.refs
                            .mesh
                            .send(t_commit, bank_tile, core_tile, 8, MsgClass::Offloaded);
                    trace::emit(|| TraceEvent::RangeSync {
                        at: t_done,
                        core,
                        stream: sid.0 as u16,
                        phase: SyncPhase::Release,
                    });
                    let rt = &mut self.state.streams[sid.0 as usize];
                    // Double-buffered credits: this batch's commit only
                    // gates the batch after next.
                    rt.resume_after = rt.pending_commit;
                    rt.pending_commit = t_commit;
                    rt.commit_rtt = (t_done - now.max(elem_done)).raw().max(1);
                }
            }
            ExecMode::NsNoSync | ExecMode::NsDecouple => {
                // Progress/credit message only (paper §V: "streams still
                // report their progress to SE_core").
                let t_credit =
                    self.refs.mesh.send(now, core_tile, bank_tile, 8, MsgClass::Offloaded);
                metrics::profile(Prof::SyncBoundary, t_credit.raw().saturating_sub(now.raw()));
            }
            _ => {}
        }
    }

    /// Shared per-access timing dispatch. Returns when the value is
    /// available to the core (loads) or when the core may proceed.
    #[allow(clippy::too_many_arguments)]
    fn charge(
        &mut self,
        stmt: StmtId,
        addr: Addr,
        bytes: u8,
        kind: AccessKind,
        role_hint: ComputeClass,
        modifies: bool,
    ) -> Cycle {
        let cost = self
            .compiled
            .site_cost_vec
            .get(stmt.0 as usize)
            .copied()
            .unwrap_or_default();
        let sid = self
            .compiled
            .stream_vec
            .get(stmt.0 as usize)
            .copied()
            .flatten();
        let vw = self.vw();
        let base_uops = (1.0 + cost.addr_uops as f64 + cost.core_uops_base as f64) / vw;
        self.state.total_uops += base_uops;

        let style = sid
            .map(|s| self.state.streams[s.0 as usize].effective_style())
            .unwrap_or(OffloadStyle::CoreAccess);
        let stream_role = sid.map(|s| self.compiled.streams[s.0 as usize].role);

        if let (Some(s), Some(role)) = (sid, stream_role) {
            self.state.stream_elems += 1;
            let absorbed = (cost.core_uops_base - cost.core_uops_resid).max(0.0) as f64;
            let assoc = (1.0 + cost.addr_uops as f64 + absorbed) / vw;
            self.state.roles.assoc[role_index(role)] += assoc;
            if style.is_near_data() || style == OffloadStyle::FloatLoad {
                self.state.roles.offloaded[role_index(role)] += assoc;
                self.state.offloaded_elems += 1;
            }
            self.state.streams[s.0 as usize].consumed += 1;
        }

        let t0 = self.state.now;
        let done = match style {
            OffloadStyle::CoreAccess => self.do_core_access(addr, bytes, kind, cost, sid),
            OffloadStyle::CorePrefetch => self.do_core_prefetch(addr, kind, cost, sid.expect("streamed")),
            OffloadStyle::FloatLoad => self.do_float_load(addr, cost, sid.expect("streamed")),
            OffloadStyle::NearStream => {
                self.do_near_stream(addr, bytes, kind, cost, sid.expect("streamed"), modifies)
            }
            OffloadStyle::PerIteration => {
                self.do_per_iteration(addr, kind, cost, sid.expect("streamed"), modifies, role_hint)
            }
            OffloadStyle::ChainedLine => {
                self.do_chained_line(addr, kind, cost, sid.expect("streamed"), modifies)
            }
        };
        let (dm, dp) = match style {
            OffloadStyle::CoreAccess => (Metric::DispatchCoreAccess, Prof::EngineCoreAccess),
            OffloadStyle::CorePrefetch => (Metric::DispatchCorePrefetch, Prof::EngineCorePrefetch),
            OffloadStyle::FloatLoad => (Metric::DispatchFloatLoad, Prof::EngineFloatLoad),
            OffloadStyle::NearStream => (Metric::DispatchNearStream, Prof::EngineNearStream),
            OffloadStyle::PerIteration => (Metric::DispatchPerIteration, Prof::EnginePerIteration),
            OffloadStyle::ChainedLine => (Metric::DispatchChainedLine, Prof::EngineChainedLine),
        };
        metrics::count(dm);
        metrics::profile(dp, done.raw().saturating_sub(t0.raw()));
        if let Some(s) = sid {
            let core = self.state.core;
            let bank = self.state.streams[s.0 as usize].current_bank;
            let end = self.state.streams[s.0 as usize].last_completion.max(t0);
            trace::emit(|| TraceEvent::StreamStep {
                start: t0,
                end,
                core,
                stream: s.0 as u16,
                bank,
            });
        }
        done
    }

    fn do_core_access(
        &mut self,
        addr: Addr,
        bytes: u8,
        kind: AccessKind,
        cost: nsc_compiler::SiteCost,
        sid: Option<StreamId>,
    ) -> Cycle {
        // Range-sync alias check against offloaded streams (paper §IV-B
        // "Precise State").
        if self.mode.range_sync() {
            if let Some(victim) = self.state.ranges.check_core_access(addr, bytes as u64) {
                self.state.streams[victim.0 as usize].aliased = true;
                self.state.ranges.remove(victim);
                self.state.alias_flushes = self.state.alias_flushes.saturating_add(1);
                self.state.now += ALIAS_FLUSH_PENALTY;
                let (at, core) = (self.state.now, self.state.core);
                trace::emit(|| TraceEvent::RangeSync {
                    at,
                    core,
                    stream: victim.0 as u16,
                    phase: SyncPhase::Conflict,
                });
            } else if fault::inject(FaultSite::AliasMisSpec) {
                // Forced alias-filter false positive (chaos mode): drain
                // the stream's in-flight window and replay it. Unlike a
                // true alias the stream stays offloaded — the filter was
                // wrong, not the program — so only timing is lost.
                if let Some(v) = self
                    .state
                    .streams
                    .iter()
                    .position(|rt| rt.effective_style().is_near_data())
                {
                    let rt = &mut self.state.streams[v];
                    rt.recent.clear();
                    rt.se_line = None;
                    rt.last_line = None;
                    self.state.rangesync_replays = self.state.rangesync_replays.saturating_add(1);
                    self.state.now += ALIAS_FLUSH_PENALTY;
                    let (at, core) = (self.state.now, self.state.core);
                    trace::emit(|| TraceEvent::Fault {
                        at,
                        core,
                        site: FaultSite::AliasMisSpec.label(),
                    });
                    trace::emit(|| TraceEvent::Recovery {
                        at,
                        core,
                        stream: v as u16,
                        action: "replay",
                    });
                }
            }
        }
        // PEB disambiguation: a core store that aliases in-core prefetched
        // stream data flushes and reissues those elements (paper §III-C).
        if kind.is_write() && self.mode.uses_streams() {
            for rt in self.state.streams.iter_mut() {
                if rt.effective_style() == OffloadStyle::CorePrefetch
                    && rt.peb_range.touches(addr, bytes as u64)
                {
                    rt.peb_range = nsc_mem::addr::AddrRange::empty();
                    rt.peb_count = 0;
                    // Reissue: the stream loses its buffered lead.
                    rt.recent.clear();
                    rt.se_line = None;
                    self.state.peb_flushes = self.state.peb_flushes.saturating_add(1);
                    self.state.now += 20;
                }
            }
        }
        let uops = (1.0 + cost.addr_uops as f64 + cost.core_uops_base as f64) / self.vw();
        self.state.charge_core_uops(uops, self.cfg.core.width);
        let mut issue = self.state.now;
        // Dependence on an earlier stream element (indirect base value).
        if let Some(s) = sid {
            if let AddrPatternClass::Indirect { base } = self.compiled.streams[s.0 as usize].pattern {
                issue = issue.max(self.state.streams[base.0 as usize].last_completion);
            }
        }
        let (completion, served) = self
            .refs
            .mem
            .access_classified(issue, self.state.core, addr, kind, self.refs.mesh);
        if kind == AccessKind::Load {
            self.state.load_slot(self.cfg.core.lq, completion);
        }
        self.state.note_completion(completion);
        if let Some(s) = sid {
            self.state.streams[s.0 as usize].last_completion = completion;
            // Deferred offload: SE_core monitors the probe window and
            // offloads high-miss/no-reuse streams (paper §IV-B "records
            // its miss and reuse rate in the private cache").
            let rt = &mut self.state.streams[s.0 as usize];
            if let Some(target) = rt.deferred {
                // Streaming data misses once per distinct line; reused
                // data revisits lines and hits; *contended* data revisits
                // lines but keeps missing (invalidated by other cores).
                rt.probe_total += 1;
                if rt.probe_lines.insert(addr.line().raw()) {
                    rt.probe_accesses += 1;
                }
                if served > nsc_mem::ServedBy::L2 {
                    rt.probe_misses += 1;
                }
                let window_done = rt.probe_accesses >= rt.probe_window
                    || rt.probe_total >= 16 * rt.probe_window;
                if window_done {
                    // Streaming: misses track distinct lines. Contention:
                    // misses track total accesses. Reuse: neither.
                    let streaming = rt.probe_accesses >= rt.probe_window
                        && rt.probe_misses as f64 >= 0.4 * rt.probe_accesses as f64;
                    let contended = rt.probe_misses as f64 >= 0.25 * rt.probe_total as f64;
                    rt.deferred = None;
                    rt.probe_lines.clear();
                    if streaming || contended {
                        let bank = rt.current_bank;
                        let (at, core) = (self.state.now, self.state.core);
                        trace::emit(|| TraceEvent::OffloadDecision {
                            at,
                            core,
                            stream: s.0 as u16,
                            style: target.label(),
                            reason: if streaming { "probe-streaming" } else { "probe-contended" },
                        });
                        let (outcome, hs_retries) = offload_config_handshake(
                            self.refs.mesh,
                            self.state.now,
                            TileId(core),
                            bank,
                            self.cfg.mem.n_banks(),
                            &self.cfg.se,
                            s.0 as u16,
                        );
                        self.state.offload_retries = self.state.offload_retries.saturating_add(hs_retries);
                        if let Some((final_bank, t)) = outcome {
                            {
                                let rt = &mut self.state.streams[s.0 as usize];
                                rt.style = target;
                                rt.current_bank = final_bank;
                                rt.config_time = t;
                            }
                            // The verdict applies to the whole co-located
                            // group: followers share the leader's fate (a
                            // stencil's taps stand or fall together).
                            let me = &self.compiled.streams[s.0 as usize];
                            let (arr, depth, irr) = (me.array, me.loop_depth, me.is_irregular());
                            for (o, info) in self.compiled.streams.iter().enumerate() {
                                if o != s.0 as usize
                                    && info.array == arr
                                    && info.loop_depth == depth
                                    && info.is_irregular() == irr
                                    && self.state.streams[o].deferred.is_some()
                                {
                                    self.state.streams[o].deferred = None;
                                    self.state.streams[o].style = target;
                                    self.state.streams[o].config_time = t;
                                }
                            }
                        } else {
                            // Handshake exhausted: the stream keeps running
                            // in-core for the rest of this kernel.
                            self.state.offload_fallbacks = self.state.offload_fallbacks.saturating_add(1);
                        }
                    }
                }
            }
        }
        completion
    }

    fn do_core_prefetch(
        &mut self,
        addr: Addr,
        kind: AccessKind,
        cost: nsc_compiler::SiteCost,
        sid: StreamId,
    ) -> Cycle {
        // SE_core generates the address and prefetches ahead; data still
        // flows through the private caches to the core.
        self.state.uops_se += cost.addr_uops as f64 / self.vw();
        let uops = (1.0 + cost.core_uops_base as f64) / self.vw();
        self.state.charge_core_uops(uops, self.cfg.core.width);
        let mut pf_issue = self.runahead_issue(sid);
        if let AddrPatternClass::Indirect { base } = self.compiled.streams[sid.0 as usize].pattern {
            pf_issue = pf_issue.max(self.state.streams[base.0 as usize].last_completion);
        }
        if self.compiled.streams[sid.0 as usize].pattern == AddrPatternClass::PointerChase {
            pf_issue = pf_issue.max(self.state.streams[sid.0 as usize].last_completion);
        }
        let completion = self
            .refs
            .mem
            .access(pf_issue, self.state.core, addr, kind, self.refs.mesh);
        let ready = completion.max(self.state.now + self.cfg.mem.l1.latency.raw());
        if kind == AccessKind::Load {
            self.state.load_slot(self.cfg.core.lq, ready);
        }
        self.state.note_completion(ready);
        {
            // Track the window of prefetched-but-unordered elements in the
            // PEB (a logical load-queue extension; paper §III-C).
            let d = self.cfg.se.runahead_elems;
            let rt = &mut self.state.streams[sid.0 as usize];
            rt.last_completion = completion;
            if rt.peb_count >= d {
                rt.peb_range = nsc_mem::addr::AddrRange::empty();
                rt.peb_count = 0;
            }
            rt.peb_range.extend(addr, self.refs.data.access_bytes(
                self.compiled.streams[sid.0 as usize].array,
                None,
            ) as u64);
            rt.peb_count += 1;
        }
        ready
    }

    fn do_float_load(&mut self, addr: Addr, cost: nsc_compiler::SiteCost, sid: StreamId) -> Cycle {
        // Stream floated to L3: SE_L3 reads the line and forwards it to
        // the core, bypassing the private hierarchy.
        self.state.uops_se += (1.0 + cost.addr_uops as f64) / self.vw();
        let uops = (1.0 + cost.core_uops_base as f64) / self.vw();
        self.state.charge_core_uops(uops, self.cfg.core.width);
        let mut issue = self.runahead_issue(sid);
        if let AddrPatternClass::Indirect { base } = self.compiled.streams[sid.0 as usize].pattern {
            issue = issue.max(self.state.streams[base.0 as usize].last_completion);
        }
        let bank_done = self.l3_elem(sid, addr, AccessKind::Load, issue);
        let line = addr.line();
        let core_tile = self.core_tile();
        let (send_needed, bank) = {
            let rt = &mut self.state.streams[sid.0 as usize];
            let changed = rt.last_line != Some(line);
            rt.last_line = Some(line);
            (changed, rt.current_bank)
        };
        // Co-located group followers ride the leader's forwarded line.
        let leader = self.state.streams[sid.0 as usize].sync_leader;
        let arrival = if send_needed && leader {
            let t = self
                .refs
                .mesh
                .send(bank_done, TileId(bank), core_tile, 64, MsgClass::Offloaded);
            self.state.streams[sid.0 as usize].dep_lat = (t - bank_done).raw();
            t
        } else {
            let lat = self.state.streams[sid.0 as usize].dep_lat.max(24);
            bank_done + lat
        };
        self.sync_boundary_credit_only(sid);
        let ready = arrival.max(self.state.now + 1);
        self.state.load_slot(self.cfg.core.lq, ready);
        self.state.note_completion(ready);
        self.state.streams[sid.0 as usize].last_completion = bank_done;
        ready
    }

    /// Flow-control credits for floated streams (every R elements).
    fn sync_boundary_credit_only(&mut self, sid: StreamId) {
        if !self.state.streams[sid.0 as usize].sync_leader {
            return;
        }
        let r = (self.cfg.se.range_granularity * self.compiled.vector_width) as u64;
        let core_tile = self.core_tile();
        let cur = self.state.cur_iter;
        let rt = &mut self.state.streams[sid.0 as usize];
        if cur.saturating_sub(rt.last_sync_iter) >= r {
            rt.last_sync_iter = cur;
            let bank = rt.current_bank;
            self.refs
                .mesh
                .send(self.state.now, core_tile, TileId(bank), 8, MsgClass::Offloaded);
        }
    }

    fn do_near_stream(
        &mut self,
        addr: Addr,
        bytes: u8,
        kind: AccessKind,
        cost: nsc_compiler::SiteCost,
        sid: StreamId,
        modifies: bool,
    ) -> Cycle {
        // Reborrow `compiled` at its full lifetime, detached from `self`:
        // the dependence list can then be iterated while `self` is mutated,
        // without cloning a Vec on every element.
        let compiled = self.compiled;
        let info = &compiled.streams[sid.0 as usize];
        let role = info.role;
        let pattern = info.pattern;
        let compute_uops = info.compute_uops;
        let needs_scm = info.needs_scm;
        let result_bytes = info.result_bytes;
        let value_deps = &info.value_deps;
        let forward_only = self.state.streams[sid.0 as usize].forward_only;
        let irregular = info.is_irregular();

        // Residual core work: streams execute autonomously; the core only
        // steps them (s_step) and runs non-absorbed compute.
        let core_uops = if self.decoupled {
            0.05
        } else {
            (0.2 + cost.core_uops_resid as f64) / self.vw()
        };
        self.state.uops_se += (1.0 + cost.addr_uops as f64) / self.vw();
        self.state.charge_core_uops(core_uops, self.cfg.core.width);

        // Issue time: run-ahead window, plus dependences.
        let mut issue = self.runahead_issue(sid);
        match pattern {
            AddrPatternClass::Indirect { base } => {
                // The base stream's bank generates the indirect request.
                let base_done = self.state.streams[base.0 as usize].last_completion;
                let base_bank = self.state.streams[base.0 as usize].current_bank;
                let target_bank = self.refs.mem.bank_of(addr.line());
                let t = self.refs.mesh.send(
                    issue.max(base_done),
                    TileId(base_bank),
                    TileId(target_bank),
                    16,
                    MsgClass::Offloaded,
                );
                issue = t;
            }
            AddrPatternClass::PointerChase => {
                issue = issue.max(self.state.streams[sid.0 as usize].last_completion);
            }
            AddrPatternClass::Affine { .. } => {}
        }

        // Operand forwarding for multi-operand stores/RMW (Figure 2(b)).
        let line = addr.line();
        let line_changed = self.state.streams[sid.0 as usize].last_line != Some(line);
        if role.writes() && !value_deps.is_empty() {
            let target_bank = self.refs.mem.bank_of(line);
            let depth = info.loop_depth;
            let base_array = match pattern {
                AddrPatternClass::Indirect { base } => Some(self.compiled.streams[base.0 as usize].array),
                _ => None,
            };
            let outer_marker: u64 = value_deps
                .iter()
                .filter(|d| self.compiled.streams[d.0 as usize].loop_depth < depth)
                .map(|d| self.state.streams[d.0 as usize].consumed)
                .sum();
            let outer_changed = {
                let rt = &mut self.state.streams[sid.0 as usize];
                let changed = rt.outer_dep_marker != outer_marker;
                rt.outer_dep_marker = outer_marker;
                changed
            };
            for dep in value_deps {
                let dep_info = &self.compiled.streams[dep.0 as usize];
                // Values co-located with the indirect base ride the
                // indirect request itself (paper §II-B: "A[i] is included
                // in such an indirect request").
                if Some(dep_info.array) == base_array {
                    let dep_done = self.state.streams[dep.0 as usize].last_completion;
                    issue = issue.max(dep_done);
                    continue;
                }
                let dep_done = self.state.streams[dep.0 as usize].last_completion;
                let dep_bank = self.state.streams[dep.0 as usize].current_bank;
                if dep_info.loop_depth < depth {
                    // Loop-invariant for the nested stream: forwarded once
                    // per outer iteration with the configuration (Fig 4d).
                    if outer_changed {
                        let t = self.refs.mesh.send(
                            dep_done,
                            TileId(dep_bank),
                            TileId(target_bank),
                            16,
                            MsgClass::Offloaded,
                        );
                        issue = issue.max(t);
                    }
                    continue;
                }
                // Overlapping taps of one array (stencil neighbours) share
                // a single forwarded line: only the group leader pays.
                let forwards = self.state.streams[dep.0 as usize].sync_leader;
                let arrival = if line_changed && forwards {
                    // One line-worth of operand data per line of the store.
                    let t = self.refs.mesh.send(
                        dep_done,
                        TileId(dep_bank),
                        TileId(target_bank),
                        64,
                        MsgClass::Offloaded,
                    );
                    self.state.streams[sid.0 as usize].dep_lat = (t - dep_done).raw();
                    t
                } else {
                    dep_done + self.state.streams[sid.0 as usize].dep_lat
                };
                issue = issue.max(arrival);
            }
        }
        self.state.streams[sid.0 as usize].last_line = Some(line);

        // The element's memory work at its bank.
        let bank_done = match role {
            ComputeClass::Atomic => {
                
                self.l3_elem_atomic(sid, addr, issue, modifies)
            }
            _ => self.l3_elem(sid, addr, kind, issue),
        };

        // Attached computation near the data.
        let bank = self.state.streams[sid.0 as usize].current_bank;
        let computed = self.near_compute(bank, bank_done, compute_uops, needs_scm, sid);
        self.state.streams[sid.0 as usize].last_completion = computed;
        // Credit-bounded autonomy: offloaded progress is tied to the
        // core's commit point (paper Figure 7 — the core allots credits as
        // it commits, so a stream can run at most the credit window ahead).
        // Feeding element completions into the in-order commit window
        // provides exactly that backpressure.
        self.state.note_completion(computed);

        // Range bookkeeping under range-sync. Relaxed atomics are exempt
        // from alias checks (paper §III-B: they may be reordered with
        // other accesses and must not be used for synchronization).
        if self.mode.range_sync() {
            if matches!(role, ComputeClass::Store | ComputeClass::Rmw) {
                self.state.ranges.record(sid, addr, bytes as u64);
            }
            // Atomics that return a value to the core keep their line
            // locked until the commit round-trip completes (paper §IV-C:
            // "the locked window is much longer if we have to send back
            // the value"). Result-free atomics issue after the commit and
            // lock only for the operation itself.
            if role == ComputeClass::Atomic && result_bytes > 0 {
                let rtt = self.state.streams[sid.0 as usize].commit_rtt;
                self.refs
                    .mem
                    .extend_lock(computed, addr, computed + rtt, modifies);
            }
        }
        self.sync_boundary(sid, role, irregular, computed);

        // What returns to the core?
        match role {
            ComputeClass::Store | ComputeClass::Rmw | ComputeClass::Reduce => {
                // Nothing per element.
                self.state.now
            }
            ComputeClass::Atomic if result_bytes == 0 => self.state.now,
            _ => {
                if forward_only {
                    self.state.now
                } else {
                    // Results batch into one message per 16 elements (the
                    // SE accumulates them in the stream buffer).
                    const RESP_BATCH: u32 = 16;
                    let core_tile = self.core_tile();
                    let arrival = {
                        let pend = {
                            let rt = &mut self.state.streams[sid.0 as usize];
                            rt.resp_pending += 1;
                            rt.resp_pending
                        };
                        if pend >= RESP_BATCH {
                            let t = self.refs.mesh.send(
                                computed,
                                TileId(bank),
                                core_tile,
                                (result_bytes.max(1) as u64) * RESP_BATCH as u64,
                                MsgClass::Offloaded,
                            );
                            let rt = &mut self.state.streams[sid.0 as usize];
                            rt.resp_pending = 0;
                            rt.resp_lat = (t - computed).raw().max(1);
                            t
                        } else {
                            computed + self.state.streams[sid.0 as usize].resp_lat
                        }
                    };
                    let ready = arrival.max(self.state.now + 1);
                    self.state.load_slot(self.cfg.core.lq, ready);
                    self.state.note_completion(ready);
                    ready
                }
            }
        }
    }

    /// Atomic element at its L3 bank, including migration bookkeeping.
    ///
    /// Consecutive atomics from the same stream to the same line proceed
    /// without re-acquiring the lock: they are ordered by the SE_L3
    /// (paper §IV-C "Atomics from the same stream can always proceed").
    fn l3_elem_atomic(&mut self, sid: StreamId, addr: Addr, issue: Cycle, modifies: bool) -> Cycle {
        let line = addr.line();
        let bank = self.refs.mem.bank_of(line);
        {
            let rt = &mut self.state.streams[sid.0 as usize];
            rt.visited_banks.insert(bank);
            rt.current_bank = bank;
            if rt.se_line == Some(line) {
                let done = rt.se_line_done.max(issue) + self.cfg.mem.atomic_op_cycles;
                rt.se_line_done = done;
                return done;
            }
        }
        let mut issue = issue;
        if fault::inject(FaultSite::BankStall) {
            let (at, core) = (issue, self.state.core);
            trace::emit(|| TraceEvent::Fault { at, core, site: FaultSite::BankStall.label() });
            issue += fault::penalty(FaultSite::BankStall);
        }
        let done = self.refs.mem.l3_atomic(issue, addr, modifies, self.refs.mesh);
        let rt = &mut self.state.streams[sid.0 as usize];
        rt.se_line = Some(line);
        rt.se_line_done = done;
        done
    }

    fn do_per_iteration(
        &mut self,
        addr: Addr,
        kind: AccessKind,
        cost: nsc_compiler::SiteCost,
        sid: StreamId,
        modifies: bool,
        _role_hint: ComputeClass,
    ) -> Cycle {
        // INST: one offload request per element, operands shipped with the
        // request, result/ack returned — no autonomy.
        let info = &self.compiled.streams[sid.0 as usize];
        let operand_bytes: u64 = info
            .value_deps
            .iter()
            .map(|d| self.compiled.streams[d.0 as usize].elem_bytes as u64)
            .sum();
        let compute_uops = info.compute_uops;
        let needs_scm = info.needs_scm;
        let role = info.role;
        let uops = (2.0 + cost.addr_uops as f64 + cost.core_uops_resid as f64) / self.vw();
        self.state.charge_core_uops(uops, self.cfg.core.width);
        let mut issue = self.state.now;
        if let AddrPatternClass::Indirect { base } = info.pattern {
            issue = issue.max(self.state.streams[base.0 as usize].last_completion);
        }
        let target = self.refs.mem.bank_tile(addr.line());
        let core_tile = self.core_tile();
        let t_req = self
            .refs
            .mesh
            .send(issue, core_tile, target, 32 + operand_bytes, MsgClass::Offloaded);
        let t_mem = match role {
            ComputeClass::Atomic => self.refs.mem.l3_atomic(t_req, addr, modifies, self.refs.mesh),
            _ => self.refs.mem.l3_stream_access(t_req, addr, kind, self.refs.mesh),
        };
        let bank = self.refs.mem.bank_of(addr.line());
        self.state.streams[sid.0 as usize].current_bank = bank;
        let t_comp = self.near_compute(bank, t_mem, compute_uops, needs_scm, sid);
        let t_ack = self
            .refs
            .mesh
            .send(t_comp, target, core_tile, 8, MsgClass::Offloaded);
        self.state.load_slot(self.cfg.core.lq, t_ack);
        self.state.note_completion(t_ack);
        self.state.streams[sid.0 as usize].last_completion = t_comp;
        t_ack
    }

    fn do_chained_line(
        &mut self,
        addr: Addr,
        kind: AccessKind,
        cost: nsc_compiler::SiteCost,
        sid: StreamId,
        modifies: bool,
    ) -> Cycle {
        // SINGLE: chained single-cache-line functions. Autonomous — the
        // next invocation is forwarded bank-to-bank — but one line at a
        // time and with no multi-operand support.
        let info = &self.compiled.streams[sid.0 as usize];
        let compute_uops = info.compute_uops;
        let needs_scm = info.needs_scm;
        let role = info.role;
        let pattern = info.pattern;
        let uops = (0.2 + cost.core_uops_resid as f64) / self.vw();
        self.state.uops_se += (1.0 + cost.addr_uops as f64) / self.vw();
        self.state.charge_core_uops(uops, self.cfg.core.width);

        let line = addr.line();
        let target_bank = self.refs.mem.bank_of(line);
        let mut issue = self.runahead_issue(sid);
        let (line_changed, prev_bank, first) = {
            let rt = &mut self.state.streams[sid.0 as usize];
            let changed = rt.last_line != Some(line);
            let first = rt.last_line.is_none();
            (changed, rt.current_bank, first)
        };
        if pattern == AddrPatternClass::PointerChase {
            issue = issue.max(self.state.streams[sid.0 as usize].last_completion);
        }
        if line_changed && self.state.streams[sid.0 as usize].sync_leader {
            // Invocation: from the core for the first line, chained
            // bank-to-bank afterwards.
            let from = if first { self.core_tile() } else { TileId(prev_bank) };
            let chain_ready = issue.max(self.state.streams[sid.0 as usize].last_completion);
            let t = self
                .refs
                .mesh
                .send(chain_ready, from, TileId(target_bank), 16, MsgClass::Offloaded);
            issue = issue.max(t);
        }
        {
            let rt = &mut self.state.streams[sid.0 as usize];
            rt.last_line = Some(line);
            rt.current_bank = target_bank;
            rt.visited_banks.insert(target_bank);
        }
        let t_mem = match role {
            ComputeClass::Atomic => self.refs.mem.l3_atomic(issue, addr, modifies, self.refs.mesh),
            _ => {
                let cached = self.state.streams[sid.0 as usize].se_line == Some(line);
                if cached {
                    self.state.streams[sid.0 as usize].se_line_done.max(issue)
                } else {
                    let done = self.refs.mem.l3_stream_access_opts(
                        issue,
                        addr,
                        kind,
                        self.full_line_store(sid),
                        self.refs.mesh,
                    );
                    let rt = &mut self.state.streams[sid.0 as usize];
                    rt.se_line = Some(line);
                    rt.se_line_done = done;
                    done
                }
            }
        };
        let t_comp = self.near_compute(target_bank, t_mem, compute_uops, needs_scm, sid);
        self.state.streams[sid.0 as usize].last_completion = t_comp;
        self.state.note_completion(t_comp);
        // Store/RMW/reduce: nothing returns per element (sync-free).
        self.state.now
    }
}

impl MemClient for Engine<'_, '_> {
    fn load(&mut self, stmt: StmtId, array: ArrayId, index: u64, field: Option<Field>) -> Scalar {
        let value = self.refs.data.read(array, index, field);
        let addr = Addr(self.refs.data.addr_of_field(array, index, field));
        let bytes = self.refs.data.access_bytes(array, field);
        self.charge(stmt, addr, bytes, AccessKind::Load, ComputeClass::Load, false);
        value
    }

    fn store(&mut self, stmt: StmtId, array: ArrayId, index: u64, field: Option<Field>, value: Scalar) {
        self.refs.data.write(array, index, field, value);
        let addr = Addr(self.refs.data.addr_of_field(array, index, field));
        let bytes = self.refs.data.access_bytes(array, field);
        self.charge(stmt, addr, bytes, AccessKind::Store, ComputeClass::Store, true);
    }

    fn atomic(
        &mut self,
        stmt: StmtId,
        array: ArrayId,
        index: u64,
        field: Option<Field>,
        op: AtomicOp,
        operand: Scalar,
        expected: Option<Scalar>,
    ) -> Scalar {
        let old = self.refs.data.read(array, index, field);
        let (new, modified) = op.apply(old, operand, expected);
        self.refs.data.write(array, index, field, new);
        let addr = Addr(self.refs.data.addr_of_field(array, index, field));
        let bytes = self.refs.data.access_bytes(array, field);
        self.charge(stmt, addr, bytes, AccessKind::Atomic, ComputeClass::Atomic, modified);
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn role_counters_merge_and_query() {
        let mut a = RoleCounters::default();
        a.assoc[role_index(ComputeClass::Load)] = 3.0;
        a.offloaded[role_index(ComputeClass::Load)] = 2.0;
        let mut b = RoleCounters::default();
        b.assoc[role_index(ComputeClass::Load)] = 1.0;
        a.merge(&b);
        assert_eq!(a.assoc_of(ComputeClass::Load), 4.0);
        assert_eq!(a.offloaded_of(ComputeClass::Load), 2.0);
        assert_eq!(a.assoc_of(ComputeClass::Store), 0.0);
    }

    #[test]
    fn aliased_stream_falls_back_in_core() {
        let mut rt = StreamRt::new();
        rt.style = crate::policy::OffloadStyle::NearStream;
        assert_eq!(rt.effective_style(), crate::policy::OffloadStyle::NearStream);
        rt.aliased = true;
        assert_eq!(rt.effective_style(), crate::policy::OffloadStyle::CoreAccess);
    }

    #[test]
    fn core_uop_charging_advances_time_fractionally() {
        let mut c = CoreState::new(0);
        c.begin_kernel(Cycle(100), 0);
        for _ in 0..8 {
            c.charge_core_uops(1.0, 8); // 8-wide: one cycle per 8 uops
        }
        assert_eq!(c.now, Cycle(101));
        assert_eq!(c.uops_core, 8.0);
    }

    #[test]
    fn iteration_window_applies_backpressure() {
        let mut c = CoreState::new(0);
        c.begin_kernel(Cycle::ZERO, 0);
        // Iterations that each "complete" far in the future: once the
        // window fills, `now` must jump to the oldest completion.
        for i in 0..10u64 {
            c.begin_iteration(4, false); // tiny ROB -> small window
            c.note_completion(Cycle(1000 * (i + 1)));
            c.charge_core_uops(10.0, 4);
            c.end_iteration();
        }
        assert!(c.now >= Cycle(1000), "window never constrained: now={}", c.now);
    }

    #[test]
    fn load_slots_bound_outstanding_loads() {
        let mut c = CoreState::new(0);
        c.begin_kernel(Cycle::ZERO, 0);
        for i in 0..4u64 {
            c.load_slot(4, Cycle(500 + i));
        }
        assert_eq!(c.now, Cycle::ZERO);
        c.load_slot(4, Cycle(900)); // fifth outstanding load stalls
        assert_eq!(c.now, Cycle(500));
    }

    #[test]
    fn kernel_reset_clears_stream_state() {
        let mut c = CoreState::new(3);
        c.begin_kernel(Cycle(10), 2);
        c.streams[0].consumed = 99;
        c.streams[0].aliased = true;
        c.begin_kernel(Cycle(20), 2);
        assert_eq!(c.streams[0].consumed, 0);
        assert!(!c.streams[0].aliased);
        assert_eq!(c.now, Cycle(20));
        assert_eq!(c.kernel_start, Cycle(20));
    }
}
