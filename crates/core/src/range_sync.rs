//! Range-based synchronization bookkeeping (paper §IV-B).
//!
//! Offloaded streams report conservative `[min, max)` address ranges; the
//! core checks its own accesses against them before committing, detecting
//! memory-ordering violations at per-data-structure granularity instead of
//! per access.

use nsc_ir::stream::StreamId;
use nsc_mem::addr::AddrRange;
use nsc_mem::Addr;

/// Tracks the touched ranges of a core's offloaded streams.
///
/// # Examples
///
/// ```
/// use near_stream::range_sync::RangeTracker;
/// use nsc_ir::stream::StreamId;
/// use nsc_mem::Addr;
///
/// let mut rt = RangeTracker::new();
/// rt.record(StreamId(0), Addr(1000), 8);
/// rt.record(StreamId(0), Addr(1400), 8);
/// // A core access inside the conservative range is a (possible) alias.
/// assert_eq!(rt.check_core_access(Addr(1200), 8), Some(StreamId(0)));
/// assert_eq!(rt.check_core_access(Addr(2000), 8), None);
/// ```
#[derive(Clone, Debug, Default)]
pub struct RangeTracker {
    /// Per-stream ranges, densely indexed by `StreamId` — `record` and the
    /// per-access checks are on the simulator's per-element hot path, so no
    /// hashing, and iteration order is fixed (HashMap order varies per
    /// process, which would make "first aliasing stream" nondeterministic).
    ranges: Vec<Option<AddrRange>>,
    false_sharing_checks: u64,
    aliases: u64,
}

impl RangeTracker {
    /// Creates an empty tracker.
    pub fn new() -> RangeTracker {
        RangeTracker::default()
    }

    /// Extends `stream`'s touched range with `[addr, addr+bytes)`.
    pub fn record(&mut self, stream: StreamId, addr: Addr, bytes: u64) {
        let i = stream.0 as usize;
        if i >= self.ranges.len() {
            self.ranges.resize(i + 1, None);
        }
        self.ranges[i]
            .get_or_insert_with(AddrRange::default)
            .extend(addr, bytes);
    }

    /// Checks a core access against all offloaded ranges; returns the first
    /// aliasing stream (lowest id). Conservative: range overlap counts as
    /// an alias even if the exact addresses differ (the paper accepts false
    /// positives).
    pub fn check_core_access(&mut self, addr: Addr, bytes: u64) -> Option<StreamId> {
        self.false_sharing_checks += 1;
        for (i, r) in self.ranges.iter().enumerate() {
            if let Some(r) = r {
                if r.touches(addr, bytes) {
                    self.aliases += 1;
                    return Some(StreamId(i as u8));
                }
            }
        }
        None
    }

    /// Checks for inter-stream aliasing; returns the first overlapping
    /// pair (lowest ids).
    pub fn check_inter_stream(&self) -> Option<(StreamId, StreamId)> {
        let items: Vec<(StreamId, &AddrRange)> = self
            .ranges
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (StreamId(i as u8), r)))
            .collect();
        for i in 0..items.len() {
            for j in i + 1..items.len() {
                if items[i].1.overlaps(items[j].1) {
                    return Some((items[i].0, items[j].0));
                }
            }
        }
        None
    }

    /// The touched range of a stream, if recorded.
    pub fn range_of(&self, stream: StreamId) -> Option<&AddrRange> {
        self.ranges.get(stream.0 as usize)?.as_ref()
    }

    /// Drops a stream (terminated or flushed).
    pub fn remove(&mut self, stream: StreamId) {
        if let Some(slot) = self.ranges.get_mut(stream.0 as usize) {
            *slot = None;
        }
    }

    /// Resets all ranges (kernel boundary). Keeps the allocation.
    pub fn clear(&mut self) {
        self.ranges.iter_mut().for_each(|r| *r = None);
    }

    /// Number of alias hits observed.
    pub fn aliases(&self) -> u64 {
        self.aliases
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disjoint_streams_no_alias() {
        let mut rt = RangeTracker::new();
        rt.record(StreamId(0), Addr(0), 64);
        rt.record(StreamId(1), Addr(1000), 64);
        assert_eq!(rt.check_inter_stream(), None);
        assert_eq!(rt.check_core_access(Addr(500), 8), None);
        assert_eq!(rt.aliases(), 0);
    }

    #[test]
    fn overlapping_streams_detected() {
        let mut rt = RangeTracker::new();
        rt.record(StreamId(0), Addr(0), 64);
        rt.record(StreamId(0), Addr(512), 64);
        rt.record(StreamId(1), Addr(100), 64);
        assert!(rt.check_inter_stream().is_some());
    }

    #[test]
    fn conservative_false_positive() {
        // Stream touched 0 and 512; a core access at 256 was never touched
        // but falls inside the conservative range.
        let mut rt = RangeTracker::new();
        rt.record(StreamId(3), Addr(0), 8);
        rt.record(StreamId(3), Addr(512), 8);
        assert_eq!(rt.check_core_access(Addr(256), 8), Some(StreamId(3)));
        assert_eq!(rt.aliases(), 1);
    }

    #[test]
    fn remove_and_clear() {
        let mut rt = RangeTracker::new();
        rt.record(StreamId(0), Addr(0), 64);
        rt.remove(StreamId(0));
        assert_eq!(rt.check_core_access(Addr(0), 8), None);
        rt.record(StreamId(1), Addr(0), 64);
        rt.clear();
        assert!(rt.range_of(StreamId(1)).is_none());
    }
}

/// Which conservative alias-summary structure range-sync uses.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum AliasFilterKind {
    /// `[min, max)` per-stream ranges (the paper's default).
    #[default]
    Range,
    /// Per-stream Bloom filters (the paper's footnote-2 alternative).
    Bloom,
}

/// A configurable alias filter: ranges or Bloom filters behind one
/// interface.
#[derive(Clone, Debug)]
pub enum AliasFilter {
    /// Range-based tracking.
    Range(RangeTracker),
    /// Bloom-filter tracking.
    Bloom(BloomTracker),
}

impl AliasFilter {
    /// Creates a filter of the given kind.
    pub fn new(kind: AliasFilterKind) -> AliasFilter {
        match kind {
            AliasFilterKind::Range => AliasFilter::Range(RangeTracker::new()),
            AliasFilterKind::Bloom => AliasFilter::Bloom(BloomTracker::new(2048)),
        }
    }

    /// Records a touched interval for `stream`.
    pub fn record(&mut self, stream: StreamId, addr: Addr, bytes: u64) {
        match self {
            AliasFilter::Range(t) => t.record(stream, addr, bytes),
            AliasFilter::Bloom(t) => t.record(stream, addr, bytes),
        }
    }

    /// Conservative core-access check.
    pub fn check_core_access(&mut self, addr: Addr, bytes: u64) -> Option<StreamId> {
        match self {
            AliasFilter::Range(t) => t.check_core_access(addr, bytes),
            AliasFilter::Bloom(t) => t.check_core_access(addr, bytes),
        }
    }

    /// Drops a stream's summary.
    pub fn remove(&mut self, stream: StreamId) {
        match self {
            AliasFilter::Range(t) => t.remove(stream),
            AliasFilter::Bloom(t) => t.remove(stream),
        }
    }

    /// Resets all summaries.
    pub fn clear(&mut self) {
        match self {
            AliasFilter::Range(t) => t.clear(),
            AliasFilter::Bloom(t) => t.clear(),
        }
    }
}

impl Default for AliasFilter {
    fn default() -> Self {
        AliasFilter::Range(RangeTracker::new())
    }
}

/// A Bloom-filter address-set tracker: the paper's footnote-2 alternative
/// to `[min, max)` ranges (as in BulkSC), trading more synchronization
/// state for far fewer false positives on strided or scattered streams —
/// and no reliance on per-data-structure physical contiguity.
///
/// # Examples
///
/// ```
/// use near_stream::range_sync::BloomTracker;
/// use nsc_ir::stream::StreamId;
/// use nsc_mem::Addr;
///
/// let mut bt = BloomTracker::new(1024);
/// bt.record(StreamId(0), Addr(0), 8);
/// bt.record(StreamId(0), Addr(4096), 8);
/// // A range tracker would flag everything in [0, 4104); the Bloom
/// // tracker only flags the touched lines.
/// assert!(bt.check_core_access(Addr(4), 4).is_some());
/// assert!(bt.check_core_access(Addr(2048), 8).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct BloomTracker {
    bits: usize,
    /// Per-stream filters, densely indexed by `StreamId` (see
    /// [`RangeTracker::ranges`] for why not a `HashMap`).
    filters: Vec<Option<Vec<u64>>>,
    aliases: u64,
}

impl BloomTracker {
    /// Creates a tracker with `bits` filter bits per stream (rounded up to
    /// a multiple of 64).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero.
    pub fn new(bits: usize) -> BloomTracker {
        assert!(bits > 0, "need at least one filter bit");
        BloomTracker {
            bits: bits.next_multiple_of(64),
            filters: Vec::new(),
            aliases: 0,
        }
    }

    fn hashes(&self, line: u64) -> [usize; 2] {
        let h1 = line.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let h2 = line.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ (line >> 17);
        [
            (h1 % self.bits as u64) as usize,
            (h2 % self.bits as u64) as usize,
        ]
    }

    fn lines_of(addr: Addr, bytes: u64) -> impl Iterator<Item = u64> {
        let first = addr.raw() / 64;
        let last = (addr.raw() + bytes.max(1) - 1) / 64;
        first..=last
    }

    /// Records that `stream` touched `[addr, addr+bytes)`.
    pub fn record(&mut self, stream: StreamId, addr: Addr, bytes: u64) {
        let bits = self.bits;
        let i = stream.0 as usize;
        if i >= self.filters.len() {
            self.filters.resize(i + 1, None);
        }
        let filter = self.filters[i].get_or_insert_with(|| vec![0u64; bits / 64]);
        for line in Self::lines_of(addr, bytes) {
            let h1 = line.wrapping_mul(0x9E37_79B9_7F4A_7C15) % bits as u64;
            let h2 = (line.wrapping_mul(0xC2B2_AE3D_27D4_EB4F) ^ (line >> 17)) % bits as u64;
            for h in [h1 as usize, h2 as usize] {
                filter[h / 64] |= 1 << (h % 64);
            }
        }
    }

    /// Checks a core access against all stream filters; returns the first
    /// (possibly false-positive) hit, lowest stream id first. Never returns
    /// a false negative.
    pub fn check_core_access(&mut self, addr: Addr, bytes: u64) -> Option<StreamId> {
        for (i, filter) in self.filters.iter().enumerate() {
            let Some(filter) = filter else { continue };
            let hit = Self::lines_of(addr, bytes).any(|line| {
                self.hashes(line)
                    .into_iter()
                    .all(|h| filter[h / 64] & (1 << (h % 64)) != 0)
            });
            if hit {
                self.aliases += 1;
                return Some(StreamId(i as u8));
            }
        }
        None
    }

    /// Drops a stream's filter.
    pub fn remove(&mut self, stream: StreamId) {
        if let Some(slot) = self.filters.get_mut(stream.0 as usize) {
            *slot = None;
        }
    }

    /// Resets all filters. Keeps the allocations.
    pub fn clear(&mut self) {
        self.filters.iter_mut().for_each(|f| *f = None);
    }

    /// Number of alias hits observed.
    pub fn aliases(&self) -> u64 {
        self.aliases
    }
}

#[cfg(test)]
mod bloom_tests {
    use super::*;

    #[test]
    fn no_false_negatives() {
        let mut bt = BloomTracker::new(256);
        for i in 0..100u64 {
            bt.record(StreamId(1), Addr(i * 640), 8);
        }
        for i in 0..100u64 {
            assert!(
                bt.check_core_access(Addr(i * 640), 8).is_some(),
                "missed touched address {i}"
            );
        }
    }

    #[test]
    fn fewer_false_positives_than_ranges_on_strided_data() {
        // Touch two far-apart regions; probe the untouched middle.
        let mut bt = BloomTracker::new(4096);
        let mut rt = RangeTracker::new();
        bt.record(StreamId(0), Addr(0), 64);
        rt.record(StreamId(0), Addr(0), 64);
        bt.record(StreamId(0), Addr(1 << 20), 64);
        rt.record(StreamId(0), Addr(1 << 20), 64);
        let mut bloom_fp = 0;
        let mut range_fp = 0;
        for i in 1..1000u64 {
            let probe = Addr(1024 * i); // inside the range hull, untouched
            if bt.check_core_access(probe, 8).is_some() {
                bloom_fp += 1;
            }
            if rt.check_core_access(probe, 8).is_some() {
                range_fp += 1;
            }
        }
        assert!(bloom_fp < range_fp / 10, "bloom {bloom_fp} vs range {range_fp}");
    }

    #[test]
    fn clear_and_remove() {
        let mut bt = BloomTracker::new(128);
        bt.record(StreamId(2), Addr(100), 8);
        bt.remove(StreamId(2));
        assert!(bt.check_core_access(Addr(100), 8).is_none());
        bt.record(StreamId(3), Addr(100), 8);
        bt.clear();
        assert!(bt.check_core_access(Addr(100), 8).is_none());
    }

    #[test]
    #[should_panic(expected = "at least one filter bit")]
    fn rejects_zero_bits() {
        let _ = BloomTracker::new(0);
    }
}
