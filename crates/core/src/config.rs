//! System configuration: core models, stream-engine parameters and
//! execution modes (paper Table V and §VI "Systems and Comparison").

use nsc_mem::MemoryConfig;
use nsc_noc::MeshConfig;
use nsc_sim::error::SimError;

/// A core timing model (Table V: IO4 / OOO4 / OOO8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CoreModel {
    /// Display name.
    pub name: &'static str,
    /// Fetch/issue/commit width.
    pub width: u32,
    /// Reorder-buffer entries (bounds cross-iteration overlap).
    pub rob: u32,
    /// Load-queue entries (bounds outstanding loads).
    pub lq: u32,
    /// Store-queue + store-buffer entries.
    pub sq: u32,
    /// Whether the core executes out of order.
    pub out_of_order: bool,
}

impl CoreModel {
    /// 4-issue in-order core (Table V IO4: 10 IQ, 4 LSQ, 10 SB).
    pub fn io4() -> CoreModel {
        CoreModel {
            name: "IO4",
            width: 4,
            rob: 10,
            lq: 4,
            sq: 10,
            out_of_order: false,
        }
    }

    /// 4-issue out-of-order core (Table V OOO4: 96 ROB, 24 LQ, 24 SQ).
    pub fn ooo4() -> CoreModel {
        CoreModel {
            name: "OOO4",
            width: 4,
            rob: 96,
            lq: 24,
            sq: 24,
            out_of_order: true,
        }
    }

    /// 8-issue out-of-order core (Table V OOO8: 224 ROB, 72 LQ, 56 SQ).
    pub fn ooo8() -> CoreModel {
        CoreModel {
            name: "OOO8",
            width: 8,
            rob: 224,
            lq: 72,
            sq: 56,
            out_of_order: true,
        }
    }

    /// All three models, for Figure 10 sweeps.
    pub fn all() -> [CoreModel; 3] {
        [CoreModel::io4(), CoreModel::ooo4(), CoreModel::ooo8()]
    }
}

/// Stream-engine parameters (Table V SE rows).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SeConfig {
    /// Prefetch/run-ahead distance per in-core stream, in elements
    /// ("16 pf. per stream").
    pub runahead_elems: u32,
    /// Run-ahead distance of an *offloaded* stream, in elements: the
    /// SE_L3 stream buffer holds 1 kB per core (Table V), i.e. ~128
    /// 8-byte elements in flight.
    pub l3_buffer_elems: u32,
    /// Range-synchronization granularity in iterations (paper §IV-B:
    /// "after collecting ranges for a few iterations (currently 8)").
    pub range_granularity: u32,
    /// Latency for SE_L3 to issue a computation to the local SCM (Fig 13;
    /// default 4 cycles).
    pub scm_issue_latency: u64,
    /// Total ROB entries across the stream computing contexts (Fig 14;
    /// default 64 for OOO8).
    pub scc_rob: u32,
    /// Number of SCCs (Table V: 2).
    pub n_scc: u32,
    /// Whether SE_core / SE_L3 have a scalar PE for simple ops (Fig 17).
    pub scalar_pe: bool,
    /// Scalar PE operation latency.
    pub scalar_pe_latency: u64,
    /// Whether affine ranges are generated at SE_core rather than sent by
    /// SE_L3 (Fig 15; default true).
    pub affine_ranges_at_core: bool,
    /// Minimum stream length (in multiples of the bank count) for
    /// offloading an indirect reduction (paper §IV-C: 4 x #banks).
    pub indirect_reduce_min_banks_factor: u64,
    /// Alias-summary structure for range synchronization (paper footnote
    /// 2 offers Bloom filters as the more precise alternative).
    pub alias_filter: crate::range_sync::AliasFilterKind,
    /// Compact migration: banks remember visited streams, so re-visits
    /// send only the changing fields (paper §IV-D, left as future work
    /// there).
    pub compact_migration: bool,
    /// Maximum stream-configure handshake retries after a NACK before
    /// recovery escalates (migrate to another bank, then fall back
    /// in-core). Only exercised under fault injection.
    pub offload_max_retries: u32,
    /// Backoff between handshake retries, in cycles; the n-th retry waits
    /// `n * offload_retry_backoff`.
    pub offload_retry_backoff: u64,
}

impl SeConfig {
    /// The paper's default configuration.
    pub fn paper_default() -> SeConfig {
        SeConfig {
            runahead_elems: 16,
            l3_buffer_elems: 128,
            range_granularity: 8,
            scm_issue_latency: 4,
            scc_rob: 64,
            n_scc: 2,
            scalar_pe: true,
            scalar_pe_latency: 1,
            affine_ranges_at_core: true,
            indirect_reduce_min_banks_factor: 4,
            alias_filter: crate::range_sync::AliasFilterKind::Range,
            compact_migration: false,
            offload_max_retries: 3,
            offload_retry_backoff: 64,
        }
    }
}

impl Default for SeConfig {
    fn default() -> Self {
        SeConfig::paper_default()
    }
}

/// The evaluated systems (paper §VI).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ExecMode {
    /// Baseline core with Bingo L1 prefetcher and L2 stride prefetcher.
    Base,
    /// Instruction/iteration-level near-data computing (Omni-Compute-like).
    Inst,
    /// Single-cache-line function offloading (Livia-like), sync-free.
    Single,
    /// In-core streams only (SSP-like stream prefetching).
    NsCore,
    /// Streams offloaded without computation (Stream-Floating-like).
    NsNoComp,
    /// Full near-stream computing with range synchronization.
    Ns,
    /// Near-stream computing with the sync-free pragma honored.
    NsNoSync,
    /// Sync-free plus fully-decoupled loop elimination.
    NsDecouple,
}

impl ExecMode {
    /// All modes in the paper's Figure 9 order.
    pub const ALL: [ExecMode; 8] = [
        ExecMode::Base,
        ExecMode::Inst,
        ExecMode::Single,
        ExecMode::NsCore,
        ExecMode::NsNoComp,
        ExecMode::Ns,
        ExecMode::NsNoSync,
        ExecMode::NsDecouple,
    ];

    /// Display label used in harness output.
    pub fn label(self) -> &'static str {
        match self {
            ExecMode::Base => "Base",
            ExecMode::Inst => "INST",
            ExecMode::Single => "SINGLE",
            ExecMode::NsCore => "NS-core",
            ExecMode::NsNoComp => "NS-nocomp",
            ExecMode::Ns => "NS",
            ExecMode::NsNoSync => "NS-nosync",
            ExecMode::NsDecouple => "NS-decouple",
        }
    }

    /// Parses a display label back into a mode (case-insensitive), the
    /// inverse of [`ExecMode::label`]. Used by the `nscd` wire protocol.
    pub fn parse(s: &str) -> Option<ExecMode> {
        ExecMode::ALL.into_iter().find(|m| m.label().eq_ignore_ascii_case(s))
    }

    /// Whether this mode uses any stream hardware.
    pub fn uses_streams(self) -> bool {
        !matches!(self, ExecMode::Base)
    }

    /// Whether range synchronization runs (only plain NS; the sync-free
    /// variants and the programmer-exposed SINGLE baseline skip it, and
    /// INST synchronizes per iteration instead).
    pub fn range_sync(self) -> bool {
        matches!(self, ExecMode::Ns)
    }

    /// Whether sync-free optimizations (paper §V) are active.
    pub fn sync_free(self) -> bool {
        matches!(self, ExecMode::NsNoSync | ExecMode::NsDecouple | ExecMode::Single)
    }
}

/// Full system configuration.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemConfig {
    /// Core model.
    pub core: CoreModel,
    /// Stream-engine parameters.
    pub se: SeConfig,
    /// Mesh parameters.
    pub mesh: MeshConfig,
    /// Memory hierarchy parameters.
    pub mem: MemoryConfig,
    /// Number of worker cores used for parallel kernels.
    pub n_cores: u16,
}

impl SystemConfig {
    /// The paper's 64-core OOO8 system.
    pub fn paper_ooo8() -> SystemConfig {
        SystemConfig {
            core: CoreModel::ooo8(),
            se: SeConfig::paper_default(),
            mesh: MeshConfig::paper_8x8(),
            mem: MemoryConfig::paper_64core(),
            n_cores: 64,
        }
    }

    /// A small 16-core system for fast tests.
    pub fn small() -> SystemConfig {
        SystemConfig {
            core: CoreModel::ooo8(),
            se: SeConfig::paper_default(),
            mesh: MeshConfig::small_4x4(),
            mem: MemoryConfig::small_16core(),
            n_cores: 16,
        }
    }

    /// Replaces the core model, keeping everything else.
    pub fn with_core(mut self, core: CoreModel) -> SystemConfig {
        self.core = core;
        self
    }

    /// Validates the whole system configuration up front, so a bad config
    /// surfaces as one [`SimError::Config`] naming the problem instead of
    /// a panic (or silent nonsense) deep inside a run.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.core.width == 0 || self.core.rob == 0 || self.core.lq == 0 || self.core.sq == 0 {
            return Err(SimError::config(format!(
                "core model {} must have non-zero width/rob/lq/sq",
                self.core.name
            )));
        }
        if self.n_cores == 0 {
            return Err(SimError::config("n_cores must be non-zero"));
        }
        self.mesh.validate()?;
        self.mem.validate()?;
        if self.n_cores > self.mem.n_cores {
            return Err(SimError::config(format!(
                "{} worker cores exceed the memory system's {} cores",
                self.n_cores, self.mem.n_cores
            )));
        }
        if self.mem.n_banks() > self.mesh.tiles() {
            return Err(SimError::config(format!(
                "{} L3 banks exceed the {} mesh tiles",
                self.mem.n_banks(),
                self.mesh.tiles()
            )));
        }
        if self.se.runahead_elems == 0 || self.se.l3_buffer_elems == 0 {
            return Err(SimError::config("stream run-ahead windows must be non-zero"));
        }
        if self.se.range_granularity == 0 {
            return Err(SimError::config("range-sync granularity must be non-zero"));
        }
        Ok(())
    }
}

impl Default for SystemConfig {
    fn default() -> Self {
        SystemConfig::paper_ooo8()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn models_match_table_v() {
        let io4 = CoreModel::io4();
        assert_eq!(io4.width, 4);
        assert!(!io4.out_of_order);
        let ooo8 = CoreModel::ooo8();
        assert_eq!(ooo8.rob, 224);
        assert_eq!(ooo8.lq, 72);
        assert_eq!(CoreModel::all().len(), 3);
    }

    #[test]
    fn mode_properties() {
        assert!(!ExecMode::Base.uses_streams());
        assert!(ExecMode::Ns.range_sync());
        assert!(!ExecMode::NsNoSync.range_sync());
        assert!(ExecMode::NsDecouple.sync_free());
        assert!(ExecMode::Single.sync_free());
        assert!(!ExecMode::Inst.sync_free());
        assert_eq!(ExecMode::ALL.len(), 8);
        for m in ExecMode::ALL {
            assert!(!m.label().is_empty());
            assert_eq!(ExecMode::parse(m.label()), Some(m));
        }
        assert_eq!(ExecMode::parse("ns"), Some(ExecMode::Ns));
        assert_eq!(ExecMode::parse("bogus"), None);
    }

    #[test]
    fn config_consistency() {
        let c = SystemConfig::paper_ooo8();
        assert_eq!(c.n_cores, 64);
        assert_eq!(c.mesh.tiles(), 64);
        assert_eq!(c.mem.n_banks(), 64);
        let s = SystemConfig::small().with_core(CoreModel::io4());
        assert_eq!(s.core.name, "IO4");
        assert_eq!(s.mesh.tiles(), 16);
    }

    #[test]
    fn stock_configs_validate() {
        assert!(SystemConfig::paper_ooo8().validate().is_ok());
        assert!(SystemConfig::small().validate().is_ok());
        assert!(SystemConfig::small().with_core(CoreModel::io4()).validate().is_ok());
    }

    #[test]
    fn validation_names_the_problem() {
        let mut c = SystemConfig::small();
        c.n_cores = 0;
        assert!(c.validate().unwrap_err().to_string().contains("n_cores"));

        let mut c = SystemConfig::small();
        c.n_cores = 17; // more worker cores than the 16-core memory system
        assert!(c.validate().unwrap_err().to_string().contains("worker cores"));

        let mut c = SystemConfig::small();
        c.mesh.width = 2;
        c.mesh.height = 2; // 4 tiles < 16 banks
        assert!(c.validate().unwrap_err().to_string().contains("mesh tiles"));

        let mut c = SystemConfig::small();
        c.core.lq = 0;
        assert!(c.validate().unwrap_err().to_string().contains("core model"));

        let mut c = SystemConfig::small();
        c.se.runahead_elems = 0;
        assert!(c.validate().unwrap_err().to_string().contains("run-ahead"));
    }
}
