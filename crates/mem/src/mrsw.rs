//! Line-granularity locks for near-data atomics, including the paper's
//! multi-reader/single-writer (MRSW) lock (§IV-C).
//!
//! To guarantee atomicity of offloaded read-modify-writes, the target cache
//! line is locked in the L3 and conflicting accesses are blocked. The paper
//! observes that many atomics do not change the value (failed
//! compare-exchange in `bfs`, non-lowering `min` in `sssp`) and can be
//! served concurrently by a hardware multi-reader/single-writer lock,
//! eliminating on average 97% of the contention.
//!
//! Lock occupancy is tracked with time-indexed ledgers (one per line) so
//! that acquisitions carrying out-of-order timestamps — cores at different
//! local times hammering one hot line — compete only with genuinely
//! overlapping holders, not with the call order.

use crate::addr::LineAddr;
use nsc_sim::resource::BandwidthLedger;
use nsc_sim::Cycle;
use std::collections::HashMap;

/// How an atomic operation acquires a line lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockKind {
    /// The operation modifies the value: exclusive access required.
    Exclusive,
    /// The operation leaves the value unchanged (e.g. failed CAS): may share
    /// the line with other readers under an MRSW lock.
    Shared,
}

/// Per-line lock occupancy table.
///
/// With `mrsw` disabled every acquisition is exclusive, reproducing the
/// paper's "exclusive lock" baseline of Figure 16. Exclusive holders
/// serialize on the line's occupancy ledger; shared holders (under MRSW)
/// are recorded but do not occupy it — the multi-reader case the hardware
/// serves concurrently from the coherence state.
///
/// # Examples
///
/// ```
/// use nsc_mem::{LockKind, MrswLockTable};
/// use nsc_mem::addr::LineAddr;
/// use nsc_sim::Cycle;
///
/// let mut locks = MrswLockTable::new(true);
/// let line = LineAddr(5);
/// // Two readers overlap freely...
/// assert_eq!(locks.acquire(Cycle(0), line, LockKind::Shared, 4), Cycle(0));
/// assert_eq!(locks.acquire(Cycle(0), line, LockKind::Shared, 4), Cycle(0));
/// // ...while writers serialize with each other.
/// let w1 = locks.acquire(Cycle(0), line, LockKind::Exclusive, 4);
/// let w2 = locks.acquire(Cycle(0), line, LockKind::Exclusive, 4);
/// assert!(w2 >= w1 + Cycle(4).raw());
/// ```
#[derive(Clone, Debug)]
pub struct MrswLockTable {
    mrsw: bool,
    lines: HashMap<LineAddr, BandwidthLedger>,
    acquisitions: u64,
    conflicts: u64,
    conflict_wait: u64,
}

impl MrswLockTable {
    /// Creates a lock table; `mrsw` selects the multi-reader optimization.
    pub fn new(mrsw: bool) -> MrswLockTable {
        MrswLockTable {
            mrsw,
            lines: HashMap::new(),
            acquisitions: 0,
            conflicts: 0,
            conflict_wait: 0,
        }
    }

    /// Whether the MRSW optimization is enabled.
    pub fn is_mrsw(&self) -> bool {
        self.mrsw
    }

    /// Acquires the lock on `line` for `dur` cycles starting no earlier than
    /// `now`; returns the actual start time.
    pub fn acquire(&mut self, now: Cycle, line: LineAddr, kind: LockKind, dur: u64) -> Cycle {
        self.acquisitions += 1;
        let effective = if self.mrsw { kind } else { LockKind::Exclusive };
        if effective == LockKind::Shared {
            // Multi-reader: served concurrently from the coherence state.
            return now;
        }
        let ledger = self
            .lines
            .entry(line)
            // One exclusive holder at a time: capacity = epoch length in
            // lock-cycles. Short window: locks are held for a few cycles.
            .or_insert_with(|| BandwidthLedger::with_window(16, 16, 512));
        let done = ledger.book(now, dur);
        let start = done - Cycle(dur);
        if start > now {
            self.conflicts += 1;
            self.conflict_wait += (start - now).raw();
        }
        start
    }

    /// Total acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Acquisitions that had to wait.
    pub fn conflicts(&self) -> u64 {
        self.conflicts
    }

    /// Total cycles spent waiting across all conflicts.
    pub fn conflict_wait_cycles(&self) -> u64 {
        self.conflict_wait
    }

    /// Fraction of acquisitions that conflicted, in `[0, 1]`.
    pub fn conflict_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.conflicts as f64 / self.acquisitions as f64
        }
    }

    /// Drops bookkeeping for lines not used recently. The ledgers window
    /// themselves, so this is only a memory release.
    pub fn retire_before(&mut self, _horizon: Cycle) {
        if self.lines.len() > 1 << 16 {
            self.lines.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_serializes() {
        let mut l = MrswLockTable::new(true);
        let line = LineAddr(1);
        let a = l.acquire(Cycle(0), line, LockKind::Exclusive, 10);
        let b = l.acquire(Cycle(0), line, LockKind::Exclusive, 10);
        assert_eq!(a, Cycle(0));
        assert!(b >= Cycle(10));
        assert_eq!(l.conflicts(), 1);
        assert!(l.conflict_wait_cycles() >= 10);
    }

    #[test]
    fn readers_share_under_mrsw() {
        let mut l = MrswLockTable::new(true);
        let line = LineAddr(1);
        for _ in 0..10 {
            assert_eq!(l.acquire(Cycle(0), line, LockKind::Shared, 5), Cycle(0));
        }
        assert_eq!(l.conflicts(), 0);
    }

    #[test]
    fn exclusive_mode_ignores_shared_hint() {
        let mut l = MrswLockTable::new(false);
        let line = LineAddr(3);
        let a = l.acquire(Cycle(0), line, LockKind::Shared, 5);
        let b = l.acquire(Cycle(0), line, LockKind::Shared, 5);
        assert_eq!(a, Cycle(0));
        assert!(b >= Cycle(5));
        assert_eq!(l.conflicts(), 1);
    }

    #[test]
    fn different_lines_independent() {
        let mut l = MrswLockTable::new(false);
        assert_eq!(l.acquire(Cycle(0), LineAddr(1), LockKind::Exclusive, 100), Cycle(0));
        assert_eq!(l.acquire(Cycle(0), LineAddr(2), LockKind::Exclusive, 100), Cycle(0));
        assert_eq!(l.conflict_rate(), 0.0);
    }

    #[test]
    fn out_of_order_acquisitions_do_not_cascade() {
        // A far-future holder must not delay an earlier one (the hot-line
        // case with cores at divergent local times).
        let mut l = MrswLockTable::new(true);
        let line = LineAddr(9);
        let far = l.acquire(Cycle(5_000), line, LockKind::Exclusive, 4);
        assert!(far >= Cycle(5_000));
        let near = l.acquire(Cycle(0), line, LockKind::Exclusive, 4);
        assert!(near < Cycle(100), "near acquisition delayed to {near}");
    }

    #[test]
    fn conflict_rate_empty_is_zero() {
        let l = MrswLockTable::new(true);
        assert_eq!(l.conflict_rate(), 0.0);
    }
}
