//! Coherent memory-hierarchy model for the near-stream computing suite.
//!
//! Implements the paper's Table V memory system: per-core L1D and private L2
//! caches with Bimodal-RRIP replacement, a shared static-NUCA L3 (1 MB/bank,
//! 64 B line interleave across tiles) with a MESI directory, four corner DRAM
//! controllers, a multi-reader/single-writer (MRSW) line lock table for
//! near-data atomics (paper §IV-C), a Bingo-like spatial prefetcher at L1 and
//! a stride prefetcher at L2.
//!
//! The hierarchy is a *passive timing model*: each access resolves its full
//! path synchronously, charging NoC messages to an [`nsc_noc::Mesh`] and
//! returning the completion time. This composes hit/miss behaviour,
//! coherence transactions, bank interleaving and DRAM bandwidth without
//! simulating transient coherence states.
//!
//! # Examples
//!
//! ```
//! use nsc_mem::{Addr, AccessKind, MemoryConfig, MemorySystem};
//! use nsc_noc::{Mesh, MeshConfig};
//! use nsc_sim::Cycle;
//!
//! let mut mesh = Mesh::new(MeshConfig::paper_8x8());
//! let mut mem = MemorySystem::new(MemoryConfig::paper_64core());
//! let done = mem.access(Cycle(0), 0, Addr(0x1000), AccessKind::Load, &mut mesh);
//! assert!(done > Cycle(0)); // cold miss goes to DRAM
//! let again = mem.access(done, 0, Addr(0x1000), AccessKind::Load, &mut mesh);
//! assert_eq!(again, done + mem.config().l1.latency); // now an L1 hit
//! ```

pub mod addr;
pub mod cache;
pub mod config;
pub mod dram;
pub mod mrsw;
pub mod prefetch;
pub mod stats;
pub mod system;
pub mod tlb;

pub use addr::{Addr, LineAddr, LINE_BYTES};
pub use cache::{Cache, CacheConfig, ReplacePolicy};
pub use config::MemoryConfig;
pub use mrsw::{LockKind, MrswLockTable};
pub use stats::MemStats;
pub use tlb::Tlb;
pub use system::{AccessKind, MemorySystem, ServedBy};
