//! The coherent memory system: private hierarchies, MESI directory at NUCA
//! L3 banks, DRAM, prefetchers and near-data access paths.

use crate::addr::{Addr, LineAddr, LINE_BYTES};
use crate::cache::Cache;
use crate::config::MemoryConfig;
use crate::dram::Dram;
use crate::mrsw::{LockKind, MrswLockTable};
use crate::prefetch::{SpatialPrefetcher, StridePrefetcher};
use crate::stats::MemStats;
use nsc_noc::{Mesh, MsgClass, TileId};
use nsc_sim::error::SimError;
use nsc_sim::fault::{self, FaultSite};
use nsc_sim::metrics::{self, Metric, Prof};
use nsc_sim::trace::{self, TraceEvent, TraceLevel, SE_L3_CORE};
use nsc_sim::{resource::BandwidthLedger, Cycle};
use std::collections::{HashMap, HashSet};

/// Kind of a demand memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessKind {
    /// Read.
    Load,
    /// Write (write-allocate, fetch-exclusive).
    Store,
    /// Read-modify-write executed at the core (needs exclusive ownership).
    Atomic,
}

impl AccessKind {
    /// Whether this access requires exclusive ownership.
    pub fn is_write(self) -> bool {
        !matches!(self, AccessKind::Load)
    }
}

impl ServedBy {
    /// The matching trace level for cache-access events.
    fn trace_level(self) -> TraceLevel {
        match self {
            ServedBy::L1 => TraceLevel::L1,
            ServedBy::L2 => TraceLevel::L2,
            ServedBy::L3 => TraceLevel::L3,
            ServedBy::Dram => TraceLevel::Dram,
        }
    }
}

/// Saturating stat bump that also feeds the live metrics registry (a
/// no-op relaxed load when no registry is installed).
#[inline]
fn bump(slot: &mut u64, m: Metric) {
    *slot = slot.saturating_add(1);
    metrics::count(m);
}

/// Which level ultimately served a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum ServedBy {
    /// Private L1 hit.
    L1,
    /// Private L2 hit.
    L2,
    /// Shared L3 hit (remote bank).
    L3,
    /// DRAM access.
    Dram,
}

/// Sharer-bitmask bit for a core; the SE_L3 sentinel (`u16::MAX`) has no bit.
#[inline]
fn core_bit(core: u16) -> u64 {
    if core < 64 {
        1 << core
    } else {
        0
    }
}

/// Directory entry for one line: MESI condensed to owner/sharers.
#[derive(Clone, Copy, Debug, Default)]
struct DirEntry {
    /// Core holding the line in M state, if any.
    owner: Option<u16>,
    /// Bitmask of cores that may hold the line in S state.
    sharers: u64,
}

struct PrivateHierarchy {
    l1: Cache,
    l2: Cache,
    tlb: crate::tlb::Tlb,
    spatial: SpatialPrefetcher,
    stride: StridePrefetcher,
    /// Lines brought in by prefetch and not yet demanded.
    prefetched: HashSet<LineAddr>,
}

/// The full memory system. See the crate-level documentation for the model
/// contract and an example.
pub struct MemorySystem {
    config: MemoryConfig,
    privates: Vec<PrivateHierarchy>,
    banks: Vec<Cache>,
    /// Per-bank tag/data port throughput (1 access per cycle).
    bank_ports: Vec<BandwidthLedger>,
    directory: HashMap<LineAddr, DirEntry>,
    dram: Dram,
    locks: MrswLockTable,
    /// SE_L3 TLBs, one per bank (paper §IV-B: the range unit listens to
    /// addresses translated by the colocated TLB; the SE caches the
    /// current translation, one access per page).
    se_tlbs: Vec<crate::tlb::Tlb>,
    stats: MemStats,
}

impl std::fmt::Debug for MemorySystem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MemorySystem")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .finish()
    }
}

impl MemorySystem {
    /// Creates a cold memory system.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`MemoryConfig::validate`]; use
    /// [`MemorySystem::try_new`] to handle invalid configs gracefully.
    pub fn new(config: MemoryConfig) -> MemorySystem {
        match MemorySystem::try_new(config) {
            Ok(m) => m,
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a cold memory system, validating the configuration first.
    pub fn try_new(config: MemoryConfig) -> Result<MemorySystem, SimError> {
        config.validate()?;
        let privates = (0..config.n_cores)
            .map(|_| PrivateHierarchy {
                l1: Cache::new(config.l1),
                l2: Cache::new(config.l2),
                tlb: crate::tlb::Tlb::new(
                    config.l2_tlb_entries,
                    16,
                    config.tlb_latency,
                    config.page_walk_latency,
                ),
                spatial: SpatialPrefetcher::new(256, 64),
                stride: StridePrefetcher::new(16, 4),
                prefetched: HashSet::new(),
            })
            .collect();
        // NUCA banks skip the bank-interleave bits when indexing sets.
        let bank_cfg = crate::cache::CacheConfig {
            set_skip_bits: config.n_banks().trailing_zeros(),
            ..config.l3_bank
        };
        let banks = (0..config.n_banks()).map(|_| Cache::new(bank_cfg)).collect();
        let bank_ports = (0..config.n_banks())
            .map(|_| BandwidthLedger::new(16, 16))
            .collect();
        let se_tlbs = (0..config.n_banks())
            .map(|_| {
                crate::tlb::Tlb::new(
                    config.se_tlb_entries,
                    16,
                    config.tlb_latency,
                    config.page_walk_latency,
                )
            })
            .collect();
        Ok(MemorySystem {
            bank_ports,
            se_tlbs,
            dram: Dram::new(config.dram, config.mesh_width, config.mesh_height),
            locks: MrswLockTable::new(config.mrsw_lock),
            privates,
            banks,
            directory: HashMap::new(),
            stats: MemStats::default(),
            config,
        })
    }

    /// The configuration in use.
    pub fn config(&self) -> &MemoryConfig {
        &self.config
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// The lock table (exposed for contention reporting, Figure 16).
    pub fn locks(&self) -> &MrswLockTable {
        &self.locks
    }

    /// The DRAM model (exposed for access counting).
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// The tile of a core's private hierarchy.
    pub fn core_tile(&self, core: u16) -> TileId {
        TileId(core)
    }

    /// The L3 bank index holding `line`.
    pub fn bank_of(&self, line: LineAddr) -> u16 {
        line.bank(self.config.n_banks() as u64) as u16
    }

    /// The tile of the L3 bank holding `line`.
    pub fn bank_tile(&self, line: LineAddr) -> TileId {
        TileId(self.bank_of(line))
    }

    /// Returns `true` if `core`'s private caches currently hold `line`.
    pub fn private_holds(&self, core: u16, line: LineAddr) -> bool {
        let p = &self.privates[core as usize];
        p.l1.contains(line) || p.l2.contains(line)
    }

    // ------------------------------------------------------------------
    // Demand path
    // ------------------------------------------------------------------

    /// Performs a demand access from `core` to `addr`, returning the
    /// completion time. All coherence and data messages are charged to
    /// `mesh`.
    pub fn access(
        &mut self,
        now: Cycle,
        core: u16,
        addr: Addr,
        kind: AccessKind,
        mesh: &mut Mesh,
    ) -> Cycle {
        self.access_classified(now, core, addr, kind, mesh).0
    }

    /// Like [`MemorySystem::access`] but also reports which level served it.
    pub fn access_classified(
        &mut self,
        now: Cycle,
        core: u16,
        addr: Addr,
        kind: AccessKind,
        mesh: &mut Mesh,
    ) -> (Cycle, ServedBy) {
        let (done, served) = self.access_inner(now, core, addr, kind, mesh);
        trace::emit(|| TraceEvent::CacheAccess {
            start: now,
            end: done,
            core,
            level: served.trace_level(),
            write: kind.is_write(),
        });
        (done, served)
    }

    fn access_inner(
        &mut self,
        now: Cycle,
        core: u16,
        addr: Addr,
        kind: AccessKind,
        mesh: &mut Mesh,
    ) -> (Cycle, ServedBy) {
        let line = addr.line();
        let needs_own = kind.is_write();
        // Writes require directory ownership even on a private hit
        // (upgrade); loads can be served locally.
        let owned = self
            .directory
            .get(&line)
            .map(|d| d.owner == Some(core))
            .unwrap_or(false);

        let l1_latency = self.config.l1.latency;
        let p = &mut self.privates[core as usize];

        // L1 lookup.
        if let Some(hit) = p.l1.lookup(line, now) {
            // Guard the set probe: with prefetching off (or idle) the set is
            // empty and every L1 hit would still pay a hash.
            if !p.prefetched.is_empty() && p.prefetched.remove(&line) {
                bump(&mut self.stats.prefetch_hits, Metric::MemPrefetchHits);
            }
            bump(&mut self.stats.l1_hits, Metric::MemL1Hits);
            metrics::profile(Prof::MemL1, l1_latency.raw());
            if !needs_own || owned {
                if needs_own {
                    p.l1.set_dirty(line);
                }
                return (now.max(hit.ready) + l1_latency, ServedBy::L1);
            }
            // Upgrade: invalidate other copies via the directory, keep data.
            let t = now.max(hit.ready) + l1_latency;
            let done = self.ownership_transaction(t, core, line, mesh, false);
            self.privates[core as usize].l1.set_dirty(line);
            return (done, ServedBy::L1);
        }
        bump(&mut self.stats.l1_misses, Metric::MemL1Misses);

        // Bingo-like spatial prefetch triggers on L1 demand misses.
        let pf_lines = if self.config.l1_spatial_prefetch {
            p.spatial.on_access(line, true)
        } else {
            Vec::new()
        };

        // L2 lookup.
        let t_l2 = now + l1_latency;
        let l2_latency = self.config.l2.latency;
        let p = &mut self.privates[core as usize];
        let l2_hit = p.l2.lookup(line, t_l2);
        let (data_at_core, served) = if let Some(hit) = l2_hit {
            bump(&mut self.stats.l2_hits, Metric::MemL2Hits);
            metrics::profile(Prof::MemL2, l2_latency.raw());
            let t = t_l2.max(hit.ready) + l2_latency;
            if needs_own && !owned {
                (self.ownership_transaction(t, core, line, mesh, false), ServedBy::L2)
            } else {
                (t, ServedBy::L2)
            }
        } else {
            bump(&mut self.stats.l2_misses, Metric::MemL2Misses);
            // L2 stride prefetch triggers on L2 demand misses.
            let stride_lines = if self.config.l2_stride_prefetch {
                p.stride.on_miss(line)
            } else {
                Vec::new()
            };
            for pl in stride_lines {
                self.prefetch_into_l2(t_l2 + l2_latency, core, pl, mesh);
            }
            // Translation: the L2 TLB is consulted in parallel with the
            // lookup; only a page walk adds latency (huge pages make this
            // rare).
            let p = &mut self.privates[core as usize];
            let before = p.tlb.misses();
            let t_xlat = p.tlb.translate(addr.raw(), t_l2);
            let t_req = if p.tlb.misses() > before {
                t_xlat.max(t_l2 + l2_latency)
            } else {
                t_l2 + l2_latency
            };
            let (t, served) = self.remote_fetch(t_req, core, line, needs_own, mesh);
            (t, served)
        };

        // Fill the private caches on a miss path.
        if served > ServedBy::L2 {
            self.fill_private(data_at_core, core, line, needs_own, mesh);
        } else if needs_own {
            // Write hit in L2: mark dirty, propagate into L1 on fill below.
            self.privates[core as usize].l2.set_dirty(line);
        }
        if served == ServedBy::L2 {
            // Move the line up into L1.
            self.fill_l1_only(data_at_core, core, line, needs_own);
        }

        // Launch spatial prefetches after the demand is underway.
        for pl in pf_lines {
            self.prefetch_into_l1(t_l2, core, pl, mesh);
        }
        (data_at_core, served)
    }

    /// Fetches a line from the L3/DRAM into a core, handling the directory.
    /// Returns (time data is at core, who served it).
    fn remote_fetch(
        &mut self,
        now: Cycle,
        core: u16,
        line: LineAddr,
        exclusive: bool,
        mesh: &mut Mesh,
    ) -> (Cycle, ServedBy) {
        let core_tile = self.core_tile(core);
        let bank_tile = self.bank_tile(line);
        // Request message.
        let t_bank = mesh.send(now, core_tile, bank_tile, 8, MsgClass::Control);
        let (t_data_at_bank, served) = self.bank_obtain_line(t_bank, line, core, exclusive, mesh);
        // Update directory for the requester.
        let entry = self.directory.entry(line).or_default();
        if exclusive {
            entry.owner = Some(core);
            entry.sharers = 0;
        } else {
            entry.owner = None;
            entry.sharers |= core_bit(core);
        }
        // Data response to the core.
        let t_core = mesh.send(t_data_at_bank, bank_tile, core_tile, LINE_BYTES, MsgClass::Data);
        (t_core, served)
    }

    /// Ensures the bank holds the current copy of `line`, invalidating or
    /// downgrading private copies as required. Returns (ready time, level).
    ///
    /// `for_core` is exempted from invalidation (it is the requester).
    fn bank_obtain_line(
        &mut self,
        now: Cycle,
        line: LineAddr,
        for_core: u16,
        exclusive: bool,
        mesh: &mut Mesh,
    ) -> (Cycle, ServedBy) {
        let bank_tile = self.bank_tile(line);
        // Bank port occupancy: one access-slot per request.
        let bank_idx = self.bank_of(line) as usize;
        let mut t = self.bank_ports[bank_idx].book(now, 1);
        trace::sample("l3.bank_busy", bank_idx as u16, t, || {
            self.bank_ports[bank_idx].total_booked() as f64
        });
        let entry = self.directory.get(&line).copied().unwrap_or_default();

        // Fetch from a remote owner if someone else holds M.
        if let Some(owner) = entry.owner {
            if owner != for_core {
                let owner_tile = self.core_tile(owner);
                let t_inv = mesh.send(t, bank_tile, owner_tile, 8, MsgClass::Control);
                let o = &mut self.privates[owner as usize];
                let had = o.l1.invalidate(line).is_some() | o.l2.invalidate(line).is_some();
                bump(&mut self.stats.invalidations, Metric::MemInvalidations);
                trace::emit(|| TraceEvent::Coherence {
                    at: t_inv,
                    core: owner,
                    line: line.0,
                    kind: "fetch-owner",
                });
                let t_back = mesh.send(t_inv, owner_tile, bank_tile, LINE_BYTES, MsgClass::Data);
                if had {
                    bump(&mut self.stats.private_writebacks, Metric::MemPrivateWritebacks);
                }
                // The returned data becomes a dirty L3 copy.
                self.l3_fill(t_back, line, true, mesh);
                let e = self.directory.entry(line).or_default();
                e.owner = None;
                t = t_back;
            }
        }

        // Invalidate other sharers when exclusivity is requested.
        if exclusive {
            let entry = self.directory.get(&line).copied().unwrap_or_default();
            let mut t_acks = t;
            for s in 0..self.config.n_cores {
                if s != for_core && entry.sharers & (1 << s) != 0 {
                    let s_tile = self.core_tile(s);
                    let t_inv = mesh.send(t, bank_tile, s_tile, 8, MsgClass::Control);
                    let p = &mut self.privates[s as usize];
                    p.l1.invalidate(line);
                    p.l2.invalidate(line);
                    bump(&mut self.stats.invalidations, Metric::MemInvalidations);
                    trace::emit(|| TraceEvent::Coherence {
                        at: t_inv,
                        core: s,
                        line: line.0,
                        kind: "invalidate",
                    });
                    let t_ack = mesh.send(t_inv, s_tile, bank_tile, 8, MsgClass::Control);
                    t_acks = t_acks.max(t_ack);
                }
            }
            if let Some(e) = self.directory.get_mut(&line) {
                e.sharers &= core_bit(for_core);
            }
            t = t_acks;
        }

        // L3 lookup.
        let bank = self.bank_of(line) as usize;
        let l3_latency = self.config.l3_bank.latency;
        if let Some(hit) = self.banks[bank].lookup(line, t) {
            bump(&mut self.stats.l3_hits, Metric::MemL3Hits);
            metrics::profile(Prof::MemL3, l3_latency.raw());
            let mut t_done = t.max(hit.ready) + l3_latency;
            if fault::inject(FaultSite::MemError) {
                // Transient bank read error (chaos mode): the array is
                // re-read; data is unaffected, only timing pays.
                bump(&mut self.stats.read_retries, Metric::MemReadRetries);
                trace::emit(|| TraceEvent::Fault {
                    at: t_done,
                    core: SE_L3_CORE,
                    site: FaultSite::MemError.label(),
                });
                t_done += l3_latency;
            }
            return (t_done, ServedBy::L3);
        }
        bump(&mut self.stats.l3_misses, Metric::MemL3Misses);
        // DRAM fetch.
        let ctrl_tile = self.dram.controller_tile(line);
        let t_req = mesh.send(t + l3_latency, bank_tile, ctrl_tile, 8, MsgClass::Control);
        let (mut t_dram, _) = self.dram.access(t_req, line);
        bump(&mut self.stats.dram_reads, Metric::MemDramReads);
        metrics::profile(Prof::MemDram, t_dram.raw().saturating_sub(t_req.raw()));
        if fault::inject(FaultSite::MemError) {
            // Transient DRAM read error (chaos mode): wait out the retry
            // window, then re-issue the read.
            bump(&mut self.stats.read_retries, Metric::MemReadRetries);
            trace::emit(|| TraceEvent::Fault {
                at: t_dram,
                core: SE_L3_CORE,
                site: FaultSite::MemError.label(),
            });
            let retry_at = t_dram + fault::penalty(FaultSite::MemError);
            let (t_retry, _) = self.dram.access(retry_at, line);
            bump(&mut self.stats.dram_reads, Metric::MemDramReads);
            t_dram = t_retry;
        }
        let t_back = mesh.send(t_dram, ctrl_tile, bank_tile, LINE_BYTES, MsgClass::Data);
        self.l3_fill(t_back, line, false, mesh);
        (t_back, ServedBy::Dram)
    }

    /// Inserts a line into its L3 bank, writing back any dirty victim.
    fn l3_fill(&mut self, now: Cycle, line: LineAddr, dirty: bool, mesh: &mut Mesh) {
        let bank = self.bank_of(line) as usize;
        if let Some(ev) = self.banks[bank].insert(line, dirty, now) {
            if ev.dirty {
                let ctrl_tile = self.dram.controller_tile(ev.line);
                mesh.send(now, self.bank_tile(line), ctrl_tile, LINE_BYTES, MsgClass::Data);
                self.dram.access(now, ev.line);
                bump(&mut self.stats.dram_writebacks, Metric::MemDramWritebacks);
                trace::emit(|| TraceEvent::Coherence {
                    at: now,
                    core: SE_L3_CORE,
                    line: ev.line.0,
                    kind: "dram-writeback",
                });
            }
            self.directory.remove(&ev.line);
        }
    }

    /// Upgrade transaction: gain ownership of a line already held shared.
    fn ownership_transaction(
        &mut self,
        now: Cycle,
        core: u16,
        line: LineAddr,
        mesh: &mut Mesh,
        _data_needed: bool,
    ) -> Cycle {
        let core_tile = self.core_tile(core);
        let bank_tile = self.bank_tile(line);
        let t_bank = mesh.send(now, core_tile, bank_tile, 8, MsgClass::Control);
        // Invalidate other private copies.
        let entry = self.directory.get(&line).copied().unwrap_or_default();
        let mut t = t_bank;
        if let Some(owner) = entry.owner {
            if owner != core {
                let (t2, _) = self.bank_obtain_line(t_bank, line, core, true, mesh);
                t = t2;
            }
        } else {
            for s in 0..self.config.n_cores {
                if s != core && entry.sharers & (1 << s) != 0 {
                    let s_tile = self.core_tile(s);
                    let t_inv = mesh.send(t_bank, bank_tile, s_tile, 8, MsgClass::Control);
                    let p = &mut self.privates[s as usize];
                    p.l1.invalidate(line);
                    p.l2.invalidate(line);
                    bump(&mut self.stats.invalidations, Metric::MemInvalidations);
                    trace::emit(|| TraceEvent::Coherence {
                        at: t_inv,
                        core: s,
                        line: line.0,
                        kind: "invalidate",
                    });
                    t = t.max(mesh.send(t_inv, s_tile, bank_tile, 8, MsgClass::Control));
                }
            }
        }
        let e = self.directory.entry(line).or_default();
        e.owner = Some(core);
        e.sharers = 1 << core;
        // Grant (control only; requester already has the data).
        mesh.send(t, bank_tile, core_tile, 8, MsgClass::Control)
    }

    /// Fills L2 and L1 after a remote fetch, handling victim writebacks.
    fn fill_private(&mut self, now: Cycle, core: u16, line: LineAddr, dirty: bool, mesh: &mut Mesh) {
        let p = &mut self.privates[core as usize];
        let ev2 = p.l2.insert(line, dirty, now);
        let ev1 = p.l1.insert(line, dirty, now);
        // L1 victim folds into L2 locally (no traffic).
        if let Some(ev) = ev1 {
            if ev.dirty {
                p.l2.set_dirty(ev.line);
            }
        }
        if let Some(ev) = ev2 {
            self.evict_private_line(now, core, ev.line, ev.dirty, mesh);
        }
    }

    fn fill_l1_only(&mut self, now: Cycle, core: u16, line: LineAddr, dirty: bool) {
        let p = &mut self.privates[core as usize];
        if let Some(ev) = p.l1.insert(line, dirty, now) {
            if ev.dirty && !p.l2.set_dirty(ev.line) {
                // Victim no longer in L2 (rare): treat as lost locally;
                // correctness is functional-side, timing impact negligible.
            }
        }
    }

    /// Handles an L2 eviction: dirty lines write back to their L3 bank,
    /// clean lines notify the directory (non-silent eviction).
    fn evict_private_line(&mut self, now: Cycle, core: u16, line: LineAddr, dirty: bool, mesh: &mut Mesh) {
        // The line also leaves L1 (inclusive private hierarchy).
        let p = &mut self.privates[core as usize];
        let l1_dirty = p.l1.invalidate(line).unwrap_or(false);
        let dirty = dirty || l1_dirty;
        let bank_tile = self.bank_tile(line);
        let core_tile = self.core_tile(core);
        if dirty {
            let t = mesh.send(now, core_tile, bank_tile, LINE_BYTES, MsgClass::Data);
            bump(&mut self.stats.private_writebacks, Metric::MemPrivateWritebacks);
            trace::emit(|| TraceEvent::Coherence {
                at: t,
                core,
                line: line.0,
                kind: "writeback",
            });
            self.l3_fill(t, line, true, mesh);
        }
        if let Some(e) = self.directory.get_mut(&line) {
            e.sharers &= !(1 << core);
            if e.owner == Some(core) {
                e.owner = None;
            }
        }
    }

    // ------------------------------------------------------------------
    // Prefetch paths
    // ------------------------------------------------------------------

    fn prefetch_into_l1(&mut self, now: Cycle, core: u16, line: LineAddr, mesh: &mut Mesh) {
        if self.private_holds(core, line) {
            return;
        }
        let (t, _) = self.remote_fetch(now, core, line, false, mesh);
        self.fill_private(t, core, line, false, mesh);
        bump(&mut self.stats.prefetch_fills, Metric::MemPrefetchFills);
        let p = &mut self.privates[core as usize];
        p.prefetched.insert(line);
        if p.prefetched.len() > 4096 {
            p.prefetched.clear(); // bound bookkeeping
        }
    }

    fn prefetch_into_l2(&mut self, now: Cycle, core: u16, line: LineAddr, mesh: &mut Mesh) {
        if self.privates[core as usize].l2.contains(line) {
            return;
        }
        let (t, _) = self.remote_fetch(now, core, line, false, mesh);
        let ev = self.privates[core as usize].l2.insert(line, false, t);
        if let Some(ev) = ev {
            self.evict_private_line(t, core, ev.line, ev.dirty, mesh);
        }
        bump(&mut self.stats.prefetch_fills, Metric::MemPrefetchFills);
    }

    // ------------------------------------------------------------------
    // Near-data (SE_L3) paths
    // ------------------------------------------------------------------

    /// A stream access executed at the L3 bank of `addr` by an SE_L3
    /// (paper §IV-B "Coherence & Consistency"): private copies are cleared
    /// or fetched via normal invalidation transactions, then the bank
    /// serves the line locally. Returns the completion time at the bank.
    pub fn l3_stream_access(
        &mut self,
        now: Cycle,
        addr: Addr,
        kind: AccessKind,
        mesh: &mut Mesh,
    ) -> Cycle {
        self.l3_stream_access_opts(now, addr, kind, false, mesh)
    }

    /// Like [`MemorySystem::l3_stream_access`], with a full-line-write hint:
    /// a store stream known to overwrite whole lines (unit-stride affine)
    /// installs lines at the bank without fetching them from DRAM.
    pub fn l3_stream_access_opts(
        &mut self,
        now: Cycle,
        addr: Addr,
        kind: AccessKind,
        full_line_write: bool,
        mesh: &mut Mesh,
    ) -> Cycle {
        let done = self.l3_stream_access_inner(now, addr, kind, full_line_write, mesh);
        trace::emit(|| TraceEvent::CacheAccess {
            start: now,
            end: done,
            core: SE_L3_CORE,
            level: TraceLevel::L3,
            write: kind.is_write(),
        });
        done
    }

    fn l3_stream_access_inner(
        &mut self,
        now: Cycle,
        addr: Addr,
        kind: AccessKind,
        full_line_write: bool,
        mesh: &mut Mesh,
    ) -> Cycle {
        let line = addr.line();
        if full_line_write && kind.is_write() && !self.banks[self.bank_of(line) as usize].contains(line) {
            // Install without a DRAM fetch; private copies still need
            // clearing for coherence.
            let entry = self.directory.get(&line).copied().unwrap_or_default();
            let t = if entry.owner.is_some() || entry.sharers != 0 {
                let (t, _) = self.bank_obtain_line(now, line, u16::MAX, true, mesh);
                t
            } else {
                let bank_idx = self.bank_of(line) as usize;
                let slot = self.bank_ports[bank_idx].book(now, 1);
                slot + self.config.l3_bank.latency.raw()
            };
            self.l3_fill(t, line, true, mesh);
            return t;
        }
        // u16::MAX is never a real core id, so every private copy is
        // invalidated/fetched.
        let (t, _) = self.bank_obtain_line(now, line, u16::MAX, kind.is_write(), mesh);
        if kind.is_write() {
            // Mark dirty without disturbing fill-ready timing: concurrent
            // stream writes to the same line must not serialize through the
            // tag array (the lock table models any real serialization).
            let bank = self.bank_of(line) as usize;
            self.banks[bank].insert(line, true, Cycle::ZERO);
            if let Some(e) = self.directory.get_mut(&line) {
                e.owner = None;
                e.sharers = 0;
            }
        }
        t
    }

    /// Translates a stream address at the bank's SE_L3 TLB; call once per
    /// page transition (the SE caches the current translation). Returns
    /// when the translation is ready.
    pub fn se_translate(&mut self, now: Cycle, addr: Addr) -> Cycle {
        let bank = self.bank_of(addr.line()) as usize;
        self.se_tlbs[bank].translate(addr.raw(), now)
    }

    /// An atomic read-modify-write executed at the L3 bank (paper §IV-C).
    ///
    /// `modifies` selects the MRSW lock mode: value-changing ops take the
    /// exclusive lock, value-preserving ops (failed CAS, non-lowering min)
    /// take the shared lock. Returns the completion time at the bank.
    pub fn l3_atomic(&mut self, now: Cycle, addr: Addr, modifies: bool, mesh: &mut Mesh) -> Cycle {
        let line = addr.line();
        let t_data = self.l3_stream_access(now, addr, AccessKind::Atomic, mesh);
        let kind = if modifies { LockKind::Exclusive } else { LockKind::Shared };
        let dur = self.config.atomic_op_cycles;
        let start = self.locks.acquire(t_data, line, kind, dur);
        bump(&mut self.stats.l3_atomics, Metric::MemL3Atomics);
        trace::emit(|| TraceEvent::Lock {
            start,
            end: start + dur,
            line: line.0,
            exclusive: modifies,
            waited: (start - t_data).raw(),
        });
        start + dur
    }

    /// Extends the lock hold time of an already-performed atomic, modelling
    /// range-sync commit delay (the line stays locked until the commit
    /// message arrives; paper §IV-C).
    pub fn extend_lock(&mut self, from: Cycle, addr: Addr, until: Cycle, modifies: bool) {
        if until <= from {
            return;
        }
        let kind = if modifies { LockKind::Exclusive } else { LockKind::Shared };
        self.locks
            .acquire(from, addr.line(), kind, (until - from).raw());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nsc_noc::MeshConfig;

    fn setup() -> (MemorySystem, Mesh) {
        (
            MemorySystem::new(MemoryConfig::small_16core()),
            Mesh::new(MeshConfig::small_4x4()),
        )
    }

    #[test]
    fn cold_miss_goes_to_dram_then_hits() {
        let (mut mem, mut mesh) = setup();
        let (t, served) = mem.access_classified(Cycle(0), 0, Addr(0x4000), AccessKind::Load, &mut mesh);
        assert_eq!(served, ServedBy::Dram);
        assert!(t > Cycle(100));
        let (t2, served2) = mem.access_classified(t, 0, Addr(0x4000), AccessKind::Load, &mut mesh);
        assert_eq!(served2, ServedBy::L1);
        assert_eq!(t2, t + Cycle(2));
        assert_eq!(mem.stats().dram_reads, 1);
    }

    #[test]
    fn second_core_load_hits_l3() {
        let (mut mem, mut mesh) = setup();
        let t = mem.access(Cycle(0), 0, Addr(0x8000), AccessKind::Load, &mut mesh);
        let (_, served) = mem.access_classified(t, 1, Addr(0x8000), AccessKind::Load, &mut mesh);
        assert_eq!(served, ServedBy::L3);
        assert_eq!(mem.stats().l3_hits, 1);
    }

    #[test]
    fn store_fetches_exclusive_and_invalidates_sharers() {
        let (mut mem, mut mesh) = setup();
        let a = Addr(0x100);
        let t0 = mem.access(Cycle(0), 0, a, AccessKind::Load, &mut mesh);
        let t1 = mem.access(t0, 1, a, AccessKind::Load, &mut mesh);
        // Core 2 stores: both sharers are invalidated.
        let t2 = mem.access(t1, 2, a, AccessKind::Store, &mut mesh);
        assert_eq!(mem.stats().invalidations, 2);
        assert!(!mem.private_holds(0, a.line()));
        assert!(!mem.private_holds(1, a.line()));
        assert!(mem.private_holds(2, a.line()));
        // Core 0 reloads: fetched from owner 2 (dirty writeback).
        mem.access(t2, 0, a, AccessKind::Load, &mut mesh);
        assert_eq!(mem.stats().private_writebacks, 1);
    }

    #[test]
    fn store_hit_without_ownership_upgrades() {
        let (mut mem, mut mesh) = setup();
        let a = Addr(0x200);
        let t0 = mem.access(Cycle(0), 0, a, AccessKind::Load, &mut mesh);
        let msgs_before = mesh.traffic().total_messages();
        let (t1, served) = mem.access_classified(t0, 0, a, AccessKind::Store, &mut mesh);
        assert_eq!(served, ServedBy::L1);
        assert!(mesh.traffic().total_messages() > msgs_before, "upgrade needs messages");
        // Second store is silent (already owner).
        let msgs_mid = mesh.traffic().total_messages();
        mem.access(t1, 0, a, AccessKind::Store, &mut mesh);
        assert_eq!(mesh.traffic().total_messages(), msgs_mid);
    }

    #[test]
    fn l3_stream_store_clears_private_copies() {
        let (mut mem, mut mesh) = setup();
        let a = Addr(0x300);
        let t0 = mem.access(Cycle(0), 3, a, AccessKind::Load, &mut mesh);
        assert!(mem.private_holds(3, a.line()));
        mem.l3_stream_access(t0, a, AccessKind::Store, &mut mesh);
        assert!(!mem.private_holds(3, a.line()));
        // Subsequent core load sees the bank copy.
        let (_, served) = mem.access_classified(t0 + Cycle(10_000), 3, a, AccessKind::Load, &mut mesh);
        assert_eq!(served, ServedBy::L3);
    }

    #[test]
    fn l3_atomic_serializes_on_same_line() {
        let (mut mem, mut mesh) = setup();
        let a = Addr(0x400);
        // Warm the bank.
        mem.l3_stream_access(Cycle(0), a, AccessKind::Load, &mut mesh);
        // The line lock bounds throughput: a burst of modifying atomics to
        // one line takes at least op-cycles each in aggregate.
        let first = mem.l3_atomic(Cycle(1000), a, true, &mut mesh);
        let mut last = first;
        for _ in 0..7 {
            last = last.max(mem.l3_atomic(Cycle(1000), a, true, &mut mesh));
        }
        assert!(last >= first + 7 * mem.config().atomic_op_cycles / 2, "last {last} first {first}");
        assert!(mem.locks().conflicts() > 0);
        assert_eq!(mem.stats().l3_atomics, 8);
    }

    #[test]
    fn l3_atomic_shared_does_not_conflict() {
        let (mut mem, mut mesh) = setup();
        let a = Addr(0x500);
        mem.l3_stream_access(Cycle(0), a, AccessKind::Load, &mut mesh);
        mem.l3_atomic(Cycle(1000), a, false, &mut mesh);
        mem.l3_atomic(Cycle(1000), a, false, &mut mesh);
        assert_eq!(mem.locks().conflicts(), 0);
    }

    #[test]
    fn dirty_owner_fetched_by_stream_access() {
        let (mut mem, mut mesh) = setup();
        let a = Addr(0x600);
        let t0 = mem.access(Cycle(0), 5, a, AccessKind::Store, &mut mesh);
        let wb_before = mem.stats().private_writebacks;
        mem.l3_stream_access(t0, a, AccessKind::Load, &mut mesh);
        assert_eq!(mem.stats().private_writebacks, wb_before + 1);
        assert!(!mem.private_holds(5, a.line()));
    }

    #[test]
    fn capacity_evictions_write_back_dirty_lines() {
        let (mut mem, mut mesh) = setup();
        // Store to far more lines than L1+L2 capacity for core 0.
        let mut t = Cycle(0);
        let lines = (mem.config().l2.size_bytes / LINE_BYTES) * 4;
        for i in 0..lines {
            t = mem.access(t, 0, Addr(i * LINE_BYTES), AccessKind::Store, &mut mesh);
        }
        assert!(mem.stats().private_writebacks > 0);
    }

    #[test]
    fn bank_mapping_is_line_interleaved() {
        let (mem, _) = setup();
        assert_eq!(mem.bank_of(LineAddr(0)), 0);
        assert_eq!(mem.bank_of(LineAddr(15)), 15);
        assert_eq!(mem.bank_of(LineAddr(16)), 0);
    }

    #[test]
    fn try_new_rejects_invalid_config_with_named_problem() {
        let mut cfg = MemoryConfig::small_16core();
        cfg.n_cores = 17;
        let e = MemorySystem::try_new(cfg).unwrap_err();
        assert!(e.to_string().contains("17 cores"), "{e}");
    }

    #[test]
    fn transient_read_error_retries_and_counts() {
        use nsc_sim::fault::{FaultPlan, FaultSite};
        let (mut clean_mem, mut clean_mesh) = setup();
        let t_clean = clean_mem.access(Cycle(0), 0, Addr(0x7000), AccessKind::Load, &mut clean_mesh);

        let mut plan = FaultPlan::none();
        plan.mem_error = 1.0;
        fault::install(plan);
        let (mut mem, mut mesh) = setup();
        let t = mem.access(Cycle(0), 0, Addr(0x7000), AccessKind::Load, &mut mesh);
        let stats = fault::uninstall().unwrap();
        assert!(stats.count(FaultSite::MemError) >= 1);
        assert!(mem.stats().read_retries >= 1);
        assert!(t > t_clean, "retry must add latency: {t:?} vs {t_clean:?}");
        // The retried read is a second DRAM access.
        assert!(mem.stats().dram_reads > clean_mem.stats().dram_reads);
    }
}
