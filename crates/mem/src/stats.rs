//! Aggregate memory-system statistics.

use nsc_sim::StatsTable;

/// Counters accumulated by [`crate::MemorySystem`] across all cores, banks
/// and controllers.
///
/// All fields are plain counts; the struct is a passive data record
/// (C-STRUCT-PRIVATE does not apply to passive compound data).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemStats {
    /// L1D demand hits.
    pub l1_hits: u64,
    /// L1D demand misses.
    pub l1_misses: u64,
    /// Private L2 demand hits.
    pub l2_hits: u64,
    /// Private L2 demand misses.
    pub l2_misses: u64,
    /// Shared L3 hits (demand or stream).
    pub l3_hits: u64,
    /// Shared L3 misses.
    pub l3_misses: u64,
    /// Lines read from DRAM.
    pub dram_reads: u64,
    /// Dirty lines written back to DRAM.
    pub dram_writebacks: u64,
    /// Private-cache copies invalidated by the directory.
    pub invalidations: u64,
    /// Dirty lines written back from private caches to L3.
    pub private_writebacks: u64,
    /// Prefetch lines fetched (L1 spatial + L2 stride).
    pub prefetch_fills: u64,
    /// Demand accesses that hit on a previously prefetched line.
    pub prefetch_hits: u64,
    /// Atomic operations executed at L3 banks.
    pub l3_atomics: u64,
    /// Reads retried after an injected transient error (chaos mode).
    pub read_retries: u64,
}

impl MemStats {
    /// Demand L1 hit rate in `[0, 1]`.
    pub fn l1_hit_rate(&self) -> f64 {
        ratio(self.l1_hits, self.l1_hits.saturating_add(self.l1_misses))
    }

    /// Demand L3 hit rate in `[0, 1]`.
    pub fn l3_hit_rate(&self) -> f64 {
        ratio(self.l3_hits, self.l3_hits.saturating_add(self.l3_misses))
    }

    /// Renders all counters into a [`StatsTable`] under a `mem.` prefix.
    pub fn to_table(&self) -> StatsTable {
        let mut t = StatsTable::new();
        t.set("mem.l1_hits", self.l1_hits as f64);
        t.set("mem.l1_misses", self.l1_misses as f64);
        t.set("mem.l2_hits", self.l2_hits as f64);
        t.set("mem.l2_misses", self.l2_misses as f64);
        t.set("mem.l3_hits", self.l3_hits as f64);
        t.set("mem.l3_misses", self.l3_misses as f64);
        t.set("mem.dram_reads", self.dram_reads as f64);
        t.set("mem.dram_writebacks", self.dram_writebacks as f64);
        t.set("mem.invalidations", self.invalidations as f64);
        t.set("mem.private_writebacks", self.private_writebacks as f64);
        t.set("mem.prefetch_fills", self.prefetch_fills as f64);
        t.set("mem.prefetch_hits", self.prefetch_hits as f64);
        t.set("mem.l3_atomics", self.l3_atomics as f64);
        t.set("mem.read_retries", self.read_retries as f64);
        t
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rates() {
        let s = MemStats {
            l1_hits: 3,
            l1_misses: 1,
            l3_hits: 1,
            l3_misses: 3,
            ..MemStats::default()
        };
        assert!((s.l1_hit_rate() - 0.75).abs() < 1e-12);
        assert!((s.l3_hit_rate() - 0.25).abs() < 1e-12);
        assert_eq!(MemStats::default().l1_hit_rate(), 0.0);
    }

    #[test]
    fn table_contains_all_counters() {
        let t = MemStats::default().to_table();
        assert_eq!(t.len(), 14);
        assert_eq!(t.get("mem.l1_hits"), Some(0.0));
    }
}
