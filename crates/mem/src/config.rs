//! Memory-system configuration (paper Table V).

use crate::cache::{CacheConfig, ReplacePolicy};
use crate::dram::DramConfig;
use nsc_sim::error::SimError;
use nsc_sim::Cycle;

/// Full configuration of the coherent memory hierarchy.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemoryConfig {
    /// Number of cores (one private hierarchy each; also the number of L3
    /// banks, one per tile).
    pub n_cores: u16,
    /// Mesh width for tile/bank placement.
    pub mesh_width: u16,
    /// Mesh height.
    pub mesh_height: u16,
    /// Per-core L1 data cache.
    pub l1: CacheConfig,
    /// Per-core private L2.
    pub l2: CacheConfig,
    /// One shared L3 bank (per tile).
    pub l3_bank: CacheConfig,
    /// DRAM timing.
    pub dram: DramConfig,
    /// Enable the Bingo-like L1 spatial prefetcher.
    pub l1_spatial_prefetch: bool,
    /// Enable the L2 stride prefetcher.
    pub l2_stride_prefetch: bool,
    /// Use the MRSW lock for L3 atomics (otherwise exclusive locks).
    pub mrsw_lock: bool,
    /// Cycles an L3 ALU op occupies a locked line.
    pub atomic_op_cycles: u64,
    /// Per-core L2 TLB entries (Table V: 2k-entry).
    pub l2_tlb_entries: u64,
    /// SE_L3 TLB entries per tile (Table V: 1k-entry, 8-cycle latency).
    pub se_tlb_entries: u64,
    /// TLB lookup latency.
    pub tlb_latency: Cycle,
    /// Page-walk latency on a TLB miss.
    pub page_walk_latency: Cycle,
}

impl MemoryConfig {
    /// The paper's 64-core Table V configuration.
    pub fn paper_64core() -> MemoryConfig {
        MemoryConfig {
            n_cores: 64,
            mesh_width: 8,
            mesh_height: 8,
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 8,
                latency: Cycle(2),
                policy: ReplacePolicy::BimodalRrip { p_promote_permille: 30 },
            set_skip_bits: 0,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 16,
                latency: Cycle(16),
                policy: ReplacePolicy::BimodalRrip { p_promote_permille: 30 },
            set_skip_bits: 0,
            },
            l3_bank: CacheConfig {
                size_bytes: 1024 * 1024,
                ways: 16,
                latency: Cycle(20),
                policy: ReplacePolicy::BimodalRrip { p_promote_permille: 30 },
            set_skip_bits: 0,
            },
            dram: DramConfig::paper_ddr4(),
            l1_spatial_prefetch: true,
            l2_stride_prefetch: true,
            mrsw_lock: true,
            atomic_op_cycles: 4,
            l2_tlb_entries: 2048,
            se_tlb_entries: 1024,
            tlb_latency: Cycle(8),
            page_walk_latency: Cycle(60),
        }
    }

    /// A 16-core 4x4 configuration with small caches, for fast tests.
    pub fn small_16core() -> MemoryConfig {
        MemoryConfig {
            n_cores: 16,
            mesh_width: 4,
            mesh_height: 4,
            l1: CacheConfig {
                size_bytes: 4 * 1024,
                ways: 4,
                latency: Cycle(2),
                policy: ReplacePolicy::Lru,
            set_skip_bits: 0,
            },
            l2: CacheConfig {
                size_bytes: 16 * 1024,
                ways: 8,
                latency: Cycle(16),
                policy: ReplacePolicy::Lru,
            set_skip_bits: 0,
            },
            l3_bank: CacheConfig {
                size_bytes: 64 * 1024,
                ways: 16,
                latency: Cycle(20),
                policy: ReplacePolicy::Lru,
            set_skip_bits: 0,
            },
            dram: DramConfig::paper_ddr4(),
            l1_spatial_prefetch: false,
            l2_stride_prefetch: false,
            mrsw_lock: true,
            atomic_op_cycles: 4,
            l2_tlb_entries: 256,
            se_tlb_entries: 128,
            tlb_latency: Cycle(8),
            page_walk_latency: Cycle(60),
        }
    }

    /// Number of L3 banks (one per tile).
    pub fn n_banks(&self) -> u16 {
        self.mesh_width * self.mesh_height
    }

    /// Validates the configuration, returning a [`SimError::Config`]
    /// naming the first problem instead of panicking mid-run.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.n_cores == 0 {
            return Err(SimError::config("n_cores must be non-zero"));
        }
        if self.mesh_width == 0 || self.mesh_height == 0 {
            return Err(SimError::config(format!(
                "mesh dimensions must be non-zero, got {}x{}",
                self.mesh_width, self.mesh_height
            )));
        }
        if self.n_cores as usize > 64 {
            return Err(SimError::config(format!(
                "n_cores = {} exceeds the 64-bit sharer bitmask",
                self.n_cores
            )));
        }
        if self.n_cores > self.n_banks() {
            return Err(SimError::config(format!(
                "each core needs a tile: {} cores > {} tiles",
                self.n_cores,
                self.n_banks()
            )));
        }
        if !self.n_banks().is_power_of_two() {
            return Err(SimError::config(format!(
                "bank count {} must be a power of two for line interleaving",
                self.n_banks()
            )));
        }
        for (name, c) in [("l1", &self.l1), ("l2", &self.l2), ("l3_bank", &self.l3_bank)] {
            if c.size_bytes == 0 {
                return Err(SimError::config(format!("{name} cache size must be non-zero")));
            }
            if c.size_bytes < crate::LINE_BYTES {
                return Err(SimError::config(format!(
                    "{name} cache size {} is below one {}-byte line",
                    c.size_bytes,
                    crate::LINE_BYTES
                )));
            }
            if c.ways == 0 {
                return Err(SimError::config(format!("{name} cache must have at least one way")));
            }
        }
        Ok(())
    }
}

impl Default for MemoryConfig {
    fn default() -> Self {
        MemoryConfig::paper_64core()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shapes() {
        let c = MemoryConfig::paper_64core();
        assert_eq!(c.n_banks(), 64);
        assert_eq!(c.l1.sets(), 64);
        assert_eq!(c.l2.sets(), 256);
        assert_eq!(c.l3_bank.sets(), 1024);
    }

    #[test]
    fn small_config_valid() {
        let c = MemoryConfig::small_16core();
        assert_eq!(c.n_banks(), 16);
        assert!(c.l1.sets() >= 1);
        assert!(c.validate().is_ok());
        assert!(MemoryConfig::paper_64core().validate().is_ok());
    }

    #[test]
    fn validation_rejects_sub_line_cache() {
        // Regression: harness size scaling used to divide cache sizes
        // without a floor, so a small-enough config could round below one
        // line and silently model a cache that can hold nothing.
        let mut c = MemoryConfig::small_16core();
        c.l1.size_bytes = crate::LINE_BYTES - 1;
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("below one"), "got: {msg}");
        let mut c = MemoryConfig::small_16core();
        c.l1.size_bytes = crate::LINE_BYTES;
        c.l1.ways = 1;
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut c = MemoryConfig::small_16core();
        c.n_cores = 0;
        assert!(c.validate().unwrap_err().to_string().contains("n_cores"));
        let mut c = MemoryConfig::small_16core();
        c.mesh_width = 0;
        assert!(c.validate().is_err());
        let mut c = MemoryConfig::small_16core();
        c.n_cores = 17; // more cores than the 16 tiles
        assert!(c.validate().unwrap_err().to_string().contains("tile"));
        let mut c = MemoryConfig::small_16core();
        c.mesh_width = 3; // 12 banks: not a power of two
        c.n_cores = 12;
        assert!(c.validate().unwrap_err().to_string().contains("power of two"));
        let mut c = MemoryConfig::small_16core();
        c.l2.size_bytes = 0;
        assert!(c.validate().unwrap_err().to_string().contains("l2"));
    }
}
