//! Corner DRAM controllers: fixed access latency plus per-controller
//! bandwidth occupancy (Table V: DDR4-3200, 25.6 GB/s aggregate, four
//! controllers at the mesh corners).

use crate::addr::LineAddr;
use nsc_noc::TileId;
use nsc_sim::{resource::BandwidthLedger, Cycle};

/// DRAM timing configuration.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramConfig {
    /// Device access latency (row activation + column access + transfer).
    pub latency: Cycle,
    /// Cycles one 64 B line occupies a controller's channel.
    pub line_occupancy: u64,
}

impl DramConfig {
    /// The paper's DDR4-3200 setup at a 2 GHz core clock: ~50 ns access
    /// latency and 6.4 GB/s per controller (3.2 B/cycle => 20 cycles per
    /// line).
    pub fn paper_ddr4() -> DramConfig {
        DramConfig {
            latency: Cycle(100),
            line_occupancy: 20,
        }
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::paper_ddr4()
    }
}

/// The set of DRAM controllers.
///
/// # Examples
///
/// ```
/// use nsc_mem::dram::{Dram, DramConfig};
/// use nsc_mem::addr::LineAddr;
/// use nsc_sim::Cycle;
///
/// let mut dram = Dram::new(DramConfig::paper_ddr4(), 8, 8);
/// let (done, ctrl) = dram.access(Cycle(0), LineAddr(0));
/// assert_eq!(done, Cycle(100 + 20));
/// assert_eq!(ctrl.raw(), 0); // line 0 maps to the first corner
/// ```
#[derive(Clone, Debug)]
pub struct Dram {
    config: DramConfig,
    controllers: Vec<(TileId, BandwidthLedger)>,
    accesses: u64,
}

impl Dram {
    /// Creates four corner controllers for a `width` x `height` mesh.
    pub fn new(config: DramConfig, width: u16, height: u16) -> Dram {
        let corners = [
            TileId::from_xy(0, 0, width),
            TileId::from_xy(width - 1, 0, width),
            TileId::from_xy(0, height - 1, width),
            TileId::from_xy(width - 1, height - 1, width),
        ];
        Dram {
            config,
            controllers: corners
                .into_iter()
                .map(|t| (t, BandwidthLedger::new(64, 64)))
                .collect(),
            accesses: 0,
        }
    }

    /// The controller tile serving `line` (line-interleaved).
    pub fn controller_tile(&self, line: LineAddr) -> TileId {
        self.controllers[(line.raw() % self.controllers.len() as u64) as usize].0
    }

    /// Performs one line access starting at `now` (as seen at the
    /// controller); returns `(completion_time, controller_tile)`.
    pub fn access(&mut self, now: Cycle, line: LineAddr) -> (Cycle, TileId) {
        self.accesses += 1;
        let idx = (line.raw() % self.controllers.len() as u64) as usize;
        let (tile, res) = &mut self.controllers[idx];
        let transferred = res.book(now, self.config.line_occupancy);
        (transferred + self.config.latency.raw(), *tile)
    }

    /// Number of line accesses performed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_tiles() {
        let d = Dram::new(DramConfig::paper_ddr4(), 8, 8);
        let tiles: Vec<u16> = d.controllers.iter().map(|(t, _)| t.raw()).collect();
        assert_eq!(tiles, vec![0, 7, 56, 63]);
    }

    #[test]
    fn interleaves_lines_across_controllers() {
        let d = Dram::new(DramConfig::paper_ddr4(), 8, 8);
        assert_ne!(d.controller_tile(LineAddr(0)), d.controller_tile(LineAddr(1)));
        assert_eq!(d.controller_tile(LineAddr(0)), d.controller_tile(LineAddr(4)));
    }

    #[test]
    fn bandwidth_queues_same_controller() {
        let mut d = Dram::new(DramConfig::paper_ddr4(), 8, 8);
        let (t1, _) = d.access(Cycle(0), LineAddr(0));
        let (t2, _) = d.access(Cycle(0), LineAddr(4)); // same controller
        assert_eq!(t2 - t1, Cycle(20));
        let (t3, _) = d.access(Cycle(0), LineAddr(1)); // different controller
        assert_eq!(t3, t1);
        assert_eq!(d.accesses(), 3);
    }
}
