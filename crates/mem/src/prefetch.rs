//! Hardware prefetchers for the baseline system.
//!
//! The paper's baseline core uses the Bingo spatial prefetcher at L1 (8 kB
//! PHT, 2 kB regions) plus an L2 stride prefetcher (Table V / §VI). Both are
//! modelled here as suggestion generators: they observe the demand access
//! stream and emit candidate lines, which [`crate::MemorySystem`] fetches in
//! the background.
//!
//! The Bingo model keys footprints by trigger-offset within a region rather
//! than PC+offset (our IR has no program counters); for the suite's
//! workloads this preserves Bingo's qualitative behaviour — near-perfect
//! coverage on dense affine regions, low useless volume on sparse irregular
//! regions.

use crate::addr::LineAddr;
use std::collections::HashMap;

/// Lines per 2 kB spatial region.
const REGION_LINES: u64 = 32;

#[derive(Clone, Copy, Debug, Default)]
struct ActiveRegion {
    footprint: u32,
    trigger_offset: u8,
    lru: u64,
}

/// A Bingo-like spatial footprint prefetcher.
///
/// # Examples
///
/// ```
/// use nsc_mem::prefetch::SpatialPrefetcher;
/// use nsc_mem::addr::LineAddr;
///
/// let mut pf = SpatialPrefetcher::new(256, 2);
/// // Train: touch a dense region, then leave it.
/// for l in 0..32 {
///     pf.on_access(LineAddr(l), true);
/// }
/// for r in 1..4u64 {
///     pf.on_access(LineAddr(r * 1024), true); // evict region 0 from the active table
/// }
/// // A new region triggered at the same offset predicts the dense footprint.
/// let predicted = pf.on_access(LineAddr(100 * 32), true);
/// assert!(predicted.len() > 16);
/// ```
#[derive(Clone, Debug)]
pub struct SpatialPrefetcher {
    /// Learned footprints indexed by trigger offset (0 = nothing learned:
    /// a learned footprint always contains its trigger bit). The trigger
    /// offset has only `REGION_LINES` values, so a direct-indexed array
    /// beats hashing on the miss path.
    pht: [u32; REGION_LINES as usize],
    pht_len: usize,
    pht_capacity: usize,
    active: HashMap<u64, ActiveRegion>,
    active_capacity: usize,
    clock: u64,
    issued: u64,
}

impl SpatialPrefetcher {
    /// Creates a prefetcher with the given pattern-history and active-region
    /// table capacities.
    pub fn new(pht_capacity: usize, active_capacity: usize) -> SpatialPrefetcher {
        SpatialPrefetcher {
            pht: [0; REGION_LINES as usize],
            pht_len: 0,
            pht_capacity,
            active: HashMap::new(),
            active_capacity,
            clock: 0,
            issued: 0,
        }
    }

    /// Observes a demand access; returns lines to prefetch (possibly empty).
    pub fn on_access(&mut self, line: LineAddr, is_miss: bool) -> Vec<LineAddr> {
        self.clock += 1;
        let region = line.raw() / REGION_LINES;
        let offset = (line.raw() % REGION_LINES) as u8;
        let clock = self.clock;

        if let Some(entry) = self.active.get_mut(&region) {
            entry.footprint |= 1 << offset;
            entry.lru = clock;
            return Vec::new();
        }

        // New region: retire the oldest active region into the PHT if full.
        if self.active.len() >= self.active_capacity {
            if let Some((&old, _)) = self.active.iter().min_by_key(|(_, e)| e.lru) {
                let e = self.active.remove(&old).expect("present");
                self.learn(e);
            }
        }
        self.active.insert(
            region,
            ActiveRegion {
                footprint: 1 << offset,
                trigger_offset: offset,
                lru: clock,
            },
        );

        if !is_miss {
            return Vec::new();
        }

        // Predict the rest of the region from the learned footprint.
        let footprint = self.pht[offset as usize];
        if footprint == 0 {
            return Vec::new();
        }
        let base = region * REGION_LINES;
        let mut out = Vec::new();
        for bit in 0..REGION_LINES {
            if bit as u8 != offset && footprint & (1 << bit) != 0 {
                out.push(LineAddr(base + bit));
            }
        }
        self.issued += out.len() as u64;
        out
    }

    fn learn(&mut self, region: ActiveRegion) {
        let slot = &mut self.pht[region.trigger_offset as usize];
        if *slot == 0 {
            if self.pht_len >= self.pht_capacity {
                return; // PHT full; drop (capacity pressure model)
            }
            self.pht_len += 1;
        }
        // Blend with prior knowledge: union keeps dense patterns stable.
        *slot |= region.footprint;
    }

    /// Total prefetch lines suggested so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

/// Per-core stride prefetcher (the paper adds one at L2).
///
/// Tracks a small table of access streams; once a stride repeats, it
/// prefetches `degree` lines ahead.
///
/// # Examples
///
/// ```
/// use nsc_mem::prefetch::StridePrefetcher;
/// use nsc_mem::addr::LineAddr;
///
/// let mut pf = StridePrefetcher::new(8, 4);
/// assert!(pf.on_miss(LineAddr(10)).is_empty());
/// assert!(pf.on_miss(LineAddr(11)).is_empty()); // stride 1 observed once
/// let ahead = pf.on_miss(LineAddr(12)); // stride confirmed
/// assert_eq!(ahead, vec![LineAddr(13), LineAddr(14), LineAddr(15), LineAddr(16)]);
/// ```
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    entries: Vec<StrideEntry>,
    capacity: usize,
    degree: u64,
    clock: u64,
    issued: u64,
}

#[derive(Clone, Copy, Debug)]
struct StrideEntry {
    last: i64,
    stride: i64,
    confidence: u8,
    lru: u64,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher with `capacity` streams fetching
    /// `degree` lines ahead.
    pub fn new(capacity: usize, degree: u64) -> StridePrefetcher {
        StridePrefetcher {
            entries: Vec::new(),
            capacity,
            degree,
            clock: 0,
            issued: 0,
        }
    }

    /// Observes an L2 miss; returns lines to prefetch.
    pub fn on_miss(&mut self, line: LineAddr) -> Vec<LineAddr> {
        self.clock += 1;
        let l = line.raw() as i64;
        // Find the stream whose prediction this access matches or is nearest.
        let mut best: Option<usize> = None;
        for (i, e) in self.entries.iter().enumerate() {
            let delta = l - e.last;
            if delta != 0 && delta.abs() <= 64 {
                best = Some(i);
                break;
            }
        }
        match best {
            Some(i) => {
                let delta = l - self.entries[i].last;
                let e = &mut self.entries[i];
                if delta == e.stride {
                    e.confidence = e.confidence.saturating_add(1);
                } else {
                    e.stride = delta;
                    e.confidence = 1;
                }
                e.last = l;
                e.lru = self.clock;
                if e.confidence >= 2 {
                    let stride = e.stride;
                    let out: Vec<LineAddr> = (1..=self.degree)
                        .map(|k| l + stride * k as i64)
                        .filter(|&a| a >= 0)
                        .map(|a| LineAddr(a as u64))
                        .collect();
                    self.issued += out.len() as u64;
                    return out;
                }
                Vec::new()
            }
            None => {
                if self.entries.len() >= self.capacity {
                    let oldest = self
                        .entries
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, e)| e.lru)
                        .map(|(i, _)| i)
                        .expect("non-empty");
                    self.entries.swap_remove(oldest);
                }
                self.entries.push(StrideEntry {
                    last: l,
                    stride: 0,
                    confidence: 0,
                    lru: self.clock,
                });
                Vec::new()
            }
        }
    }

    /// Total prefetch lines suggested so far.
    pub fn issued(&self) -> u64 {
        self.issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spatial_learns_dense_footprint() {
        let mut pf = SpatialPrefetcher::new(64, 2);
        for l in 0..REGION_LINES {
            pf.on_access(LineAddr(l), true);
        }
        // Force region 0 out of the 2-entry active table.
        pf.on_access(LineAddr(10 * REGION_LINES), true);
        pf.on_access(LineAddr(11 * REGION_LINES), true);
        pf.on_access(LineAddr(12 * REGION_LINES), true);
        let out = pf.on_access(LineAddr(1000 * REGION_LINES), true);
        assert_eq!(out.len() as u64, REGION_LINES - 1);
        assert!(pf.issued() >= 31);
    }

    #[test]
    fn spatial_sparse_region_predicts_little() {
        let mut pf = SpatialPrefetcher::new(64, 1);
        // A region where only the trigger line is touched.
        pf.on_access(LineAddr(5 * REGION_LINES + 3), true);
        pf.on_access(LineAddr(9 * REGION_LINES + 3), true); // evicts + learns
        let out = pf.on_access(LineAddr(20 * REGION_LINES + 3), true);
        assert!(out.is_empty());
    }

    #[test]
    fn spatial_hits_do_not_trigger() {
        let mut pf = SpatialPrefetcher::new(64, 4);
        let out = pf.on_access(LineAddr(77), false);
        assert!(out.is_empty());
    }

    #[test]
    fn stride_detects_negative_stride() {
        let mut pf = StridePrefetcher::new(4, 2);
        pf.on_miss(LineAddr(100));
        pf.on_miss(LineAddr(98));
        let out = pf.on_miss(LineAddr(96));
        assert_eq!(out, vec![LineAddr(94), LineAddr(92)]);
    }

    #[test]
    fn stride_random_pattern_stays_quiet() {
        let mut pf = StridePrefetcher::new(4, 4);
        for l in [5u64, 900, 13, 777, 42, 1234] {
            assert!(pf.on_miss(LineAddr(l)).is_empty());
        }
    }

    #[test]
    fn stride_table_capacity_is_bounded() {
        let mut pf = StridePrefetcher::new(2, 1);
        for base in 0..10u64 {
            pf.on_miss(LineAddr(base * 100_000));
        }
        assert!(pf.entries.len() <= 2);
    }
}
