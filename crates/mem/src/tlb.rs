//! TLB models (Table V: 64-entry L1 TLBs, 2k-entry L2 TLB, 1k-entry
//! SE_L3 TLB at 8-cycle latency).
//!
//! The suite assumes huge pages back every large data structure (paper
//! §IV-A), so the page size defaults to 2 MB and misses are rare; the
//! model still charges lookup latency on page transitions and full walks
//! on misses, and the SE_L3 caches the current translation so streams pay
//! one TLB access per page (paper §IV-B "Hardware Units").

use crate::cache::{Cache, CacheConfig, ReplacePolicy};
use crate::LineAddr;
use nsc_sim::Cycle;

/// Page-number bits below which addresses share a translation (2 MB huge
/// pages).
pub const HUGE_PAGE_BITS: u32 = 21;

/// A set-associative TLB.
///
/// # Examples
///
/// ```
/// use nsc_mem::tlb::Tlb;
/// use nsc_sim::Cycle;
///
/// let mut tlb = Tlb::new(64, 4, Cycle(8), Cycle(60));
/// // Cold miss pays the walk; the refill makes the next access a hit.
/// assert_eq!(tlb.translate(0x20_0000, Cycle(0)), Cycle(68));
/// assert_eq!(tlb.translate(0x20_0040, Cycle(100)), Cycle(108));
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    entries: Cache,
    lookup_latency: Cycle,
    walk_latency: Cycle,
    hits: u64,
    misses: u64,
}

impl Tlb {
    /// Creates a TLB with `n_entries` and `ways` associativity.
    ///
    /// # Panics
    ///
    /// Panics if the shape does not divide into power-of-two sets.
    pub fn new(n_entries: u64, ways: u32, lookup_latency: Cycle, walk_latency: Cycle) -> Tlb {
        Tlb {
            entries: Cache::new(CacheConfig {
                // Reuse the tag-array machinery: one "line" per page entry.
                size_bytes: n_entries * 64,
                ways,
                latency: lookup_latency,
                policy: ReplacePolicy::Lru,
                set_skip_bits: 0,
            }),
            lookup_latency,
            walk_latency,
            hits: 0,
            misses: 0,
        }
    }

    /// Translates a byte address at `now`, returning when the translation
    /// is available. Hits cost the lookup latency; misses add a page walk
    /// and install the entry.
    pub fn translate(&mut self, addr: u64, now: Cycle) -> Cycle {
        let page = LineAddr(addr >> HUGE_PAGE_BITS);
        if self.entries.lookup(page, now).is_some() {
            self.hits += 1;
            now + self.lookup_latency.raw()
        } else {
            self.misses += 1;
            self.entries.insert(page, false, now);
            now + self.lookup_latency.raw() + self.walk_latency.raw()
        }
    }

    /// TLB hits so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// TLB misses (page walks) so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Invalidates one page (TLB shoot-down participation, paper §IV-B).
    pub fn shoot_down(&mut self, addr: u64) {
        self.entries.invalidate(LineAddr(addr >> HUGE_PAGE_BITS));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tlb() -> Tlb {
        Tlb::new(64, 4, Cycle(8), Cycle(60))
    }

    #[test]
    fn same_page_hits() {
        let mut t = tlb();
        t.translate(0, Cycle(0));
        // Anywhere within the same 2 MB page hits.
        assert_eq!(t.translate((1 << 21) - 8, Cycle(10)), Cycle(18));
        assert_eq!(t.hits(), 1);
        assert_eq!(t.misses(), 1);
    }

    #[test]
    fn new_page_walks() {
        let mut t = tlb();
        t.translate(0, Cycle(0));
        assert_eq!(t.translate(1 << 21, Cycle(10)), Cycle(78));
        assert_eq!(t.misses(), 2);
    }

    #[test]
    fn shoot_down_forces_rewalk() {
        let mut t = tlb();
        t.translate(0, Cycle(0));
        t.shoot_down(0);
        assert_eq!(t.translate(8, Cycle(100)), Cycle(168));
    }

    #[test]
    fn capacity_evicts_old_translations() {
        let mut t = Tlb::new(4, 4, Cycle(1), Cycle(10));
        for p in 0..8u64 {
            t.translate(p << HUGE_PAGE_BITS, Cycle(0));
        }
        assert_eq!(t.misses(), 8);
        // The earliest page was evicted.
        assert_eq!(t.translate(0, Cycle(50)), Cycle(61));
    }
}
