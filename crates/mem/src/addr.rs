//! Physical addresses and cache-line arithmetic.

use std::fmt;
use std::ops::{Add, Sub};

/// Cache line size in bytes (Table V: 64 B interleave).
pub const LINE_BYTES: u64 = 64;

/// A byte address in the simulated flat physical address space.
///
/// The suite assumes large pages backing each data structure (paper §IV-A),
/// so virtual and physical contiguity coincide and a single address type
/// suffices.
///
/// # Examples
///
/// ```
/// use nsc_mem::{Addr, LINE_BYTES};
/// let a = Addr(130);
/// assert_eq!(a.line().raw(), 2);
/// assert_eq!(a.line_offset(), 2);
/// assert_eq!(a.line().base(), Addr(2 * LINE_BYTES));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// The containing cache line.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 / LINE_BYTES)
    }

    /// Byte offset within the containing line.
    #[inline]
    pub fn line_offset(self) -> u64 {
        self.0 % LINE_BYTES
    }

    /// The raw byte address.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;
    #[inline]
    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl Sub<Addr> for Addr {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: Addr) -> u64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// A cache-line address (byte address divided by [`LINE_BYTES`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// The raw line index.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// First byte address of the line.
    #[inline]
    pub fn base(self) -> Addr {
        Addr(self.0 * LINE_BYTES)
    }

    /// The L3 bank holding this line under static-NUCA 64 B interleave.
    #[inline]
    pub fn bank(self, n_banks: u64) -> u64 {
        self.0 % n_banks
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L0x{:x}", self.0)
    }
}

/// A half-open byte-address range `[min, max)`, the unit of the paper's
/// range-based synchronization (§IV-B).
///
/// # Examples
///
/// ```
/// use nsc_mem::{addr::AddrRange, Addr};
/// let mut r = AddrRange::empty();
/// r.extend(Addr(100), 4);
/// r.extend(Addr(64), 8);
/// assert_eq!(r.min(), Some(Addr(64)));
/// assert!(r.overlaps(&AddrRange::span(Addr(100), Addr(105))));
/// assert!(!r.overlaps(&AddrRange::span(Addr(104), Addr(200))));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AddrRange {
    min: u64,
    max: u64, // exclusive; min == max means empty
}

impl AddrRange {
    /// An empty range.
    pub fn empty() -> AddrRange {
        AddrRange { min: 0, max: 0 }
    }

    /// The range `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `hi < lo`.
    pub fn span(lo: Addr, hi: Addr) -> AddrRange {
        assert!(hi >= lo, "range hi {hi} below lo {lo}");
        AddrRange { min: lo.0, max: hi.0 }
    }

    /// Returns `true` when no address has been recorded.
    pub fn is_empty(&self) -> bool {
        self.min == self.max
    }

    /// Grows the range to include `[addr, addr + bytes)`.
    pub fn extend(&mut self, addr: Addr, bytes: u64) {
        let lo = addr.0;
        let hi = addr.0 + bytes;
        if self.is_empty() {
            self.min = lo;
            self.max = hi;
        } else {
            self.min = self.min.min(lo);
            self.max = self.max.max(hi);
        }
    }

    /// Merges another range into this one.
    pub fn merge(&mut self, other: &AddrRange) {
        if other.is_empty() {
            return;
        }
        if self.is_empty() {
            *self = *other;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    /// Lowest contained address, `None` when empty.
    pub fn min(&self) -> Option<Addr> {
        (!self.is_empty()).then_some(Addr(self.min))
    }

    /// One past the highest contained address, `None` when empty.
    pub fn max(&self) -> Option<Addr> {
        (!self.is_empty()).then_some(Addr(self.max))
    }

    /// Conservative overlap test: `true` if the two ranges intersect.
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        !self.is_empty() && !other.is_empty() && self.min < other.max && other.min < self.max
    }

    /// Returns `true` if the range contains `[addr, addr+bytes)` even
    /// partially.
    pub fn touches(&self, addr: Addr, bytes: u64) -> bool {
        self.overlaps(&AddrRange::span(addr, addr + bytes))
    }

    /// Width in bytes.
    pub fn len(&self) -> u64 {
        self.max - self.min
    }
}

impl fmt::Display for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            write!(f, "[empty)")
        } else {
            write!(f, "[0x{:x}, 0x{:x})", self.min, self.max)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_arithmetic() {
        assert_eq!(Addr(0).line(), LineAddr(0));
        assert_eq!(Addr(63).line(), LineAddr(0));
        assert_eq!(Addr(64).line(), LineAddr(1));
        assert_eq!(Addr(64).line_offset(), 0);
        assert_eq!(LineAddr(3).base(), Addr(192));
    }

    #[test]
    fn bank_interleave() {
        assert_eq!(LineAddr(0).bank(64), 0);
        assert_eq!(LineAddr(63).bank(64), 63);
        assert_eq!(LineAddr(64).bank(64), 0);
        assert_eq!(LineAddr(65).bank(64), 1);
    }

    #[test]
    fn range_extend_and_overlap() {
        let mut r = AddrRange::empty();
        assert!(r.is_empty());
        assert!(!r.overlaps(&AddrRange::span(Addr(0), Addr(100))));
        r.extend(Addr(10), 4);
        assert_eq!(r.min(), Some(Addr(10)));
        assert_eq!(r.max(), Some(Addr(14)));
        r.extend(Addr(2), 2);
        assert_eq!(r.len(), 12);
        assert!(r.touches(Addr(13), 1));
        assert!(!r.touches(Addr(14), 4));
    }

    #[test]
    fn range_merge() {
        let mut a = AddrRange::span(Addr(0), Addr(10));
        a.merge(&AddrRange::empty());
        assert_eq!(a.len(), 10);
        a.merge(&AddrRange::span(Addr(100), Addr(110)));
        assert_eq!(a.len(), 110);
        let mut e = AddrRange::empty();
        e.merge(&AddrRange::span(Addr(5), Addr(6)));
        assert_eq!(e.min(), Some(Addr(5)));
    }

    #[test]
    fn adjacent_ranges_do_not_overlap() {
        let a = AddrRange::span(Addr(0), Addr(64));
        let b = AddrRange::span(Addr(64), Addr(128));
        assert!(!a.overlaps(&b));
        assert!(!b.overlaps(&a));
    }

    #[test]
    #[should_panic(expected = "below lo")]
    fn span_validates() {
        let _ = AddrRange::span(Addr(10), Addr(5));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Addr(255).to_string(), "0xff");
        assert_eq!(LineAddr(16).to_string(), "L0x10");
        assert_eq!(AddrRange::empty().to_string(), "[empty)");
        assert_eq!(AddrRange::span(Addr(1), Addr(2)).to_string(), "[0x1, 0x2)");
    }
}
