//! Set-associative cache tag arrays with LRU and Bimodal-RRIP replacement.

use crate::addr::{LineAddr, LINE_BYTES};
use nsc_sim::Cycle;

/// Replacement policy for a cache (Table V uses Bimodal RRIP, p = 0.03).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplacePolicy {
    /// Least-recently-used.
    Lru,
    /// Bimodal RRIP: insert at distant RRPV, with probability
    /// `p_promote_permille/1000` insert at long (max-1) RRPV instead.
    BimodalRrip {
        /// Probability, in permille, of a "long" insertion.
        p_promote_permille: u32,
    },
}

/// Static shape of one cache.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Access latency.
    pub latency: Cycle,
    /// Replacement policy.
    pub policy: ReplacePolicy,
    /// Low line-address bits to skip when forming the set index. NUCA L3
    /// banks set this to `log2(n_banks)`: the bank-interleave bits are
    /// constant within one bank and must not alias every line into a
    /// fraction of the sets.
    pub set_skip_bits: u32,
}

impl CacheConfig {
    /// Number of sets implied by size, line size and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the configuration does not divide into a whole power-of-two
    /// set count.
    pub fn sets(&self) -> u64 {
        let sets = self.size_bytes / LINE_BYTES / self.ways as u64;
        assert!(sets > 0, "cache too small: {self:?}");
        assert!(sets.is_power_of_two(), "set count must be a power of two: {self:?}");
        sets
    }
}

const RRPV_MAX: u8 = 3;

#[derive(Clone, Copy, Debug, Default)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// When the fill completes; demand hits before this must wait (used for
    /// in-flight prefetches).
    fill_ready: Cycle,
    rrpv: u8,
    lru: u64,
}

/// A line evicted to make room for a fill.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Evicted {
    /// The evicted line address.
    pub line: LineAddr,
    /// Whether the line was dirty (requires writeback).
    pub dirty: bool,
}

/// Result of a successful lookup.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HitInfo {
    /// When the line's data is actually available (later than the lookup for
    /// lines still being filled by a prefetch).
    pub ready: Cycle,
    /// Whether the line is dirty.
    pub dirty: bool,
}

/// A set-associative tag array.
///
/// The cache stores tags and per-line metadata only; data values live in the
/// functional interpreter. Timing callers combine [`CacheConfig::latency`]
/// with hit/miss outcomes.
///
/// # Examples
///
/// ```
/// use nsc_mem::{Cache, CacheConfig, ReplacePolicy, LineAddr};
/// use nsc_sim::Cycle;
///
/// let mut c = Cache::new(CacheConfig {
///     size_bytes: 4096,
///     ways: 4,
///     latency: Cycle(2),
///     policy: ReplacePolicy::Lru,
///     set_skip_bits: 0,
/// });
/// assert!(c.lookup(LineAddr(1), Cycle(0)).is_none());
/// c.insert(LineAddr(1), false, Cycle(0));
/// assert!(c.lookup(LineAddr(1), Cycle(5)).is_some());
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Way>>,
    set_mask: u64,
    use_clock: u64,
    /// Simple xorshift state for bimodal insertion decisions (deterministic).
    rng_state: u64,
}

impl Cache {
    /// Creates an empty cache.
    pub fn new(config: CacheConfig) -> Cache {
        let n_sets = config.sets();
        Cache {
            sets: vec![vec![Way::default(); config.ways as usize]; n_sets as usize],
            set_mask: n_sets - 1,
            use_clock: 0,
            rng_state: 0x9E37_79B9_7F4A_7C15,
            config,
        }
    }

    /// The cache configuration.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    #[inline]
    fn set_index(&self, line: LineAddr) -> usize {
        ((line.raw() >> self.config.set_skip_bits) & self.set_mask) as usize
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng_state = x;
        x
    }

    /// Looks up `line`, updating recency state on a hit.
    pub fn lookup(&mut self, line: LineAddr, _now: Cycle) -> Option<HitInfo> {
        self.use_clock += 1;
        let clock = self.use_clock;
        let set = self.set_index(line);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == line.raw() {
                way.lru = clock;
                way.rrpv = 0;
                return Some(HitInfo {
                    ready: way.fill_ready,
                    dirty: way.dirty,
                });
            }
        }
        None
    }

    /// Tag check without recency update (e.g. snoop or locality probe).
    pub fn contains(&self, line: LineAddr) -> bool {
        let set = self.set_index(line);
        self.sets[set].iter().any(|w| w.valid && w.tag == line.raw())
    }

    /// Inserts `line`, choosing and returning a victim if the set is full.
    ///
    /// If the line is already present this refreshes its metadata instead.
    pub fn insert(&mut self, line: LineAddr, dirty: bool, fill_ready: Cycle) -> Option<Evicted> {
        self.use_clock += 1;
        let clock = self.use_clock;
        let policy = self.config.policy;
        let insert_rrpv = match policy {
            ReplacePolicy::Lru => 0,
            ReplacePolicy::BimodalRrip { p_promote_permille } => {
                if self.next_rand() % 1000 < p_promote_permille as u64 {
                    RRPV_MAX - 1
                } else {
                    RRPV_MAX
                }
            }
        };
        let set_idx = self.set_index(line);
        let set = &mut self.sets[set_idx];

        // Already present: refresh.
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == line.raw()) {
            way.dirty |= dirty;
            way.fill_ready = way.fill_ready.max(fill_ready);
            way.lru = clock;
            return None;
        }

        // Free way?
        if let Some(way) = set.iter_mut().find(|w| !w.valid) {
            *way = Way {
                tag: line.raw(),
                valid: true,
                dirty,
                fill_ready,
                rrpv: insert_rrpv,
                lru: clock,
            };
            return None;
        }

        // Choose victim.
        let victim_idx = match policy {
            ReplacePolicy::Lru => {
                set.iter()
                    .enumerate()
                    .min_by_key(|(_, w)| w.lru)
                    .map(|(i, _)| i)
                    .expect("non-empty set")
            }
            ReplacePolicy::BimodalRrip { .. } => loop {
                if let Some((i, _)) = set.iter().enumerate().find(|(_, w)| w.rrpv >= RRPV_MAX) {
                    break i;
                }
                for w in set.iter_mut() {
                    w.rrpv += 1;
                }
            },
        };
        let victim = set[victim_idx];
        set[victim_idx] = Way {
            tag: line.raw(),
            valid: true,
            dirty,
            fill_ready,
            rrpv: insert_rrpv,
            lru: clock,
        };
        Some(Evicted {
            line: LineAddr(victim.tag),
            dirty: victim.dirty,
        })
    }

    /// Invalidates `line`, returning whether it was present and dirty.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let set = self.set_index(line);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == line.raw() {
                way.valid = false;
                return Some(way.dirty);
            }
        }
        None
    }

    /// Marks `line` dirty (after a write hit).
    ///
    /// Returns `true` if the line was present.
    pub fn set_dirty(&mut self, line: LineAddr) -> bool {
        let set = self.set_index(line);
        for way in &mut self.sets[set] {
            if way.valid && way.tag == line.raw() {
                way.dirty = true;
                return true;
            }
        }
        false
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().flatten().filter(|w| w.valid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lru_cache(size: u64, ways: u32) -> Cache {
        Cache::new(CacheConfig {
            size_bytes: size,
            ways,
            latency: Cycle(2),
            policy: ReplacePolicy::Lru,
            set_skip_bits: 0,
        })
    }

    #[test]
    fn miss_then_hit() {
        let mut c = lru_cache(4096, 4);
        assert!(c.lookup(LineAddr(7), Cycle(0)).is_none());
        assert!(c.insert(LineAddr(7), false, Cycle(3)).is_none());
        let hit = c.lookup(LineAddr(7), Cycle(10)).unwrap();
        assert_eq!(hit.ready, Cycle(3));
        assert!(!hit.dirty);
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 1 set x 2 ways: sets = 128/64/2 = 1.
        let mut c = lru_cache(128, 2);
        c.insert(LineAddr(1), false, Cycle(0));
        c.insert(LineAddr(2), false, Cycle(0));
        c.lookup(LineAddr(1), Cycle(1)); // 2 is now LRU
        let ev = c.insert(LineAddr(3), false, Cycle(2)).unwrap();
        assert_eq!(ev.line, LineAddr(2));
        assert!(!ev.dirty);
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = lru_cache(128, 1);
        c.insert(LineAddr(0), true, Cycle(0));
        let ev = c.insert(LineAddr(2), false, Cycle(0)).unwrap();
        assert!(ev.dirty);
        assert_eq!(ev.line, LineAddr(0));
    }

    #[test]
    fn reinsert_refreshes_not_evicts() {
        let mut c = lru_cache(128, 1);
        c.insert(LineAddr(4), false, Cycle(0));
        assert!(c.insert(LineAddr(4), true, Cycle(9)).is_none());
        let hit = c.lookup(LineAddr(4), Cycle(10)).unwrap();
        assert!(hit.dirty);
        assert_eq!(hit.ready, Cycle(9));
    }

    #[test]
    fn invalidate_and_set_dirty() {
        let mut c = lru_cache(4096, 4);
        c.insert(LineAddr(9), false, Cycle(0));
        assert!(c.set_dirty(LineAddr(9)));
        assert_eq!(c.invalidate(LineAddr(9)), Some(true));
        assert_eq!(c.invalidate(LineAddr(9)), None);
        assert!(!c.set_dirty(LineAddr(9)));
    }

    #[test]
    fn rrip_eventually_evicts() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            ways: 2,
            latency: Cycle(2),
            policy: ReplacePolicy::BimodalRrip { p_promote_permille: 30 },
            set_skip_bits: 0,
        });
        c.insert(LineAddr(1), false, Cycle(0));
        c.insert(LineAddr(2), false, Cycle(0));
        let ev = c.insert(LineAddr(3), false, Cycle(0));
        assert!(ev.is_some());
        assert_eq!(c.resident_lines(), 2);
    }

    #[test]
    fn rrip_hit_promotion_protects_line() {
        let mut c = Cache::new(CacheConfig {
            size_bytes: 128,
            ways: 2,
            latency: Cycle(2),
            policy: ReplacePolicy::BimodalRrip { p_promote_permille: 0 },
            set_skip_bits: 0,
        });
        c.insert(LineAddr(1), false, Cycle(0));
        c.insert(LineAddr(2), false, Cycle(0));
        c.lookup(LineAddr(1), Cycle(1)); // rrpv(1) -> 0
        let ev = c.insert(LineAddr(3), false, Cycle(2)).unwrap();
        assert_eq!(ev.line, LineAddr(2)); // the unpromoted line goes
    }

    #[test]
    fn contains_does_not_touch_recency() {
        let mut c = lru_cache(128, 2);
        c.insert(LineAddr(1), false, Cycle(0));
        c.insert(LineAddr(2), false, Cycle(0));
        assert!(c.contains(LineAddr(1)));
        // line 1 is still LRU, so it is the victim.
        let ev = c.insert(LineAddr(3), false, Cycle(0)).unwrap();
        assert_eq!(ev.line, LineAddr(1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn config_validates_sets() {
        let _ = Cache::new(CacheConfig {
            size_bytes: 192,
            ways: 1,
            latency: Cycle(1),
            policy: ReplacePolicy::Lru,
            set_skip_bits: 0,
        });
    }
}
